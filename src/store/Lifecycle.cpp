//===- store/Lifecycle.cpp - Store GC, manifest and inspection -----------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "store/Lifecycle.h"

#include "store/Lock.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <filesystem>

using namespace clgen;
using namespace clgen::store;

namespace fs = std::filesystem;

const char *store::entryActionName(EntryAction A) {
  switch (A) {
  case EntryAction::Keep:
    return "keep";
  case EntryAction::Evict:
    return "evict";
  case EntryAction::Quarantine:
    return "quarantine";
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// Scanning
//===----------------------------------------------------------------------===//

namespace {

/// Directories the lifecycle ops never descend into: they hold
/// non-entry files (locks, parked corruption) with their own rules.
bool isReservedDirName(const std::string &Name) {
  return Name == "locks" || Name == "quarantine";
}

/// In-flight atomic writes (`<final>.tmp.<unique>`) are invisible to
/// every lifecycle operation except vacuum.
bool isTempName(const std::string &Name) {
  return Name.find(".tmp.") != std::string::npos;
}

int64_t mtimeNanos(const fs::path &P, std::error_code &Ec) {
  fs::file_time_type T = fs::last_write_time(P, Ec);
  if (Ec)
    return 0;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             T.time_since_epoch())
      .count();
}

} // namespace

Result<std::vector<EntryInfo>> store::scanStore(const std::string &Dir) {
  std::error_code Ec;
  if (!fs::is_directory(Dir, Ec) || Ec)
    return Result<std::vector<EntryInfo>>::error(
        "store directory is not readable: " + Dir);

  std::vector<EntryInfo> Entries;
  fs::recursive_directory_iterator It(
      Dir, fs::directory_options::skip_permission_denied, Ec);
  if (Ec)
    return Result<std::vector<EntryInfo>>::error(
        "cannot scan store directory: " + Dir + ": " + Ec.message());
  for (fs::recursive_directory_iterator End; It != End;
       It.increment(Ec)) {
    if (Ec)
      break;
    const fs::directory_entry &DE = *It;
    std::string Name = DE.path().filename().string();
    if (DE.is_directory(Ec)) {
      if (isReservedDirName(Name))
        It.disable_recursion_pending();
      continue;
    }
    if (DE.path().extension() != ".clgs" || isTempName(Name))
      continue;
    std::string Rel =
        DE.path().lexically_relative(Dir).generic_string();
    if (Rel == ManifestFileName)
      continue;

    EntryInfo E;
    E.RelPath = Rel;
    std::error_code SizeEc;
    E.Size = fs::file_size(DE.path(), SizeEc);
    if (SizeEc)
      E.Size = 0;
    std::error_code TimeEc;
    E.MtimeNs = mtimeNanos(DE.path(), TimeEc);

    Result<ArchiveInfo> Info = inspectArchive(DE.path().string());
    if (Info.ok()) {
      E.Valid = true;
      E.Kind = Info.get().Kind;
      E.Version = Info.get().Version;
      E.Checksum = Info.get().Checksum;
    } else {
      E.Valid = false;
      E.Problem = Info.errorMessage();
    }
    Entries.push_back(std::move(E));
  }

  std::sort(Entries.begin(), Entries.end(),
            [](const EntryInfo &A, const EntryInfo &B) {
              return A.RelPath < B.RelPath;
            });
  return Entries;
}

size_t store::quarantineCount(const std::string &Dir) {
  std::error_code Ec;
  fs::path Q = fs::path(Dir) / "quarantine";
  if (!fs::is_directory(Q, Ec) || Ec)
    return 0;
  size_t N = 0;
  for (const fs::directory_entry &DE : fs::directory_iterator(Q, Ec)) {
    std::error_code FileEc;
    if (DE.is_regular_file(FileEc))
      ++N;
  }
  return N;
}

//===----------------------------------------------------------------------===//
// Manifest
//===----------------------------------------------------------------------===//

namespace {

void serializeManifest(ArchiveWriter &W, const Manifest &M) {
  W.writeU64(M.SweepId);
  W.writeU64(M.MaxBytes);
  W.writeU64(M.KeptBytes);
  W.writeU64(M.EvictedCount);
  W.writeU64(M.EvictedBytes);
  W.writeU64(M.QuarantinedCount);
  W.writeU64(M.Entries.size());
  for (const ManifestEntry &E : M.Entries) {
    W.writeString(E.RelPath);
    W.writeU64(E.Size);
    W.writeU64(E.Checksum);
  }
}

} // namespace

Result<Manifest> store::loadManifest(const std::string &Dir) {
  auto Opened = ArchiveReader::open(Dir + "/" + ManifestFileName,
                                    ArchiveKind::Manifest);
  if (!Opened.ok())
    return Result<Manifest>::error(Opened.errorMessage());
  ArchiveReader R = Opened.take();
  Manifest M;
  M.SweepId = R.readU64();
  M.MaxBytes = R.readU64();
  M.KeptBytes = R.readU64();
  M.EvictedCount = R.readU64();
  M.EvictedBytes = R.readU64();
  M.QuarantinedCount = R.readU64();
  uint64_t Count = R.readU64();
  for (uint64_t I = 0; I < Count && R.ok(); ++I) {
    ManifestEntry E;
    E.RelPath = R.readString();
    E.Size = R.readU64();
    E.Checksum = R.readU64();
    M.Entries.push_back(std::move(E));
  }
  Status S = R.finish();
  if (!S.ok())
    return Result<Manifest>::error(S.errorMessage());
  return M;
}

//===----------------------------------------------------------------------===//
// Sweep
//===----------------------------------------------------------------------===//

namespace {

/// Quarantine file name for one entry: the relative path flattened
/// ('/' -> "__") so nested entries land uniquely in the flat
/// quarantine directory; pre-existing names get a numeric suffix
/// rather than overwriting older evidence.
fs::path quarantineTarget(const fs::path &QuarantineDir,
                          const std::string &RelPath) {
  std::string Flat = RelPath;
  size_t Pos = 0;
  while ((Pos = Flat.find('/', Pos)) != std::string::npos) {
    Flat.replace(Pos, 1, "__");
    Pos += 2;
  }
  fs::path Target = QuarantineDir / Flat;
  std::error_code Ec;
  for (int Suffix = 1; fs::exists(Target, Ec); ++Suffix)
    Target = QuarantineDir / (Flat + "." + std::to_string(Suffix));
  return Target;
}

} // namespace

Result<SweepReport> store::sweep(const std::string &Dir,
                                 const SweepPolicy &Policy) {
  CLGS_TRACE_SPAN("store.sweep");
  auto Scanned = scanStore(Dir);
  if (!Scanned.ok())
    return Result<SweepReport>::error(Scanned.errorMessage());

  SweepReport Report;
  Report.Entries = Scanned.take();

  // Plan. Corrupt entries are quarantined; valid entries are
  // LRU-evicted (oldest mtime first, RelPath breaking ties — the tie
  // break keeps the plan deterministic when a test or a mass copy
  // gives many entries one timestamp) until the budget holds.
  uint64_t LiveBytes = 0;
  std::vector<EntryInfo *> Live;
  for (EntryInfo &E : Report.Entries) {
    Report.ScannedBytes += E.Size;
    if (!E.Valid) {
      E.Action = EntryAction::Quarantine;
      ++Report.QuarantinedCount;
      Report.QuarantinedBytes += E.Size;
    } else {
      E.Action = EntryAction::Keep;
      LiveBytes += E.Size;
      Live.push_back(&E);
    }
  }
  std::sort(Live.begin(), Live.end(),
            [](const EntryInfo *A, const EntryInfo *B) {
              if (A->MtimeNs != B->MtimeNs)
                return A->MtimeNs < B->MtimeNs;
              return A->RelPath < B->RelPath;
            });
  std::vector<EntryInfo *> Evictees;
  if (Policy.MaxBytes > 0)
    for (EntryInfo *E : Live) {
      if (LiveBytes <= Policy.MaxBytes)
        break;
      E->Action = EntryAction::Evict;
      LiveBytes -= E->Size;
      ++Report.EvictedCount;
      Report.EvictedBytes += E->Size;
      Evictees.push_back(E);
    }
  Report.KeptBytes = LiveBytes;

  // The manifest (and the sweep id) describe the surviving set.
  Manifest M;
  M.MaxBytes = Policy.MaxBytes;
  M.KeptBytes = Report.KeptBytes;
  M.EvictedCount = Report.EvictedCount;
  M.EvictedBytes = Report.EvictedBytes;
  M.QuarantinedCount = Report.QuarantinedCount;
  for (const EntryInfo &E : Report.Entries)
    if (E.Action == EntryAction::Keep && E.Valid) {
      ManifestEntry ME;
      ME.RelPath = E.RelPath;
      ME.Size = E.Size;
      ME.Checksum = E.Checksum;
      M.Entries.push_back(std::move(ME));
    }
  Report.KeptCount = M.Entries.size();
  // The plan is a pure function of the store contents, so these are
  // stable; they count planned actions even when DryRun skips them.
  CLGS_COUNT("clgen.sweep.runs");
  CLGS_COUNT_N("clgen.sweep.scanned", Report.Entries.size());
  CLGS_COUNT_N("clgen.sweep.evicted", Report.EvictedCount);
  CLGS_COUNT_N("clgen.sweep.quarantined", Report.QuarantinedCount);
  CLGS_COUNT_N("clgen.sweep.bytes_evicted", Report.EvictedBytes);
  {
    ArchiveWriter IdW(ArchiveKind::Manifest);
    for (const ManifestEntry &E : M.Entries) {
      IdW.writeString(E.RelPath);
      IdW.writeU64(E.Size);
      IdW.writeU64(E.Checksum);
    }
    Report.SweepId = M.SweepId = IdW.payloadDigest();
  }

  if (Policy.DryRun)
    return Report;

  // Execute. Every mutation below is a whole-file rename or unlink —
  // never a byte rewrite — so a crash between any two of them leaves
  // only complete, valid entries behind. The KillSwitch models exactly
  // those crash points for the lifecycle tests.
  auto Kill = [&](const std::string &Stage) {
    if (Policy.KillSwitch && !Policy.KillSwitch(Stage)) {
      Report.Interrupted = true;
      Report.InterruptedAt = Stage;
      return true;
    }
    return false;
  };
  if (Kill("scan"))
    return Report;

  // Quarantine corrupt files first: they are the entries most likely
  // to trip readers, and moving them is reversible (bytes preserved).
  fs::path QuarantineDir = fs::path(Dir) / "quarantine";
  for (const EntryInfo &E : Report.Entries) {
    if (E.Action != EntryAction::Quarantine)
      continue;
    if (Kill("quarantine:" + E.RelPath))
      return Report;
    std::error_code Ec;
    fs::create_directories(QuarantineDir, Ec);
    fs::rename(fs::path(Dir) / E.RelPath,
               quarantineTarget(QuarantineDir, E.RelPath), Ec);
    // A failed move (e.g. the file vanished under us) is skipped; the
    // next sweep re-plans from a fresh scan.
  }

  // Evict in LRU order, so an interrupted sweep has removed the oldest
  // entries first — the same ones any completed sweep would pick.
  for (const EntryInfo *E : Evictees) {
    if (Kill("evict:" + E->RelPath))
      return Report;
    std::error_code Ec;
    fs::remove(fs::path(Dir) / E->RelPath, Ec);
  }

  // Publish the manifest last so it describes the final state; the
  // two-step write (temp file, then rename) means a crash at either
  // kill-point leaves the previous manifest (or none) — never a
  // partial one.
  if (Kill("manifest-write"))
    return Report;
  ArchiveWriter W(ArchiveKind::Manifest);
  serializeManifest(W, M);
  std::vector<uint8_t> Bytes = W.finalize();
  std::string FinalPath = Dir + "/" + ManifestFileName;
  std::string TempPath =
      FinalPath + ".tmp." + hexDigest(M.SweepId ^ 0x9E3779B97F4A7C15ull);
  {
    std::FILE *F = std::fopen(TempPath.c_str(), "wb");
    if (!F)
      return Result<SweepReport>::error(
          "cannot write manifest temp file: " + TempPath);
    size_t Written = std::fwrite(Bytes.data(), 1, Bytes.size(), F);
    bool Ok = Written == Bytes.size() && std::fflush(F) == 0;
    Ok = std::fclose(F) == 0 && Ok;
    if (!Ok) {
      std::remove(TempPath.c_str());
      return Result<SweepReport>::error("short write to manifest temp: " +
                                        TempPath);
    }
  }
  if (Kill("manifest-publish")) {
    // Crash simulation leaves the temp file behind deliberately — that
    // is the state a real crash would leave; vacuum cleans it.
    return Report;
  }
  std::error_code Ec;
  fs::rename(TempPath, FinalPath, Ec);
  if (Ec) {
    std::remove(TempPath.c_str());
    return Result<SweepReport>::error("cannot publish manifest: " +
                                      Ec.message());
  }
  if (Kill("done"))
    return Report;
  return Report;
}

//===----------------------------------------------------------------------===//
// Vacuum
//===----------------------------------------------------------------------===//

Result<VacuumReport> store::vacuum(const std::string &Dir) {
  std::error_code Ec;
  if (!fs::is_directory(Dir, Ec) || Ec)
    return Result<VacuumReport>::error(
        "store directory is not readable: " + Dir);

  VacuumReport Report;

  fs::path Q = fs::path(Dir) / "quarantine";
  if (fs::is_directory(Q, Ec)) {
    for (const fs::directory_entry &DE : fs::directory_iterator(Q, Ec)) {
      std::error_code FileEc;
      if (!DE.is_regular_file(FileEc))
        continue;
      uint64_t Size = fs::file_size(DE.path(), FileEc);
      if (fs::remove(DE.path(), FileEc); !FileEc) {
        ++Report.QuarantineRemoved;
        Report.QuarantineBytes += Size;
      }
    }
  }

  // Lock files: live-safe pruning. Unlink only while holding the flock
  // ourselves — a held probe means a live process owns the lock, and
  // deleting it out from under the holder would let the next acquirer
  // lock a fresh inode alongside it (two "exclusive" holders).
  fs::path Locks = fs::path(Dir) / "locks";
  if (fs::is_directory(Locks, Ec)) {
    for (const fs::directory_entry &DE :
         fs::directory_iterator(Locks, Ec)) {
      std::error_code FileEc;
      if (!DE.is_regular_file(FileEc))
        continue;
      Result<ScopedLock> Probe = ScopedLock::tryAcquire(DE.path().string());
      if (!Probe.ok()) {
        ++Report.LocksSkipped;
        continue;
      }
      ScopedLock Held = Probe.take();
      if (fs::remove(DE.path(), FileEc); !FileEc)
        ++Report.LocksRemoved;
      // Held releases here: the flock dies with the (now unlinked)
      // inode's last descriptor, so no acquirer can ever see it again.
    }
  }

  // Stale `.tmp.` files from crashed writers, anywhere in the tree.
  fs::recursive_directory_iterator It(
      Dir, fs::directory_options::skip_permission_denied, Ec);
  for (fs::recursive_directory_iterator End; It != End;
       It.increment(Ec)) {
    if (Ec)
      break;
    std::error_code FileEc;
    if (!It->is_regular_file(FileEc))
      continue;
    if (!isTempName(It->path().filename().string()))
      continue;
    if (fs::remove(It->path(), FileEc); !FileEc)
      ++Report.TempRemoved;
  }
  return Report;
}

//===----------------------------------------------------------------------===//
// CLI rendering
//===----------------------------------------------------------------------===//

namespace {

std::string formatBytes(uint64_t Bytes) {
  return std::to_string(Bytes) + (Bytes == 1 ? " byte" : " bytes");
}

void appendLine(std::string &Out, const char *Fmt, ...) {
  char Buf[512];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  Out += Buf;
  Out += '\n';
}

} // namespace

std::string store::formatLs(const std::vector<EntryInfo> &Entries) {
  std::string Out;
  for (const EntryInfo &E : Entries) {
    if (E.Valid)
      appendLine(Out, "%-12s %10llu  %s  %s", archiveKindName(E.Kind),
                 static_cast<unsigned long long>(E.Size),
                 hexDigest(E.Checksum).c_str(), E.RelPath.c_str());
    else
      appendLine(Out, "%-12s %10llu  %s  %s", "corrupt",
                 static_cast<unsigned long long>(E.Size),
                 "----------------", E.RelPath.c_str());
  }
  appendLine(Out, "%zu entries", Entries.size());
  return Out;
}

std::string store::formatStat(const std::vector<EntryInfo> &Entries,
                              size_t QuarantineCount, const Manifest *M) {
  size_t ValidCount = 0, CorruptCount = 0;
  uint64_t ValidBytes = 0, CorruptBytes = 0;
  // Tally per kind tag in tag order (stable regardless of entry order).
  struct KindTally {
    size_t Count = 0;
    uint64_t Bytes = 0;
  };
  KindTally Kinds[7];
  for (const EntryInfo &E : Entries) {
    if (!E.Valid) {
      ++CorruptCount;
      CorruptBytes += E.Size;
      continue;
    }
    ++ValidCount;
    ValidBytes += E.Size;
    size_t Slot = E.Kind < 7 ? E.Kind : 0;
    ++Kinds[Slot].Count;
    Kinds[Slot].Bytes += E.Size;
  }

  std::string Out;
  appendLine(Out, "entries:     %zu (%s)", ValidCount,
             formatBytes(ValidBytes).c_str());
  for (uint32_t Kind = 1; Kind < 7; ++Kind)
    if (Kinds[Kind].Count > 0)
      appendLine(Out, "  %-12s %zu entries, %s", archiveKindName(Kind),
                 Kinds[Kind].Count,
                 formatBytes(Kinds[Kind].Bytes).c_str());
  // Valid archives carrying a kind tag outside the enum (a future
  // kind: additive, no version bump) still must show up in the
  // breakdown, or the per-kind rows silently stop summing to the
  // total.
  if (Kinds[0].Count > 0)
    appendLine(Out, "  %-12s %zu entries, %s", "unknown",
               Kinds[0].Count, formatBytes(Kinds[0].Bytes).c_str());
  appendLine(Out, "corrupt:     %zu (%s)", CorruptCount,
             formatBytes(CorruptBytes).c_str());
  appendLine(Out, "quarantined: %zu", QuarantineCount);
  if (M) {
    std::string Budget = M->MaxBytes == 0
                             ? std::string("unlimited")
                             : formatBytes(M->MaxBytes);
    appendLine(Out,
               "manifest:    sweep %s kept %zu entries (%s), budget %s, "
               "evicted %llu (%s), quarantined %llu",
               hexDigest(M->SweepId).c_str(), M->Entries.size(),
               formatBytes(M->KeptBytes).c_str(), Budget.c_str(),
               static_cast<unsigned long long>(M->EvictedCount),
               formatBytes(M->EvictedBytes).c_str(),
               static_cast<unsigned long long>(M->QuarantinedCount));
  } else {
    appendLine(Out, "manifest:    none");
  }
  return Out;
}

std::string store::formatVerify(const std::vector<EntryInfo> &Entries) {
  std::string Out;
  size_t Corrupt = 0;
  for (const EntryInfo &E : Entries) {
    if (E.Valid) {
      appendLine(Out, "ok       %s", E.RelPath.c_str());
    } else {
      ++Corrupt;
      appendLine(Out, "CORRUPT  %s: %s", E.RelPath.c_str(),
                 E.Problem.c_str());
    }
  }
  appendLine(Out, "verify: %zu entries, %zu ok, %zu corrupt",
             Entries.size(), Entries.size() - Corrupt, Corrupt);
  return Out;
}

std::string store::formatSweepReport(const SweepReport &Report,
                                     bool DryRun) {
  std::string Out;
  for (const EntryInfo &E : Report.Entries)
    appendLine(Out, "%-11s %s  %s", entryActionName(E.Action),
               E.RelPath.c_str(), formatBytes(E.Size).c_str());
  appendLine(Out,
             "%s: kept %zu (%s), evicted %zu (%s), quarantined %zu (%s)",
             DryRun ? "gc (dry-run)" : "gc", Report.KeptCount,
             formatBytes(Report.KeptBytes).c_str(), Report.EvictedCount,
             formatBytes(Report.EvictedBytes).c_str(),
             Report.QuarantinedCount,
             formatBytes(Report.QuarantinedBytes).c_str());
  return Out;
}

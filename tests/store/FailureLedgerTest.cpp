//===- tests/store/FailureLedgerTest.cpp - failure-ledger tests ---------------===//
//
// The persistent failure ledger (store/FailureLedger.h): record/lookup
// round-trips, the deterministic-kinds-only admission policy, corrupt
// entries degrading to misses, the byte-stable CLI listing, and the
// cached-batch integration — a second run over known-bad kernels must
// skip measurement and replay the recorded diagnostics byte-identically.
//
//===----------------------------------------------------------------------===//

#include "store/FailureLedger.h"

#include "runtime/HostDriver.h"
#include "store/ResultCache.h"
#include "support/Trap.h"
#include "vm/Compiler.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace clgen;
using namespace clgen::store;

namespace {

/// Fresh per-test scratch directory, removed on destruction.
class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name)
      : Path(std::filesystem::temp_directory_path() /
             ("clgen_ledger_test_" + Name)) {
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }
  std::filesystem::path path() const { return Path; }

private:
  std::filesystem::path Path;
};

FailureRecord record(TrapKind Kind, const std::string &Detail,
                     uint32_t Attempts = 1) {
  FailureRecord R;
  R.Kind = Kind;
  R.Detail = Detail;
  R.Attempts = Attempts;
  return R;
}

TEST(FailureLedgerTest, RecordLookupRoundTrip) {
  ScratchDir Dir("roundtrip");
  FailureLedger Ledger(Dir.str());
  ASSERT_TRUE(Ledger.directoryOk());

  EXPECT_FALSE(Ledger.lookup(42).has_value());
  ASSERT_TRUE(Ledger
                  .record(42, record(TrapKind::OutOfBounds,
                                     "global OOB at index 9", 1))
                  .ok());
  auto Found = Ledger.lookup(42);
  ASSERT_TRUE(Found.has_value());
  EXPECT_EQ(Found->Kind, TrapKind::OutOfBounds);
  EXPECT_EQ(Found->Detail, "global OOB at index 9");
  EXPECT_EQ(Found->Attempts, 1u);

  // A second ledger over the same directory sees the record: the disk
  // is the only state.
  FailureLedger Reopened(Dir.str());
  auto Again = Reopened.lookup(42);
  ASSERT_TRUE(Again.has_value());
  EXPECT_EQ(Again->Detail, Found->Detail);

  auto Stats = Ledger.stats();
  EXPECT_EQ(Stats.Lookups, 2u);
  EXPECT_EQ(Stats.NegativeHits, 1u);
  EXPECT_EQ(Stats.Records, 1u);
}

TEST(FailureLedgerTest, RefusesNonDeterministicKinds) {
  ScratchDir Dir("policy");
  FailureLedger Ledger(Dir.str());
  // Transient and environment-dependent classes must never be persisted:
  // they would wrongly poison future runs.
  for (TrapKind K : {TrapKind::Injected, TrapKind::IoError,
                     TrapKind::WatchdogTimeout, TrapKind::Unknown,
                     TrapKind::None}) {
    EXPECT_TRUE(Ledger.record(7, record(K, "transient")).ok());
    EXPECT_FALSE(Ledger.lookup(7).has_value())
        << "kind " << trapKindName(K) << " must not be recorded";
  }
  EXPECT_EQ(Ledger.stats().Rejected, 5u);
  EXPECT_EQ(Ledger.stats().Records, 0u);

  // Every deterministic class IS admitted.
  uint64_t Key = 100;
  for (TrapKind K :
       {TrapKind::OutOfBounds, TrapKind::BarrierDivergence,
        TrapKind::InstructionBudget, TrapKind::DivByZero,
        TrapKind::CompileError, TrapKind::BadLaunch, TrapKind::CheckNoOutput,
        TrapKind::CheckInputInsensitive, TrapKind::CheckNonDeterministic}) {
    ASSERT_TRUE(Ledger.record(Key, record(K, "deterministic")).ok());
    auto Found = Ledger.lookup(Key);
    ASSERT_TRUE(Found.has_value());
    EXPECT_EQ(Found->Kind, K);
    ++Key;
  }
}

TEST(FailureLedgerTest, CorruptEntryDegradesToMiss) {
  ScratchDir Dir("corrupt");
  FailureLedger Ledger(Dir.str());
  ASSERT_TRUE(
      Ledger.record(9, record(TrapKind::DivByZero, "div by zero")).ok());
  ASSERT_TRUE(Ledger.lookup(9).has_value());

  // Truncate the entry file: the checksum no longer validates, so the
  // lookup is an honest miss (counted as a bad entry), never a crash
  // or a half-read record.
  std::string Entry;
  for (const auto &E : std::filesystem::directory_iterator(Dir.path()))
    if (E.path().extension() == ".clgs")
      Entry = E.path().string();
  ASSERT_FALSE(Entry.empty());
  std::filesystem::resize_file(Entry,
                               std::filesystem::file_size(Entry) / 2);
  EXPECT_FALSE(Ledger.lookup(9).has_value());
  EXPECT_GE(Ledger.stats().BadEntries, 1u);

  // Re-recording overwrites the corpse and the lookup works again.
  ASSERT_TRUE(
      Ledger.record(9, record(TrapKind::DivByZero, "div by zero")).ok());
  EXPECT_TRUE(Ledger.lookup(9).has_value());
}

TEST(FailureLedgerTest, UncreatableDirectoryDegrades) {
  ScratchDir Dir("nodir");
  // A regular file where the directory should be: directoryOk false,
  // lookups miss, records fail visibly — no crash, no silent success.
  std::string FilePath = Dir.str() + "/blocked";
  std::ofstream(FilePath) << "not a directory";
  FailureLedger Ledger(FilePath);
  EXPECT_FALSE(Ledger.directoryOk());
  EXPECT_FALSE(Ledger.lookup(1).has_value());
  EXPECT_FALSE(Ledger.record(1, record(TrapKind::OutOfBounds, "x")).ok());
  EXPECT_EQ(Ledger.stats().WriteFailures, 1u);
}

TEST(FailureLedgerTest, ListAndFormatAreByteStable) {
  ScratchDir Dir("listing");
  FailureLedger Ledger(Dir.str());
  ASSERT_TRUE(
      Ledger.record(2, record(TrapKind::DivByZero, "lane 3 divides by 0", 1))
          .ok());
  ASSERT_TRUE(Ledger
                  .record(1, record(TrapKind::OutOfBounds,
                                    "write past buffer end", 2))
                  .ok());

  auto Records = listFailures(Dir.str());
  ASSERT_EQ(Records.size(), 2u);
  // Sorted by key regardless of directory iteration order.
  EXPECT_EQ(Records[0].first, 1u);
  EXPECT_EQ(Records[1].first, 2u);

  std::string Listing = formatFailures(Records);
  EXPECT_EQ(Listing, formatFailures(listFailures(Dir.str())));
  EXPECT_NE(Listing.find("out-of-bounds"), std::string::npos);
  EXPECT_NE(Listing.find("div-by-zero"), std::string::npos);
  EXPECT_NE(Listing.find("write past buffer end"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Cached-batch integration
//===----------------------------------------------------------------------===//

vm::CompiledKernel compile(const std::string &Source) {
  auto K = vm::compileFirstKernel(Source);
  EXPECT_TRUE(K.ok()) << K.errorMessage();
  return K.take();
}

TEST(FailureLedgerTest, BatchRecordsAndReplaysFailures) {
  ScratchDir Dir("batch");
  // One good kernel, one that always traps out-of-bounds.
  std::vector<vm::CompiledKernel> Kernels;
  Kernels.push_back(
      compile("__kernel void ok(__global float* a, const int n) {\n"
              "  int i = get_global_id(0);\n"
              "  if (i < n) { a[i] = a[i] * 2.0f; }\n"
              "}\n"));
  Kernels.push_back(
      compile("__kernel void oob(__global float* a, const int n) {\n"
              "  a[get_global_id(0) + n] = 1.0f;\n"
              "}\n"));

  runtime::DriverOptions Opts;
  Opts.GlobalSize = 512;
  runtime::Platform P = runtime::amdPlatform();

  // Run 1: cold — the failure is measured and recorded.
  ResultCache Cache1(Dir.str() + "/results");
  FailureLedger Ledger1(Dir.str() + "/failures");
  runtime::BatchCacheStats Stats1;
  auto Run1 =
      runtime::runBenchmarkBatch(Kernels, P, Opts, 1, Cache1, &Stats1,
                                 &Ledger1);
  ASSERT_EQ(Run1.size(), 2u);
  EXPECT_TRUE(Run1[0].ok());
  ASSERT_FALSE(Run1[1].ok());
  EXPECT_EQ(Run1[1].trap(), TrapKind::OutOfBounds);
  EXPECT_EQ(Stats1.Misses, 2u);
  EXPECT_EQ(Stats1.LedgerHits, 0u);
  EXPECT_EQ(Stats1.LedgerRecords, 1u);

  // Run 2: fresh cache+ledger objects over the same directories — the
  // success is a cache hit, the failure a ledger negative hit, and the
  // replayed diagnostic is byte-identical. Nothing is measured.
  ResultCache Cache2(Dir.str() + "/results");
  FailureLedger Ledger2(Dir.str() + "/failures");
  runtime::BatchCacheStats Stats2;
  auto Run2 =
      runtime::runBenchmarkBatch(Kernels, P, Opts, 1, Cache2, &Stats2,
                                 &Ledger2);
  ASSERT_EQ(Run2.size(), 2u);
  EXPECT_TRUE(Run2[0].ok());
  ASSERT_FALSE(Run2[1].ok());
  EXPECT_EQ(Run2[1].errorMessage(), Run1[1].errorMessage());
  EXPECT_EQ(Run2[1].trap(), Run1[1].trap());
  EXPECT_EQ(Stats2.Hits, 1u);
  EXPECT_EQ(Stats2.LedgerHits, 1u);
  EXPECT_EQ(Stats2.Misses, 0u);
  EXPECT_EQ(Stats2.LedgerRecords, 0u);
  EXPECT_EQ(Ledger2.stats().NegativeHits, 1u);

  // Without a ledger the failure is simply re-measured (same result).
  ResultCache Cache3(Dir.str() + "/results");
  runtime::BatchCacheStats Stats3;
  auto Run3 = runtime::runBenchmarkBatch(Kernels, P, Opts, 1, Cache3,
                                         &Stats3);
  ASSERT_FALSE(Run3[1].ok());
  EXPECT_EQ(Run3[1].errorMessage(), Run1[1].errorMessage());
  EXPECT_EQ(Stats3.Misses, 1u);
  EXPECT_EQ(Stats3.LedgerHits, 0u);
}

} // namespace

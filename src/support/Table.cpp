//===- support/Table.cpp - ASCII tables and bar charts --------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace clgen;

void TextTable::setHeader(std::vector<std::string> Names) {
  assert(Rows.empty() && "header must be set before rows are added");
  Header = std::move(Names);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Header.size() && "row width mismatch");
  Rows.push_back(std::move(Cells));
}

std::string TextTable::render() const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t C = 0; C < Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto RenderRow = [&](const std::vector<std::string> &Cells) {
    std::string Line;
    for (size_t C = 0; C < Cells.size(); ++C) {
      Line += Cells[C];
      if (C + 1 < Cells.size())
        Line += std::string(Widths[C] - Cells[C].size() + 2, ' ');
    }
    Line += '\n';
    return Line;
  };

  std::string Out = RenderRow(Header);
  size_t RuleWidth = 0;
  for (size_t C = 0; C < Widths.size(); ++C)
    RuleWidth += Widths[C] + (C + 1 < Widths.size() ? 2 : 0);
  Out += std::string(RuleWidth, '-') + "\n";
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}

void BarChart::addBar(std::string Label, double Value, std::string Detail) {
  Bars.push_back({std::move(Label), Value, std::move(Detail)});
}

std::string BarChart::render() const {
  std::string Out = Title + "\n";
  double MaxValue = 0.0;
  size_t MaxLabel = 0;
  for (const Bar &B : Bars) {
    MaxValue = std::max(MaxValue, B.Value);
    MaxLabel = std::max(MaxLabel, B.Label.size());
  }
  for (const Bar &B : Bars) {
    size_t Len =
        MaxValue > 0.0
            ? static_cast<size_t>(B.Value / MaxValue *
                                  static_cast<double>(Width))
            : 0;
    Out += formatString("  %-*s |%s%s %.2f", static_cast<int>(MaxLabel),
                        B.Label.c_str(), std::string(Len, '#').c_str(),
                        std::string(Width - Len, ' ').c_str(), B.Value);
    if (!B.Detail.empty())
      Out += "  " + B.Detail;
    Out += '\n';
  }
  return Out;
}

std::string clgen::sectionBanner(const std::string &Title) {
  std::string Rule(Title.size() + 6, '=');
  return "\n" + Rule + "\n== " + Title + " ==\n" + Rule + "\n";
}

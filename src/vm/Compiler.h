//===- vm/Compiler.h - AST to bytecode lowering ------------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a type-checked kernel (plus the helper functions it calls) to
/// CompiledKernel bytecode. User function calls are inlined; pointer
/// provenance is resolved statically; each memory access site is
/// classified as coalesced (index affine in get_global_id(0) with unit
/// stride) or not, which feeds both the performance model and the
/// Grewe et al. "coalesced" static feature.
///
/// The second lowering stage lives here too: prepareExecProgram turns
/// CompiledKernel bytecode into the dispatch-resolved execution form the
/// threaded interpreter runs (vm/Interpreter.cpp) — binary operations
/// are specialized into per-operation extended opcodes, conditional
/// branches carry their dense divergence-site index, and (optionally)
/// the profile-guided peephole fusion pass rewrites the hottest dynamic
/// opcode pairs into superinstructions.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_VM_COMPILER_H
#define CLGEN_VM_COMPILER_H

#include "ocl/Ast.h"
#include "support/Result.h"
#include "vm/Bytecode.h"

namespace clgen {
namespace vm {

//===----------------------------------------------------------------------===//
// Dispatch-resolved execution form
//===----------------------------------------------------------------------===//

/// The 20 per-operation specializations of a fused-bin family, in
/// exact VmBinOp order: decode maps the bin constituent's Aux by
/// offset from the family's _Add entry. Specializing the operation
/// into the opcode (rather than switching on Aux at run time) is what
/// makes fusion profitable — a shared operation switch re-concentrates
/// the data-dependent indirect branch that per-op handlers exist to
/// spread out.
#define CLGS_VM_FUSED_BIN_OPS(X, Fam)                                          \
  X(Fam##_Add) X(Fam##_Sub) X(Fam##_Mul) X(Fam##_DivF) X(Fam##_DivI)           \
  X(Fam##_RemI) X(Fam##_RemF) X(Fam##_Shl) X(Fam##_Shr) X(Fam##_And)           \
  X(Fam##_Or) X(Fam##_Xor) X(Fam##_Lt) X(Fam##_Le) X(Fam##_Gt)                 \
  X(Fam##_Ge) X(Fam##_Eq) X(Fam##_Ne) X(Fam##_MinI) X(Fam##_MaxI)

/// Extended opcodes of the execution form. The X-macro keeps the enum,
/// the computed-goto label table and the portable switch in lockstep:
/// the interpreter instantiates one handler body per entry, so adding
/// an entry without a handler fails to compile.
///
/// Order matters twice: the Bin* block and every fused-bin family
/// block must mirror VmBinOp exactly (decode maps the Aux by offset),
/// and the interpreter's label table is indexed by the enum value.
#define CLGS_VM_EXT_OPS(X)                                                     \
  X(LoadConst) X(Mov)                                                          \
  X(BinAdd) X(BinSub) X(BinMul) X(BinDivF) X(BinDivI) X(BinRemI)               \
  X(BinRemF) X(BinShl) X(BinShr) X(BinAnd) X(BinOr) X(BinXor)                  \
  X(BinLt) X(BinLe) X(BinGt) X(BinGe) X(BinEq) X(BinNe)                        \
  X(BinMinI) X(BinMaxI)                                                        \
  X(UnOp) X(Cast) X(Broadcast) X(Swizzle) X(InsertLanes) X(BuildVec)           \
  X(LoadMem) X(StoreMem) X(VLoad) X(VStore) X(CallB) X(Atomic)                 \
  X(Jmp) X(Jz) X(Jnz) X(Barrier) X(Halt)                                       \
  CLGS_VM_FUSED_BIN_OPS(X, FuseLdcBin)                                         \
  CLGS_VM_FUSED_BIN_OPS(X, FuseLdBin)                                          \
  CLGS_VM_FUSED_BIN_OPS(X, FuseMovBin)                                         \
  CLGS_VM_FUSED_BIN_OPS(X, FuseBinLd)                                          \
  CLGS_VM_FUSED_BIN_OPS(X, FuseBinSt)                                          \
  CLGS_VM_FUSED_BIN_OPS(X, FuseBinMov)                                         \
  CLGS_VM_FUSED_BIN_OPS(X, FuseBinJz)                                          \
  CLGS_VM_FUSED_BIN_OPS(X, FuseBinJnz)                                         \
  CLGS_VM_FUSED_BIN_OPS(X, FuseBinLdc)                                         \
  CLGS_VM_FUSED_BIN_OPS(X, FuseBinBin)                                         \
  X(FuseMovLdc) X(FuseMovMov) X(FuseMovJmp) X(FuseCastMov) X(FuseCallMov)

enum class ExtOp : uint8_t {
#define CLGS_VM_EXT_ENUM(Name) Name,
  CLGS_VM_EXT_OPS(CLGS_VM_EXT_ENUM)
#undef CLGS_VM_EXT_ENUM
};

constexpr size_t NumExtOps = static_cast<size_t>(ExtOp::FuseCallMov) + 1;
static_assert(NumExtOps <= 256, "ExtOp must stay a uint8_t dispatch index");

/// One slot of the execution form. Fused superinstructions keep BOTH
/// constituent Instrs (I1 then I2) so trap handling, counters and
/// memory helpers run the exact unfused semantics per constituent.
struct ExecInstr {
  /// Index into the interpreter's handler table.
  uint8_t Ext = 0;
  /// Dense divergence-site index for Jz/Jnz (for fused compare-branches,
  /// the site of the branch constituent); -1 elsewhere. Matches the
  /// site numbering the reference switch loop resolves at launch.
  int32_t BranchSite = -1;
  Instr I1;
  Instr I2;
};

/// The dispatch-resolved program prepareExecProgram builds at launch.
/// Code keeps a 1:1 slot-per-original-pc mapping: a fused pair occupies
/// the first constituent's slot and advances the pc by 2, while the
/// second constituent's slot stays decoded-but-unreachable. Jump
/// targets and barrier-resume pcs therefore need no remapping, which is
/// what makes fusion legality purely local (never fuse when the second
/// instruction is a jump target). Code has one extra trailing Halt
/// sentinel slot so a jump to Code.size() — which verifyKernel permits —
/// halts instead of running off the program.
struct ExecProgram {
  std::vector<ExecInstr> Code;
  /// Superinstructions formed (0 when fusion was off or nothing fused).
  size_t FusedPairs = 0;
  /// Conditional-branch sites numbered (Jz/Jnz in pc order).
  int BranchSiteCount = 0;
};

/// Lowers \p K (which must satisfy verifyKernel) into \p Out, reusing
/// Out's storage across launches. With \p Fuse, runs the peephole
/// superinstruction pass over the pairs the opcode profiler ranks
/// hottest on the real synthesized workload: LoadConst+BinOp,
/// LoadMem+BinOp, BinOp+StoreMem, the BinOp+Jz/Jnz compare-branch
/// fusions, and the remaining head of topPairs (BinOp+Mov,
/// BinOp+LoadMem, BinOp+LoadConst, Mov+LoadConst, Mov+Mov, Mov+BinOp,
/// BinOp+BinOp, Cast+Mov, CallB+Mov, Mov+Jmp). Pairs involving a
/// BinOp fuse into the per-operation specialization of their family.
void prepareExecProgram(const CompiledKernel &K, bool Fuse,
                        ExecProgram &Out);

/// Compiles kernel \p Kernel of program \p P (which must have passed
/// ocl::analyze). On failure returns a diagnostic; constructs the paper's
/// "does not compile to PTX" rejection condition together with the parser
/// and Sema.
Result<CompiledKernel> compileKernel(const ocl::Program &P,
                                     const ocl::FunctionDecl &Kernel);

/// Convenience: parse + analyze + compile the first kernel in \p Source.
Result<CompiledKernel> compileFirstKernel(const std::string &Source);

} // namespace vm
} // namespace clgen

#endif // CLGEN_VM_COMPILER_H

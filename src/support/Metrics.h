//===- support/Metrics.h - Process-wide metrics registry ---------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of counters, gauges and log-bucketed latency
/// histograms: the single reporting path for every subsystem (pool,
/// channel, pipeline, driver, store). Design points:
///
///  - Sharded counters: `Counter` spreads increments over cache-line
///    padded atomic shards indexed by a per-thread slot, so hot-path
///    `inc()` never contends across workers. `value()` sums the shards.
///  - Log-bucketed histograms: `Histogram` buckets by bit width, bucket
///    0 holds exactly {0} and bucket B >= 1 covers [2^(B-1), 2^B - 1].
///    65 buckets span the full uint64 range; recording is lock-free.
///  - Stability taxonomy: every metric registers as `Stable` (a pure
///    function of the workload — byte-identical across identical runs)
///    or `Volatile` (timing- or scheduling-dependent: durations, steal
///    counts, queue occupancy). `renderText({.SkipVolatile = true})`
///    is the byte-stability contract the pipeline tests enforce.
///  - Deterministic exposition: `renderText` emits integers only,
///    sorted by metric name, one line per metric — identical registry
///    state always renders identical bytes.
///
/// Instrumentation sites use the `CLGS_COUNT`/`CLGS_HIST_US`/... macros
/// below. Like the failpoint framework, the sites compile in only under
/// `-DCLGS_TELEMETRY=ON` (the default); with telemetry compiled out
/// every macro expands to nothing and the binary carries no per-site
/// cost at all — `scripts/check_overhead.sh` proves the OFF build
/// drifts by nothing. The registry API itself is always compiled so
/// tools can render (an empty) exposition unconditionally.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_SUPPORT_METRICS_H
#define CLGEN_SUPPORT_METRICS_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace clgen {
namespace support {

/// True when this binary was built with -DCLGS_TELEMETRY=ON, i.e. the
/// CLGS_COUNT / CLGS_HIST_US / trace-span instrumentation sites are
/// compiled in. Mirrors FailPoints::sitesCompiledIn().
bool telemetryCompiledIn();

/// Steady-clock nanoseconds; the shared time source for histograms and
/// trace spans (monotonic, comparable within one process).
uint64_t telemetryNowNs();

/// How a metric behaves across identical runs of the same workload.
enum class MetricStability : uint8_t {
  /// A pure function of the workload: byte-identical across identical
  /// runs for any worker count (accepted kernels, cache hits, ...).
  Stable,
  /// Timing- or scheduling-dependent (durations, steals, occupancy):
  /// excluded from the byte-stability contract.
  Volatile,
};

/// Monotonic event counter, sharded to keep concurrent `inc()` free of
/// cross-thread cache-line contention.
class Counter {
public:
  void inc(uint64_t N = 1) {
    Shards[shardIndex()].V.fetch_add(N, std::memory_order_relaxed);
  }

  /// Sum over all shards. Exact once writers are quiescent; a snapshot
  /// otherwise.
  uint64_t value() const {
    uint64_t Sum = 0;
    for (const Shard &S : Shards)
      Sum += S.V.load(std::memory_order_relaxed);
    return Sum;
  }

  void reset() {
    for (Shard &S : Shards)
      S.V.store(0, std::memory_order_relaxed);
  }

private:
  static constexpr size_t NumShards = 8; // Power of two.

  static unsigned shardIndex() {
    static std::atomic<unsigned> Next{0};
    thread_local unsigned Mine =
        Next.fetch_add(1, std::memory_order_relaxed) & (NumShards - 1);
    return Mine;
  }

  struct alignas(64) Shard {
    std::atomic<uint64_t> V{0};
  };
  Shard Shards[NumShards];
};

/// Last-value gauge that also tracks the maximum ever set — e.g. queue
/// occupancy (last) and high-water mark (max).
class Gauge {
public:
  void set(int64_t V) {
    Last.store(V, std::memory_order_relaxed);
    updateMax(V);
  }

  /// Adds \p Delta (may be negative) and returns the new value; the
  /// maximum tracks the post-add value.
  int64_t add(int64_t Delta) {
    int64_t Now = Last.fetch_add(Delta, std::memory_order_relaxed) + Delta;
    updateMax(Now);
    return Now;
  }

  int64_t value() const { return Last.load(std::memory_order_relaxed); }
  int64_t maxValue() const { return Max.load(std::memory_order_relaxed); }

  void reset() {
    Last.store(0, std::memory_order_relaxed);
    Max.store(0, std::memory_order_relaxed);
  }

private:
  void updateMax(int64_t V) {
    int64_t Cur = Max.load(std::memory_order_relaxed);
    while (V > Cur &&
           !Max.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
    }
  }

  std::atomic<int64_t> Last{0};
  std::atomic<int64_t> Max{0};
};

/// Lock-free log₂-bucketed histogram of uint64 samples (typically
/// microsecond latencies). Bucket 0 holds exactly {0}; bucket B >= 1
/// covers [2^(B-1), 2^B - 1].
class Histogram {
public:
  static constexpr size_t NumBuckets = 65;

  /// Bucket index for \p V: 0 for 0, otherwise bit_width(V).
  static size_t bucketFor(uint64_t V) {
    size_t W = 0;
    while (V != 0) {
      ++W;
      V >>= 1;
    }
    return W;
  }

  /// Smallest value mapped to bucket \p B (0, 1, 2, 4, 8, ...).
  static uint64_t bucketLowerBound(size_t B) {
    return B == 0 ? 0 : uint64_t(1) << (B - 1);
  }

  void record(uint64_t V) {
    Buckets[bucketFor(V)].fetch_add(1, std::memory_order_relaxed);
    Count_.fetch_add(1, std::memory_order_relaxed);
    Sum_.fetch_add(V, std::memory_order_relaxed);
    atomicMin(Min_, V);
    atomicMax(Max_, V);
  }

  /// Folds \p Other into this histogram (exact when both are quiescent).
  void merge(const Histogram &Other) {
    for (size_t B = 0; B < NumBuckets; ++B)
      Buckets[B].fetch_add(Other.Buckets[B].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    uint64_t OtherCount = Other.Count_.load(std::memory_order_relaxed);
    if (OtherCount == 0)
      return;
    Count_.fetch_add(OtherCount, std::memory_order_relaxed);
    Sum_.fetch_add(Other.Sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    atomicMin(Min_, Other.Min_.load(std::memory_order_relaxed));
    atomicMax(Max_, Other.Max_.load(std::memory_order_relaxed));
  }

  uint64_t count() const { return Count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  uint64_t min() const {
    return count() == 0 ? 0 : Min_.load(std::memory_order_relaxed);
  }
  uint64_t max() const { return Max_.load(std::memory_order_relaxed); }
  uint64_t bucketCount(size_t B) const {
    return Buckets[B].load(std::memory_order_relaxed);
  }

  void reset() {
    for (auto &B : Buckets)
      B.store(0, std::memory_order_relaxed);
    Count_.store(0, std::memory_order_relaxed);
    Sum_.store(0, std::memory_order_relaxed);
    Min_.store(UINT64_MAX, std::memory_order_relaxed);
    Max_.store(0, std::memory_order_relaxed);
  }

private:
  static void atomicMin(std::atomic<uint64_t> &A, uint64_t V) {
    uint64_t Cur = A.load(std::memory_order_relaxed);
    while (V < Cur &&
           !A.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
    }
  }
  static void atomicMax(std::atomic<uint64_t> &A, uint64_t V) {
    uint64_t Cur = A.load(std::memory_order_relaxed);
    while (V > Cur &&
           !A.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> Count_{0};
  std::atomic<uint64_t> Sum_{0};
  std::atomic<uint64_t> Min_{UINT64_MAX};
  std::atomic<uint64_t> Max_{0};
};

/// Options for MetricsRegistry::renderText.
struct RenderOptions {
  /// Drop Volatile metrics; what remains is byte-identical across
  /// identical runs of the same workload.
  bool SkipVolatile = false;
};

/// The process-wide metric namespace. Registration returns a reference
/// that stays valid for the life of the process (instrumentation sites
/// cache it in a function-local static); `reset()` zeroes values but
/// never invalidates handles. Registering the same (kind, name) twice
/// returns the same metric; the first registration's stability wins.
class MetricsRegistry {
public:
  static Counter &counter(std::string_view Name,
                          MetricStability S = MetricStability::Stable);
  static Gauge &gauge(std::string_view Name,
                      MetricStability S = MetricStability::Volatile);
  static Histogram &histogram(std::string_view Name,
                              MetricStability S = MetricStability::Volatile);

  /// Lookup without registering; nullptr when the metric was never
  /// registered in this process. For tests and report generators.
  static const Counter *findCounter(std::string_view Name);
  static const Gauge *findGauge(std::string_view Name);
  static const Histogram *findHistogram(std::string_view Name);

  /// Deterministic text exposition: one line per metric, sorted by
  /// name, integers only. Identical registry state renders identical
  /// bytes. Format (v1):
  ///
  ///   # clgen metrics v1
  ///   counter <name> <value> <stable|volatile>
  ///   gauge <name> last=<v> max=<m> <stable|volatile>
  ///   histogram <name> count=<c> sum=<s> min=<lo> max=<hi>
  ///       buckets=<b>:<n>,... <stable|volatile>   (one line)
  ///
  /// Empty histograms render `buckets=-`.
  static std::string renderText(const RenderOptions &Opts = {});

  /// Zeroes every registered metric (handles stay valid). For tests
  /// and per-run reporting.
  static void reset();
};

} // namespace support
} // namespace clgen

//===----------------------------------------------------------------------===//
// Instrumentation-site macros (compiled out under CLGS_TELEMETRY=OFF)
//===----------------------------------------------------------------------===//
//
// Each site pays one function-local-static guard check plus a relaxed
// atomic op when compiled in, and nothing at all when compiled out.
// NAME must be a string literal. The _V variants register the metric as
// Volatile (scheduling/timing dependent).

#if defined(CLGS_TELEMETRY)

#define CLGS_COUNT(NAME) CLGS_COUNT_N(NAME, 1)
#define CLGS_COUNT_N(NAME, N)                                                  \
  do {                                                                         \
    static ::clgen::support::Counter &ClgsC_ =                                 \
        ::clgen::support::MetricsRegistry::counter(NAME);                      \
    ClgsC_.inc(N);                                                             \
  } while (false)
#define CLGS_COUNT_V(NAME) CLGS_COUNT_VN(NAME, 1)
#define CLGS_COUNT_VN(NAME, N)                                                 \
  do {                                                                         \
    static ::clgen::support::Counter &ClgsC_ =                                 \
        ::clgen::support::MetricsRegistry::counter(                            \
            NAME, ::clgen::support::MetricStability::Volatile);                \
    ClgsC_.inc(N);                                                             \
  } while (false)
#define CLGS_GAUGE_ADD(NAME, DELTA)                                            \
  do {                                                                         \
    static ::clgen::support::Gauge &ClgsG_ =                                   \
        ::clgen::support::MetricsRegistry::gauge(NAME);                        \
    ClgsG_.add(DELTA);                                                         \
  } while (false)
#define CLGS_GAUGE_SET(NAME, VALUE)                                            \
  do {                                                                         \
    static ::clgen::support::Gauge &ClgsG_ =                                   \
        ::clgen::support::MetricsRegistry::gauge(NAME);                        \
    ClgsG_.set(VALUE);                                                         \
  } while (false)
#define CLGS_HIST_US(NAME, VALUE)                                              \
  do {                                                                         \
    static ::clgen::support::Histogram &ClgsH_ =                               \
        ::clgen::support::MetricsRegistry::histogram(NAME);                    \
    ClgsH_.record(VALUE);                                                      \
  } while (false)
/// Wraps declarations/statements that only exist for telemetry (timing
/// locals and the like) so the OFF build carries none of them.
#define CLGS_TELEMETRY_ONLY(...) __VA_ARGS__

#else // !CLGS_TELEMETRY

#define CLGS_COUNT(NAME)                                                       \
  do {                                                                         \
  } while (false)
#define CLGS_COUNT_N(NAME, N)                                                  \
  do {                                                                         \
  } while (false)
#define CLGS_COUNT_V(NAME)                                                     \
  do {                                                                         \
  } while (false)
#define CLGS_COUNT_VN(NAME, N)                                                 \
  do {                                                                         \
  } while (false)
#define CLGS_GAUGE_ADD(NAME, DELTA)                                            \
  do {                                                                         \
  } while (false)
#define CLGS_GAUGE_SET(NAME, VALUE)                                            \
  do {                                                                         \
  } while (false)
#define CLGS_HIST_US(NAME, VALUE)                                              \
  do {                                                                         \
  } while (false)
#define CLGS_TELEMETRY_ONLY(...)

#endif // CLGS_TELEMETRY

#endif // CLGEN_SUPPORT_METRICS_H

//===- tests/clgen/PipelineStreamTest.cpp - streaming pipeline golden tests ---===//
//
// The determinism contract of the async synthesis→measurement pipeline:
// core::synthesizeAndMeasure must produce BYTE-identical output to the
// phased path (synthesizeKernels, then runBenchmarkBatch) for every
// combination of synthesis workers, wave sizes, measurement workers and
// queue capacities — with no cache, with a cold cache, and with a
// pre-warmed ResultCache. Identity is checked on a canonical
// serialization of the whole result (sources + bytecode + stats +
// measurements), not field spot-checks.
//
//===----------------------------------------------------------------------===//

#include "clgen/Pipeline.h"

#include "githubsim/GithubSim.h"
#include "store/ResultCache.h"
#include "store/Serialization.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

using namespace clgen;
using namespace clgen::core;

namespace {

/// Fresh per-test scratch directory, removed on destruction.
class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name)
      : Path(std::filesystem::temp_directory_path() /
             ("clgen_stream_test_" + Name)) {
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }

private:
  std::filesystem::path Path;
};

/// Canonical byte image of a (kernels, stats, measurements) outcome.
/// Two outcomes are "the same result" iff these bytes are equal.
std::vector<uint8_t>
resultBytes(const std::vector<SynthesizedKernel> &Kernels,
            const SynthesisStats &Stats,
            const std::vector<Result<runtime::Measurement>> &Measurements) {
  store::ArchiveWriter W(store::ArchiveKind::Synthesis);
  W.writeU64(Stats.Attempts);
  W.writeU64(Stats.IncompleteSamples);
  W.writeU64(Stats.RejectedByFilter);
  W.writeU64(Stats.Duplicates);
  W.writeU64(Stats.Accepted);
  W.writeU64(Kernels.size());
  for (const SynthesizedKernel &K : Kernels) {
    W.writeString(K.Source);
    store::serializeCompiledKernel(W, K.Kernel);
  }
  W.writeU64(Measurements.size());
  for (const auto &M : Measurements) {
    W.writeBool(M.ok());
    if (M.ok())
      store::serializeMeasurement(W, M.get());
    else
      W.writeString(M.errorMessage());
  }
  return W.finalize();
}

struct Workload {
  std::unique_ptr<ClgenPipeline> Pipeline;
  SynthesisOptions Synthesis;
  runtime::DriverOptions Driver;
  runtime::Platform P = runtime::amdPlatform();
  /// The phased reference this PR's engine must reproduce byte for
  /// byte: full synthesis, then a batched measurement pass.
  std::vector<SynthesizedKernel> RefKernels;
  SynthesisStats RefStats;
  std::vector<Result<runtime::Measurement>> RefMeasurements;
  std::vector<uint8_t> RefBytes;
};

Workload makeWorkload(size_t TargetKernels) {
  Workload W;
  githubsim::GithubSimOptions GOpts;
  GOpts.FileCount = 60;
  auto Files = githubsim::mineGithub(GOpts);
  PipelineOptions POpts;
  POpts.NGram.Order = 8;
  W.Pipeline = std::make_unique<ClgenPipeline>(
      ClgenPipeline::train(Files, POpts));

  W.Synthesis.TargetKernels = TargetKernels;
  W.Synthesis.MaxAttempts = 6000;
  W.Driver.GlobalSize = 2048;

  SynthesisResult SR = W.Pipeline->synthesize(W.Synthesis);
  std::vector<vm::CompiledKernel> Kernels;
  for (auto &K : SR.Kernels)
    Kernels.push_back(K.Kernel);
  W.RefMeasurements = runtime::runBenchmarkBatch(Kernels, W.P, W.Driver, 1);
  W.RefKernels = std::move(SR.Kernels);
  W.RefStats = SR.Stats;
  W.RefBytes = resultBytes(W.RefKernels, W.RefStats, W.RefMeasurements);
  return W;
}

void expectMatchesReference(const Workload &W, const StreamingResult &Out,
                            const std::string &Config) {
  EXPECT_EQ(resultBytes(Out.Kernels, Out.Stats, Out.Measurements),
            W.RefBytes)
      << "streaming output diverged from the phased path [" << Config
      << "]";
}

unsigned hardwareWorkers() {
  unsigned HW = std::thread::hardware_concurrency();
  return HW > 0 ? HW : 1;
}

} // namespace

TEST(PipelineStreamTest, GoldenAcrossWorkerCountsAndWaveSizes) {
  Workload W = makeWorkload(/*TargetKernels=*/5);
  ASSERT_EQ(W.RefKernels.size(), 5u)
      << "workload regressed; golden comparison would be vacuous";

  // {1, 2, hardware} for both sides of the pipe, crossed with wave
  // sizes and bounded queue capacities (1 = maximal back-pressure).
  for (unsigned SynthWorkers : {1u, 2u, hardwareWorkers()}) {
    for (unsigned MeasureWorkers : {1u, 2u, hardwareWorkers()}) {
      for (size_t WaveSize : {size_t(0), size_t(4)}) {
        StreamingOptions Opts;
        Opts.Synthesis = W.Synthesis;
        Opts.Synthesis.Workers = SynthWorkers;
        Opts.Synthesis.WaveSize = WaveSize;
        Opts.Driver = W.Driver;
        Opts.MeasureWorkers = MeasureWorkers;
        Opts.QueueCapacity = 1 + (WaveSize % 3);
        auto Out = W.Pipeline->synthesizeAndMeasure(W.P, Opts);
        expectMatchesReference(
            W, Out,
            "synth=" + std::to_string(SynthWorkers) +
                " measure=" + std::to_string(MeasureWorkers) +
                " wave=" + std::to_string(WaveSize));
      }
    }
  }
}

TEST(PipelineStreamTest, GoldenWithColdAndPrewarmedCache) {
  Workload W = makeWorkload(/*TargetKernels=*/4);
  ScratchDir Dir("golden_cache");

  // Cold cache: everything misses at enqueue time, results match, and
  // the cache comes out populated.
  store::ResultCache Cache(Dir.str());
  StreamingOptions Opts;
  Opts.Synthesis = W.Synthesis;
  Opts.Driver = W.Driver;
  Opts.MeasureWorkers = 2;
  Opts.Cache = &Cache;
  auto Cold = W.Pipeline->synthesizeAndMeasure(W.P, Opts);
  expectMatchesReference(W, Cold, "cold cache");
  EXPECT_EQ(Cold.CacheStats.Hits, 0u);
  EXPECT_EQ(Cold.CacheStats.Misses, W.RefKernels.size());

  // Pre-warmed cache (fresh instance, so hits come off disk): every
  // successful measurement is resolved at enqueue time — zero
  // measurement slots occupied — and output is still byte-identical.
  size_t Successes = 0;
  for (const auto &M : W.RefMeasurements)
    Successes += M.ok() ? 1 : 0;
  store::ResultCache Warmed(Dir.str());
  Opts.Cache = &Warmed;
  auto Warm = W.Pipeline->synthesizeAndMeasure(W.P, Opts);
  expectMatchesReference(W, Warm, "pre-warmed cache");
  EXPECT_EQ(Warm.CacheStats.Hits, Successes)
      << "every cached measurement must be served at enqueue time";
  EXPECT_EQ(Warm.CacheStats.Misses, W.RefKernels.size() - Successes)
      << "only uncached (failed-last-time) kernels may reach a slot";

  // And the phased cached batch agrees with the streaming cache hits,
  // closing the loop between the two engines sharing one store.
  std::vector<vm::CompiledKernel> Kernels;
  for (auto &K : W.RefKernels)
    Kernels.push_back(K.Kernel);
  runtime::BatchCacheStats Phased;
  auto PhasedOut =
      runtime::runBenchmarkBatch(Kernels, W.P, W.Driver, 2, Warmed, &Phased);
  EXPECT_EQ(Phased.Hits, Successes);
  EXPECT_EQ(resultBytes(W.RefKernels, W.RefStats, PhasedOut), W.RefBytes);
}

TEST(PipelineStreamTest, TargetShortfallTrimsResultSlots) {
  // When MaxAttempts exhausts before the target, the streaming result
  // must trim to the accepted count and still match the phased path.
  Workload W = makeWorkload(/*TargetKernels=*/3);
  StreamingOptions Opts;
  Opts.Synthesis = W.Synthesis;
  Opts.Synthesis.TargetKernels = W.RefKernels.size() + 50;
  Opts.Synthesis.MaxAttempts = W.RefStats.Attempts; // Stop exactly there.
  Opts.Driver = W.Driver;
  Opts.MeasureWorkers = 2;
  auto Out = W.Pipeline->synthesizeAndMeasure(W.P, Opts);
  EXPECT_EQ(Out.Kernels.size(), Out.Measurements.size());
  ASSERT_EQ(Out.Kernels.size(), W.RefKernels.size());
  expectMatchesReference(W, Out, "target shortfall");
}

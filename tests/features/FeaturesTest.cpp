//===- tests/features/FeaturesTest.cpp - feature extraction tests -------------===//

#include "features/Features.h"

#include "vm/Compiler.h"

#include <gtest/gtest.h>

using namespace clgen;
using namespace clgen::features;

namespace {

StaticFeatures featuresOf(const std::string &Src) {
  auto R = vm::compileFirstKernel(Src);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.errorMessage());
  return extractStaticFeatures(R.get());
}

} // namespace

TEST(FeaturesTest, CountsGlobalAccesses) {
  StaticFeatures F = featuresOf(
      "__kernel void k(__global float* a, __global float* b, const int n)"
      " {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { b[i] = a[i] + a[i + 1]; }\n"
      "}\n");
  EXPECT_EQ(F.Mem, 3);       // Two loads + one store.
  EXPECT_EQ(F.Coalesced, 3); // All gid-affine stride 1.
  EXPECT_EQ(F.LocalMem, 0);
  EXPECT_EQ(F.Branches, 1);
}

TEST(FeaturesTest, CountsLocalAccesses) {
  StaticFeatures F = featuresOf(
      "__kernel void k(__global float* a) {\n"
      "  __local float t[64];\n"
      "  int l = get_local_id(0) & 63;\n"
      "  t[l] = a[get_global_id(0)];\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  a[get_global_id(0)] = t[63 - l];\n"
      "}\n");
  EXPECT_EQ(F.LocalMem, 2);
  EXPECT_EQ(F.Mem, 2);
}

TEST(FeaturesTest, BranchCountMatchesControlFlow) {
  StaticFeatures F = featuresOf(
      "__kernel void k(__global float* a, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i >= n) { return; }\n"
      "  for (int j = 0; j < 4; j++) {\n"
      "    if (a[i] > 0.5f) { a[i] -= 0.1f; }\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(F.Branches, 3); // Guard, loop condition, inner if.
}

TEST(FeaturesTest, UncoalescedStrided) {
  StaticFeatures F = featuresOf(
      "__kernel void k(__global float* a, __global float* b, const int n)"
      " {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { b[i] = a[(i * 64) % n]; }\n"
      "}\n");
  EXPECT_EQ(F.Mem, 2);
  EXPECT_EQ(F.Coalesced, 1); // Only the store.
}

TEST(FeaturesTest, GreweCombinedFeatures) {
  RawFeatures Raw;
  Raw.Static.Comp = 10;
  Raw.Static.Mem = 5;
  Raw.Static.LocalMem = 2;
  Raw.Static.Coalesced = 4;
  Raw.TransferBytes = 300;
  Raw.WgSize = 100;
  auto V = greweFeatureVector(Raw);
  ASSERT_EQ(V.size(), 4u);
  EXPECT_DOUBLE_EQ(V[0], 300.0 / 15.0); // F1 transfer/(comp+mem).
  EXPECT_DOUBLE_EQ(V[1], 4.0 / 5.0);    // F2 coalesced/mem.
  EXPECT_DOUBLE_EQ(V[2], (2.0 / 5.0) * 100.0); // F3.
  EXPECT_DOUBLE_EQ(V[3], 10.0 / 5.0);   // F4 comp/mem.
}

TEST(FeaturesTest, CombinedFeaturesGuardDivisionByZero) {
  RawFeatures Raw; // All zeros.
  auto V = greweFeatureVector(Raw);
  for (double X : V)
    EXPECT_DOUBLE_EQ(X, 0.0);
}

TEST(FeaturesTest, ExtendedVectorLayout) {
  RawFeatures Raw;
  Raw.Static.Comp = 7;
  Raw.Static.Branches = 3;
  Raw.TransferBytes = 64;
  Raw.WgSize = 32;
  auto V = extendedFeatureVector(Raw);
  ASSERT_EQ(V.size(), 11u);
  EXPECT_DOUBLE_EQ(V[4], 7.0);   // Raw comp.
  EXPECT_DOUBLE_EQ(V[8], 64.0);  // Transfer.
  EXPECT_DOUBLE_EQ(V[9], 32.0);  // WgSize.
  EXPECT_DOUBLE_EQ(V[10], 3.0);  // Branches.
  EXPECT_EQ(extendedFeatureNames().size(), 11u);
  EXPECT_EQ(greweFeatureNames().size(), 4u);
}

TEST(FeaturesTest, FeatureKeyEquality) {
  // The paper's Listing 2: two structurally different kernels, identical
  // Table-2a features, separated only by the branch count.
  StaticFeatures A = featuresOf(
      "__kernel void a(__global float* a, __global float* b,\n"
      "                __global float* c, const int d) {\n"
      "  int e = get_global_id(0);\n"
      "  if (e < 4 && e < d) {\n"
      "    c[e] = a[e] + b[e];\n"
      "    a[e] = b[e] + 1.0f;\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(A.key()[0], A.Comp);
  EXPECT_EQ(A.keyNoBranch().size(), 4u);
  EXPECT_EQ(A.key().size(), 5u);
  // keyNoBranch ignores branches; key includes them.
  StaticFeatures B = A;
  B.Branches += 2;
  EXPECT_EQ(A.keyNoBranch(), B.keyNoBranch());
  EXPECT_NE(A.key(), B.key());
}

TEST(FeaturesTest, MathBuiltinsCountAsCompute) {
  StaticFeatures WithMath = featuresOf(
      "__kernel void k(__global float* a, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { a[i] = sqrt(a[i]) + sin(a[i]); }\n"
      "}\n");
  StaticFeatures NoMath = featuresOf(
      "__kernel void k(__global float* a, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { a[i] = a[i]; }\n"
      "}\n");
  EXPECT_GT(WithMath.Comp, NoMath.Comp);
}

//===----------------------------------------------------------------------===//
// Property tests: exact vectors, batch-order invariance, parallel merge
//===----------------------------------------------------------------------===//

namespace {

/// A family of distinct kernels whose feature vectors differ, so any
/// merge-order bug in the parallel extractor shows up as a mismatch.
std::vector<vm::CompiledKernel> compileFamily(size_t Count) {
  std::vector<vm::CompiledKernel> Kernels;
  for (size_t I = 0; I < Count; ++I) {
    std::string Body = "  int i = get_global_id(0);\n  if (i < n) {\n";
    for (size_t J = 0; J <= I % 5; ++J)
      Body += "    a[i] = a[i] * 2.0f + 1.0f;\n";
    if (I % 3 == 0)
      Body += "    a[i] += a[i + 7];\n"; // Extra (strided) access.
    Body += "  }\n";
    auto R = vm::compileFirstKernel(
        "__kernel void k(__global float* a, const int n) {\n" + Body + "}\n");
    EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.errorMessage());
    Kernels.push_back(R.take());
  }
  return Kernels;
}

bool sameFeatures(const StaticFeatures &A, const StaticFeatures &B) {
  return A.Comp == B.Comp && A.Mem == B.Mem && A.LocalMem == B.LocalMem &&
         A.Coalesced == B.Coalesced && A.Branches == B.Branches;
}

} // namespace

TEST(FeaturesTest, HandComputedFullVector) {
  // Every feature of a small kernel, computed by hand from its source:
  // 2 global accesses (1 load + 1 store), both gid-affine stride-1;
  // one guard branch; no local memory.
  StaticFeatures F = featuresOf(
      "__kernel void k(__global float* a, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { a[i] = a[i] + 1.0f; }\n"
      "}\n");
  EXPECT_EQ(F.Mem, 2);
  EXPECT_EQ(F.Coalesced, 2);
  EXPECT_EQ(F.LocalMem, 0);
  EXPECT_EQ(F.Branches, 1);
  EXPECT_GT(F.Comp, 0);

  RawFeatures Raw;
  Raw.Static = F;
  Raw.TransferBytes = 4096;
  Raw.WgSize = 64;
  auto Grewe = greweFeatureVector(Raw);
  ASSERT_EQ(Grewe.size(), 4u);
  // F1 = transfer/(comp+mem), F2 = coalesced/mem,
  // F3 = (localmem/mem)*wgsize, F4 = comp/mem — the exact ratios.
  EXPECT_DOUBLE_EQ(Grewe[0], 4096.0 / (F.Comp + F.Mem));
  EXPECT_DOUBLE_EQ(Grewe[1], 1.0);            // All accesses coalesced.
  EXPECT_DOUBLE_EQ(Grewe[2], 0.0);            // No local memory.
  EXPECT_DOUBLE_EQ(Grewe[3], F.Comp / F.Mem);
}

TEST(FeaturesTest, ExtractionIsIndependentOfBatchOrder) {
  // Features are a pure function of one kernel: position in the batch
  // must not leak into any element (no shared state in the extractor).
  std::vector<vm::CompiledKernel> Kernels = compileFamily(11);
  std::vector<vm::CompiledKernel> Reversed(Kernels.rbegin(), Kernels.rend());
  auto Forward = extractStaticFeaturesParallel(Kernels, 3);
  auto Backward = extractStaticFeaturesParallel(Reversed, 3);
  ASSERT_EQ(Forward.size(), Backward.size());
  for (size_t I = 0; I < Forward.size(); ++I)
    EXPECT_TRUE(
        sameFeatures(Forward[I], Backward[Backward.size() - 1 - I]))
        << I;
}

TEST(FeaturesTest, ParallelExtractionMatchesSerialForAnyWorkerCount) {
  std::vector<vm::CompiledKernel> Kernels = compileFamily(23);
  std::vector<StaticFeatures> Serial;
  for (const auto &K : Kernels)
    Serial.push_back(extractStaticFeatures(K));
  for (unsigned Workers : {1u, 2u, 5u, 0u}) {
    auto Par = extractStaticFeaturesParallel(Kernels, Workers);
    ASSERT_EQ(Par.size(), Serial.size()) << Workers;
    for (size_t I = 0; I < Serial.size(); ++I)
      EXPECT_TRUE(sameFeatures(Par[I], Serial[I]))
          << "worker count " << Workers << ", kernel " << I;
  }
}

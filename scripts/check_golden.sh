#!/usr/bin/env bash
#===- scripts/check_golden.sh - golden-artifact regression at CLI level --===//
#
# Drives the shipped experiment CLI (example_benchmark_runner
# --experiment) against a throwaway store and byte-diffs its report
# artifacts against the checked-in goldens under tests/golden/ — the
# same files ExperimentGoldenTest pins in-process. Two passes:
#
#   1. cold: a clean store, so the full loop (train, synthesize,
#      measure, cross-validate, render) runs and the reports are
#      freshly computed;
#   2. warm: the store populated by pass 1, which must serve all three
#      experiment archives ("0 models trained, 0 kernels measured" on
#      stdout) and still emit byte-identical reports.
#
# Passing proves the committed goldens, the library renderers and the
# CLI surface agree byte-for-byte, cold and warm. Registered as the
# ctest `check_golden` (label `golden`); run manually:
#
#   bash scripts/check_golden.sh <source-dir> <runner-binary>
#
#===----------------------------------------------------------------------===//

set -eu

SRC=${1:?usage: check_golden.sh <source-dir> <runner-binary>}
RUNNER=${2:?usage: check_golden.sh <source-dir> <runner-binary>}

GOLDEN="$SRC/tests/golden"
WORK=$(mktemp -d "${TMPDIR:-/tmp}/clgen_check_golden.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

for F in experiment_table1.txt experiment_fig9.txt; do
  [ -s "$GOLDEN/$F" ] || { echo "check_golden: missing golden $F" >&2; exit 1; }
done

run_pass() { # <label>
  local LABEL=$1
  local OUT="$WORK/$LABEL"
  echo "check_golden: $LABEL run"
  "$RUNNER" --experiment --cache-dir "$WORK/store" --report-out "$OUT" \
      > "$WORK/$LABEL.log"
  for F in experiment_table1.txt experiment_fig9.txt; do
    if ! cmp -s "$OUT/$F" "$GOLDEN/$F"; then
      echo "check_golden: $LABEL $F differs from the golden:" >&2
      diff "$GOLDEN/$F" "$OUT/$F" >&2 || true
      exit 1
    fi
  done
}

run_pass cold
grep -q "computed cold" "$WORK/cold.log" \
  || { echo "check_golden: first pass did not compute cold" >&2; exit 1; }

run_pass warm
grep -q "warm start" "$WORK/warm.log" \
  || { echo "check_golden: second pass did not warm-start" >&2; exit 1; }
grep -q "work: 0 models trained, 0 kernels measured" "$WORK/warm.log" \
  || { echo "check_golden: warm pass reported nonzero work" >&2; exit 1; }

echo "check_golden: OK (cold + warm reports byte-identical to tests/golden)"

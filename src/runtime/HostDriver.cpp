//===- runtime/HostDriver.cpp - Benchmark execution driver -------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/HostDriver.h"

#include "store/FailureLedger.h"
#include "store/Lock.h"
#include "store/ResultCache.h"
#include "support/FailPoint.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"
#include "vm/Compiler.h"
#include "vm/Profile.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

using namespace clgen;
using namespace clgen::runtime;
using namespace clgen::vm;

DriverOptions runtime::batchDriverOptions(const DriverOptions &Opts,
                                          const Rng &Base, size_t I) {
  DriverOptions KOpts = Opts;
  KOpts.Seed = Base.split(I).next();
  return KOpts;
}

Result<Measurement> runtime::runBenchmark(const CompiledKernel &Kernel,
                                          const Platform &P,
                                          const DriverOptions &Opts) {
  Rng R(Opts.Seed);

  if (Opts.RunDynamicCheck) {
    CheckOptions COpts;
    Rng CheckRng = R.fork();
    CheckResult CR = checkKernel(Kernel, COpts, CheckRng);
    if (!CR.useful())
      return Result<Measurement>::error(
          std::string("dynamic check failed: ") +
              checkOutcomeName(CR.Outcome) +
              (CR.Detail.empty() ? "" : " (" + CR.Detail + ")"),
          CR.Trap);
  }

  // Injected payload-generation failure (transient class: a retry
  // re-rolls and can clear).
  if (CLGS_FAILPOINT_KEYED("runtime.payload", Opts.Seed))
    return Result<Measurement>::error("injected fault at runtime.payload",
                                      TrapKind::Injected);

  PayloadOptions POpts;
  POpts.GlobalSize = Opts.GlobalSize;
  POpts.LocalSize = Opts.LocalSize;
  Payload Pl = generatePayload(Kernel, POpts, R);

  LaunchConfig Config;
  Config.GlobalSize[0] = Pl.GlobalSize;
  Config.LocalSize[0] = Pl.LocalSize;
  Config.MaxInstructions = Opts.MaxInstructions;
  Config.MaxWorkGroups = Opts.MaxSimulatedGroups;
  Config.WatchdogMs = Opts.WatchdogMs;
  Config.TrapDivZero = Opts.TrapDivZero;
  Config.Dispatch = Opts.Dispatch;

  // Profile into a launch-local buffer, then fold into the shared
  // aggregate exactly once — even failed launches executed real
  // instructions, and those counts are part of the corpus's dynamic
  // opcode mix.
  OpcodeProfile LocalProf;
  if (Opts.Profile)
    Config.Profile = &LocalProf;

  auto Run = launchKernel(Kernel, Pl.Args, Pl.Buffers, Config);
  if (Opts.Profile)
    Opts.Profile->add(LocalProf);
  if (!Run.ok())
    return Result<Measurement>::error("launch failed: " +
                                          Run.errorMessage(),
                                      Run.trap());

  Measurement M;
  M.Counters = Run.get();
  M.Transfer = Pl.Transfer;
  M.GlobalSize = Pl.GlobalSize;
  M.LocalSize = Pl.LocalSize;
  M.CpuTime = estimateRuntime(P.Cpu, M.Counters, M.Transfer);
  M.GpuTime = estimateRuntime(P.Gpu, M.Counters, M.Transfer);
  return M;
}

Result<Measurement> runtime::runBenchmark(const std::string &Source,
                                          const Platform &P,
                                          const DriverOptions &Opts) {
  auto Kernel = compileFirstKernel(Source);
  if (!Kernel.ok())
    return Result<Measurement>::error("compile failed: " +
                                          Kernel.errorMessage(),
                                      TrapKind::CompileError);
  return runBenchmark(Kernel.get(), P, Opts);
}

Result<Measurement>
runtime::runBenchmarkWithRetry(const CompiledKernel &Kernel,
                               const Platform &P, const DriverOptions &Opts,
                               uint32_t *AttemptsOut) {
  CLGS_TELEMETRY_ONLY(uint64_t T0 = support::telemetryNowNs();)
  for (uint32_t Attempt = 0;; ++Attempt) {
    Result<Measurement> M = runBenchmark(Kernel, P, Opts);
    if (AttemptsOut)
      *AttemptsOut = Attempt + 1;
    // Deterministic failures cannot clear on retry; retrying them would
    // just triple the cost of every genuinely bad kernel.
    if (M.ok() || Attempt >= Opts.MaxRetries || !isTransientTrap(M.trap())) {
      CLGS_HIST_US("clgen.driver.measure_us",
                   (support::telemetryNowNs() - T0) / 1000);
      if (M.ok()) {
        CLGS_COUNT("clgen.driver.measurements");
      } else {
        CLGS_COUNT("clgen.driver.failures");
        // Watchdog fires on host load, not workload: volatile.
        CLGS_TELEMETRY_ONLY(if (M.trap() == TrapKind::WatchdogTimeout)
                                CLGS_COUNT_V("clgen.driver.watchdog_timeouts");)
      }
      return M;
    }
    CLGS_COUNT("clgen.driver.retries");
    CLGS_TRACE_INSTANT_IDX("driver.retry", Attempt);
    if (Opts.RetryBackoffMs)
      std::this_thread::sleep_for(std::chrono::milliseconds(
          retryBackoffMs(Opts.RetryBackoffMs, Attempt)));
  }
}

uint64_t runtime::retryBackoffMs(uint32_t BackoffMs, uint32_t Attempt) {
  if (BackoffMs == 0)
    return 0;
  // Shifting a uint64 by >= 64 is UB; anything past 63 saturates long
  // before the shift matters, and past ~35 bits the product exceeds
  // the cap anyway, so one clamped shift plus a compare is total.
  uint32_t Shift = Attempt < 63 ? Attempt : 63;
  uint64_t Sleep = Shift >= 64 - 32
                       ? MaxRetrySleepMs // uint32 base << >=32 bits: over.
                       : static_cast<uint64_t>(BackoffMs) << Shift;
  return Sleep < MaxRetrySleepMs ? Sleep : MaxRetrySleepMs;
}

std::vector<Result<Measurement>>
runtime::runBenchmarkBatch(const std::vector<CompiledKernel> &Kernels,
                           const Platform &P, const DriverOptions &Opts,
                           unsigned Workers) {
  std::vector<Result<Measurement>> Out(
      Kernels.size(), Result<Measurement>::error("not measured"));
  Rng Base(Opts.Seed);
  auto MeasureOne = [&](size_t I) {
    CLGS_TRACE_SPAN_IDX("measure", I);
    Out[I] =
        runBenchmarkWithRetry(Kernels[I], P, batchDriverOptions(Opts, Base, I));
  };
  size_t N =
      std::min(ThreadPool::resolveWorkerCount(Workers), Kernels.size());
  if (N <= 1 || Kernels.size() <= 1) {
    for (size_t I = 0; I < Kernels.size(); ++I)
      MeasureOne(I);
    return Out;
  }
  ThreadPool Pool(N);
  Pool.parallelFor(0, Kernels.size(),
                   [&](size_t, size_t I) { MeasureOne(I); });
  return Out;
}

std::vector<Result<Measurement>>
runtime::runBenchmarkBatch(const std::vector<CompiledKernel> &Kernels,
                           const Platform &P, const DriverOptions &Opts,
                           unsigned Workers, store::ResultCache &Cache,
                           BatchCacheStats *CacheStats,
                           store::FailureLedger *Ledger) {
  std::vector<Result<Measurement>> Out(
      Kernels.size(), Result<Measurement>::error("not measured"));
  Rng Base(Opts.Seed);

  // Resolve the per-kernel effective options first (the key includes the
  // split payload seed), then probe the cache and the failure ledger;
  // only genuine misses execute. A ledger negative hit replays the
  // recorded diagnostic byte-identically, so re-runs over a corpus of
  // mostly-bad kernels cost file reads, not measurements.
  std::vector<DriverOptions> KernelOpts(Kernels.size(), Opts);
  std::vector<uint64_t> Keys(Kernels.size());
  std::vector<size_t> MissIndices;
  BatchCacheStats Tally;
  for (size_t I = 0; I < Kernels.size(); ++I) {
    KernelOpts[I] = batchDriverOptions(Opts, Base, I);
    Keys[I] = store::measurementKey(Kernels[I], KernelOpts[I], P);
    if (auto Cached = Cache.lookup(Keys[I])) {
      Out[I] = *Cached;
      ++Tally.Hits;
    } else if (auto Known = Ledger ? Ledger->lookup(Keys[I])
                                   : std::nullopt) {
      Out[I] = Result<Measurement>::error(Known->Detail, Known->Kind);
      ++Tally.LedgerHits;
    } else {
      MissIndices.push_back(I);
      ++Tally.Misses;
    }
  }

  // Stampede control over the expensive miss path: concurrent cold
  // batches of one configuration serialize on an advisory lock keyed
  // by the digest of the WHOLE batch key set — not the miss subset,
  // which would let a racer that probed mid-publication (seeing a
  // different subset) take a different lock and duplicate work. The
  // warm path (no misses) never touches a lock; uncontended misses
  // skip the poll loop via tryAcquire; racers wait; every holder
  // RE-PROBES the cache (double-checked locking) and measures just
  // what the winner did not publish. A failed or timed-out lock
  // degrades to duplicated measurement — results are identical either
  // way, because the simulator is deterministic and write-back is
  // atomic. Tally counts what THIS call measured vs served from cache,
  // so exactly-once stress tests can sum Misses across racers.
  store::ScopedLock BatchLock; // Held (if taken) until measurement ends.
  if (!MissIndices.empty() && Cache.directoryOk()) {
    uint64_t BatchDigest = 0xCBF29CE484222325ull;
    for (uint64_t Key : Keys)
      BatchDigest = store::fnv1a64(&Key, sizeof(Key), BatchDigest);
    BatchLock = store::ScopedLock::acquireForMiss(
        store::lockFilePath(Cache.directory(), "batch", BatchDigest));
    if (BatchLock.held()) {
      // Re-probe under the lock, even when it was uncontended: a racer
      // may have published and released between our first probe and
      // the acquisition, and holders always publish before releasing —
      // so whatever is going to exist already does. This is what makes
      // "K concurrent cold batches measure each kernel exactly once"
      // strict rather than probabilistic.
      std::vector<size_t> StillMissing;
      for (size_t I : MissIndices) {
        if (auto Cached = Cache.lookup(Keys[I])) {
          Out[I] = *Cached;
          ++Tally.Hits;
          --Tally.Misses;
        } else if (auto Known = Ledger ? Ledger->lookup(Keys[I])
                                       : std::nullopt) {
          // A racer measured this kernel, watched it fail and recorded
          // the failure while we waited on the lock.
          Out[I] = Result<Measurement>::error(Known->Detail, Known->Kind);
          ++Tally.LedgerHits;
          --Tally.Misses;
        } else {
          StillMissing.push_back(I);
        }
      }
      MissIndices = std::move(StillMissing);
    }
  }

  std::atomic<size_t> LedgerRecords{0};
  auto MeasureOne = [&](size_t I) {
    CLGS_TRACE_SPAN_IDX("measure", I);
    uint32_t Attempts = 0;
    Out[I] = runBenchmarkWithRetry(Kernels[I], P, KernelOpts[I], &Attempts);
    if (Out[I].ok()) {
      Cache.store(Keys[I], Out[I].get());
    } else if (Ledger) {
      // record() refuses non-deterministic kinds itself; count only
      // admitted records so the tally matches the ledger's view.
      store::FailureRecord Rec;
      Rec.Kind = Out[I].trap();
      Rec.Detail = Out[I].errorMessage();
      Rec.Attempts = Attempts;
      if (isDeterministicTrap(Rec.Kind) && Ledger->record(Keys[I], Rec).ok())
        LedgerRecords.fetch_add(1, std::memory_order_relaxed);
    }
  };
  size_t N =
      std::min(ThreadPool::resolveWorkerCount(Workers), MissIndices.size());
  if (N <= 1 || MissIndices.size() <= 1) {
    for (size_t I : MissIndices)
      MeasureOne(I);
  } else {
    ThreadPool Pool(N);
    Pool.parallelFor(0, MissIndices.size(),
                     [&](size_t, size_t J) { MeasureOne(MissIndices[J]); });
  }
  Tally.LedgerRecords = LedgerRecords.load(std::memory_order_relaxed);
  // The per-call tally also feeds the process-wide registry — the same
  // numbers the runner prints, in the unified exposition.
  CLGS_COUNT_N("clgen.measure.cache_hits", Tally.Hits);
  CLGS_COUNT_N("clgen.measure.misses", Tally.Misses);
  CLGS_COUNT_N("clgen.measure.ledger_hits", Tally.LedgerHits);
  CLGS_COUNT_N("clgen.measure.ledger_records", Tally.LedgerRecords);
  if (CacheStats)
    *CacheStats = Tally;
  return Out;
}

void runtime::runMeasurementLoop(support::Channel<MeasureJob> &Jobs,
                                 const Platform &P,
                                 store::ResultCache *Cache) {
  // pop() returning nullopt is the shutdown signal: the producer closed
  // the channel and every buffered job has been claimed.
  while (std::optional<MeasureJob> J = Jobs.pop()) {
    CLGS_TRACE_SPAN_IDX("measure", J->Index);
    // Injected dequeue fault: the job is consumed but its measurement is
    // dropped on the floor — the slot records an injected failure, which
    // the refill pass (when enabled) excises and replaces. Keyed by the
    // accept index so the faulting kernel is scheduling-independent.
    Result<Measurement> M =
        CLGS_FAILPOINT_KEYED("pipeline.dequeue", J->Index)
            ? Result<Measurement>::error("injected fault at pipeline.dequeue",
                                         TrapKind::Injected)
            : runBenchmarkWithRetry(J->Kernel, P, J->Opts);
    if (Cache && J->WriteBack && M.ok())
      Cache->store(J->CacheKey, M.get());
    *J->Slot = std::move(M);
  }
}

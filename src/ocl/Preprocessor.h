//===- ocl/Preprocessor.h - Minimal C preprocessor ---------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small C preprocessor sufficient for GitHub-style OpenCL content
/// files: object- and function-like macros, conditional compilation,
/// include resolution against an in-memory header map (used for the shim
/// header of section 4.1), comment stripping and line splicing.
///
/// Unknown includes are skipped rather than fatal: exactly as with the
/// paper's corpus miner, a missing project header usually surfaces later
/// as an undeclared-identifier rejection, which the shim header then
/// partially repairs.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_OCL_PREPROCESSOR_H
#define CLGEN_OCL_PREPROCESSOR_H

#include "support/Result.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace clgen {
namespace ocl {

struct PreprocessOptions {
  /// Resolvable headers: basename -> content.
  std::unordered_map<std::string, std::string> Includes;
  /// Macros predefined before the first line, as (name, body) pairs.
  std::vector<std::pair<std::string, std::string>> Predefined;
};

/// Runs the preprocessor over \p Source. On success the result contains
/// directive-free, comment-free, macro-expanded source text.
Result<std::string> preprocess(const std::string &Source,
                               const PreprocessOptions &Opts = {});

/// Removes // and /* */ comments, preserving newlines inside block
/// comments so line numbers stay stable. Exposed separately for the
/// corpus statistics pass.
std::string stripComments(const std::string &Source);

} // namespace ocl
} // namespace clgen

#endif // CLGEN_OCL_PREPROCESSOR_H

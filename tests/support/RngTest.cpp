//===- tests/support/RngTest.cpp - Rng unit tests ---------------------------===//

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace clgen;

TEST(RngTest, DeterministicFromSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.bounded(17), 17u);
}

TEST(RngTest, BoundedCoversRange) {
  Rng R(7);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(R.bounded(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(RngTest, RangeInclusive) {
  Rng R(3);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.range(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    SawLo |= V == -2;
    SawHi |= V == 2;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, UniformWithinUnitInterval) {
  Rng R(11);
  double Sum = 0.0;
  for (int I = 0; I < 10000; ++I) {
    double U = R.uniform();
    ASSERT_GE(U, 0.0);
    ASSERT_LT(U, 1.0);
    Sum += U;
  }
  EXPECT_NEAR(Sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng R(13);
  double Sum = 0.0, SumSq = 0.0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    double G = R.gaussian();
    Sum += G;
    SumSq += G * G;
  }
  EXPECT_NEAR(Sum / N, 0.0, 0.03);
  EXPECT_NEAR(SumSq / N, 1.0, 0.05);
}

TEST(RngTest, ChanceEdgeCases) {
  Rng R(5);
  EXPECT_FALSE(R.chance(0.0));
  EXPECT_TRUE(R.chance(1.0));
  int Hits = 0;
  for (int I = 0; I < 10000; ++I)
    Hits += R.chance(0.25);
  EXPECT_NEAR(Hits / 10000.0, 0.25, 0.03);
}

TEST(RngTest, WeightedZeroWeightNeverPicked) {
  Rng R(9);
  std::vector<double> Weights = {1.0, 0.0, 3.0};
  for (int I = 0; I < 1000; ++I)
    EXPECT_NE(R.weighted(Weights), 1u);
}

TEST(RngTest, WeightedProportions) {
  Rng R(9);
  std::vector<double> Weights = {1.0, 3.0};
  int Count1 = 0;
  for (int I = 0; I < 10000; ++I)
    Count1 += R.weighted(Weights) == 1;
  EXPECT_NEAR(Count1 / 10000.0, 0.75, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng R(21);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7, 8};
  auto Sorted = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Sorted);
}

TEST(RngTest, ForkIndependentButDeterministic) {
  Rng A(99), B(99);
  Rng FA = A.fork(), FB = B.fork();
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(FA.next(), FB.next());
}

TEST(RngTest, SplitIsDeterministicAndDoesNotAdvanceParent) {
  Rng A(7), B(7);
  Rng SA = A.split(42), SB = B.split(42);
  for (int I = 0; I < 20; ++I)
    EXPECT_EQ(SA.next(), SB.next());
  // split() left the parents untouched: their streams still agree with a
  // never-split generator.
  Rng C(7);
  for (int I = 0; I < 20; ++I) {
    uint64_t Expected = C.next();
    EXPECT_EQ(A.next(), Expected);
  }
}

TEST(RngTest, SplitStreamsAreIndependentOfClaimOrder) {
  Rng A(99), B(99);
  Rng A0 = A.split(0), A1 = A.split(1);
  Rng B1 = B.split(1), B0 = B.split(0); // Claimed in the other order.
  for (int I = 0; I < 10; ++I) {
    EXPECT_EQ(A0.next(), B0.next());
    EXPECT_EQ(A1.next(), B1.next());
  }
}

TEST(RngTest, SplitStreamsDiverge) {
  Rng A(1);
  Rng S0 = A.split(0), S1 = A.split(1);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += S0.next() == S1.next();
  EXPECT_LT(Same, 4);
}

TEST(RngTest, SplitDependsOnParentState) {
  Rng A(1), B(2);
  Rng SA = A.split(5), SB = B.split(5);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += SA.next() == SB.next();
  EXPECT_LT(Same, 4);
}

TEST(RngTest, PickReturnsElement) {
  Rng R(1);
  std::vector<int> V = {10, 20, 30};
  for (int I = 0; I < 50; ++I) {
    int P = R.pick(V);
    EXPECT_TRUE(P == 10 || P == 20 || P == 30);
  }
}

//===- ocl/Sema.h - Semantic analysis for OpenCL C ---------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis: name resolution, type checking and type annotation
/// of a parsed Program. Sema writes the computed type into each Expr node
/// (Expr::Ty) so later passes (bytecode compiler, feature extractor)
/// never re-derive types.
///
/// This pass is the second half of the "compile" oracle used by the
/// rejection filter; undeclared identifiers — the dominant failure mode
/// for GitHub-mined device code isolated from its host project (section
/// 4.1 of the paper) — are diagnosed here.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_OCL_SEMA_H
#define CLGEN_OCL_SEMA_H

#include "ocl/Ast.h"
#include "support/Result.h"

namespace clgen {
namespace ocl {

/// Type-checks \p P in place. On success every Expr has a valid type; on
/// failure the Status carries a "line N: message" diagnostic and the AST
/// must be considered unusable.
Status analyze(Program &P);

/// The usual arithmetic conversion rank; higher rank wins in a binary
/// operation. Exposed for reuse by the bytecode compiler.
int conversionRank(Scalar S);

/// Computes the common type of two arithmetic operands, including
/// scalar-to-vector broadcast. Returns Void type when incompatible.
QualType unifyArithmetic(const QualType &A, const QualType &B);

} // namespace ocl
} // namespace clgen

#endif // CLGEN_OCL_SEMA_H

//===- model/NGramModel.cpp - Backoff n-gram language model -------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "model/NGramModel.h"

#include "store/Archive.h"

#include <algorithm>
#include <cassert>

using namespace clgen;
using namespace clgen::model;

void NGramModel::train(const std::vector<std::string> &Entries) {
  std::string All;
  for (const std::string &E : Entries)
    All += E;
  Vocab = Vocabulary::fromText(All);
  ContextCounts Building;
  for (const std::string &E : Entries)
    addSequence(Building, E);
  Counts = std::make_shared<const ContextCounts>(std::move(Building));
  reset();
}

void NGramModel::addSequence(ContextCounts &Building,
                             const std::string &Entry) const {
  // Token stream: entry characters followed by the sentinel. Contexts are
  // built over raw characters; the sentinel uses '\0' which cannot occur
  // inside entries.
  std::string Stream = Entry;
  Stream.push_back('\0');

  // Rolling context window: every context suffix ending just before
  // position I is a string_view into the stream, looked up through the
  // map's transparent hasher. A context string is materialised only the
  // first time that context is seen, so ingest does O(1) allocations per
  // *distinct* context instead of O(order) substring copies per
  // position.
  size_t ContextLen = static_cast<size_t>(std::max(Opts.Order - 1, 0));
  for (size_t I = 0; I < Stream.size(); ++I) {
    int NextId = Stream[I] == '\0' ? Vocabulary::EndOfText
                                   : Vocab.idOf(Stream[I]);
    size_t MaxLen = std::min(ContextLen, I);
    for (size_t L = 0; L <= MaxLen; ++L) {
      std::string_view Ctx(Stream.data() + (I - L), L);
      auto It = Building.find(Ctx);
      if (It == Building.end())
        It = Building.emplace(std::string(Ctx),
                              std::unordered_map<int, uint32_t>())
                 .first;
      It->second[NextId] += 1;
    }
  }
}

void NGramModel::reset() { Context.clear(); }

void NGramModel::observe(int TokenId) {
  Context.push_back(TokenId == Vocabulary::EndOfText
                        ? '\0'
                        : Vocab.charOf(TokenId));
  size_t MaxLen = static_cast<size_t>(Opts.Order - 1);
  if (Context.size() > MaxLen)
    Context.erase(0, Context.size() - MaxLen);
}

std::vector<double> NGramModel::nextDistribution() {
  std::vector<double> Dist;
  nextDistributionInto(Dist);
  return Dist;
}

void NGramModel::nextDistributionInto(std::vector<double> &Dist) {
  size_t V = Vocab.size();
  Dist.assign(V, 0.0);

  // Walk from the longest available context down to the unigram level,
  // taking the first context with any observations, discounted by
  // BackoffAlpha per skipped level. Lookups are string_views over the
  // rolling context buffer: the hot sampling loop never allocates.
  double Scale = 1.0;
  double ContextMass = 0.0; // Probability mass placed by the match.
  std::string_view Full(Context);
  for (size_t Skip = 0; Counts && Skip <= Full.size(); ++Skip) {
    auto It = Counts->find(Full.substr(Skip));
    if (It == Counts->end() || It->second.empty()) {
      Scale *= Opts.BackoffAlpha;
      continue;
    }
    double Total = 0.0;
    for (const auto &[Id, Count] : It->second)
      Total += Count;
    for (const auto &[Id, Count] : It->second)
      Dist[Id] += Scale * static_cast<double>(Count) / Total;
    ContextMass = Scale;
    break;
  }

  // Unigram smoothing floor so every token has nonzero probability. The
  // pre-normalisation sum is known analytically (matched backoff mass
  // plus total smoothing mass), so flooring and normalising fuse into
  // one pass.
  double Floor = Opts.UnigramSmoothing / static_cast<double>(V);
  double InvSum = 1.0 / (ContextMass + Opts.UnigramSmoothing);
  for (double &P : Dist)
    P = (P + Floor) * InvSum;
}

std::unique_ptr<LanguageModel> NGramModel::clone() const {
  return std::make_unique<NGramModel>(*this);
}

void NGramModel::serialize(store::ArchiveWriter &W) const {
  W.writeI32(Opts.Order);
  W.writeF64(Opts.BackoffAlpha);
  W.writeF64(Opts.UnigramSmoothing);
  Vocab.serialize(W);

  std::vector<const ContextCounts::value_type *> Sorted;
  if (Counts) {
    Sorted.reserve(Counts->size());
    for (const auto &Entry : *Counts)
      Sorted.push_back(&Entry);
    std::sort(Sorted.begin(), Sorted.end(),
              [](const auto *A, const auto *B) { return A->first < B->first; });
  }
  W.writeU64(Sorted.size());
  std::vector<std::pair<int, uint32_t>> Inner;
  for (const auto *Entry : Sorted) {
    W.writeString(Entry->first);
    Inner.assign(Entry->second.begin(), Entry->second.end());
    std::sort(Inner.begin(), Inner.end());
    W.writeU32(static_cast<uint32_t>(Inner.size()));
    for (const auto &[Id, Count] : Inner) {
      W.writeI32(Id);
      W.writeU32(Count);
    }
  }
}

NGramModel NGramModel::deserialize(store::ArchiveReader &R) {
  NGramOptions Opts;
  Opts.Order = R.readI32();
  Opts.BackoffAlpha = R.readF64();
  Opts.UnigramSmoothing = R.readF64();
  if (R.ok() && (Opts.Order < 1 || Opts.Order > 256))
    R.fail("n-gram order out of range");

  NGramModel M(Opts);
  M.Vocab = Vocabulary::deserialize(R);
  int VocabSize = static_cast<int>(M.Vocab.size());

  uint64_t ContextCount = R.readU64();
  ContextCounts Building;
  // A corrupt count cannot force a huge reserve: it is capped by what
  // the payload could possibly hold, and the R.ok() guard stops the
  // loop at the first underrun.
  Building.reserve(static_cast<size_t>(
      std::min<uint64_t>(ContextCount, 1u << 24)));
  for (uint64_t I = 0; I < ContextCount && R.ok(); ++I) {
    std::string Ctx = R.readString();
    uint32_t EntryCount = R.readU32();
    auto &Slot = Building[std::move(Ctx)];
    for (uint32_t J = 0; J < EntryCount && R.ok(); ++J) {
      int Id = R.readI32();
      uint32_t Count = R.readU32();
      if (Id < 0 || Id >= VocabSize) {
        R.fail("n-gram count entry references a token outside the "
               "vocabulary");
        break;
      }
      Slot[Id] = Count;
    }
  }
  if (!R.ok())
    return NGramModel();
  M.Counts = std::make_shared<const ContextCounts>(std::move(Building));
  M.reset();
  return M;
}

//===- support/Rng.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, fully deterministic random number generator used across
/// the entire project so that every experiment is reproducible from a seed.
/// The engine is xoshiro256** seeded through SplitMix64, which has good
/// statistical quality and trivially serialisable state.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_SUPPORT_RNG_H
#define CLGEN_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace clgen {

/// Deterministic pseudo random number generator (xoshiro256**).
class Rng {
public:
  /// Creates a generator from a 64-bit seed. Two generators built from the
  /// same seed produce identical streams on every platform.
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ull);

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a uniformly distributed integer in [0, Bound). \p Bound must be
  /// nonzero. Uses rejection sampling to avoid modulo bias.
  uint64_t bounded(uint64_t Bound);

  /// Returns a uniformly distributed integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi);

  /// Returns a double uniformly distributed in [0, 1).
  double uniform();

  /// Returns a double uniformly distributed in [Lo, Hi).
  double uniform(double Lo, double Hi);

  /// Returns a sample from the standard normal distribution
  /// (Marsaglia polar method).
  double gaussian();

  /// Returns a normal sample with the given mean and standard deviation.
  double gaussian(double Mean, double Stddev);

  /// Returns true with probability \p P.
  bool chance(double P);

  /// Returns a reference to a uniformly chosen element of \p Items.
  template <typename T> const T &pick(const std::vector<T> &Items) {
    assert(!Items.empty() && "cannot pick from an empty vector");
    return Items[bounded(Items.size())];
  }

  /// Returns an index drawn from the (unnormalised) weight vector
  /// \p Weights. All weights must be nonnegative and their sum positive.
  size_t weighted(const std::vector<double> &Weights);

  /// Fisher-Yates shuffles \p Items in place.
  template <typename T> void shuffle(std::vector<T> &Items) {
    if (Items.size() < 2)
      return;
    for (size_t I = Items.size() - 1; I > 0; --I) {
      size_t J = bounded(I + 1);
      T Tmp = std::move(Items[I]);
      Items[I] = std::move(Items[J]);
      Items[J] = std::move(Tmp);
    }
  }

  /// Splits off an independent generator. The child stream is a pure
  /// function of the parent state, so forked pipelines stay deterministic.
  /// Advances the parent stream; see split() for a non-advancing variant.
  Rng fork();

  /// Returns the counter-keyed child stream \p StreamId. The child is a
  /// pure function of (current state, StreamId) and the parent is NOT
  /// advanced, so split(0), split(1), ... are mutually independent
  /// streams that can be claimed in any order — the foundation of the
  /// parallel synthesis engine's determinism: worker scheduling cannot
  /// change what any stream produces.
  Rng split(uint64_t StreamId) const;

private:
  uint64_t State[4];
  bool HasSpareGaussian = false;
  double SpareGaussian = 0.0;
};

} // namespace clgen

#endif // CLGEN_SUPPORT_RNG_H

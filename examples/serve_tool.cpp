//===- examples/serve_tool.cpp - clgen-serve pipeline daemon CLI --------------===//
//
// `clgen-serve`: the pipeline-as-a-service front end. One subcommand
// runs the daemon; the rest are thin clients over serve/Client.h:
//
//   clgen-serve daemon --socket PATH --store-dir DIR [options]
//                                         run the multiplexed request
//                                         daemon until SIGTERM/SIGINT
//                                         (graceful drain) or a client
//                                         `shutdown`
//   clgen-serve ping --socket PATH        liveness probe: daemon pid
//   clgen-serve synth --socket PATH       submit one synthesis +
//       [--kernels N] [--seed N]          measurement request and print
//       [--temperature T]                 the response provenance and
//                                         per-kernel measurements
//   clgen-serve stats --socket PATH       fetch the daemon's counters
//   clgen-serve shutdown --socket PATH    ask the daemon to drain
//
// The daemon multiplexes every client onto one trained model, one
// result cache/failure ledger and one artifact store; identical
// concurrent requests coalesce onto a single computation, and warm
// requests load the persisted kernel set instead of sampling (their
// responses prove it: trained 0, sampled 0, measured 0).
//
// Exit codes: 0 success; 1 operational failure (cannot bind, cannot
// connect, request failed); 2 usage error (including --kernels 0: a
// zero-target request is rejected, never an empty success); 3 = synth
// delivered zero successful measurements.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Server.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

using namespace clgen;

namespace {

// The signal handler can only touch async-signal-safe state; Server::
// requestDrain is one write(2) to a self-pipe by contract.
serve::Server *ActiveServer = nullptr;

void handleDrainSignal(int) {
  if (ActiveServer)
    ActiveServer->requestDrain();
}

void printUsage(std::FILE *Out) {
  std::fprintf(
      Out,
      "usage: clgen-serve <subcommand> --socket PATH [options]\n"
      "\n"
      "subcommands:\n"
      "  daemon --socket PATH --store-dir DIR\n"
      "                            run the pipeline daemon: accept\n"
      "                            synthesis/measurement requests over\n"
      "                            the Unix socket, multiplexed onto one\n"
      "                            model + store. SIGTERM/SIGINT drains\n"
      "                            gracefully: in-flight requests finish\n"
      "                            and are answered, telemetry flushes,\n"
      "                            the socket is unlinked\n"
      "    --files N               githubsim corpus size for the daemon's\n"
      "                            model (default 400; model identity)\n"
      "    --measure-workers N     measurement consumer threads per\n"
      "                            request (default 1; scheduling only)\n"
      "    --queue N               kernel channel capacity (0 = auto)\n"
      "    --sweep-interval-ms N   run a background store sweep every N\n"
      "                            ms (0 = off, default)\n"
      "    --sweep-budget-bytes N  byte budget each sweep enforces (0 =\n"
      "                            validate/quarantine only)\n"
      "    --metrics-out FILE      write the metrics exposition on drain\n"
      "                            (requires -DCLGS_TELEMETRY=ON)\n"
      "    --trace-out FILE        write Chrome trace JSON on drain\n"
      "                            (requires -DCLGS_TELEMETRY=ON)\n"
      "  ping --socket PATH        liveness probe: prints the daemon pid\n"
      "  synth --socket PATH [--kernels N] [--seed N] [--temperature T]\n"
      "                            submit one request; prints warm/cold,\n"
      "                            the work provenance (models trained,\n"
      "                            sample attempts, kernels measured) and\n"
      "                            the per-kernel measurements. --kernels\n"
      "                            must be positive: a zero target is a\n"
      "                            usage error, not an empty success\n"
      "  stats --socket PATH       print the daemon's counters\n"
      "  shutdown --socket PATH    drain the daemon (in-flight requests\n"
      "                            still finish)\n"
      "  help                      this text\n");
}

int runDaemon(const serve::ServerConfig &Cfg) {
  serve::Server Server(Cfg);
  Status Up = Server.start();
  if (!Up.ok()) {
    std::fprintf(stderr, "clgen-serve daemon: %s\n",
                 Up.errorMessage().c_str());
    return 1;
  }
  ActiveServer = &Server;
  std::signal(SIGTERM, handleDrainSignal);
  std::signal(SIGINT, handleDrainSignal);
  std::signal(SIGPIPE, SIG_IGN); // A vanished client must not kill us.
  std::printf("clgen-serve: listening on %s (store %s, pid %d)\n",
              Cfg.SocketPath.c_str(), Cfg.StoreDir.c_str(),
              static_cast<int>(getpid()));
  std::fflush(stdout);
  Server.wait();
  ActiveServer = nullptr;
  std::printf("clgen-serve: drained\n%s", Server.renderStats().c_str());
  return 0;
}

int runPing(const std::string &Socket) {
  auto C = serve::Client::connect(Socket);
  if (!C.ok()) {
    std::fprintf(stderr, "clgen-serve ping: %s\n", C.errorMessage().c_str());
    return 1;
  }
  auto R = C.get().ping();
  if (!R.ok()) {
    std::fprintf(stderr, "clgen-serve ping: %s\n", R.errorMessage().c_str());
    return 1;
  }
  std::printf("pong: pid %llu protocol %llu\n",
              static_cast<unsigned long long>(R.get().Pid),
              static_cast<unsigned long long>(R.get().Version));
  return 0;
}

int runSynth(const std::string &Socket, const serve::SynthesizeRequest &Req) {
  auto C = serve::Client::connect(Socket);
  if (!C.ok()) {
    std::fprintf(stderr, "clgen-serve synth: %s\n",
                 C.errorMessage().c_str());
    return 1;
  }
  auto R = C.get().synthesize(Req);
  if (!R.ok()) {
    std::fprintf(stderr, "clgen-serve synth: %s\n", R.errorMessage().c_str());
    return 1;
  }
  const serve::SynthesizeResponse &Resp = R.get();
  std::printf("synth: %s — trained %llu models, %llu sample attempts, "
              "%llu kernels measured (%llu cache hits, %llu ledger hits)\n",
              Resp.WarmKernels ? "warm (kernel set loaded, zero sampling)"
                               : "cold (sampled + persisted)",
              static_cast<unsigned long long>(Resp.TrainedModels),
              static_cast<unsigned long long>(Resp.SampleAttempts),
              static_cast<unsigned long long>(Resp.MeasuredKernels),
              static_cast<unsigned long long>(Resp.CacheHits),
              static_cast<unsigned long long>(Resp.LedgerHits));
  std::printf("kernel set: %zu kernels, digest %016llx\n",
              Resp.Sources.size(),
              static_cast<unsigned long long>(Resp.KernelSetDigest));
  size_t Ok = 0;
  for (size_t I = 0; I < Resp.Measurements.size(); ++I) {
    const serve::MeasurementRow &M = Resp.Measurements[I];
    if (M.Ok) {
      ++Ok;
      std::printf("kernel %zu: CPU %.3f ms vs GPU %.3f ms -> %s\n", I,
                  M.CpuTime * 1e3, M.GpuTime * 1e3,
                  M.GpuTime < M.CpuTime ? "GPU" : "CPU");
    } else {
      std::printf("kernel %zu: failed — %s\n", I, M.Error.c_str());
    }
  }
  // Mirror benchmark_runner's contract: zero successful measurements
  // (all failed OR an empty delivery) is exit 3, never silent success.
  return Ok == 0 ? 3 : 0;
}

int runStats(const std::string &Socket) {
  auto C = serve::Client::connect(Socket);
  if (!C.ok()) {
    std::fprintf(stderr, "clgen-serve stats: %s\n",
                 C.errorMessage().c_str());
    return 1;
  }
  auto R = C.get().stats();
  if (!R.ok()) {
    std::fprintf(stderr, "clgen-serve stats: %s\n", R.errorMessage().c_str());
    return 1;
  }
  std::fputs(R.get().c_str(), stdout);
  return 0;
}

int runShutdown(const std::string &Socket) {
  auto C = serve::Client::connect(Socket);
  if (!C.ok()) {
    std::fprintf(stderr, "clgen-serve shutdown: %s\n",
                 C.errorMessage().c_str());
    return 1;
  }
  Status S = C.get().shutdown();
  if (!S.ok()) {
    std::fprintf(stderr, "clgen-serve shutdown: %s\n",
                 S.errorMessage().c_str());
    return 1;
  }
  std::printf("shutdown: acknowledged\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    printUsage(stderr);
    return 2;
  }
  std::string Sub = Argv[1];
  if (Sub == "help" || Sub == "--help" || Sub == "-h") {
    printUsage(stdout);
    return 0;
  }

  // strtoul silently wraps negative input, so accept digits only (the
  // benchmark_runner flag-parsing idiom).
  auto ParseDigits = [](const std::string &Text, unsigned long &Out) {
    bool Digits = !Text.empty() &&
                  Text.find_first_not_of("0123456789") == std::string::npos;
    Out = Digits ? std::strtoul(Text.c_str(), nullptr, 10) : 0;
    return Digits;
  };

  std::string Socket;
  serve::ServerConfig Cfg;
  serve::SynthesizeRequest Req;
  Req.TargetKernels = 8;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    unsigned long N = 0;
    if (Arg == "--socket" && I + 1 < Argc) {
      Socket = Argv[++I];
    } else if (Arg == "--store-dir" && I + 1 < Argc && Sub == "daemon") {
      Cfg.StoreDir = Argv[++I];
    } else if (Arg == "--files" && I + 1 < Argc && Sub == "daemon") {
      if (!ParseDigits(Argv[++I], N) || N == 0) {
        std::fprintf(stderr, "--files expects a positive integer\n");
        return 2;
      }
      Cfg.FileCount = N;
    } else if (Arg == "--measure-workers" && I + 1 < Argc &&
               Sub == "daemon") {
      if (!ParseDigits(Argv[++I], N) || N == 0) {
        std::fprintf(stderr,
                     "--measure-workers expects a positive integer\n");
        return 2;
      }
      Cfg.MeasureWorkers = static_cast<unsigned>(N);
    } else if (Arg == "--queue" && I + 1 < Argc && Sub == "daemon") {
      if (!ParseDigits(Argv[++I], N)) {
        std::fprintf(stderr, "--queue expects an integer\n");
        return 2;
      }
      Cfg.QueueCapacity = N;
    } else if (Arg == "--sweep-interval-ms" && I + 1 < Argc &&
               Sub == "daemon") {
      if (!ParseDigits(Argv[++I], N)) {
        std::fprintf(stderr,
                     "--sweep-interval-ms expects an integer (0 = off)\n");
        return 2;
      }
      Cfg.SweepIntervalMs = N;
    } else if (Arg == "--sweep-budget-bytes" && I + 1 < Argc &&
               Sub == "daemon") {
      if (!ParseDigits(Argv[++I], N)) {
        std::fprintf(stderr, "--sweep-budget-bytes expects an integer\n");
        return 2;
      }
      Cfg.SweepBudgetBytes = N;
    } else if (Arg == "--metrics-out" && I + 1 < Argc && Sub == "daemon") {
      Cfg.MetricsOut = Argv[++I];
    } else if (Arg == "--trace-out" && I + 1 < Argc && Sub == "daemon") {
      Cfg.TraceOut = Argv[++I];
    } else if (Arg == "--kernels" && I + 1 < Argc && Sub == "synth") {
      // Zero is rejected HERE, as a usage error: the serve layer never
      // lets a zero-target request devolve into empty-set "success".
      if (!ParseDigits(Argv[++I], N) || N == 0) {
        std::fprintf(stderr, "--kernels expects a positive integer (a "
                             "zero-target request is a usage error)\n");
        return 2;
      }
      Req.TargetKernels = N;
    } else if (Arg == "--seed" && I + 1 < Argc && Sub == "synth") {
      if (!ParseDigits(Argv[++I], N)) {
        std::fprintf(stderr, "--seed expects an integer\n");
        return 2;
      }
      Req.Seed = N;
    } else if (Arg == "--temperature" && I + 1 < Argc && Sub == "synth") {
      char *End = nullptr;
      double T = std::strtod(Argv[++I], &End);
      if (End == Argv[I] || *End != '\0' || !(T > 0.0)) {
        std::fprintf(stderr, "--temperature expects a positive number\n");
        return 2;
      }
      Req.Temperature = T;
    } else {
      std::fprintf(stderr, "unknown or incomplete option for '%s': %s\n\n",
                   Sub.c_str(), Arg.c_str());
      printUsage(stderr);
      return 2;
    }
  }

  if (Socket.empty()) {
    std::fprintf(stderr, "clgen-serve %s: --socket PATH is required\n",
                 Sub.c_str());
    return 2;
  }

  if (Sub == "daemon") {
    if (Cfg.StoreDir.empty()) {
      std::fprintf(stderr, "clgen-serve daemon: --store-dir DIR is "
                           "required\n");
      return 2;
    }
    Cfg.SocketPath = Socket;
    return runDaemon(Cfg);
  }
  if (Sub == "ping")
    return runPing(Socket);
  if (Sub == "synth")
    return runSynth(Socket, Req);
  if (Sub == "stats")
    return runStats(Socket);
  if (Sub == "shutdown")
    return runShutdown(Socket);

  std::fprintf(stderr, "unknown subcommand: %s\n\n", Sub.c_str());
  printUsage(stderr);
  return 2;
}

//===- serve/Server.h - clgen-serve pipeline daemon --------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `clgen-serve` daemon: a long-running front end that accepts
/// synthesis/measurement requests over a Unix-domain stream socket
/// (serve/Protocol.h frames) and multiplexes them onto the existing
/// channel-based streaming engine. This is the layer that turns
/// "cache + locks + GC" into "service":
///
/// - **Multiplexed request engine.** One accept loop, one connection
///   thread per client; any number of clients share one trained model,
///   one result cache/failure ledger, and one artifact store.
/// - **In-flight dedup.** Identical concurrent requests coalesce onto
///   exactly one computation (serve/Coalescer.h); underneath, the
///   store::ScopedLock layer dedupes against OTHER processes sharing
///   the store. K identical concurrent cold requests — threads or
///   fork()ed clients — train/sample/measure exactly once.
/// - **Warm start.** Requests run through
///   ClgenPipeline::synthesizeAndMeasureOrLoad: when the kernel-set
///   artifact is warm, the channel producer is an archive reader and
///   the request performs zero sampling; responses carry per-request
///   work provenance (models trained, samples drawn, kernels measured)
///   so a warm request provably reports 0/0/0.
/// - **Lazy model.** The model is trained (or store-loaded) on the
///   first synthesis request, not at startup, so the serving cost of
///   every request — including the one that paid for training — is
///   honestly attributed in its response provenance.
/// - **Background sweeper.** An interval + byte-budget store::sweep
///   runs on its own thread (the deferred PR 5 lifecycle work); sweeps
///   never mutate surviving artifact bytes, so they are safe to run
///   concurrent with requests.
/// - **Graceful drain.** requestDrain() (async-signal-safe, so a
///   SIGTERM handler can call it directly) stops the accept loop,
///   half-closes idle connections, lets in-flight requests finish and
///   write their responses, stops the sweeper, and flushes metrics/
///   trace files if configured. Advisory store locks are request-
///   scoped RAII, so drain never leaves one held.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_SERVE_SERVER_H
#define CLGEN_SERVE_SERVER_H

#include "clgen/Pipeline.h"
#include "serve/Coalescer.h"
#include "serve/Protocol.h"
#include "store/FailureLedger.h"
#include "store/ResultCache.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace clgen {
namespace serve {

/// Daemon configuration. Scheduling and policy only — the semantic
/// synthesis configuration arrives per-request.
struct ServerConfig {
  /// Unix-domain socket path (created on start, unlinked on wait()).
  std::string SocketPath;
  /// Artifact store directory: model/corpus/kernel-set archives, the
  /// result cache, the failure ledger, locks and the sweeper all live
  /// here.
  std::string StoreDir;
  /// githubsim corpus size the daemon's model is trained on (model
  /// identity: part of the training fingerprint).
  size_t FileCount = 400;
  /// Streaming scheduling knobs (results bit-identical for any value).
  unsigned MeasureWorkers = 1;
  size_t QueueCapacity = 0;
  /// Background sweeper: interval between store::sweep runs (0 = off)
  /// and the byte budget each sweep enforces (0 = validate/quarantine
  /// only, evict nothing).
  uint64_t SweepIntervalMs = 0;
  uint64_t SweepBudgetBytes = 0;
  /// Flushed on drain when non-empty (requires -DCLGS_TELEMETRY=ON to
  /// carry data).
  std::string MetricsOut;
  std::string TraceOut;
};

/// A snapshot of the daemon's counters (also rendered as the text body
/// of a StatsResponse).
struct ServerStats {
  uint64_t RequestsServed = 0;    // All requests, every type.
  uint64_t SynthRequests = 0;     // SynthesizeRequests accepted.
  uint64_t InvalidRequests = 0;   // Validation/protocol rejections.
  uint64_t ColdComputes = 0;      // Flights that ran the cold pipeline.
  uint64_t WarmLoads = 0;         // Flights served from the artifact.
  uint64_t CoalescedRequests = 0; // Followers that piggybacked.
  uint64_t TrainedModels = 0;     // Models trained since startup.
  uint64_t Sweeps = 0;            // Completed background sweeps.
  uint64_t SweepEvictedBytes = 0; // Bytes the sweeper reclaimed.
  uint64_t ActiveRequests = 0;    // Requests in flight right now.
  bool Draining = false;
};

/// The daemon. Construct, start(), then wait() for drain (triggered by
/// requestDrain(), a client ShutdownRequest, or a signal handler).
class Server {
public:
  explicit Server(ServerConfig Cfg);
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the socket and spawns the accept loop (and the sweeper when
  /// configured). Fails when the socket cannot be created/bound.
  Status start();

  /// Initiates graceful drain: async-signal-safe (one write(2) to a
  /// self-pipe), so SIGTERM handlers may call it directly. Idempotent.
  void requestDrain();

  /// Blocks until the drain completes: accept loop down, in-flight
  /// requests finished and answered, sweeper stopped, telemetry
  /// flushed, socket unlinked. Returns once the process may exit.
  void wait();

  /// True once requestDrain() has been observed by the accept loop.
  bool draining() const { return Draining.load(); }

  ServerStats stats() const;

  /// stats() rendered as "key value" lines (the StatsResponse body and
  /// the check_serve fixture's assertion surface).
  std::string renderStats() const;

  /// Handles one already-parsed synthesis request (exposed for direct
  /// in-process tests; connection threads route through this too).
  /// Coalesces identical in-flight configurations and reports
  /// per-flight work provenance in the response.
  Result<SynthesizeResponse> synthesize(const SynthesizeRequest &Req);

private:
  void acceptLoop();
  void sweeperLoop();
  void serveConnection(int Fd);
  Result<SynthesizeResponse> runFlight(const SynthesizeRequest &Req);

  /// Lazily trains or store-loads the daemon's model. \p TrainedNow is
  /// true only for the single call that actually trained.
  Result<core::ClgenPipeline *> ensureModel(bool &TrainedNow);

  ServerConfig Cfg;
  int ListenFd = -1;
  int WakePipe[2] = {-1, -1}; // Self-pipe: requestDrain -> accept loop.
  std::thread AcceptThread;
  std::thread SweeperThread;
  std::atomic<bool> Started{false};
  std::atomic<bool> Draining{false};
  std::atomic<bool> Drained{false};

  // Connections. Guarded by ConnMutex; drain half-closes every fd so
  // blocked readers wake with EOF while in-flight responses still
  // write out. Workers never close their own fd (a racing drain-side
  // shutdown() could then hit a reused descriptor) — they mark Done
  // and the accept loop reaps: join + close + erase.
  struct Connection {
    int Fd = -1;
    std::atomic<bool> Done{false};
    std::thread Worker;
  };
  void reapConnections(bool All);
  std::mutex ConnMutex;
  std::vector<std::unique_ptr<Connection>> Connections;

  // The lazily-initialized pipeline (one model shared by all requests).
  std::mutex ModelMutex;
  std::unique_ptr<core::ClgenPipeline> Pipeline;

  // Store-backed measurement state shared by every request.
  std::unique_ptr<store::ResultCache> Cache;
  std::unique_ptr<store::FailureLedger> Ledger;

  Coalescer<SynthesizeResponse> Flights;

  // Sweeper coordination.
  std::mutex SweepMutex;
  std::condition_variable SweepCv;

  // Counters (see ServerStats).
  std::atomic<uint64_t> RequestsServed{0};
  std::atomic<uint64_t> SynthRequests{0};
  std::atomic<uint64_t> InvalidRequests{0};
  std::atomic<uint64_t> ColdComputes{0};
  std::atomic<uint64_t> WarmLoads{0};
  std::atomic<uint64_t> TrainedModels{0};
  std::atomic<uint64_t> Sweeps{0};
  std::atomic<uint64_t> SweepEvictedBytes{0};
  std::atomic<uint64_t> ActiveRequests{0};
};

/// The semantic coalescing key of a request: a digest of exactly the
/// fields that determine the result. Exposed for the coalescing tests.
uint64_t requestKey(const SynthesizeRequest &Req);

} // namespace serve
} // namespace clgen

#endif // CLGEN_SERVE_SERVER_H

//===- store/ResultCache.h - Content-addressed result cache ------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Durable memoization of driver-side measurements. A cache entry is one
/// runtime::Measurement, content-addressed by an FNV-1a digest over a
/// canonical byte recipe of everything the measurement is a pure
/// function of:
///
///   key = fnv1a64( tag || kernel identity || driver options
///                  || platform device configs )
///
/// where the kernel identity is either the source text (tag 'S') or the
/// full serialized bytecode (tag 'B') — the two tags form disjoint key
/// spaces. Because the simulator is deterministic, equal keys imply
/// equal measurements, so a hit can skip execution entirely; see
/// runtime::runBenchmarkBatch for the integrated fast path.
///
/// On disk the cache is a flat directory of archive files named
/// <hex key>.clgs, written atomically (temp + rename), so concurrent
/// workers and even concurrent processes can share one cache directory:
/// the worst race outcome is the same entry written twice. A process-
/// local in-memory map front-ends the directory so repeated hits cost a
/// hash lookup, not a file read.
///
/// The store lifecycle layer (store/Lifecycle.h) may evict entries on
/// disk behind a live cache instance — an external `store::sweep` or
/// `clgen-store gc` unlinks whole files. The in-memory front therefore
/// REVALIDATES disk-backed resident entries on every memory hit: each
/// resident record remembers the (mtime, size) of the file it came
/// from, and one stat (no read, no checksum) confirms the file is
/// still there unchanged — using nanosecond mtimes where the
/// filesystem provides them. On coarse (1 s granularity) filesystems
/// the record additionally carries the archive's trailer checksum and
/// revalidation re-reads those 8 bytes, so a same-size rewrite within
/// the same second cannot serve stale bytes. A swept entry drops out
/// of memory and the lookup reports the miss honestly, so a long-lived
/// process never serves measurements the store no longer holds.
/// Entries that never reached disk (unwritable directory) are exempt —
/// there is nothing external to invalidate them.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_STORE_RESULTCACHE_H
#define CLGEN_STORE_RESULTCACHE_H

#include "runtime/HostDriver.h"
#include "store/Archive.h"
#include "support/Result.h"

#include <atomic>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>

namespace clgen {
namespace store {

/// Cache key for a measurement of \p Kernel (identified by its full
/// serialized bytecode) under \p Opts on \p P. Every field that can
/// change the measurement — including the payload RNG seed — is part of
/// the recipe.
uint64_t measurementKey(const vm::CompiledKernel &Kernel,
                        const runtime::DriverOptions &Opts,
                        const runtime::Platform &P);

/// Source-text variant of the key (tag 'S'): for callers that cache at
/// the kernel-source level before compiling. Distinct from the bytecode
/// key space by construction.
uint64_t measurementKey(const std::string &Source,
                        const runtime::DriverOptions &Opts,
                        const runtime::Platform &P);

class ResultCache {
public:
  /// Running counters. Hits/misses are counted by lookup(); corrupt or
  /// unreadable entries count as misses and are recorded separately.
  struct Stats {
    size_t Hits = 0;
    size_t MemoryHits = 0; // Subset of Hits served without file I/O.
    size_t Misses = 0;
    size_t BadEntries = 0; // Corrupt/truncated files seen by lookup.
    size_t Writes = 0;
    size_t WriteFailures = 0;
    /// Resident entries dropped because their backing file was evicted
    /// or replaced on disk (external sweep/gc) since they were cached.
    size_t StaleMemoryEntries = 0;
  };

  /// Opens (creating if needed) the cache directory. An empty or
  /// uncreatable directory is not an error — the cache just misses; the
  /// failure is visible via directoryOk().
  explicit ResultCache(std::string Directory);

  /// Returns the memoized measurement for \p Key, or nullopt on miss.
  /// Thread-safe; the in-memory map is guarded by a reader/writer lock
  /// (pool workers and the streaming pipeline's enqueue-time probe hit
  /// it concurrently — hits take the shared side and never serialize
  /// against each other; counters are atomics for the same reason).
  /// Memory hits of disk-backed entries revalidate against the file's
  /// (mtime, size) so externally swept entries are honest misses; see
  /// the file header.
  std::optional<runtime::Measurement> lookup(uint64_t Key);

  /// Memoizes \p M under \p Key (memory + atomic disk write-back).
  /// Thread-safe; concurrent stores of the same key are benign.
  Status store(uint64_t Key, const runtime::Measurement &M);

  const std::string &directory() const { return Dir; }
  bool directoryOk() const { return DirOk; }
  Stats stats() const;

private:
  std::string entryPath(uint64_t Key) const;
  /// The miss path: reads the entry file, validates it, and (on
  /// success) installs it in the memory front with its disk identity.
  std::optional<runtime::Measurement> probeDisk(uint64_t Key);

  std::string Dir;
  bool DirOk = false;
  /// Reader/writer guard over Memory: lookups of resident entries take
  /// the shared side, so a warm batch probing from many threads scales
  /// instead of convoying on one mutex. Stat counters are relaxed
  /// atomics — they are tallies, not synchronization.
  mutable std::shared_mutex MapMutex;
  /// A resident entry plus the on-disk identity it was loaded from /
  /// written as. Disk false = memory-only entry (directory unwritable
  /// or write-back failed): exempt from revalidation because there is
  /// nothing external that could invalidate it.
  ///
  /// Coarse-mtime hardening: on filesystems with 1 s mtime granularity
  /// a same-size rewrite within the same second is invisible to the
  /// (mtime, size) probe. When the backing file's mtime has zero
  /// sub-second digits — the signature of a coarse filesystem (a
  /// nanosecond clock landing on an exact second is a ~1e-9 event) —
  /// the identity additionally records the archive's trailer checksum,
  /// and revalidation re-reads those 8 trailing bytes to catch the
  /// rewrite. Filesystems with real nanosecond mtimes never pay the
  /// extra read.
  struct Resident {
    runtime::Measurement M;
    bool Disk = false;
    int64_t MtimeNs = 0; // Backing file mtime, ns since epoch.
    uint64_t Size = 0;   // Backing file size in bytes.
    /// True when MtimeNs is whole-second (coarse filesystem): the
    /// trailer checksum below participates in revalidation.
    bool CoarseMtime = false;
    uint64_t TrailerChecksum = 0; // Archive trailer (last 8 bytes).
  };
  /// Stats the entry file for \p Key (one syscall on POSIX) and fills
  /// the backing identity. False when the file is not statable —
  /// callers that just performed successful disk I/O must then NOT
  /// install a memory entry at all (a revalidation-exempt resident
  /// for a file that may exist would resurrect the stale-hit bug).
  bool recordBacking(uint64_t Key, Resident &R) const;
  std::unordered_map<uint64_t, Resident> Memory;
  struct AtomicStats {
    std::atomic<size_t> Hits{0};
    std::atomic<size_t> MemoryHits{0};
    std::atomic<size_t> Misses{0};
    std::atomic<size_t> BadEntries{0};
    std::atomic<size_t> Writes{0};
    std::atomic<size_t> WriteFailures{0};
    std::atomic<size_t> StaleMemoryEntries{0};
  };
  AtomicStats Counters;
};

/// Serializes one measurement into an archive payload / reads it back
/// (exposed for the archive round-trip tests).
void serializeMeasurement(ArchiveWriter &W, const runtime::Measurement &M);
runtime::Measurement deserializeMeasurement(ArchiveReader &R);

} // namespace store
} // namespace clgen

#endif // CLGEN_STORE_RESULTCACHE_H

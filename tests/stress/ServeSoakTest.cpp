//===- tests/stress/ServeSoakTest.cpp - sweeper-vs-request soak -----------===//
//
// Part of the CLgen reproduction. MIT license.
//
// Races the serve daemon's background sweeper against a stream of
// requests: an aggressive sweep interval with a byte budget small
// enough to evict artifacts while flights are re-creating them. The
// contracts under test, at soak intensity (modest iteration counts —
// this also runs on one core under TSan via -DCLGS_SANITIZE=thread):
//
//  - sweeps never mutate surviving artifact bytes, so every response
//    for one configuration carries the same kernel-set digest whether
//    it was computed cold, coalesced, or warm-loaded — even when the
//    sweeper evicted the artifact between requests;
//  - eviction degrades to recomputation, never to failure;
//  - drain with the sweeper mid-flight shuts down cleanly.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

using namespace clgen;
using namespace clgen::serve;

namespace fs = std::filesystem;

namespace {

class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name)
      : Path(fs::temp_directory_path() / ("clgen_serve_soak_" + Name)) {
    fs::remove_all(Path);
    fs::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }
  std::string file(const std::string &Name) const {
    return (Path / Name).string();
  }

private:
  fs::path Path;
};

} // namespace

TEST(ServeSoakTest, SweeperVersusRequestsStaysDeterministic) {
  ScratchDir Dir("sweep_race");
  ServerConfig Cfg;
  Cfg.SocketPath = Dir.file("serve.sock");
  Cfg.StoreDir = Dir.file("store");
  Cfg.FileCount = 60;
  Cfg.MeasureWorkers = 1;
  Cfg.SweepIntervalMs = 1; // Sweep as fast as the thread can cycle.
  // Small enough that kernel-set artifacts and cache entries get
  // LRU-evicted underneath live requests (the model archive alone is
  // bigger than this, so every sweep evicts something).
  Cfg.SweepBudgetBytes = 16 * 1024;
  Server S(Cfg);
  ASSERT_TRUE(S.start().ok());

  // Two request threads cycling three configurations, racing the
  // sweeper. Every response must succeed, and per-configuration kernel
  // digests must never drift.
  constexpr int Rounds = 8;
  constexpr int ClientThreads = 2;
  std::atomic<int> Failures{0};
  std::mutex DigestMutex;
  std::map<uint64_t, uint64_t> DigestBySeed;

  std::vector<std::thread> Threads;
  for (int T = 0; T < ClientThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int R = 0; R < Rounds; ++R) {
        SynthesizeRequest Req;
        Req.TargetKernels = 2;
        Req.Seed = 1 + ((T + R) % 3);
        auto Conn = Client::connect(Dir.file("serve.sock"));
        if (!Conn.ok()) {
          Failures.fetch_add(1);
          continue;
        }
        auto Resp = Conn.get().synthesize(Req);
        if (!Resp.ok()) {
          Failures.fetch_add(1);
          continue;
        }
        std::lock_guard<std::mutex> Guard(DigestMutex);
        auto [It, Inserted] = DigestBySeed.emplace(
            Req.Seed, Resp.get().KernelSetDigest);
        if (!Inserted && It->second != Resp.get().KernelSetDigest)
          Failures.fetch_add(1000); // Determinism broke: loud.
      }
    });
  for (auto &Th : Threads)
    Th.join();

  EXPECT_EQ(Failures.load(), 0)
      << "requests failed or drifted while racing the sweeper";
  EXPECT_EQ(DigestBySeed.size(), 3u);
  ServerStats Stats = S.stats();
  EXPECT_EQ(Stats.SynthRequests,
            static_cast<uint64_t>(Rounds * ClientThreads));
  EXPECT_GT(Stats.Sweeps, 0u) << "the sweeper never ran: vacuous soak";

  // Drain with the sweeper armed and possibly mid-sweep.
  S.requestDrain();
  S.wait();
  EXPECT_FALSE(fs::exists(Dir.file("serve.sock")));
}

TEST(ServeSoakTest, RepeatedDrainCyclesAreClean) {
  // Start/request/drain cycles over one store: each cycle's daemon
  // must come up on the same socket path, serve, and tear down without
  // leaking the socket file or wedging on its threads.
  ScratchDir Dir("cycles");
  uint64_t FirstDigest = 0;
  for (int Cycle = 0; Cycle < 3; ++Cycle) {
    ServerConfig Cfg;
    Cfg.SocketPath = Dir.file("serve.sock");
    Cfg.StoreDir = Dir.file("store");
    Cfg.FileCount = 60;
    Cfg.SweepIntervalMs = 5;
    Server S(Cfg);
    ASSERT_TRUE(S.start().ok()) << "cycle " << Cycle;
    auto Conn = Client::connect(Dir.file("serve.sock"));
    ASSERT_TRUE(Conn.ok()) << "cycle " << Cycle;
    SynthesizeRequest Req;
    Req.TargetKernels = 2;
    Req.Seed = 7;
    auto Resp = Conn.get().synthesize(Req);
    ASSERT_TRUE(Resp.ok()) << "cycle " << Cycle << ": "
                           << Resp.errorMessage();
    if (Cycle == 0) {
      FirstDigest = Resp.get().KernelSetDigest;
      EXPECT_FALSE(Resp.get().WarmKernels);
    } else {
      // Later cycles warm-start across daemon restarts: the store is
      // the durable half of the service.
      EXPECT_EQ(Resp.get().KernelSetDigest, FirstDigest);
      EXPECT_TRUE(Resp.get().WarmKernels) << "cycle " << Cycle;
      EXPECT_EQ(Resp.get().SampleAttempts, 0u);
    }
    S.requestDrain();
    S.wait();
    EXPECT_FALSE(fs::exists(Dir.file("serve.sock")));
  }
}

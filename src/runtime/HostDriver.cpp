//===- runtime/HostDriver.cpp - Benchmark execution driver -------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/HostDriver.h"

#include "vm/Compiler.h"

using namespace clgen;
using namespace clgen::runtime;
using namespace clgen::vm;

Result<Measurement> runtime::runBenchmark(const CompiledKernel &Kernel,
                                          const Platform &P,
                                          const DriverOptions &Opts) {
  Rng R(Opts.Seed);

  if (Opts.RunDynamicCheck) {
    CheckOptions COpts;
    Rng CheckRng = R.fork();
    CheckResult CR = checkKernel(Kernel, COpts, CheckRng);
    if (!CR.useful())
      return Result<Measurement>::error(
          std::string("dynamic check failed: ") +
          checkOutcomeName(CR.Outcome) +
          (CR.Detail.empty() ? "" : " (" + CR.Detail + ")"));
  }

  PayloadOptions POpts;
  POpts.GlobalSize = Opts.GlobalSize;
  POpts.LocalSize = Opts.LocalSize;
  Payload Pl = generatePayload(Kernel, POpts, R);

  LaunchConfig Config;
  Config.GlobalSize[0] = Pl.GlobalSize;
  Config.LocalSize[0] = Pl.LocalSize;
  Config.MaxInstructions = Opts.MaxInstructions;
  Config.MaxWorkGroups = Opts.MaxSimulatedGroups;

  auto Run = launchKernel(Kernel, Pl.Args, Pl.Buffers, Config);
  if (!Run.ok())
    return Result<Measurement>::error("launch failed: " +
                                      Run.errorMessage());

  Measurement M;
  M.Counters = Run.get();
  M.Transfer = Pl.Transfer;
  M.GlobalSize = Pl.GlobalSize;
  M.LocalSize = Pl.LocalSize;
  M.CpuTime = estimateRuntime(P.Cpu, M.Counters, M.Transfer);
  M.GpuTime = estimateRuntime(P.Gpu, M.Counters, M.Transfer);
  return M;
}

Result<Measurement> runtime::runBenchmark(const std::string &Source,
                                          const Platform &P,
                                          const DriverOptions &Opts) {
  auto Kernel = compileFirstKernel(Source);
  if (!Kernel.ok())
    return Result<Measurement>::error("compile failed: " +
                                      Kernel.errorMessage());
  return runBenchmark(Kernel.get(), P, Opts);
}

//===- bench/table3_suites.cpp - Table 3: the benchmark catalogue -------------===//
//
// Regenerates Table 3: the seven benchmark suites with per-suite
// benchmark and kernel counts (71 benchmarks / 256 kernels total).
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "suites/Catalogue.h"

using namespace clgen;

int main() {
  std::printf("%s", sectionBanner("Table 3: list of benchmarks").c_str());

  auto Catalogue = suites::buildCatalogue();
  auto Summary = suites::catalogueSummary(Catalogue);

  TextTable T;
  T.setHeader({"Suite", "Version", "#. benchmarks", "#. kernels"});
  int Benchmarks = 0, Kernels = 0;
  for (const auto &Row : Summary) {
    T.addRow({Row.Name, Row.Version, std::to_string(Row.Benchmarks),
              std::to_string(Row.Kernels)});
    Benchmarks += Row.Benchmarks;
    Kernels += Row.Kernels;
  }
  T.addRow({"Total", "-", std::to_string(Benchmarks),
            std::to_string(Kernels)});
  std::printf("%s", T.render().c_str());
  std::printf("\nPaper totals: 71 benchmarks, 256 kernels.\n");

  // Sanity: every kernel compiles under the project toolchain.
  size_t Failures = 0;
  for (const auto &BK : Catalogue)
    if (!vm::compileFirstKernel(BK.Source).ok())
      ++Failures;
  std::printf("Catalogue kernels failing to compile: %zu of %zu\n",
              Failures, Catalogue.size());
  return Failures == 0 ? 0 : 1;
}

//===- corpus/Rewriter.h - Source normalisation ------------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three-step code rewriter of section 4.1 (Figure 5):
///  1. preprocess away macros, conditional compilation and comments
///     (ocl/Preprocessor);
///  2. rename identifiers to a short, unique, appearance-ordered series —
///     {a, b, c, ...} for variables, {A, B, C, ...} for functions —
///     leaving language builtins untouched, preserving behaviour;
///  3. enforce one canonical code style (ocl/AstPrinter).
///
/// Behaviour preservation is verified by property tests that execute
/// kernels before and after rewriting on identical payloads.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_CORPUS_REWRITER_H
#define CLGEN_CORPUS_REWRITER_H

#include "ocl/Ast.h"
#include "support/Result.h"

#include <string>

namespace clgen {
namespace corpus {

/// Renames identifiers of \p P in place (step 2). Must have passed Sema.
void renameIdentifiers(ocl::Program &P);

/// Full rewrite of already-preprocessed source: parse, analyze, rename,
/// print canonically. Fails when the source does not compile.
Result<std::string> rewriteSource(const std::string &PreprocessedSource);

/// Counts the distinct identifier spellings in \p Source (the
/// "bag-of-words vocabulary" whose size identifier rewriting shrinks by
/// 84% in the paper).
size_t identifierVocabularySize(const std::string &Source);

} // namespace corpus
} // namespace clgen

#endif // CLGEN_CORPUS_REWRITER_H

//===- clgen/Pipeline.cpp - End-to-end CLgen pipeline -------------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "clgen/Pipeline.h"

using namespace clgen;
using namespace clgen::core;

ClgenPipeline
ClgenPipeline::train(const std::vector<corpus::ContentFile> &Files,
                     const PipelineOptions &Opts) {
  ClgenPipeline P;
  P.TrainingCorpus = corpus::buildCorpus(Files, Opts.Corpus);
  switch (Opts.Backend) {
  case ModelBackend::NGram: {
    auto M = std::make_unique<model::NGramModel>(Opts.NGram);
    M->train(P.TrainingCorpus.Entries);
    P.Model = std::move(M);
    break;
  }
  case ModelBackend::Lstm: {
    auto M = std::make_unique<model::LstmModel>(Opts.Lstm);
    M->train(P.TrainingCorpus.Entries);
    P.Model = std::move(M);
    break;
  }
  }
  return P;
}

SynthesisResult ClgenPipeline::synthesize(const SynthesisOptions &Opts) {
  return synthesizeKernels(*Model, Opts);
}

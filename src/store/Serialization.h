//===- store/Serialization.h - Artifact save/load API ------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// File-level save/load for the pipeline's durable artifacts: trained
/// language models (polymorphic over the backend via a payload tag) and
/// corpus snapshots. These wrap the per-class serialize/deserialize
/// methods with the archive container (magic, version, kind, checksum)
/// and the atomic temp-file + rename write protocol, so a stored
/// artifact on disk is either complete and verifiable or absent.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_STORE_SERIALIZATION_H
#define CLGEN_STORE_SERIALIZATION_H

#include "corpus/Corpus.h"
#include "model/LanguageModel.h"
#include "store/Archive.h"
#include "support/Result.h"
#include "vm/Bytecode.h"

#include <memory>
#include <string>

namespace clgen {
namespace store {

/// Saves \p M to \p Path atomically. Fails for backends without
/// serialization support (LanguageModel::backendName "unknown").
Status saveModel(const std::string &Path, const model::LanguageModel &M);

/// Loads a model saved by saveModel, reconstructing the concrete
/// backend from the payload tag. Fails loudly on missing, truncated,
/// corrupted or wrong-version archives.
Result<std::unique_ptr<model::LanguageModel>>
loadModel(const std::string &Path);

/// Saves a corpus snapshot to \p Path atomically.
Status saveCorpus(const std::string &Path, const corpus::Corpus &C);

/// Loads a corpus snapshot saved by saveCorpus.
Result<corpus::Corpus> loadCorpus(const std::string &Path);

/// Appends every field of a lowered kernel to an archive payload,
/// field-by-field (never struct memcpy, so padding can not leak in).
/// This doubles as the kernel's canonical content serialization: the
/// result cache digests it for content addressing, and the synthesis
/// cache round-trips it.
void serializeCompiledKernel(ArchiveWriter &W, const vm::CompiledKernel &K);

/// Reads a kernel back; trips the reader's error state on malformed
/// table sizes. Callers should vm::verifyKernel untrusted archives.
vm::CompiledKernel deserializeCompiledKernel(ArchiveReader &R);

} // namespace store
} // namespace clgen

#endif // CLGEN_STORE_SERIALIZATION_H

//===- tests/ocl/PreprocessorTest.cpp - preprocessor tests -------------------===//

#include "ocl/Preprocessor.h"

#include <gtest/gtest.h>

using namespace clgen;
using namespace clgen::ocl;

TEST(PreprocessorTest, StripLineComments) {
  EXPECT_EQ(stripComments("a // c\nb"), "a \nb");
}

TEST(PreprocessorTest, StripBlockCommentsPreservesNewlines) {
  std::string Out = stripComments("a/*x\ny*/b");
  EXPECT_NE(Out.find('\n'), std::string::npos);
  EXPECT_EQ(Out.find('x'), std::string::npos);
}

TEST(PreprocessorTest, CommentInsideStringSurvives) {
  std::string Out = stripComments("\"no // comment\"");
  EXPECT_NE(Out.find("//"), std::string::npos);
}

TEST(PreprocessorTest, ObjectMacroExpansion) {
  auto R = preprocess("#define N 128\nint x = N;\n");
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_NE(R.get().find("int x = 128;"), std::string::npos);
}

TEST(PreprocessorTest, FunctionMacroExpansion) {
  auto R = preprocess("#define SQ(x) ((x)*(x))\nint y = SQ(a+1);\n");
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_NE(R.get().find("(((a+1))*((a+1)))"), std::string::npos);
}

TEST(PreprocessorTest, PaperFigure5Macros) {
  // The exact macros from Figure 5a of the paper.
  const char *Src =
      "#define DTYPE float\n"
      "#define ALPHA(a) 3.5f * a\n"
      "inline DTYPE ax(DTYPE x) { return ALPHA(x); }\n";
  auto R = preprocess(Src);
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_NE(R.get().find("inline float ax(float x)"), std::string::npos);
  EXPECT_NE(R.get().find("3.5f * (x)"), std::string::npos);
}

TEST(PreprocessorTest, NestedMacros) {
  auto R = preprocess("#define A B\n#define B 3\nint x = A;\n");
  ASSERT_TRUE(R.ok());
  EXPECT_NE(R.get().find("int x = 3;"), std::string::npos);
}

TEST(PreprocessorTest, SelfReferentialMacroDoesNotHang) {
  auto R = preprocess("#define X X\nint X;\n");
  ASSERT_TRUE(R.ok());
  EXPECT_NE(R.get().find("int X;"), std::string::npos);
}

TEST(PreprocessorTest, UndefRemovesMacro) {
  auto R = preprocess("#define N 1\n#undef N\nint x = N;\n");
  ASSERT_TRUE(R.ok());
  EXPECT_NE(R.get().find("int x = N;"), std::string::npos);
}

TEST(PreprocessorTest, IfdefTakenAndNotTaken) {
  auto R = preprocess("#define GPU 1\n#ifdef GPU\nint a;\n#endif\n"
                      "#ifdef CPU\nint b;\n#endif\n");
  ASSERT_TRUE(R.ok());
  EXPECT_NE(R.get().find("int a;"), std::string::npos);
  EXPECT_EQ(R.get().find("int b;"), std::string::npos);
}

TEST(PreprocessorTest, IfndefElse) {
  auto R = preprocess("#ifndef W\nint a;\n#else\nint b;\n#endif\n");
  ASSERT_TRUE(R.ok());
  EXPECT_NE(R.get().find("int a;"), std::string::npos);
  EXPECT_EQ(R.get().find("int b;"), std::string::npos);
}

TEST(PreprocessorTest, IfExpressionArithmetic) {
  auto R = preprocess("#define V 3\n#if V >= 2 && V < 10\nint yes;\n#endif\n");
  ASSERT_TRUE(R.ok());
  EXPECT_NE(R.get().find("int yes;"), std::string::npos);
}

TEST(PreprocessorTest, IfDefinedOperator) {
  auto R = preprocess("#define F\n#if defined(F) && !defined(G)\n"
                      "int yes;\n#endif\n");
  ASSERT_TRUE(R.ok());
  EXPECT_NE(R.get().find("int yes;"), std::string::npos);
}

TEST(PreprocessorTest, ElifChain) {
  auto R = preprocess("#define V 2\n#if V == 1\nint a;\n#elif V == 2\n"
                      "int b;\n#else\nint c;\n#endif\n");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.get().find("int a;"), std::string::npos);
  EXPECT_NE(R.get().find("int b;"), std::string::npos);
  EXPECT_EQ(R.get().find("int c;"), std::string::npos);
}

TEST(PreprocessorTest, UnterminatedIfIsError) {
  auto R = preprocess("#ifdef X\nint a;\n");
  EXPECT_FALSE(R.ok());
}

TEST(PreprocessorTest, IncludeResolvesFromMap) {
  PreprocessOptions Opts;
  Opts.Includes["shim.h"] = "typedef float FLOAT_T;\n";
  auto R = preprocess("#include \"shim.h\"\nFLOAT_T x;\n", Opts);
  ASSERT_TRUE(R.ok());
  EXPECT_NE(R.get().find("typedef float FLOAT_T;"), std::string::npos);
}

TEST(PreprocessorTest, UnknownIncludeSkipped) {
  auto R = preprocess("#include <missing_project_header.h>\nint x;\n");
  ASSERT_TRUE(R.ok());
  EXPECT_NE(R.get().find("int x;"), std::string::npos);
}

TEST(PreprocessorTest, MacrosInsideInactiveBlockIgnored) {
  auto R = preprocess("#ifdef NOPE\n#define N 9\n#endif\nint x = N;\n");
  ASSERT_TRUE(R.ok());
  EXPECT_NE(R.get().find("int x = N;"), std::string::npos);
}

TEST(PreprocessorTest, LineContinuation) {
  auto R = preprocess("#define LONG a + \\\n  b\nint x = LONG;\n");
  ASSERT_TRUE(R.ok());
  EXPECT_NE(R.get().find("a +"), std::string::npos);
  EXPECT_NE(R.get().find("b"), std::string::npos);
}

TEST(PreprocessorTest, PragmaIgnored) {
  auto R = preprocess("#pragma OPENCL EXTENSION cl_khr_fp64 : enable\nint x;\n");
  ASSERT_TRUE(R.ok());
  EXPECT_NE(R.get().find("int x;"), std::string::npos);
}

TEST(PreprocessorTest, PredefinedMacros) {
  PreprocessOptions Opts;
  Opts.Predefined.push_back({"WG_SIZE", "128"});
  auto R = preprocess("int n = WG_SIZE;\n", Opts);
  ASSERT_TRUE(R.ok());
  EXPECT_NE(R.get().find("int n = 128;"), std::string::npos);
}

TEST(PreprocessorTest, ErrorDirectiveInActiveBlockFails) {
  EXPECT_FALSE(preprocess("#error bad\n").ok());
  EXPECT_TRUE(preprocess("#ifdef NO\n#error bad\n#endif\n").ok());
}

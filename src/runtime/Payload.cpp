//===- runtime/Payload.cpp - Rule-based payload generation -------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Payload.h"

#include <cmath>

using namespace clgen;
using namespace clgen::runtime;
using namespace clgen::vm;

std::vector<ArgAccess>
runtime::analyzeBufferAccess(const CompiledKernel &Kernel) {
  std::vector<ArgAccess> Access(Kernel.bufferParamCount());
  for (const Instr &I : Kernel.Code) {
    if (I.Space != MemSpace::Global)
      continue;
    switch (I.Op) {
    case Opcode::LoadMem:
    case Opcode::VLoad:
      Access[I.Imm].Read = true;
      break;
    case Opcode::StoreMem:
    case Opcode::VStore:
      Access[I.Imm].Written = true;
      break;
    case Opcode::Atomic:
      Access[I.Imm].Read = true;
      Access[I.Imm].Written = true;
      break;
    default:
      break;
    }
  }
  return Access;
}

Payload Payload::clone() const { return *this; }

static size_t pickLocalSize(size_t Global, size_t Requested) {
  size_t Local = std::min(Requested, Global);
  while (Local > 1 && Global % Local != 0)
    --Local;
  return std::max<size_t>(Local, 1);
}

Payload runtime::generatePayload(const CompiledKernel &Kernel,
                                 const PayloadOptions &Opts, Rng &R) {
  Payload P;
  P.GlobalSize = Opts.GlobalSize;
  P.LocalSize = pickLocalSize(Opts.GlobalSize, Opts.LocalSize);

  std::vector<ArgAccess> Access = analyzeBufferAccess(Kernel);

  for (const ParamInfo &Param : Kernel.Params) {
    if (Param.IsBuffer && Param.Ty.AS == ocl::AddrSpace::Local) {
      // Device-only buffer: no host allocation, no transfer. Sized to the
      // work-group per standard OpenCL practice.
      P.Args.push_back(KernelArg::localSize(P.LocalSize));
      continue;
    }
    if (Param.IsBuffer) {
      // Host buffer of Sg elements with random values.
      uint8_t Width = Param.Ty.VecWidth;
      BufferData B = BufferData::zeros(Opts.GlobalSize, Width);
      bool IntElems = Param.Ty.isInteger() ||
                      (Param.Ty.Pointer && Param.Ty.pointee().isInteger());
      for (double &Lane : B.Data) {
        if (IntElems && Opts.ClampIntBuffers)
          Lane = static_cast<double>(R.bounded(Opts.GlobalSize));
        else if (IntElems)
          Lane = static_cast<double>(R.range(-100, 100));
        else
          Lane = R.uniform(-1.0, 1.0);
      }
      uint64_t Bytes =
          static_cast<uint64_t>(Opts.GlobalSize) *
          Param.Ty.pointee().elementSizeBytes();
      const ArgAccess &A = Access[Param.BufferSlot];
      // Host -> device for all non-write-only buffers; device -> host for
      // all non-read-only buffers (section 5.1). A buffer that is never
      // touched still transfers in (conservative, matches the driver).
      bool WriteOnly = A.Written && !A.Read;
      bool ReadOnly = A.Read && !A.Written;
      if (!WriteOnly)
        P.Transfer.BytesIn += Bytes;
      if (!ReadOnly)
        P.Transfer.BytesOut += Bytes;
      P.Args.push_back(
          KernelArg::buffer(static_cast<int>(P.Buffers.size())));
      P.Buffers.push_back(std::move(B));
      continue;
    }
    // Scalars: integral arguments get the value Sg; everything else is
    // random.
    if (Param.Ty.isInteger()) {
      P.Args.push_back(
          KernelArg::scalar(static_cast<double>(Opts.GlobalSize)));
    } else {
      P.Args.push_back(KernelArg::scalar(R.uniform(-1.0, 1.0)));
    }
  }
  return P;
}

namespace {

/// Indices of launch buffers that are not read-only (i.e. the kernel's
/// outputs).
std::vector<size_t> outputBufferIndices(const CompiledKernel &Kernel,
                                        const Payload &P) {
  std::vector<ArgAccess> Access = analyzeBufferAccess(Kernel);
  std::vector<size_t> Out;
  size_t BufferCursor = 0;
  for (const ParamInfo &Param : Kernel.Params) {
    if (!Param.IsBuffer || Param.Ty.AS == ocl::AddrSpace::Local)
      continue;
    const ArgAccess &A = Access[Param.BufferSlot];
    bool ReadOnly = A.Read && !A.Written;
    if (!ReadOnly)
      Out.push_back(BufferCursor);
    ++BufferCursor;
  }
  (void)P;
  return Out;
}

bool buffersEqual(const BufferData &A, const BufferData &B, double Epsilon) {
  if (A.Data.size() != B.Data.size())
    return false;
  for (size_t I = 0; I < A.Data.size(); ++I) {
    double X = A.Data[I], Y = B.Data[I];
    if (std::isnan(X) && std::isnan(Y))
      continue;
    double Mag = std::max(std::fabs(X), std::fabs(Y));
    if (std::fabs(X - Y) > Epsilon * std::max(1.0, Mag))
      return false;
  }
  return true;
}

} // namespace

bool runtime::outputsEqual(const CompiledKernel &Kernel, const Payload &A,
                           const Payload &B, double Epsilon) {
  for (size_t Index : outputBufferIndices(Kernel, A))
    if (!buffersEqual(A.Buffers[Index], B.Buffers[Index], Epsilon))
      return false;
  return true;
}

bool runtime::outputsDiffer(const CompiledKernel &Kernel,
                            const Payload &Before, const Payload &After,
                            double Epsilon) {
  for (size_t Index : outputBufferIndices(Kernel, Before))
    if (!buffersEqual(Before.Buffers[Index], After.Buffers[Index], Epsilon))
      return true;
  return false;
}

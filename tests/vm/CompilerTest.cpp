//===- tests/vm/CompilerTest.cpp - bytecode compiler tests -------------------===//

#include "vm/Compiler.h"

#include "vm/Bytecode.h"

#include <gtest/gtest.h>

using namespace clgen;
using namespace clgen::vm;

namespace {

CompiledKernel compileOk(const std::string &Src) {
  auto R = compileFirstKernel(Src);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.errorMessage());
  return R.ok() ? R.take() : CompiledKernel();
}

} // namespace

TEST(CompilerTest, VerifierAcceptsCompiledKernels) {
  CompiledKernel K = compileOk(
      "__kernel void A(__global float* a, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { a[i] = a[i] * 2.0f + 1.0f; }\n"
      "}");
  EXPECT_EQ(verifyKernel(K), "");
  EXPECT_GE(K.staticInstructionCount(), 3u);
}

TEST(CompilerTest, MinimalKernelHasFewInstructions) {
  // The rejection filter discards kernels with < 3 static instructions;
  // an empty kernel must fall below the threshold.
  CompiledKernel K = compileOk("__kernel void A() {}");
  EXPECT_LT(K.staticInstructionCount(), 3u);
}

TEST(CompilerTest, CoalescedAccessDetected) {
  CompiledKernel K = compileOk(
      "__kernel void A(__global float* a, __global float* b) {\n"
      "  int i = get_global_id(0);\n"
      "  b[i] = a[i];\n"
      "}");
  int Coalesced = 0;
  for (const AccessSite &S : K.AccessSites)
    Coalesced += S.Coalesced;
  EXPECT_EQ(Coalesced, 2);
}

TEST(CompilerTest, StridedAccessNotCoalesced) {
  CompiledKernel K = compileOk(
      "__kernel void A(__global float* a, __global float* b) {\n"
      "  int i = get_global_id(0);\n"
      "  b[i] = a[i * 2];\n"
      "}");
  int Loads = 0, CoalescedLoads = 0;
  for (const AccessSite &S : K.AccessSites) {
    if (!S.IsStore) {
      ++Loads;
      CoalescedLoads += S.Coalesced;
    }
  }
  EXPECT_EQ(Loads, 1);
  EXPECT_EQ(CoalescedLoads, 0);
}

TEST(CompilerTest, GidAffineThroughVariableChain) {
  CompiledKernel K = compileOk(
      "__kernel void A(__global float* a, __global float* b, int off) {\n"
      "  int i = get_global_id(0);\n"
      "  int j = i + 4;\n"
      "  b[j] = a[j - 1];\n"
      "}");
  for (const AccessSite &S : K.AccessSites)
    EXPECT_TRUE(S.Coalesced);
}

TEST(CompilerTest, LoopIndexNotCoalesced) {
  CompiledKernel K = compileOk(
      "__kernel void A(__global float* a, __global float* o, int n) {\n"
      "  float s = 0.0f;\n"
      "  for (int g = 0; g < n; g++) { s += a[g]; }\n"
      "  o[get_global_id(0)] = s;\n"
      "}");
  int CoalescedLoads = 0, Loads = 0;
  for (const AccessSite &S : K.AccessSites) {
    if (!S.IsStore) {
      ++Loads;
      CoalescedLoads += S.Coalesced;
    }
  }
  EXPECT_EQ(Loads, 1);
  EXPECT_EQ(CoalescedLoads, 0);
}

TEST(CompilerTest, BranchSitesCounted) {
  CompiledKernel K = compileOk(
      "__kernel void A(__global int* a, int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { a[i] = 1; }\n"
      "  for (int j = 0; j < 4; j++) { a[i] += j; }\n"
      "}");
  EXPECT_EQ(K.BranchSites, 2);
}

TEST(CompilerTest, BarrierFlagSet) {
  CompiledKernel K = compileOk(
      "__kernel void A(__global float* a) {\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  a[get_global_id(0)] = 1.0f;\n"
      "}");
  EXPECT_TRUE(K.HasBarrier);
}

TEST(CompilerTest, LocalArrayRegistered) {
  CompiledKernel K = compileOk(
      "__kernel void A(__global float* a) {\n"
      "  __local float tile[128];\n"
      "  int l = get_local_id(0);\n"
      "  tile[l] = a[l];\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  a[l] = tile[l];\n"
      "}");
  ASSERT_EQ(K.LocalBuffers.size(), 1u);
  EXPECT_EQ(K.LocalBuffers[0].Elements, 128);
}

TEST(CompilerTest, LocalPointerParamDriverSized) {
  CompiledKernel K = compileOk(
      "__kernel void A(__global float* a, __local float* tmp) {\n"
      "  int l = get_local_id(0);\n"
      "  tmp[l] = a[l];\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  a[l] = tmp[l];\n"
      "}");
  ASSERT_EQ(K.LocalBuffers.size(), 1u);
  EXPECT_EQ(K.LocalBuffers[0].Elements, 0); // Driver-sized.
}

TEST(CompilerTest, UserFunctionInlined) {
  CompiledKernel K = compileOk(
      "float helper(float x) { return x * 3.0f + 1.0f; }\n"
      "__kernel void A(__global float* a) {\n"
      "  a[get_global_id(0)] = helper(a[get_global_id(0)]);\n"
      "}");
  // No call instruction to user code exists in the ISA; inlining must
  // produce a verifiable kernel.
  EXPECT_EQ(verifyKernel(K), "");
}

TEST(CompilerTest, ParamCountsAndSlots) {
  CompiledKernel K = compileOk(
      "__kernel void A(__global float* a, const int n, __global int* b,\n"
      "                float s) { b[0] = n; a[0] = s; }");
  ASSERT_EQ(K.Params.size(), 4u);
  EXPECT_TRUE(K.Params[0].IsBuffer);
  EXPECT_EQ(K.Params[0].BufferSlot, 0);
  EXPECT_FALSE(K.Params[1].IsBuffer);
  EXPECT_TRUE(K.Params[2].IsBuffer);
  EXPECT_EQ(K.Params[2].BufferSlot, 1);
  EXPECT_EQ(K.bufferParamCount(), 2u);
}

TEST(CompilerTest, RejectsConditionalPointer) {
  auto R = compileFirstKernel(
      "__kernel void A(__global float* a, __global float* b, int n) {\n"
      "  __global float* p = n > 0 ? a : b;\n"
      "  p[0] = 1.0f;\n"
      "}");
  EXPECT_FALSE(R.ok());
}

TEST(CompilerTest, DisassemblerProducesListing) {
  CompiledKernel K = compileOk(
      "__kernel void A(__global float* a) { a[0] = 2.0f; }");
  std::string Listing = disassemble(K);
  EXPECT_NE(Listing.find("halt"), std::string::npos);
  EXPECT_NE(Listing.find("st"), std::string::npos);
}

TEST(CompilerTest, StaticInstructionCountPaperExamples) {
  // Figure 6b's zip kernel is clearly above the 3-instruction floor.
  CompiledKernel K = compileOk(
      "__kernel void A(__global float* a, __global float* b,\n"
      "                __global float* c, const int d) {\n"
      "  int e = get_global_id(0);\n"
      "  if (e >= d) { return; }\n"
      "  c[e] = a[e] + b[e] + 2 * a[e] + b[e] + 4;\n"
      "}");
  EXPECT_GT(K.staticInstructionCount(), 10u);
}

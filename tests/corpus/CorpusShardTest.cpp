//===- tests/corpus/CorpusShardTest.cpp - sharded ingest property tests -------===//
//
// Property coverage for the sharded corpus ingest: for ANY worker count
// and ANY shard boundary placement over ANY content-file mix, the
// assembled corpus must be byte-identical to serial ingest. Identity is
// checked on the store::Serialization image of the whole Corpus
// (entries AND statistics), the same bytes the artifact store would
// persist — if the snapshots are equal, every downstream consumer
// (training, fingerprints, warm starts) is unaffected by sharding.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

#include "githubsim/GithubSim.h"
#include "store/Archive.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace clgen;
using namespace clgen::corpus;

namespace {

/// The archive image a corpus snapshot persists as.
std::vector<uint8_t> corpusBytes(const Corpus &C) {
  store::ArchiveWriter W(store::ArchiveKind::Corpus);
  C.serialize(W);
  return W.finalize();
}

/// Randomized content-file mix: githubsim pathologies (comments,
/// macros, shim-dependent files, hopeless files) under a per-trial
/// seed, plus hand-made edge cases spliced in at random positions —
/// duplicates (exercising the order-sensitive dedup), empty files and
/// raw garbage.
std::vector<ContentFile> randomFiles(Rng &R) {
  githubsim::GithubSimOptions GOpts;
  GOpts.FileCount = 10 + R.bounded(40);
  GOpts.Seed = R.next();
  auto Files = githubsim::mineGithub(GOpts);

  size_t Splices = R.bounded(6);
  for (size_t I = 0; I < Splices; ++I) {
    ContentFile F;
    F.Path = "splice" + std::to_string(I) + ".cl";
    switch (R.bounded(3)) {
    case 0: // Duplicate of an existing file: dedup must stay in order.
      F.Text = Files[R.bounded(Files.size())].Text;
      break;
    case 1:
      F.Text = "";
      break;
    default:
      F.Text = "this is not opencl {{{";
      break;
    }
    Files.insert(Files.begin() + R.bounded(Files.size() + 1),
                 std::move(F));
  }
  return Files;
}

} // namespace

TEST(CorpusShardTest, RandomShardBoundariesMatchSerialIngestByteForByte) {
  Rng R(0x5A4DED);
  for (size_t Trial = 0; Trial < 10; ++Trial) {
    auto Files = randomFiles(R);

    CorpusOptions Serial;
    Serial.Workers = 1;
    Corpus Reference = buildCorpus(Files, Serial);
    auto ReferenceBytes = corpusBytes(Reference);

    // Random worker count and random shard granularity — including
    // degenerate boundaries (1 file per shard, everything in one
    // shard, shards bigger than the input).
    CorpusOptions Sharded;
    Sharded.Workers = static_cast<unsigned>(2 + R.bounded(5));
    Sharded.ShardSize = 1 + R.bounded(Files.size() + 4);
    Corpus Out = buildCorpus(Files, Sharded);

    EXPECT_EQ(corpusBytes(Out), ReferenceBytes)
        << "trial " << Trial << ": workers=" << Sharded.Workers
        << " shard=" << Sharded.ShardSize << " files=" << Files.size();
    // Redundant with the byte comparison, but gives readable failures.
    EXPECT_EQ(Out.Entries, Reference.Entries) << "trial " << Trial;
    EXPECT_EQ(Out.Stats.FilesAccepted, Reference.Stats.FilesAccepted);
    EXPECT_EQ(Out.Stats.VocabularyBefore,
              Reference.Stats.VocabularyBefore);
    EXPECT_EQ(Out.Stats.VocabularyAfter, Reference.Stats.VocabularyAfter);
  }
}

TEST(CorpusShardTest, ShimAndNonShimFiltersShardIdentically) {
  // The shim header changes which files are accepted; sharding must be
  // transparent under both filter configurations.
  Rng R(0xF117E4);
  auto Files = randomFiles(R);
  for (bool UseShim : {false, true}) {
    CorpusOptions Serial;
    Serial.Filter.UseShim = UseShim;
    Serial.Workers = 1;
    CorpusOptions Sharded = Serial;
    Sharded.Workers = 4;
    Sharded.ShardSize = 3;
    EXPECT_EQ(corpusBytes(buildCorpus(Files, Sharded)),
              corpusBytes(buildCorpus(Files, Serial)))
        << "shim=" << UseShim;
  }
}

TEST(CorpusShardTest, EmptyAndSingleFileInputs) {
  CorpusOptions Sharded;
  Sharded.Workers = 4;
  Sharded.ShardSize = 2;
  Corpus Empty = buildCorpus({}, Sharded);
  EXPECT_TRUE(Empty.Entries.empty());
  EXPECT_EQ(Empty.Stats.FilesIn, 0u);

  std::vector<ContentFile> One{
      {"one.cl", "__kernel void f(__global float* a) {\n"
                 "  int i = get_global_id(0);\n"
                 "  a[i] = a[i] * 2.0f + 1.0f;\n"
                 "}\n"}};
  CorpusOptions Serial;
  Serial.Workers = 1;
  EXPECT_EQ(corpusBytes(buildCorpus(One, Sharded)),
            corpusBytes(buildCorpus(One, Serial)));
}

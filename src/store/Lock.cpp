//===- store/Lock.cpp - Advisory cross-process file locks ----------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "store/Lock.h"

#include "store/Archive.h"
#include "support/FailPoint.h"

#include <filesystem>
#include <thread>
#include <utility>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

using namespace clgen;
using namespace clgen::store;

ScopedLock::ScopedLock(ScopedLock &&Other) noexcept
    : Fd(std::exchange(Other.Fd, -1)),
      LockPath(std::move(Other.LockPath)) {}

ScopedLock &ScopedLock::operator=(ScopedLock &&Other) noexcept {
  if (this != &Other) {
    release();
    Fd = std::exchange(Other.Fd, -1);
    LockPath = std::move(Other.LockPath);
  }
  return *this;
}

void ScopedLock::release() {
#ifndef _WIN32
  if (Fd >= 0) {
    // close() drops the flock with the file description; an explicit
    // unlock first keeps the window where a dead fd still excludes
    // others as small as possible.
    ::flock(Fd, LOCK_UN);
    ::close(Fd);
  }
#endif
  Fd = -1;
  LockPath.clear();
}

#ifndef _WIN32

/// One acquisition attempt. \p Contended distinguishes "someone else
/// holds it" (retryable) from "the lock file cannot be opened at all"
/// (permanent — e.g. a read-only store; retrying cannot help).
Result<ScopedLock> ScopedLock::tryAcquireImpl(const std::string &Path,
                                              bool &Contended) {
  Contended = false;
  std::error_code Ec;
  std::filesystem::path P(Path);
  if (P.has_parent_path())
    std::filesystem::create_directories(P.parent_path(), Ec);

  // Lock files are created once and never unlinked by holders: an
  // unlink/reopen scheme lets a racer lock a file that is about to
  // disappear, after which two "holders" lock two different inodes.
  int Fd = ::open(Path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (Fd < 0)
    return Result<ScopedLock>::error("cannot open lock file: " + Path);
  if (::flock(Fd, LOCK_EX | LOCK_NB) != 0) {
    Contended = errno == EWOULDBLOCK || errno == EINTR;
    ::close(Fd);
    return Result<ScopedLock>::error("lock is held: " + Path);
  }
  ScopedLock L;
  L.Fd = Fd;
  L.LockPath = Path;
  return L;
}

Result<ScopedLock> ScopedLock::tryAcquire(const std::string &Path) {
  bool Contended = false;
  return tryAcquireImpl(Path, Contended);
}

Result<ScopedLock> ScopedLock::acquire(const std::string &Path,
                                       const LockOptions &Opts) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point Deadline = Clock::now() + Opts.Timeout;
  for (;;) {
    bool Contended = false;
    Result<ScopedLock> R = tryAcquireImpl(Path, Contended);
    if (R.ok())
      return R;
    // Only contention is worth waiting out; an unopenable lock file
    // is permanent, and stalling the timeout there would turn every
    // cold miss on a read-only store into a multi-second hang.
    if (!Contended)
      return R;
    if (Clock::now() >= Deadline)
      return Result<ScopedLock>::error("timed out waiting for lock: " +
                                       Path);
    std::this_thread::sleep_for(Opts.PollInterval);
  }
}

#else // _WIN32

// No flock on Windows: degrade to "never held". Every caller treats
// locking as best-effort stampede control, so correctness (atomic
// rename publication) is unaffected — only dedup of concurrent work.
Result<ScopedLock> ScopedLock::tryAcquireImpl(const std::string &Path,
                                              bool &Contended) {
  Contended = false;
  ScopedLock L;
  L.LockPath = Path;
  return L;
}

Result<ScopedLock> ScopedLock::tryAcquire(const std::string &Path) {
  bool Contended = false;
  return tryAcquireImpl(Path, Contended);
}

Result<ScopedLock> ScopedLock::acquire(const std::string &Path,
                                       const LockOptions &) {
  return tryAcquire(Path);
}

#endif // _WIN32

ScopedLock ScopedLock::acquireForMiss(const std::string &Path,
                                      const LockOptions &Opts) {
  // Injected acquisition failure: exercises the documented degrade path
  // (proceed unlocked, risking only duplicated work — never corruption,
  // because publication stays atomic-rename).
  if (CLGS_FAILPOINT("store.lock"))
    return ScopedLock();
  // acquire()'s first iteration is already a non-blocking try, so an
  // uncontended miss takes the lock without ever sleeping.
  Result<ScopedLock> Lock = acquire(Path, Opts);
  return Lock.ok() ? Lock.take() : ScopedLock();
}

std::string store::lockFilePath(const std::string &StoreDir,
                                const char *What, uint64_t Key) {
  return StoreDir + "/locks/" + What + "-" + hexDigest(Key) + ".lock";
}

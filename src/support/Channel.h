//===- support/Channel.h - Bounded MPMC channel ------------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded multi-producer/multi-consumer queue with close semantics —
/// the backbone of the streaming synthesis→measurement pipeline. Design
/// points:
///
///  - Bounded: push() blocks while the channel is full, so a fast
///    producer is back-pressured to the consumers' pace instead of
///    buffering unbounded speculative work. Capacity must be positive;
///    a zero-capacity channel could never move a value through push/pop
///    and is rejected at construction.
///  - Close semantics: close() is idempotent and wakes every blocked
///    thread. Pushes on a closed channel return false and drop the
///    value; pops drain whatever is already buffered, then return
///    nullopt. "nullopt from pop()" is therefore the consumers' only
///    termination signal — no sentinel values in the element type.
///  - FIFO: values pop in push order. The pipeline does not rely on
///    this for correctness (results are keyed by index and re-ordered
///    by the caller), but FIFO keeps the measurement tail short: the
///    oldest accepted kernel is always the next one measured.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_SUPPORT_CHANNEL_H
#define CLGEN_SUPPORT_CHANNEL_H

#include "support/Metrics.h"
#include "support/Trace.h"

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

namespace clgen {
namespace support {

/// Bounded MPMC queue of T with close semantics.
template <typename T> class Channel {
public:
  /// Creates a channel buffering at most \p Capacity values. Throws
  /// std::invalid_argument when \p Capacity is zero.
  explicit Channel(size_t Capacity) : Cap(Capacity) {
    if (Capacity == 0)
      throw std::invalid_argument("Channel capacity must be positive");
  }

  Channel(const Channel &) = delete;
  Channel &operator=(const Channel &) = delete;

  /// Blocks until space is available or the channel is closed. Returns
  /// true when \p Value was enqueued; false when the channel was (or
  /// became) closed, in which case the value is dropped.
  bool push(T Value) {
    std::unique_lock<std::mutex> Lock(Mutex);
    // Metrics aggregate over every Channel instance in the process;
    // blocked-producer time only charges the waits that actually park.
    CLGS_TELEMETRY_ONLY(if (!Closed && Buffer.size() >= Cap) {
      CLGS_COUNT_V("clgen.channel.push_blocks");
      CLGS_TRACE_INSTANT("channel.full");
      uint64_t T0 = telemetryNowNs();
      NotFull.wait(Lock, [this] { return Closed || Buffer.size() < Cap; });
      CLGS_HIST_US("clgen.channel.push_block_us",
                   (telemetryNowNs() - T0) / 1000);
    })
    NotFull.wait(Lock, [this] { return Closed || Buffer.size() < Cap; });
    if (Closed)
      return false;
    Buffer.push_back(std::move(Value));
    CLGS_COUNT("clgen.channel.pushes");
    CLGS_GAUGE_SET("clgen.channel.occupancy",
                   static_cast<int64_t>(Buffer.size()));
    Lock.unlock();
    NotEmpty.notify_one();
    return true;
  }

  /// Non-blocking push: false when the channel is full or closed (the
  /// value is left untouched so the caller can retry or divert it).
  bool tryPush(T &Value) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Closed || Buffer.size() >= Cap)
        return false;
      Buffer.push_back(std::move(Value));
    }
    NotEmpty.notify_one();
    return true;
  }

  /// Blocks until a value is available or the channel is closed and
  /// drained. Returns nullopt only in the latter case — buffered values
  /// survive close() and are always delivered.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> Lock(Mutex);
    CLGS_TELEMETRY_ONLY(if (!Closed && Buffer.empty()) {
      CLGS_COUNT_V("clgen.channel.pop_blocks");
      CLGS_TRACE_INSTANT("channel.empty");
      uint64_t T0 = telemetryNowNs();
      NotEmpty.wait(Lock, [this] { return Closed || !Buffer.empty(); });
      CLGS_HIST_US("clgen.channel.pop_block_us",
                   (telemetryNowNs() - T0) / 1000);
    })
    NotEmpty.wait(Lock, [this] { return Closed || !Buffer.empty(); });
    if (Buffer.empty())
      return std::nullopt; // Closed and drained.
    std::optional<T> Out(std::move(Buffer.front()));
    Buffer.pop_front();
    CLGS_COUNT("clgen.channel.pops");
    Lock.unlock();
    NotFull.notify_one();
    return Out;
  }

  /// Non-blocking pop: nullopt when nothing is buffered right now
  /// (whether or not the channel is closed; poll closed() to tell).
  std::optional<T> tryPop() {
    std::optional<T> Out;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Buffer.empty())
        return std::nullopt;
      Out.emplace(std::move(Buffer.front()));
      Buffer.pop_front();
    }
    NotFull.notify_one();
    return Out;
  }

  /// Closes the channel: subsequent (and currently blocked) pushes fail,
  /// pops drain the remaining buffer then return nullopt. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Closed)
        return;
      Closed = true;
    }
    NotFull.notify_all();
    NotEmpty.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Closed;
  }

  /// Number of values currently buffered (racy by nature; for tests and
  /// diagnostics).
  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Buffer.size();
  }

  size_t capacity() const { return Cap; }

private:
  const size_t Cap;
  mutable std::mutex Mutex;
  std::condition_variable NotFull;
  std::condition_variable NotEmpty;
  std::deque<T> Buffer;
  bool Closed = false;
};

} // namespace support
} // namespace clgen

#endif // CLGEN_SUPPORT_CHANNEL_H

//===- model/LstmModel.cpp - LSTM language model -------------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "model/LstmModel.h"

#include <cassert>
#include <cmath>

using namespace clgen;
using namespace clgen::model;

namespace {

float sigmoidf(float X) { return 1.0f / (1.0f + std::exp(-X)); }

/// y += W[Rows x Cols] * x.
void matVecAcc(const std::vector<float> &W, const float *X, int Rows,
               int Cols, float *Y) {
  for (int R = 0; R < Rows; ++R) {
    const float *Row = W.data() + static_cast<size_t>(R) * Cols;
    float Sum = 0.0f;
    for (int C = 0; C < Cols; ++C)
      Sum += Row[C] * X[C];
    Y[R] += Sum;
  }
}

/// y += W^T * x, where W is [Rows x Cols] and x has Rows entries.
void matTVecAcc(const std::vector<float> &W, const float *X, int Rows,
                int Cols, float *Y) {
  for (int R = 0; R < Rows; ++R) {
    const float *Row = W.data() + static_cast<size_t>(R) * Cols;
    float XR = X[R];
    if (XR == 0.0f)
      continue;
    for (int C = 0; C < Cols; ++C)
      Y[C] += Row[C] * XR;
  }
}

/// dW += outer(dy, x) for W [Rows x Cols].
void outerAcc(std::vector<float> &DW, const float *DY, const float *X,
              int Rows, int Cols) {
  for (int R = 0; R < Rows; ++R) {
    float D = DY[R];
    if (D == 0.0f)
      continue;
    float *Row = DW.data() + static_cast<size_t>(R) * Cols;
    for (int C = 0; C < Cols; ++C)
      Row[C] += D * X[C];
  }
}

void softmaxInPlace(std::vector<float> &Logits) {
  float Max = Logits[0];
  for (float L : Logits)
    Max = std::max(Max, L);
  float Sum = 0.0f;
  for (float &L : Logits) {
    L = std::exp(L - Max);
    Sum += L;
  }
  for (float &L : Logits)
    L /= Sum;
}

} // namespace

/// Per-chunk forward cache for BPTT.
struct LstmModel::Tape {
  // Indexed [t][layer].
  std::vector<std::vector<std::vector<float>>> Gates; // 4H pre-activations
                                                      // post-nonlinearity:
                                                      // [i f g o].
  std::vector<std::vector<std::vector<float>>> C;     // Cell states.
  std::vector<std::vector<std::vector<float>>> H;     // Hidden states.
  std::vector<std::vector<std::vector<float>>> X;     // Layer inputs.
  std::vector<std::vector<float>> Probs;              // Softmax outputs.
  std::vector<int> Inputs;                            // Token ids per step.
};

void LstmModel::initParameters() {
  Rng R(Opts.Seed);
  int H = Opts.HiddenSize;
  Layers.clear();
  Layers.resize(Opts.Layers);
  for (int L = 0; L < Opts.Layers; ++L) {
    int In = L == 0 ? V : H;
    Layers[L].In = In;
    float ScaleX = 1.0f / std::sqrt(static_cast<float>(In));
    float ScaleH = 1.0f / std::sqrt(static_cast<float>(H));
    Layers[L].Wx.assign(static_cast<size_t>(4 * H) * In, 0.0f);
    Layers[L].Wh.assign(static_cast<size_t>(4 * H) * H, 0.0f);
    Layers[L].B.assign(4 * H, 0.0f);
    for (float &W : Layers[L].Wx)
      W = static_cast<float>(R.gaussian(0.0, ScaleX));
    for (float &W : Layers[L].Wh)
      W = static_cast<float>(R.gaussian(0.0, ScaleH));
    // Forget-gate bias starts positive (standard trick for gradient
    // flow).
    for (int I = H; I < 2 * H; ++I)
      Layers[L].B[I] = 1.0f;
  }
  float ScaleY = 1.0f / std::sqrt(static_cast<float>(H));
  Wy.assign(static_cast<size_t>(V) * H, 0.0f);
  By.assign(V, 0.0f);
  for (float &W : Wy)
    W = static_cast<float>(R.gaussian(0.0, ScaleY));
}

size_t LstmModel::parameterCount() const {
  size_t N = Wy.size() + By.size();
  for (const Layer &L : Layers)
    N += L.Wx.size() + L.Wh.size() + L.B.size();
  return N;
}

void LstmModel::reset() {
  int H = Opts.HiddenSize;
  StateH.assign(Opts.Layers, std::vector<float>(H, 0.0f));
  StateC.assign(Opts.Layers, std::vector<float>(H, 0.0f));
}

void LstmModel::stepState(int TokenId,
                          std::vector<std::vector<float>> &HState,
                          std::vector<std::vector<float>> &CState,
                          std::vector<float> *LogitsOut) {
  int H = Opts.HiddenSize;
  std::vector<float> Input;
  for (int L = 0; L < Opts.Layers; ++L) {
    Layer &Lay = Layers[L];
    std::vector<float> A(4 * H, 0.0f);
    for (int I = 0; I < 4 * H; ++I)
      A[I] = Lay.B[I];
    if (L == 0) {
      // One-hot input: add column TokenId of Wx.
      for (int RIdx = 0; RIdx < 4 * H; ++RIdx)
        A[RIdx] += Lay.Wx[static_cast<size_t>(RIdx) * Lay.In + TokenId];
    } else {
      matVecAcc(Lay.Wx, Input.data(), 4 * H, Lay.In, A.data());
    }
    matVecAcc(Lay.Wh, HState[L].data(), 4 * H, H, A.data());
    std::vector<float> NewH(H), NewC(H);
    for (int I = 0; I < H; ++I) {
      float Gi = sigmoidf(A[I]);
      float Gf = sigmoidf(A[H + I]);
      float Gg = std::tanh(A[2 * H + I]);
      float Go = sigmoidf(A[3 * H + I]);
      NewC[I] = Gi * Gg + Gf * CState[L][I];
      NewH[I] = Go * std::tanh(NewC[I]);
    }
    CState[L] = NewC;
    HState[L] = NewH;
    Input = NewH;
  }
  if (LogitsOut) {
    LogitsOut->assign(V, 0.0f);
    for (int I = 0; I < V; ++I)
      (*LogitsOut)[I] = By[I];
    matVecAcc(Wy, HState[Opts.Layers - 1].data(), V, H, LogitsOut->data());
  }
}

void LstmModel::observe(int TokenId) {
  if (StateH.empty())
    reset();
  stepState(TokenId, StateH, StateC, nullptr);
}

std::vector<double> LstmModel::nextDistribution() {
  if (StateH.empty())
    reset();
  int H = Opts.HiddenSize;
  std::vector<float> Logits(V, 0.0f);
  for (int I = 0; I < V; ++I)
    Logits[I] = By[I];
  matVecAcc(Wy, StateH[Opts.Layers - 1].data(), V, H, Logits.data());
  softmaxInPlace(Logits);
  std::vector<double> Dist(V);
  for (int I = 0; I < V; ++I)
    Dist[I] = Logits[I];
  return Dist;
}

double LstmModel::trainChunk(const std::vector<int> &Tokens, size_t Begin,
                             size_t End,
                             std::vector<std::vector<float>> &HState,
                             std::vector<std::vector<float>> &CState,
                             float Lr) {
  int H = Opts.HiddenSize;
  int T = static_cast<int>(End - Begin - 1); // Steps (predict next token).
  if (T <= 0)
    return 0.0;

  Tape Tp;
  Tp.Gates.resize(T);
  Tp.C.resize(T);
  Tp.H.resize(T);
  Tp.X.resize(T);
  Tp.Probs.resize(T);
  Tp.Inputs.resize(T);

  std::vector<std::vector<float>> HPrev = HState, CPrev = CState;
  double LossBits = 0.0;

  // ---- Forward ----
  for (int Step = 0; Step < T; ++Step) {
    int TokenId = Tokens[Begin + Step];
    int Target = Tokens[Begin + Step + 1];
    Tp.Inputs[Step] = TokenId;
    Tp.Gates[Step].resize(Opts.Layers);
    Tp.C[Step].resize(Opts.Layers);
    Tp.H[Step].resize(Opts.Layers);
    Tp.X[Step].resize(Opts.Layers);

    std::vector<float> Input;
    for (int L = 0; L < Opts.Layers; ++L) {
      Layer &Lay = Layers[L];
      std::vector<float> A(Lay.B);
      if (L == 0) {
        for (int RIdx = 0; RIdx < 4 * H; ++RIdx)
          A[RIdx] += Lay.Wx[static_cast<size_t>(RIdx) * Lay.In + TokenId];
      } else {
        Tp.X[Step][L] = Input;
        matVecAcc(Lay.Wx, Input.data(), 4 * H, Lay.In, A.data());
      }
      const std::vector<float> &HIn =
          Step == 0 ? HPrev[L] : Tp.H[Step - 1][L];
      const std::vector<float> &CIn =
          Step == 0 ? CPrev[L] : Tp.C[Step - 1][L];
      matVecAcc(Lay.Wh, HIn.data(), 4 * H, H, A.data());
      std::vector<float> Gate(4 * H), NewC(H), NewH(H);
      for (int I = 0; I < H; ++I) {
        float Gi = sigmoidf(A[I]);
        float Gf = sigmoidf(A[H + I]);
        float Gg = std::tanh(A[2 * H + I]);
        float Go = sigmoidf(A[3 * H + I]);
        Gate[I] = Gi;
        Gate[H + I] = Gf;
        Gate[2 * H + I] = Gg;
        Gate[3 * H + I] = Go;
        NewC[I] = Gi * Gg + Gf * CIn[I];
        NewH[I] = Go * std::tanh(NewC[I]);
      }
      Tp.Gates[Step][L] = std::move(Gate);
      Tp.C[Step][L] = std::move(NewC);
      Tp.H[Step][L] = NewH;
      Input = std::move(NewH);
    }

    std::vector<float> Logits(By);
    matVecAcc(Wy, Tp.H[Step][Opts.Layers - 1].data(), V, H, Logits.data());
    softmaxInPlace(Logits);
    LossBits += -std::log2(std::max(Logits[Target], 1e-12f));
    Tp.Probs[Step] = std::move(Logits);
  }

  // ---- Backward ----
  std::vector<Layer> Grads(Opts.Layers);
  for (int L = 0; L < Opts.Layers; ++L) {
    Grads[L].In = Layers[L].In;
    Grads[L].Wx.assign(Layers[L].Wx.size(), 0.0f);
    Grads[L].Wh.assign(Layers[L].Wh.size(), 0.0f);
    Grads[L].B.assign(Layers[L].B.size(), 0.0f);
  }
  std::vector<float> GWy(Wy.size(), 0.0f), GBy(By.size(), 0.0f);

  // dH/dC accumulators per layer (flowing backwards in time).
  std::vector<std::vector<float>> DH(Opts.Layers,
                                     std::vector<float>(H, 0.0f));
  std::vector<std::vector<float>> DC(Opts.Layers,
                                     std::vector<float>(H, 0.0f));

  for (int Step = T - 1; Step >= 0; --Step) {
    int Target = Tokens[Begin + Step + 1];
    // Softmax cross-entropy gradient (natural log scale; the bits/char
    // reporting is cosmetic).
    std::vector<float> DY = Tp.Probs[Step];
    DY[Target] -= 1.0f;

    outerAcc(GWy, DY.data(), Tp.H[Step][Opts.Layers - 1].data(), V, H);
    for (int I = 0; I < V; ++I)
      GBy[I] += DY[I];
    matTVecAcc(Wy, DY.data(), V, H, DH[Opts.Layers - 1].data());

    for (int L = Opts.Layers - 1; L >= 0; --L) {
      const std::vector<float> &Gate = Tp.Gates[Step][L];
      const std::vector<float> &CNow = Tp.C[Step][L];
      const std::vector<float> &CIn =
          Step == 0 ? CPrev[L] : Tp.C[Step - 1][L];
      const std::vector<float> &HIn =
          Step == 0 ? HPrev[L] : Tp.H[Step - 1][L];

      std::vector<float> DA(4 * H, 0.0f);
      for (int I = 0; I < H; ++I) {
        float Gi = Gate[I], Gf = Gate[H + I], Gg = Gate[2 * H + I],
              Go = Gate[3 * H + I];
        float TanhC = std::tanh(CNow[I]);
        float DHI = DH[L][I];
        float DCI = DC[L][I] + DHI * Go * (1.0f - TanhC * TanhC);
        float DGo = DHI * TanhC;
        float DGi = DCI * Gg;
        float DGg = DCI * Gi;
        float DGf = DCI * CIn[I];
        DA[I] = DGi * Gi * (1.0f - Gi);
        DA[H + I] = DGf * Gf * (1.0f - Gf);
        DA[2 * H + I] = DGg * (1.0f - Gg * Gg);
        DA[3 * H + I] = DGo * Go * (1.0f - Go);
        DC[L][I] = DCI * Gf; // To t-1.
      }

      // Parameter gradients.
      if (L == 0) {
        int TokenId = Tp.Inputs[Step];
        for (int RIdx = 0; RIdx < 4 * H; ++RIdx)
          Grads[L].Wx[static_cast<size_t>(RIdx) * Layers[L].In + TokenId] +=
              DA[RIdx];
      } else {
        outerAcc(Grads[L].Wx, DA.data(), Tp.X[Step][L].data(), 4 * H,
                 Layers[L].In);
      }
      outerAcc(Grads[L].Wh, DA.data(), HIn.data(), 4 * H, H);
      for (int I = 0; I < 4 * H; ++I)
        Grads[L].B[I] += DA[I];

      // Propagate to h at t-1 (same layer) and to the layer below.
      std::vector<float> DHPrev(H, 0.0f);
      matTVecAcc(Layers[L].Wh, DA.data(), 4 * H, H, DHPrev.data());
      DH[L] = std::move(DHPrev);
      if (L > 0) {
        matTVecAcc(Layers[L].Wx, DA.data(), 4 * H, Layers[L].In,
                   DH[L - 1].data());
      }
    }
  }

  // ---- Clip and apply ----
  double Norm2 = 0.0;
  auto AccumNorm = [&Norm2](const std::vector<float> &G) {
    for (float X : G)
      Norm2 += static_cast<double>(X) * X;
  };
  for (const Layer &G : Grads) {
    AccumNorm(G.Wx);
    AccumNorm(G.Wh);
    AccumNorm(G.B);
  }
  AccumNorm(GWy);
  AccumNorm(GBy);
  double Norm = std::sqrt(Norm2);
  float Scale = Norm > Opts.GradClip
                    ? static_cast<float>(Opts.GradClip / Norm)
                    : 1.0f;
  float Step = Lr * Scale / static_cast<float>(T);

  auto Apply = [Step](std::vector<float> &W, const std::vector<float> &G) {
    for (size_t I = 0; I < W.size(); ++I)
      W[I] -= Step * G[I];
  };
  for (int L = 0; L < Opts.Layers; ++L) {
    Apply(Layers[L].Wx, Grads[L].Wx);
    Apply(Layers[L].Wh, Grads[L].Wh);
    Apply(Layers[L].B, Grads[L].B);
  }
  Apply(Wy, GWy);
  Apply(By, GBy);

  // Carry state across chunks (truncated BPTT).
  HState = Tp.H[T - 1];
  CState = Tp.C[T - 1];
  return LossBits / T;
}

void LstmModel::train(const std::vector<std::string> &Entries,
                      const std::function<void(int, double)> &Progress) {
  std::string All;
  for (const std::string &E : Entries)
    All += E;
  Vocab = Vocabulary::fromText(All);
  V = static_cast<int>(Vocab.size());
  initParameters();

  // Token stream with sentinels between entries.
  std::vector<int> Stream;
  Stream.reserve(All.size() + Entries.size());
  for (const std::string &E : Entries) {
    for (char C : E)
      Stream.push_back(Vocab.idOf(C));
    Stream.push_back(Vocabulary::EndOfText);
  }
  if (Stream.size() < 2)
    return;

  float Lr = Opts.LearningRate;
  for (int Epoch = 0; Epoch < Opts.Epochs; ++Epoch) {
    if (Epoch > 0 && Opts.DecayEveryEpochs > 0 &&
        Epoch % Opts.DecayEveryEpochs == 0)
      Lr *= Opts.LearningRateDecay;
    std::vector<std::vector<float>> HState(
        Opts.Layers, std::vector<float>(Opts.HiddenSize, 0.0f));
    std::vector<std::vector<float>> CState = HState;
    double LossSum = 0.0;
    int Chunks = 0;
    size_t StepLen = static_cast<size_t>(Opts.SequenceLength);
    for (size_t Begin = 0; Begin + 1 < Stream.size(); Begin += StepLen) {
      size_t End = std::min(Begin + StepLen + 1, Stream.size());
      LossSum += trainChunk(Stream, Begin, End, HState, CState, Lr);
      ++Chunks;
    }
    if (Progress)
      Progress(Epoch, Chunks > 0 ? LossSum / Chunks : 0.0);
  }
  reset();
}

double LstmModel::sequenceLoss(const std::vector<int> &Tokens) {
  if (Tokens.size() < 2)
    return 0.0;
  std::vector<std::vector<float>> HState(
      Opts.Layers, std::vector<float>(Opts.HiddenSize, 0.0f));
  std::vector<std::vector<float>> CState = HState;
  double Bits = 0.0;
  for (size_t Step = 0; Step + 1 < Tokens.size(); ++Step) {
    std::vector<float> Logits;
    stepState(Tokens[Step], HState, CState, &Logits);
    softmaxInPlace(Logits);
    Bits += -std::log2(std::max(Logits[Tokens[Step + 1]], 1e-12f));
  }
  return Bits / static_cast<double>(Tokens.size() - 1);
}

double LstmModel::gradientCheck(const std::vector<int> &Tokens,
                                int SampleCount) {
  assert(V > 0 && "train or init before gradientCheck");
  // Analytic gradients via a zero-lr "training" pass would mutate
  // parameters; instead, compute them by running trainChunk with Lr==0 is
  // not possible (it applies updates scaled by Lr, which is 0 -> no
  // mutation). Exploit that: run with Lr = 0 to fill nothing... we need
  // the raw gradients. Simplest robust approach: finite differences of
  // sequenceLoss against an analytic directional derivative obtained from
  // a tiny SGD step.
  //
  // Procedure per sampled parameter p:
  //   g_analytic ~= (loss(p) - loss(p - lr*g)) / (lr*g)  is circular, so
  // we instead verify that a small SGD step decreases the loss in
  // proportion to ||g||^2, and check central differences directly on a
  // few parameters by brute force.
  double MaxRelError = 0.0;
  Rng R(123);
  const float Eps = 1e-2f;

  // Brute-force central differences on sampled parameters, against the
  // analytic gradient recovered from a single unit-lr update on a copy.
  // Save parameters.
  auto SavedLayers = Layers;
  auto SavedWy = Wy;
  auto SavedBy = By;

  // Recover analytic gradient: apply one step with Lr = 1, no clipping.
  float SavedClip = Opts.GradClip;
  Opts.GradClip = 1e30f;
  std::vector<std::vector<float>> HState(
      Opts.Layers, std::vector<float>(Opts.HiddenSize, 0.0f));
  std::vector<std::vector<float>> CState = HState;
  int T = static_cast<int>(Tokens.size()) - 1;
  trainChunk(Tokens, 0, Tokens.size(), HState, CState, 1.0f);
  Opts.GradClip = SavedClip;

  // gradient = (old - new) * T   (trainChunk divides by T).
  struct Sample {
    int Kind; // 0 Wx, 1 Wh, 2 B, 3 Wy, 4 By.
    int LayerIdx;
    size_t Offset;
    double Analytic;
  };
  std::vector<Sample> Samples;
  for (int I = 0; I < SampleCount; ++I) {
    Sample S;
    S.Kind = static_cast<int>(R.bounded(5));
    S.LayerIdx = static_cast<int>(R.bounded(Layers.size()));
    auto Pick = [&](const std::vector<float> &Old,
                    const std::vector<float> &New) {
      S.Offset = R.bounded(Old.size());
      S.Analytic = (static_cast<double>(Old[S.Offset]) - New[S.Offset]) * T;
    };
    switch (S.Kind) {
    case 0: Pick(SavedLayers[S.LayerIdx].Wx, Layers[S.LayerIdx].Wx); break;
    case 1: Pick(SavedLayers[S.LayerIdx].Wh, Layers[S.LayerIdx].Wh); break;
    case 2: Pick(SavedLayers[S.LayerIdx].B, Layers[S.LayerIdx].B); break;
    case 3: Pick(SavedWy, Wy); break;
    case 4: Pick(SavedBy, By); break;
    }
    Samples.push_back(S);
  }

  // Restore and evaluate central differences (loss reported in bits;
  // convert the analytic nat-scale gradient to bits).
  Layers = SavedLayers;
  Wy = SavedWy;
  By = SavedBy;
  const double Ln2 = 0.6931471805599453;

  for (const Sample &S : Samples) {
    auto Ref = [&]() -> float & {
      switch (S.Kind) {
      case 0: return Layers[S.LayerIdx].Wx[S.Offset];
      case 1: return Layers[S.LayerIdx].Wh[S.Offset];
      case 2: return Layers[S.LayerIdx].B[S.Offset];
      case 3: return Wy[S.Offset];
      default: return By[S.Offset];
      }
    };
    float Saved = Ref();
    Ref() = Saved + Eps;
    double LossPlus = sequenceLoss(Tokens) * T; // Total bits.
    Ref() = Saved - Eps;
    double LossMinus = sequenceLoss(Tokens) * T;
    Ref() = Saved;
    double Numeric = (LossPlus - LossMinus) / (2.0 * Eps) * Ln2;
    double Denom = std::max(1e-4, std::fabs(Numeric) + std::fabs(S.Analytic));
    double RelError = std::fabs(Numeric - S.Analytic) / Denom;
    MaxRelError = std::max(MaxRelError, RelError);
  }
  return MaxRelError;
}

//===- ocl/Casting.h - isa/cast/dyn_cast helpers -----------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled LLVM-style RTTI: isa<>, cast<> and dyn_cast<> templates
/// driven by each node's static classof(). The project compiles without
/// dynamic_cast; every class participating here defines
/// `static bool classof(const Base*)`.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_OCL_CASTING_H
#define CLGEN_OCL_CASTING_H

#include <cassert>

namespace clgen {

/// Returns true when \p Value dynamically is a To. \p Value must be
/// non-null.
template <typename To, typename From> bool isa(const From *Value) {
  assert(Value && "isa<> on a null pointer");
  return To::classof(Value);
}

/// Checked downcast; asserts on kind mismatch.
template <typename To, typename From> To *cast(From *Value) {
  assert(isa<To>(Value) && "cast<> to incompatible kind");
  return static_cast<To *>(Value);
}

template <typename To, typename From> const To *cast(const From *Value) {
  assert(isa<To>(Value) && "cast<> to incompatible kind");
  return static_cast<const To *>(Value);
}

/// Downcast returning nullptr on kind mismatch. \p Value must be non-null.
template <typename To, typename From> To *dyn_cast(From *Value) {
  return isa<To>(Value) ? static_cast<To *>(Value) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast(const From *Value) {
  return isa<To>(Value) ? static_cast<const To *>(Value) : nullptr;
}

} // namespace clgen

#endif // CLGEN_OCL_CASTING_H

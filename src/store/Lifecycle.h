//===- store/Lifecycle.h - Store GC, manifest and inspection -----*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lifecycle layer of the artifact store: without it the store only
/// grows ("cumulative"), with it the store stays curated — a
/// size-bounded LRU sweep validates every entry, quarantines corrupt
/// files and evicts the least-recently-used entries down to a byte
/// budget, recording what it did in an atomically-published manifest.
///
/// Contracts (normative; docs/STORE_FORMAT.md §5 is the spec):
///
/// - **Sweep never mutates surviving artifact bytes.** Its only
///   filesystem operations are whole-file rename (quarantine, manifest
///   publication) and whole-file unlink (eviction). An artifact that
///   survives a sweep is bit-identical to itself before the sweep, so
///   every determinism contract of the layers above carries through.
/// - **Interruption-safe at every point.** A sweep killed between any
///   two filesystem operations leaves a readable store: every remaining
///   entry is a complete, valid archive, and re-running the sweep
///   converges to the same final state. The manifest is advisory — it
///   describes the store for inspection tooling and invalidation
///   heuristics; readers never need it to read entries.
/// - **Corruption is quarantined, never destroyed.** Files that fail
///   container validation move (bytes untouched) into `quarantine/`
///   for postmortem; only valid entries are LRU-evicted, and eviction
///   is the single place store data is ever deleted (`vacuum`, an
///   explicit admin action, empties the quarantine).
///
/// Store directory layout the lifecycle ops understand:
///
///   <dir>/**/*.clgs          entries (any ArchiveKind, any depth)
///   <dir>/manifest.clgs      last published sweep manifest (advisory)
///   <dir>/locks/             advisory lock files (see store/Lock.h)
///   <dir>/quarantine/        corrupt files parked by sweeps
///   *.tmp.*                  in-flight atomic writes (never scanned)
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_STORE_LIFECYCLE_H
#define CLGEN_STORE_LIFECYCLE_H

#include "store/Archive.h"
#include "support/Result.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace clgen {
namespace store {

/// Name of the manifest file inside a store directory.
inline constexpr const char *ManifestFileName = "manifest.clgs";

/// What a sweep decided (or would decide, under --dry-run) about one
/// entry.
enum class EntryAction : uint8_t {
  Keep = 0,       // Valid and within budget: untouched.
  Evict = 1,      // Valid but over budget: LRU-deleted.
  Quarantine = 2, // Fails container validation: moved to quarantine/.
};

const char *entryActionName(EntryAction A);

/// One `.clgs` entry as seen by a store scan.
struct EntryInfo {
  /// Path relative to the store root, '/'-separated (stable sort key
  /// and the name used by the manifest, the CLI and quarantining).
  std::string RelPath;
  uint64_t Size = 0;    // File size in bytes.
  int64_t MtimeNs = 0;  // Last-write time, ns since epoch: the LRU key.
  uint32_t Kind = 0;    // Raw archive kind tag (0 when unreadable).
  uint32_t Version = 0; // Header version field (0 when unreadable).
  uint64_t Checksum = 0; // Trailer checksum (entry identity for audits).
  bool Valid = false;   // Container validation verdict.
  std::string Problem;  // Diagnostic when !Valid.
  EntryAction Action = EntryAction::Keep;
};

/// Scans \p Dir recursively for `.clgs` entries, validating each
/// container (magic/version/size/checksum via inspectArchive). Skips
/// `locks/`, `quarantine/`, the manifest and `.tmp.` files. Entries
/// come back sorted by RelPath. Fails only when \p Dir is not a
/// readable directory.
Result<std::vector<EntryInfo>> scanStore(const std::string &Dir);

/// Policy knob block for sweep().
struct SweepPolicy {
  /// Byte budget for valid entries; LRU-evicts (oldest mtime first,
  /// ties broken by RelPath) until the total fits. 0 = unlimited:
  /// validate and quarantine only, evict nothing.
  uint64_t MaxBytes = 0;
  /// Plan only: compute and report every action, touch nothing (no
  /// quarantine moves, no evictions, no manifest).
  bool DryRun = false;
  /// Crash-injection hook for the lifecycle tests: invoked with a
  /// stage label before every filesystem mutation (and once after the
  /// final one). Returning false makes the sweep stop dead at that
  /// point — simulating a crash — and return with Interrupted set.
  /// Stages, in execution order:
  ///   "scan"                  after scanning, before any mutation
  ///   "quarantine:<RelPath>"  before parking one corrupt file
  ///   "evict:<RelPath>"       before unlinking one evictee
  ///   "manifest-write"        before writing the manifest temp file
  ///   "manifest-publish"      before renaming it into place
  ///   "done"                  after the manifest rename
  std::function<bool(const std::string &Stage)> KillSwitch;
};

/// What a sweep did (or, for DryRun / Interrupted, would have done).
struct SweepReport {
  std::vector<EntryInfo> Entries; // Sorted by RelPath, actions filled.
  uint64_t ScannedBytes = 0;      // All scanned entries.
  size_t KeptCount = 0;
  uint64_t KeptBytes = 0; // == live store size after a completed sweep.
  size_t EvictedCount = 0;
  uint64_t EvictedBytes = 0;
  size_t QuarantinedCount = 0;
  uint64_t QuarantinedBytes = 0;
  /// Content identity of the surviving set: fnv1a64 over the kept
  /// entries' (RelPath, Size, Checksum) records. Recorded in the
  /// manifest; equal stores sweep to equal ids.
  uint64_t SweepId = 0;
  /// True when the KillSwitch aborted mid-sweep; the on-disk state is
  /// whatever the completed prefix of operations produced (readable by
  /// contract), and InterruptedAt names the stage that did not run.
  bool Interrupted = false;
  std::string InterruptedAt;
};

/// The size-bounded GC: scan -> validate -> quarantine corrupt ->
/// LRU-evict down to Policy.MaxBytes -> publish manifest (temp +
/// rename). See the file header for the interruption/quarantine/
/// byte-identity contracts. Fails only when \p Dir cannot be scanned;
/// individual file operations that fail (e.g. a racing reader's
/// platform pinning a file) are skipped, not fatal — the next sweep
/// retries them.
Result<SweepReport> sweep(const std::string &Dir, const SweepPolicy &Policy);

/// One kept-entry record inside a manifest.
struct ManifestEntry {
  std::string RelPath;
  uint64_t Size = 0;
  uint64_t Checksum = 0;
};

/// The published record of the last completed sweep. Advisory: used by
/// `clgen-store stat` and audits, never required to read the store.
struct Manifest {
  uint64_t SweepId = 0;
  uint64_t MaxBytes = 0; // Policy the sweep ran under (0 = unlimited).
  uint64_t KeptBytes = 0;
  uint64_t EvictedCount = 0;
  uint64_t EvictedBytes = 0;
  uint64_t QuarantinedCount = 0;
  std::vector<ManifestEntry> Entries; // Sorted by RelPath.
};

/// Reads `<Dir>/manifest.clgs`. A missing, truncated or corrupt
/// manifest is an error result (callers treat it as "no manifest" —
/// the store itself is unaffected).
Result<Manifest> loadManifest(const std::string &Dir);

/// What vacuum() removed (and deliberately left alone).
struct VacuumReport {
  size_t QuarantineRemoved = 0;
  uint64_t QuarantineBytes = 0;
  size_t TempRemoved = 0;  // Stale `.tmp.` files from crashed writers.
  size_t LocksRemoved = 0; // Free lock files pruned.
  /// Lock files skipped because a live process holds them. Non-zero
  /// means the store had active users during the vacuum — harmless,
  /// but worth knowing; a later vacuum will prune them once released.
  size_t LocksSkipped = 0;
};

/// Explicit admin cleanup: empties `quarantine/`, removes stale
/// `.tmp.` files and prunes ABANDONED lock files. The lock pass is
/// live-safe: each lock file is probed with a non-blocking flock
/// attempt (store/Lock.h) and only unlinked while vacuum itself holds
/// it — a lock another process holds is skipped (LocksSkipped), never
/// deleted, so a racing acquirer can never end up locking a fresh
/// inode alongside a live holder. Entries and the manifest are never
/// touched.
Result<VacuumReport> vacuum(const std::string &Dir);

//===----------------------------------------------------------------------===//
// CLI rendering (byte-stable; golden-tested)
//===----------------------------------------------------------------------===//
//
// The `clgen-store` tool is a thin main over these formatters so the
// golden tests cover the exact bytes users see. None of them print
// absolute paths or timestamps: output over a seeded store is
// byte-stable across runs and machines.

/// `ls`: one line per entry (kind, payload size, checksum, name).
std::string formatLs(const std::vector<EntryInfo> &Entries);

/// `stat`: aggregate counts/bytes by kind, corruption tally, manifest
/// summary (pass nullptr when the store has no readable manifest).
std::string formatStat(const std::vector<EntryInfo> &Entries,
                       size_t QuarantineCount, const Manifest *M);

/// `verify`: per-entry verdict lines plus a summary.
std::string formatVerify(const std::vector<EntryInfo> &Entries);

/// `gc` / `gc --dry-run`: per-entry action lines plus a summary.
std::string formatSweepReport(const SweepReport &Report, bool DryRun);

/// Number of files currently parked in `<Dir>/quarantine/`.
size_t quarantineCount(const std::string &Dir);

} // namespace store
} // namespace clgen

#endif // CLGEN_STORE_LIFECYCLE_H

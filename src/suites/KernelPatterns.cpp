//===- suites/KernelPatterns.cpp - GPGPU kernel pattern library ---------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "suites/KernelPatterns.h"

#include "support/StringUtils.h"

using namespace clgen;
using namespace clgen::suites;

namespace {

/// The scalar/vector element type used by a style.
std::string elemType(const PatternStyle &S) {
  std::string Base = S.FloatData ? "float" : "int";
  if (S.VectorWidth > 1)
    Base += std::to_string(S.VectorWidth);
  return Base;
}

/// Repeated arithmetic to tune compute intensity; operates on scalar or
/// vector variable \p Var of float type.
std::string computeChurn(const std::string &Var, int Intensity,
                         bool FloatData) {
  std::string Out;
  for (int I = 0; I < Intensity; ++I) {
    if (FloatData) {
      Out += formatString("  %s = %s * 0.98f + 0.02f;\n", Var.c_str(),
                          Var.c_str());
      Out += formatString("  %s = %s + %s * %s * 0.5f;\n", Var.c_str(),
                          Var.c_str(), Var.c_str(), Var.c_str());
    } else {
      Out += formatString("  %s = (%s * 3 + 7) %% 1024;\n", Var.c_str(),
                          Var.c_str());
    }
  }
  return Out;
}

/// Optional data-dependent branch block.
std::string branchChurn(const std::string &Var, bool Enabled,
                        bool FloatData) {
  if (!Enabled)
    return "";
  if (FloatData)
    return formatString("  if (%s > 0.5f) {\n    %s = %s - 0.25f;\n  } else "
                        "{\n    %s = %s + 0.25f;\n  }\n",
                        Var.c_str(), Var.c_str(), Var.c_str(), Var.c_str(),
                        Var.c_str());
  return formatString("  if ((%s & 1) == 0) {\n    %s = %s * 2;\n  } else "
                      "{\n    %s = %s - 1;\n  }\n",
                      Var.c_str(), Var.c_str(), Var.c_str(), Var.c_str(),
                      Var.c_str());
}

} // namespace

const char *suites::patternName(PatternKind Kind) {
  switch (Kind) {
  case PatternKind::VectorOp: return "vector-op";
  case PatternKind::Saxpy: return "saxpy";
  case PatternKind::Stencil1D: return "stencil-1d";
  case PatternKind::ReductionTree: return "reduction-tree";
  case PatternKind::SerialReduce: return "serial-reduce";
  case PatternKind::MatMulNaive: return "matmul-naive";
  case PatternKind::MatMulTiled: return "matmul-tiled";
  case PatternKind::Transpose: return "transpose";
  case PatternKind::Gather: return "gather";
  case PatternKind::Spmv: return "spmv";
  case PatternKind::NBody: return "nbody";
  case PatternKind::BlackScholes: return "black-scholes";
  case PatternKind::MonteCarlo: return "monte-carlo";
  case PatternKind::Histogram: return "histogram";
  case PatternKind::ScanBlock: return "scan-block";
  case PatternKind::BinarySearch: return "binary-search";
  case PatternKind::GraphWalk: return "graph-walk";
  case PatternKind::DynProgRow: return "dynprog-row";
  case PatternKind::BitonicStep: return "bitonic-step";
  case PatternKind::Fwt: return "fwt";
  case PatternKind::Convolution: return "convolution";
  case PatternKind::KMeansAssign: return "kmeans-assign";
  }
  return "?";
}

std::vector<PatternKind> suites::allPatternKinds() {
  return {PatternKind::VectorOp,      PatternKind::Saxpy,
          PatternKind::Stencil1D,     PatternKind::ReductionTree,
          PatternKind::SerialReduce,  PatternKind::MatMulNaive,
          PatternKind::MatMulTiled,   PatternKind::Transpose,
          PatternKind::Gather,        PatternKind::Spmv,
          PatternKind::NBody,         PatternKind::BlackScholes,
          PatternKind::MonteCarlo,    PatternKind::Histogram,
          PatternKind::ScanBlock,     PatternKind::BinarySearch,
          PatternKind::GraphWalk,     PatternKind::DynProgRow,
          PatternKind::BitonicStep,   PatternKind::Fwt,
          PatternKind::Convolution,   PatternKind::KMeansAssign};
}

std::string suites::renderPattern(PatternKind Kind,
                                  const PatternStyle &Style,
                                  const std::string &KernelName) {
  const std::string T = elemType(Style);
  const std::string K = KernelName;
  const int Iters = Style.InnerIterations;
  std::string Src;

  switch (Kind) {
  case PatternKind::VectorOp: {
    Src = formatString(
        "__kernel void %s(__global %s* a, __global %s* b, __global %s* c, "
        "const int n) {\n"
        "  int i = get_global_id(0);\n"
        "  if (i >= n) {\n    return;\n  }\n"
        "  %s x = a[i] + b[i] * 2.0f;\n",
        K.c_str(), T.c_str(), T.c_str(), T.c_str(), T.c_str());
    Src += computeChurn("x", Style.ComputeIntensity, Style.FloatData);
    Src += branchChurn("x", Style.ExtraBranching, true);
    Src += "  c[i] = x;\n}\n";
    return Src;
  }

  case PatternKind::Saxpy: {
    Src = formatString(
        "__kernel void %s(__global %s* x, __global %s* y, float alpha, "
        "const int n) {\n"
        "  int i = get_global_id(0);\n"
        "  if (i < n) {\n"
        "    %s v = alpha * x[i] + y[i];\n",
        K.c_str(), T.c_str(), T.c_str(), T.c_str());
    Src += computeChurn("    v", Style.ComputeIntensity, Style.FloatData);
    Src += "    y[i] = v;\n  }\n}\n";
    return Src;
  }

  case PatternKind::Stencil1D: {
    Src = formatString(
        "__kernel void %s(__global float* in, __global float* out, "
        "const int n) {\n"
        "  int i = get_global_id(0);\n"
        "  if (i >= n) {\n    return;\n  }\n"
        "  int l = i > 0 ? i - 1 : 0;\n"
        "  int r = i < n - 1 ? i + 1 : n - 1;\n"
        "  float v = 0.25f * in[l] + 0.5f * in[i] + 0.25f * in[r];\n",
        K.c_str());
    Src += computeChurn("v", Style.ComputeIntensity, true);
    Src += branchChurn("v", Style.ExtraBranching, true);
    Src += "  out[i] = v;\n}\n";
    return Src;
  }

  case PatternKind::ReductionTree: {
    Src = formatString(
        "__kernel void %s(__global float* in, __global float* out, "
        "const int n) {\n"
        "  __local float tile[64];\n"
        "  int gid = get_global_id(0);\n"
        "  int lid = get_local_id(0) & 63;\n"
        "  tile[lid] = gid < n ? in[gid] : 0.0f;\n"
        "  barrier(CLK_LOCAL_MEM_FENCE);\n"
        "  for (int s = 32; s > 0; s = s >> 1) {\n"
        "    if (lid < s) {\n"
        "      tile[lid] += tile[lid + s];\n"
        "    }\n"
        "    barrier(CLK_LOCAL_MEM_FENCE);\n"
        "  }\n"
        "  if (lid == 0) {\n"
        "    out[gid %% n] = tile[0];\n"
        "  }\n"
        "}\n",
        K.c_str());
    return Src;
  }

  case PatternKind::SerialReduce: {
    Src = formatString(
        "__kernel void %s(__global float* in, __global float* out, "
        "const int n) {\n"
        "  int i = get_global_id(0);\n"
        "  if (i >= n) {\n    return;\n  }\n"
        "  float s = 0.0f;\n"
        "  for (int j = 0; j < %d; j++) {\n"
        "    s += in[(i + j * 64) %% n];\n",
        K.c_str(), Iters);
    Src += computeChurn("    s", Style.ComputeIntensity, true);
    Src += "  }\n  out[i] = s;\n}\n";
    return Src;
  }

  case PatternKind::MatMulNaive: {
    Src = formatString(
        "__kernel void %s(__global float* a, __global float* b, "
        "__global float* c, const int n) {\n"
        "  int i = get_global_id(0);\n"
        "  if (i >= n) {\n    return;\n  }\n"
        "  int row = i / 64;\n"
        "  int col = i %% 64;\n"
        "  float acc = 0.0f;\n"
        "  for (int k = 0; k < 64; k++) {\n"
        "    acc += a[(row * 64 + k) %% n] * b[(k * 64 + col) %% n];\n"
        "  }\n"
        "  c[i] = acc;\n"
        "}\n",
        K.c_str());
    return Src;
  }

  case PatternKind::MatMulTiled: {
    Src = formatString(
        "__kernel void %s(__global float* a, __global float* b, "
        "__global float* c, const int n) {\n"
        "  __local float ta[64];\n"
        "  __local float tb[64];\n"
        "  int i = get_global_id(0);\n"
        "  int lid = get_local_id(0) & 63;\n"
        "  int row = i / 64;\n"
        "  int col = i %% 64;\n"
        "  float acc = 0.0f;\n"
        "  for (int t = 0; t < 8; t++) {\n"
        "    ta[lid] = a[(row * 64 + t * 8 + lid %% 8) %% n];\n"
        "    tb[lid] = b[((t * 8 + lid / 8) * 64 + col) %% n];\n"
        "    barrier(CLK_LOCAL_MEM_FENCE);\n"
        "    for (int k = 0; k < 8; k++) {\n"
        "      acc += ta[(lid %% 8) * 8 %% 64 + k %% 8] * tb[k * 8 %% 64];\n"
        "    }\n"
        "    barrier(CLK_LOCAL_MEM_FENCE);\n"
        "  }\n"
        "  if (i < n) {\n"
        "    c[i] = acc;\n"
        "  }\n"
        "}\n",
        K.c_str());
    return Src;
  }

  case PatternKind::Transpose: {
    Src = formatString(
        "__kernel void %s(__global float* in, __global float* out, "
        "const int n) {\n"
        "  int i = get_global_id(0);\n"
        "  if (i >= n) {\n    return;\n  }\n"
        "  int row = i / 64;\n"
        "  int col = i %% 64;\n"
        "  out[(col * 64 + row) %% n] = in[i];\n"
        "}\n",
        K.c_str());
    return Src;
  }

  case PatternKind::Gather: {
    Src = formatString(
        "__kernel void %s(__global float* data, __global int* idx, "
        "__global float* out, const int n) {\n"
        "  int i = get_global_id(0);\n"
        "  if (i >= n) {\n    return;\n  }\n"
        "  float v = data[idx[i] %% n];\n",
        K.c_str());
    Src += computeChurn("v", Style.ComputeIntensity, true);
    Src += branchChurn("v", Style.ExtraBranching, true);
    Src += "  out[i] = v;\n}\n";
    return Src;
  }

  case PatternKind::Spmv: {
    Src = formatString(
        "__kernel void %s(__global float* vals, __global int* cols, "
        "__global float* x, __global float* y, const int n) {\n"
        "  int row = get_global_id(0);\n"
        "  if (row >= n) {\n    return;\n  }\n"
        "  float sum = 0.0f;\n"
        "  for (int j = 0; j < 8; j++) {\n"
        "    int e = (row * 8 + j) %% n;\n"
        "    sum += vals[e] * x[cols[e] %% n];\n"
        "  }\n"
        "  y[row] = sum;\n"
        "}\n",
        K.c_str());
    return Src;
  }

  case PatternKind::NBody: {
    Src = formatString(
        "__kernel void %s(__global float* px, __global float* py, "
        "__global float* fx, const int n) {\n"
        "  int i = get_global_id(0);\n"
        "  if (i >= n) {\n    return;\n  }\n"
        "  float xi = px[i];\n"
        "  float yi = py[i];\n"
        "  float force = 0.0f;\n"
        "  for (int j = 0; j < %d; j++) {\n"
        "    float dx = px[j %% n] - xi;\n"
        "    float dy = py[j %% n] - yi;\n"
        "    float d2 = dx * dx + dy * dy + 0.0001f;\n"
        "    float inv = rsqrt(d2);\n"
        "    force += inv * inv * inv * dx;\n"
        "  }\n"
        "  fx[i] = force;\n"
        "}\n",
        K.c_str(), Iters);
    return Src;
  }

  case PatternKind::BlackScholes: {
    Src = formatString(
        "__kernel void %s(__global float* price, __global float* strike, "
        "__global float* call, __global float* put, const int n) {\n"
        "  int i = get_global_id(0);\n"
        "  if (i >= n) {\n    return;\n  }\n"
        "  float s = fabs(price[i]) + 0.1f;\n"
        "  float k = fabs(strike[i]) + 0.1f;\n"
        "  float d1 = (log(s / k) + 0.055f) / 0.3f;\n"
        "  float d2 = d1 - 0.3f;\n"
        "  float nd1 = 0.5f * (1.0f + tanh(0.7978845608f * (d1 + 0.044715f "
        "* d1 * d1 * d1)));\n"
        "  float nd2 = 0.5f * (1.0f + tanh(0.7978845608f * (d2 + 0.044715f "
        "* d2 * d2 * d2)));\n"
        "  float c = s * nd1 - k * 0.951f * nd2;\n"
        "  call[i] = c;\n"
        "  put[i] = c - s + k * 0.951f;\n"
        "}\n",
        K.c_str());
    return Src;
  }

  case PatternKind::MonteCarlo: {
    Src = formatString(
        "__kernel void %s(__global int* seeds, __global float* out, "
        "const int n) {\n"
        "  int i = get_global_id(0);\n"
        "  if (i >= n) {\n    return;\n  }\n"
        "  int state = seeds[i] + i + 1;\n"
        "  float acc = 0.0f;\n"
        "  for (int j = 0; j < %d; j++) {\n"
        "    state = (state * 1103515245 + 12345) & 2147483647;\n"
        "    float u = (float)(state %% 65536) / 65536.0f;\n"
        "    acc += exp(-u * u);\n"
        "  }\n"
        "  out[i] = acc / %d.0f;\n"
        "}\n",
        K.c_str(), Iters, Iters);
    return Src;
  }

  case PatternKind::Histogram: {
    Src = formatString(
        "__kernel void %s(__global int* data, __global int* hist, "
        "const int n) {\n"
        "  int i = get_global_id(0);\n"
        "  if (i >= n) {\n    return;\n  }\n"
        "  int bin = data[i] %% n;\n"
        "  if (bin < 0) {\n    bin = -bin;\n  }\n"
        "  atomic_add(&hist[bin], 1);\n"
        "}\n",
        K.c_str());
    return Src;
  }

  case PatternKind::ScanBlock: {
    Src = formatString(
        "__kernel void %s(__global float* in, __global float* out, "
        "const int n) {\n"
        "  __local float tile[64];\n"
        "  int gid = get_global_id(0);\n"
        "  int lid = get_local_id(0) & 63;\n"
        "  tile[lid] = gid < n ? in[gid] : 0.0f;\n"
        "  barrier(CLK_LOCAL_MEM_FENCE);\n"
        "  for (int off = 1; off < 64; off = off * 2) {\n"
        "    float v = 0.0f;\n"
        "    if (lid >= off) {\n"
        "      v = tile[lid - off];\n"
        "    }\n"
        "    barrier(CLK_LOCAL_MEM_FENCE);\n"
        "    tile[lid] += v;\n"
        "    barrier(CLK_LOCAL_MEM_FENCE);\n"
        "  }\n"
        "  if (gid < n) {\n"
        "    out[gid] = tile[lid];\n"
        "  }\n"
        "}\n",
        K.c_str());
    return Src;
  }

  case PatternKind::BinarySearch: {
    Src = formatString(
        "__kernel void %s(__global float* sorted, __global float* keys, "
        "__global int* pos, const int n) {\n"
        "  int i = get_global_id(0);\n"
        "  if (i >= n) {\n    return;\n  }\n"
        "  float key = keys[i];\n"
        "  int lo = 0;\n"
        "  int hi = n - 1;\n"
        "  for (int step = 0; step < 16; step++) {\n"
        "    int mid = (lo + hi) / 2;\n"
        "    if (sorted[mid] < key) {\n"
        "      lo = mid + 1;\n"
        "    } else {\n"
        "      hi = mid;\n"
        "    }\n"
        "    if (lo >= hi) {\n"
        "      break;\n"
        "    }\n"
        "  }\n"
        "  pos[i] = lo;\n"
        "}\n",
        K.c_str());
    return Src;
  }

  case PatternKind::GraphWalk: {
    Src = formatString(
        "__kernel void %s(__global int* adj, __global int* dist, "
        "__global int* frontier, const int n) {\n"
        "  int i = get_global_id(0);\n"
        "  if (i >= n) {\n    return;\n  }\n"
        "  int v = i;\n"
        "  int hops = 0;\n"
        "  for (int j = 0; j < 12; j++) {\n"
        "    int next = adj[v %% n] %% n;\n"
        "    if (next < 0) {\n      next = -next;\n    }\n"
        "    if (frontier[next %% n] > dist[v %% n]) {\n"
        "      hops = hops + 1;\n"
        "      v = next;\n"
        "    } else {\n"
        "      v = (v + 1) %% n;\n"
        "    }\n"
        "  }\n"
        "  dist[i] = hops;\n"
        "}\n",
        K.c_str());
    return Src;
  }

  case PatternKind::DynProgRow: {
    Src = formatString(
        "__kernel void %s(__global float* prev, __global float* cost, "
        "__global float* next, const int n) {\n"
        "  int i = get_global_id(0);\n"
        "  if (i >= n) {\n    return;\n  }\n"
        "  int l = i > 0 ? i - 1 : 0;\n"
        "  int r = i < n - 1 ? i + 1 : n - 1;\n"
        "  float best = prev[i];\n"
        "  if (prev[l] < best) {\n    best = prev[l];\n  }\n"
        "  if (prev[r] < best) {\n    best = prev[r];\n  }\n"
        "  next[i] = best + cost[i];\n"
        "}\n",
        K.c_str());
    return Src;
  }

  case PatternKind::BitonicStep: {
    Src = formatString(
        "__kernel void %s(__global float* data, const int n) {\n"
        "  int i = get_global_id(0);\n"
        "  int partner = i ^ 64;\n"
        "  if (partner < n && i < partner) {\n"
        "    float a = data[i];\n"
        "    float b = data[partner];\n"
        "    if (a > b) {\n"
        "      data[i] = b;\n"
        "      data[partner] = a;\n"
        "    }\n"
        "  }\n"
        "}\n",
        K.c_str());
    return Src;
  }

  case PatternKind::Fwt: {
    // The butterfly aliased with Listing 2's CLgen kernel in the Grewe
    // feature space.
    Src = formatString(
        "__kernel void %s(__global float* t, const int n) {\n"
        "  int i = get_global_id(0);\n"
        "  int h = n / 2;\n"
        "  if (i < h) {\n"
        "    float x = t[i];\n"
        "    float y = t[i + h];\n"
        "    t[i] = x + y;\n"
        "    t[i + h] = x - y;\n"
        "  }\n"
        "}\n",
        K.c_str());
    return Src;
  }

  case PatternKind::Convolution: {
    Src = formatString(
        "__kernel void %s(__global float* in, __global float* out, "
        "const int n) {\n"
        "  int i = get_global_id(0);\n"
        "  if (i >= n) {\n    return;\n  }\n"
        "  float acc = 0.0f;\n"
        "  for (int j = -2; j <= 2; j++) {\n"
        "    int p = i + j;\n"
        "    if (p < 0) {\n      p = 0;\n    }\n"
        "    if (p > n - 1) {\n      p = n - 1;\n    }\n"
        "    float w = 1.0f / (1.0f + (float)(j * j));\n"
        "    acc += in[p] * w;\n"
        "  }\n"
        "  out[i] = acc;\n"
        "}\n",
        K.c_str());
    return Src;
  }

  case PatternKind::KMeansAssign: {
    Src = formatString(
        "__kernel void %s(__global float* points, __global float* "
        "centroids, __global int* labels, const int n) {\n"
        "  int i = get_global_id(0);\n"
        "  if (i >= n) {\n    return;\n  }\n"
        "  float p = points[i];\n"
        "  int best = 0;\n"
        "  float bestDist = 1e30f;\n"
        "  for (int c = 0; c < 8; c++) {\n"
        "    float d = p - centroids[c %% n];\n"
        "    float dist = d * d;\n"
        "    if (dist < bestDist) {\n"
        "      bestDist = dist;\n"
        "      best = c;\n"
        "    }\n"
        "  }\n"
        "  labels[i] = best;\n"
        "}\n",
        K.c_str());
    return Src;
  }
  }
  return Src;
}

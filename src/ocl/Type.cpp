//===- ocl/Type.cpp - OpenCL C type representation --------------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ocl/Type.h"

#include <unordered_map>

using namespace clgen;
using namespace clgen::ocl;

size_t QualType::elementSizeBytes() const {
  size_t Base = 0;
  switch (S) {
  case Scalar::Void: Base = 0; break;
  case Scalar::Bool:
  case Scalar::Char:
  case Scalar::UChar: Base = 1; break;
  case Scalar::Short:
  case Scalar::UShort:
  case Scalar::Half: Base = 2; break;
  case Scalar::Int:
  case Scalar::UInt:
  case Scalar::Float: Base = 4; break;
  case Scalar::Long:
  case Scalar::ULong:
  case Scalar::Double: Base = 8; break;
  }
  return Base * VecWidth;
}

std::optional<QualType> ocl::builtinTypeByName(std::string_view Name) {
  static const std::unordered_map<std::string_view, Scalar> ScalarNames = {
      {"void", Scalar::Void},     {"bool", Scalar::Bool},
      {"char", Scalar::Char},     {"uchar", Scalar::UChar},
      {"short", Scalar::Short},   {"ushort", Scalar::UShort},
      {"int", Scalar::Int},       {"uint", Scalar::UInt},
      {"long", Scalar::Long},     {"ulong", Scalar::ULong},
      {"float", Scalar::Float},   {"double", Scalar::Double},
      {"half", Scalar::Half},     {"size_t", Scalar::ULong},
      {"ptrdiff_t", Scalar::Long},
  };

  // Exact scalar name?
  auto It = ScalarNames.find(Name);
  if (It != ScalarNames.end())
    return QualType(It->second);

  // Vector form: <scalar><width> where width in {2,3,4,8,16}.
  size_t Split = Name.size();
  while (Split > 0 &&
         Name[Split - 1] >= '0' && Name[Split - 1] <= '9')
    --Split;
  if (Split == Name.size() || Split == 0)
    return std::nullopt;
  std::string_view Base = Name.substr(0, Split);
  std::string_view WidthStr = Name.substr(Split);
  auto BaseIt = ScalarNames.find(Base);
  if (BaseIt == ScalarNames.end())
    return std::nullopt;
  int Width = 0;
  for (char C : WidthStr)
    Width = Width * 10 + (C - '0');
  if (Width != 2 && Width != 3 && Width != 4 && Width != 8 && Width != 16)
    return std::nullopt;
  if (BaseIt->second == Scalar::Void || BaseIt->second == Scalar::Bool)
    return std::nullopt;
  return QualType(BaseIt->second, static_cast<uint8_t>(Width));
}

std::string ocl::scalarTypeName(Scalar S, uint8_t VecWidth) {
  const char *Base = "void";
  switch (S) {
  case Scalar::Void: Base = "void"; break;
  case Scalar::Bool: Base = "bool"; break;
  case Scalar::Char: Base = "char"; break;
  case Scalar::UChar: Base = "uchar"; break;
  case Scalar::Short: Base = "short"; break;
  case Scalar::UShort: Base = "ushort"; break;
  case Scalar::Int: Base = "int"; break;
  case Scalar::UInt: Base = "uint"; break;
  case Scalar::Long: Base = "long"; break;
  case Scalar::ULong: Base = "ulong"; break;
  case Scalar::Float: Base = "float"; break;
  case Scalar::Double: Base = "double"; break;
  case Scalar::Half: Base = "half"; break;
  }
  std::string Name = Base;
  if (VecWidth > 1)
    Name += std::to_string(VecWidth);
  return Name;
}

std::string ocl::typeName(const QualType &T) {
  std::string Name;
  switch (T.AS) {
  case AddrSpace::Global: Name += "__global "; break;
  case AddrSpace::Local: Name += "__local "; break;
  case AddrSpace::Constant: Name += "__constant "; break;
  case AddrSpace::Private: break;
  }
  if (T.Const)
    Name += "const ";
  Name += scalarTypeName(T.S, T.VecWidth);
  if (T.Pointer)
    Name += "*";
  return Name;
}

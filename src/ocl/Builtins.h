//===- ocl/Builtins.h - OpenCL builtin function registry ---------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registry of the OpenCL C builtin functions understood by the subset:
/// work-item queries, math, geometric, relational, synchronisation and
/// atomic functions, plus the convert_T / vloadN / vstoreN families which
/// are matched by name pattern. Sema uses the registry for name
/// resolution and result typing; the VM uses the BuiltinOp discriminator
/// for evaluation.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_OCL_BUILTINS_H
#define CLGEN_OCL_BUILTINS_H

#include "ocl/Type.h"

#include <optional>
#include <string_view>

namespace clgen {
namespace ocl {

enum class BuiltinOp {
  // Work-item functions.
  GetGlobalId, GetLocalId, GetGroupId, GetGlobalSize, GetLocalSize,
  GetNumGroups, GetWorkDim,
  // Synchronisation.
  Barrier, MemFence,
  // Unary math (gentype -> gentype).
  Sin, Cos, Tan, Asin, Acos, Atan, Sinh, Cosh, Tanh,
  Exp, Exp2, Log, Log2, Log10, Sqrt, Rsqrt, Cbrt,
  Fabs, Floor, Ceil, Round, Trunc, Sign,
  // Binary math (gentype, gentype -> gentype).
  Pow, Fmod, Atan2, Fmin, Fmax, Hypot, Step, Fdim,
  // Ternary math.
  Clamp, Mix, Fma, Mad, Smoothstep,
  // Integer math.
  Abs, Min, Max, Mul24, Mad24, Rotate,
  // Geometric (fixed small vectors).
  Dot, Length, Distance, Normalize, Cross,
  // Relational.
  Select, IsNan, IsInf, Any, All,
  // Conversions (name carries the target type).
  Convert,
  // Vector load/store (name carries the width).
  VLoad, VStore,
  // Atomics on global/local integer pointers.
  AtomicAdd, AtomicSub, AtomicInc, AtomicDec, AtomicMin, AtomicMax,
  AtomicXchg,
};

/// Resolved information about a builtin call site.
struct BuiltinInfo {
  BuiltinOp Op;
  /// Required argument count range.
  int MinArity;
  int MaxArity;
  /// For Convert: the target type encoded in the name.
  QualType ConvertTarget;
  /// For VLoad/VStore: the vector width encoded in the name.
  int VectorWidth = 0;
};

/// Looks up \p Name in the builtin registry, including the convert_T,
/// vloadN and vstoreN name families. Returns nullopt for unknown names.
std::optional<BuiltinInfo> lookupBuiltin(std::string_view Name);

/// Returns true when \p Name is a builtin function name. Used by the code
/// rewriter so that builtins survive identifier renaming.
bool isBuiltinFunction(std::string_view Name);

/// Named builtin constants (CLK_LOCAL_MEM_FENCE, M_PI_F, FLT_MAX, ...).
/// Returns the constant's value and type when \p Name is recognised.
struct BuiltinConstant {
  QualType Ty;
  double Value;
};
std::optional<BuiltinConstant> lookupBuiltinConstant(std::string_view Name);

} // namespace ocl
} // namespace clgen

#endif // CLGEN_OCL_BUILTINS_H

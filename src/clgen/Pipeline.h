//===- clgen/Pipeline.h - End-to-end CLgen pipeline --------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end CLgen pipeline of Figure 4: content files -> rejection
/// filter -> code rewriter -> language corpus -> language model ->
/// synthesizer -> synthesized benchmarks. This is the public facade most
/// examples and experiments use.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_CLGEN_PIPELINE_H
#define CLGEN_CLGEN_PIPELINE_H

#include "clgen/Synthesizer.h"
#include "corpus/Corpus.h"
#include "model/LstmModel.h"
#include "model/NGramModel.h"

#include <memory>

namespace clgen {
namespace core {

enum class ModelBackend {
  /// Interpolated character n-gram: trains in seconds; used by the
  /// large-scale experiments (see DESIGN.md substitution notes).
  NGram,
  /// The paper's LSTM architecture, at laptop-scale defaults.
  Lstm,
};

struct PipelineOptions {
  corpus::CorpusOptions Corpus;
  ModelBackend Backend = ModelBackend::NGram;
  model::NGramOptions NGram;
  model::LstmOptions Lstm;
};

/// A trained CLgen instance: the corpus it learned from plus the model.
class ClgenPipeline {
public:
  /// Builds the corpus from \p Files and trains the model.
  static ClgenPipeline train(const std::vector<corpus::ContentFile> &Files,
                             const PipelineOptions &Opts = PipelineOptions());

  /// Synthesizes benchmarks with the trained model. Set
  /// SynthesisOptions::Workers to fan candidate sampling out across a
  /// thread pool; results are bit-identical for every worker count.
  SynthesisResult synthesize(const SynthesisOptions &Opts);

  const corpus::Corpus &corpus() const { return TrainingCorpus; }
  model::LanguageModel &languageModel() { return *Model; }

private:
  corpus::Corpus TrainingCorpus;
  std::unique_ptr<model::LanguageModel> Model;
};

} // namespace core
} // namespace clgen

#endif // CLGEN_CLGEN_PIPELINE_H

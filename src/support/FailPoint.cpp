//===- support/FailPoint.cpp - Deterministic fault injection -----*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FailPoint.h"

#include "support/Rng.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>

namespace clgen {
namespace support {

namespace {

/// FNV-1a over the site name, used as the site's stream id in the
/// Rng::split chain. Kept local: support/ must not depend on store/.
uint64_t siteStreamId(const char *Site) {
  uint64_t H = 1469598103934665603ull;
  for (const char *P = Site; *P; ++P) {
    H ^= static_cast<uint8_t>(*P);
    H *= 1099511628211ull;
  }
  return H;
}

struct SiteState {
  uint64_t Hits = 0;
  uint64_t Fires = 0;
  /// Evaluation count per key: the "n" in the (site, key, n) decision.
  std::map<uint64_t, uint64_t> KeyHits;
};

struct Registry {
  std::mutex Mutex;
  bool Armed = false;
  FailPlan Plan;
  std::map<std::string, SiteState> Sites;
};

Registry &registry() {
  static Registry R;
  return R;
}

} // namespace

bool FailPoints::sitesCompiledIn() {
#if defined(CLGS_FAILPOINTS)
  return true;
#else
  return false;
#endif
}

void FailPoints::arm(const FailPlan &Plan) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Plan = Plan;
  R.Armed = true;
  R.Sites.clear();
}

void FailPoints::disarm() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Armed = false;
  R.Sites.clear();
}

bool FailPoints::armed() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  return R.Armed;
}

bool FailPoints::trip(const char *Site, uint64_t Key) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  if (!R.Armed)
    return false;
  if (!R.Plan.Sites.empty() &&
      std::find(R.Plan.Sites.begin(), R.Plan.Sites.end(), Site) ==
          R.Plan.Sites.end())
    return false;
  SiteState &S = R.Sites[Site];
  ++S.Hits;
  uint64_t N = S.KeyHits[Key]++;
  // Pure function of (seed, site, key, n): scheduling-independent, and a
  // retry (n+1) re-rolls rather than re-failing forever.
  Rng Decision =
      Rng(R.Plan.Seed).split(siteStreamId(Site)).split(Key).split(N);
  bool Fire =
      Decision.uniform() < R.Plan.Probability && S.Fires < R.Plan.MaxFiresPerSite;
  if (Fire)
    ++S.Fires;
  return Fire;
}

bool FailPoints::stall(const char *Site, uint64_t Key) {
  if (!trip(Site, Key))
    return false;
  uint32_t Ms = 0;
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mutex);
    Ms = R.Plan.StallMs;
  }
  if (Ms)
    std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
  return true;
}

std::vector<FailPoints::SiteStats> FailPoints::stats() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::vector<SiteStats> Out;
  for (const auto &Entry : R.Sites)
    Out.push_back({Entry.first, Entry.second.Hits, Entry.second.Fires});
  return Out;
}

uint64_t FailPoints::totalFires() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  uint64_t Total = 0;
  for (const auto &Entry : R.Sites)
    Total += Entry.second.Fires;
  return Total;
}

} // namespace support
} // namespace clgen

//===- predict/Experiment.cpp - End-to-end predictive experiment --------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "predict/Experiment.h"

#include "features/Features.h"
#include "githubsim/GithubSim.h"
#include "predict/Report.h"
#include "store/Archive.h"
#include "store/FailureLedger.h"
#include "store/Lock.h"
#include "store/ResultCache.h"
#include "suites/Catalogue.h"
#include "support/Metrics.h"
#include "support/StringUtils.h"
#include "support/Trace.h"

#include <filesystem>
#include <map>
#include <mutex>
#include <optional>

using namespace clgen;
using namespace clgen::predict;

namespace {

/// Implausibly large observation counts are rejected before any
/// allocation — a corrupt length prefix must degrade to a cold miss,
/// not an OOM.
constexpr uint64_t MaxObservations = 1ull << 20;

std::vector<corpus::ContentFile> minedFiles(const ExperimentOptions &Opts) {
  githubsim::GithubSimOptions G;
  G.FileCount = Opts.CorpusFiles;
  return githubsim::mineGithub(G);
}

core::PipelineOptions pipelineOptions(const ExperimentOptions &Opts) {
  core::PipelineOptions P;
  P.NGram.Order = Opts.NGramOrder;
  return P;
}

std::vector<std::string> resolvedSuites(const ExperimentOptions &Opts) {
  return Opts.Suites.empty() ? suites::suiteNames() : Opts.Suites;
}

/// The training fingerprint is a pure function of (CorpusFiles,
/// NGramOrder) — mineGithub is deterministic — but computing it mines
/// and digests the whole snapshot. Memoized so hot probe paths
/// (loadExperiment in a warm loop, corruption sweeps) pay the mining
/// cost once per configuration instead of per call.
uint64_t trainingFingerprint(const ExperimentOptions &Opts) {
  static std::mutex M;
  static std::map<std::pair<size_t, int>, uint64_t> Cache;
  std::pair<size_t, int> K{Opts.CorpusFiles, Opts.NGramOrder};
  {
    std::lock_guard<std::mutex> G(M);
    auto It = Cache.find(K);
    if (It != Cache.end())
      return It->second;
  }
  uint64_t F =
      core::ClgenPipeline::fingerprint(minedFiles(Opts), pipelineOptions(Opts));
  std::lock_guard<std::mutex> G(M);
  Cache.emplace(K, F);
  return F;
}

void writeObservation(store::ArchiveWriter &W, const Observation &O) {
  W.writeString(O.Suite);
  W.writeString(O.Benchmark);
  W.writeString(O.Kernel);
  W.writeString(O.Dataset);
  W.writeF64(O.Raw.Static.Comp);
  W.writeF64(O.Raw.Static.Mem);
  W.writeF64(O.Raw.Static.LocalMem);
  W.writeF64(O.Raw.Static.Coalesced);
  W.writeF64(O.Raw.Static.Branches);
  W.writeF64(O.Raw.TransferBytes);
  W.writeF64(O.Raw.WgSize);
  W.writeF64(O.CpuTime);
  W.writeF64(O.GpuTime);
}

Observation readObservation(store::ArchiveReader &R) {
  Observation O;
  O.Suite = R.readString();
  O.Benchmark = R.readString();
  O.Kernel = R.readString();
  O.Dataset = R.readString();
  O.Raw.Static.Comp = R.readF64();
  O.Raw.Static.Mem = R.readF64();
  O.Raw.Static.LocalMem = R.readF64();
  O.Raw.Static.Coalesced = R.readF64();
  O.Raw.Static.Branches = R.readF64();
  O.Raw.TransferBytes = R.readF64();
  O.Raw.WgSize = R.readF64();
  O.CpuTime = R.readF64();
  O.GpuTime = R.readF64();
  return O;
}

void writeObservations(store::ArchiveWriter &W,
                       const std::vector<Observation> &Obs) {
  W.writeU64(Obs.size());
  for (const Observation &O : Obs)
    writeObservation(W, O);
}

std::vector<Observation> readObservations(store::ArchiveReader &R) {
  uint64_t Count = R.readU64();
  if (Count > MaxObservations)
    R.fail("implausible observation count");
  std::vector<Observation> Out;
  for (uint64_t I = 0; I < Count && R.ok(); ++I)
    Out.push_back(readObservation(R));
  return Out;
}

void writeIntVector(store::ArchiveWriter &W, const std::vector<int> &V) {
  W.writeU64(V.size());
  for (int X : V)
    W.writeI32(X);
}

std::vector<int> readIntVector(store::ArchiveReader &R) {
  uint64_t Count = R.readU64();
  if (Count > MaxObservations)
    R.fail("implausible prediction-vector length");
  std::vector<int> Out;
  for (uint64_t I = 0; I < Count && R.ok(); ++I)
    Out.push_back(R.readI32());
  return Out;
}

std::string archivePath(const std::string &StoreDir, const char *What,
                        uint64_t Key) {
  return StoreDir + "/" + What + "-" + store::hexDigest(Key) + ".clgs";
}

/// Derives baseline/augmented metrics from the two K-fold runs.
ExperimentMetrics computeMetrics(const std::vector<Observation> &Real,
                                 const KFoldResult &Baseline,
                                 const KFoldResult &Augmented) {
  ExperimentMetrics M;
  M.StaticLabel = staticBestDevice(Real);
  M.BaselineAccuracy = accuracy(Real, Baseline.Predictions);
  M.BaselineOracle = performanceRelativeToOracle(Real, Baseline.Predictions);
  M.BaselineSpeedup =
      speedupOverStatic(Real, Baseline.Predictions, M.StaticLabel);
  M.AugmentedAccuracy = accuracy(Real, Augmented.Predictions);
  M.AugmentedOracle = performanceRelativeToOracle(Real, Augmented.Predictions);
  M.AugmentedSpeedup =
      speedupOverStatic(Real, Augmented.Predictions, M.StaticLabel);
  return M;
}

/// The cold path shared by runExperiment and runOrLoadExperiment's miss
/// branch. When \p StoreDir is non-empty, the inner expensive phases
/// (model training, synthetic measurement) reuse the store's own
/// warm-start layers, so a half-warm store still skips what it can.
ExperimentResult computeExperiment(const ExperimentOptions &Opts,
                                   const std::string &StoreDir) {
  CLGS_TRACE_SPAN("predict.experiment");
  CLGS_COUNT("clgen.predict.experiment_runs");
  ExperimentResult Out;

  // 1. Corpus + model. trainOrLoad failures (unwritable store) degrade
  // to plain training: the experiment layer treats every store as
  // best-effort, exactly like the archive publishes below.
  auto Files = minedFiles(Opts);
  auto POpts = pipelineOptions(Opts);
  std::optional<core::ClgenPipeline> Pipeline;
  if (!StoreDir.empty()) {
    auto Loaded = core::ClgenPipeline::trainOrLoad(StoreDir, Files, POpts);
    if (Loaded.ok())
      Pipeline.emplace(Loaded.take());
  }
  if (!Pipeline)
    Pipeline.emplace(core::ClgenPipeline::train(Files, POpts));

  // 2. Synthetic benchmarks: streaming synthesis + measurement, with
  // the result cache and failure ledger attached when a store exists.
  runtime::Platform P = runtime::amdPlatform();
  core::StreamingOptions S = Opts.Streaming;
  std::optional<store::ResultCache> Cache;
  std::optional<store::FailureLedger> Ledger;
  if (!StoreDir.empty()) {
    Cache.emplace(StoreDir + "/results");
    Ledger.emplace(StoreDir + "/ledger");
    S.Cache = &*Cache;
    S.Ledger = &*Ledger;
  }
  core::StreamingResult SR = Pipeline->synthesizeAndMeasure(P, S);
  Out.Provenance.MeasuredKernels += SR.Kernels.size() + SR.Excised.size();

  {
    CLGS_TRACE_SPAN("predict.experiment.features");
    std::vector<vm::CompiledKernel> Compiled;
    Compiled.reserve(SR.Kernels.size());
    for (const core::SynthesizedKernel &K : SR.Kernels)
      Compiled.push_back(K.Kernel);
    std::vector<features::StaticFeatures> Static =
        features::extractStaticFeaturesParallel(Compiled, Opts.Workers);
    for (size_t I = 0; I < SR.Kernels.size(); ++I) {
      if (!SR.Measurements[I].ok())
        continue;
      const runtime::Measurement &M = SR.Measurements[I].get();
      Observation O;
      O.Suite = "clgen";
      O.Benchmark = formatString("clgen-synthetic-%zu", I);
      O.Kernel = SR.Kernels[I].Kernel.Name;
      O.Dataset = formatString("%zu", M.GlobalSize);
      O.Raw.Static = Static[I];
      O.Raw.TransferBytes = static_cast<double>(M.Transfer.total());
      O.Raw.WgSize = static_cast<double>(M.GlobalSize);
      O.CpuTime = M.CpuTime;
      O.GpuTime = M.GpuTime;
      Out.Synthetic.push_back(std::move(O));
    }
  }

  // 3. Real benchmark suites.
  {
    CLGS_TRACE_SPAN("predict.experiment.suites");
    std::vector<suites::BenchmarkKernel> Catalogue;
    for (const std::string &Name : resolvedSuites(Opts)) {
      auto Suite = suites::buildSuite(Name);
      Catalogue.insert(Catalogue.end(), Suite.begin(), Suite.end());
    }
    Out.Real = suites::measureCatalogue(Catalogue, P, Opts.Runner);
    Out.Provenance.MeasuredKernels += Out.Real.size();
  }

  // 4. Cross-validate without and with the synthetic training rows.
  Out.Baseline = kFoldCrossValidation(Out.Real, {}, Opts.Kind, Opts.KFold,
                                      Opts.Tree);
  Out.Augmented = kFoldCrossValidation(Out.Real, Out.Synthetic, Opts.Kind,
                                       Opts.KFold, Opts.Tree);
  Out.Provenance.TrainedModels +=
      Out.Baseline.FoldsTrained + Out.Augmented.FoldsTrained;
  Out.Metrics = computeMetrics(Out.Real, Out.Baseline, Out.Augmented);

  // 5. Paper artifacts.
  Table1Stats TS;
  Out.Table1 = renderTable1(Out.Real, Out.Synthetic, resolvedSuites(Opts),
                            Opts.Kind, Opts.Tree, &TS);
  Out.Provenance.TrainedModels += TS.TreesTrained;
  Out.Fig9 = renderFig9(Out.Real, Out.Synthetic, Opts.Fig9MaxRows);

  // 6. Final model over everything, the artifact a deployment would
  // ship (section 8: adding synthetic benchmarks to the training set).
  {
    CLGS_TRACE_SPAN("predict.experiment.final_fit");
    std::vector<Observation> All = Out.Real;
    All.insert(All.end(), Out.Synthetic.begin(), Out.Synthetic.end());
    std::vector<std::vector<double>> X =
        featureMatrix(All, Opts.Kind, Opts.Workers);
    std::vector<int> Y;
    Y.reserve(All.size());
    for (const Observation &O : All)
      Y.push_back(O.label());
    Out.Model = DecisionTree(Opts.Tree);
    Out.Model.fit(X, Y);
    Out.Provenance.TrainedModels += 1;
  }
  CLGS_COUNT_N("clgen.predict.trees_trained", Out.Provenance.TrainedModels);
  return Out;
}

} // namespace

uint64_t predict::experimentKey(const ExperimentOptions &Opts) {
  // Canonical byte recipe over everything the experiment output is a
  // pure function of. Scheduling knobs (Workers, MeasureWorkers,
  // QueueCapacity, KFold.Workers, watchdog/retry, dispatch mode) are
  // excluded by the determinism contract; any new SEMANTIC option
  // field must be appended here or stale artifacts would be served.
  store::ArchiveWriter Key(store::ArchiveKind::Report);
  Key.writeU8('F');
  Key.writeU64(trainingFingerprint(Opts));
  const core::SynthesisOptions &SO = Opts.Streaming.Synthesis;
  Key.writeU64(SO.TargetKernels);
  Key.writeU64(SO.MaxAttempts);
  Key.writeBool(SO.Spec.has_value());
  if (SO.Spec) {
    Key.writeU64(SO.Spec->ArgTypes.size());
    for (const std::string &T : SO.Spec->ArgTypes)
      Key.writeString(T);
  }
  Key.writeU64(SO.Sampling.MaxLength);
  Key.writeF64(SO.Sampling.Temperature);
  Key.writeU64(SO.Seed);
  const runtime::DriverOptions &DO = Opts.Streaming.Driver;
  Key.writeU64(DO.GlobalSize);
  Key.writeU64(DO.LocalSize);
  Key.writeU64(DO.MaxSimulatedGroups);
  Key.writeU64(DO.MaxInstructions);
  Key.writeU64(DO.Seed);
  Key.writeBool(DO.TrapDivZero);
  Key.writeBool(DO.RunDynamicCheck);
  Key.writeBool(Opts.Streaming.RefillFailures);
  auto Suites = resolvedSuites(Opts);
  Key.writeU64(Suites.size());
  for (const std::string &Name : Suites)
    Key.writeString(Name);
  Key.writeU64(Opts.Runner.MaxSimulatedGroups);
  Key.writeU64(Opts.Runner.Seed);
  Key.writeBool(Opts.Runner.SkipFailures);
  Key.writeU8(static_cast<uint8_t>(Opts.Kind));
  Key.writeI32(Opts.Tree.MaxDepth);
  Key.writeU64(Opts.Tree.MinSamplesLeaf);
  Key.writeU64(Opts.Tree.MinSamplesSplit);
  Key.writeU64(Opts.KFold.Folds);
  Key.writeU64(Opts.KFold.Seed);
  Key.writeU64(Opts.Fig9MaxRows);
  return Key.payloadDigest();
}

ExperimentResult predict::runExperiment(const ExperimentOptions &Opts) {
  return computeExperiment(Opts, "");
}

Result<ExperimentResult>
predict::loadExperiment(const std::string &StoreDir,
                        const ExperimentOptions &Opts) {
  uint64_t Key = experimentKey(Opts);
  ExperimentResult Out;

  // Archive 1: the labelled observation set.
  {
    auto Opened = store::ArchiveReader::open(
        archivePath(StoreDir, "features", Key), store::ArchiveKind::Features);
    if (!Opened.ok())
      return Result<ExperimentResult>::error(Opened.errorMessage());
    store::ArchiveReader R = Opened.take();
    Out.Real = readObservations(R);
    Out.Synthetic = readObservations(R);
    if (!R.finish().ok())
      return Result<ExperimentResult>::error("corrupt features archive: " +
                                             R.finish().errorMessage());
  }

  // Archive 2: the trained device-mapping model.
  {
    auto Opened = store::ArchiveReader::open(
        archivePath(StoreDir, "predictor", Key),
        store::ArchiveKind::Predictor);
    if (!Opened.ok())
      return Result<ExperimentResult>::error(Opened.errorMessage());
    store::ArchiveReader R = Opened.take();
    if (R.readU8() != static_cast<uint8_t>(Opts.Kind))
      R.fail("predictor archive feature-set mismatch");
    Out.Model = DecisionTree::deserialize(R);
    if (!R.finish().ok())
      return Result<ExperimentResult>::error("corrupt predictor archive: " +
                                             R.finish().errorMessage());
  }

  // Archive 3: the evaluation report.
  {
    auto Opened = store::ArchiveReader::open(
        archivePath(StoreDir, "report", Key), store::ArchiveKind::Report);
    if (!Opened.ok())
      return Result<ExperimentResult>::error(Opened.errorMessage());
    store::ArchiveReader R = Opened.take();
    ExperimentMetrics &M = Out.Metrics;
    M.StaticLabel = R.readI32();
    M.BaselineAccuracy = R.readF64();
    M.BaselineOracle = R.readF64();
    M.BaselineSpeedup = R.readF64();
    M.AugmentedAccuracy = R.readF64();
    M.AugmentedOracle = R.readF64();
    M.AugmentedSpeedup = R.readF64();
    Out.Baseline.Predictions = readIntVector(R);
    Out.Baseline.FoldOf = readIntVector(R);
    Out.Baseline.FoldsTrained = R.readU64();
    Out.Augmented.Predictions = readIntVector(R);
    Out.Augmented.FoldOf = readIntVector(R);
    Out.Augmented.FoldsTrained = R.readU64();
    Out.Table1 = R.readString();
    Out.Fig9 = R.readString();
    if (R.ok() && (Out.Baseline.Predictions.size() != Out.Real.size() ||
                   Out.Augmented.Predictions.size() != Out.Real.size()))
      R.fail("report archive disagrees with the observation set");
    if (!R.finish().ok())
      return Result<ExperimentResult>::error("corrupt report archive: " +
                                             R.finish().errorMessage());
  }

  Out.Provenance.Warm = true;
  CLGS_COUNT("clgen.predict.store_hits");
  return Out;
}

Result<ExperimentResult>
predict::runOrLoadExperiment(const std::string &StoreDir,
                             const ExperimentOptions &Opts) {
  std::error_code Ec;
  std::filesystem::create_directories(StoreDir, Ec);
  if (Ec)
    return Result<ExperimentResult>::error(
        "cannot create experiment store '" + StoreDir + "': " + Ec.message());

  // Lock-free fast path: warm stores never touch a lock file.
  if (auto Hit = loadExperiment(StoreDir, Opts); Hit.ok())
    return Hit;

  CLGS_COUNT("clgen.predict.store_misses");
  uint64_t Key = experimentKey(Opts);

  // Cold miss: serialize concurrent cold runs of this configuration so
  // training and measurement happen once; the losers consume the
  // winner's archives on the re-probe. A lock timeout degrades to
  // duplicated byte-identical work, never an error.
  store::ScopedLock Lock = store::ScopedLock::acquireForMiss(
      store::lockFilePath(StoreDir, "experiment", Key));
  if (Lock.held())
    if (auto Hit = loadExperiment(StoreDir, Opts); Hit.ok())
      return Hit;

  ExperimentResult Out = computeExperiment(Opts, StoreDir);

  // Publish all three archives; each write is atomic (temp + rename)
  // and best-effort — a failed publish just stays cold.
  {
    store::ArchiveWriter W(store::ArchiveKind::Features);
    writeObservations(W, Out.Real);
    writeObservations(W, Out.Synthetic);
    (void)W.saveTo(archivePath(StoreDir, "features", Key));
  }
  {
    store::ArchiveWriter W(store::ArchiveKind::Predictor);
    W.writeU8(static_cast<uint8_t>(Opts.Kind));
    Out.Model.serialize(W);
    (void)W.saveTo(archivePath(StoreDir, "predictor", Key));
  }
  {
    store::ArchiveWriter W(store::ArchiveKind::Report);
    W.writeI32(Out.Metrics.StaticLabel);
    W.writeF64(Out.Metrics.BaselineAccuracy);
    W.writeF64(Out.Metrics.BaselineOracle);
    W.writeF64(Out.Metrics.BaselineSpeedup);
    W.writeF64(Out.Metrics.AugmentedAccuracy);
    W.writeF64(Out.Metrics.AugmentedOracle);
    W.writeF64(Out.Metrics.AugmentedSpeedup);
    writeIntVector(W, Out.Baseline.Predictions);
    writeIntVector(W, Out.Baseline.FoldOf);
    W.writeU64(Out.Baseline.FoldsTrained);
    writeIntVector(W, Out.Augmented.Predictions);
    writeIntVector(W, Out.Augmented.FoldOf);
    W.writeU64(Out.Augmented.FoldsTrained);
    W.writeString(Out.Table1);
    W.writeString(Out.Fig9);
    (void)W.saveTo(archivePath(StoreDir, "report", Key));
  }
  return Out;
}

ExperimentOptions predict::goldenExperimentOptions() {
  ExperimentOptions Opts;
  // 400 files / order 16 is the smallest corpus whose model reliably
  // clears the dynamic checker (smaller models synthesize only no-op
  // or out-of-bounds kernels and the refill pass runs dry).
  Opts.CorpusFiles = 400;
  Opts.NGramOrder = 16;
  Opts.Streaming.Synthesis.TargetKernels = 6;
  Opts.Streaming.Synthesis.MaxAttempts = 6 * 400;
  Opts.Streaming.Synthesis.Sampling.Temperature = 0.55;
  Opts.Streaming.Synthesis.Seed = 0x5E17;
  Opts.Streaming.Driver.GlobalSize = 4096;
  Opts.Streaming.Driver.LocalSize = 64;
  Opts.Streaming.Driver.MaxSimulatedGroups = 8;
  Opts.Streaming.Driver.RunDynamicCheck = true;
  Opts.Streaming.RefillFailures = true;
  Opts.Suites = {"NVIDIA SDK", "Parboil", "AMD SDK"};
  Opts.Runner.MaxSimulatedGroups = 8;
  Opts.KFold.Folds = 3;
  return Opts;
}

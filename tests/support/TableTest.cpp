//===- tests/support/TableTest.cpp - table renderer tests -------------------===//

#include "support/Table.h"

#include <gtest/gtest.h>

using namespace clgen;

TEST(TableTest, RendersAlignedColumns) {
  TextTable T;
  T.setHeader({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer", "22"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(Out.find("---"), std::string::npos);
  // All data rows appear after the header.
  EXPECT_LT(Out.find("name"), Out.find("x"));
}

TEST(TableTest, BarChartScalesToWidth) {
  BarChart C("title", 10);
  C.addBar("a", 1.0);
  C.addBar("b", 2.0);
  std::string Out = C.render();
  // The largest bar spans the full width.
  EXPECT_NE(Out.find("##########"), std::string::npos);
  EXPECT_NE(Out.find("title"), std::string::npos);
}

TEST(TableTest, BarChartHandlesAllZeros) {
  BarChart C("z", 10);
  C.addBar("a", 0.0);
  std::string Out = C.render();
  EXPECT_EQ(Out.find('#'), std::string::npos);
}

TEST(TableTest, SectionBanner) {
  std::string B = sectionBanner("Figure 7");
  EXPECT_NE(B.find("== Figure 7 =="), std::string::npos);
}

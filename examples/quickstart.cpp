//===- examples/quickstart.cpp - CLgen in five minutes ------------------------===//
//
// Quickstart: mine a corpus, train a language model, synthesize OpenCL
// benchmarks, and execute one with the host driver.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "clgen/Pipeline.h"
#include "githubsim/GithubSim.h"
#include "runtime/HostDriver.h"

#include <cstdio>

using namespace clgen;

int main() {
  // 1. Mine content files. With network access this would scrape GitHub;
  //    here a synthetic repository generator stands in (see DESIGN.md).
  githubsim::GithubSimOptions MineOpts;
  MineOpts.FileCount = 1000;
  auto Files = githubsim::mineGithub(MineOpts);
  std::printf("mined %zu content files\n", Files.size());

  // 2. Build the corpus (rejection filter + rewriter) and train the
  //    language model in one step.
  auto Pipeline = core::ClgenPipeline::train(Files);
  const auto &Stats = Pipeline.corpus().Stats;
  std::printf("corpus: %zu files accepted (%.0f%% discarded), %zu kernel "
              "functions\n",
              Stats.FilesAccepted, Stats.discardRate() * 100.0,
              Stats.KernelCount);

  // 3. Synthesize kernels matching an argument specification.
  core::SynthesisOptions SynthOpts;
  SynthOpts.TargetKernels = 15;
  SynthOpts.MaxAttempts = 5000;
  SynthOpts.Sampling.Temperature = 0.5;
  auto Result = Pipeline.synthesize(SynthOpts);
  std::printf("synthesized %zu kernels from %zu samples\n\n",
              Result.Kernels.size(), Result.Stats.Attempts);
  if (Result.Kernels.empty())
    return 1;

  // 4. Execute on both simulated devices via the host driver. Not every
  //    synthesized kernel performs useful work (the dynamic checker of
  //    section 5.2 vets them), so take the first one that passes.
  runtime::DriverOptions DriverOpts;
  DriverOpts.GlobalSize = 65536;
  DriverOpts.RunDynamicCheck = true;
  for (const auto &SK : Result.Kernels) {
    auto M = runtime::runBenchmark(SK.Kernel, runtime::amdPlatform(),
                                   DriverOpts);
    if (!M.ok()) {
      std::printf("driver rejected a kernel (%s); trying the next one\n",
                  M.errorMessage().c_str());
      continue;
    }
    std::printf("\n----- synthesized kernel -----\n%s----------------------"
                "--------\n\n",
                SK.Source.c_str());
    std::printf("runtimes for a %zu-element payload: CPU %.3f ms, GPU "
                "%.3f ms -> run on %s\n",
                M.get().GlobalSize, M.get().CpuTime * 1e3,
                M.get().GpuTime * 1e3,
                M.get().gpuIsBest() ? "GPU" : "CPU");
    return 0;
  }
  std::printf("no synthesized kernel passed the dynamic checker; rerun "
              "with a higher TargetKernels\n");
  return 0;
}

//===- turing/TuringTest.h - Simulated human-or-machine panel ----*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulates the qualitative evaluation of section 6.1: a double-blind
/// panel of volunteer OpenCL developers judging whether kernels were
/// written by a human or a machine. Fifteen participants saw ten kernels
/// each; ten participants judged CLgen output (scoring 52% — chance),
/// five formed a control group judging CLSmith output (96%, with zero
/// false positives).
///
/// Substitution: human judges are unavailable, so each simulated judge
/// scores a kernel by (a) its naturalness under a reference language
/// model trained on the human corpus (bits per character) and (b)
/// CLSmith "tells" (single ulong result buffer, p_NN/l_NN identifiers,
/// magic hex constants), with per-judge threshold noise. The mechanism
/// matches the paper's observation: the control group wins on obvious
/// tells, while CLgen code is statistically indistinguishable.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_TURING_TURINGTEST_H
#define CLGEN_TURING_TURINGTEST_H

#include "model/LanguageModel.h"
#include "support/Rng.h"

#include <string>
#include <vector>

namespace clgen {
namespace turing {

struct PanelOptions {
  int Participants = 10;
  int KernelsPerParticipant = 10;
  /// Std-dev of per-judge threshold noise (bits/char).
  double JudgeNoise = 0.025;
  uint64_t Seed = 0x7E57;
};

struct PanelResult {
  /// Per-participant accuracy in [0, 1].
  std::vector<double> Accuracies;
  double MeanAccuracy = 0.0;
  double StdevAccuracy = 0.0;
  /// Machine kernels labelled human / human kernels labelled machine.
  int FalseNegatives = 0;
  int FalsePositives = 0;
};

/// Machine-made "tell" score for one kernel (0 = none). Exposed for
/// tests and the feature-audit example.
double clsmithTellScore(const std::string &Source);

/// Runs one panel: each participant sees a random half/half mix of
/// \p HumanPool and \p MachinePool (already style-normalised, as in the
/// paper) and labels each kernel. \p ReferenceModel must have been
/// trained on human code.
PanelResult runPanel(const std::vector<std::string> &HumanPool,
                     const std::vector<std::string> &MachinePool,
                     model::LanguageModel &ReferenceModel,
                     const PanelOptions &Opts = PanelOptions());

} // namespace turing
} // namespace clgen

#endif // CLGEN_TURING_TURINGTEST_H

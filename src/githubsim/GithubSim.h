//===- githubsim/GithubSim.h - Synthetic GitHub content files ----*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Substitute for the paper's GitHub mining (section 4.1): a procedural
/// generator of raw OpenCL "content files" with the pathologies the
/// paper's corpus pipeline contends with:
///
///  - comments (header blocks, line comments), macros, conditional
///    compilation, project typedefs, helper functions, varied naming and
///    formatting — the noise the rewriter normalises away;
///  - files that reference project identifiers (FLOAT_T, WG_SIZE, ...)
///    whose definitions were lost when the device code was isolated —
///    the class of failure the shim header repairs;
///  - hopeless files: host C++ fragments, struct-typed kernels,
///    truncated downloads, kernels below the instruction-count floor.
///
/// Fractions are calibrated so the corpus statistics reproduce the
/// paper's shape: a ~40% discard rate without the shim falling to ~32%
/// with it.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_GITHUBSIM_GITHUBSIM_H
#define CLGEN_GITHUBSIM_GITHUBSIM_H

#include "corpus/Corpus.h"
#include "support/Rng.h"

#include <vector>

namespace clgen {
namespace githubsim {

struct GithubSimOptions {
  /// Number of content files to "mine" (the paper's dataset has 8078).
  size_t FileCount = 1000;
  uint64_t Seed = 0x617B5EED;
  /// Fraction of files that are unusable regardless of the shim.
  double HopelessFraction = 0.32;
  /// Fraction of files that compile only with the shim injected.
  double ShimFixableFraction = 0.08;
  /// Fraction of valid files that define more than one kernel.
  double MultiKernelFraction = 0.25;
};

/// Generates the synthetic repository snapshot.
std::vector<corpus::ContentFile> mineGithub(
    const GithubSimOptions &Opts = GithubSimOptions());

} // namespace githubsim
} // namespace clgen

#endif // CLGEN_GITHUBSIM_GITHUBSIM_H

//===- tests/ocl/SemaTest.cpp - semantic analysis tests ----------------------===//

#include "ocl/Sema.h"

#include "ocl/Casting.h"
#include "ocl/Parser.h"

#include <gtest/gtest.h>

using namespace clgen;
using namespace clgen::ocl;

namespace {

/// Parses and analyzes; returns the program on success, null on failure.
std::unique_ptr<Program> compileOk(const std::string &Src) {
  auto R = parseProgram(Src);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.errorMessage());
  if (!R.ok())
    return nullptr;
  auto P = R.take();
  Status S = analyze(*P);
  EXPECT_TRUE(S.ok()) << S.errorMessage();
  if (!S.ok())
    return nullptr;
  return P;
}

/// Parses (must succeed) then expects sema failure.
std::string semaError(const std::string &Src) {
  auto R = parseProgram(Src);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.errorMessage());
  if (!R.ok())
    return "(parse failed)";
  auto P = R.take();
  Status S = analyze(*P);
  EXPECT_FALSE(S.ok());
  return S.ok() ? "" : S.errorMessage();
}

} // namespace

TEST(SemaTest, TypesSimpleKernel) {
  auto P = compileOk("__kernel void A(__global float* a, const int n) {\n"
                     "  int i = get_global_id(0);\n"
                     "  if (i < n) a[i] = a[i] * 2.0f;\n"
                     "}");
  ASSERT_TRUE(P);
}

TEST(SemaTest, UndeclaredIdentifierDiagnosed) {
  std::string Err = semaError(
      "__kernel void A(__global float* a) { a[0] = missing; }");
  EXPECT_NE(Err.find("undeclared identifier 'missing'"), std::string::npos)
      << Err;
}

TEST(SemaTest, UndeclaredShimTypeConstantDiagnosed) {
  // WG_SIZE is exactly the class of identifier the shim header provides.
  std::string Err = semaError(
      "__kernel void A(__global float* a) { int i = WG_SIZE; }");
  EXPECT_NE(Err.find("WG_SIZE"), std::string::npos);
}

TEST(SemaTest, BinaryPromotionIntFloat) {
  auto P = compileOk("__kernel void A(__global float* a, int n) {\n"
                     "  a[0] = n + 1.5f;\n"
                     "}");
  ASSERT_TRUE(P);
  // The store's RHS must have been promoted to float.
  const auto *ES =
      dyn_cast<ExprStmt>(P->Functions[0]->Body->Body[0].get());
  const auto *Assign = dyn_cast<BinaryExpr>(ES->E.get());
  EXPECT_EQ(Assign->Rhs->Ty.S, Scalar::Float);
}

TEST(SemaTest, VectorScalarBroadcast) {
  auto P = compileOk("__kernel void A(__global float4* a) {\n"
                     "  a[0] = a[0] * 2.0f;\n"
                     "}");
  ASSERT_TRUE(P);
}

TEST(SemaTest, VectorWidthMismatchRejected) {
  std::string Err = semaError(
      "__kernel void A(float4 a, float2 b) { float4 c = a + b; }");
  EXPECT_NE(Err.find("vector"), std::string::npos);
}

TEST(SemaTest, SwizzleTyping) {
  auto P = compileOk("__kernel void A(float4 v, __global float* out) {\n"
                     "  out[0] = v.x;\n"
                     "  out[1] = v.w;\n"
                     "  float2 d = v.xy;\n"
                     "  float2 h = v.hi;\n"
                     "  float s = v.s3;\n"
                     "}");
  ASSERT_TRUE(P);
}

TEST(SemaTest, SwizzleOutOfRangeRejected) {
  std::string Err = semaError("__kernel void A(float2 v, __global float* o)"
                              " { o[0] = v.z; }");
  EXPECT_NE(Err.find("component"), std::string::npos);
}

TEST(SemaTest, MemberOnScalarRejected) {
  std::string Err =
      semaError("__kernel void A(float v, __global float* o) { o[0] = v.x; }");
  EXPECT_NE(Err.find("non-vector"), std::string::npos);
}

TEST(SemaTest, BuiltinWorkItemFunctions) {
  auto P = compileOk("__kernel void A(__global uint* a) {\n"
                     "  a[get_global_id(0)] = get_local_id(0) +\n"
                     "      get_group_id(0) * get_local_size(0);\n"
                     "}");
  ASSERT_TRUE(P);
}

TEST(SemaTest, BuiltinMathTyping) {
  auto P = compileOk("__kernel void A(__global float* a, int n) {\n"
                     "  a[0] = sqrt(2.0f) + pow(a[1], 2.0f) + fabs(a[2]);\n"
                     "  a[1] = sqrt((float)n);\n"
                     "}");
  ASSERT_TRUE(P);
}

TEST(SemaTest, BuiltinArityChecked) {
  std::string Err =
      semaError("__kernel void A(__global float* a) { a[0] = sqrt(); }");
  EXPECT_NE(Err.find("arguments"), std::string::npos);
}

TEST(SemaTest, UnknownFunctionRejected) {
  std::string Err = semaError(
      "__kernel void A(__global float* a) { a[0] = my_helper(1.0f); }");
  EXPECT_NE(Err.find("my_helper"), std::string::npos);
}

TEST(SemaTest, UserFunctionCallTyped) {
  auto P = compileOk("float twice(float x) { return x * 2.0f; }\n"
                     "__kernel void A(__global float* a) {\n"
                     "  a[0] = twice(a[1]);\n"
                     "}");
  ASSERT_TRUE(P);
}

TEST(SemaTest, ForwardCallAllowed) {
  auto P = compileOk("__kernel void A(__global float* a) { a[0] = f(a[1]); }\n"
                     "float f(float x) { return x + 1.0f; }");
  ASSERT_TRUE(P);
}

TEST(SemaTest, DirectRecursionRejected) {
  std::string Err =
      semaError("int f(int x) { return f(x - 1); }\n"
                "__kernel void A(__global int* a) { a[0] = f(3); }");
  EXPECT_NE(Err.find("recursive"), std::string::npos);
}

TEST(SemaTest, MutualRecursionRejected) {
  std::string Err = semaError(
      "int g(int x);\n"
      "int f(int x) { return g(x); }\n"
      "int g(int x) { return f(x); }\n"
      "__kernel void A(__global int* a) { a[0] = f(1); }");
  EXPECT_NE(Err.find("recursive"), std::string::npos);
}

TEST(SemaTest, KernelCallRejected) {
  std::string Err = semaError(
      "__kernel void B(__global int* a) { a[0] = 1; }\n"
      "__kernel void A(__global int* a) { B(a); }");
  EXPECT_NE(Err.find("kernel"), std::string::npos);
}

TEST(SemaTest, AssignToRValueRejected) {
  std::string Err =
      semaError("__kernel void A(int n) { n + 1 = 4; }");
  EXPECT_NE(Err.find("lvalue"), std::string::npos);
}

TEST(SemaTest, SubscriptNonPointerRejected) {
  std::string Err =
      semaError("__kernel void A(int n) { int x = n[0]; }");
  EXPECT_NE(Err.find("non-pointer"), std::string::npos);
}

TEST(SemaTest, PointerArithmeticTyped) {
  auto P = compileOk("__kernel void A(__global float* a, int i) {\n"
                     "  *(a + i) = 1.0f;\n"
                     "  __global float* p = a + 4;\n"
                     "  p[i] = 2.0f;\n"
                     "}");
  ASSERT_TRUE(P);
}

TEST(SemaTest, BitwiseOnFloatRejected) {
  std::string Err = semaError("__kernel void A(float x, __global float* o)"
                              " { o[0] = x & 1; }");
  EXPECT_NE(Err.find("non-integer"), std::string::npos);
}

TEST(SemaTest, BarrierIsVoid) {
  auto P = compileOk("__kernel void A(__global float* a) {\n"
                     "  barrier(CLK_LOCAL_MEM_FENCE);\n"
                     "  a[0] = 1.0f;\n"
                     "}");
  ASSERT_TRUE(P);
}

TEST(SemaTest, LocalArrayUsableAsPointer) {
  auto P = compileOk("__kernel void A(__global float* a, int n) {\n"
                     "  __local float tile[64];\n"
                     "  int l = get_local_id(0);\n"
                     "  tile[l] = a[l];\n"
                     "  barrier(CLK_LOCAL_MEM_FENCE);\n"
                     "  a[l] = tile[63 - l];\n"
                     "}");
  ASSERT_TRUE(P);
}

TEST(SemaTest, AtomicOnGlobalIntPointer) {
  auto P = compileOk("__kernel void A(__global int* hist, int v) {\n"
                     "  atomic_add(&hist[v], 1);\n"
                     "  atomic_inc(&hist[0]);\n"
                     "}");
  ASSERT_TRUE(P);
}

TEST(SemaTest, AtomicOnFloatRejected) {
  std::string Err = semaError("__kernel void A(__global float* a)"
                              " { atomic_add(&a[0], 1); }");
  EXPECT_NE(Err.find("integer"), std::string::npos);
}

TEST(SemaTest, ConvertFamilyTyped) {
  auto P = compileOk("__kernel void A(float4 v, __global int4* o) {\n"
                     "  o[0] = convert_int4(v);\n"
                     "}");
  ASSERT_TRUE(P);
}

TEST(SemaTest, VloadVstoreTyped) {
  auto P = compileOk("__kernel void A(__global float* a) {\n"
                     "  float4 v = vload4(0, a);\n"
                     "  vstore4(v * 2.0f, 1, a);\n"
                     "}");
  ASSERT_TRUE(P);
}

TEST(SemaTest, RedefinitionInSameScopeRejected) {
  std::string Err =
      semaError("__kernel void A(int n) { int x = 1; float x = 2.0f; }");
  EXPECT_NE(Err.find("redefinition"), std::string::npos);
}

TEST(SemaTest, ShadowingInNestedScopeAllowed) {
  auto P = compileOk("__kernel void A(int n) {\n"
                     "  int x = 1;\n"
                     "  if (n) { float x = 2.0f; }\n"
                     "}");
  ASSERT_TRUE(P);
}

TEST(SemaTest, GlobalConstantVisible) {
  auto P = compileOk("__constant float Scale = 2.0f;\n"
                     "__kernel void A(__global float* a) { a[0] *= Scale; }");
  ASSERT_TRUE(P);
}

TEST(SemaTest, ReturnTypeChecked) {
  std::string Err = semaError("float f(float x) { return; }\n"
                              "__kernel void A(__global float* a)"
                              " { a[0] = f(a[0]); }");
  EXPECT_NE(Err.find("return"), std::string::npos);
}

TEST(SemaTest, VoidFunctionReturningValueRejected) {
  std::string Err =
      semaError("__kernel void A(__global float* a) { return 1; }");
  EXPECT_NE(Err.find("void"), std::string::npos);
}

TEST(SemaTest, PaperListing2Kernel) {
  // Listing 2 from the paper: indistinguishable from FWT in the Grewe
  // feature space. Note `e < c` compares an int against a pointer in the
  // original paper listing; the published kernel relies on the C rule that
  // this is a (questionable but accepted-by-compilers) comparison. Our
  // stricter subset requires the corrected `e < d`.
  auto P = compileOk("__kernel void A(__global float* a, __global float* b,\n"
                     "                __global float* c, const int d) {\n"
                     "  int e = get_global_id(0);\n"
                     "  if (e < 4 && e < d) {\n"
                     "    c[e] = a[e] + b[e];\n"
                     "    a[e] = b[e] + 1;\n"
                     "  }\n"
                     "}");
  ASSERT_TRUE(P);
}

//===- model/LstmModel.h - LSTM language model -------------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-layer LSTM character-level language model with truncated BPTT
/// training — the architecture of section 4.2 ("a 3-layer LSTM network
/// with 2048 nodes per layer ... trained with Stochastic Gradient
/// Descent for 50 epochs, with an initial learning rate of 0.002,
/// decaying by a factor of one half every 5 epochs"). Defaults here are
/// laptop-scale; the paper's full configuration is reachable through
/// LstmOptions but is not affordable on CPU (documented in DESIGN.md).
///
/// Everything is implemented from scratch: forward pass, softmax
/// cross-entropy, backpropagation through time, gradient clipping and
/// SGD with the paper's decay schedule. Gradients are verified against
/// finite differences in the test suite.
///
/// Training is data-parallel: the token stream is partitioned into
/// LstmOptions::BatchLanes contiguous lanes of BPTT chunks, and each
/// optimizer step evaluates one chunk per lane against a frozen weight
/// snapshot, fanned across a support::ThreadPool
/// (TrainOptions::Workers). Lane gradients are reduced in lane-index
/// order and applied as one accumulated SGD update, so trained weights
/// are bit-identical for every worker count — and BatchLanes == 1
/// reproduces the classic chunk-sequential SGD exactly (see
/// docs/ARCHITECTURE.md, "Deterministic gradient reduction").
///
/// Performance: weights are stored input-major ("transposed" relative to
/// the usual W[4H x In] math notation) so that every matrix kernel in
/// both the forward and backward pass runs a contiguous,
/// auto-vectorizable inner loop over the fused 4-gate dimension, and the
/// one-hot layer-0 input reduces to an embedding-row lookup. See
/// LstmModel.cpp for the blocked kernels.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_MODEL_LSTMMODEL_H
#define CLGEN_MODEL_LSTMMODEL_H

#include "model/LanguageModel.h"
#include "support/Rng.h"

#include <functional>
#include <string>
#include <vector>

namespace clgen {
namespace model {

struct LstmOptions {
  int Layers = 2;
  int HiddenSize = 64;
  int Epochs = 3;
  int SequenceLength = 48;
  float LearningRate = 0.02f; // The paper's 0.002 suits its 50-epoch run.
  float LearningRateDecay = 0.5f;
  int DecayEveryEpochs = 5;
  float GradClip = 5.0f;
  uint64_t Seed = 0x15731AB5;
  /// Data-parallel width of training: the chunk sequence is split into
  /// this many contiguous lanes, and every optimizer step reduces one
  /// chunk gradient per lane into a single accumulated update. This is a
  /// SEMANTIC knob (it changes the training trajectory, so it is part of
  /// the serialized options and the pipeline training fingerprint);
  /// 1 = the classic chunk-sequential SGD of the paper. Contrast
  /// TrainOptions::Workers, which is pure scheduling. Clamped to
  /// [1, MaxBatchLanes] at model construction, so a model can never
  /// serialize an options block its own deserializer would reject.
  int BatchLanes = 1;

  /// Upper bound on BatchLanes: the constructor clamp and the archive
  /// range check share it by definition.
  static constexpr int MaxBatchLanes = 1 << 20;
};

/// Scheduling options for LstmModel::train. Nothing here can change the
/// trained weights — output is bit-identical for every value of every
/// field — so none of it enters serialized models or cache fingerprints.
struct TrainOptions {
  /// Threads the per-lane gradient work fans out across (0 = hardware
  /// concurrency). Effective parallelism is capped by
  /// LstmOptions::BatchLanes.
  unsigned Workers = 1;
  /// When set, receives (epoch, average bits-per-char loss).
  std::function<void(int, double)> Progress;
};

class LstmModel : public LanguageModel {
public:
  explicit LstmModel(LstmOptions Opts = LstmOptions()) : Opts(Opts) {
    if (this->Opts.BatchLanes < 1)
      this->Opts.BatchLanes = 1;
    else if (this->Opts.BatchLanes > LstmOptions::MaxBatchLanes)
      this->Opts.BatchLanes = LstmOptions::MaxBatchLanes;
  }

  /// Trains on corpus entries (sentinel-separated). See TrainOptions for
  /// the scheduling knobs; weights are bit-identical for any
  /// TrainOptions value.
  void train(const std::vector<std::string> &Entries,
             const TrainOptions &TOpts);

  /// Back-compat convenience: serial training with an optional progress
  /// callback.
  void train(const std::vector<std::string> &Entries,
             const std::function<void(int, double)> &Progress = nullptr);

  // LanguageModel:
  const Vocabulary &vocabulary() const override { return Vocab; }
  void reset() override;
  void observe(int TokenId) override;
  std::vector<double> nextDistribution() override;
  void nextDistributionInto(std::vector<double> &Dist) override;
  std::unique_ptr<LanguageModel> clone() const override;
  const char *backendName() const override { return "lstm"; }

  /// Total trainable parameter count (the paper's model has 17M).
  size_t parameterCount() const;

  /// Appends options + vocabulary + all weight matrices to an archive
  /// payload. Weights travel as IEEE-754 bit patterns, so a load
  /// restores the parameters bit-exactly and generation from a loaded
  /// model matches the original float for float.
  void serialize(store::ArchiveWriter &W) const;

  /// Rebuilds a trained model from an archive, validating every weight
  /// blob against the stored architecture (layer count, hidden size,
  /// vocabulary size). Trips the reader's error state on mismatch.
  static LstmModel deserialize(store::ArchiveReader &R);

  /// Cross-entropy (bits/char) of a token sequence under the current
  /// parameters, from a zero state. Used by training diagnostics/tests.
  double sequenceLoss(const std::vector<int> &Tokens);

  /// Finite-difference gradient check on a short token sequence; returns
  /// the maximum relative error across a parameter sample. Test-only.
  double gradientCheck(const std::vector<int> &Tokens, int SampleCount = 24);

  /// GradientCapture hook (test-only): while enabled, train() keeps a
  /// copy of the merged raw gradient (post lane reduction, pre clip and
  /// scale) of the most recently applied optimizer step.
  void setGradientCapture(bool Enable) { CaptureGrads = Enable; }

  /// Byte image (IEEE-754 bit patterns, fixed tensor order) of the
  /// gradient captured by the hook above. Two runs produced the same
  /// reduced gradients iff their images are equal byte-for-byte.
  std::vector<uint8_t> capturedGradientImage() const;

private:
  LstmOptions Opts;
  Vocabulary Vocab;
  int V = 0; // Vocabulary size.

  /// Parameters per layer, stored input-major for contiguous access:
  /// WxT[In x 4H] (row i = input unit i's weights to all gates, so the
  /// one-hot layer-0 input is a single contiguous row), WhT[H x 4H],
  /// B[4H]. Gate order within a 4H row block: [i f g o].
  struct Layer {
    std::vector<float> WxT, WhT, B;
    int In = 0;
  };
  std::vector<Layer> Layers;
  std::vector<float> Wy, By; // Output projection [V x H], [V].

  /// One model-shaped gradient accumulator. Lanes fill one each per
  /// optimizer step; the reduction merges them in lane order, and the
  /// update reads from here — never aliasing the live weights — in one
  /// vectorizable pass per tensor.
  struct GradBuf {
    std::vector<Layer> Layers;
    std::vector<float> GWy, GBy;
  };

  /// Generation state.
  std::vector<std::vector<float>> StateH, StateC;

  /// Reused step scratch (gate pre-activations / logits); generation and
  /// loss evaluation allocate nothing per token.
  std::vector<float> ScratchA, ScratchLogits;

  /// Per-lane BPTT scratch (forward tape + backward accumulators); see
  /// LstmModel.cpp.
  struct ChunkWorkspace;

  /// GradientCapture hook state (see setGradientCapture).
  bool CaptureGrads = false;
  GradBuf CapturedGrads;

  void initParameters();
  void allocGradBuf(GradBuf &G) const;
  /// One forward step from (H,C) with input vector X (size In of layer
  /// 0 handled as one-hot id); returns logits.
  void stepState(int TokenId, std::vector<std::vector<float>> &H,
                 std::vector<std::vector<float>> &C,
                 std::vector<float> *LogitsOut);
  /// Forward + backward over one BPTT chunk against the CURRENT weights,
  /// which it never mutates (safe to run concurrently from many lanes).
  /// Accumulates raw gradients into \p Grads (caller zeroes), advances
  /// (H,C) to the chunk's final state, and returns the total loss in
  /// bits; \p StepsOut receives the number of prediction steps.
  double chunkBackward(const std::vector<int> &Tokens, size_t Begin,
                       size_t End, std::vector<std::vector<float>> &H,
                       std::vector<std::vector<float>> &C, GradBuf &Grads,
                       ChunkWorkspace &Ws, int &StepsOut) const;
  /// Clips \p Grads by global norm and applies one SGD step scaled by
  /// Lr / TotalSteps (the accumulated-update half of the engine).
  void applyUpdate(GradBuf &Grads, float Lr, int TotalSteps);
};

} // namespace model
} // namespace clgen

#endif // CLGEN_MODEL_LSTMMODEL_H

//===- support/Trap.h - Structured failure taxonomy --------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trap taxonomy: every failure surfaced by the compile → check →
/// launch → measure path carries a TrapKind alongside its diagnostic
/// string, so callers can branch on *why* a kernel failed instead of
/// pattern-matching messages. The taxonomy also drives policy:
///
///  - isTransientTrap(): which classes are worth retrying (injected
///    faults and I/O hiccups clear on a second attempt; an out-of-bounds
///    access never does).
///  - isDeterministicTrap(): which classes may be recorded in the
///    persistent failure ledger. Only kinds that are a pure function of
///    (kernel, options, platform) qualify — a watchdog timeout depends on
///    host load and an injected fault on the armed schedule, so neither
///    may poison future runs.
///
/// Enumerator values are serialized into failure-ledger archives; they
/// are append-only and must never be renumbered.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_SUPPORT_TRAP_H
#define CLGEN_SUPPORT_TRAP_H

#include <cstdint>

namespace clgen {

/// Classified failure cause, carried through Result/Status, the dynamic
/// checker's CheckResult and the measurement pipeline.
enum class TrapKind : uint8_t {
  /// No failure (the kind carried by every successful Result).
  None = 0,
  /// Out-of-bounds global/local/private/vector/atomic access.
  OutOfBounds = 1,
  /// Not all work-items of a group reached the same barrier.
  BarrierDivergence = 2,
  /// The launch exceeded its instruction budget (the paper's "timeout").
  InstructionBudget = 3,
  /// The wall-clock watchdog on a measurement worker fired.
  WatchdogTimeout = 4,
  /// Integer division/remainder by zero under strict trapping.
  DivByZero = 5,
  /// The OpenCL frontend rejected the kernel source.
  CompileError = 6,
  /// Argument binding / NDRange shape errors before execution started.
  BadLaunch = 7,
  /// Dynamic checker: kernel wrote no output.
  CheckNoOutput = 8,
  /// Dynamic checker: output independent of the input payload.
  CheckInputInsensitive = 9,
  /// Dynamic checker: two runs on identical payloads disagreed.
  CheckNonDeterministic = 10,
  /// A failpoint fired (CLGS_FAILPOINTS builds only).
  Injected = 11,
  /// Store/ledger/lock I/O failure.
  IoError = 12,
  /// Failure predating the taxonomy or genuinely unclassifiable.
  Unknown = 13,
};

/// Stable lower-case name for \p Kind (e.g. "out-of-bounds").
const char *trapKindName(TrapKind Kind);

/// True for classes that may clear on retry (Injected, IoError).
bool isTransientTrap(TrapKind Kind);

/// True for classes that are a pure function of (kernel, options,
/// platform) and therefore eligible for the persistent failure ledger.
bool isDeterministicTrap(TrapKind Kind);

/// Maps a serialized tag back to a TrapKind; out-of-range tags (from a
/// newer writer) decode as Unknown.
TrapKind trapKindFromTag(uint8_t Tag);

} // namespace clgen

#endif // CLGEN_SUPPORT_TRAP_H

//===- support/StringUtils.cpp - String helpers ---------------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

using namespace clgen;

std::vector<std::string> clgen::splitString(std::string_view Text, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  for (size_t I = 0; I <= Text.size(); ++I) {
    if (I == Text.size() || Text[I] == Sep) {
      Parts.emplace_back(Text.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Parts;
}

std::vector<std::string> clgen::splitLines(std::string_view Text) {
  std::vector<std::string> Lines = splitString(Text, '\n');
  if (!Lines.empty() && Lines.back().empty())
    Lines.pop_back();
  return Lines;
}

std::string_view clgen::trim(std::string_view Text) {
  size_t Begin = 0;
  size_t End = Text.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

std::string clgen::joinStrings(const std::vector<std::string> &Parts,
                               std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

bool clgen::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}

bool clgen::endsWith(std::string_view Text, std::string_view Suffix) {
  return Text.size() >= Suffix.size() &&
         Text.substr(Text.size() - Suffix.size()) == Suffix;
}

std::string clgen::replaceAll(std::string Text, std::string_view From,
                              std::string_view To) {
  if (From.empty())
    return Text;
  size_t Pos = 0;
  while ((Pos = Text.find(From, Pos)) != std::string::npos) {
    Text.replace(Pos, From.size(), To);
    Pos += To.size();
  }
  return Text;
}

size_t clgen::countNonBlankLines(std::string_view Text) {
  size_t Count = 0;
  for (const std::string &Line : splitLines(Text))
    if (!trim(Line).empty())
      ++Count;
  return Count;
}

std::string clgen::sequentialName(size_t Index, bool Uppercase) {
  // The series is a, b, ..., z, aa, ab, ... which is a bijective base-26
  // numbering.
  std::string Name;
  size_t N = Index + 1;
  while (N > 0) {
    size_t Digit = (N - 1) % 26;
    Name.insert(Name.begin(),
                static_cast<char>((Uppercase ? 'A' : 'a') + Digit));
    N = (N - 1) / 26;
  }
  return Name;
}

std::string clgen::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Size = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Size < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Out(static_cast<size_t>(Size), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Out;
}

//===- tests/clgen/PipelineStreamTest.cpp - streaming pipeline golden tests ---===//
//
// The determinism contract of the async synthesis→measurement pipeline:
// core::synthesizeAndMeasure must produce BYTE-identical output to the
// phased path (synthesizeKernels, then runBenchmarkBatch) for every
// combination of synthesis workers, wave sizes, measurement workers and
// queue capacities — with no cache, with a cold cache, and with a
// pre-warmed ResultCache. Identity is checked on a canonical
// serialization of the whole result (sources + bytecode + stats +
// measurements), not field spot-checks.
//
//===----------------------------------------------------------------------===//

#include "clgen/Pipeline.h"

#include "githubsim/GithubSim.h"
#include "store/ResultCache.h"
#include "store/Serialization.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

using namespace clgen;
using namespace clgen::core;

namespace {

/// Fresh per-test scratch directory, removed on destruction.
class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name)
      : Path(std::filesystem::temp_directory_path() /
             ("clgen_stream_test_" + Name)) {
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }

private:
  std::filesystem::path Path;
};

/// Canonical byte image of a (kernels, stats, measurements) outcome.
/// Two outcomes are "the same result" iff these bytes are equal.
std::vector<uint8_t>
resultBytes(const std::vector<SynthesizedKernel> &Kernels,
            const SynthesisStats &Stats,
            const std::vector<Result<runtime::Measurement>> &Measurements) {
  store::ArchiveWriter W(store::ArchiveKind::Synthesis);
  W.writeU64(Stats.Attempts);
  W.writeU64(Stats.IncompleteSamples);
  W.writeU64(Stats.RejectedByFilter);
  W.writeU64(Stats.Duplicates);
  W.writeU64(Stats.Accepted);
  W.writeU64(Kernels.size());
  for (const SynthesizedKernel &K : Kernels) {
    W.writeString(K.Source);
    store::serializeCompiledKernel(W, K.Kernel);
  }
  W.writeU64(Measurements.size());
  for (const auto &M : Measurements) {
    W.writeBool(M.ok());
    if (M.ok())
      store::serializeMeasurement(W, M.get());
    else
      W.writeString(M.errorMessage());
  }
  return W.finalize();
}

struct Workload {
  std::unique_ptr<ClgenPipeline> Pipeline;
  SynthesisOptions Synthesis;
  runtime::DriverOptions Driver;
  runtime::Platform P = runtime::amdPlatform();
  /// The phased reference this PR's engine must reproduce byte for
  /// byte: full synthesis, then a batched measurement pass.
  std::vector<SynthesizedKernel> RefKernels;
  SynthesisStats RefStats;
  std::vector<Result<runtime::Measurement>> RefMeasurements;
  std::vector<uint8_t> RefBytes;
};

Workload makeWorkload(size_t TargetKernels) {
  Workload W;
  githubsim::GithubSimOptions GOpts;
  GOpts.FileCount = 60;
  auto Files = githubsim::mineGithub(GOpts);
  PipelineOptions POpts;
  POpts.NGram.Order = 8;
  W.Pipeline = std::make_unique<ClgenPipeline>(
      ClgenPipeline::train(Files, POpts));

  W.Synthesis.TargetKernels = TargetKernels;
  W.Synthesis.MaxAttempts = 6000;
  W.Driver.GlobalSize = 2048;

  SynthesisResult SR = W.Pipeline->synthesize(W.Synthesis);
  std::vector<vm::CompiledKernel> Kernels;
  for (auto &K : SR.Kernels)
    Kernels.push_back(K.Kernel);
  W.RefMeasurements = runtime::runBenchmarkBatch(Kernels, W.P, W.Driver, 1);
  W.RefKernels = std::move(SR.Kernels);
  W.RefStats = SR.Stats;
  W.RefBytes = resultBytes(W.RefKernels, W.RefStats, W.RefMeasurements);
  return W;
}

void expectMatchesReference(const Workload &W, const StreamingResult &Out,
                            const std::string &Config) {
  EXPECT_EQ(resultBytes(Out.Kernels, Out.Stats, Out.Measurements),
            W.RefBytes)
      << "streaming output diverged from the phased path [" << Config
      << "]";
}

unsigned hardwareWorkers() {
  unsigned HW = std::thread::hardware_concurrency();
  return HW > 0 ? HW : 1;
}

uint64_t attemptsCounter() {
  const support::Counter *C =
      support::MetricsRegistry::findCounter("clgen.synthesis.attempts");
  return C ? C->value() : 0;
}

} // namespace

TEST(PipelineStreamTest, GoldenAcrossWorkerCountsAndWaveSizes) {
  Workload W = makeWorkload(/*TargetKernels=*/5);
  ASSERT_EQ(W.RefKernels.size(), 5u)
      << "workload regressed; golden comparison would be vacuous";

  // {1, 2, hardware} for both sides of the pipe, crossed with wave
  // sizes and bounded queue capacities (1 = maximal back-pressure).
  for (unsigned SynthWorkers : {1u, 2u, hardwareWorkers()}) {
    for (unsigned MeasureWorkers : {1u, 2u, hardwareWorkers()}) {
      for (size_t WaveSize : {size_t(0), size_t(4)}) {
        StreamingOptions Opts;
        Opts.Synthesis = W.Synthesis;
        Opts.Synthesis.Workers = SynthWorkers;
        Opts.Synthesis.WaveSize = WaveSize;
        Opts.Driver = W.Driver;
        Opts.MeasureWorkers = MeasureWorkers;
        Opts.QueueCapacity = 1 + (WaveSize % 3);
        auto Out = W.Pipeline->synthesizeAndMeasure(W.P, Opts);
        expectMatchesReference(
            W, Out,
            "synth=" + std::to_string(SynthWorkers) +
                " measure=" + std::to_string(MeasureWorkers) +
                " wave=" + std::to_string(WaveSize));
      }
    }
  }
}

TEST(PipelineStreamTest, GoldenWithColdAndPrewarmedCache) {
  Workload W = makeWorkload(/*TargetKernels=*/4);
  ScratchDir Dir("golden_cache");

  // Cold cache: everything misses at enqueue time, results match, and
  // the cache comes out populated.
  store::ResultCache Cache(Dir.str());
  StreamingOptions Opts;
  Opts.Synthesis = W.Synthesis;
  Opts.Driver = W.Driver;
  Opts.MeasureWorkers = 2;
  Opts.Cache = &Cache;
  auto Cold = W.Pipeline->synthesizeAndMeasure(W.P, Opts);
  expectMatchesReference(W, Cold, "cold cache");
  EXPECT_EQ(Cold.CacheStats.Hits, 0u);
  EXPECT_EQ(Cold.CacheStats.Misses, W.RefKernels.size());

  // Pre-warmed cache (fresh instance, so hits come off disk): every
  // successful measurement is resolved at enqueue time — zero
  // measurement slots occupied — and output is still byte-identical.
  size_t Successes = 0;
  for (const auto &M : W.RefMeasurements)
    Successes += M.ok() ? 1 : 0;
  store::ResultCache Warmed(Dir.str());
  Opts.Cache = &Warmed;
  auto Warm = W.Pipeline->synthesizeAndMeasure(W.P, Opts);
  expectMatchesReference(W, Warm, "pre-warmed cache");
  EXPECT_EQ(Warm.CacheStats.Hits, Successes)
      << "every cached measurement must be served at enqueue time";
  EXPECT_EQ(Warm.CacheStats.Misses, W.RefKernels.size() - Successes)
      << "only uncached (failed-last-time) kernels may reach a slot";

  // And the phased cached batch agrees with the streaming cache hits,
  // closing the loop between the two engines sharing one store.
  std::vector<vm::CompiledKernel> Kernels;
  for (auto &K : W.RefKernels)
    Kernels.push_back(K.Kernel);
  runtime::BatchCacheStats Phased;
  auto PhasedOut =
      runtime::runBenchmarkBatch(Kernels, W.P, W.Driver, 2, Warmed, &Phased);
  EXPECT_EQ(Phased.Hits, Successes);
  EXPECT_EQ(resultBytes(W.RefKernels, W.RefStats, PhasedOut), W.RefBytes);
}

TEST(PipelineStreamTest, TargetShortfallTrimsResultSlots) {
  // When MaxAttempts exhausts before the target, the streaming result
  // must trim to the accepted count and still match the phased path.
  Workload W = makeWorkload(/*TargetKernels=*/3);
  StreamingOptions Opts;
  Opts.Synthesis = W.Synthesis;
  Opts.Synthesis.TargetKernels = W.RefKernels.size() + 50;
  Opts.Synthesis.MaxAttempts = W.RefStats.Attempts; // Stop exactly there.
  Opts.Driver = W.Driver;
  Opts.MeasureWorkers = 2;
  auto Out = W.Pipeline->synthesizeAndMeasure(W.P, Opts);
  EXPECT_EQ(Out.Kernels.size(), Out.Measurements.size());
  ASSERT_EQ(Out.Kernels.size(), W.RefKernels.size());
  expectMatchesReference(W, Out, "target shortfall");
}

TEST(PipelineStreamTest, WarmStartLoadsPersistedKernelSetWithZeroSampling) {
  // The streaming-warm-start fix: a second request for the same
  // configuration must load the persisted kernel-set artifact instead
  // of re-sampling — byte-identical output, ZERO sampling performed.
  Workload W = makeWorkload(/*TargetKernels=*/3);
  ScratchDir Dir("warm_start");
  StreamingOptions Opts;
  Opts.Synthesis = W.Synthesis;
  Opts.Driver = W.Driver;

  StreamingWarmInfo ColdInfo;
  auto Cold =
      W.Pipeline->synthesizeAndMeasureOrLoad(Dir.str(), W.P, Opts, &ColdInfo);
  expectMatchesReference(W, Cold, "cold or-load");
  EXPECT_FALSE(ColdInfo.Warm);
  EXPECT_TRUE(ColdInfo.Persisted);
  EXPECT_EQ(ColdInfo.LoadedKernels, 0u);
  EXPECT_NE(ColdInfo.KeyDigest, 0u);
  ASSERT_FALSE(ColdInfo.ArtifactPath.empty());
  EXPECT_TRUE(std::filesystem::exists(ColdInfo.ArtifactPath));

  // Warm: the counter proof that no sampling happened — the synthesis
  // engine is never constructed, so clgen.synthesis.attempts must not
  // move at all.
  uint64_t Before = attemptsCounter();
  StreamingWarmInfo WarmInfo;
  auto Warm =
      W.Pipeline->synthesizeAndMeasureOrLoad(Dir.str(), W.P, Opts, &WarmInfo);
  EXPECT_EQ(attemptsCounter(), Before)
      << "warm start drew samples; the fix regressed";
  expectMatchesReference(W, Warm, "warm or-load");
  EXPECT_TRUE(WarmInfo.Warm);
  EXPECT_FALSE(WarmInfo.Persisted);
  EXPECT_EQ(WarmInfo.LoadedKernels, W.RefKernels.size());
  EXPECT_EQ(WarmInfo.KeyDigest, ColdInfo.KeyDigest);
  EXPECT_EQ(WarmInfo.ArtifactPath, ColdInfo.ArtifactPath);
  // Stats replay the archived synthesis statistics (already covered by
  // the byte comparison; spelled out for the reader).
  EXPECT_EQ(Warm.Stats.Attempts, W.RefStats.Attempts);
}

TEST(PipelineStreamTest, WarmStartInteroperatesWithSynthesizeOrLoad) {
  // The two memoizing entry points share one key and one artifact file:
  // a set persisted by synthesizeOrLoad warm-starts the streaming path,
  // and a set persisted by the streaming path is a synthesizeOrLoad hit.
  Workload W = makeWorkload(/*TargetKernels=*/3);
  StreamingOptions Opts;
  Opts.Synthesis = W.Synthesis;
  Opts.Driver = W.Driver;

  {
    ScratchDir Dir("interop_fwd");
    bool Loaded = true;
    auto SR = W.Pipeline->synthesizeOrLoad(Dir.str(), W.Synthesis, &Loaded);
    ASSERT_FALSE(Loaded);
    StreamingWarmInfo Info;
    auto Out =
        W.Pipeline->synthesizeAndMeasureOrLoad(Dir.str(), W.P, Opts, &Info);
    EXPECT_TRUE(Info.Warm) << "synthesizeOrLoad's artifact was not reused";
    EXPECT_EQ(Info.LoadedKernels, SR.Kernels.size());
    expectMatchesReference(W, Out, "warm off synthesizeOrLoad artifact");
  }
  {
    ScratchDir Dir("interop_rev");
    StreamingWarmInfo Info;
    auto Out =
        W.Pipeline->synthesizeAndMeasureOrLoad(Dir.str(), W.P, Opts, &Info);
    ASSERT_TRUE(Info.Persisted);
    expectMatchesReference(W, Out, "cold streaming persist");
    bool Loaded = false;
    auto SR = W.Pipeline->synthesizeOrLoad(Dir.str(), W.Synthesis, &Loaded);
    EXPECT_TRUE(Loaded) << "streaming artifact was not a synthesizeOrLoad hit";
    EXPECT_EQ(resultBytes(SR.Kernels, SR.Stats, W.RefMeasurements),
              W.RefBytes);
  }
}

TEST(PipelineStreamTest, RefillRequestsNeverLoadOrPersist) {
  // RefillFailures makes the delivered set a function of measurement
  // outcomes, not synthesis options alone — incompatible with the
  // kernel-set artifact. Such requests must always sample: no load, no
  // persist, even when a warm artifact for the same key exists.
  Workload W = makeWorkload(/*TargetKernels=*/3);
  ScratchDir Dir("refill_no_cache");
  StreamingOptions Opts;
  Opts.Synthesis = W.Synthesis;
  Opts.Driver = W.Driver;

  // Seed the store with a warm artifact for this exact configuration.
  StreamingWarmInfo SeedInfo;
  W.Pipeline->synthesizeAndMeasureOrLoad(Dir.str(), W.P, Opts, &SeedInfo);
  ASSERT_TRUE(SeedInfo.Persisted);

  Opts.RefillFailures = true;
  uint64_t Before = attemptsCounter();
  StreamingWarmInfo Info;
  auto Out =
      W.Pipeline->synthesizeAndMeasureOrLoad(Dir.str(), W.P, Opts, &Info);
  EXPECT_FALSE(Info.Warm) << "refill request consumed the artifact";
  EXPECT_FALSE(Info.Persisted) << "refill request persisted a kernel set";
  // Counter proof only when telemetry is compiled in (the
  // check_overhead tree builds with -DCLGS_TELEMETRY=OFF).
  if (support::MetricsRegistry::findCounter("clgen.synthesis.attempts")) {
    EXPECT_GT(attemptsCounter(), Before) << "refill request did not sample";
  }
  // Exactly-once refill accounting still holds on this path.
  EXPECT_EQ(Out.Stats.Accepted, Out.Kernels.size() + Out.Excised.size());
}

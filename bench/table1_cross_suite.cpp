//===- bench/table1_cross_suite.cpp - Table 1: cross-suite generalisation -----===//
//
// Regenerates Table 1: "Performance relative to the optimal of the Grewe
// et al. predictive model across different benchmark suites on an AMD
// GPU. The columns show the suite used for training; the rows show the
// suite used for testing."
//
// Paper shape targets: cross-suite training is generally poor; the best
// training suite (NVIDIA SDK) reaches only ~49% of optimal on average;
// the worst pair (train Parboil -> test Polybench) drops to ~11.5%.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "features/Features.h"
#include "predict/Report.h"

using namespace clgen;
using namespace clgen::bench;

int main() {
  std::printf("%s",
              sectionBanner("Table 1: cross-suite performance relative to "
                            "the oracle (AMD GPU)")
                  .c_str());

  std::printf("measuring the 7-suite catalogue on the AMD platform...\n");
  auto Catalogue = suites::buildCatalogue();
  auto Obs = suites::measureCatalogue(Catalogue, runtime::amdPlatform());
  std::printf("observations: %zu\n\n", Obs.size());

  // The grid, averages and worst pair all come from the shared renderer
  // (predict/Report.h) — the same bytes the experiment engine and the
  // golden tier produce.
  auto Names = suites::suiteNames();
  predict::Table1Stats Stats;
  std::string Report = predict::renderTable1(
      Obs, {}, Names, predict::FeatureSetKind::Grewe, predict::TreeOptions(),
      &Stats);
  std::printf("%s", Report.c_str());

  std::printf("\nModels trained: %zu. Paper reference: worst pair train "
              "Parboil -> test Polybench at 11.5%%;\nbest training suite "
              "NVIDIA SDK at 49%% average.\n",
              Stats.TreesTrained);
  std::printf("\nConclusion (paper section 2): heuristics learned on one "
              "benchmark suite\nfail to generalise across other suites.\n");

  // Table 2, for reference: the features the model trains on.
  std::printf("%s", sectionBanner("Table 2: Grewe et al. model features")
                        .c_str());
  TextTable F;
  F.setHeader({"Feature", "Description"});
  F.addRow({"comp", "static #. compute operations"});
  F.addRow({"mem", "static #. accesses to global memory"});
  F.addRow({"localmem", "static #. accesses to local memory"});
  F.addRow({"coalesced", "static #. coalesced memory accesses"});
  F.addRow({"transfer", "dynamic size of data transfers"});
  F.addRow({"wgsize", "dynamic #. work-items per kernel"});
  F.addRow({"F1: transfer/(comp+mem)", "communication-computation ratio"});
  F.addRow({"F2: coalesced/mem", "% coalesced memory accesses"});
  F.addRow({"F3: (localmem/mem)*wgsize", "local/global ratio x items"});
  F.addRow({"F4: comp/mem", "computation-memory ratio"});
  std::printf("%s", F.render().c_str());
  return 0;
}

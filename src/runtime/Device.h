//===- runtime/Device.h - Simulated CPU/GPU device models --------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analytic device models standing in for the paper's experimental
/// platforms (Table 4): an Intel Core i7-3820 CPU, an AMD Tahiti 7970 GPU
/// and an NVIDIA GTX 970 GPU. Each model maps instrumented execution
/// counters to an estimated runtime. The absolute numbers are synthetic;
/// what matters for reproducing the paper is that the first-order
/// device tradeoffs are realistic:
///
///  - GPUs amortise compute over massive parallelism but pay PCIe
///    transfer costs per byte moved;
///  - uncoalesced global accesses are disproportionately expensive on
///    GPUs, mildly relevant on CPUs;
///  - branch divergence serialises GPU wavefronts but is almost free on
///    CPUs;
///  - local memory is a GPU optimisation with no CPU benefit;
///  - kernels with too few work-items cannot saturate a GPU.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_RUNTIME_DEVICE_H
#define CLGEN_RUNTIME_DEVICE_H

#include <string>

namespace clgen {
namespace runtime {

enum class DeviceKind { Cpu, Gpu };

/// Cost-model parameters for one device. Costs are cycles per event at
/// the device frequency unless stated otherwise.
struct DeviceModel {
  std::string Name;
  DeviceKind Kind = DeviceKind::Cpu;
  double FrequencyGHz = 1.0;
  /// Effective parallel lanes (cores x SIMD on CPU; shader ALUs on GPU).
  double ParallelLanes = 1.0;
  double ComputeOpCost = 1.0;
  double MathCallCost = 4.0;
  double CoalescedAccessCost = 1.0;
  double UncoalescedAccessCost = 4.0;
  double LocalAccessCost = 1.0;
  double PrivateAccessCost = 1.0;
  double BranchCost = 1.0;
  /// Extra multiplier applied to all work when divergence is 1.0.
  double DivergencePenalty = 0.0;
  double AtomicCost = 8.0;
  double BarrierCost = 16.0;
  /// Host<->device copy bandwidth; 0 means no copies are needed (CPU).
  double TransferGBPerSec = 0.0;
  /// Fixed overhead per kernel invocation (driver stack, enqueue).
  double LaunchOverheadUs = 0.0;

  bool isGpu() const { return Kind == DeviceKind::Gpu; }
};

/// Table 4: Intel Core i7-3820 (4 cores, 3.6 GHz, 105 GFLOPS).
DeviceModel intelI7_3820();
/// Table 4: AMD Tahiti 7970 (2048 cores, 1000 MHz, 3.79 TFLOPS).
DeviceModel amdTahiti7970();
/// Table 4: NVIDIA GTX 970 (1664 cores, 1050 MHz, 3.90 TFLOPS).
DeviceModel nvidiaGtx970();

/// The two CPU-GPU systems of the paper: {CPU, AMD} and {CPU, NVIDIA}.
struct Platform {
  std::string Name;
  DeviceModel Cpu;
  DeviceModel Gpu;
};
Platform amdPlatform();
Platform nvidiaPlatform();

} // namespace runtime
} // namespace clgen

#endif // CLGEN_RUNTIME_DEVICE_H

//===- model/Vocabulary.cpp - Character vocabulary -----------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "model/Vocabulary.h"

#include "store/Archive.h"

using namespace clgen;
using namespace clgen::model;

Vocabulary Vocabulary::fromText(const std::string &Corpus) {
  Vocabulary V;
  bool Seen[256] = {false};
  for (char C : Corpus) {
    auto U = static_cast<unsigned char>(C);
    if (C != '\0' && !Seen[U]) {
      Seen[U] = true;
      V.IdByChar[U] = static_cast<int>(V.Chars.size());
      V.Chars.push_back(C);
    }
  }
  return V;
}

int Vocabulary::idOf(char C) const {
  return IdByChar[static_cast<unsigned char>(C)];
}

char Vocabulary::charOf(int Id) const {
  if (Id <= 0 || static_cast<size_t>(Id) >= Chars.size())
    return '\0';
  return Chars[Id];
}

std::vector<int> Vocabulary::encode(const std::string &Text) const {
  std::vector<int> Ids;
  Ids.reserve(Text.size());
  for (char C : Text)
    Ids.push_back(idOf(C));
  return Ids;
}

void Vocabulary::serialize(store::ArchiveWriter &W) const {
  W.writeString(std::string_view(Chars.data() + 1, Chars.size() - 1));
}

Vocabulary Vocabulary::deserialize(store::ArchiveReader &R) {
  std::string Stored = R.readString();
  Vocabulary V;
  for (char C : Stored) {
    auto U = static_cast<unsigned char>(C);
    if (C == '\0' || V.IdByChar[U] != 0) {
      R.fail("malformed vocabulary: duplicate or sentinel character");
      return Vocabulary();
    }
    V.IdByChar[U] = static_cast<int>(V.Chars.size());
    V.Chars.push_back(C);
  }
  return V;
}

std::string Vocabulary::decode(const std::vector<int> &Ids) const {
  std::string Text;
  Text.reserve(Ids.size());
  for (int Id : Ids) {
    if (Id == EndOfText)
      break;
    Text += charOf(Id);
  }
  return Text;
}

//===- tests/store/LifecycleTest.cpp - store lifecycle hardening --------------===//
//
// The crash/corruption harness for the store lifecycle engine
// (store/Lifecycle.h, store/Lock.h): sweep byte budgets and LRU order,
// kill-point injection at every mutating stage, every-byte corruption
// fuzz over manifests and entries, quarantine (never delete)
// semantics, advisory-lock behavior, the ResultCache external-eviction
// regression, and byte-stable golden output for the `clgen-store` CLI
// formatters.
//
// The two invariants everything here hammers on:
//   1. a sweep interrupted at ANY point leaves a readable store and
//      never loses an entry the completed sweep would have kept;
//   2. artifacts that survive a sweep are bit-identical to themselves
//      before it.
//
//===----------------------------------------------------------------------===//

#include "store/Lifecycle.h"

#include "store/Archive.h"
#include "store/Lock.h"
#include "store/ResultCache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

using namespace clgen;
using namespace clgen::store;

namespace fs = std::filesystem;

namespace {

class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name)
      : Path(fs::temp_directory_path() /
             ("clgen_lifecycle_test_" + Name)) {
    fs::remove_all(Path);
    fs::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
  std::string file(const std::string &Name) const {
    return (Path / Name).string();
  }
  std::string str() const { return Path.string(); }

private:
  fs::path Path;
};

std::vector<uint8_t> loadBytes(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  EXPECT_TRUE(readFileBytes(Path, Bytes)) << Path;
  return Bytes;
}

void storeBytes(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
}

/// Deterministic mtime for LRU tests: Index seconds past a fixed epoch
/// offset, so entry age order is exactly the index order.
void setMtime(const std::string &Path, int Index) {
  fs::file_time_type T(std::chrono::seconds(1700000000 + Index * 60));
  std::error_code Ec;
  fs::last_write_time(Path, T, Ec);
  ASSERT_FALSE(static_cast<bool>(Ec)) << Path;
}

/// Writes one deterministic measurement-kind entry of roughly
/// \p PayloadBytes payload to \p Path and pins its mtime to \p Index.
void seedEntry(const std::string &Path, int Index, size_t PayloadBytes) {
  ArchiveWriter W(ArchiveKind::Measurement);
  for (size_t I = 0; I < PayloadBytes; ++I)
    W.writeU8(static_cast<uint8_t>((I * 31 + Index * 7) & 0xFF));
  ASSERT_TRUE(W.saveTo(Path).ok()) << Path;
  setMtime(Path, Index);
}

/// The canonical seeded store of these tests: five valid entries of
/// known sizes (ages = index order; e0 oldest), one nested under a
/// subdirectory, plus noise the scanner must ignore.
///   payload 100 -> file size 128 (20 header + payload + 8 trailer).
struct SeededStore {
  std::vector<std::string> Names;
  std::vector<uint64_t> Sizes;
};

SeededStore seedStore(const std::string &Dir) {
  SeededStore S;
  S.Names = {"e0-old.clgs", "e1.clgs", "e2.clgs", "results/e3.clgs",
             "e4-new.clgs"};
  size_t Payloads[] = {100, 200, 300, 150, 250};
  fs::create_directories(fs::path(Dir) / "results");
  for (size_t I = 0; I < S.Names.size(); ++I) {
    seedEntry(Dir + "/" + S.Names[I], static_cast<int>(I), Payloads[I]);
    S.Sizes.push_back(Payloads[I] + 28);
  }
  // Noise: reserved dirs, temp leftovers, non-archive files.
  fs::create_directories(fs::path(Dir) / "locks");
  storeBytes(Dir + "/locks/train-0.lock", {});
  storeBytes(Dir + "/notes.txt", {'h', 'i'});
  storeBytes(Dir + "/e9.clgs.tmp.deadbeef", {1, 2, 3});
  return S;
}

std::map<std::string, std::vector<uint8_t>>
snapshotEntries(const std::string &Dir) {
  std::map<std::string, std::vector<uint8_t>> Out;
  auto Entries = scanStore(Dir);
  EXPECT_TRUE(Entries.ok());
  for (const EntryInfo &E : Entries.get())
    Out[E.RelPath] = loadBytes(Dir + "/" + E.RelPath);
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Scanning
//===----------------------------------------------------------------------===//

TEST(LifecycleTest, ScanFindsEntriesSortedAndSkipsNoise) {
  ScratchDir Dir("scan");
  SeededStore S = seedStore(Dir.str());
  // A manifest and quarantined files must not show up as entries.
  SweepPolicy P;
  ASSERT_TRUE(sweep(Dir.str(), P).ok()); // Publishes a manifest.
  fs::create_directories(fs::path(Dir.str()) / "quarantine");
  storeBytes(Dir.str() + "/quarantine/old-corrupt.clgs", {9, 9, 9});

  auto Entries = scanStore(Dir.str());
  ASSERT_TRUE(Entries.ok());
  ASSERT_EQ(Entries.get().size(), 5u);
  std::vector<std::string> Sorted = S.Names;
  std::sort(Sorted.begin(), Sorted.end());
  for (size_t I = 0; I < Sorted.size(); ++I) {
    EXPECT_EQ(Entries.get()[I].RelPath, Sorted[I]);
    EXPECT_TRUE(Entries.get()[I].Valid);
    EXPECT_EQ(Entries.get()[I].Kind,
              static_cast<uint32_t>(ArchiveKind::Measurement));
  }
}

TEST(LifecycleTest, ScanFailsOnMissingDirectory) {
  EXPECT_FALSE(scanStore("/nonexistent/clgen/nowhere").ok());
}

//===----------------------------------------------------------------------===//
// Sweep: budget, LRU order, byte identity
//===----------------------------------------------------------------------===//

TEST(LifecycleTest, SweepEvictsLruDownToByteBudgetAndKeepsBytesIdentical) {
  ScratchDir Dir("budget");
  SeededStore S = seedStore(Dir.str());
  auto Before = snapshotEntries(Dir.str());
  uint64_t Total = 0;
  for (uint64_t Sz : S.Sizes)
    Total += Sz;

  // Budget forces out the two oldest entries (e0: 128, e1: 228) and
  // nothing else: 1140 total, keep 784 = e2+e3+e4.
  SweepPolicy P;
  P.MaxBytes = Total - S.Sizes[0] - S.Sizes[1];
  auto R = sweep(Dir.str(), P);
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_FALSE(R.get().Interrupted);
  EXPECT_EQ(R.get().EvictedCount, 2u);
  EXPECT_EQ(R.get().EvictedBytes, S.Sizes[0] + S.Sizes[1]);
  EXPECT_EQ(R.get().KeptCount, 3u);
  EXPECT_LE(R.get().KeptBytes, P.MaxBytes);
  EXPECT_EQ(R.get().QuarantinedCount, 0u);

  EXPECT_FALSE(fs::exists(Dir.file("e0-old.clgs")));
  EXPECT_FALSE(fs::exists(Dir.file("e1.clgs")));
  // Survivors are bit-identical to their pre-sweep selves.
  for (const char *Name : {"e2.clgs", "results/e3.clgs", "e4-new.clgs"})
    EXPECT_EQ(loadBytes(Dir.str() + "/" + Name), Before.at(Name)) << Name;

  // The manifest records exactly the surviving set.
  auto M = loadManifest(Dir.str());
  ASSERT_TRUE(M.ok()) << M.errorMessage();
  EXPECT_EQ(M.get().SweepId, R.get().SweepId);
  EXPECT_EQ(M.get().KeptBytes, R.get().KeptBytes);
  ASSERT_EQ(M.get().Entries.size(), 3u);
  EXPECT_EQ(M.get().Entries[0].RelPath, "e2.clgs");
  EXPECT_EQ(M.get().Entries[1].RelPath, "e4-new.clgs");
  EXPECT_EQ(M.get().Entries[2].RelPath, "results/e3.clgs");

  // Idempotence: a second sweep under the same budget changes nothing.
  auto R2 = sweep(Dir.str(), P);
  ASSERT_TRUE(R2.ok());
  EXPECT_EQ(R2.get().EvictedCount, 0u);
  EXPECT_EQ(R2.get().SweepId, R.get().SweepId);
}

TEST(LifecycleTest, SweepWithoutBudgetEvictsNothing) {
  ScratchDir Dir("nobudget");
  seedStore(Dir.str());
  auto Before = snapshotEntries(Dir.str());
  SweepPolicy P; // MaxBytes = 0: validate + quarantine only.
  auto R = sweep(Dir.str(), P);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.get().EvictedCount, 0u);
  EXPECT_EQ(R.get().KeptCount, 5u);
  EXPECT_EQ(snapshotEntries(Dir.str()), Before);
}

TEST(LifecycleTest, SweepDryRunPlansButTouchesNothing) {
  ScratchDir Dir("dryrun");
  seedStore(Dir.str());
  // Corrupt one entry so the plan includes a quarantine too.
  auto Bytes = loadBytes(Dir.file("e1.clgs"));
  Bytes[Bytes.size() / 2] ^= 0x40;
  storeBytes(Dir.file("e1.clgs"), Bytes);
  setMtime(Dir.file("e1.clgs"), 1);
  auto Before = snapshotEntries(Dir.str());

  SweepPolicy P;
  P.MaxBytes = 400;
  P.DryRun = true;
  auto R = sweep(Dir.str(), P);
  ASSERT_TRUE(R.ok());
  EXPECT_GT(R.get().EvictedCount, 0u);
  EXPECT_EQ(R.get().QuarantinedCount, 1u);
  // ... but the store is untouched: same files, same bytes, no
  // manifest, no quarantine directory.
  EXPECT_EQ(snapshotEntries(Dir.str()), Before);
  EXPECT_FALSE(fs::exists(Dir.str() + "/" + ManifestFileName));
  EXPECT_FALSE(fs::exists(Dir.str() + "/quarantine"));
}

TEST(LifecycleTest, SweepQuarantinesCorruptEntriesWithBytesPreserved) {
  ScratchDir Dir("quarantine");
  seedStore(Dir.str());
  auto Corrupted = loadBytes(Dir.file("results/e3.clgs"));
  Corrupted[25] ^= 0xFF; // Payload byte: checksum mismatch.
  storeBytes(Dir.file("results/e3.clgs"), Corrupted);
  setMtime(Dir.file("results/e3.clgs"), 3);

  SweepPolicy P;
  auto R = sweep(Dir.str(), P);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.get().QuarantinedCount, 1u);
  EXPECT_FALSE(fs::exists(Dir.file("results/e3.clgs")));
  // Parked, not deleted — and the evidence bytes are exactly the
  // corrupt input (quarantine never rewrites).
  std::string Parked = Dir.str() + "/quarantine/results__e3.clgs";
  ASSERT_TRUE(fs::exists(Parked));
  EXPECT_EQ(loadBytes(Parked), Corrupted);
  EXPECT_EQ(quarantineCount(Dir.str()), 1u);

  // A second corrupt file with the same relative name gets a suffixed
  // slot instead of overwriting the first.
  seedEntry(Dir.file("results/e3.clgs"), 3, 150);
  auto Corrupted2 = loadBytes(Dir.file("results/e3.clgs"));
  Corrupted2[30] ^= 0x01;
  storeBytes(Dir.file("results/e3.clgs"), Corrupted2);
  ASSERT_TRUE(sweep(Dir.str(), P).ok());
  EXPECT_EQ(quarantineCount(Dir.str()), 2u);
  EXPECT_EQ(loadBytes(Parked), Corrupted); // First evidence untouched.
}

//===----------------------------------------------------------------------===//
// Crash injection: every kill-point leaves a readable store
//===----------------------------------------------------------------------===//

TEST(LifecycleTest, SweepInterruptedAtEveryKillPointLeavesReadableStore) {
  // Reference run: seed, corrupt one entry, sweep to completion while
  // recording every stage the sweep passes through.
  std::vector<std::string> Stages;
  std::map<std::string, std::vector<uint8_t>> ReferenceFinal;
  uint64_t ReferenceSweepId = 0;
  auto Seed = [](const std::string &Dir) {
    SeededStore S = seedStore(Dir);
    std::vector<uint8_t> Bytes;
    EXPECT_TRUE(readFileBytes(Dir + "/e2.clgs", Bytes));
    Bytes[22] ^= 0x80;
    storeBytes(Dir + "/e2.clgs", Bytes);
    fs::file_time_type T(std::chrono::seconds(1700000000 + 2 * 60));
    std::error_code Ec;
    fs::last_write_time(Dir + "/e2.clgs", T, Ec);
    return S;
  };
  SweepPolicy Budgeted;
  Budgeted.MaxBytes = 650; // Forces LRU evictions on top of quarantine.
  {
    ScratchDir Ref("killpoints_ref");
    Seed(Ref.str());
    SweepPolicy Recording = Budgeted;
    Recording.KillSwitch = [&Stages](const std::string &Stage) {
      Stages.push_back(Stage);
      return true;
    };
    auto R = sweep(Ref.str(), Recording);
    ASSERT_TRUE(R.ok());
    ASSERT_FALSE(R.get().Interrupted);
    ReferenceSweepId = R.get().SweepId;
    ReferenceFinal = snapshotEntries(Ref.str());
  }
  // The recorded schedule must cover every stage class.
  ASSERT_GE(Stages.size(), 5u);
  EXPECT_EQ(Stages.front(), "scan");
  EXPECT_EQ(Stages.back(), "done");
  EXPECT_NE(std::find_if(Stages.begin(), Stages.end(),
                         [](const std::string &S) {
                           return S.rfind("quarantine:", 0) == 0;
                         }),
            Stages.end());
  EXPECT_NE(std::find_if(Stages.begin(), Stages.end(),
                         [](const std::string &S) {
                           return S.rfind("evict:", 0) == 0;
                         }),
            Stages.end());

  // Crash at every stage, then assert the store survived and a re-run
  // converges to the reference final state.
  for (size_t Kill = 0; Kill < Stages.size(); ++Kill) {
    ScratchDir Dir("killpoints_" + std::to_string(Kill));
    Seed(Dir.str());
    auto PreCrash = snapshotEntries(Dir.str());

    SweepPolicy Crashing = Budgeted;
    size_t Step = 0;
    Crashing.KillSwitch = [&Step, Kill](const std::string &) {
      return Step++ != Kill;
    };
    auto Crashed = sweep(Dir.str(), Crashing);
    ASSERT_TRUE(Crashed.ok()) << "kill at " << Stages[Kill];
    ASSERT_TRUE(Crashed.get().Interrupted) << "kill at " << Stages[Kill];
    ASSERT_EQ(Crashed.get().InterruptedAt, Stages[Kill]);

    // (1) The store is readable: scanning works and every entry the
    // reference sweep kept is present, valid, and bit-identical.
    auto Entries = scanStore(Dir.str());
    ASSERT_TRUE(Entries.ok()) << "kill at " << Stages[Kill];
    for (const auto &[Rel, Bytes] : ReferenceFinal) {
      EXPECT_EQ(loadBytes(Dir.str() + "/" + Rel), Bytes)
          << "live entry lost/changed by crash at " << Stages[Kill];
    }
    // (2) Anything still present is exactly a pre-crash file, bit for
    // bit: an interrupted sweep removes/moves whole files but never
    // rewrites one.
    for (const EntryInfo &E : Entries.get()) {
      auto It = PreCrash.find(E.RelPath);
      ASSERT_NE(It, PreCrash.end()) << E.RelPath;
      EXPECT_EQ(loadBytes(Dir.str() + "/" + E.RelPath), It->second)
          << "crash at " << Stages[Kill];
    }
    // (3) Re-running the sweep converges to the reference final state.
    auto Finish = sweep(Dir.str(), Budgeted);
    ASSERT_TRUE(Finish.ok());
    EXPECT_FALSE(Finish.get().Interrupted);
    EXPECT_EQ(Finish.get().SweepId, ReferenceSweepId)
        << "recovery diverged after crash at " << Stages[Kill];
    EXPECT_EQ(snapshotEntries(Dir.str()), ReferenceFinal)
        << "recovery diverged after crash at " << Stages[Kill];
    auto M = loadManifest(Dir.str());
    ASSERT_TRUE(M.ok());
    EXPECT_EQ(M.get().SweepId, ReferenceSweepId);
  }
}

//===----------------------------------------------------------------------===//
// Corruption fuzz: manifests and entries
//===----------------------------------------------------------------------===//

TEST(LifecycleTest, ManifestEveryByteFlipAndTruncationIsDetected) {
  ScratchDir Dir("manifest_fuzz");
  seedStore(Dir.str());
  SweepPolicy P;
  ASSERT_TRUE(sweep(Dir.str(), P).ok());
  std::string Path = Dir.str() + "/" + ManifestFileName;
  std::vector<uint8_t> Good = loadBytes(Path);
  ASSERT_TRUE(loadManifest(Dir.str()).ok());

  for (size_t I = 0; I < Good.size(); ++I) {
    std::vector<uint8_t> Bad = Good;
    Bad[I] ^= 0xFF;
    storeBytes(Path, Bad);
    EXPECT_FALSE(loadManifest(Dir.str()).ok())
        << "flip at byte " << I << " went undetected";
  }
  for (size_t Len = 0; Len < Good.size(); ++Len) {
    std::vector<uint8_t> Bad(Good.begin(), Good.begin() + Len);
    storeBytes(Path, Bad);
    EXPECT_FALSE(loadManifest(Dir.str()).ok())
        << "truncation to " << Len << " bytes went undetected";
  }

  // A corrupt manifest never blocks the lifecycle: the next sweep
  // replans from a fresh scan and republishes a valid manifest.
  storeBytes(Path, {0xDE, 0xAD});
  auto R = sweep(Dir.str(), P);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(loadManifest(Dir.str()).ok());
}

TEST(LifecycleTest, EntryEveryByteFlipAndTruncationIsDetected) {
  ScratchDir Dir("entry_fuzz");
  seedEntry(Dir.file("entry.clgs"), 0, 64);
  std::string Path = Dir.file("entry.clgs");
  std::vector<uint8_t> Good = loadBytes(Path);
  ASSERT_TRUE(inspectArchive(Path).ok());

  // Every single-byte flip must fail container validation — the header
  // fields are each checked and the payload + trailer are covered by
  // the checksum, so there is no unprotected byte to hide in.
  for (size_t I = 0; I < Good.size(); ++I) {
    std::vector<uint8_t> Bad = Good;
    Bad[I] ^= 0xFF;
    storeBytes(Path, Bad);
    EXPECT_FALSE(inspectArchive(Path).ok())
        << "flip at byte " << I << " went undetected by verify";
  }
  for (size_t Len = 0; Len < Good.size(); ++Len) {
    std::vector<uint8_t> Bad(Good.begin(), Good.begin() + Len);
    storeBytes(Path, Bad);
    EXPECT_FALSE(inspectArchive(Path).ok())
        << "truncation to " << Len << " bytes went undetected";
  }

  // And gc quarantines (never deletes) what verify flags: sample a
  // handful of corruptions through the full sweep path.
  for (size_t I = 0; I < Good.size(); I += 13) {
    ScratchDir Sub("entry_fuzz_gc_" + std::to_string(I));
    seedStore(Sub.str());
    std::vector<uint8_t> Bad = Good;
    Bad[I] ^= 0xFF;
    storeBytes(Sub.file("bad.clgs"), Bad);
    setMtime(Sub.file("bad.clgs"), 9);
    SweepPolicy P;
    auto R = sweep(Sub.str(), P);
    ASSERT_TRUE(R.ok());
    EXPECT_EQ(R.get().QuarantinedCount, 1u) << "flip at " << I;
    EXPECT_FALSE(fs::exists(Sub.file("bad.clgs")));
    EXPECT_EQ(loadBytes(Sub.str() + "/quarantine/bad.clgs"), Bad)
        << "quarantine must preserve the corrupt bytes, flip at " << I;
  }
}

TEST(LifecycleTest, HeldLockDoesNotShieldCorruptEntryFromQuarantine) {
  // "Locked" state is advisory and lives in locks/, never on entries:
  // a corrupt entry is quarantined even while a writer holds the
  // store's locks, and the lock files themselves are never scanned.
  ScratchDir Dir("locked_fuzz");
  seedStore(Dir.str());
  auto Held = ScopedLock::acquire(lockFilePath(Dir.str(), "train", 42));
  ASSERT_TRUE(Held.ok());
  auto Bytes = loadBytes(Dir.file("e4-new.clgs"));
  Bytes[Bytes.size() - 3] ^= 0x10; // Trailer byte.
  storeBytes(Dir.file("e4-new.clgs"), Bytes);
  setMtime(Dir.file("e4-new.clgs"), 4);

  SweepPolicy P;
  auto R = sweep(Dir.str(), P);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.get().QuarantinedCount, 1u);
  EXPECT_EQ(loadBytes(Dir.str() + "/quarantine/e4-new.clgs"), Bytes);
  // The held lock file survived the sweep untouched.
  EXPECT_TRUE(fs::exists(lockFilePath(Dir.str(), "train", 42)));
}

//===----------------------------------------------------------------------===//
// Advisory locks
//===----------------------------------------------------------------------===//

TEST(LifecycleTest, ScopedLockExcludesAndReleases) {
  ScratchDir Dir("locks");
  std::string Path = lockFilePath(Dir.str(), "train", 7);

  auto First = ScopedLock::tryAcquire(Path);
  ASSERT_TRUE(First.ok());
  EXPECT_TRUE(First.get().held());

  // Contended: immediate tryAcquire fails, bounded wait times out.
  EXPECT_FALSE(ScopedLock::tryAcquire(Path).ok());
  LockOptions Short;
  Short.Timeout = std::chrono::milliseconds(50);
  Short.PollInterval = std::chrono::milliseconds(5);
  auto Waited = ScopedLock::acquire(Path, Short);
  EXPECT_FALSE(Waited.ok());

  // Release frees the lock for the next acquirer; the lock file stays
  // (holders never unlink — pruning abandoned files is vacuum's job).
  First.get().release();
  EXPECT_FALSE(First.get().held());
  auto Second = ScopedLock::tryAcquire(Path);
  EXPECT_TRUE(Second.ok());
  EXPECT_TRUE(fs::exists(Path));

  // Distinct keys never contend.
  auto Other = ScopedLock::tryAcquire(lockFilePath(Dir.str(), "train", 8));
  EXPECT_TRUE(Other.ok());
}

TEST(LifecycleTest, LockAcquireFailsFastWhenLockFileIsUnopenable) {
  // An unopenable lock file (here: the parent path is a regular file,
  // as on a read-only store) is a permanent failure, not contention —
  // acquire must fail immediately instead of polling out its timeout,
  // or every cold miss on such a store would hang for the full wait.
  ScratchDir Dir("lock_unopenable");
  storeBytes(Dir.file("blocker"), {1});
  std::string Path = Dir.file("blocker") + "/locks/train-00.lock";
  auto Start = std::chrono::steady_clock::now();
  auto R = ScopedLock::acquire(Path); // Default timeout: 60 s.
  auto Elapsed = std::chrono::steady_clock::now() - Start;
  EXPECT_FALSE(R.ok());
  EXPECT_LT(Elapsed, std::chrono::seconds(5))
      << "non-contention lock failure must not wait out the timeout";
  // And the best-effort wrapper folds it into an unheld lock.
  EXPECT_FALSE(ScopedLock::acquireForMiss(Path).held());
}

TEST(LifecycleTest, ScopedLockMoveTransfersOwnership) {
  ScratchDir Dir("lock_move");
  std::string Path = lockFilePath(Dir.str(), "batch", 1);
  auto R = ScopedLock::tryAcquire(Path);
  ASSERT_TRUE(R.ok());
  ScopedLock Moved = R.take();
  EXPECT_TRUE(Moved.held());
  EXPECT_FALSE(ScopedLock::tryAcquire(Path).ok());
  ScopedLock Assigned;
  Assigned = std::move(Moved);
  EXPECT_TRUE(Assigned.held());
  EXPECT_FALSE(ScopedLock::tryAcquire(Path).ok());
  Assigned.release();
  EXPECT_TRUE(ScopedLock::tryAcquire(Path).ok());
}

//===----------------------------------------------------------------------===//
// ResultCache vs external sweep (regression)
//===----------------------------------------------------------------------===//

TEST(LifecycleTest, ResultCacheDropsMemoryEntriesEvictedByExternalSweep) {
  // Regression: the in-memory front used to keep serving entries an
  // external `store::sweep`/`clgen-store gc` had already evicted on
  // disk, so a long-lived process reported hits for artifacts the
  // store no longer held.
  ScratchDir Dir("cache_sweep");
  ResultCache Cache(Dir.str());
  runtime::Measurement M;
  M.CpuTime = 0.25;
  M.GpuTime = 0.5;
  M.Counters.Instructions = 777;
  ASSERT_TRUE(Cache.store(0xABCDEF, M).ok());
  ASSERT_TRUE(Cache.lookup(0xABCDEF).has_value()); // Memory hit.

  // External process sweeps the directory down to nothing.
  SweepPolicy P;
  P.MaxBytes = 1;
  auto R = sweep(Dir.str(), P);
  ASSERT_TRUE(R.ok());
  ASSERT_EQ(R.get().EvictedCount, 1u);

  // The live cache instance must notice: honest miss, not a stale hit.
  EXPECT_FALSE(Cache.lookup(0xABCDEF).has_value());
  EXPECT_GE(Cache.stats().StaleMemoryEntries, 1u);

  // Re-storing resurrects the key for both memory and disk.
  ASSERT_TRUE(Cache.store(0xABCDEF, M).ok());
  auto Hit = Cache.lookup(0xABCDEF);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Counters.Instructions, 777u);
}

TEST(LifecycleTest, ResultCacheMemoryOnlyEntriesSurviveWithoutDiskBacking) {
  // Entries that never reached disk (unwritable directory) are exempt
  // from revalidation: the memory front still works, exactly the
  // pre-lifecycle degradation contract. An uncreatable directory even
  // for root: its parent path is a regular file.
  ScratchDir Dir("cache_memonly");
  storeBytes(Dir.file("blocker"), {1});
  ResultCache Cache(Dir.file("blocker") + "/cache");
  ASSERT_FALSE(Cache.directoryOk());
  runtime::Measurement M;
  M.CpuTime = 1.5;
  EXPECT_FALSE(Cache.store(0x11, M).ok()); // Disk write fails...
  auto Hit = Cache.lookup(0x11);           // ...memory still serves.
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->CpuTime, 1.5);
}

//===----------------------------------------------------------------------===//
// CLI golden output (byte-stable)
//===----------------------------------------------------------------------===//

namespace {

/// Renders the three golden surfaces over a store directory exactly
/// the way the `clgen-store` subcommands do.
struct CliSurfaces {
  std::string Ls, Stat, Verify, GcDryRun;
};

CliSurfaces renderCli(const std::string &Dir, uint64_t GcBudget) {
  CliSurfaces Out;
  auto Entries = scanStore(Dir);
  EXPECT_TRUE(Entries.ok());
  Out.Ls = formatLs(Entries.get());
  auto M = loadManifest(Dir);
  Out.Stat = formatStat(Entries.get(), quarantineCount(Dir),
                        M.ok() ? &M.get() : nullptr);
  Out.Verify = formatVerify(Entries.get());
  SweepPolicy P;
  P.MaxBytes = GcBudget;
  P.DryRun = true;
  auto R = sweep(Dir, P);
  EXPECT_TRUE(R.ok());
  Out.GcDryRun = formatSweepReport(R.get(), /*DryRun=*/true);
  return Out;
}

} // namespace

TEST(LifecycleTest, CliOutputIsByteStableAcrossRuns) {
  // Two independently seeded, identical stores must render identical
  // bytes on every surface: no timestamps, no absolute paths, no
  // iteration-order leakage.
  ScratchDir A("golden_a"), B("golden_b");
  seedStore(A.str());
  seedStore(B.str());
  CliSurfaces SA = renderCli(A.str(), 700);
  CliSurfaces SB = renderCli(B.str(), 700);
  EXPECT_EQ(SA.Ls, SB.Ls);
  EXPECT_EQ(SA.Stat, SB.Stat);
  EXPECT_EQ(SA.Verify, SB.Verify);
  EXPECT_EQ(SA.GcDryRun, SB.GcDryRun);

  // Spot-check the shape the docs promise.
  EXPECT_NE(SA.Ls.find("measurement"), std::string::npos);
  EXPECT_NE(SA.Ls.find("results/e3.clgs"), std::string::npos);
  EXPECT_NE(SA.Ls.find("5 entries"), std::string::npos);
  EXPECT_NE(SA.Stat.find("manifest:    none"), std::string::npos);
  EXPECT_NE(SA.Verify.find("verify: 5 entries, 5 ok, 0 corrupt"),
            std::string::npos);
  EXPECT_NE(SA.GcDryRun.find("gc (dry-run):"), std::string::npos);
  EXPECT_NE(SA.GcDryRun.find("evict"), std::string::npos);

  // And after a real sweep the stat surface stays byte-stable too
  // (the manifest's sweep id is content-derived, not time-derived).
  SweepPolicy P;
  P.MaxBytes = 700;
  ASSERT_TRUE(sweep(A.str(), P).ok());
  ASSERT_TRUE(sweep(B.str(), P).ok());
  CliSurfaces PA = renderCli(A.str(), 700);
  CliSurfaces PB = renderCli(B.str(), 700);
  EXPECT_EQ(PA.Stat, PB.Stat);
  EXPECT_NE(PA.Stat.find("manifest:    sweep"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Vacuum
//===----------------------------------------------------------------------===//

TEST(LifecycleTest, VacuumPurgesQuarantineTempAndLocksButNeverEntries) {
  ScratchDir Dir("vacuum");
  seedStore(Dir.str());
  auto Before = snapshotEntries(Dir.str());
  // Park one corrupt file, leave a stale temp and a lock file around.
  auto Bytes = loadBytes(Dir.file("e0-old.clgs"));
  Bytes[21] ^= 0x04;
  storeBytes(Dir.file("e0-old.clgs"), Bytes);
  setMtime(Dir.file("e0-old.clgs"), 0);
  SweepPolicy P;
  ASSERT_TRUE(sweep(Dir.str(), P).ok());
  ASSERT_EQ(quarantineCount(Dir.str()), 1u);
  { ASSERT_TRUE(ScopedLock::tryAcquire(lockFilePath(Dir.str(), "gc", 1)).ok()); }

  auto R = vacuum(Dir.str());
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_EQ(R.get().QuarantineRemoved, 1u);
  EXPECT_GE(R.get().TempRemoved, 1u);  // The seeded .tmp. file.
  EXPECT_GE(R.get().LocksRemoved, 2u); // Seed noise + the gc lock.
  EXPECT_EQ(quarantineCount(Dir.str()), 0u);

  // Entries and the manifest are untouched.
  Before.erase("e0-old.clgs"); // Quarantined by the sweep above.
  auto After = snapshotEntries(Dir.str());
  EXPECT_EQ(After, Before);
  EXPECT_TRUE(loadManifest(Dir.str()).ok());
}

TEST(LifecycleTest, VacuumSkipsHeldLocks) {
  // Vacuum is live-safe: a lock file another holder owns is skipped
  // (reported, not deleted), so a racing acquirer can never flock a
  // fresh inode alongside the live holder. Free locks are still
  // pruned in the same pass.
  ScratchDir Dir("vacuum_live");
  std::string HeldPath = lockFilePath(Dir.str(), "synthesis", 1);
  std::string FreePath = lockFilePath(Dir.str(), "synthesis", 2);
  auto Holder = ScopedLock::tryAcquire(HeldPath);
  ASSERT_TRUE(Holder.ok());
  { ASSERT_TRUE(ScopedLock::tryAcquire(FreePath).ok()); } // Released.

  auto R = vacuum(Dir.str());
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_EQ(R.get().LocksRemoved, 1u);
  EXPECT_EQ(R.get().LocksSkipped, 1u);
  EXPECT_TRUE(fs::exists(HeldPath)) << "held lock must survive vacuum";
  EXPECT_FALSE(fs::exists(FreePath));
  // The survivor is still the SAME lock: the holder keeps excluding.
  EXPECT_FALSE(ScopedLock::tryAcquire(HeldPath).ok());

  // Once released, the next vacuum prunes it.
  Holder.get().release();
  auto R2 = vacuum(Dir.str());
  ASSERT_TRUE(R2.ok());
  EXPECT_EQ(R2.get().LocksRemoved, 1u);
  EXPECT_EQ(R2.get().LocksSkipped, 0u);
  EXPECT_FALSE(fs::exists(HeldPath));
}

//===- model/LanguageModel.h - Generative LM interface -----------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contract shared by the project's two character-level language
/// models (LSTM and interpolated n-gram): a stateful generator that is
/// advanced one token at a time and queried for the distribution over the
/// next token. The sampler (Algorithm 1) is written against this
/// interface only.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_MODEL_LANGUAGEMODEL_H
#define CLGEN_MODEL_LANGUAGEMODEL_H

#include "model/Vocabulary.h"

#include <memory>
#include <vector>

namespace clgen {
namespace model {

class LanguageModel {
public:
  virtual ~LanguageModel();

  /// The vocabulary this model emits over.
  virtual const Vocabulary &vocabulary() const = 0;

  /// Clears generation state (fresh sequence).
  virtual void reset() = 0;

  /// Advances the generation state with an observed token.
  virtual void observe(int TokenId) = 0;

  /// Probability distribution over the next token given the state; sums
  /// to 1 and has vocabulary().size() entries.
  virtual std::vector<double> nextDistribution() = 0;

  /// Allocation-free variant for sampling hot loops: writes the next
  /// distribution into \p Dist (resized to vocabulary().size()).
  /// Subclasses override this to avoid building a fresh vector per
  /// token; the default delegates to nextDistribution().
  virtual void nextDistributionInto(std::vector<double> &Dist);

  /// Returns an independent deep copy carrying the trained parameters
  /// (generation state need not be preserved). Parallel samplers give
  /// each worker its own clone so stateful generation never shares
  /// mutable state across threads. Returns nullptr when the model is not
  /// cloneable, in which case callers must fall back to serial sampling.
  virtual std::unique_ptr<LanguageModel> clone() const { return nullptr; }

  /// Stable identifier of the concrete backend ("ngram", "lstm"), used
  /// as the dispatch tag by the artifact store's polymorphic model
  /// serialization (store/Serialization.h) and in pipeline cache
  /// fingerprints. Backends without serialization support keep the
  /// default and are rejected by store::saveModel.
  virtual const char *backendName() const { return "unknown"; }

  /// Convenience: feed a whole string.
  void observeText(const std::string &Text);

  /// Average per-character negative log2 likelihood of \p Text under
  /// this model starting from a fresh state. Lower = more "natural" to
  /// the model; the Turing-test judge thresholds on this.
  double bitsPerChar(const std::string &Text);
};

} // namespace model
} // namespace clgen

#endif // CLGEN_MODEL_LANGUAGEMODEL_H

//===- bench/fig9_feature_matches.cpp - Figure 9: feature-space coverage ------===//
//
// Regenerates Figure 9: "The number of kernels from GitHub, CLSmith and
// CLgen with static code features matching the benchmarks." CLgen keeps
// producing benchmark-like kernels long after the finite GitHub corpus
// is exhausted; CLSmith almost never lands near real programs (0.53% in
// the paper; over a third of 10,000 CLgen kernels match, ~14 per
// benchmark).
//
// Static features: Table 2a (comp, mem, localmem, coalesced) plus the
// branch count of section 8.2, matched exactly as integer tuples.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "features/Features.h"
#include "predict/Report.h"
#include "support/Stats.h"

#include <map>
#include <set>

using namespace clgen;
using namespace clgen::bench;

namespace {

using predict::FeatureKey;

/// Static-features-only observations over the benchmark catalogue, the
/// input shape the shared key collector (predict/Report.h) expects.
std::vector<predict::Observation> catalogueObservations() {
  std::vector<predict::Observation> Obs;
  for (const auto &BK : suites::buildCatalogue()) {
    auto Compiled = vm::compileFirstKernel(BK.Source);
    if (!Compiled.ok())
      continue;
    predict::Observation O;
    O.Suite = BK.Suite;
    O.Benchmark = BK.Benchmark;
    O.Kernel = BK.KernelName;
    O.Raw.Static = features::extractStaticFeatures(Compiled.get());
    Obs.push_back(O);
  }
  return Obs;
}

FeatureKey keyOf(const vm::CompiledKernel &K) {
  return features::extractStaticFeatures(K).key();
}

} // namespace

int main() {
  // Scaled from the paper's 10,000 kernels per source; the sampling
  // curve shape (CLgen grows, GitHub plateaus, CLSmith stays near zero)
  // is scale-invariant. Documented in EXPERIMENTS.md.
  const size_t MaxKernels = 2000;
  const std::vector<size_t> Checkpoints = {200, 400,  600,  800, 1000,
                                           1200, 1400, 1600, 1800, 2000};

  std::printf("%s", sectionBanner("Figure 9: kernels with static features "
                                  "matching the benchmarks")
                        .c_str());

  std::printf("collecting benchmark feature keys...\n");
  auto Keys = predict::benchmarkFeatureKeys(catalogueObservations());
  std::printf("distinct benchmark feature tuples: %zu\n\n", Keys.size());

  // --- GitHub: the rewritten corpus kernels (finite). ---
  std::printf("building GitHub corpus...\n");
  githubsim::GithubSimOptions GOpts;
  GOpts.FileCount = 3000;
  auto Files = githubsim::mineGithub(GOpts);
  auto Corpus = corpus::buildCorpus(Files);
  std::vector<FeatureKey> GithubKeys;
  for (const auto &Entry : Corpus.Entries) {
    auto Compiled = vm::compileFirstKernel(Entry);
    if (Compiled.ok())
      GithubKeys.push_back(keyOf(Compiled.get()));
  }
  std::printf("GitHub kernels available: %zu (finite; the curve "
              "plateaus)\n",
              GithubKeys.size());

  // --- CLgen: unbounded sampling from the trained model. ---
  std::printf("training CLgen and synthesizing %zu kernels...\n",
              MaxKernels);
  core::PipelineOptions POpts;
  POpts.NGram.Order = 16;
  auto Pipeline = core::ClgenPipeline::train(Files, POpts);
  core::SynthesisOptions SOpts;
  SOpts.TargetKernels = MaxKernels;
  SOpts.MaxAttempts = MaxKernels * 600;
  SOpts.Sampling.Temperature = 0.45;
  auto Synth = Pipeline.synthesize(SOpts);
  std::vector<FeatureKey> ClgenKeys;
  for (const auto &SK : Synth.Kernels)
    ClgenKeys.push_back(keyOf(SK.Kernel));
  std::printf("CLgen kernels accepted: %zu (acceptance %.1f%%)\n",
              ClgenKeys.size(), Synth.Stats.acceptanceRate() * 100.0);

  // --- CLSmith. ---
  std::printf("generating %zu CLSmith kernels...\n", MaxKernels);
  std::vector<FeatureKey> ClsmithKeys;
  for (const auto &Src : clsmith::generateKernels(MaxKernels)) {
    auto Compiled = vm::compileFirstKernel(Src);
    if (Compiled.ok())
      ClsmithKeys.push_back(keyOf(Compiled.get()));
  }

  // Error bars: repeat the counting over shuffled samplings.
  const int Samplings = 5;
  TextTable T;
  T.setHeader({"#. kernels", "GitHub", "CLSmith", "CLgen (mean +/- sd)"});
  Rng R(0xF16);
  std::vector<std::vector<double>> ClgenCurves(Checkpoints.size());
  for (int S = 0; S < Samplings; ++S) {
    auto Shuffled = ClgenKeys;
    R.shuffle(Shuffled);
    auto Curve = predict::cumulativeMatchCurve(Shuffled, Keys, Checkpoints);
    for (size_t I = 0; I < Curve.size(); ++I)
      ClgenCurves[I].push_back(static_cast<double>(Curve[I]));
  }
  auto GithubCurve =
      predict::cumulativeMatchCurve(GithubKeys, Keys, Checkpoints);
  auto ClsmithCurve =
      predict::cumulativeMatchCurve(ClsmithKeys, Keys, Checkpoints);
  for (size_t I = 0; I < Checkpoints.size(); ++I) {
    T.addRow({std::to_string(Checkpoints[I]),
              std::to_string(GithubCurve[I]),
              std::to_string(ClsmithCurve[I]),
              formatString("%.0f +/- %.1f", mean(ClgenCurves[I]),
                           stdev(ClgenCurves[I]))});
  }
  std::printf("\n%s", T.render().c_str());

  size_t ClgenMatches =
      static_cast<size_t>(mean(ClgenCurves.back()));
  size_t Bench = suites::buildCatalogue().size();
  std::printf("\nCLgen: %zu of %zu kernels match (%.1f%%), ~%.1f matching "
              "kernels per benchmark kernel\n",
              ClgenMatches, ClgenKeys.size(),
              ClgenKeys.empty()
                  ? 0.0
                  : 100.0 * ClgenMatches / ClgenKeys.size(),
              static_cast<double>(ClgenMatches) / Bench);
  std::printf("CLSmith: %zu of %zu kernels match (%.2f%%; paper: 0.53%%)\n",
              ClsmithCurve.back(), ClsmithKeys.size(),
              ClsmithKeys.empty()
                  ? 0.0
                  : 100.0 * ClsmithCurve.back() / ClsmithKeys.size());
  std::printf("GitHub plateaus at %zu matches once its %zu kernels are "
              "exhausted.\n",
              GithubCurve.back(), GithubKeys.size());
  return 0;
}

//===- bench/micro_perf.cpp - google-benchmark microbenchmarks ----------------===//
//
// Throughput microbenchmarks for the pipeline's hot components: frontend
// (lex/parse/sema), bytecode compilation, interpretation, feature
// extraction, n-gram sampling and LSTM stepping. Not a paper experiment;
// useful for tracking the simulator's own performance.
//
//===----------------------------------------------------------------------===//

#include "clgen/Pipeline.h"
#include "clgen/Sampler.h"
#include "features/Features.h"
#include "githubsim/GithubSim.h"
#include "model/LstmModel.h"
#include "model/NGramModel.h"
#include "ocl/Parser.h"
#include "ocl/Sema.h"
#include "runtime/HostDriver.h"
#include "store/ResultCache.h"
#include "suites/KernelPatterns.h"
#include "vm/Compiler.h"
#include "vm/Interpreter.h"

#include <benchmark/benchmark.h>

#include <filesystem>

using namespace clgen;

namespace {

const std::string &sampleSource() {
  static const std::string Src = suites::renderPattern(
      suites::PatternKind::NBody, suites::PatternStyle(), "bench_kernel");
  return Src;
}

/// Shared trained pipeline for the synthesis benchmarks (the standard
/// experiment configuration; trained once).
core::ClgenPipeline &benchPipeline() {
  static core::ClgenPipeline P = [] {
    githubsim::GithubSimOptions GOpts;
    GOpts.FileCount = 400;
    core::PipelineOptions POpts;
    POpts.NGram.Order = 14;
    return core::ClgenPipeline::train(githubsim::mineGithub(GOpts), POpts);
  }();
  return P;
}

void BM_ParseAndSema(benchmark::State &State) {
  for (auto _ : State) {
    auto R = ocl::parseProgram(sampleSource());
    ocl::analyze(*R.get());
    benchmark::DoNotOptimize(R.get());
  }
  State.SetBytesProcessed(State.iterations() * sampleSource().size());
}
BENCHMARK(BM_ParseAndSema);

void BM_CompileKernel(benchmark::State &State) {
  for (auto _ : State) {
    auto K = vm::compileFirstKernel(sampleSource());
    benchmark::DoNotOptimize(K.get().Code.size());
  }
}
BENCHMARK(BM_CompileKernel);

// Arg 0 selects the dispatch mode (0 = switch, 1 = threaded,
// 2 = threaded+fused) so one run reports the speedup matrix the pr8
// acceptance gate tracks.
void BM_InterpretKernel(benchmark::State &State) {
  auto K = vm::compileFirstKernel(sampleSource()).take();
  std::vector<vm::BufferData> Bufs = {
      vm::BufferData::zeros(1024, 1), vm::BufferData::zeros(1024, 1),
      vm::BufferData::zeros(1024, 1)};
  vm::LaunchConfig Config;
  Config.GlobalSize[0] = 1024;
  Config.LocalSize[0] = 64;
  switch (State.range(0)) {
  case 0: Config.Dispatch = vm::DispatchMode::Switch; break;
  case 1: Config.Dispatch = vm::DispatchMode::Threaded; break;
  default: Config.Dispatch = vm::DispatchMode::ThreadedFused; break;
  }
  uint64_t Instructions = 0;
  for (auto _ : State) {
    auto R = vm::launchKernel(K,
                              {vm::KernelArg::buffer(0),
                               vm::KernelArg::buffer(1),
                               vm::KernelArg::buffer(2),
                               vm::KernelArg::scalar(1024)},
                              Bufs, Config);
    Instructions += R.get().Instructions;
    benchmark::DoNotOptimize(R.get().Instructions);
  }
  State.SetLabel(vm::dispatchModeName(Config.Dispatch));
  State.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(Instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpretKernel)->ArgName("dispatch")->DenseRange(0, 2);

void BM_FeatureExtraction(benchmark::State &State) {
  auto K = vm::compileFirstKernel(sampleSource()).take();
  for (auto _ : State) {
    auto F = features::extractStaticFeatures(K);
    benchmark::DoNotOptimize(F.Comp);
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_NGramSampleChar(benchmark::State &State) {
  model::NGramModel Model;
  Model.train({sampleSource()});
  Model.reset();
  Model.observeText("__kernel void A(");
  Rng R(1);
  for (auto _ : State) {
    auto Dist = Model.nextDistribution();
    size_t Tok = R.weighted(Dist);
    Model.observe(static_cast<int>(Tok));
    benchmark::DoNotOptimize(Tok);
  }
}
BENCHMARK(BM_NGramSampleChar);

void BM_LstmStep(benchmark::State &State) {
  model::LstmOptions Opts;
  Opts.Epochs = 1;
  Opts.HiddenSize = static_cast<int>(State.range(0));
  model::LstmModel Model(Opts);
  Model.train({sampleSource().substr(0, 512)});
  Model.reset();
  std::vector<double> Dist;
  for (auto _ : State) {
    Model.observe(1);
    Model.nextDistributionInto(Dist);
    benchmark::DoNotOptimize(Dist[0]);
  }
}
BENCHMARK(BM_LstmStep)->ArgName("H")->Arg(64)->Arg(128)->Arg(256);

/// One LSTM training epoch through the data-parallel engine at the
/// standard laptop-scale architecture (H=64, 2 layers, 8 lanes),
/// parameterized by TrainOptions::Workers. Weights are bit-identical
/// across the arg values; only the wall time may move (bounded by core
/// count — see BENCH_perf.json machine note).
void BM_TrainEpoch(benchmark::State &State) {
  static const std::vector<std::string> Entries = [] {
    githubsim::GithubSimOptions GOpts;
    GOpts.FileCount = 48;
    auto Files = githubsim::mineGithub(GOpts);
    return corpus::buildCorpus(Files, corpus::CorpusOptions()).Entries;
  }();
  model::LstmOptions Opts;
  Opts.Epochs = 1;
  Opts.BatchLanes = 8;
  model::TrainOptions TOpts;
  TOpts.Workers = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    model::LstmModel Model(Opts);
    Model.train(Entries, TOpts);
    benchmark::DoNotOptimize(Model.parameterCount());
  }
}
BENCHMARK(BM_TrainEpoch)
    ->ArgName("workers")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_SampleKernel(benchmark::State &State) {
  auto &Pipeline = benchPipeline();
  std::string Seed = core::ArgSpec::figure6().seedText();
  core::SampleOptions SOpts;
  SOpts.Temperature = 0.5;
  Rng Base(0x5A117);
  uint64_t Attempt = 0;
  size_t Chars = 0;
  for (auto _ : State) {
    Rng R = Base.split(Attempt++);
    auto S = core::sampleKernel(Pipeline.languageModel(), Seed, SOpts, R);
    Chars += S ? S->size() : SOpts.MaxLength;
    benchmark::DoNotOptimize(S.has_value());
  }
  State.counters["chars/s"] = benchmark::Counter(
      static_cast<double>(Chars), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SampleKernel)->Unit(benchmark::kMicrosecond);

void BM_SynthesizeBatch(benchmark::State &State) {
  auto &Pipeline = benchPipeline();
  core::SynthesisOptions SOpts;
  SOpts.TargetKernels = 8;
  SOpts.MaxAttempts = 4000;
  SOpts.Sampling.Temperature = 0.5;
  SOpts.Workers = static_cast<unsigned>(State.range(0));
  uint64_t Round = 0;
  size_t Accepted = 0;
  for (auto _ : State) {
    SOpts.Seed = 0xC17E9 + Round++; // Fresh batch per iteration.
    auto R = Pipeline.synthesize(SOpts);
    Accepted += R.Kernels.size();
    benchmark::DoNotOptimize(R.Stats.Attempts);
  }
  State.counters["kernels/s"] = benchmark::Counter(
      static_cast<double>(Accepted), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SynthesizeBatch)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Scratch directory for the artifact-store benchmarks, wiped at setup
/// so every benchmark binary run starts cold.
std::string benchStoreDir(const char *Leaf) {
  auto Dir = std::filesystem::temp_directory_path() /
             (std::string("clgen_micro_perf_") + Leaf);
  std::filesystem::remove_all(Dir);
  return Dir.string();
}

/// Cost of a full memoized measurement: content-address the kernel
/// (bytecode hash + options + device configs) and serve the result from
/// the cache — the per-kernel overhead a warm runBenchmarkBatch pays
/// instead of executing. Compare against BM_InterpretKernel.
void BM_ResultCacheHit(benchmark::State &State) {
  std::string Dir = benchStoreDir("result_cache");
  auto K = vm::compileFirstKernel(sampleSource()).take();
  runtime::DriverOptions Opts;
  Opts.GlobalSize = 16384;
  auto P = runtime::amdPlatform();
  store::ResultCache Cache(Dir);
  auto Fresh = runtime::runBenchmark(K, P, Opts);
  Cache.store(store::measurementKey(K, Opts, P), Fresh.get());
  for (auto _ : State) {
    uint64_t Key = store::measurementKey(K, Opts, P);
    auto M = Cache.lookup(Key);
    benchmark::DoNotOptimize(M->CpuTime);
  }
  std::filesystem::remove_all(Dir);
}
BENCHMARK(BM_ResultCacheHit);

/// Cold pipeline construction: corpus assembly + n-gram training from
/// content files (the standard 400-file / order-14 configuration).
void BM_ColdTrain(benchmark::State &State) {
  githubsim::GithubSimOptions GOpts;
  GOpts.FileCount = 400;
  auto Files = githubsim::mineGithub(GOpts);
  core::PipelineOptions POpts;
  POpts.NGram.Order = 14;
  for (auto _ : State) {
    auto P = core::ClgenPipeline::train(Files, POpts);
    benchmark::DoNotOptimize(P.corpus().Entries.size());
  }
}
BENCHMARK(BM_ColdTrain)->Unit(benchmark::kMillisecond);

/// Warm start through the artifact store: same configuration, but the
/// fingerprint matches a stored model + corpus snapshot, so trainOrLoad
/// deserializes instead of retraining.
void BM_WarmStartTrain(benchmark::State &State) {
  std::string Dir = benchStoreDir("warm_start");
  githubsim::GithubSimOptions GOpts;
  GOpts.FileCount = 400;
  auto Files = githubsim::mineGithub(GOpts);
  core::PipelineOptions POpts;
  POpts.NGram.Order = 14;
  (void)core::ClgenPipeline::trainOrLoad(Dir, Files, POpts); // Populate.
  for (auto _ : State) {
    auto P = core::ClgenPipeline::trainOrLoad(Dir, Files, POpts);
    benchmark::DoNotOptimize(P.get().corpus().Entries.size());
  }
  std::filesystem::remove_all(Dir);
}
BENCHMARK(BM_WarmStartTrain)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();

#!/usr/bin/env bash
#===- scripts/check_failpoints.sh - zero-drift proof for failpoints ------===//
#
# Configures and builds a nested tree with -DCLGS_FAILPOINTS=ON (every
# CLGS_FAILPOINT site compiled in, none armed) and runs the full test
# suite there. Passing proves that merely COMPILING the injection sites
# in changes no behavior: the golden byte-identity tests, the store
# round-trips and the streaming-pipeline determinism suite must all pass
# with the sites present-but-inert. Registered as the ctest
# `check_failpoints` (label `failpoints`); run manually:
#
#   bash scripts/check_failpoints.sh <source-dir> <build-dir>
#
# The nested tree builds only the test binaries (not benches/examples),
# and the nested ctest skips the stress label — the soak tests get their
# failpoints-armed coverage from the dedicated fault tests instead of
# re-running the whole soak matrix here.
#
#===----------------------------------------------------------------------===//

set -eu

SRC=${1:?usage: check_failpoints.sh <source-dir> <build-dir>}
BUILD=${2:?usage: check_failpoints.sh <source-dir> <build-dir>}

echo "check_failpoints: configuring $BUILD with -DCLGS_FAILPOINTS=ON"
cmake -B "$BUILD" -S "$SRC" -DCLGS_FAILPOINTS=ON \
      -DCLGS_NESTED_FIXTURE=ON >/dev/null

echo "check_failpoints: building test binaries"
cmake --build "$BUILD" -j --target clgen_tests clgen_stress_tests >/dev/null

echo "check_failpoints: running the suite with sites compiled in (inert)"
# Excluding the overhead meta-fixture (like stress) keeps the nested
# build recursion at one level. -LE must precede the bare -j: ctest's
# optional-value -j would otherwise swallow the -LE token and run the
# suite unfiltered.
(cd "$BUILD" && ctest --output-on-failure -LE 'stress|overhead|dispatch' -j)

echo "check_failpoints: failpoint build drifts by nothing while disarmed"

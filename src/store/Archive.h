//===- store/Archive.h - Versioned binary archive I/O ------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serialization substrate of the persistent artifact store: a
/// length-prefixed binary archive format with a magic number, a format
/// version, a payload-kind tag and an FNV-1a trailer checksum. All
/// primitives are written little-endian byte-by-byte, so archives are
/// bit-identical across platforms and compilers ("endian-stable") and a
/// given in-memory artifact always hashes to the same digest — the
/// property the content-addressed caches are built on.
///
/// Layout:
///
///   [u32 magic 'CLGS'][u32 version][u32 kind][u64 payload size]
///   [payload bytes][u64 fnv1a64(header || payload)]
///
/// The trailer checksum covers the HEADER as well as the payload (v3):
/// every byte of the file is protected, so kind-agnostic container
/// validation (store::inspectArchive, the lifecycle sweep) detects any
/// single-byte corruption, including a flipped kind tag.
///
/// ArchiveReader is defensive by contract: every read is bounds-checked
/// and a malformed archive (truncated, corrupted, wrong version) turns
/// into a sticky error state — never a crash or an out-of-bounds access.
/// Durability contract: saveTo() writes to a unique temp file in the
/// destination directory and renames it into place, so concurrent
/// writers and crashed processes can never leave a partial archive under
/// the final name.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_STORE_ARCHIVE_H
#define CLGEN_STORE_ARCHIVE_H

#include "support/Result.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace clgen {
namespace store {

/// Format version of the archive container itself. Bump when the header
/// layout or a payload schema changes shape; readers reject any other
/// version (no silent migration — the policy is specified in
/// docs/STORE_FORMAT.md). History: v1 initial; v2 added
/// LstmOptions::BatchLanes to the LSTM model payload; v3 extended the
/// trailer checksum to cover the header as well as the payload (the
/// lifecycle corruption-fuzz harness showed a flipped kind tag slipped
/// past kind-agnostic container validation — with the header under the
/// checksum, every byte of an archive is protected).
constexpr uint32_t FormatVersion = 3;

/// Payload kinds (the `kind` header field). One archive holds exactly
/// one artifact; the kind tag stops a corpus snapshot from being
/// deserialized as an LSTM weight blob even when both parse cleanly.
/// Adding a NEW kind is additive (no existing payload changes shape)
/// and does not bump FormatVersion; old readers reject unknown kinds
/// via the kind check.
enum class ArchiveKind : uint32_t {
  Model = 1,       // Polymorphic language model (tagged n-gram/LSTM).
  Corpus = 2,      // corpus::Corpus snapshot (entries + stats).
  Measurement = 3, // One runtime::Measurement (result-cache entry).
  Synthesis = 4,   // core::SynthesisResult (kernels + stats).
  Manifest = 5,    // store::Manifest (lifecycle sweep record).
  Failure = 6,     // store::FailureRecord (failure-ledger entry).
  Features = 7,    // predict::Experiment observation set (labelled rows).
  Predictor = 8,   // Trained predict::DecisionTree device-mapping model.
  Report = 9,      // predict::Experiment evaluation report + metrics.
};

/// Human-readable name of a raw kind tag ("model", "corpus", ...;
/// "unknown" for tags outside the enum). Used by the `clgen-store`
/// inspection CLI.
const char *archiveKindName(uint32_t Kind);

/// Container-level facts about an archive file, independent of its
/// payload schema: what the header claims plus whether the claims hold.
struct ArchiveInfo {
  uint32_t Version = 0;     // Header version field.
  uint32_t Kind = 0;        // Raw kind tag (may be unknown).
  uint64_t PayloadSize = 0; // Header size field.
  uint64_t Checksum = 0;    // Stored trailer checksum.
  uint64_t FileSize = 0;    // Actual bytes on disk.
};

/// Kind-agnostic container validation: checks magic, version, size and
/// checksum of \p Path without deserializing the payload. This is what
/// the lifecycle sweep and `clgen-store verify` run over every entry —
/// an archive passing inspectArchive is structurally sound (its payload
/// may still fail schema checks in its own deserializer).
Result<ArchiveInfo> inspectArchive(const std::string &Path);

/// FNV-1a 64-bit over \p Size bytes, continuing from \p Seed. The
/// store's only hash: archive checksums, cache keys and fingerprints all
/// use it so a key is reproducible from the documented byte recipe.
uint64_t fnv1a64(const void *Data, size_t Size,
                 uint64_t Seed = 0xCBF29CE484222325ull);

/// Renders a 64-bit digest as 16 lowercase hex characters (stable file
/// names for content-addressed artifacts).
std::string hexDigest(uint64_t Digest);

/// Serializes primitives into an in-memory payload, then seals it with
/// the header + checksum. Writers are append-only and infallible; all
/// error handling lives at the file boundary (saveTo).
class ArchiveWriter {
public:
  explicit ArchiveWriter(ArchiveKind Kind) : Kind(Kind) {}

  void writeU8(uint8_t V) { Payload.push_back(V); }
  void writeU32(uint32_t V);
  void writeU64(uint64_t V);
  void writeI32(int32_t V) { writeU32(static_cast<uint32_t>(V)); }
  void writeI64(int64_t V) { writeU64(static_cast<uint64_t>(V)); }
  void writeBool(bool V) { writeU8(V ? 1 : 0); }
  /// Floats travel as IEEE-754 bit patterns: round-trips are bit-exact.
  void writeF32(float V);
  void writeF64(double V);
  void writeString(std::string_view S);
  void writeBytes(const void *Data, size_t Size);
  /// Length-prefixed float/double vectors (bulk weight blobs).
  void writeF32Vector(const std::vector<float> &V);
  void writeF64Vector(const std::vector<double> &V);

  /// FNV-1a digest of the payload written so far. Fingerprints hash the
  /// payload only, so the digest of a key recipe is independent of the
  /// archive header around it.
  uint64_t payloadDigest() const;

  /// The sealed archive: header + payload + checksum trailer.
  std::vector<uint8_t> finalize() const;

  /// Writes the sealed archive atomically: temp file in the same
  /// directory + rename. Safe against concurrent writers of the same
  /// path (last rename wins; readers always see a complete file).
  Status saveTo(const std::string &Path) const;

private:
  ArchiveKind Kind;
  std::vector<uint8_t> Payload;
};

/// Bounds-checked reader over a sealed archive. Construction validates
/// magic, version, kind, size and checksum up front; individual reads
/// can still fail (schema mismatch) by tripping the sticky error state,
/// after which every subsequent read returns zero/empty. Callers check
/// ok() once at the end of deserialization.
class ArchiveReader {
public:
  /// Reads and validates \p Path. Fails loudly on missing files,
  /// truncation, corruption, wrong magic/version/kind.
  static Result<ArchiveReader> open(const std::string &Path,
                                    ArchiveKind ExpectedKind);

  /// Same validation over an in-memory archive image.
  static Result<ArchiveReader> fromBytes(std::vector<uint8_t> Bytes,
                                         ArchiveKind ExpectedKind);

  uint8_t readU8();
  uint32_t readU32();
  uint64_t readU64();
  int32_t readI32() { return static_cast<int32_t>(readU32()); }
  int64_t readI64() { return static_cast<int64_t>(readU64()); }
  bool readBool() { return readU8() != 0; }
  float readF32();
  double readF64();
  std::string readString();
  std::vector<float> readF32Vector();
  std::vector<double> readF64Vector();

  /// True while no read has overrun or been failed by the caller.
  bool ok() const { return Error.empty(); }
  const std::string &errorMessage() const { return Error; }

  /// Marks the archive malformed from the deserializer's point of view
  /// (e.g. a count field that fails a schema sanity bound). Sticky.
  void fail(std::string Message);

  /// Final verdict: every byte consumed and no error. Trailing garbage
  /// inside a checksummed payload means a schema mismatch, so it is an
  /// error too, not a warning.
  Status finish() const;

private:
  ArchiveReader() = default;
  /// Guards length-prefixed bulk reads: a corrupt length field must not
  /// turn into a multi-gigabyte allocation before the bounds check.
  bool checkAvailable(size_t Bytes, const char *What);

  std::vector<uint8_t> Data; // Payload only (header/trailer stripped).
  size_t Pos = 0;
  std::string Error;
};

/// Reads an entire file into \p Out. Returns false on any I/O error.
bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Out);

} // namespace store
} // namespace clgen

#endif // CLGEN_STORE_ARCHIVE_H

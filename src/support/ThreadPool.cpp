//===- support/ThreadPool.cpp - Work-stealing thread pool ----------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>

using namespace clgen;

size_t ThreadPool::resolveWorkerCount(size_t Requested) {
  if (Requested > 0)
    return Requested;
  size_t HW = std::thread::hardware_concurrency();
  return HW > 0 ? HW : 1;
}

ThreadPool::ThreadPool(size_t Workers) {
  size_t N = resolveWorkerCount(Workers);
  Queues.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Queues.push_back(std::make_unique<WorkerQueue>());
  Threads.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(StateMutex);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

bool ThreadPool::popOrSteal(size_t Worker, Task &Out) {
  // Own queue first: newest task (LIFO) for cache locality.
  {
    WorkerQueue &Q = *Queues[Worker];
    std::lock_guard<std::mutex> Lock(Q.Mutex);
    if (!Q.Deque.empty()) {
      Out = std::move(Q.Deque.back());
      Q.Deque.pop_back();
      return true;
    }
  }
  // Steal the oldest task from the first non-empty victim.
  for (size_t Step = 1; Step < Queues.size(); ++Step) {
    WorkerQueue &Q = *Queues[(Worker + Step) % Queues.size()];
    std::lock_guard<std::mutex> Lock(Q.Mutex);
    if (!Q.Deque.empty()) {
      Out = std::move(Q.Deque.front());
      Q.Deque.pop_front();
      // Which worker steals is a scheduling accident: volatile.
      CLGS_COUNT_V("clgen.pool.steals");
      CLGS_TRACE_INSTANT_IDX("pool.steal", Worker);
      return true;
    }
  }
  return false;
}

void ThreadPool::runTask(size_t Worker, Task &T) {
  CLGS_COUNT("clgen.pool.tasks");
  CLGS_TELEMETRY_ONLY(uint64_t TaskT0 = support::telemetryNowNs();)
  try {
    T(Worker);
  } catch (...) {
    std::lock_guard<std::mutex> Lock(StateMutex);
    if (!FirstError)
      FirstError = std::current_exception();
  }
  CLGS_HIST_US("clgen.pool.task_us",
               (support::telemetryNowNs() - TaskT0) / 1000);
  {
    std::lock_guard<std::mutex> Lock(StateMutex);
    --PendingTasks;
    if (PendingTasks == 0)
      BatchDone.notify_all();
  }
}

void ThreadPool::workerLoop(size_t Worker) {
  for (;;) {
    uint64_t SeenEpoch;
    {
      std::lock_guard<std::mutex> Lock(StateMutex);
      SeenEpoch = SubmitEpoch;
    }
    Task T;
    if (popOrSteal(Worker, T)) {
      runTask(Worker, T);
      continue;
    }
    std::unique_lock<std::mutex> Lock(StateMutex);
    if (ShuttingDown)
      return;
    // Sleep only while nothing was submitted since our (empty) scan; a
    // submission that raced the scan leaves SubmitEpoch advanced and we
    // loop straight back to the queues.
    CLGS_COUNT_V("clgen.pool.idle_waits");
    CLGS_TELEMETRY_ONLY(uint64_t IdleT0 = support::telemetryNowNs();)
    WorkAvailable.wait(Lock, [this, SeenEpoch] {
      return ShuttingDown || SubmitEpoch != SeenEpoch;
    });
    CLGS_HIST_US("clgen.pool.idle_us",
                 (support::telemetryNowNs() - IdleT0) / 1000);
  }
}

void ThreadPool::parallelFor(
    size_t Begin, size_t End,
    const std::function<void(size_t Worker, size_t Index)> &Fn) {
  if (Begin >= End)
    return;
  size_t Count = End - Begin;
  if (workerCount() == 1 || Count == 1) {
    // Inline fast path: no queueing, caller acts as worker 0.
    for (size_t I = Begin; I < End; ++I)
      Fn(0, I);
    return;
  }

  // Chunk the range so each worker starts with a contiguous slice;
  // stealing rebalances when iteration costs are skewed.
  size_t Chunks = std::min(Count, workerCount() * 4);
  size_t PerChunk = (Count + Chunks - 1) / Chunks;

  {
    std::lock_guard<std::mutex> Lock(StateMutex);
    FirstError = nullptr;
    PendingTasks += Chunks;
    // Tasks queued but not yet finished; the max is the depth
    // high-water mark.
    CLGS_GAUGE_SET("clgen.pool.queue_depth", PendingTasks);
  }
  for (size_t C = 0; C < Chunks; ++C) {
    size_t Lo = Begin + C * PerChunk;
    size_t Hi = std::min(Lo + PerChunk, End);
    Task T = [&Fn, Lo, Hi](size_t Worker) {
      for (size_t I = Lo; I < Hi; ++I)
        Fn(Worker, I);
    };
    WorkerQueue &Q = *Queues[C % Queues.size()];
    {
      std::lock_guard<std::mutex> Lock(Q.Mutex);
      Q.Deque.push_back(std::move(T));
    }
  }
  {
    std::lock_guard<std::mutex> Lock(StateMutex);
    ++SubmitEpoch;
  }
  WorkAvailable.notify_all();

  std::unique_lock<std::mutex> Lock(StateMutex);
  BatchDone.wait(Lock, [this] { return PendingTasks == 0; });
  if (FirstError) {
    std::exception_ptr E = FirstError;
    FirstError = nullptr;
    std::rethrow_exception(E);
  }
}

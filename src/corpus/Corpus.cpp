//===- corpus/Corpus.cpp - Language corpus assembly ----------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

#include "corpus/Rewriter.h"
#include "ocl/AstPrinter.h"
#include "ocl/Lexer.h"
#include "store/Archive.h"
#include "support/StringUtils.h"

#include <unordered_set>

using namespace clgen;
using namespace clgen::corpus;

std::string Corpus::allText() const {
  std::string All;
  for (const std::string &E : Entries) {
    All += E;
    All += '\n';
  }
  return All;
}

void Corpus::serialize(store::ArchiveWriter &W) const {
  W.writeU64(Entries.size());
  for (const std::string &E : Entries)
    W.writeString(E);
  W.writeU64(Stats.FilesIn);
  W.writeU64(Stats.FilesAccepted);
  W.writeU64(Stats.FilesRejected);
  for (size_t Count : Stats.RejectionsByReason)
    W.writeU64(Count);
  W.writeU64(Stats.RawLines);
  W.writeU64(Stats.CompilableLines);
  W.writeU64(Stats.FinalLines);
  W.writeU64(Stats.KernelCount);
  W.writeU64(Stats.VocabularyBefore);
  W.writeU64(Stats.VocabularyAfter);
}

Corpus Corpus::deserialize(store::ArchiveReader &R) {
  Corpus C;
  uint64_t EntryCount = R.readU64();
  for (uint64_t I = 0; I < EntryCount && R.ok(); ++I)
    C.Entries.push_back(R.readString());
  C.Stats.FilesIn = R.readU64();
  C.Stats.FilesAccepted = R.readU64();
  C.Stats.FilesRejected = R.readU64();
  for (size_t &Count : C.Stats.RejectionsByReason)
    Count = R.readU64();
  C.Stats.RawLines = R.readU64();
  C.Stats.CompilableLines = R.readU64();
  C.Stats.FinalLines = R.readU64();
  C.Stats.KernelCount = R.readU64();
  C.Stats.VocabularyBefore = R.readU64();
  C.Stats.VocabularyAfter = R.readU64();
  if (!R.ok())
    return Corpus();
  return C;
}

Corpus corpus::buildCorpus(const std::vector<ContentFile> &Files,
                           const CorpusOptions &Opts) {
  Corpus Out;
  CorpusStats &S = Out.Stats;
  S.FilesIn = Files.size();

  std::unordered_set<std::string> VocabBefore, VocabAfter;
  std::unordered_set<std::string> Dedup;

  for (const ContentFile &File : Files) {
    S.RawLines += countNonBlankLines(File.Text);

    FilterResult FR = filterContentFile(File.Text, Opts.Filter);
    if (!FR.Accepted) {
      S.FilesRejected += 1;
      S.RejectionsByReason[static_cast<int>(FR.Reason)] += 1;
      continue;
    }
    S.FilesAccepted += 1;
    S.CompilableLines += countNonBlankLines(FR.Preprocessed);
    S.KernelCount += FR.Prog->kernelCount();

    // Vocabulary before rewriting (identifiers of the preprocessed,
    // compilable text).
    for (const auto &Tok : ocl::lex(FR.Preprocessed))
      if (Tok.Kind == ocl::TokenKind::Identifier)
        VocabBefore.insert(Tok.Text);

    // Steps 2+3: rename + canonical print. The program already passed
    // Sema inside the filter, so renaming operates on FR.Prog directly.
    renameIdentifiers(*FR.Prog);
    std::string Entry = ocl::printProgram(*FR.Prog);
    for (const auto &Tok : ocl::lex(Entry))
      if (Tok.Kind == ocl::TokenKind::Identifier)
        VocabAfter.insert(Tok.Text);

    S.FinalLines += countNonBlankLines(Entry);
    if (Dedup.insert(Entry).second)
      Out.Entries.push_back(std::move(Entry));
  }

  S.VocabularyBefore = VocabBefore.size();
  S.VocabularyAfter = VocabAfter.size();
  return Out;
}

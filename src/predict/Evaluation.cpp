//===- predict/Evaluation.cpp - Model training & evaluation -------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "predict/Evaluation.h"

#include "support/Metrics.h"
#include "support/Rng.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace clgen;
using namespace clgen::predict;

std::vector<double> predict::featureVector(const Observation &O,
                                           FeatureSetKind Kind) {
  switch (Kind) {
  case FeatureSetKind::Grewe:
    return features::greweFeatureVector(O.Raw);
  case FeatureSetKind::Extended:
    return features::extendedFeatureVector(O.Raw);
  }
  return {};
}

std::vector<std::vector<double>>
predict::featureMatrix(const std::vector<Observation> &Obs,
                       FeatureSetKind Kind, unsigned Workers) {
  // Slot-per-row merge: each task fills its own index, so the matrix is
  // identical to the serial loop for any worker count.
  std::vector<std::vector<double>> X(Obs.size());
  size_t Pool = std::min<size_t>(ThreadPool::resolveWorkerCount(Workers),
                                 Obs.size() ? Obs.size() : 1);
  ThreadPool TP(Pool);
  TP.parallelFor(0, Obs.size(), [&](size_t, size_t I) {
    X[I] = featureVector(Obs[I], Kind);
  });
  return X;
}

std::vector<int>
predict::trainAndPredict(const std::vector<Observation> &Train,
                         const std::vector<Observation> &Test,
                         FeatureSetKind Kind, TreeOptions Opts) {
  std::vector<std::vector<double>> X;
  std::vector<int> Y;
  X.reserve(Train.size());
  Y.reserve(Train.size());
  for (const Observation &O : Train) {
    X.push_back(featureVector(O, Kind));
    Y.push_back(O.label());
  }
  DecisionTree Tree(Opts);
  Tree.fit(X, Y);
  std::vector<int> Out;
  Out.reserve(Test.size());
  for (const Observation &O : Test)
    Out.push_back(Tree.predict(featureVector(O, Kind)));
  return Out;
}

int predict::staticBestDevice(const std::vector<Observation> &Obs) {
  double CpuTotal = 0.0, GpuTotal = 0.0;
  for (const Observation &O : Obs) {
    CpuTotal += O.CpuTime;
    GpuTotal += O.GpuTime;
  }
  return GpuTotal < CpuTotal ? 1 : 0;
}

double predict::performanceRelativeToOracle(
    const std::vector<Observation> &Obs,
    const std::vector<int> &Predictions) {
  assert(Obs.size() == Predictions.size());
  if (Obs.empty())
    return 0.0;
  std::vector<double> Ratios;
  Ratios.reserve(Obs.size());
  for (size_t I = 0; I < Obs.size(); ++I)
    Ratios.push_back(Obs[I].oracleTime() / Obs[I].timeFor(Predictions[I]));
  return geomean(Ratios);
}

std::vector<double>
predict::perObservationSpeedup(const std::vector<Observation> &Obs,
                               const std::vector<int> &Predictions,
                               int StaticLabel) {
  assert(Obs.size() == Predictions.size());
  std::vector<double> Speedups;
  Speedups.reserve(Obs.size());
  for (size_t I = 0; I < Obs.size(); ++I)
    Speedups.push_back(Obs[I].timeFor(StaticLabel) /
                       Obs[I].timeFor(Predictions[I]));
  return Speedups;
}

double predict::speedupOverStatic(const std::vector<Observation> &Obs,
                                  const std::vector<int> &Predictions,
                                  int StaticLabel) {
  if (Obs.empty())
    return 0.0;
  return geomean(perObservationSpeedup(Obs, Predictions, StaticLabel));
}

double predict::accuracy(const std::vector<Observation> &Obs,
                         const std::vector<int> &Predictions) {
  assert(Obs.size() == Predictions.size());
  if (Obs.empty())
    return 0.0;
  size_t Correct = 0;
  for (size_t I = 0; I < Obs.size(); ++I)
    Correct += Obs[I].label() == Predictions[I];
  return static_cast<double>(Correct) / static_cast<double>(Obs.size());
}

CrossValidationResult
predict::leaveOneBenchmarkOut(const std::vector<Observation> &Obs,
                              const std::vector<Observation> &ExtraTraining,
                              FeatureSetKind Kind, TreeOptions Opts) {
  CrossValidationResult Result;
  Result.Predictions.assign(Obs.size(), 0);

  // Group observation indices by benchmark.
  std::map<std::string, std::vector<size_t>> Groups;
  for (size_t I = 0; I < Obs.size(); ++I)
    Groups[Obs[I].Suite + "/" + Obs[I].Benchmark].push_back(I);

  for (const auto &[Group, TestIdx] : Groups) {
    std::vector<Observation> Train;
    Train.reserve(Obs.size() + ExtraTraining.size());
    for (size_t I = 0; I < Obs.size(); ++I) {
      const std::string Key = Obs[I].Suite + "/" + Obs[I].Benchmark;
      if (Key != Group)
        Train.push_back(Obs[I]);
    }
    Train.insert(Train.end(), ExtraTraining.begin(), ExtraTraining.end());

    std::vector<Observation> Test;
    Test.reserve(TestIdx.size());
    for (size_t I : TestIdx)
      Test.push_back(Obs[I]);

    std::vector<int> Preds = trainAndPredict(Train, Test, Kind, Opts);
    for (size_t K = 0; K < TestIdx.size(); ++K)
      Result.Predictions[TestIdx[K]] = Preds[K];
  }
  return Result;
}

KFoldResult
predict::kFoldCrossValidation(const std::vector<Observation> &Obs,
                              const std::vector<Observation> &ExtraTraining,
                              FeatureSetKind Kind, const KFoldOptions &KOpts,
                              TreeOptions Opts) {
  CLGS_TRACE_SPAN("predict.kfold");
  KFoldResult Out;
  Out.Predictions.assign(Obs.size(), 0);
  Out.FoldOf.assign(Obs.size(), 0);
  if (Obs.empty())
    return Out;

  // Group observation indices by benchmark; the sorted map fixes the
  // group order independent of observation order across groups.
  std::map<std::string, std::vector<size_t>> Groups;
  for (size_t I = 0; I < Obs.size(); ++I)
    Groups[Obs[I].Suite + "/" + Obs[I].Benchmark].push_back(I);

  size_t Folds = std::max<size_t>(1, std::min(KOpts.Folds, Groups.size()));

  // Counter-keyed fold assignment: fold(g) is a pure function of
  // (Seed, g, Folds) — bit-identical for any worker count or schedule.
  Rng Root(KOpts.Seed);
  std::vector<std::vector<size_t>> FoldTest(Folds);
  size_t GroupIndex = 0;
  for (const auto &[Group, Members] : Groups) {
    size_t Fold = Root.split(GroupIndex).bounded(Folds);
    for (size_t I : Members) {
      Out.FoldOf[I] = static_cast<int>(Fold);
      FoldTest[Fold].push_back(I);
    }
    ++GroupIndex;
  }

  // Train the folds in parallel. Every fold reads the shared inputs and
  // writes only its own observations' prediction slots — disjoint by
  // construction, so the merge is race-free and order-preserving.
  size_t Pool =
      std::min<size_t>(ThreadPool::resolveWorkerCount(KOpts.Workers), Folds);
  ThreadPool TP(Pool);
  std::vector<uint8_t> Trained(Folds, 0);
  TP.parallelFor(0, Folds, [&](size_t, size_t Fold) {
    if (FoldTest[Fold].empty())
      return;
    CLGS_TRACE_SPAN_IDX("predict.kfold.fold", Fold);
    std::vector<Observation> Train;
    Train.reserve(Obs.size() + ExtraTraining.size());
    for (size_t I = 0; I < Obs.size(); ++I)
      if (Out.FoldOf[I] != static_cast<int>(Fold))
        Train.push_back(Obs[I]);
    Train.insert(Train.end(), ExtraTraining.begin(), ExtraTraining.end());
    std::vector<Observation> Test;
    Test.reserve(FoldTest[Fold].size());
    for (size_t I : FoldTest[Fold])
      Test.push_back(Obs[I]);
    std::vector<int> Preds = trainAndPredict(Train, Test, Kind, Opts);
    for (size_t K = 0; K < FoldTest[Fold].size(); ++K)
      Out.Predictions[FoldTest[Fold][K]] = Preds[K];
    Trained[Fold] = 1;
  });
  for (uint8_t T : Trained)
    Out.FoldsTrained += T;
  CLGS_COUNT_N("clgen.predict.folds_trained", Out.FoldsTrained);
  return Out;
}

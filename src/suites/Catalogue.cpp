//===- suites/Catalogue.cpp - Benchmark suite catalogue -----------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "suites/Catalogue.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace clgen;
using namespace clgen::suites;

namespace {

/// Per-suite stylistic signature: which patterns a suite draws from and
/// how its styles are biased.
struct SuiteStyle {
  std::vector<PatternKind> Pool;
  bool LocalMemoryBias = false;   // NPB exploits local buffers heavily.
  bool BranchingBias = false;     // Rodinia/graph codes branch a lot.
  int ComputeIntensity = 1;
  int InnerIterations = 64;
  std::vector<int> VectorWidths = {1, 1, 1, 2, 4};
};

struct BenchmarkSpec {
  const char *Name;
  int KernelCount;
};


/// Renders a benchmark name into a valid C identifier fragment.
std::string identFor(const std::string &Name) {
  std::string Out;
  for (char C : Name) {
    if ((C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
        (C >= '0' && C <= '9') || C == '_')
      Out += C;
    else
      Out += '_';
  }
  if (!Out.empty() && Out[0] >= '0' && Out[0] <= '9')
    Out = "k_" + Out;
  return Out;
}

/// Derives a kernel's style from the suite signature plus per-kernel
/// deterministic variation. The variation is deliberately wide: loop trip
/// counts, vector widths and extra branching are invisible to the Grewe
/// et al. static features, so the optimal-device boundary varies *within*
/// each feature-space neighbourhood — the property that makes sparse
/// training sets mispredict and dense synthetic coverage valuable
/// (sections 2 and 8 of the paper).
PatternStyle styleFor(const SuiteStyle &S, size_t KernelIndex) {
  Rng R(0xCA7A106 ^ (KernelIndex * 0x9E3779B97F4A7C15ull) ^
        (static_cast<uint64_t>(S.ComputeIntensity) << 32));
  PatternStyle St;
  St.UseLocalMemory = S.LocalMemoryBias;
  St.ExtraBranching = R.chance(S.BranchingBias ? 0.55 : 0.15);
  St.ComputeIntensity =
      S.ComputeIntensity + static_cast<int>(R.bounded(4));
  const int IterChoices[] = {16, 24, 32, 48, 64, 96, 128, 160};
  St.InnerIterations =
      IterChoices[(R.bounded(4) + (S.InnerIterations >= 64 ? 4 : 0)) % 8];
  St.VectorWidth =
      static_cast<int>(S.VectorWidths[R.bounded(S.VectorWidths.size())]);
  return St;
}

void addSuite(std::vector<BenchmarkKernel> &Out, const std::string &Suite,
              const std::vector<BenchmarkSpec> &Benchmarks,
              const SuiteStyle &Style,
              const std::vector<DatasetSpec> &DefaultDatasets) {
  size_t GlobalKernelIndex = 0;
  for (const BenchmarkSpec &B : Benchmarks) {
    for (int KI = 0; KI < B.KernelCount; ++KI, ++GlobalKernelIndex) {
      BenchmarkKernel K;
      K.Suite = Suite;
      K.Benchmark = B.Name;
      K.Pattern = Style.Pool[GlobalKernelIndex % Style.Pool.size()];
      K.KernelName =
          formatString("%s_k%d", identFor(B.Name).c_str(), KI);
      K.Source = renderPattern(K.Pattern, styleFor(Style, GlobalKernelIndex),
                               K.KernelName);
      K.Datasets = DefaultDatasets;
      Out.push_back(std::move(K));
    }
  }
}

/// NPB problem classes; per-benchmark availability matches the columns
/// of Figure 7 (e.g. there is no FT.C column).
std::vector<DatasetSpec> npbDatasets(const std::string &Benchmark) {
  const DatasetSpec S{"S", 1024};
  const DatasetSpec W{"W", 4096};
  const DatasetSpec A{"A", 16384};
  const DatasetSpec B{"B", 65536};
  const DatasetSpec C{"C", 262144};
  if (Benchmark == "BT" || Benchmark == "FT")
    return {A, B, S, W};
  if (Benchmark == "EP")
    return {A, B, C, W};
  return {A, B, C, S, W};
}

} // namespace

std::vector<std::string> suites::suiteNames() {
  return {"NPB",     "Rodinia",   "NVIDIA SDK", "AMD SDK",
          "Parboil", "PolyBench", "SHOC"};
}

std::vector<BenchmarkKernel> suites::buildSuite(const std::string &Name) {
  std::vector<BenchmarkKernel> Out;

  if (Name == "NPB") {
    // 7 benchmarks, 114 kernels. Each NAS benchmark is its own workload
    // family (BT is blocked linear algebra, CG is sparse, EP is pure
    // compute, ...), so each gets a distinct pattern pool — this is what
    // makes leave-one-benchmark-out hard and the paper's Figure 7
    // meaningful. The SNU implementation leans on local memory and
    // avoids branching (section 8.2).
    struct NpbSpec {
      const char *Name;
      int KernelCount;
      std::vector<PatternKind> Pool;
      int Intensity;
      int Iterations;
    };
    const std::vector<NpbSpec> Benchmarks = {
        {"BT", 20, {PatternKind::MatMulTiled, PatternKind::Stencil1D,
                    PatternKind::MatMulNaive}, 3, 64},
        {"CG", 12, {PatternKind::Spmv, PatternKind::Gather,
                    PatternKind::SerialReduce}, 1, 48},
        {"EP", 4, {PatternKind::MonteCarlo, PatternKind::NBody}, 4, 160},
        {"FT", 16, {PatternKind::Transpose, PatternKind::BitonicStep,
                    PatternKind::VectorOp, PatternKind::Fwt}, 2, 32},
        {"LU", 26, {PatternKind::DynProgRow, PatternKind::ScanBlock,
                    PatternKind::SerialReduce, PatternKind::Convolution},
         2, 64},
        {"MG", 16, {PatternKind::Stencil1D, PatternKind::Convolution,
                    PatternKind::ReductionTree}, 2, 48},
        {"SP", 20, {PatternKind::Saxpy, PatternKind::VectorOp,
                    PatternKind::ReductionTree}, 1, 32},
    };
    size_t GlobalKernelIndex = 0;
    for (const NpbSpec &B : Benchmarks) {
      auto Datasets = npbDatasets(B.Name);
      SuiteStyle Style;
      Style.Pool = B.Pool;
      Style.LocalMemoryBias = true;
      Style.ComputeIntensity = B.Intensity;
      Style.InnerIterations = B.Iterations;
      for (int KI = 0; KI < B.KernelCount; ++KI, ++GlobalKernelIndex) {
        BenchmarkKernel K;
        K.Suite = Name;
        K.Benchmark = B.Name;
        K.Pattern = B.Pool[KI % B.Pool.size()];
        K.KernelName = formatString("%s_k%d", identFor(B.Name).c_str(), KI);
        K.Source = renderPattern(K.Pattern,
                                 styleFor(Style, GlobalKernelIndex),
                                 K.KernelName);
        K.Datasets = Datasets;
        Out.push_back(std::move(K));
      }
    }
    return Out;
  }

  if (Name == "Rodinia") {
    // 14 benchmarks, 31 kernels: irregular, branch-heavy codes.
    SuiteStyle Style;
    Style.Pool = {PatternKind::GraphWalk,  PatternKind::DynProgRow,
                  PatternKind::KMeansAssign, PatternKind::Gather,
                  PatternKind::Stencil1D,  PatternKind::Histogram,
                  PatternKind::NBody,      PatternKind::SerialReduce};
    Style.BranchingBias = true;
    Style.InnerIterations = 48;
    addSuite(Out, Name,
             {{"backprop", 2}, {"bfs", 2}, {"b+tree", 2}, {"gaussian", 2},
              {"heartwall", 3}, {"hotspot", 1}, {"kmeans", 2},
              {"lavaMD", 1}, {"lud", 3}, {"nw", 2}, {"particlefilter", 4},
              {"pathfinder", 1}, {"srad", 5}, {"streamcluster", 1}},
             Style, {{"default", 65536}});
    return Out;
  }

  if (Name == "NVIDIA SDK") {
    // 6 benchmarks, 12 kernels: polished, compute-dense, coalesced.
    SuiteStyle Style;
    Style.Pool = {PatternKind::BlackScholes, PatternKind::Convolution,
                  PatternKind::MatMulTiled,  PatternKind::VectorOp,
                  PatternKind::MonteCarlo,   PatternKind::ReductionTree};
    Style.ComputeIntensity = 3;
    Style.VectorWidths = {1, 4};
    addSuite(Out, Name,
             {{"BlackScholes", 1}, {"ConvolutionSeparable", 2},
              {"DotProduct", 1}, {"FDTD3d", 2}, {"MatVecMul", 3},
              {"MatrixMul", 3}},
             Style, {{"default", 262144}});
    return Out;
  }

  if (Name == "AMD SDK") {
    // 12 benchmarks, 16 kernels: transform/sort micro-apps.
    SuiteStyle Style;
    Style.Pool = {PatternKind::BinarySearch, PatternKind::BitonicStep,
                  PatternKind::BlackScholes, PatternKind::Fwt,
                  PatternKind::Histogram,    PatternKind::MatMulNaive,
                  PatternKind::Transpose,    PatternKind::ScanBlock,
                  PatternKind::ReductionTree};
    Style.BranchingBias = true;
    addSuite(Out, Name,
             {{"BinarySearch", 1}, {"BitonicSort", 1}, {"BlackScholes", 1},
              {"DCT", 1}, {"FastWalshTransform", 1}, {"FloydWarshall", 1},
              {"Histogram", 1}, {"MatrixMultiplication", 3},
              {"MatrixTranspose", 1}, {"PrefixSum", 1}, {"Reduction", 1},
              {"ScanLargeArrays", 3}},
             Style, {{"default", 65536}});
    // Keep FastWalshTransform on the Fwt pattern regardless of pool
    // rotation: Listing 2 depends on it.
    for (BenchmarkKernel &K : Out) {
      if (K.Benchmark == "FastWalshTransform") {
        K.Pattern = PatternKind::Fwt;
        K.Source = renderPattern(PatternKind::Fwt, PatternStyle(),
                                 K.KernelName);
      }
    }
    return Out;
  }

  if (Name == "Parboil") {
    // 6 benchmarks, 8 kernels, 1-4 datasets each: memory-irregular HPC.
    SuiteStyle Style;
    Style.Pool = {PatternKind::Spmv,      PatternKind::Gather,
                  PatternKind::NBody,     PatternKind::Stencil1D,
                  PatternKind::GraphWalk, PatternKind::MatMulNaive};
    Style.InnerIterations = 96;
    std::vector<std::pair<BenchmarkSpec, std::vector<DatasetSpec>>> Specs = {
        {{"bfs", 1}, {{"1M", 131072}}},
        {{"cutcp", 1},
         {{"small", 16384}, {"large", 131072}}},
        {{"lbm", 1}, {{"short", 32768}, {"long", 262144}}},
        {{"mri-q", 2}, {{"small", 16384}, {"large", 65536}}},
        {{"spmv", 1},
         {{"small", 8192}, {"medium", 65536}, {"large", 262144}}},
        {{"stencil", 2}, {{"small", 32768}, {"default", 131072}}},
    };
    size_t GlobalKernelIndex = 0;
    for (const auto &[B, Datasets] : Specs) {
      for (int KI = 0; KI < B.KernelCount; ++KI, ++GlobalKernelIndex) {
        BenchmarkKernel K;
        K.Suite = Name;
        K.Benchmark = B.Name;
        K.Pattern = Style.Pool[GlobalKernelIndex % Style.Pool.size()];
        K.KernelName = formatString(
            "%s_k%d", identFor(B.Name).c_str(), KI);
        K.Source = renderPattern(K.Pattern,
                                 styleFor(Style, GlobalKernelIndex),
                                 K.KernelName);
        K.Datasets = Datasets;
        Out.push_back(std::move(K));
      }
    }
    return Out;
  }

  if (Name == "PolyBench") {
    // 14 benchmarks, 27 kernels: naive affine loop nests, no local
    // memory, plenty of strided access.
    SuiteStyle Style;
    Style.Pool = {PatternKind::MatMulNaive, PatternKind::Transpose,
                  PatternKind::SerialReduce, PatternKind::Saxpy,
                  PatternKind::VectorOp,     PatternKind::Convolution};
    Style.InnerIterations = 80;
    addSuite(Out, Name,
             {{"2mm", 2}, {"3mm", 3}, {"atax", 2}, {"bicg", 2},
              {"correlation", 3}, {"covariance", 2}, {"gemm", 1},
              {"gemver", 3}, {"gesummv", 1}, {"gramschmidt", 3},
              {"jacobi-2d", 1}, {"mvt", 2}, {"syr2k", 1}, {"syrk", 1}},
             Style, {{"default", 16384}});
    return Out;
  }

  if (Name == "SHOC") {
    // 12 benchmarks, 48 kernels: microbenchmark sweeps.
    SuiteStyle Style;
    Style.Pool = {PatternKind::VectorOp,     PatternKind::BitonicStep,
                  PatternKind::Spmv,         PatternKind::ReductionTree,
                  PatternKind::ScanBlock,    PatternKind::MonteCarlo,
                  PatternKind::MatMulTiled,  PatternKind::Stencil1D,
                  PatternKind::Gather,       PatternKind::NBody};
    Style.VectorWidths = {1, 2, 4};
    addSuite(Out, Name,
             {{"BFS", 2}, {"FFT", 6}, {"GEMM", 4}, {"MD", 2},
              {"MD5Hash", 1}, {"Reduction", 2}, {"S3D", 6}, {"Scan", 6},
              {"Sort", 8}, {"Spmv", 8}, {"Stencil2D", 2}, {"Triad", 1}},
             Style, {{"default", 131072}});
    return Out;
  }

  assert(false && "unknown suite");
  return Out;
}

std::vector<BenchmarkKernel> suites::buildCatalogue() {
  std::vector<BenchmarkKernel> Out;
  for (const std::string &Name : suiteNames()) {
    auto Suite = buildSuite(Name);
    Out.insert(Out.end(), std::make_move_iterator(Suite.begin()),
               std::make_move_iterator(Suite.end()));
  }
  return Out;
}

std::vector<SuiteSummary>
suites::catalogueSummary(const std::vector<BenchmarkKernel> &Catalogue) {
  std::vector<SuiteSummary> Rows;
  for (const std::string &Name : suiteNames()) {
    SuiteSummary Row;
    Row.Name = Name;
    if (Name == "NPB")
      Row.Version = "1.0.3 (SNU)";
    else if (Name == "Rodinia")
      Row.Version = "3.1";
    else if (Name == "NVIDIA SDK")
      Row.Version = "4.2";
    else if (Name == "AMD SDK")
      Row.Version = "3.0";
    else if (Name == "Parboil")
      Row.Version = "0.2";
    else if (Name == "PolyBench")
      Row.Version = "1.0";
    else
      Row.Version = "1.1.5";
    std::vector<std::string> Seen;
    for (const BenchmarkKernel &K : Catalogue) {
      if (K.Suite != Name)
        continue;
      Row.Kernels += 1;
      bool Known = false;
      for (const std::string &B : Seen)
        Known |= B == K.Benchmark;
      if (!Known) {
        Seen.push_back(K.Benchmark);
        Row.Benchmarks += 1;
      }
    }
    Rows.push_back(Row);
  }
  return Rows;
}

std::vector<SurveyEntry> suites::gpgpuSurvey() {
  // Figure 2 of the paper: bar heights read from the published figure
  // (average number of benchmarks used per paper, by suite of origin,
  // over 25 GPGPU performance-tuning papers, CGO/HiPC/PACT/PPoPP
  // 2013-2016).
  return {
      {"Rodinia", 5.8},      {"NVIDIA SDK", 4.5}, {"AMD SDK", 1.8},
      {"Parboil", 1.4},      {"NAS", 1.2},        {"Polybench", 1.0},
      {"SHOC", 0.9},         {"Ad-hoc", 0.6},     {"ISPASS", 0.3},
      {"Ploybench", 0.2},    {"Lonestar", 0.2},   {"SPEC-Viewperf", 0.1},
      {"MARS", 0.1},         {"GPGPUsim", 0.1},
  };
}

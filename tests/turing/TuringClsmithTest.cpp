//===- tests/turing/TuringClsmithTest.cpp - clsmith + panel + githubsim -------===//

#include "clsmith/ClSmith.h"
#include "githubsim/GithubSim.h"
#include "model/NGramModel.h"
#include "turing/TuringTest.h"
#include "vm/Compiler.h"

#include <gtest/gtest.h>

using namespace clgen;

//===----------------------------------------------------------------------===//
// CLSmith-style generator
//===----------------------------------------------------------------------===//

TEST(ClSmithTest, KernelsCompile) {
  for (const auto &Src : clsmith::generateKernels(20)) {
    auto K = vm::compileFirstKernel(Src);
    EXPECT_TRUE(K.ok()) << K.errorMessage() << "\n" << Src;
  }
}

TEST(ClSmithTest, HasThePaperTells) {
  auto Kernels = clsmith::generateKernels(10);
  for (const auto &Src : Kernels) {
    // "their only input is a single ulong pointer".
    EXPECT_NE(Src.find("__global ulong* result"), std::string::npos);
    EXPECT_GT(turing::clsmithTellScore(Src), 1.5);
  }
}

TEST(ClSmithTest, DeterministicStream) {
  auto A = clsmith::generateKernels(5);
  auto B = clsmith::generateKernels(5);
  EXPECT_EQ(A, B);
}

TEST(ClSmithTest, KernelsAreDistinct) {
  auto Kernels = clsmith::generateKernels(10);
  std::set<std::string> Unique(Kernels.begin(), Kernels.end());
  EXPECT_EQ(Unique.size(), Kernels.size());
}

//===----------------------------------------------------------------------===//
// GithubSim
//===----------------------------------------------------------------------===//

TEST(GithubSimTest, FileCountAndDeterminism) {
  githubsim::GithubSimOptions Opts;
  Opts.FileCount = 50;
  auto A = githubsim::mineGithub(Opts);
  auto B = githubsim::mineGithub(Opts);
  ASSERT_EQ(A.size(), 50u);
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A[I].Text, B[I].Text);
}

TEST(GithubSimTest, ContainsRawNoise) {
  githubsim::GithubSimOptions Opts;
  Opts.FileCount = 200;
  auto Files = githubsim::mineGithub(Opts);
  int WithComments = 0, WithMacros = 0;
  for (const auto &F : Files) {
    WithComments += F.Text.find("//") != std::string::npos ||
                    F.Text.find("/*") != std::string::npos;
    WithMacros += F.Text.find("#define") != std::string::npos;
  }
  EXPECT_GT(WithComments, 60);
  EXPECT_GT(WithMacros, 30);
}

TEST(GithubSimTest, SeedChangesContent) {
  githubsim::GithubSimOptions A, B;
  A.FileCount = B.FileCount = 20;
  B.Seed = 0xDEADBEEF;
  auto FA = githubsim::mineGithub(A);
  auto FB = githubsim::mineGithub(B);
  int Same = 0;
  for (size_t I = 0; I < FA.size(); ++I)
    Same += FA[I].Text == FB[I].Text;
  EXPECT_LT(Same, 5);
}

//===----------------------------------------------------------------------===//
// Turing panel
//===----------------------------------------------------------------------===//

namespace {

struct Panels {
  std::vector<std::string> Human;
  std::vector<std::string> Machine; // CLSmith, normalised-ish.
  model::NGramModel Reference;
};

Panels &panels() {
  static Panels P = [] {
    Panels Out;
    githubsim::GithubSimOptions GOpts;
    GOpts.FileCount = 250;
    auto Corpus = corpus::buildCorpus(githubsim::mineGithub(GOpts));
    Out.Human = Corpus.Entries;
    Out.Machine = clsmith::generateKernels(40);
    Out.Reference.train(Out.Human);
    return Out;
  }();
  return P;
}

} // namespace

TEST(TuringTest, ControlGroupDetectsClsmith) {
  turing::PanelOptions Opts;
  Opts.Participants = 5;
  auto R = turing::runPanel(panels().Human, panels().Machine,
                            panels().Reference, Opts);
  // Paper: 96% (sd 9%), zero false positives.
  EXPECT_GT(R.MeanAccuracy, 0.75);
  EXPECT_EQ(R.Accuracies.size(), 5u);
}

TEST(TuringTest, JudgingHumanVsHumanIsChance) {
  // Both pools drawn from the human corpus: accuracy must hover at 50%.
  turing::PanelOptions Opts;
  Opts.Participants = 12;
  auto R = turing::runPanel(panels().Human, panels().Human,
                            panels().Reference, Opts);
  EXPECT_NEAR(R.MeanAccuracy, 0.5, 0.15);
}

TEST(TuringTest, TellScoreSeparatesPools) {
  double HumanTells = 0.0, MachineTells = 0.0;
  for (const auto &K : panels().Human)
    HumanTells += turing::clsmithTellScore(K);
  for (const auto &K : panels().Machine)
    MachineTells += turing::clsmithTellScore(K);
  EXPECT_LT(HumanTells / panels().Human.size(),
            MachineTells / panels().Machine.size());
}

TEST(TuringTest, ResultStatisticsConsistent) {
  turing::PanelOptions Opts;
  Opts.Participants = 4;
  auto R = turing::runPanel(panels().Human, panels().Machine,
                            panels().Reference, Opts);
  for (double A : R.Accuracies) {
    EXPECT_GE(A, 0.0);
    EXPECT_LE(A, 1.0);
  }
  EXPECT_GE(R.FalseNegatives, 0);
  EXPECT_GE(R.FalsePositives, 0);
}

//===- clgen/Sampler.cpp - Model sampling (Algorithm 1) -----------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "clgen/Sampler.h"

#include "support/StringUtils.h"

#include <cmath>

using namespace clgen;
using namespace clgen::core;

ArgSpec ArgSpec::figure6() {
  ArgSpec Spec;
  Spec.ArgTypes = {"__global float*", "__global float*", "__global float*",
                   "const int"};
  return Spec;
}

std::string ArgSpec::seedText() const {
  std::string Seed = "__kernel void A(";
  for (size_t I = 0; I < ArgTypes.size(); ++I) {
    if (I != 0)
      Seed += ", ";
    Seed += ArgTypes[I];
    Seed += " ";
    Seed += sequentialName(I, false);
  }
  Seed += ") {";
  return Seed;
}

std::string core::freeModeSeed() { return "__kernel void A("; }

namespace {

/// Temperature-adjusted draw from a distribution.
int drawToken(const std::vector<double> &Dist, double Temperature, Rng &R) {
  if (Temperature <= 0.0)
    Temperature = 1e-3;
  std::vector<double> Weights(Dist.size());
  double Sum = 0.0;
  for (size_t I = 0; I < Dist.size(); ++I) {
    Weights[I] = std::pow(Dist[I], 1.0 / Temperature);
    Sum += Weights[I];
  }
  if (Sum <= 0.0)
    return 0;
  double Target = R.uniform() * Sum;
  double Running = 0.0;
  for (size_t I = 0; I < Weights.size(); ++I) {
    Running += Weights[I];
    if (Target < Running)
      return static_cast<int>(I);
  }
  return static_cast<int>(Weights.size()) - 1;
}

} // namespace

std::optional<std::string> core::sampleKernel(model::LanguageModel &Model,
                                              const std::string &Seed,
                                              const SampleOptions &Opts,
                                              Rng &R) {
  const model::Vocabulary &Vocab = Model.vocabulary();

  // Algorithm 1, lines 1-2: S <- seed, d <- block depth of the seed.
  Model.reset();
  int Depth = 0;
  for (char C : Seed) {
    Model.observe(Vocab.idOf(C));
    if (C == '{')
      ++Depth;
    if (C == '}')
      --Depth;
  }

  std::string Sample = Seed;
  // Lines 3-14: generate until the function block closes.
  while (Sample.size() < Opts.MaxLength) {
    std::vector<double> Dist = Model.nextDistribution();
    int Token = drawToken(Dist, Opts.Temperature, R);
    if (Token == model::Vocabulary::EndOfText) {
      // The model ended the kernel itself; valid only if the block is
      // closed (free mode may legitimately end after the signature).
      if (Depth == 0 && Sample.find('{') != std::string::npos)
        return Sample;
      return std::nullopt;
    }
    char C = Vocab.charOf(Token);
    if (C == '{')
      ++Depth;
    if (C == '}') {
      --Depth;
    }
    Sample += C;
    Model.observe(Token);
    if (C == '}' && Depth == 0)
      return Sample; // Exited the function block: stop sampling.
  }
  return std::nullopt; // Length cap reached before the kernel closed.
}

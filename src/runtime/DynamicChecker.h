//===- runtime/DynamicChecker.h - Useful-work validation ---------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the dynamic checker of section 5.2. A kernel "performs
/// useful work" when it predictably computes some result:
///
///   1. Create four payloads A1, B1, A2, B2 with A1 = A2, B1 = B2,
///      A1 != B1.
///   2. Execute the kernel on each.
///   3. Assert: outputs differ from inputs (has output); A1out != B1out
///      (input sensitive); A1out == A2out and B1out == B2out
///      (deterministic).
///
/// Floating-point comparisons use an epsilon; launch failures (compile
/// errors never reach here, but out-of-bounds accesses, barrier
/// divergence and instruction-budget timeouts do) are reported as their
/// own rejection class.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_RUNTIME_DYNAMICCHECKER_H
#define CLGEN_RUNTIME_DYNAMICCHECKER_H

#include "runtime/Payload.h"
#include "support/Rng.h"
#include "support/Trap.h"
#include "vm/Bytecode.h"

#include <string>

namespace clgen {
namespace runtime {

/// The taxonomy lives in support/ (the interpreter produces traps before
/// the runtime layer exists); runtime code spells it runtime::TrapKind.
using clgen::TrapKind;

enum class CheckOutcome {
  UsefulWork,      // All assertions hold.
  LaunchFailure,   // Crash / OOB / timeout / divergence during execution.
  NoOutput,        // Outputs equal inputs.
  InputInsensitive, // Same outputs for different inputs.
  NonDeterministic, // Different outputs for identical inputs.
};

const char *checkOutcomeName(CheckOutcome O);

struct CheckResult {
  CheckOutcome Outcome = CheckOutcome::LaunchFailure;
  /// Human-readable detail, populated for every rejection class (empty
  /// only for UsefulWork).
  std::string Detail;
  /// Classified cause: the interpreter's trap for LaunchFailure, the
  /// matching Check* kind for the three semantic rejections, None for
  /// UsefulWork.
  TrapKind Trap = TrapKind::None;

  bool useful() const { return Outcome == CheckOutcome::UsefulWork; }
};

struct CheckOptions {
  /// Payload size used for checking (small: correctness only).
  size_t GlobalSize = 256;
  size_t LocalSize = 32;
  /// Timeout budget per execution.
  uint64_t MaxInstructions = 20ull * 1000 * 1000;
  double Epsilon = 1e-6;
};

/// Runs the four-execution dynamic check on \p Kernel.
CheckResult checkKernel(const vm::CompiledKernel &Kernel,
                        const CheckOptions &Opts, Rng &R);

} // namespace runtime
} // namespace clgen

#endif // CLGEN_RUNTIME_DYNAMICCHECKER_H

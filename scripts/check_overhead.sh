#!/usr/bin/env bash
#===- scripts/check_overhead.sh - zero-drift proof for telemetry ---------===//
#
# Configures and builds a nested tree with -DCLGS_TELEMETRY=OFF (every
# CLGS_COUNT / CLGS_HIST_US / CLGS_TRACE_SPAN site compiled to nothing)
# and runs the full test suite there. Passing proves that REMOVING the
# instrumentation changes no behavior: the golden byte-identity tests,
# store round-trips and pipeline determinism suites must all pass with
# the sites absent — telemetry is pure observation. Registered as the
# ctest `check_overhead` (label `overhead`); run manually:
#
#   bash scripts/check_overhead.sh <source-dir> <build-dir>
#
# The nested tree builds only the test binaries, and the nested ctest
# skips the stress label plus the failpoints/overhead meta-fixtures so
# the nested-build recursion stays at one level. Tests that assert
# telemetry side effects guard on support::telemetryCompiledIn() and
# degrade to checking the disabled contract in this tree.
#
# The enabled-vs-disabled cost on the hot paths (BM_InterpretKernel,
# BM_SynthesizeBatch) is tracked separately in BENCH_perf.json.
#
#===----------------------------------------------------------------------===//

set -eu

SRC=${1:?usage: check_overhead.sh <source-dir> <build-dir>}
BUILD=${2:?usage: check_overhead.sh <source-dir> <build-dir>}

echo "check_overhead: configuring $BUILD with -DCLGS_TELEMETRY=OFF"
cmake -B "$BUILD" -S "$SRC" -DCLGS_TELEMETRY=OFF \
      -DCLGS_NESTED_FIXTURE=ON >/dev/null

echo "check_overhead: building test binaries"
cmake --build "$BUILD" -j --target clgen_tests clgen_stress_tests >/dev/null

echo "check_overhead: running the suite with telemetry compiled out"
# -LE must precede the bare -j: ctest's optional-value -j would
# otherwise swallow the -LE token and run the suite unfiltered.
(cd "$BUILD" && ctest --output-on-failure -LE 'stress|failpoints|overhead|dispatch' -j)

echo "check_overhead: telemetry-off build drifts by nothing"

//===- support/StringUtils.h - String helpers -------------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string helpers shared by the frontend, the corpus pipeline and the
/// bench harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_SUPPORT_STRINGUTILS_H
#define CLGEN_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace clgen {

/// Splits \p Text on \p Sep. Empty fields are kept.
std::vector<std::string> splitString(std::string_view Text, char Sep);

/// Splits \p Text into lines, treating a trailing newline as terminating the
/// last line rather than opening an empty one.
std::vector<std::string> splitLines(std::string_view Text);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view Text);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Parts,
                        std::string_view Sep);

/// Returns true if \p Text begins with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// Returns true if \p Text ends with \p Suffix.
bool endsWith(std::string_view Text, std::string_view Suffix);

/// Replaces every occurrence of \p From in \p Text with \p To.
std::string replaceAll(std::string Text, std::string_view From,
                       std::string_view To);

/// Counts the lines of \p Text (number of newline-separated segments with at
/// least one non-whitespace character).
size_t countNonBlankLines(std::string_view Text);

/// Returns the name for the Nth identifier in the rewriter's sequential
/// series: 0 -> "a", 25 -> "z", 26 -> "aa" ... (lowercase) or "A", "AA", ...
/// when \p Uppercase is set. This is the naming scheme of section 4.1.
std::string sequentialName(size_t Index, bool Uppercase);

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace clgen

#endif // CLGEN_SUPPORT_STRINGUTILS_H

//===- clsmith/ClSmith.h - CLSmith-style random generator --------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A grammar-based random OpenCL kernel generator in the style of
/// CLSmith (Lidbury et al., PLDI'15) — the baseline generator the paper
/// compares against in the Turing evaluation (section 6.1) and the
/// feature-space match analysis (Figure 9).
///
/// CLSmith targets differential testing, not benchmarking; its output is
/// valid but unmistakably machine-made. The tells the paper mentions are
/// reproduced deliberately: a single `__global ulong*` result buffer,
/// accumulator variables named like p_37/l_12, deep chains of mixed
/// bitwise arithmetic with magic constants, and loop nests that compute
/// checksums rather than anything resembling an application.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_CLSMITH_CLSMITH_H
#define CLGEN_CLSMITH_CLSMITH_H

#include "support/Rng.h"

#include <string>
#include <vector>

namespace clgen {
namespace clsmith {

struct ClSmithOptions {
  /// Expression nesting depth.
  int MaxDepth = 6;
  /// Number of checksum accumulator statements.
  int StatementCount = 10;
  uint64_t Seed = 0xC15317;
};

/// Generates one random differential-testing kernel.
std::string generateKernel(Rng &R,
                           const ClSmithOptions &Opts = ClSmithOptions());

/// Generates \p Count kernels from a fresh deterministic stream.
std::vector<std::string> generateKernels(size_t Count,
                                         const ClSmithOptions &Opts =
                                             ClSmithOptions());

} // namespace clsmith
} // namespace clgen

#endif // CLGEN_CLSMITH_CLSMITH_H

//===- ocl/Lexer.cpp - OpenCL C lexer --------------------------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ocl/Lexer.h"

#include <cctype>
#include <unordered_set>

using namespace clgen;
using namespace clgen::ocl;

std::string ocl::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof: return "end of file";
  case TokenKind::Identifier: return "identifier";
  case TokenKind::Keyword: return "keyword";
  case TokenKind::IntLiteral: return "integer literal";
  case TokenKind::FloatLiteral: return "float literal";
  case TokenKind::StringLiteral: return "string literal";
  case TokenKind::LParen: return "'('";
  case TokenKind::RParen: return "')'";
  case TokenKind::LBrace: return "'{'";
  case TokenKind::RBrace: return "'}'";
  case TokenKind::LBracket: return "'['";
  case TokenKind::RBracket: return "']'";
  case TokenKind::Semi: return "';'";
  case TokenKind::Comma: return "','";
  case TokenKind::Dot: return "'.'";
  case TokenKind::Arrow: return "'->'";
  case TokenKind::Plus: return "'+'";
  case TokenKind::Minus: return "'-'";
  case TokenKind::Star: return "'*'";
  case TokenKind::Slash: return "'/'";
  case TokenKind::Percent: return "'%'";
  case TokenKind::Amp: return "'&'";
  case TokenKind::Pipe: return "'|'";
  case TokenKind::Caret: return "'^'";
  case TokenKind::Tilde: return "'~'";
  case TokenKind::Exclaim: return "'!'";
  case TokenKind::Question: return "'?'";
  case TokenKind::Colon: return "':'";
  case TokenKind::Less: return "'<'";
  case TokenKind::Greater: return "'>'";
  case TokenKind::LessEqual: return "'<='";
  case TokenKind::GreaterEqual: return "'>='";
  case TokenKind::EqualEqual: return "'=='";
  case TokenKind::ExclaimEqual: return "'!='";
  case TokenKind::AmpAmp: return "'&&'";
  case TokenKind::PipePipe: return "'||'";
  case TokenKind::LessLess: return "'<<'";
  case TokenKind::GreaterGreater: return "'>>'";
  case TokenKind::Equal: return "'='";
  case TokenKind::PlusEqual: return "'+='";
  case TokenKind::MinusEqual: return "'-='";
  case TokenKind::StarEqual: return "'*='";
  case TokenKind::SlashEqual: return "'/='";
  case TokenKind::PercentEqual: return "'%='";
  case TokenKind::AmpEqual: return "'&='";
  case TokenKind::PipeEqual: return "'|='";
  case TokenKind::CaretEqual: return "'^='";
  case TokenKind::LessLessEqual: return "'<<='";
  case TokenKind::GreaterGreaterEqual: return "'>>='";
  case TokenKind::PlusPlus: return "'++'";
  case TokenKind::MinusMinus: return "'--'";
  case TokenKind::Unknown: return "unknown token";
  }
  return "token";
}

bool ocl::isReservedKeyword(std::string_view Name) {
  static const std::unordered_set<std::string_view> Keywords = {
      "if",       "else",     "for",      "while",    "do",
      "return",   "break",    "continue", "switch",   "case",
      "default",  "goto",     "sizeof",   "const",    "volatile",
      "restrict", "inline",   "static",   "extern",   "typedef",
      "struct",   "union",    "enum",     "unsigned", "signed",
      "__kernel", "kernel",   "__global", "global",   "__local",
      "local",    "__constant", "constant", "__private", "private",
      "__read_only", "read_only", "__write_only", "write_only",
      "__attribute__",
  };
  return Keywords.count(Name) != 0;
}

namespace {

/// Cursor over the source text with line/column tracking.
class Cursor {
public:
  explicit Cursor(std::string_view Source) : Source(Source) {}

  bool atEnd() const { return Pos >= Source.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = Source[Pos++];
    if (C == '\n') {
      ++Line;
      Column = 1;
    } else {
      ++Column;
    }
    return C;
  }
  bool match(char Expected) {
    if (atEnd() || Source[Pos] != Expected)
      return false;
    advance();
    return true;
  }

  std::string_view Source;
  size_t Pos = 0;
  int Line = 1;
  int Column = 1;
};

} // namespace

static bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}
static bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

std::vector<Token> ocl::lex(std::string_view Source) {
  std::vector<Token> Tokens;
  Cursor C(Source);

  auto Emit = [&](TokenKind Kind, std::string Text, int Line, int Col) {
    Token T;
    T.Kind = Kind;
    T.Text = std::move(Text);
    T.Line = Line;
    T.Column = Col;
    Tokens.push_back(std::move(T));
  };

  while (!C.atEnd()) {
    int Line = C.Line, Col = C.Column;
    char Ch = C.peek();

    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(Ch))) {
      C.advance();
      continue;
    }

    // Comments (tolerated so the lexer works on raw text too).
    if (Ch == '/' && C.peek(1) == '/') {
      while (!C.atEnd() && C.peek() != '\n')
        C.advance();
      continue;
    }
    if (Ch == '/' && C.peek(1) == '*') {
      C.advance();
      C.advance();
      while (!C.atEnd() && !(C.peek() == '*' && C.peek(1) == '/'))
        C.advance();
      if (!C.atEnd()) {
        C.advance();
        C.advance();
      }
      continue;
    }

    // Identifiers and keywords.
    if (isIdentStart(Ch)) {
      std::string Text;
      while (!C.atEnd() && isIdentChar(C.peek()))
        Text += C.advance();
      TokenKind Kind = isReservedKeyword(Text) ? TokenKind::Keyword
                                               : TokenKind::Identifier;
      Emit(Kind, std::move(Text), Line, Col);
      continue;
    }

    // Numeric literals. Handles decimal/hex integers, suffixes, floats with
    // exponents and the f/F suffix.
    if (std::isdigit(static_cast<unsigned char>(Ch)) ||
        (Ch == '.' && std::isdigit(static_cast<unsigned char>(C.peek(1))))) {
      std::string Text;
      bool IsFloat = false;
      if (Ch == '0' && (C.peek(1) == 'x' || C.peek(1) == 'X')) {
        Text += C.advance();
        Text += C.advance();
        while (!C.atEnd() &&
               std::isxdigit(static_cast<unsigned char>(C.peek())))
          Text += C.advance();
      } else {
        while (!C.atEnd() &&
               std::isdigit(static_cast<unsigned char>(C.peek())))
          Text += C.advance();
        if (C.peek() == '.') {
          IsFloat = true;
          Text += C.advance();
          while (!C.atEnd() &&
                 std::isdigit(static_cast<unsigned char>(C.peek())))
            Text += C.advance();
        }
        if (C.peek() == 'e' || C.peek() == 'E') {
          char Next = C.peek(1);
          char Next2 = C.peek(2);
          if (std::isdigit(static_cast<unsigned char>(Next)) ||
              ((Next == '+' || Next == '-') &&
               std::isdigit(static_cast<unsigned char>(Next2)))) {
            IsFloat = true;
            Text += C.advance(); // e
            if (C.peek() == '+' || C.peek() == '-')
              Text += C.advance();
            while (!C.atEnd() &&
                   std::isdigit(static_cast<unsigned char>(C.peek())))
              Text += C.advance();
          }
        }
      }
      // Suffixes: f/F force float; u/U/l/L are integer suffixes.
      if (C.peek() == 'f' || C.peek() == 'F') {
        IsFloat = true;
        Text += C.advance();
      } else {
        while (C.peek() == 'u' || C.peek() == 'U' || C.peek() == 'l' ||
               C.peek() == 'L')
          Text += C.advance();
      }
      Emit(IsFloat ? TokenKind::FloatLiteral : TokenKind::IntLiteral,
           std::move(Text), Line, Col);
      continue;
    }

    // String literals (kept whole; OpenCL kernels rarely use them).
    if (Ch == '"') {
      std::string Text;
      Text += C.advance();
      while (!C.atEnd() && C.peek() != '"' && C.peek() != '\n') {
        if (C.peek() == '\\') {
          Text += C.advance();
          if (!C.atEnd())
            Text += C.advance();
          continue;
        }
        Text += C.advance();
      }
      if (!C.atEnd() && C.peek() == '"') {
        Text += C.advance();
        Emit(TokenKind::StringLiteral, std::move(Text), Line, Col);
      } else {
        Emit(TokenKind::Unknown, std::move(Text), Line, Col);
      }
      continue;
    }

    // Character literals become integer literals with the char's value.
    if (Ch == '\'') {
      C.advance();
      int Value = 0;
      if (C.peek() == '\\') {
        C.advance();
        char Esc = C.atEnd() ? '\0' : C.advance();
        switch (Esc) {
        case 'n': Value = '\n'; break;
        case 't': Value = '\t'; break;
        case '0': Value = 0; break;
        case 'r': Value = '\r'; break;
        default: Value = Esc; break;
        }
      } else if (!C.atEnd()) {
        Value = C.advance();
      }
      if (!C.atEnd() && C.peek() == '\'') {
        C.advance();
        Emit(TokenKind::IntLiteral, std::to_string(Value), Line, Col);
      } else {
        Emit(TokenKind::Unknown, "'", Line, Col);
      }
      continue;
    }

    // Operators and punctuation.
    C.advance();
    TokenKind Kind = TokenKind::Unknown;
    std::string Text(1, Ch);
    switch (Ch) {
    case '(': Kind = TokenKind::LParen; break;
    case ')': Kind = TokenKind::RParen; break;
    case '{': Kind = TokenKind::LBrace; break;
    case '}': Kind = TokenKind::RBrace; break;
    case '[': Kind = TokenKind::LBracket; break;
    case ']': Kind = TokenKind::RBracket; break;
    case ';': Kind = TokenKind::Semi; break;
    case ',': Kind = TokenKind::Comma; break;
    case '.': Kind = TokenKind::Dot; break;
    case '~': Kind = TokenKind::Tilde; break;
    case '?': Kind = TokenKind::Question; break;
    case ':': Kind = TokenKind::Colon; break;
    case '+':
      if (C.match('+')) { Kind = TokenKind::PlusPlus; Text = "++"; }
      else if (C.match('=')) { Kind = TokenKind::PlusEqual; Text = "+="; }
      else Kind = TokenKind::Plus;
      break;
    case '-':
      if (C.match('-')) { Kind = TokenKind::MinusMinus; Text = "--"; }
      else if (C.match('=')) { Kind = TokenKind::MinusEqual; Text = "-="; }
      else if (C.match('>')) { Kind = TokenKind::Arrow; Text = "->"; }
      else Kind = TokenKind::Minus;
      break;
    case '*':
      if (C.match('=')) { Kind = TokenKind::StarEqual; Text = "*="; }
      else Kind = TokenKind::Star;
      break;
    case '/':
      if (C.match('=')) { Kind = TokenKind::SlashEqual; Text = "/="; }
      else Kind = TokenKind::Slash;
      break;
    case '%':
      if (C.match('=')) { Kind = TokenKind::PercentEqual; Text = "%="; }
      else Kind = TokenKind::Percent;
      break;
    case '&':
      if (C.match('&')) { Kind = TokenKind::AmpAmp; Text = "&&"; }
      else if (C.match('=')) { Kind = TokenKind::AmpEqual; Text = "&="; }
      else Kind = TokenKind::Amp;
      break;
    case '|':
      if (C.match('|')) { Kind = TokenKind::PipePipe; Text = "||"; }
      else if (C.match('=')) { Kind = TokenKind::PipeEqual; Text = "|="; }
      else Kind = TokenKind::Pipe;
      break;
    case '^':
      if (C.match('=')) { Kind = TokenKind::CaretEqual; Text = "^="; }
      else Kind = TokenKind::Caret;
      break;
    case '!':
      if (C.match('=')) { Kind = TokenKind::ExclaimEqual; Text = "!="; }
      else Kind = TokenKind::Exclaim;
      break;
    case '=':
      if (C.match('=')) { Kind = TokenKind::EqualEqual; Text = "=="; }
      else Kind = TokenKind::Equal;
      break;
    case '<':
      if (C.match('<')) {
        if (C.match('=')) { Kind = TokenKind::LessLessEqual; Text = "<<="; }
        else { Kind = TokenKind::LessLess; Text = "<<"; }
      } else if (C.match('=')) {
        Kind = TokenKind::LessEqual; Text = "<=";
      } else {
        Kind = TokenKind::Less;
      }
      break;
    case '>':
      if (C.match('>')) {
        if (C.match('=')) {
          Kind = TokenKind::GreaterGreaterEqual; Text = ">>=";
        } else {
          Kind = TokenKind::GreaterGreater; Text = ">>";
        }
      } else if (C.match('=')) {
        Kind = TokenKind::GreaterEqual; Text = ">=";
      } else {
        Kind = TokenKind::Greater;
      }
      break;
    default:
      Kind = TokenKind::Unknown;
      break;
    }
    Emit(Kind, std::move(Text), Line, Col);
  }

  Emit(TokenKind::Eof, "", C.Line, C.Column);
  return Tokens;
}

//===- bench/fig7_npb.cpp - Figure 7: NPB speedups with CLgen training --------===//
//
// Regenerates Figure 7: "Speedup of programs using Grewe et al.
// predictive model with and without synthetic benchmarks", per NPB
// benchmark.dataset column, on both platforms.
//
// Paper shape targets: baseline model beats the best static device
// mapping (1.26x AMD / 2.50x NVIDIA); adding 1,000 CLgen kernels to the
// training set improves that (1.57x AMD / 3.26x NVIDIA), i.e. a 1.27x
// average improvement across both systems (2.42x including per-benchmark
// wins).
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "support/Stats.h"

#include <map>

using namespace clgen;
using namespace clgen::bench;

namespace {

struct ColumnResult {
  std::string Name;
  double Baseline = 0.0;
  double WithClgen = 0.0;
};

void runPlatform(const runtime::Platform &P, core::ClgenPipeline &Pipeline,
                 size_t SyntheticCount, const char *FigureLabel,
                 const char *BaselineDevice) {
  std::printf("%s", sectionBanner(formatString(
                                      "Figure 7%s: NPB speedups over the "
                                      "best static mapping (%s)",
                                      FigureLabel, P.Name.c_str()))
                        .c_str());

  auto Catalogue = suites::buildCatalogue();
  auto All = suites::measureCatalogue(Catalogue, P);
  auto Npb = bySuite(All, "NPB");
  // Training pool for the baseline model: the other six suites (the
  // paper augments NPB training with the other suites' kernels), with
  // leave-one-NPB-benchmark-out over NPB itself.
  std::vector<predict::Observation> OtherSuites;
  for (const auto &O : All)
    if (O.Suite != "NPB")
      OtherSuites.push_back(O);

  std::printf("NPB observations: %zu; other-suite training pool: %zu\n",
              Npb.size(), OtherSuites.size());
  std::printf("synthesizing + measuring %zu CLgen kernels...\n",
              SyntheticCount);
  auto Synthetic = measureSynthetic(Pipeline, SyntheticCount, P);
  std::printf("synthetic observations passing the dynamic checker: %zu\n\n",
              Synthetic.size());

  int StaticLabel = predict::staticBestDevice(Npb);
  std::printf("best static mapping for NPB on this platform: %s-only "
              "(paper: %s)\n\n",
              StaticLabel == 1 ? "GPU" : "CPU", BaselineDevice);

  // Baseline: LOO over NPB benchmarks, training includes other suites.
  auto Baseline = predict::leaveOneBenchmarkOut(
      Npb, OtherSuites, predict::FeatureSetKind::Grewe);
  // With CLgen: same, plus synthetic training observations.
  std::vector<predict::Observation> Extra = OtherSuites;
  Extra.insert(Extra.end(), Synthetic.begin(), Synthetic.end());
  auto WithClgen = predict::leaveOneBenchmarkOut(
      Npb, Extra, predict::FeatureSetKind::Grewe);

  // Aggregate per benchmark.dataset column (geomean across kernels).
  std::map<std::string, std::vector<double>> BaseCol, ClgenCol;
  auto BaseSpeed =
      predict::perObservationSpeedup(Npb, Baseline.Predictions, StaticLabel);
  auto ClgenSpeed = predict::perObservationSpeedup(
      Npb, WithClgen.Predictions, StaticLabel);
  for (size_t I = 0; I < Npb.size(); ++I) {
    BaseCol[Npb[I].qualifiedName()].push_back(BaseSpeed[I]);
    ClgenCol[Npb[I].qualifiedName()].push_back(ClgenSpeed[I]);
  }

  TextTable T;
  T.setHeader({"benchmark", "Grewe et al.", "w. CLgen"});
  int Improved = 0, Columns = 0;
  std::vector<double> BaseCols, ClgenCols;
  for (const auto &[Name, Speeds] : BaseCol) {
    double B = geomean(Speeds);
    double C = geomean(ClgenCol[Name]);
    T.addRow({Name, formatString("%.2fx", B), formatString("%.2fx", C)});
    BaseCols.push_back(B);
    ClgenCols.push_back(C);
    Improved += C > B + 1e-9;
    Columns += 1;
  }
  // The figure's "Average" bar is the arithmetic mean over the
  // benchmark.dataset columns.
  double BaseAvg = mean(BaseCols);
  double ClgenAvg = mean(ClgenCols);
  T.addRow({"Average", formatString("%.2fx", BaseAvg),
            formatString("%.2fx", ClgenAvg)});
  std::printf("%s", T.render().c_str());

  std::printf("\nSpeedup over best static mapping: %.2fx -> %.2fx with "
              "CLgen\n",
              BaseAvg, ClgenAvg);
  std::printf("Prediction improved on %d of %d benchmark.dataset columns "
              "(%.1f%%)\n",
              Improved, Columns, 100.0 * Improved / std::max(Columns, 1));
  std::printf("Model accuracy: %.1f%% -> %.1f%%\n",
              100.0 * predict::accuracy(Npb, Baseline.Predictions),
              100.0 * predict::accuracy(Npb, WithClgen.Predictions));
}

} // namespace

int main() {
  std::printf("training CLgen on the mined corpus...\n");
  auto Pipeline = trainedPipeline();
  std::printf("corpus entries: %zu\n", Pipeline.corpus().Entries.size());

  // The paper synthesizes 1,000 kernels; we default to 400 accepted
  // kernels to keep the simulated run affordable (scaling documented in
  // EXPERIMENTS.md).
  const size_t SyntheticCount = 400;

  runPlatform(runtime::amdPlatform(), Pipeline, SyntheticCount, "a",
              "CPU-only");
  runPlatform(runtime::nvidiaPlatform(), Pipeline, SyntheticCount, "b",
              "GPU-only");

  std::printf("\nPaper: 1.26x -> 1.57x on AMD; 2.50x -> 3.26x on NVIDIA.\n");
  return 0;
}

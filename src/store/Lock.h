//===- store/Lock.h - Advisory cross-process file locks ----------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-process stampede control for the artifact store. A ScopedLock
/// is an advisory `flock(2)` exclusive lock on a dedicated lock file;
/// it serializes the *expensive miss path* of the warm-start layers
/// (trainOrLoad, synthesizeOrLoad, the cached runBenchmarkBatch) so
/// that N concurrent cold runs of one configuration do the training /
/// measurement work exactly once instead of N times.
///
/// Protocol (documented normatively in docs/STORE_FORMAT.md §6):
///
///   1. Fast path, LOCK-FREE: probe the store. A hit never touches a
///      lock file — warm runs are completely unaffected by locking.
///   2. On a miss, acquire `<store>/locks/<artifact-class>-<key>.lock`
///      exclusively, with a bounded wait (poll + sleep up to a
///      deadline, never an unbounded block).
///   3. Holding the lock, RE-PROBE the store (double-checked locking):
///      a racer may have published the artifact while we waited. A hit
///      here consumes it and skips the work.
///   4. Still a miss: do the work, publish atomically (temp + rename),
///      release.
///
/// The locks are strictly advisory and strictly an optimization: every
/// writer still publishes via atomic rename, so a process that skips,
/// loses or times out on the lock produces a byte-identical artifact
/// and the worst outcome is duplicated work — exactly the pre-lock
/// behavior. Lock files carry no data (they are empty and are never
/// deleted by lock holders, which makes the acquire path free of the
/// unlink/reopen races that plague delete-on-release schemes); the
/// store sweep ignores `locks/`, and `clgen-store vacuum` may prune
/// the directory when no locks are held.
///
/// flock semantics worth spelling out: the lock is tied to the open
/// file description, so two threads of one process that each open the
/// lock file exclude each other exactly like two processes do — one
/// ScopedLock therefore serializes both thread- and process-level
/// stampedes. Locks vanish automatically when the holder exits or
/// crashes (the kernel releases them with the last close), so a crashed
/// trainer can never wedge the store.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_STORE_LOCK_H
#define CLGEN_STORE_LOCK_H

#include "support/Result.h"

#include <chrono>
#include <cstdint>
#include <string>

namespace clgen {
namespace store {

/// How long an acquire may wait for a contended lock. The wait is
/// always bounded: stampede control degrades to duplicated work, never
/// to a hang.
struct LockOptions {
  /// Total time to keep retrying a held lock before giving up.
  std::chrono::milliseconds Timeout{60000};
  /// Sleep between acquisition attempts while contended.
  std::chrono::milliseconds PollInterval{10};
};

/// RAII holder of one advisory exclusive file lock. Move-only; the
/// destructor releases. A default-constructed ScopedLock holds nothing
/// (held() is false) — callers that treat locking as best-effort can
/// carry one unconditionally.
class ScopedLock {
public:
  ScopedLock() = default;
  ScopedLock(ScopedLock &&Other) noexcept;
  ScopedLock &operator=(ScopedLock &&Other) noexcept;
  ScopedLock(const ScopedLock &) = delete;
  ScopedLock &operator=(const ScopedLock &) = delete;
  ~ScopedLock() { release(); }

  /// Non-blocking acquisition attempt: creates the lock file (and its
  /// parent directories) if needed and tries to take the exclusive
  /// flock exactly once. Fails immediately when another holder exists.
  static Result<ScopedLock> tryAcquire(const std::string &Path);

  /// Bounded-wait acquisition: the fast path is one non-blocking
  /// attempt; while CONTENDED it retries every Opts.PollInterval until
  /// Opts.Timeout expires, then fails. Never blocks unboundedly, and
  /// never retries non-contention failures (an unopenable lock file is
  /// permanent — callers degrade to duplicated work immediately
  /// instead of stalling out the timeout).
  static Result<ScopedLock> acquire(const std::string &Path,
                                    const LockOptions &Opts = LockOptions());

  /// The miss-path acquisition pattern shared by every warm-start
  /// layer: bounded-wait acquire (whose first attempt is non-blocking,
  /// so uncontended misses never sleep), folded to an UNHELD lock on
  /// timeout or error — stampede control is best-effort by contract,
  /// so callers just proceed (and re-probe when held() is true).
  static ScopedLock acquireForMiss(const std::string &Path,
                                   const LockOptions &Opts = LockOptions());

  /// True while this object holds the lock.
  bool held() const { return Fd >= 0; }
  const std::string &path() const { return LockPath; }

  /// Releases early (idempotent; the destructor calls it too).
  void release();

private:
  /// One acquisition attempt; \p Contended reports whether the failure
  /// was another holder (retryable) vs an unopenable lock file
  /// (permanent).
  static Result<ScopedLock> tryAcquireImpl(const std::string &Path,
                                           bool &Contended);

  int Fd = -1; // Open file descriptor owning the flock; -1 = not held.
  std::string LockPath;
};

/// The lock file path for an artifact class + content key inside a
/// store directory: `<dir>/locks/<what>-<16 hex chars of key>.lock`.
/// Centralized so every subsystem (and the docs) agree on the layout.
std::string lockFilePath(const std::string &StoreDir, const char *What,
                         uint64_t Key);

} // namespace store
} // namespace clgen

#endif // CLGEN_STORE_LOCK_H

//===- tests/vm/InterpreterTest.cpp - execution engine tests -----------------===//

#include "vm/Interpreter.h"

#include "vm/Compiler.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace clgen;
using namespace clgen::vm;

namespace {

CompiledKernel compile(const std::string &Src) {
  auto R = compileFirstKernel(Src);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.errorMessage());
  return R.ok() ? R.take() : CompiledKernel();
}

LaunchConfig config1D(size_t Global, size_t Local) {
  LaunchConfig C;
  C.GlobalSize[0] = Global;
  C.LocalSize[0] = Local;
  return C;
}

BufferData iota(size_t N) {
  BufferData B = BufferData::zeros(N, 1);
  for (size_t I = 0; I < N; ++I)
    B.Data[I] = static_cast<double>(I);
  return B;
}

} // namespace

TEST(InterpreterTest, VectorScale) {
  CompiledKernel K = compile(
      "__kernel void A(__global float* a) {\n"
      "  int i = get_global_id(0);\n"
      "  a[i] = a[i] * 2.0f;\n"
      "}");
  std::vector<BufferData> Bufs = {iota(16)};
  auto R = launchKernel(K, {KernelArg::buffer(0)}, Bufs, config1D(16, 4));
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  for (size_t I = 0; I < 16; ++I)
    EXPECT_DOUBLE_EQ(Bufs[0].Data[I], 2.0 * I);
}

TEST(InterpreterTest, SaxpyWithScalarArgs) {
  CompiledKernel K = compile(
      "__kernel void A(__global float* x, __global float* y, float alpha,\n"
      "                const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { y[i] += alpha * x[i]; }\n"
      "}");
  std::vector<BufferData> Bufs = {iota(8), iota(8)};
  auto R = launchKernel(K,
                        {KernelArg::buffer(0), KernelArg::buffer(1),
                         KernelArg::scalar(3.0), KernelArg::scalar(8)},
                        Bufs, config1D(8, 8));
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  for (size_t I = 0; I < 8; ++I)
    EXPECT_DOUBLE_EQ(Bufs[1].Data[I], I + 3.0 * I);
}

TEST(InterpreterTest, GuardPreventsOutOfBounds) {
  // Classic `if (i < n) return;` guard: items beyond n do nothing. The
  // short-circuit must prevent the OOB read in the second conjunct.
  CompiledKernel K = compile(
      "__kernel void A(__global float* a, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n && a[i] > 0.0f) { a[i] = -a[i]; }\n"
      "}");
  std::vector<BufferData> Bufs = {iota(4)}; // Only 4 elements, 8 items.
  auto R = launchKernel(K, {KernelArg::buffer(0), KernelArg::scalar(4)},
                        Bufs, config1D(8, 4));
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_DOUBLE_EQ(Bufs[0].Data[3], -3.0);
}

TEST(InterpreterTest, OutOfBoundsDetected) {
  CompiledKernel K = compile(
      "__kernel void A(__global float* a) {\n"
      "  a[get_global_id(0) + 100] = 1.0f;\n"
      "}");
  std::vector<BufferData> Bufs = {iota(4)};
  auto R = launchKernel(K, {KernelArg::buffer(0)}, Bufs, config1D(4, 4));
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.errorMessage().find("out-of-bounds"), std::string::npos);
}

TEST(InterpreterTest, ForLoopReduction) {
  CompiledKernel K = compile(
      "__kernel void A(__global float* a, __global float* o, const int n) {\n"
      "  float s = 0.0f;\n"
      "  for (int i = 0; i < n; i++) { s += a[i]; }\n"
      "  o[get_global_id(0)] = s;\n"
      "}");
  std::vector<BufferData> Bufs = {iota(10), BufferData::zeros(1, 1)};
  auto R = launchKernel(
      K, {KernelArg::buffer(0), KernelArg::buffer(1), KernelArg::scalar(10)},
      Bufs, config1D(1, 1));
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_DOUBLE_EQ(Bufs[1].Data[0], 45.0);
}

TEST(InterpreterTest, WhileAndDoWhile) {
  CompiledKernel K = compile(
      "__kernel void A(__global int* o, const int n) {\n"
      "  int i = 0;\n"
      "  int count = 0;\n"
      "  while (i < n) { i += 2; count++; }\n"
      "  do { count++; } while (0);\n"
      "  o[get_global_id(0)] = count;\n"
      "}");
  std::vector<BufferData> Bufs = {BufferData::zeros(1, 1)};
  auto R = launchKernel(K, {KernelArg::buffer(0), KernelArg::scalar(10)},
                        Bufs, config1D(1, 1));
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_DOUBLE_EQ(Bufs[0].Data[0], 6.0);
}

TEST(InterpreterTest, BreakAndContinue) {
  CompiledKernel K = compile(
      "__kernel void A(__global int* o) {\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < 100; i++) {\n"
      "    if (i == 5) { break; }\n"
      "    if (i % 2 == 0) { continue; }\n"
      "    s += i;\n"
      "  }\n"
      "  o[0] = s;\n"
      "}");
  std::vector<BufferData> Bufs = {BufferData::zeros(1, 1)};
  auto R = launchKernel(K, {KernelArg::buffer(0)}, Bufs, config1D(1, 1));
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_DOUBLE_EQ(Bufs[0].Data[0], 1.0 + 3.0); // 1 + 3 = 4.
}

TEST(InterpreterTest, EarlyReturnGuard) {
  CompiledKernel K = compile(
      "__kernel void A(__global float* a, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i >= n) { return; }\n"
      "  a[i] = 7.0f;\n"
      "}");
  std::vector<BufferData> Bufs = {iota(4)};
  auto R = launchKernel(K, {KernelArg::buffer(0), KernelArg::scalar(2)},
                        Bufs, config1D(4, 4));
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_DOUBLE_EQ(Bufs[0].Data[0], 7.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[1], 7.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[2], 2.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[3], 3.0);
}

TEST(InterpreterTest, LocalMemoryReverseWithBarrier) {
  CompiledKernel K = compile(
      "__kernel void A(__global float* a) {\n"
      "  __local float tile[8];\n"
      "  int l = get_local_id(0);\n"
      "  int g = get_global_id(0);\n"
      "  tile[l] = a[g];\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  a[g] = tile[7 - l];\n"
      "}");
  std::vector<BufferData> Bufs = {iota(16)};
  auto R = launchKernel(K, {KernelArg::buffer(0)}, Bufs, config1D(16, 8));
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  // Each group of 8 is reversed.
  EXPECT_DOUBLE_EQ(Bufs[0].Data[0], 7.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[7], 0.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[8], 15.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[15], 8.0);
}

TEST(InterpreterTest, DriverSizedLocalPointer) {
  CompiledKernel K = compile(
      "__kernel void A(__global float* a, __local float* tmp) {\n"
      "  int l = get_local_id(0);\n"
      "  tmp[l] = a[get_global_id(0)] * 10.0f;\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  a[get_global_id(0)] = tmp[l];\n"
      "}");
  std::vector<BufferData> Bufs = {iota(8)};
  auto R = launchKernel(K, {KernelArg::buffer(0), KernelArg::localSize(8)},
                        Bufs, config1D(8, 4));
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_DOUBLE_EQ(Bufs[0].Data[5], 50.0);
}

TEST(InterpreterTest, BarrierDivergenceDetected) {
  CompiledKernel K = compile(
      "__kernel void A(__global float* a) {\n"
      "  int l = get_local_id(0);\n"
      "  if (l < 2) { barrier(CLK_LOCAL_MEM_FENCE); }\n"
      "  a[get_global_id(0)] = 1.0f;\n"
      "}");
  std::vector<BufferData> Bufs = {iota(4)};
  auto R = launchKernel(K, {KernelArg::buffer(0)}, Bufs, config1D(4, 4));
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.errorMessage().find("barrier divergence"), std::string::npos);
}

TEST(InterpreterTest, InstructionBudgetTimeout) {
  CompiledKernel K = compile(
      "__kernel void A(__global float* a) {\n"
      "  while (1) { a[0] += 1.0f; }\n"
      "}");
  std::vector<BufferData> Bufs = {iota(1)};
  LaunchConfig C = config1D(1, 1);
  C.MaxInstructions = 10000;
  auto R = launchKernel(K, {KernelArg::buffer(0)}, Bufs, C);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.errorMessage().find("timeout"), std::string::npos);
}

TEST(InterpreterTest, AtomicHistogram) {
  CompiledKernel K = compile(
      "__kernel void A(__global int* hist, __global int* data) {\n"
      "  int v = data[get_global_id(0)];\n"
      "  atomic_add(&hist[v], 1);\n"
      "}");
  BufferData Data = BufferData::zeros(8, 1);
  double Vals[8] = {0, 1, 1, 2, 2, 2, 3, 0};
  for (int I = 0; I < 8; ++I)
    Data.Data[I] = Vals[I];
  std::vector<BufferData> Bufs = {BufferData::zeros(4, 1), Data};
  auto R = launchKernel(K, {KernelArg::buffer(0), KernelArg::buffer(1)},
                        Bufs, config1D(8, 4));
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_DOUBLE_EQ(Bufs[0].Data[0], 2.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[1], 2.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[2], 3.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[3], 1.0);
}

TEST(InterpreterTest, VectorTypesAndSwizzles) {
  CompiledKernel K = compile(
      "__kernel void A(__global float4* v, __global float* o) {\n"
      "  int i = get_global_id(0);\n"
      "  float4 x = v[i];\n"
      "  x.w = 100.0f;\n"
      "  v[i] = x * 2.0f;\n"
      "  o[i] = x.x + x.y + x.z + x.w;\n"
      "}");
  BufferData V = BufferData::zeros(2, 4);
  for (int I = 0; I < 8; ++I)
    V.Data[I] = I; // Element 0 = (0,1,2,3), element 1 = (4,5,6,7).
  std::vector<BufferData> Bufs = {V, BufferData::zeros(2, 1)};
  auto R = launchKernel(K, {KernelArg::buffer(0), KernelArg::buffer(1)},
                        Bufs, config1D(2, 2));
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_DOUBLE_EQ(Bufs[1].Data[0], 0 + 1 + 2 + 100.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[3], 200.0); // (x.w=100) * 2.
  EXPECT_DOUBLE_EQ(Bufs[0].Data[4], 8.0);
}

TEST(InterpreterTest, VectorLiteralBroadcastAndBuild) {
  CompiledKernel K = compile(
      "__kernel void A(__global float4* o) {\n"
      "  o[0] = (float4)(1.0f, 2.0f, 3.0f, 4.0f);\n"
      "  o[1] = (float4)(9.0f);\n"
      "}");
  std::vector<BufferData> Bufs = {BufferData::zeros(2, 4)};
  auto R = launchKernel(K, {KernelArg::buffer(0)}, Bufs, config1D(1, 1));
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_DOUBLE_EQ(Bufs[0].Data[1], 2.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[4], 9.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[7], 9.0);
}

TEST(InterpreterTest, MathBuiltins) {
  CompiledKernel K = compile(
      "__kernel void A(__global float* o) {\n"
      "  o[0] = sqrt(16.0f);\n"
      "  o[1] = pow(2.0f, 10.0f);\n"
      "  o[2] = fabs(-3.5f);\n"
      "  o[3] = fmin(2.0f, 7.0f);\n"
      "  o[4] = clamp(5.0f, 0.0f, 3.0f);\n"
      "  o[5] = mad(2.0f, 3.0f, 4.0f);\n"
      "  o[6] = exp(0.0f);\n"
      "  o[7] = floor(2.9f);\n"
      "}");
  std::vector<BufferData> Bufs = {BufferData::zeros(8, 1)};
  auto R = launchKernel(K, {KernelArg::buffer(0)}, Bufs, config1D(1, 1));
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_DOUBLE_EQ(Bufs[0].Data[0], 4.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[1], 1024.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[2], 3.5);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[3], 2.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[4], 3.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[5], 10.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[6], 1.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[7], 2.0);
}

TEST(InterpreterTest, DotAndGeometric) {
  CompiledKernel K = compile(
      "__kernel void A(__global float4* v, __global float* o) {\n"
      "  o[0] = dot(v[0], v[1]);\n"
      "  o[1] = length(v[0]);\n"
      "}");
  BufferData V = BufferData::zeros(2, 4);
  double Vals[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  for (int I = 0; I < 8; ++I)
    V.Data[I] = Vals[I];
  std::vector<BufferData> Bufs = {V, BufferData::zeros(2, 1)};
  auto R = launchKernel(K, {KernelArg::buffer(0), KernelArg::buffer(1)},
                        Bufs, config1D(1, 1));
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_DOUBLE_EQ(Bufs[1].Data[0], 5.0 + 12.0 + 21.0 + 32.0);
  EXPECT_NEAR(Bufs[1].Data[1], std::sqrt(30.0), 1e-9);
}

TEST(InterpreterTest, UserFunctionInlining) {
  CompiledKernel K = compile(
      "float square(float x) { return x * x; }\n"
      "float poly(float x) { return square(x) + 2.0f * x + 1.0f; }\n"
      "__kernel void A(__global float* a) {\n"
      "  int i = get_global_id(0);\n"
      "  a[i] = poly(a[i]);\n"
      "}");
  std::vector<BufferData> Bufs = {iota(4)};
  auto R = launchKernel(K, {KernelArg::buffer(0)}, Bufs, config1D(4, 4));
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  for (int I = 0; I < 4; ++I)
    EXPECT_DOUBLE_EQ(Bufs[0].Data[I], (I + 1.0) * (I + 1.0));
}

TEST(InterpreterTest, FunctionWithEarlyReturn) {
  CompiledKernel K = compile(
      "float relu(float x) { if (x < 0.0f) { return 0.0f; } return x; }\n"
      "__kernel void A(__global float* a) {\n"
      "  int i = get_global_id(0);\n"
      "  a[i] = relu(a[i] - 2.0f);\n"
      "}");
  std::vector<BufferData> Bufs = {iota(4)};
  auto R = launchKernel(K, {KernelArg::buffer(0)}, Bufs, config1D(4, 4));
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_DOUBLE_EQ(Bufs[0].Data[0], 0.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[1], 0.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[2], 0.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[3], 1.0);
}

TEST(InterpreterTest, PointerArithmeticAndDeref) {
  CompiledKernel K = compile(
      "__kernel void A(__global float* a, const int n) {\n"
      "  __global float* p = a + 2;\n"
      "  p[0] = 50.0f;\n"
      "  *(a + 1) = 10.0f;\n"
      "}");
  std::vector<BufferData> Bufs = {iota(4)};
  auto R = launchKernel(K, {KernelArg::buffer(0), KernelArg::scalar(4)},
                        Bufs, config1D(1, 1));
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_DOUBLE_EQ(Bufs[0].Data[1], 10.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[2], 50.0);
}

TEST(InterpreterTest, PrivateArrayAccumulator) {
  CompiledKernel K = compile(
      "__kernel void A(__global float* a, const int n) {\n"
      "  float acc[4];\n"
      "  for (int i = 0; i < 4; i++) { acc[i] = 0.0f; }\n"
      "  for (int i = 0; i < n; i++) { acc[i % 4] += a[i]; }\n"
      "  for (int i = 0; i < 4; i++) { a[i] = acc[i]; }\n"
      "}");
  std::vector<BufferData> Bufs = {iota(8)};
  auto R = launchKernel(K, {KernelArg::buffer(0), KernelArg::scalar(8)},
                        Bufs, config1D(1, 1));
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_DOUBLE_EQ(Bufs[0].Data[0], 0.0 + 4.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[1], 1.0 + 5.0);
}

TEST(InterpreterTest, VloadVstore) {
  CompiledKernel K = compile(
      "__kernel void A(__global float* a) {\n"
      "  float4 v = vload4(0, a);\n"
      "  vstore4(v * 3.0f, 1, a);\n"
      "}");
  std::vector<BufferData> Bufs = {iota(8)};
  auto R = launchKernel(K, {KernelArg::buffer(0)}, Bufs, config1D(1, 1));
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_DOUBLE_EQ(Bufs[0].Data[4], 0.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[5], 3.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[7], 9.0);
}

TEST(InterpreterTest, IntegerSemantics) {
  CompiledKernel K = compile(
      "__kernel void A(__global int* o) {\n"
      "  o[0] = 7 / 2;\n"
      "  o[1] = 7 % 3;\n"
      "  o[2] = 1 << 4;\n"
      "  o[3] = 255 & 15;\n"
      "  o[4] = (int)(char)200;\n" // Wraps to -56.
      "  o[5] = -7 / 2;\n"         // Truncates toward zero.
      "}");
  std::vector<BufferData> Bufs = {BufferData::zeros(6, 1)};
  auto R = launchKernel(K, {KernelArg::buffer(0)}, Bufs, config1D(1, 1));
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_DOUBLE_EQ(Bufs[0].Data[0], 3.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[1], 1.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[2], 16.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[3], 15.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[4], -56.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[5], -3.0);
}

TEST(InterpreterTest, TernaryAndIncrements) {
  CompiledKernel K = compile(
      "__kernel void A(__global int* o, int n) {\n"
      "  int i = 5;\n"
      "  o[0] = i++;\n"
      "  o[1] = i;\n"
      "  o[2] = ++i;\n"
      "  o[3] = n > 3 ? 100 : 200;\n"
      "}");
  std::vector<BufferData> Bufs = {BufferData::zeros(4, 1)};
  auto R = launchKernel(K, {KernelArg::buffer(0), KernelArg::scalar(4)},
                        Bufs, config1D(1, 1));
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_DOUBLE_EQ(Bufs[0].Data[0], 5.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[1], 6.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[2], 7.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[3], 100.0);
}

TEST(InterpreterTest, CountersTrackAccessClasses) {
  CompiledKernel K = compile(
      "__kernel void A(__global float* a, __global float* b, int n) {\n"
      "  int i = get_global_id(0);\n"
      "  b[i] = a[i] + a[i * 2 % n];\n"
      "}");
  std::vector<BufferData> Bufs = {iota(64), BufferData::zeros(32, 1)};
  auto R = launchKernel(
      K, {KernelArg::buffer(0), KernelArg::buffer(1), KernelArg::scalar(64)},
      Bufs, config1D(32, 8));
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  const ExecCounters &C = R.get();
  EXPECT_EQ(C.GlobalLoads, 64u);  // 2 loads x 32 items.
  EXPECT_EQ(C.GlobalStores, 32u); // 1 store x 32 items.
  // Coalesced: load a[i] and store b[i]; the strided load is not.
  EXPECT_EQ(C.CoalescedGlobal, 64u);
  EXPECT_EQ(C.ItemsTotal, 32u);
  EXPECT_EQ(C.ItemsExecuted, 32u);
}

TEST(InterpreterTest, DivergenceMeasured) {
  // Half the items in each group take the branch: maximal divergence.
  CompiledKernel K = compile(
      "__kernel void A(__global float* a) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i % 2 == 0) { a[i] = a[i] * 2.0f; } else { a[i] = 0.0f; }\n"
      "}");
  std::vector<BufferData> Bufs = {iota(64)};
  auto R = launchKernel(K, {KernelArg::buffer(0)}, Bufs, config1D(64, 16));
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_GT(R.get().Divergence, 0.9);

  CompiledKernel K2 = compile(
      "__kernel void A(__global float* a, int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (n > 0) { a[i] = 1.0f; }\n"
      "}");
  std::vector<BufferData> Bufs2 = {iota(64)};
  auto R2 = launchKernel(K2, {KernelArg::buffer(0), KernelArg::scalar(5)},
                         Bufs2, config1D(64, 16));
  ASSERT_TRUE(R2.ok());
  EXPECT_LT(R2.get().Divergence, 0.01);
}

TEST(InterpreterTest, GroupSamplingScalesCounters) {
  CompiledKernel K = compile(
      "__kernel void A(__global float* a) {\n"
      "  int i = get_global_id(0);\n"
      "  a[i] = a[i] + 1.0f;\n"
      "}");
  std::vector<BufferData> Full = {iota(1024)};
  auto RFull =
      launchKernel(K, {KernelArg::buffer(0)}, Full, config1D(1024, 32));
  ASSERT_TRUE(RFull.ok());

  std::vector<BufferData> Sampled = {iota(1024)};
  LaunchConfig C = config1D(1024, 32);
  C.MaxWorkGroups = 8; // Of 32 groups.
  auto RSampled = launchKernel(K, {KernelArg::buffer(0)}, Sampled, C);
  ASSERT_TRUE(RSampled.ok());
  // Scaled counters approximate the full run.
  EXPECT_NEAR(static_cast<double>(RSampled.get().GlobalLoads),
              static_cast<double>(RFull.get().GlobalLoads), 64.0);
  EXPECT_EQ(RSampled.get().ItemsExecuted, 256u);
  EXPECT_EQ(RSampled.get().ItemsTotal, 1024u);
}

TEST(InterpreterTest, TwoDimensionalNDRange) {
  CompiledKernel K = compile(
      "__kernel void A(__global float* m, const int w) {\n"
      "  int x = get_global_id(0);\n"
      "  int y = get_global_id(1);\n"
      "  m[y * w + x] = x * 10 + y;\n"
      "}");
  std::vector<BufferData> Bufs = {BufferData::zeros(16, 1)};
  LaunchConfig C;
  C.WorkDim = 2;
  C.GlobalSize[0] = 4;
  C.GlobalSize[1] = 4;
  C.LocalSize[0] = 2;
  C.LocalSize[1] = 2;
  auto R = launchKernel(K, {KernelArg::buffer(0), KernelArg::scalar(4)},
                        Bufs, C);
  ASSERT_TRUE(R.ok()) << R.errorMessage();
  EXPECT_DOUBLE_EQ(Bufs[0].Data[0], 0.0);
  EXPECT_DOUBLE_EQ(Bufs[0].Data[4 * 2 + 3], 32.0); // x=3,y=2.
}

TEST(InterpreterTest, DeterministicAcrossRuns) {
  CompiledKernel K = compile(
      "__kernel void A(__global float* a, __global int* c) {\n"
      "  int i = get_global_id(0);\n"
      "  atomic_add(&c[0], 1);\n"
      "  a[i] = sin((float)i) * c[0];\n"
      "}");
  std::vector<BufferData> B1 = {iota(32), BufferData::zeros(1, 1)};
  std::vector<BufferData> B2 = {iota(32), BufferData::zeros(1, 1)};
  auto R1 = launchKernel(K, {KernelArg::buffer(0), KernelArg::buffer(1)},
                         B1, config1D(32, 8));
  auto R2 = launchKernel(K, {KernelArg::buffer(0), KernelArg::buffer(1)},
                         B2, config1D(32, 8));
  ASSERT_TRUE(R1.ok());
  ASSERT_TRUE(R2.ok());
  EXPECT_EQ(B1[0].Data, B2[0].Data);
}

TEST(InterpreterTest, ArgumentMismatchReported) {
  CompiledKernel K = compile(
      "__kernel void A(__global float* a, int n) { a[0] = n; }");
  std::vector<BufferData> Bufs = {iota(4)};
  auto R = launchKernel(K, {KernelArg::buffer(0)}, Bufs, config1D(1, 1));
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.errorMessage().find("arguments"), std::string::npos);
}

TEST(InterpreterTest, GlobalSizeMustDivide) {
  CompiledKernel K = compile(
      "__kernel void A(__global float* a) { a[0] = 1.0f; }");
  std::vector<BufferData> Bufs = {iota(4)};
  LaunchConfig C = config1D(10, 4);
  auto R = launchKernel(K, {KernelArg::buffer(0)}, Bufs, C);
  ASSERT_FALSE(R.ok());
}

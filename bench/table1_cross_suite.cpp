//===- bench/table1_cross_suite.cpp - Table 1: cross-suite generalisation -----===//
//
// Regenerates Table 1: "Performance relative to the optimal of the Grewe
// et al. predictive model across different benchmark suites on an AMD
// GPU. The columns show the suite used for training; the rows show the
// suite used for testing."
//
// Paper shape targets: cross-suite training is generally poor; the best
// training suite (NVIDIA SDK) reaches only ~49% of optimal on average;
// the worst pair (train Parboil -> test Polybench) drops to ~11.5%.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "features/Features.h"

using namespace clgen;
using namespace clgen::bench;

int main() {
  std::printf("%s",
              sectionBanner("Table 1: cross-suite performance relative to "
                            "the oracle (AMD GPU)")
                  .c_str());

  std::printf("measuring the 7-suite catalogue on the AMD platform...\n");
  auto Catalogue = suites::buildCatalogue();
  auto Obs = suites::measureCatalogue(Catalogue, runtime::amdPlatform());
  std::printf("observations: %zu\n\n", Obs.size());

  auto Names = suites::suiteNames();
  TextTable T;
  std::vector<std::string> Header = {"test \\ train"};
  for (const auto &N : Names)
    Header.push_back(N);
  T.setHeader(Header);

  // Also track per-training-suite averages for the "best suite" claim.
  std::vector<double> TrainAvg(Names.size(), 0.0);
  std::vector<int> TrainCount(Names.size(), 0);
  double Worst = 1.0;
  std::string WorstPair;

  for (const auto &TestSuite : Names) {
    std::vector<std::string> Row = {TestSuite};
    auto Test = bySuite(Obs, TestSuite);
    for (size_t TI = 0; TI < Names.size(); ++TI) {
      const auto &TrainSuite = Names[TI];
      if (TrainSuite == TestSuite) {
        Row.push_back("-");
        continue;
      }
      auto Train = bySuite(Obs, TrainSuite);
      auto Preds = predict::trainAndPredict(Train, Test,
                                            predict::FeatureSetKind::Grewe);
      double Perf = predict::performanceRelativeToOracle(Test, Preds);
      Row.push_back(formatPercent(Perf));
      TrainAvg[TI] += Perf;
      TrainCount[TI] += 1;
      if (Perf < Worst) {
        Worst = Perf;
        WorstPair = "train " + TrainSuite + " -> test " + TestSuite;
      }
    }
    T.addRow(Row);
  }
  std::printf("%s", T.render().c_str());

  // Summary row: average per training suite.
  std::printf("\nAverage performance by training suite:\n");
  size_t BestIdx = 0;
  for (size_t TI = 0; TI < Names.size(); ++TI) {
    double Avg = TrainCount[TI] ? TrainAvg[TI] / TrainCount[TI] : 0.0;
    std::printf("  %-11s %s\n", Names[TI].c_str(),
                formatPercent(Avg).c_str());
    if (TrainCount[TI] &&
        Avg > TrainAvg[BestIdx] / std::max(TrainCount[BestIdx], 1))
      BestIdx = TI;
  }
  std::printf("\nWorst pair: %s at %s (paper: train Parboil -> test "
              "Polybench, 11.5%%)\n",
              WorstPair.c_str(), formatPercent(Worst).c_str());
  std::printf("Paper's best training suite: NVIDIA SDK at 49%% average.\n");
  std::printf("\nConclusion (paper section 2): heuristics learned on one "
              "benchmark suite\nfail to generalise across other suites.\n");

  // Table 2, for reference: the features the model trains on.
  std::printf("%s", sectionBanner("Table 2: Grewe et al. model features")
                        .c_str());
  TextTable F;
  F.setHeader({"Feature", "Description"});
  F.addRow({"comp", "static #. compute operations"});
  F.addRow({"mem", "static #. accesses to global memory"});
  F.addRow({"localmem", "static #. accesses to local memory"});
  F.addRow({"coalesced", "static #. coalesced memory accesses"});
  F.addRow({"transfer", "dynamic size of data transfers"});
  F.addRow({"wgsize", "dynamic #. work-items per kernel"});
  F.addRow({"F1: transfer/(comp+mem)", "communication-computation ratio"});
  F.addRow({"F2: coalesced/mem", "% coalesced memory accesses"});
  F.addRow({"F3: (localmem/mem)*wgsize", "local/global ratio x items"});
  F.addRow({"F4: comp/mem", "computation-memory ratio"});
  std::printf("%s", F.render().c_str());
  return 0;
}

//===- tests/suites/SuitesTest.cpp - patterns / catalogue / runner ------------===//

#include "suites/Catalogue.h"

#include "runtime/DynamicChecker.h"
#include "suites/Runner.h"
#include "vm/Compiler.h"

#include <gtest/gtest.h>

#include <set>

using namespace clgen;
using namespace clgen::suites;

//===----------------------------------------------------------------------===//
// Pattern library: property sweep over every pattern kind.
//===----------------------------------------------------------------------===//

class PatternProperty : public ::testing::TestWithParam<PatternKind> {};

TEST_P(PatternProperty, CompilesAndDoesUsefulWork) {
  PatternStyle Style;
  std::string Src = renderPattern(GetParam(), Style, "prop");
  auto K = vm::compileFirstKernel(Src);
  ASSERT_TRUE(K.ok()) << patternName(GetParam()) << ": "
                      << K.errorMessage() << "\n"
                      << Src;
  EXPECT_GE(K.get().staticInstructionCount(), 3u);

  // Every pattern must survive the section 5.2 dynamic checker: this is
  // a strong property (output produced, input sensitive, deterministic,
  // no out-of-bounds access, terminates).
  Rng R(2024);
  runtime::CheckOptions Opts;
  Opts.GlobalSize = 256;
  Opts.LocalSize = 64;
  auto CR = runtime::checkKernel(K.get(), Opts, R);
  EXPECT_TRUE(CR.useful()) << patternName(GetParam()) << ": "
                           << runtime::checkOutcomeName(CR.Outcome) << " "
                           << CR.Detail;
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, PatternProperty, ::testing::ValuesIn(allPatternKinds()),
    [](const ::testing::TestParamInfo<PatternKind> &Info) {
      std::string Name = patternName(Info.param);
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

TEST(PatternTest, StyleKnobsChangeFeatures) {
  PatternStyle Lean, Heavy;
  Heavy.ComputeIntensity = 5;
  std::string SrcLean = renderPattern(PatternKind::VectorOp, Lean, "k");
  std::string SrcHeavy = renderPattern(PatternKind::VectorOp, Heavy, "k");
  auto KLean = vm::compileFirstKernel(SrcLean);
  auto KHeavy = vm::compileFirstKernel(SrcHeavy);
  ASSERT_TRUE(KLean.ok());
  ASSERT_TRUE(KHeavy.ok());
  EXPECT_GT(KHeavy.get().staticInstructionCount(),
            KLean.get().staticInstructionCount());
}

TEST(PatternTest, BranchKnobAddsBranches) {
  PatternStyle Plain, Branchy;
  Branchy.ExtraBranching = true;
  auto KPlain = vm::compileFirstKernel(
      renderPattern(PatternKind::Gather, Plain, "k"));
  auto KBranchy = vm::compileFirstKernel(
      renderPattern(PatternKind::Gather, Branchy, "k"));
  ASSERT_TRUE(KPlain.ok());
  ASSERT_TRUE(KBranchy.ok());
  EXPECT_GT(KBranchy.get().BranchSites, KPlain.get().BranchSites);
}

//===----------------------------------------------------------------------===//
// Catalogue: Table 3 invariants.
//===----------------------------------------------------------------------===//

TEST(CatalogueTest, MatchesTable3Counts) {
  auto Catalogue = buildCatalogue();
  EXPECT_EQ(Catalogue.size(), 256u);
  auto Summary = catalogueSummary(Catalogue);
  ASSERT_EQ(Summary.size(), 7u);
  int Benchmarks = 0;
  std::map<std::string, std::pair<int, int>> Expected = {
      {"NPB", {7, 114}},     {"Rodinia", {14, 31}},
      {"NVIDIA SDK", {6, 12}}, {"AMD SDK", {12, 16}},
      {"Parboil", {6, 8}},   {"PolyBench", {14, 27}},
      {"SHOC", {12, 48}}};
  for (const auto &Row : Summary) {
    EXPECT_EQ(Row.Benchmarks, Expected[Row.Name].first) << Row.Name;
    EXPECT_EQ(Row.Kernels, Expected[Row.Name].second) << Row.Name;
    Benchmarks += Row.Benchmarks;
  }
  EXPECT_EQ(Benchmarks, 71);
}

TEST(CatalogueTest, EveryKernelCompiles) {
  for (const auto &BK : buildCatalogue()) {
    auto K = vm::compileFirstKernel(BK.Source);
    EXPECT_TRUE(K.ok()) << BK.Suite << "/" << BK.KernelName << ": "
                        << K.errorMessage();
  }
}

TEST(CatalogueTest, NpbDatasetsMatchFigure7Columns) {
  auto Npb = buildSuite("NPB");
  std::set<std::string> Columns;
  for (const auto &BK : Npb)
    for (const auto &DS : BK.Datasets)
      Columns.insert(BK.Benchmark + "." + DS.Name);
  // 32 columns as in Figure 7 (e.g. no FT.C, no EP.S, no BT.C).
  EXPECT_EQ(Columns.size(), 32u);
  EXPECT_TRUE(Columns.count("CG.C"));
  EXPECT_FALSE(Columns.count("FT.C"));
  EXPECT_FALSE(Columns.count("EP.S"));
  EXPECT_FALSE(Columns.count("BT.C"));
}

TEST(CatalogueTest, DeterministicConstruction) {
  auto A = buildCatalogue();
  auto B = buildCatalogue();
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A[I].Source, B[I].Source);
}

TEST(CatalogueTest, SuitesHaveDistinctStyles) {
  // NPB is the local-memory suite; PolyBench uses none.
  int NpbLocal = 0, PolyLocal = 0;
  for (const auto &BK : buildSuite("NPB"))
    NpbLocal += BK.Source.find("__local") != std::string::npos;
  for (const auto &BK : buildSuite("PolyBench"))
    PolyLocal += BK.Source.find("__local") != std::string::npos;
  EXPECT_GT(NpbLocal, 20);
  EXPECT_EQ(PolyLocal, 0);
}

TEST(CatalogueTest, SurveyDataCoversSevenSuites) {
  auto Survey = gpgpuSurvey();
  EXPECT_GE(Survey.size(), 7u);
  // Sorted descending as in the figure.
  for (size_t I = 1; I < Survey.size(); ++I)
    EXPECT_GE(Survey[I - 1].AvgBenchmarksPerPaper,
              Survey[I].AvgBenchmarksPerPaper);
}

//===----------------------------------------------------------------------===//
// Runner
//===----------------------------------------------------------------------===//

TEST(RunnerTest, MeasuresEveryDataset) {
  auto Parboil = buildSuite("Parboil");
  size_t ExpectedObs = 0;
  for (const auto &BK : Parboil)
    ExpectedObs += BK.Datasets.size();
  RunnerOptions Opts;
  Opts.MaxSimulatedGroups = 4;
  auto Obs = measureCatalogue(Parboil, runtime::amdPlatform(), Opts);
  EXPECT_EQ(Obs.size(), ExpectedObs);
  for (const auto &O : Obs) {
    EXPECT_GT(O.CpuTime, 0.0);
    EXPECT_GT(O.GpuTime, 0.0);
    EXPECT_GT(O.Raw.WgSize, 0.0);
    EXPECT_GT(O.Raw.TransferBytes, 0.0);
    EXPECT_EQ(O.Suite, "Parboil");
  }
}

TEST(RunnerTest, LabelsVaryAcrossCatalogue) {
  RunnerOptions Opts;
  Opts.MaxSimulatedGroups = 4;
  auto Obs = measureCatalogue(buildSuite("NPB"), runtime::nvidiaPlatform(),
                              Opts);
  int Gpu = 0;
  for (const auto &O : Obs)
    Gpu += O.label();
  // Mixed labels are required for the mapping task to be non-trivial.
  EXPECT_GT(Gpu, 0);
  EXPECT_LT(Gpu, static_cast<int>(Obs.size()));
}

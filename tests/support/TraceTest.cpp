//===- tests/support/TraceTest.cpp - span tracing tests -----------------------===//
//
// Coverage for support/Trace.h: session lifecycle, span/instant round
// trips into Chrome trace-event JSON (checked with a minimal JSON
// syntax validator), bounded-buffer overflow accounting, session
// generation isolation, multi-threaded recording, and deterministic
// rendering. The Trace runtime is always compiled, so everything here
// except the macro test runs identically under CLGS_TELEMETRY=OFF.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace clgen;
using support::Trace;
using support::TraceOptions;

namespace {

/// Minimal recursive-descent JSON syntax checker: objects, arrays,
/// strings (with backslash escapes), numbers, literals. Enough to
/// catch unbalanced structure or broken quoting in the exporter — not
/// a general-purpose parser.
struct JsonParser {
  const char *P;
  const char *End;

  void ws() {
    while (P < End && std::isspace(static_cast<unsigned char>(*P)))
      ++P;
  }
  bool lit(const char *L) {
    size_t N = std::strlen(L);
    if (static_cast<size_t>(End - P) < N || std::strncmp(P, L, N) != 0)
      return false;
    P += N;
    return true;
  }
  bool string() {
    ++P; // Opening quote.
    while (P < End && *P != '"') {
      if (*P == '\\')
        ++P;
      ++P;
    }
    if (P >= End)
      return false;
    ++P; // Closing quote.
    return true;
  }
  bool number() {
    const char *S = P;
    if (P < End && *P == '-')
      ++P;
    while (P < End && (std::isdigit(static_cast<unsigned char>(*P)) ||
                       *P == '.' || *P == 'e' || *P == 'E' || *P == '+' ||
                       *P == '-'))
      ++P;
    return P > S;
  }
  bool object() {
    ++P;
    ws();
    if (P < End && *P == '}') {
      ++P;
      return true;
    }
    while (true) {
      ws();
      if (P >= End || *P != '"' || !string())
        return false;
      ws();
      if (P >= End || *P != ':')
        return false;
      ++P;
      if (!value())
        return false;
      ws();
      if (P < End && *P == ',') {
        ++P;
        continue;
      }
      if (P < End && *P == '}') {
        ++P;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++P;
    ws();
    if (P < End && *P == ']') {
      ++P;
      return true;
    }
    while (true) {
      if (!value())
        return false;
      ws();
      if (P < End && *P == ',') {
        ++P;
        continue;
      }
      if (P < End && *P == ']') {
        ++P;
        return true;
      }
      return false;
    }
  }
  bool value() {
    ws();
    if (P >= End)
      return false;
    switch (*P) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return lit("true");
    case 'f':
      return lit("false");
    case 'n':
      return lit("null");
    default:
      return number();
    }
  }
};

bool isValidJson(const std::string &S) {
  JsonParser J{S.data(), S.data() + S.size()};
  if (!J.value())
    return false;
  J.ws();
  return J.P == J.End;
}

size_t countOccurrences(const std::string &Text, const std::string &Sub) {
  size_t N = 0;
  for (size_t At = Text.find(Sub); At != std::string::npos;
       At = Text.find(Sub, At + Sub.size()))
    ++N;
  return N;
}

} // namespace

TEST(TraceTest, ValidatorSanity) {
  EXPECT_TRUE(isValidJson("{\"a\":[1,2.5,\"x\\\"y\"],\"b\":{}}"));
  EXPECT_FALSE(isValidJson("{\"a\":[1,2}"));
  EXPECT_FALSE(isValidJson("{\"a\":}"));
  EXPECT_FALSE(isValidJson("{} trailing"));
}

TEST(TraceTest, InactiveRecordsNothing) {
  Trace::span("ignored", 0, 1);
  Trace::instant("also-ignored");
  Trace::start();
  Trace::stop();
  EXPECT_EQ(Trace::eventCount(), 0u);
  std::string Json = Trace::renderJson();
  EXPECT_TRUE(isValidJson(Json)) << Json;
  EXPECT_NE(Json.find("\"traceEvents\":["), std::string::npos);
}

TEST(TraceTest, SpanAndInstantRoundTrip) {
  Trace::start();
  uint64_t Now = support::telemetryNowNs();
  Trace::span("measure", Now, 1500, 3);
  Trace::instant("pool.steal");
  Trace::stop();
  EXPECT_EQ(Trace::eventCount(), 2u);
  EXPECT_EQ(Trace::droppedCount(), 0u);
  std::string Json = Trace::renderJson();
  EXPECT_TRUE(isValidJson(Json)) << Json;
  EXPECT_NE(Json.find("\"name\":\"measure\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"dur\":1.500"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"args\":{\"index\":3}"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"name\":\"pool.steal\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"ph\":\"i\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"s\":\"t\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Rendering is deterministic for a fixed captured set.
  EXPECT_EQ(Json, Trace::renderJson());
}

TEST(TraceTest, OverflowDropsNewestAndCounts) {
  TraceOptions Opts;
  Opts.EventsPerThread = 4;
  Trace::start(Opts);
  for (int I = 0; I < 10; ++I)
    Trace::span("overflowing", support::telemetryNowNs(), 1,
                static_cast<uint64_t>(I));
  Trace::stop();
  EXPECT_EQ(Trace::eventCount(), 4u);
  EXPECT_EQ(Trace::droppedCount(), 6u);
  std::string Json = Trace::renderJson();
  EXPECT_TRUE(isValidJson(Json)) << Json;
  EXPECT_NE(Json.find("\"dropped\":\"6\""), std::string::npos) << Json;
  // Drop-newest: the four survivors are the first four recorded.
  for (int I = 0; I < 4; ++I)
    EXPECT_NE(Json.find("{\"index\":" + std::to_string(I) + "}"),
              std::string::npos)
        << Json;
  EXPECT_EQ(Json.find("{\"index\":4}"), std::string::npos) << Json;
}

TEST(TraceTest, NewSessionDiscardsPriorEvents) {
  Trace::start();
  Trace::instant("old");
  Trace::instant("old");
  Trace::stop();
  EXPECT_EQ(Trace::eventCount(), 2u);
  Trace::start();
  Trace::instant("new");
  Trace::stop();
  EXPECT_EQ(Trace::eventCount(), 1u);
  std::string Json = Trace::renderJson();
  EXPECT_EQ(Json.find("\"name\":\"old\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"name\":\"new\""), std::string::npos) << Json;
}

TEST(TraceTest, MultiThreadedRecording) {
  constexpr size_t Threads = 4, PerThread = 500;
  Trace::start();
  std::vector<std::thread> Ts;
  for (size_t T = 0; T < Threads; ++T)
    Ts.emplace_back([] {
      for (size_t I = 0; I < PerThread; ++I) {
        uint64_t Now = support::telemetryNowNs();
        Trace::span("worker-span", Now, 10, I);
      }
    });
  for (auto &T : Ts)
    T.join();
  Trace::stop();
  EXPECT_EQ(Trace::eventCount(), Threads * PerThread);
  EXPECT_EQ(Trace::droppedCount(), 0u);
  std::string Json = Trace::renderJson();
  EXPECT_TRUE(isValidJson(Json)) << "render of " << Json.size() << " bytes";
  EXPECT_EQ(countOccurrences(Json, "\"name\":\"worker-span\""),
            Threads * PerThread);
}

TEST(TraceTest, EscapesNameCharacters) {
  Trace::start();
  Trace::instant("quote\"and\\slash");
  Trace::stop();
  std::string Json = Trace::renderJson();
  EXPECT_TRUE(isValidJson(Json)) << Json;
  EXPECT_NE(Json.find("quote\\\"and\\\\slash"), std::string::npos) << Json;
}

TEST(TraceTest, MacrosMatchCompiledInState) {
  Trace::start();
  {
    CLGS_TRACE_SPAN("macro-span");
    CLGS_TRACE_INSTANT_IDX("macro-instant", 9);
  }
  Trace::stop();
  if (support::telemetryCompiledIn()) {
    EXPECT_EQ(Trace::eventCount(), 2u);
    std::string Json = Trace::renderJson();
    EXPECT_NE(Json.find("\"name\":\"macro-span\""), std::string::npos);
    EXPECT_NE(Json.find("\"name\":\"macro-instant\""), std::string::npos);
  } else {
    EXPECT_EQ(Trace::eventCount(), 0u);
  }
}

//===- ocl/Type.h - OpenCL C type representation -----------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value-semantics type representation for the OpenCL C subset: scalar
/// kinds, vector widths (2/3/4/8/16), pointers with address-space
/// qualifiers, and const-ness. User-defined aggregates are intentionally
/// unsupported: the paper's synthesizer only considers scalars and arrays
/// as kernel inputs (section 6.2), and content files that use irregular
/// types are rejected by the filter, exactly as with the authors' pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_OCL_TYPE_H
#define CLGEN_OCL_TYPE_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace clgen {
namespace ocl {

enum class Scalar : uint8_t {
  Void,
  Bool,
  Char,
  UChar,
  Short,
  UShort,
  Int,
  UInt,
  Long,
  ULong,
  Float,
  Double,
  Half,
};

enum class AddrSpace : uint8_t {
  Private,  // Default for locals and scalar params.
  Global,   // __global pointer params.
  Local,    // __local pointers / arrays (work-group shared).
  Constant, // __constant pointers / globals.
};

/// A (possibly vector, possibly pointer) qualified OpenCL type.
struct QualType {
  Scalar S = Scalar::Void;
  /// 1 for scalars; 2, 3, 4, 8 or 16 for vector types.
  uint8_t VecWidth = 1;
  bool Pointer = false;
  AddrSpace AS = AddrSpace::Private;
  bool Const = false;

  QualType() = default;
  QualType(Scalar S, uint8_t VecWidth = 1) : S(S), VecWidth(VecWidth) {}

  bool isVoid() const { return S == Scalar::Void && !Pointer; }
  bool isVector() const { return VecWidth > 1; }
  bool isInteger() const {
    return S >= Scalar::Bool && S <= Scalar::ULong && !Pointer;
  }
  bool isFloating() const {
    return (S == Scalar::Float || S == Scalar::Double || S == Scalar::Half) &&
           !Pointer;
  }
  bool isSignedInteger() const {
    return !Pointer && (S == Scalar::Char || S == Scalar::Short ||
                        S == Scalar::Int || S == Scalar::Long);
  }
  bool isArithmetic() const { return isInteger() || isFloating(); }

  /// The scalar element type (drops vector width and pointer-ness).
  QualType element() const { return QualType(S); }

  /// The pointee type of a pointer (keeps vector width).
  QualType pointee() const {
    QualType T(S, VecWidth);
    return T;
  }

  /// Size in bytes of one element of this type (pointers report the size of
  /// the pointee element so buffer sizing works naturally).
  size_t elementSizeBytes() const;

  bool operator==(const QualType &O) const {
    return S == O.S && VecWidth == O.VecWidth && Pointer == O.Pointer &&
           AS == O.AS;
  }
  bool operator!=(const QualType &O) const { return !(*this == O); }
};

/// Returns the type named by \p Name ("float4", "uint", ...), or nullopt if
/// \p Name is not a builtin type name.
std::optional<QualType> builtinTypeByName(std::string_view Name);

/// Renders \p T in OpenCL source syntax, e.g. "__global float4*" or
/// "const int".
std::string typeName(const QualType &T);

/// Renders only the scalar/vector part, e.g. "float4".
std::string scalarTypeName(Scalar S, uint8_t VecWidth = 1);

} // namespace ocl
} // namespace clgen

#endif // CLGEN_OCL_TYPE_H

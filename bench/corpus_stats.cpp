//===- bench/corpus_stats.cpp - Section 4.1 corpus statistics -----------------===//
//
// Regenerates the corpus-assembly numbers of section 4.1 plus the Figure
// 5 rewriting example:
//  - discard rate without the shim header ~40%, with it ~32%;
//  - raw -> compilable -> rewritten line counts (2.8M -> 2.0M -> 1.3M in
//    the paper; our synthetic snapshot is smaller, the ratios carry);
//  - identifier-rewriting vocabulary reduction (84% in the paper);
//  - the Figure 5a content file before and after rewriting.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "corpus/Rewriter.h"
#include "corpus/ShimHeader.h"
#include "ocl/Preprocessor.h"

using namespace clgen;
using namespace clgen::bench;

int main() {
  std::printf("%s", sectionBanner("Section 4.1: corpus assembly").c_str());

  githubsim::GithubSimOptions GOpts;
  GOpts.FileCount = 2000;
  auto Files = githubsim::mineGithub(GOpts);
  std::printf("mined content files: %zu (paper: 8078 files, 793 repos)\n\n",
              Files.size());

  corpus::CorpusOptions NoShim;
  NoShim.Filter.UseShim = false;
  auto C0 = corpus::buildCorpus(Files, NoShim);
  corpus::CorpusOptions WithShim;
  auto C1 = corpus::buildCorpus(Files, WithShim);

  TextTable T;
  T.setHeader({"", "without shim", "with shim", "paper"});
  T.addRow({"discard rate", formatPercent(C0.Stats.discardRate()),
            formatPercent(C1.Stats.discardRate()), "40% -> 32%"});
  T.addRow({"files accepted", std::to_string(C0.Stats.FilesAccepted),
            std::to_string(C1.Stats.FilesAccepted), "-"});
  T.addRow({"kernel functions", std::to_string(C0.Stats.KernelCount),
            std::to_string(C1.Stats.KernelCount), "9487"});
  std::printf("%s", T.render().c_str());

  std::printf("\nRejection breakdown (with shim):\n");
  for (int R = 1; R < 7; ++R) {
    if (C1.Stats.RejectionsByReason[R] == 0)
      continue;
    std::printf("  %-22s %zu\n",
                corpus::rejectionReasonName(
                    static_cast<corpus::RejectionReason>(R)),
                C1.Stats.RejectionsByReason[R]);
  }

  TextTable L;
  L.setHeader({"stage", "non-blank lines", "paper"});
  L.addRow({"raw GitHub dataset", std::to_string(C1.Stats.RawLines),
            "2.8M"});
  L.addRow({"compilable (post filter)",
            std::to_string(C1.Stats.CompilableLines), "2.0M"});
  L.addRow({"final corpus (post rewrite)",
            std::to_string(C1.Stats.FinalLines), "1.3M"});
  std::printf("\n%s", L.render().c_str());

  std::printf("\nIdentifier vocabulary: %zu -> %zu distinct identifiers "
              "(%.0f%% reduction; paper: 84%%)\n",
              C1.Stats.VocabularyBefore, C1.Stats.VocabularyAfter,
              C1.Stats.vocabularyReduction() * 100.0);

  // --- Listing 1: the shim header. ---
  std::printf("%s",
              sectionBanner("Listing 1: shim header (excerpt)").c_str());
  auto ShimLines = splitLines(corpus::shimHeaderText());
  for (size_t I = 0; I < ShimLines.size() && I < 14; ++I)
    std::printf("%s\n", ShimLines[I].c_str());
  std::printf("... (%zu more lines)\n", ShimLines.size() - 14);

  // --- Figure 5: the rewriting example. ---
  std::printf("%s",
              sectionBanner("Figure 5: the code rewriting process").c_str());
  const char *Fig5a =
      "#define DTYPE float\n"
      "#define ALPHA(a) 3.5f * a\n"
      "inline DTYPE ax(DTYPE x) { return ALPHA(x); }\n"
      "\n"
      "__kernel void saxpy(/* SAXPY kernel */\n"
      "                    __global DTYPE* input1,\n"
      "                    __global DTYPE* input2,\n"
      "                    const int nelem) {\n"
      "  unsigned int idx = get_global_id(0);\n"
      "  // = ax + y\n"
      "  if (idx < nelem) {\n"
      "    input2[idx] += ax(input1[idx]); }}\n";
  std::printf("(a) content file:\n%s\n", Fig5a);
  auto Pre = ocl::preprocess(Fig5a);
  if (!Pre.ok()) {
    std::printf("preprocess error: %s\n", Pre.errorMessage().c_str());
    return 1;
  }
  auto Rewritten = corpus::rewriteSource(Pre.get());
  if (!Rewritten.ok()) {
    std::printf("rewrite error: %s\n", Rewritten.errorMessage().c_str());
    return 1;
  }
  std::printf("(b) after code rewriting:\n%s\n", Rewritten.get().c_str());
  return 0;
}

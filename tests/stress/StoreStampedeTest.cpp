//===- tests/stress/StoreStampedeTest.cpp - store concurrency stress ----------===//
//
// Concurrency stress for the store lifecycle engine, in the stress
// binary (ctest label "stress", the intended TSan workload — see
// ChannelSoakTest.cpp for the invocations):
//
//   - cold-start stampedes on one fingerprint/configuration — threads
//     AND fork()ed processes — must do the expensive work exactly once
//     (store/Lock.h advisory locking, double-checked under the lock);
//   - concurrent `store::sweep` against live ResultCache readers and
//     writers: readers either hit with a complete, correct entry or
//     miss — never a torn or mixed-up measurement, and the sweep/read
//     race is TSan-clean.
//
//===----------------------------------------------------------------------===//

#include "store/Lifecycle.h"

#include "clgen/Pipeline.h"
#include "githubsim/GithubSim.h"
#include "runtime/HostDriver.h"
#include "store/Lock.h"
#include "store/ResultCache.h"
#include "vm/Compiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace clgen;
using namespace clgen::store;

namespace fs = std::filesystem;

namespace {

class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name)
      : Path(fs::temp_directory_path() /
             ("clgen_stampede_test_" + Name)) {
    fs::remove_all(Path);
    fs::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
  std::string file(const std::string &Name) const {
    return (Path / Name).string();
  }
  std::string str() const { return Path.string(); }

private:
  fs::path Path;
};

/// Small, fast training workload shared by every stampede test; the
/// point is contention, not model quality.
std::vector<corpus::ContentFile> smallWorkload() {
  githubsim::GithubSimOptions GOpts;
  GOpts.FileCount = 40;
  return githubsim::mineGithub(GOpts);
}

core::PipelineOptions smallPipelineOptions() {
  core::PipelineOptions Opts;
  Opts.NGram.Order = 6;
  Opts.Corpus.Workers = 1; // Keep each racer single-threaded inside.
  return Opts;
}

/// Start barrier: racers block until every thread is staged, so the
/// cold fast-path probes genuinely overlap.
class StartGate {
public:
  void waitAt(size_t Expected) {
    std::unique_lock<std::mutex> Lock(M);
    if (++Arrived >= Expected) {
      Open = true;
      Cv.notify_all();
      return;
    }
    Cv.wait(Lock, [this] { return Open; });
  }

private:
  std::mutex M;
  std::condition_variable Cv;
  size_t Arrived = 0;
  bool Open = false;
};

vm::CompiledKernel compileSample(const std::string &Body) {
  std::string Src = "__kernel void k(__global float* a, const int n) {\n"
                    "  int i = get_global_id(0);\n"
                    "  if (i < n) { " +
                    Body +
                    " }\n"
                    "}\n";
  auto K = vm::compileFirstKernel(Src);
  EXPECT_TRUE(K.ok()) << K.errorMessage();
  return K.take();
}

} // namespace

//===----------------------------------------------------------------------===//
// Thread-level stampedes
//===----------------------------------------------------------------------===//

TEST(StoreStampedeTest, ThreadColdStampedeTrainsExactlyOnce) {
  ScratchDir Dir("train_threads");
  auto Files = smallWorkload();
  auto Opts = smallPipelineOptions();
  constexpr size_t Racers = 4;

  StartGate Gate;
  std::atomic<size_t> Trained{0}, Loaded{0}, Failed{0};
  std::vector<std::thread> Threads;
  for (size_t T = 0; T < Racers; ++T)
    Threads.emplace_back([&] {
      Gate.waitAt(Racers);
      core::TrainOrLoadInfo Info;
      auto P = core::ClgenPipeline::trainOrLoad(Dir.str(), Files, Opts,
                                                &Info);
      if (!P.ok()) {
        Failed.fetch_add(1);
        return;
      }
      (Info.LoadedModel ? Loaded : Trained).fetch_add(1);
    });
  for (auto &T : Threads)
    T.join();

  EXPECT_EQ(Failed.load(), 0u);
  EXPECT_EQ(Trained.load(), 1u)
      << "stampede control must dedupe concurrent cold training";
  EXPECT_EQ(Loaded.load(), Racers - 1);

  // And everyone must have ended up with the same artifact: one more
  // warm start matches the store bytes written by the single trainer.
  core::TrainOrLoadInfo Info;
  auto Warm =
      core::ClgenPipeline::trainOrLoad(Dir.str(), Files, Opts, &Info);
  ASSERT_TRUE(Warm.ok());
  EXPECT_TRUE(Info.LoadedModel);
}

TEST(StoreStampedeTest, ThreadColdStampedeSynthesizesExactlyOnce) {
  ScratchDir Dir("synth_threads");
  auto Files = smallWorkload();
  auto Opts = smallPipelineOptions();
  constexpr size_t Racers = 4;

  // Each racer owns an identically-trained pipeline (deterministic
  // training ⇒ identical models ⇒ identical synthesis cache keys).
  std::vector<core::ClgenPipeline> Pipelines;
  for (size_t T = 0; T < Racers; ++T)
    Pipelines.push_back(core::ClgenPipeline::train(Files, Opts));

  core::SynthesisOptions SOpts;
  SOpts.TargetKernels = 4;
  SOpts.Workers = 1;

  StartGate Gate;
  std::atomic<size_t> Synthesized{0}, LoadedCount{0};
  std::vector<std::string> Sources(Racers);
  std::vector<std::thread> Threads;
  for (size_t T = 0; T < Racers; ++T)
    Threads.emplace_back([&, T] {
      Gate.waitAt(Racers);
      bool Loaded = false;
      auto Out = Pipelines[T].synthesizeOrLoad(Dir.str(), SOpts, &Loaded);
      (Loaded ? LoadedCount : Synthesized).fetch_add(1);
      for (const auto &K : Out.Kernels)
        Sources[T] += K.Source;
    });
  for (auto &T : Threads)
    T.join();

  EXPECT_EQ(Synthesized.load(), 1u)
      << "exactly one racer may pay the sampling cost";
  EXPECT_EQ(LoadedCount.load(), Racers - 1);
  for (size_t T = 1; T < Racers; ++T)
    EXPECT_EQ(Sources[T], Sources[0])
        << "loaded kernel sets must be byte-identical to the sampled one";
}

TEST(StoreStampedeTest, ThreadColdStampedeCachedBatchMeasuresEachKernelOnce) {
  ScratchDir Dir("batch_threads");
  std::vector<vm::CompiledKernel> Kernels;
  const char *Bodies[] = {"a[i] = a[i] * 2.0f;", "a[i] = a[i] + 7.0f;",
                          "a[i] = a[i] * a[i];", "a[i] = -a[i];",
                          "a[i] = a[i] - 3.0f;", "a[i] = a[i] * 0.5f;"};
  for (const char *Body : Bodies)
    Kernels.push_back(compileSample(Body));
  runtime::DriverOptions DOpts;
  DOpts.GlobalSize = 4096;
  auto Platform = runtime::amdPlatform();

  // Reference: uncached, deterministic.
  auto Reference = runtime::runBenchmarkBatch(Kernels, Platform, DOpts, 1);

  constexpr size_t Racers = 4;
  StartGate Gate;
  std::atomic<size_t> TotalMisses{0}, TotalHits{0}, Mismatches{0};
  std::vector<std::thread> Threads;
  for (size_t T = 0; T < Racers; ++T)
    Threads.emplace_back([&] {
      // Each racer gets its own cache INSTANCE over the shared
      // directory — the in-memory fronts are independent, exactly like
      // separate processes sharing one store.
      store::ResultCache Cache(Dir.str());
      runtime::BatchCacheStats Stats;
      Gate.waitAt(Racers);
      auto Out = runtime::runBenchmarkBatch(Kernels, Platform, DOpts, 1,
                                            Cache, &Stats);
      TotalMisses.fetch_add(Stats.Misses);
      TotalHits.fetch_add(Stats.Hits);
      for (size_t I = 0; I < Out.size(); ++I) {
        if (!Out[I].ok() || !Reference[I].ok() ||
            Out[I].get().CpuTime != Reference[I].get().CpuTime ||
            Out[I].get().Counters.Instructions !=
                Reference[I].get().Counters.Instructions)
          Mismatches.fetch_add(1);
      }
    });
  for (auto &T : Threads)
    T.join();

  EXPECT_EQ(Mismatches.load(), 0u);
  EXPECT_EQ(TotalMisses.load(), Kernels.size())
      << "each kernel must be measured exactly once across all racers";
  EXPECT_EQ(TotalHits.load(), Kernels.size() * (Racers - 1));
}

//===----------------------------------------------------------------------===//
// Process-level stampede (fork)
//===----------------------------------------------------------------------===//

#ifndef _WIN32
TEST(StoreStampedeTest, ForkedColdStampedeTrainsExactlyOnce) {
  ScratchDir Dir("train_forks");
  auto Files = smallWorkload();
  auto Opts = smallPipelineOptions();
  Opts.Train.Workers = 1;
  constexpr int Racers = 4;
  std::string GoFile = Dir.file("go");

  std::vector<pid_t> Children;
  for (int C = 0; C < Racers; ++C) {
    pid_t Pid = fork();
    ASSERT_GE(Pid, 0) << "fork failed";
    if (Pid == 0) {
      // Child: spin until the parent releases every racer at once,
      // run the cold-start path, record the verdict, and _exit so no
      // gtest/atexit machinery runs twice.
      for (int Spin = 0; Spin < 5000 && !fs::exists(GoFile); ++Spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      core::TrainOrLoadInfo Info;
      auto P = core::ClgenPipeline::trainOrLoad(Dir.str(), Files, Opts,
                                                &Info);
      char Verdict = !P.ok() ? 'F' : (Info.LoadedModel ? 'L' : 'T');
      std::ofstream Out(Dir.file("verdict-" + std::to_string(C)));
      Out << Verdict;
      Out.close();
      _exit(0);
    }
    Children.push_back(Pid);
  }
  { std::ofstream Go(GoFile); }

  for (pid_t Pid : Children) {
    int Status = 0;
    ASSERT_EQ(waitpid(Pid, &Status, 0), Pid);
    EXPECT_TRUE(WIFEXITED(Status) && WEXITSTATUS(Status) == 0);
  }

  int Trained = 0, Loaded = 0, Failed = 0;
  for (int C = 0; C < Racers; ++C) {
    std::ifstream In(Dir.file("verdict-" + std::to_string(C)));
    char Verdict = 0;
    In >> Verdict;
    Trained += Verdict == 'T';
    Loaded += Verdict == 'L';
    Failed += Verdict != 'T' && Verdict != 'L';
  }
  EXPECT_EQ(Failed, 0);
  EXPECT_EQ(Trained, 1)
      << "cross-process stampede control must dedupe cold training";
  EXPECT_EQ(Loaded, Racers - 1);
}
#endif // !_WIN32

//===----------------------------------------------------------------------===//
// Concurrent GC vs. live cache traffic
//===----------------------------------------------------------------------===//

TEST(StoreStampedeTest, ConcurrentGcVsCacheReadsNeverServesTornEntries) {
  // One thread continuously sweeps the store down to a budget that
  // evicts most entries while reader threads hammer lookups and a
  // writer re-stores what the sweeps evict. Readers must only ever see
  // (a) a miss or (b) the exact measurement stored for that key —
  // never a torn, truncated or mixed-up entry. Under TSan this is also
  // the data-race certification for sweep vs. ResultCache.
  ScratchDir Dir("gc_vs_reads");
  constexpr size_t KeyCount = 12;
  constexpr size_t Readers = 3;
  constexpr auto Duration = std::chrono::milliseconds(1500);

  auto MeasurementFor = [](size_t I) {
    runtime::Measurement M;
    M.CpuTime = 1.0 + static_cast<double>(I);
    M.GpuTime = 100.0 + static_cast<double>(I);
    M.Counters.Instructions = 1000 + I;
    M.GlobalSize = 64 * (I + 1);
    return M;
  };
  std::vector<uint64_t> Keys(KeyCount);
  {
    ResultCache Seeder(Dir.str());
    for (size_t I = 0; I < KeyCount; ++I) {
      Keys[I] = 0xFEED0000ull + I;
      ASSERT_TRUE(Seeder.store(Keys[I], MeasurementFor(I)).ok());
    }
  }

  std::atomic<bool> Stop{false};
  std::atomic<size_t> TornEntries{0}, Hits{0}, Misses{0}, Sweeps{0};

  std::thread Sweeper([&] {
    SweepPolicy P;
    P.MaxBytes = 300; // Keeps only a couple of 216-byte entries.
    while (!Stop.load(std::memory_order_relaxed)) {
      auto R = sweep(Dir.str(), P);
      EXPECT_TRUE(R.ok()) << R.errorMessage();
      Sweeps.fetch_add(1);
    }
  });
  std::thread Writer([&] {
    ResultCache Cache(Dir.str());
    size_t I = 0;
    while (!Stop.load(std::memory_order_relaxed)) {
      Cache.store(Keys[I % KeyCount], MeasurementFor(I % KeyCount));
      ++I;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::vector<std::thread> ReaderThreads;
  for (size_t T = 0; T < Readers; ++T)
    ReaderThreads.emplace_back([&, T] {
      // A fresh instance per reader: every hit exercises the disk/
      // revalidation path against the sweeper, like a cold process.
      ResultCache Cache(Dir.str());
      size_t I = T;
      while (!Stop.load(std::memory_order_relaxed)) {
        size_t K = I++ % KeyCount;
        auto M = Cache.lookup(Keys[K]);
        if (!M) {
          Misses.fetch_add(1);
          continue;
        }
        Hits.fetch_add(1);
        runtime::Measurement Want = MeasurementFor(K);
        if (M->CpuTime != Want.CpuTime || M->GpuTime != Want.GpuTime ||
            M->Counters.Instructions != Want.Counters.Instructions ||
            M->GlobalSize != Want.GlobalSize)
          TornEntries.fetch_add(1);
      }
    });

  std::this_thread::sleep_for(Duration);
  Stop.store(true);
  Sweeper.join();
  Writer.join();
  for (auto &T : ReaderThreads)
    T.join();

  EXPECT_EQ(TornEntries.load(), 0u)
      << "a reader saw a half-evicted or mixed-up entry";
  EXPECT_GT(Sweeps.load(), 0u);
  EXPECT_GT(Hits.load() + Misses.load(), 0u);

  // The store itself must come out of the torture readable.
  auto Entries = scanStore(Dir.str());
  ASSERT_TRUE(Entries.ok());
  for (const EntryInfo &E : Entries.get())
    EXPECT_TRUE(E.Valid) << E.RelPath << ": " << E.Problem;
}

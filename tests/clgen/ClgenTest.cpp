//===- tests/clgen/ClgenTest.cpp - sampler / synthesizer / pipeline -----------===//

#include "clgen/Pipeline.h"

#include "clgen/Sampler.h"
#include "clgen/Synthesizer.h"
#include "githubsim/GithubSim.h"

#include <gtest/gtest.h>

using namespace clgen;
using namespace clgen::core;

namespace {

/// A tiny deterministic language model for sampler unit tests: emits a
/// fixed string then end-of-text.
class ScriptedModel : public model::LanguageModel {
public:
  explicit ScriptedModel(std::string Script) : Script(std::move(Script)) {
    Vocab = model::Vocabulary::fromText(this->Script +
                                        "_abcdefghijklmnopqrstuvwxyz"
                                        "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
                                        "0123456789*(){}[];=+-<. \n");
  }
  const model::Vocabulary &vocabulary() const override { return Vocab; }
  void reset() override { Cursor = 0; }
  void observe(int) override {}
  std::vector<double> nextDistribution() override {
    std::vector<double> Dist(Vocab.size(), 0.0);
    if (Cursor < Script.size())
      Dist[Vocab.idOf(Script[Cursor++])] = 1.0;
    else
      Dist[model::Vocabulary::EndOfText] = 1.0;
    return Dist;
  }

private:
  model::Vocabulary Vocab;
  std::string Script;
  size_t Cursor = 0;
};

} // namespace

//===----------------------------------------------------------------------===//
// ArgSpec / seeds
//===----------------------------------------------------------------------===//

TEST(ArgSpecTest, Figure6SeedText) {
  EXPECT_EQ(ArgSpec::figure6().seedText(),
            "__kernel void A(__global float* a, __global float* b, "
            "__global float* c, const int d) {");
}

TEST(ArgSpecTest, CustomSpec) {
  ArgSpec Spec;
  Spec.ArgTypes = {"__global int*", "float"};
  EXPECT_EQ(Spec.seedText(),
            "__kernel void A(__global int* a, float b) {");
}

//===----------------------------------------------------------------------===//
// Sampler (Algorithm 1)
//===----------------------------------------------------------------------===//

TEST(SamplerTest, StopsWhenBlockDepthReachesZero) {
  // Script closes the seed's '{' after one statement; anything after the
  // closing brace must not be consumed.
  ScriptedModel M(" a[0] = 1.0f; } trailing garbage");
  Rng R(1);
  SampleOptions Opts;
  auto S = sampleKernel(M, "__kernel void A(__global float* a) {", Opts, R);
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->back(), '}');
  EXPECT_EQ(S->find("garbage"), std::string::npos);
}

TEST(SamplerTest, TracksNestedBlocks) {
  ScriptedModel M(" if (1) { a[0] = 1.0f; } a[1] = 2.0f; } extra");
  Rng R(1);
  auto S = sampleKernel(M, "__kernel void A(__global float* a) {",
                        SampleOptions(), R);
  ASSERT_TRUE(S.has_value());
  // Both the inner and outer '}' are present; sampling stopped at outer.
  EXPECT_NE(S->find("if (1) {"), std::string::npos);
  EXPECT_EQ(S->find("extra"), std::string::npos);
}

TEST(SamplerTest, LengthCapReturnsNullopt) {
  ScriptedModel M(std::string(5000, 'x')); // Never closes the block.
  Rng R(1);
  SampleOptions Opts;
  Opts.MaxLength = 128;
  EXPECT_FALSE(
      sampleKernel(M, "__kernel void A() {", Opts, R).has_value());
}

TEST(SamplerTest, PrematureEndOfTextReturnsNullopt) {
  ScriptedModel M(" a[0] = 1.0f; "); // EOT before '}'.
  Rng R(1);
  EXPECT_FALSE(sampleKernel(M, "__kernel void A(__global float* a) {",
                            SampleOptions(), R)
                   .has_value());
}

TEST(SamplerTest, StrayCloseBraceBeforeOpenIsRejected) {
  // Free-mode seed has depth 0; a '}' before any '{' must reject the
  // sample instead of driving the depth negative and letting a later
  // {...} pair pose as the function body.
  ScriptedModel M("int x); } garbage { a[0] = 1; }");
  Rng R(1);
  auto S = sampleKernel(M, "__kernel void A(", SampleOptions(), R);
  EXPECT_FALSE(S.has_value());
}

TEST(SamplerTest, MalformedSeedIsRejected) {
  ScriptedModel M(" a[0] = 1.0f; }");
  Rng R(1);
  EXPECT_FALSE(sampleKernel(M, "} broken seed {", SampleOptions(), R)
                   .has_value());
}

//===----------------------------------------------------------------------===//
// drawToken edge cases
//===----------------------------------------------------------------------===//

TEST(DrawTokenTest, EmptyDistributionYieldsEndOfText) {
  Rng R(1);
  std::vector<double> Empty;
  EXPECT_EQ(drawToken(Empty, 0.85, R), model::Vocabulary::EndOfText);
}

TEST(DrawTokenTest, AllZeroDistributionYieldsEndOfText) {
  Rng R(1);
  std::vector<double> Zeros(16, 0.0);
  EXPECT_EQ(drawToken(Zeros, 0.85, R), model::Vocabulary::EndOfText);
}

TEST(DrawTokenTest, ZeroProbabilityTokensAreNeverDrawn) {
  Rng R(9);
  std::vector<double> Dist = {0.0, 0.5, 0.0, 0.5, 0.0};
  for (int I = 0; I < 500; ++I) {
    int T = drawToken(Dist, 0.7, R);
    EXPECT_TRUE(T == 1 || T == 3) << "drew zero-probability token " << T;
  }
}

TEST(DrawTokenTest, TemperatureSharpensDistribution) {
  Rng R(5);
  std::vector<double> Dist = {0.25, 0.75};
  int HotMajority = 0, ColdMajority = 0;
  const int N = 4000;
  for (int I = 0; I < N; ++I) {
    HotMajority += drawToken(Dist, 1.0, R) == 1;
    ColdMajority += drawToken(Dist, 0.25, R) == 1;
  }
  // At T=1 the majority token wins ~75%; at T=0.25 the p-ratio is cubed
  // to 81:1 so it should win nearly always.
  EXPECT_NEAR(HotMajority / static_cast<double>(N), 0.75, 0.05);
  EXPECT_GT(ColdMajority / static_cast<double>(N), 0.95);
}

TEST(DrawTokenTest, DeterministicForEqualRngState) {
  std::vector<double> Dist = {0.1, 0.2, 0.3, 0.4};
  Rng A(77), B(77);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(drawToken(Dist, 0.6, A), drawToken(Dist, 0.6, B));
}

//===----------------------------------------------------------------------===//
// Synthesizer + pipeline (integration)
//===----------------------------------------------------------------------===//

namespace {

ClgenPipeline &sharedPipeline() {
  static ClgenPipeline P = [] {
    githubsim::GithubSimOptions GOpts;
    GOpts.FileCount = 400;
    PipelineOptions POpts;
    POpts.NGram.Order = 14;
    return ClgenPipeline::train(githubsim::mineGithub(GOpts), POpts);
  }();
  return P;
}

} // namespace

TEST(SynthesizerTest, ProducesCompilableUniqueKernels) {
  SynthesisOptions Opts;
  Opts.TargetKernels = 10;
  Opts.MaxAttempts = 4000;
  Opts.Sampling.Temperature = 0.5;
  auto R = sharedPipeline().synthesize(Opts);
  EXPECT_GT(R.Kernels.size(), 0u);
  std::set<std::string> Unique;
  for (const auto &SK : R.Kernels) {
    EXPECT_GE(SK.Kernel.staticInstructionCount(), 3u);
    EXPECT_TRUE(Unique.insert(SK.Source).second) << "duplicate emitted";
    // Argument specification respected: Figure 6 signature.
    EXPECT_NE(SK.Source.find("__kernel void A(__global float* a, "
                             "__global float* b, __global float* c, "
                             "const int d)"),
              std::string::npos)
        << SK.Source;
  }
  // Bookkeeping adds up.
  EXPECT_EQ(R.Stats.Accepted + R.Stats.IncompleteSamples +
                R.Stats.RejectedByFilter + R.Stats.Duplicates,
            R.Stats.Attempts);
}

TEST(SynthesizerTest, FreeModeInventsSignatures) {
  SynthesisOptions Opts;
  Opts.TargetKernels = 5;
  Opts.MaxAttempts = 4000;
  Opts.Spec = std::nullopt;
  Opts.Sampling.Temperature = 0.5;
  auto R = sharedPipeline().synthesize(Opts);
  EXPECT_GT(R.Kernels.size(), 0u);
  for (const auto &SK : R.Kernels)
    EXPECT_NE(SK.Source.find("__kernel void A("), std::string::npos);
}

TEST(SynthesizerTest, DeterministicForSeed) {
  SynthesisOptions Opts;
  Opts.TargetKernels = 3;
  Opts.MaxAttempts = 2000;
  Opts.Seed = 99;
  auto A = sharedPipeline().synthesize(Opts);
  auto B = sharedPipeline().synthesize(Opts);
  ASSERT_EQ(A.Kernels.size(), B.Kernels.size());
  for (size_t I = 0; I < A.Kernels.size(); ++I)
    EXPECT_EQ(A.Kernels[I].Source, B.Kernels[I].Source);
}

TEST(SynthesizerTest, BitIdenticalAcrossWorkerCounts) {
  // The parallel engine's core contract: for a fixed seed the output
  // stream (sources, order, and stats) does not depend on how many
  // workers sampled it.
  SynthesisOptions Opts;
  Opts.TargetKernels = 6;
  Opts.MaxAttempts = 3000;
  Opts.Sampling.Temperature = 0.5;
  Opts.Seed = 0xD17E;

  Opts.Workers = 1;
  auto Serial = sharedPipeline().synthesize(Opts);
  ASSERT_GT(Serial.Kernels.size(), 0u);

  for (unsigned Workers : {2u, 8u}) {
    Opts.Workers = Workers;
    auto Parallel = sharedPipeline().synthesize(Opts);
    ASSERT_EQ(Parallel.Kernels.size(), Serial.Kernels.size())
        << "workers=" << Workers;
    for (size_t I = 0; I < Serial.Kernels.size(); ++I)
      EXPECT_EQ(Parallel.Kernels[I].Source, Serial.Kernels[I].Source)
          << "workers=" << Workers << " kernel " << I;
    EXPECT_EQ(Parallel.Stats.Attempts, Serial.Stats.Attempts);
    EXPECT_EQ(Parallel.Stats.Accepted, Serial.Stats.Accepted);
    EXPECT_EQ(Parallel.Stats.IncompleteSamples,
              Serial.Stats.IncompleteSamples);
    EXPECT_EQ(Parallel.Stats.RejectedByFilter,
              Serial.Stats.RejectedByFilter);
    EXPECT_EQ(Parallel.Stats.Duplicates, Serial.Stats.Duplicates);
  }
}

TEST(SynthesizerTest, ZeroTargetSynthesizesNothing) {
  SynthesisOptions Opts;
  Opts.TargetKernels = 0;
  Opts.MaxAttempts = 100;
  for (unsigned Workers : {1u, 4u}) {
    Opts.Workers = Workers;
    auto R = sharedPipeline().synthesize(Opts);
    EXPECT_EQ(R.Kernels.size(), 0u) << "workers=" << Workers;
    EXPECT_EQ(R.Stats.Attempts, 0u) << "workers=" << Workers;
  }
}

TEST(SynthesizerTest, WaveSizeDoesNotChangeOutput) {
  SynthesisOptions Opts;
  Opts.TargetKernels = 4;
  Opts.MaxAttempts = 2000;
  Opts.Sampling.Temperature = 0.5;
  Opts.Seed = 0xBEEF;
  Opts.Workers = 2;
  Opts.WaveSize = 4;
  auto Small = sharedPipeline().synthesize(Opts);
  Opts.WaveSize = 64;
  auto Large = sharedPipeline().synthesize(Opts);
  ASSERT_EQ(Small.Kernels.size(), Large.Kernels.size());
  for (size_t I = 0; I < Small.Kernels.size(); ++I)
    EXPECT_EQ(Small.Kernels[I].Source, Large.Kernels[I].Source);
  EXPECT_EQ(Small.Stats.Attempts, Large.Stats.Attempts);
}

TEST(PipelineTest, TrainsOnCorpusAndReportsStats) {
  const auto &Corpus = sharedPipeline().corpus();
  EXPECT_GT(Corpus.Entries.size(), 20u);
  EXPECT_GT(Corpus.Stats.KernelCount, Corpus.Entries.size() / 2);
  EXPECT_NEAR(Corpus.Stats.discardRate(), 0.32, 0.08);
}

TEST(PipelineTest, LstmBackendEndToEnd) {
  // Laptop-scale LSTM through the same pipeline interface. Tiny corpus
  // and model: the goal is end-to-end wiring, not sample quality.
  githubsim::GithubSimOptions GOpts;
  GOpts.FileCount = 30;
  PipelineOptions POpts;
  POpts.Backend = ModelBackend::Lstm;
  POpts.Lstm.Layers = 1;
  POpts.Lstm.HiddenSize = 24;
  POpts.Lstm.Epochs = 1;
  auto P = ClgenPipeline::train(githubsim::mineGithub(GOpts), POpts);
  SynthesisOptions SOpts;
  SOpts.TargetKernels = 1;
  SOpts.MaxAttempts = 40; // A barely-trained LSTM rarely compiles.
  auto R = P.synthesize(SOpts);
  EXPECT_EQ(R.Stats.Attempts,
            R.Stats.Accepted + R.Stats.IncompleteSamples +
                R.Stats.RejectedByFilter + R.Stats.Duplicates);
}

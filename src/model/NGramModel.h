//===- model/NGramModel.h - Backoff n-gram language model --------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Character-level n-gram language model with stupid-backoff smoothing.
///
/// Role in the reproduction: the paper trains a 3-layer x 2048-unit LSTM
/// for three weeks on a GTX Titan (section 4.2). That compute budget is
/// unavailable here, so the large-scale experiments (Figures 7-9), which
/// need thousands of accepted synthetic kernels, sample this model
/// instead: it trains in seconds on the full corpus and captures the
/// same "how humans write OpenCL" statistics at the character level. The
/// LSTM (model/LstmModel.h) implements the paper's architecture
/// faithfully and is exercised end-to-end at laptop scale.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_MODEL_NGRAMMODEL_H
#define CLGEN_MODEL_NGRAMMODEL_H

#include "model/LanguageModel.h"

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace clgen {
namespace model {

/// Transparent string hashing so context lookups run on string_views of
/// the rolling context buffer — the sampling hot loop performs zero
/// allocations per character.
struct StringHash {
  using is_transparent = void;
  size_t operator()(std::string_view S) const {
    return std::hash<std::string_view>{}(S);
  }
  size_t operator()(const std::string &S) const {
    return std::hash<std::string_view>{}(S);
  }
};

struct NGramOptions {
  /// Model order: context length = Order - 1 characters.
  int Order = 10;
  /// Backoff multiplier per level (Brants et al. "stupid backoff").
  double BackoffAlpha = 0.4;
  /// Additive smoothing at the unigram level.
  double UnigramSmoothing = 0.1;
};

class NGramModel : public LanguageModel {
public:
  /// Context string -> (next-token id -> count). The empty context holds
  /// unigram counts. Transparent hashing allows string_view lookups.
  using ContextCounts =
      std::unordered_map<std::string, std::unordered_map<int, uint32_t>,
                         StringHash, std::equal_to<>>;

  explicit NGramModel(NGramOptions Opts = NGramOptions()) : Opts(Opts) {}

  /// Trains on corpus entries (each a normalised kernel). Entries are
  /// separated by the end-of-text sentinel so the model learns kernel
  /// boundaries.
  void train(const std::vector<std::string> &Entries);

  // LanguageModel:
  const Vocabulary &vocabulary() const override { return Vocab; }
  void reset() override;
  void observe(int TokenId) override;
  std::vector<double> nextDistribution() override;
  void nextDistributionInto(std::vector<double> &Dist) override;
  std::unique_ptr<LanguageModel> clone() const override;
  const char *backendName() const override { return "ngram"; }

  /// Number of distinct contexts stored (all orders).
  size_t contextCount() const { return Counts ? Counts->size() : 0; }

  /// Appends options, vocabulary and the full count table to an archive
  /// payload. Contexts and their count entries are emitted in sorted
  /// order, so equal trained models serialize to byte-identical
  /// archives (content-addressing relies on this).
  void serialize(store::ArchiveWriter &W) const;

  /// Rebuilds a trained model from an archive. On schema violations the
  /// reader's error state is tripped; callers must check it before
  /// using the returned model.
  static NGramModel deserialize(store::ArchiveReader &R);

private:
  NGramOptions Opts;
  Vocabulary Vocab;
  /// Immutable once trained and shared between clones, so per-worker
  /// model copies cost O(1) instead of duplicating the count table.
  std::shared_ptr<const ContextCounts> Counts;
  /// Rolling context of the last Order-1 token ids (as chars).
  std::string Context;

  void addSequence(ContextCounts &Building, const std::string &Entry) const;
};

} // namespace model
} // namespace clgen

#endif // CLGEN_MODEL_NGRAMMODEL_H

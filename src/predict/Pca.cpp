//===- predict/Pca.cpp - Principal component analysis -------------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "predict/Pca.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

using namespace clgen;
using namespace clgen::predict;

std::vector<double> PcaResult::project(const std::vector<double> &X,
                                       size_t K) const {
  assert(X.size() == Mean.size() && "dimension mismatch");
  K = std::min(K, Components.size());
  std::vector<double> Out(K, 0.0);
  for (size_t C = 0; C < K; ++C) {
    double Dot = 0.0;
    for (size_t F = 0; F < X.size(); ++F)
      Dot += Components[C][F] * ((X[F] - Mean[F]) / Scale[F]);
    Out[C] = Dot;
  }
  return Out;
}

PcaResult predict::fitPca(const std::vector<std::vector<double>> &X) {
  PcaResult R;
  assert(X.size() >= 2 && "PCA needs at least two rows");
  size_t N = X.size();
  size_t D = X[0].size();

  // Standardise columns.
  R.Mean.assign(D, 0.0);
  R.Scale.assign(D, 1.0);
  for (const auto &Row : X)
    for (size_t F = 0; F < D; ++F)
      R.Mean[F] += Row[F];
  for (size_t F = 0; F < D; ++F)
    R.Mean[F] /= static_cast<double>(N);
  for (size_t F = 0; F < D; ++F) {
    double Var = 0.0;
    for (const auto &Row : X)
      Var += (Row[F] - R.Mean[F]) * (Row[F] - R.Mean[F]);
    Var /= static_cast<double>(N - 1);
    R.Scale[F] = Var > 1e-30 ? std::sqrt(Var) : 1.0;
  }

  // Covariance of the standardised data.
  std::vector<std::vector<double>> Cov(D, std::vector<double>(D, 0.0));
  for (const auto &Row : X) {
    for (size_t A = 0; A < D; ++A) {
      double ZA = (Row[A] - R.Mean[A]) / R.Scale[A];
      for (size_t B = A; B < D; ++B) {
        double ZB = (Row[B] - R.Mean[B]) / R.Scale[B];
        Cov[A][B] += ZA * ZB;
      }
    }
  }
  for (size_t A = 0; A < D; ++A)
    for (size_t B = A; B < D; ++B) {
      Cov[A][B] /= static_cast<double>(N - 1);
      Cov[B][A] = Cov[A][B];
    }

  // Jacobi rotations.
  std::vector<std::vector<double>> V(D, std::vector<double>(D, 0.0));
  for (size_t I = 0; I < D; ++I)
    V[I][I] = 1.0;
  for (int Sweep = 0; Sweep < 64; ++Sweep) {
    double Off = 0.0;
    for (size_t A = 0; A < D; ++A)
      for (size_t B = A + 1; B < D; ++B)
        Off += Cov[A][B] * Cov[A][B];
    if (Off < 1e-20)
      break;
    for (size_t P = 0; P < D; ++P) {
      for (size_t Q = P + 1; Q < D; ++Q) {
        if (std::fabs(Cov[P][Q]) < 1e-15)
          continue;
        double Theta = (Cov[Q][Q] - Cov[P][P]) / (2.0 * Cov[P][Q]);
        double T = (Theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(Theta) + std::sqrt(Theta * Theta + 1.0));
        double C = 1.0 / std::sqrt(T * T + 1.0);
        double S = T * C;
        for (size_t I = 0; I < D; ++I) {
          double Aip = Cov[I][P], Aiq = Cov[I][Q];
          Cov[I][P] = C * Aip - S * Aiq;
          Cov[I][Q] = S * Aip + C * Aiq;
        }
        for (size_t I = 0; I < D; ++I) {
          double Api = Cov[P][I], Aqi = Cov[Q][I];
          Cov[P][I] = C * Api - S * Aqi;
          Cov[Q][I] = S * Api + C * Aqi;
        }
        for (size_t I = 0; I < D; ++I) {
          double Vip = V[I][P], Viq = V[I][Q];
          V[I][P] = C * Vip - S * Viq;
          V[I][Q] = S * Vip + C * Viq;
        }
      }
    }
  }

  // Sort eigenpairs by decreasing eigenvalue. Ties (e.g. isotropic
  // data, where every direction explains equal variance) break on the
  // column index: std::sort is unstable, so without the tie-break the
  // component order of equal eigenvalues would be unspecified.
  std::vector<size_t> Order(D);
  std::iota(Order.begin(), Order.end(), 0);
  std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    if (Cov[A][A] != Cov[B][B])
      return Cov[A][A] > Cov[B][B];
    return A < B;
  });

  R.Components.resize(D, std::vector<double>(D, 0.0));
  R.ExplainedVariance.resize(D);
  for (size_t K = 0; K < D; ++K) {
    R.ExplainedVariance[K] = Cov[Order[K]][Order[K]];
    for (size_t F = 0; F < D; ++F)
      R.Components[K][F] = V[F][Order[K]];
    // Orientation convention: an eigenvector is only defined up to
    // sign, and the Jacobi rotation path can deliver either one. Pin
    // the first non-negligible coordinate positive so equal inputs
    // always produce identical components (byte-stable Figure 3).
    for (size_t F = 0; F < D; ++F) {
      if (std::fabs(R.Components[K][F]) > 1e-12) {
        if (R.Components[K][F] < 0.0)
          for (size_t G = 0; G < D; ++G)
            R.Components[K][G] = -R.Components[K][G];
        break;
      }
    }
  }
  return R;
}

//===- model/LanguageModel.cpp - Generative LM interface ----------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "model/LanguageModel.h"

#include <cmath>

using namespace clgen;
using namespace clgen::model;

LanguageModel::~LanguageModel() = default;

void LanguageModel::nextDistributionInto(std::vector<double> &Dist) {
  Dist = nextDistribution();
}

void LanguageModel::observeText(const std::string &Text) {
  const Vocabulary &V = vocabulary();
  for (char C : Text)
    observe(V.idOf(C));
}

double LanguageModel::bitsPerChar(const std::string &Text) {
  if (Text.empty())
    return 0.0;
  const Vocabulary &V = vocabulary();
  reset();
  double TotalBits = 0.0;
  for (char C : Text) {
    std::vector<double> Dist = nextDistribution();
    int Id = V.idOf(C);
    double P = Id >= 0 && static_cast<size_t>(Id) < Dist.size()
                   ? Dist[Id]
                   : 1e-12;
    TotalBits += -std::log2(P > 1e-12 ? P : 1e-12);
    observe(Id);
  }
  return TotalBits / static_cast<double>(Text.size());
}

//===- store/FailureLedger.h - Persistent failure ledger ---------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The negative half of the result store: a content-addressed ledger of
/// classified per-kernel failures. Most synthesized kernels misbehave
/// (PAPER.md section 5.2), and under the deterministic simulator a
/// kernel that trapped once traps identically forever — so re-runs can
/// skip known-bad kernels as cheap negative hits instead of rediscovering
/// every failure at full measurement cost.
///
/// Records share the ResultCache key space (store::measurementKey over
/// kernel + driver options + platform) and live as one archive file per
/// failure, <hex key>.clgs of ArchiveKind::Failure, written atomically
/// in a directory of their own. Only deterministic trap classes are
/// admitted (isDeterministicTrap): a watchdog timeout depends on host
/// load and an injected fault on the armed failpoint schedule, and
/// recording either would wrongly poison future runs. record() silently
/// refuses non-ledgerable kinds so call sites need no filtering.
///
/// Lookups go to disk every time (no memory front): a negative hit saves
/// a full measurement, so one small file read is already a ~1000x win,
/// and skipping the resident map means no (mtime, size) revalidation
/// machinery against external sweeps — the directory is always the
/// truth. `clgen-store failures <dir>` lists a ledger via
/// store::listFailures / store::formatFailures.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_STORE_FAILURELEDGER_H
#define CLGEN_STORE_FAILURELEDGER_H

#include "store/Archive.h"
#include "support/Result.h"
#include "support/Trap.h"

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace clgen {
namespace store {

/// One classified failure, keyed like a ResultCache entry.
struct FailureRecord {
  /// Why the kernel failed. Always a deterministic class once stored.
  TrapKind Kind = TrapKind::Unknown;
  /// The original diagnostic message, replayed verbatim on negative
  /// hits so a ledger-served failure is byte-identical to the measured
  /// one.
  std::string Detail;
  /// Measurement attempts consumed when the failure was recorded
  /// (1 + retries).
  uint32_t Attempts = 1;
};

/// Thread-safe persistent ledger over one directory. Degrades like the
/// ResultCache: an uncreatable directory just never hits and every
/// record() fails visibly in the stats.
class FailureLedger {
public:
  struct Stats {
    size_t Lookups = 0;
    size_t NegativeHits = 0; // Lookups that found a record.
    size_t BadEntries = 0;   // Corrupt/truncated records seen.
    size_t Records = 0;      // record() calls admitted.
    size_t Rejected = 0;     // record() calls refused (non-ledgerable).
    size_t WriteFailures = 0;
  };

  /// Opens (creating if needed) the ledger directory.
  explicit FailureLedger(std::string Directory);

  /// Returns the recorded failure for \p Key, or nullopt when the
  /// kernel has no (readable) record.
  std::optional<FailureRecord> lookup(uint64_t Key);

  /// Persists \p Record under \p Key. Refuses non-deterministic trap
  /// kinds (returns success — refusal is policy, not an error; see the
  /// Rejected counter). Concurrent records of the same key are benign
  /// (atomic rename, last writer wins with identical content).
  Status record(uint64_t Key, const FailureRecord &Record);

  const std::string &directory() const { return Dir; }
  bool directoryOk() const { return DirOk; }
  Stats stats() const;

private:
  std::string entryPath(uint64_t Key) const;

  std::string Dir;
  bool DirOk = false;
  struct AtomicStats {
    std::atomic<size_t> Lookups{0};
    std::atomic<size_t> NegativeHits{0};
    std::atomic<size_t> BadEntries{0};
    std::atomic<size_t> Records{0};
    std::atomic<size_t> Rejected{0};
    std::atomic<size_t> WriteFailures{0};
  };
  AtomicStats Counters;
};

/// Serializes one failure record into an archive payload / reads it
/// back (exposed for the round-trip tests; layout in
/// docs/STORE_FORMAT.md).
void serializeFailureRecord(ArchiveWriter &W, uint64_t Key,
                            const FailureRecord &Record);
Result<std::pair<uint64_t, FailureRecord>>
deserializeFailureRecord(ArchiveReader &R);

/// Scans \p Directory for ledger entries, sorted by key. Unreadable or
/// corrupt entries are skipped (counted nowhere — this is inspection,
/// not validation; `clgen-store verify` covers integrity).
std::vector<std::pair<uint64_t, FailureRecord>>
listFailures(const std::string &Directory);

/// Byte-stable listing for the CLI: one `<hex key> <kind> <attempts>
/// <detail>` line per record.
std::string
formatFailures(const std::vector<std::pair<uint64_t, FailureRecord>> &Records);

} // namespace store
} // namespace clgen

#endif // CLGEN_STORE_FAILURELEDGER_H

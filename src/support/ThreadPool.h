//===- support/ThreadPool.h - Work-stealing thread pool ----------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool with per-worker work-stealing task deques,
/// built for the parallel synthesis engine. Design points:
///
///  - Each worker owns a deque; it pushes/pops at the back (LIFO, cache
///    friendly) and steals from the front of a victim's deque (FIFO, takes
///    the oldest — largest — chunks first).
///  - `parallelFor` hands every task its worker index, so callers can keep
///    per-worker state (model clones, scratch buffers) without locking.
///  - Exceptions thrown by tasks are captured and rethrown on the calling
///    thread once the batch has drained, so failures propagate instead of
///    terminating.
///  - Determinism is the caller's job: the pool makes no ordering promises
///    beyond "every task runs exactly once"; callers key results by task
///    index and consume them in index order.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_SUPPORT_THREADPOOL_H
#define CLGEN_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace clgen {

/// Fixed pool of worker threads with work stealing.
class ThreadPool {
public:
  /// A task receives the index (0-based) of the worker executing it.
  using Task = std::function<void(size_t Worker)>;

  /// Creates \p Workers threads. 0 means hardware concurrency (at least
  /// 1).
  explicit ThreadPool(size_t Workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  size_t workerCount() const { return Queues.size(); }

  /// Runs \p Fn(Worker, Index) for every Index in [Begin, End), fanned
  /// out across the pool, and blocks until all iterations finished. The
  /// first exception thrown by any iteration is rethrown here after the
  /// batch drains. Runs inline when the pool has one worker or the range
  /// has one element (no queueing overhead).
  void parallelFor(size_t Begin, size_t End,
                   const std::function<void(size_t Worker, size_t Index)> &Fn);

  /// Clamps a requested worker count: 0 -> hardware concurrency,
  /// otherwise the request itself (callers cap further as needed).
  static size_t resolveWorkerCount(size_t Requested);

private:
  struct WorkerQueue {
    std::mutex Mutex;
    std::deque<Task> Deque;
  };

  /// One queue per worker; tasks are distributed round-robin by submit
  /// order and rebalanced by stealing.
  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Threads;

  std::mutex StateMutex;
  std::condition_variable WorkAvailable;
  std::condition_variable BatchDone;
  size_t PendingTasks = 0;
  /// Bumped on every submission; workers re-scan the queues whenever it
  /// moves past the value they saw before going idle (prevents lost
  /// wakeups between an empty scan and the wait).
  uint64_t SubmitEpoch = 0;
  bool ShuttingDown = false;
  std::exception_ptr FirstError;

  void workerLoop(size_t Worker);
  bool popOrSteal(size_t Worker, Task &Out);
  void runTask(size_t Worker, Task &T);
};

} // namespace clgen

#endif // CLGEN_SUPPORT_THREADPOOL_H

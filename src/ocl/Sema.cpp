//===- ocl/Sema.cpp - Semantic analysis for OpenCL C -------------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ocl/Sema.h"

#include "ocl/Builtins.h"
#include "ocl/Casting.h"
#include "support/StringUtils.h"

#include <unordered_map>
#include <unordered_set>

using namespace clgen;
using namespace clgen::ocl;

int ocl::conversionRank(Scalar S) {
  switch (S) {
  case Scalar::Bool: return 0;
  case Scalar::Char: return 1;
  case Scalar::UChar: return 2;
  case Scalar::Short: return 3;
  case Scalar::UShort: return 4;
  case Scalar::Int: return 5;
  case Scalar::UInt: return 6;
  case Scalar::Long: return 7;
  case Scalar::ULong: return 8;
  case Scalar::Half: return 9;
  case Scalar::Float: return 10;
  case Scalar::Double: return 11;
  case Scalar::Void: return -1;
  }
  return -1;
}

QualType ocl::unifyArithmetic(const QualType &A, const QualType &B) {
  if (!A.isArithmetic() || !B.isArithmetic())
    return QualType();
  // Vector widths must match, or one side is scalar and broadcasts.
  uint8_t Width;
  if (A.VecWidth == B.VecWidth)
    Width = A.VecWidth;
  else if (A.VecWidth == 1)
    Width = B.VecWidth;
  else if (B.VecWidth == 1)
    Width = A.VecWidth;
  else
    return QualType();
  Scalar S =
      conversionRank(A.S) >= conversionRank(B.S) ? A.S : B.S;
  return QualType(S, Width);
}

namespace {

struct VarInfo {
  QualType Ty;
  bool IsArray = false;
};

class Sema {
public:
  explicit Sema(Program &P) : P(P) {}

  Status run();

private:
  Program &P;
  bool Failed = false;
  std::string Diagnostic;
  std::vector<std::unordered_map<std::string, VarInfo>> Scopes;
  std::unordered_map<std::string, FunctionDecl *> Functions;
  FunctionDecl *CurrentFunction = nullptr;
  /// Call graph edges for recursion detection.
  std::unordered_map<std::string, std::unordered_set<std::string>> CallGraph;

  bool error(int Line, const std::string &Message) {
    if (!Failed) {
      Failed = true;
      Diagnostic = formatString("line %d: %s", Line, Message.c_str());
    }
    return false;
  }

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  bool declare(int Line, const std::string &Name, VarInfo Info) {
    assert(!Scopes.empty());
    auto &Scope = Scopes.back();
    if (Scope.count(Name))
      return error(Line, "redefinition of '" + Name + "'");
    Scope.emplace(Name, Info);
    return true;
  }

  const VarInfo *lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }

  /// Is \p E something assignable / addressable?
  static bool isLValue(const Expr *E) {
    if (isa<VarRefExpr>(E) || isa<IndexExpr>(E))
      return true;
    if (const auto *ME = dyn_cast<MemberExpr>(E))
      return isLValue(ME->Base.get());
    if (const auto *UE = dyn_cast<UnaryExpr>(E))
      return UE->Op == UnaryOp::Deref;
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  bool checkExpr(Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::IntLiteral: {
      auto *IL = cast<IntLiteralExpr>(E);
      E->Ty = QualType(IL->IsUnsigned ? Scalar::UInt : Scalar::Int);
      // Large literals are long.
      if (IL->Value > 0x7FFFFFFFll || IL->Value < -0x80000000ll)
        E->Ty = QualType(IL->IsUnsigned ? Scalar::ULong : Scalar::Long);
      return true;
    }
    case Expr::Kind::FloatLiteral: {
      auto *FL = cast<FloatLiteralExpr>(E);
      E->Ty = QualType(FL->IsDoublePrecision ? Scalar::Double : Scalar::Float);
      return true;
    }
    case Expr::Kind::VarRef:
      return checkVarRef(cast<VarRefExpr>(E));
    case Expr::Kind::Binary:
      return checkBinary(cast<BinaryExpr>(E));
    case Expr::Kind::Unary:
      return checkUnary(cast<UnaryExpr>(E));
    case Expr::Kind::Call:
      return checkCall(cast<CallExpr>(E));
    case Expr::Kind::Index:
      return checkIndex(cast<IndexExpr>(E));
    case Expr::Kind::Member:
      return checkMember(cast<MemberExpr>(E));
    case Expr::Kind::Cast: {
      auto *CE = cast<CastExpr>(E);
      if (!checkExpr(CE->Operand.get()))
        return false;
      if (CE->Target.Pointer)
        return error(E->line(), "pointer casts are not supported");
      if (!CE->Operand->Ty.isArithmetic())
        return error(E->line(), "cast of non-arithmetic value");
      if (CE->Operand->Ty.VecWidth != CE->Target.VecWidth &&
          CE->Operand->Ty.VecWidth != 1)
        return error(E->line(), "cast changes vector width");
      E->Ty = CE->Target;
      return true;
    }
    case Expr::Kind::VectorLiteral: {
      auto *VL = cast<VectorLiteralExpr>(E);
      size_t Want = VL->Target.VecWidth;
      if (VL->Elements.size() != 1 && VL->Elements.size() != Want)
        return error(E->line(),
                     formatString("vector literal needs 1 or %zu elements, "
                                  "got %zu",
                                  Want, VL->Elements.size()));
      for (auto &Elem : VL->Elements) {
        if (!checkExpr(Elem.get()))
          return false;
        if (!Elem->Ty.isArithmetic() || Elem->Ty.isVector())
          return error(Elem->line(),
                       "vector literal elements must be scalars");
      }
      E->Ty = VL->Target;
      return true;
    }
    case Expr::Kind::Conditional: {
      auto *CE = cast<ConditionalExpr>(E);
      if (!checkExpr(CE->Cond.get()) || !checkExpr(CE->TrueExpr.get()) ||
          !checkExpr(CE->FalseExpr.get()))
        return false;
      if (!CE->Cond->Ty.isArithmetic())
        return error(E->line(), "condition must be arithmetic");
      QualType Unified =
          unifyArithmetic(CE->TrueExpr->Ty, CE->FalseExpr->Ty);
      if (Unified.isVoid())
        return error(E->line(), "incompatible conditional operand types");
      E->Ty = Unified;
      return true;
    }
    }
    return error(E->line(), "unknown expression kind");
  }

  bool checkVarRef(VarRefExpr *E) {
    if (const VarInfo *Info = lookup(E->Name)) {
      E->Ty = Info->Ty;
      return true;
    }
    if (auto Const = lookupBuiltinConstant(E->Name)) {
      E->Ty = Const->Ty;
      return true;
    }
    return error(E->line(), "use of undeclared identifier '" + E->Name + "'");
  }

  bool checkBinary(BinaryExpr *E) {
    if (!checkExpr(E->Lhs.get()) || !checkExpr(E->Rhs.get()))
      return false;
    const QualType &L = E->Lhs->Ty;
    const QualType &R = E->Rhs->Ty;

    if (isAssignmentOp(E->Op)) {
      if (!isLValue(E->Lhs.get()))
        return error(E->line(), "assignment to non-lvalue");
      if (L.Pointer) {
        // Pointer assignment: p = q, or p += n.
        if (E->Op == BinaryOp::Assign) {
          if (!R.Pointer)
            return error(E->line(), "assigning non-pointer to pointer");
        } else if (E->Op == BinaryOp::AddAssign ||
                   E->Op == BinaryOp::SubAssign) {
          if (!R.isInteger())
            return error(E->line(), "pointer arithmetic needs an integer");
        } else {
          return error(E->line(), "invalid pointer compound assignment");
        }
        E->Ty = L;
        return true;
      }
      if (!L.isArithmetic() || !R.isArithmetic())
        return error(E->line(), "invalid assignment operand types");
      if (R.VecWidth != L.VecWidth && R.VecWidth != 1)
        return error(E->line(), "vector width mismatch in assignment");
      E->Ty = L;
      return true;
    }

    // Pointer arithmetic and comparison.
    if (L.Pointer || R.Pointer) {
      if ((E->Op == BinaryOp::Add || E->Op == BinaryOp::Sub) &&
          L.Pointer && R.isInteger()) {
        E->Ty = L;
        return true;
      }
      if (E->Op == BinaryOp::Add && R.Pointer && L.isInteger()) {
        E->Ty = R;
        return true;
      }
      if (isComparisonOp(E->Op) && L.Pointer && R.Pointer) {
        E->Ty = QualType(Scalar::Int);
        return true;
      }
      if (E->Op == BinaryOp::Sub && L.Pointer && R.Pointer) {
        E->Ty = QualType(Scalar::Long);
        return true;
      }
      return error(E->line(), "invalid pointer operation");
    }

    if (!L.isArithmetic() || !R.isArithmetic())
      return error(E->line(), "invalid binary operand types");

    QualType Unified = unifyArithmetic(L, R);
    if (Unified.isVoid())
      return error(E->line(), "incompatible vector widths in binary operator");

    if (isComparisonOp(E->Op) || E->Op == BinaryOp::LAnd ||
        E->Op == BinaryOp::LOr) {
      // Comparisons yield int (vector comparisons yield int vectors).
      E->Ty = QualType(Scalar::Int, Unified.VecWidth);
      return true;
    }

    // Integer-only operators.
    if (E->Op == BinaryOp::Rem || E->Op == BinaryOp::Shl ||
        E->Op == BinaryOp::Shr || E->Op == BinaryOp::BitAnd ||
        E->Op == BinaryOp::BitOr || E->Op == BinaryOp::BitXor) {
      if (!L.isInteger() || !R.isInteger())
        return error(E->line(), "bitwise operator on non-integer operands");
    }
    E->Ty = Unified;
    return true;
  }

  bool checkUnary(UnaryExpr *E) {
    if (!checkExpr(E->Operand.get()))
      return false;
    const QualType &T = E->Operand->Ty;
    switch (E->Op) {
    case UnaryOp::Plus:
    case UnaryOp::Neg:
      if (!T.isArithmetic())
        return error(E->line(), "unary +/- on non-arithmetic operand");
      E->Ty = T;
      return true;
    case UnaryOp::BitNot:
      if (!T.isInteger())
        return error(E->line(), "'~' on non-integer operand");
      E->Ty = T;
      return true;
    case UnaryOp::LNot:
      if (!T.isArithmetic())
        return error(E->line(), "'!' on non-arithmetic operand");
      E->Ty = QualType(Scalar::Int, T.VecWidth);
      return true;
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec:
      if (!isLValue(E->Operand.get()))
        return error(E->line(), "increment of non-lvalue");
      if (T.Pointer) {
        E->Ty = T;
        return true;
      }
      if (!T.isArithmetic() || T.isVector())
        return error(E->line(), "increment needs a scalar operand");
      E->Ty = T;
      return true;
    case UnaryOp::Deref:
      if (!T.Pointer)
        return error(E->line(), "dereference of non-pointer");
      E->Ty = T.pointee();
      return true;
    case UnaryOp::AddrOf: {
      if (!isLValue(E->Operand.get()))
        return error(E->line(), "address of non-lvalue");
      QualType PtrTy = T;
      PtrTy.Pointer = true;
      // Address space: if taking the address of a global buffer element,
      // the result points into that buffer's space.
      if (const auto *IE = dyn_cast<IndexExpr>(E->Operand.get()))
        PtrTy.AS = IE->Base->Ty.AS;
      E->Ty = PtrTy;
      return true;
    }
    }
    return error(E->line(), "unknown unary operator");
  }

  bool checkIndex(IndexExpr *E) {
    if (!checkExpr(E->Base.get()) || !checkExpr(E->Index.get()))
      return false;
    if (!E->Base->Ty.Pointer)
      return error(E->line(), "subscript of non-pointer value");
    if (!E->Index->Ty.isInteger() || E->Index->Ty.isVector())
      return error(E->line(), "array index must be a scalar integer");
    QualType Elem = E->Base->Ty.pointee();
    Elem.AS = E->Base->Ty.AS;
    E->Ty = Elem;
    return true;
  }

  bool checkMember(MemberExpr *E) {
    if (!checkExpr(E->Base.get()))
      return false;
    const QualType &T = E->Base->Ty;
    if (!T.isVector())
      return error(E->line(),
                   "member access on non-vector value (user-defined types "
                   "are not supported)");
    if (!resolveSwizzle(E, T))
      return error(E->line(),
                   "invalid vector component '" + E->Component + "'");
    uint8_t Width = static_cast<uint8_t>(E->Lanes.size());
    E->Ty = QualType(T.S, Width == 1 ? 1 : Width);
    return true;
  }

  /// Fills E->Lanes from the component spelling; returns false when the
  /// spelling is invalid for a vector of type \p T.
  bool resolveSwizzle(MemberExpr *E, const QualType &T) {
    const std::string &C = E->Component;
    E->Lanes.clear();
    int W = T.VecWidth;

    auto XyzwLane = [&](char Ch) -> int {
      switch (Ch) {
      case 'x': return 0;
      case 'y': return 1;
      case 'z': return 2;
      case 'w': return 3;
      default: return -1;
      }
    };

    // lo / hi / even / odd halves.
    if (C == "lo" || C == "hi" || C == "even" || C == "odd") {
      int Half = W / 2;
      if (Half < 1)
        return false;
      for (int I = 0; I < Half; ++I) {
        int Lane;
        if (C == "lo")
          Lane = I;
        else if (C == "hi")
          Lane = Half + I;
        else if (C == "even")
          Lane = 2 * I;
        else
          Lane = 2 * I + 1;
        E->Lanes.push_back(static_cast<uint8_t>(Lane));
      }
      return true;
    }

    // sN / sNM... hex-indexed components.
    if ((C[0] == 's' || C[0] == 'S') && C.size() >= 2) {
      for (size_t I = 1; I < C.size(); ++I) {
        char Ch = C[I];
        int Lane;
        if (Ch >= '0' && Ch <= '9')
          Lane = Ch - '0';
        else if (Ch >= 'a' && Ch <= 'f')
          Lane = 10 + (Ch - 'a');
        else if (Ch >= 'A' && Ch <= 'F')
          Lane = 10 + (Ch - 'A');
        else
          return false;
        if (Lane >= W)
          return false;
        E->Lanes.push_back(static_cast<uint8_t>(Lane));
      }
      return E->Lanes.size() == 1 || E->Lanes.size() == 2 ||
             E->Lanes.size() == 3 || E->Lanes.size() == 4 ||
             E->Lanes.size() == 8 || E->Lanes.size() == 16;
    }

    // xyzw swizzles.
    for (char Ch : C) {
      int Lane = XyzwLane(Ch);
      if (Lane < 0 || Lane >= W)
        return false;
      E->Lanes.push_back(static_cast<uint8_t>(Lane));
    }
    return E->Lanes.size() >= 1 && E->Lanes.size() <= 4;
  }

  bool checkCall(CallExpr *E) {
    for (auto &Arg : E->Args)
      if (!checkExpr(Arg.get()))
        return false;

    if (auto Builtin = lookupBuiltin(E->Callee)) {
      E->IsBuiltin = true;
      int Arity = static_cast<int>(E->Args.size());
      if (Arity < Builtin->MinArity || Arity > Builtin->MaxArity)
        return error(E->line(), formatString("wrong number of arguments to "
                                             "'%s'",
                                             E->Callee.c_str()));
      return typeBuiltinCall(E, *Builtin);
    }

    auto It = Functions.find(E->Callee);
    if (It == Functions.end())
      return error(E->line(),
                   "call to undeclared function '" + E->Callee + "'");
    FunctionDecl *Callee = It->second;
    if (Callee->IsKernel)
      return error(E->line(), "kernels cannot be called from device code");
    if (Callee->Params.size() != E->Args.size())
      return error(E->line(), formatString("'%s' expects %zu arguments, got "
                                           "%zu",
                                           E->Callee.c_str(),
                                           Callee->Params.size(),
                                           E->Args.size()));
    for (size_t I = 0; I < E->Args.size(); ++I) {
      const QualType &Want = Callee->Params[I].Ty;
      const QualType &Got = E->Args[I]->Ty;
      if (Want.Pointer != Got.Pointer)
        return error(E->Args[I]->line(), "pointer/value argument mismatch");
      if (!Want.Pointer && Want.isArithmetic() &&
          unifyArithmetic(Want, Got).isVoid())
        return error(E->Args[I]->line(), "incompatible argument type");
    }
    if (CurrentFunction)
      CallGraph[CurrentFunction->Name].insert(Callee->Name);
    E->Ty = Callee->ReturnTy;
    return true;
  }

  bool typeBuiltinCall(CallExpr *E, const BuiltinInfo &Info) {
    auto ArgTy = [&](size_t I) -> const QualType & { return E->Args[I]->Ty; };

    switch (Info.Op) {
    case BuiltinOp::GetGlobalId:
    case BuiltinOp::GetLocalId:
    case BuiltinOp::GetGroupId:
    case BuiltinOp::GetGlobalSize:
    case BuiltinOp::GetLocalSize:
    case BuiltinOp::GetNumGroups:
      if (!ArgTy(0).isInteger())
        return error(E->line(), "work-item query needs an integer dimension");
      E->Ty = QualType(Scalar::UInt);
      return true;
    case BuiltinOp::GetWorkDim:
      E->Ty = QualType(Scalar::UInt);
      return true;

    case BuiltinOp::Barrier:
    case BuiltinOp::MemFence:
      E->Ty = QualType(Scalar::Void);
      return true;

    // Unary float math: integers promote to float.
    case BuiltinOp::Sin: case BuiltinOp::Cos: case BuiltinOp::Tan:
    case BuiltinOp::Asin: case BuiltinOp::Acos: case BuiltinOp::Atan:
    case BuiltinOp::Sinh: case BuiltinOp::Cosh: case BuiltinOp::Tanh:
    case BuiltinOp::Exp: case BuiltinOp::Exp2: case BuiltinOp::Log:
    case BuiltinOp::Log2: case BuiltinOp::Log10: case BuiltinOp::Sqrt:
    case BuiltinOp::Rsqrt: case BuiltinOp::Cbrt: case BuiltinOp::Fabs:
    case BuiltinOp::Floor: case BuiltinOp::Ceil: case BuiltinOp::Round:
    case BuiltinOp::Trunc: case BuiltinOp::Sign: {
      if (!ArgTy(0).isArithmetic())
        return error(E->line(), "math builtin on non-arithmetic operand");
      Scalar S = ArgTy(0).S == Scalar::Double ? Scalar::Double : Scalar::Float;
      E->Ty = QualType(S, ArgTy(0).VecWidth);
      return true;
    }

    case BuiltinOp::Pow: case BuiltinOp::Fmod: case BuiltinOp::Atan2:
    case BuiltinOp::Fmin: case BuiltinOp::Fmax: case BuiltinOp::Hypot:
    case BuiltinOp::Step: case BuiltinOp::Fdim: {
      QualType U = unifyArithmetic(ArgTy(0), ArgTy(1));
      if (U.isVoid())
        return error(E->line(), "incompatible math builtin operands");
      Scalar S = U.S == Scalar::Double ? Scalar::Double : Scalar::Float;
      E->Ty = QualType(S, U.VecWidth);
      return true;
    }

    case BuiltinOp::Clamp: case BuiltinOp::Mix: case BuiltinOp::Fma:
    case BuiltinOp::Mad: case BuiltinOp::Smoothstep: {
      QualType U = unifyArithmetic(unifyArithmetic(ArgTy(0), ArgTy(1)),
                                   ArgTy(2));
      if (U.isVoid())
        return error(E->line(), "incompatible math builtin operands");
      E->Ty = U;
      return true;
    }

    case BuiltinOp::Abs:
      if (!ArgTy(0).isArithmetic())
        return error(E->line(), "abs on non-arithmetic operand");
      E->Ty = ArgTy(0);
      return true;
    case BuiltinOp::Min: case BuiltinOp::Max:
    case BuiltinOp::Mul24: case BuiltinOp::Rotate: {
      QualType U = unifyArithmetic(ArgTy(0), ArgTy(1));
      if (U.isVoid())
        return error(E->line(), "incompatible builtin operands");
      E->Ty = U;
      return true;
    }
    case BuiltinOp::Mad24: {
      QualType U = unifyArithmetic(unifyArithmetic(ArgTy(0), ArgTy(1)),
                                   ArgTy(2));
      if (U.isVoid())
        return error(E->line(), "incompatible builtin operands");
      E->Ty = U;
      return true;
    }

    case BuiltinOp::Dot: {
      QualType U = unifyArithmetic(ArgTy(0), ArgTy(1));
      if (U.isVoid())
        return error(E->line(), "incompatible dot operands");
      E->Ty = QualType(U.S == Scalar::Double ? Scalar::Double : Scalar::Float);
      return true;
    }
    case BuiltinOp::Length:
      if (!ArgTy(0).isArithmetic())
        return error(E->line(), "length on non-arithmetic operand");
      E->Ty = QualType(Scalar::Float);
      return true;
    case BuiltinOp::Distance: {
      QualType U = unifyArithmetic(ArgTy(0), ArgTy(1));
      if (U.isVoid())
        return error(E->line(), "incompatible distance operands");
      E->Ty = QualType(Scalar::Float);
      return true;
    }
    case BuiltinOp::Normalize:
      if (!ArgTy(0).isArithmetic())
        return error(E->line(), "normalize on non-arithmetic operand");
      E->Ty = QualType(Scalar::Float, ArgTy(0).VecWidth);
      return true;
    case BuiltinOp::Cross: {
      if (ArgTy(0).VecWidth != 3 && ArgTy(0).VecWidth != 4)
        return error(E->line(), "cross requires 3- or 4-vectors");
      QualType U = unifyArithmetic(ArgTy(0), ArgTy(1));
      if (U.isVoid())
        return error(E->line(), "incompatible cross operands");
      E->Ty = QualType(Scalar::Float, ArgTy(0).VecWidth);
      return true;
    }

    case BuiltinOp::Select: {
      QualType U = unifyArithmetic(ArgTy(0), ArgTy(1));
      if (U.isVoid() || !ArgTy(2).isArithmetic())
        return error(E->line(), "incompatible select operands");
      E->Ty = U;
      return true;
    }
    case BuiltinOp::IsNan: case BuiltinOp::IsInf:
    case BuiltinOp::Any: case BuiltinOp::All:
      if (!ArgTy(0).isArithmetic())
        return error(E->line(), "relational builtin on non-arithmetic value");
      E->Ty = QualType(Scalar::Int);
      return true;

    case BuiltinOp::Convert: {
      const QualType &Target = Info.ConvertTarget;
      if (!ArgTy(0).isArithmetic())
        return error(E->line(), "convert on non-arithmetic value");
      if (ArgTy(0).VecWidth != Target.VecWidth && ArgTy(0).VecWidth != 1)
        return error(E->line(), "convert changes vector width");
      E->Ty = Target;
      return true;
    }

    case BuiltinOp::VLoad: {
      if (!ArgTy(0).isInteger())
        return error(E->line(), "vload offset must be an integer");
      if (!ArgTy(1).Pointer || ArgTy(1).pointee().isVector())
        return error(E->line(), "vload needs a scalar-element pointer");
      E->Ty = QualType(ArgTy(1).S, static_cast<uint8_t>(Info.VectorWidth));
      return true;
    }
    case BuiltinOp::VStore: {
      if (ArgTy(0).VecWidth != Info.VectorWidth)
        return error(E->line(), "vstore value width mismatch");
      if (!ArgTy(1).isInteger())
        return error(E->line(), "vstore offset must be an integer");
      if (!ArgTy(2).Pointer || ArgTy(2).pointee().isVector())
        return error(E->line(), "vstore needs a scalar-element pointer");
      E->Ty = QualType(Scalar::Void);
      return true;
    }

    case BuiltinOp::AtomicAdd: case BuiltinOp::AtomicSub:
    case BuiltinOp::AtomicMin: case BuiltinOp::AtomicMax:
    case BuiltinOp::AtomicXchg: {
      if (!ArgTy(0).Pointer || !ArgTy(0).pointee().isInteger())
        return error(E->line(), "atomic needs an integer pointer");
      if (!ArgTy(1).isInteger())
        return error(E->line(), "atomic operand must be an integer");
      E->Ty = ArgTy(0).pointee();
      return true;
    }
    case BuiltinOp::AtomicInc: case BuiltinOp::AtomicDec: {
      if (!ArgTy(0).Pointer || !ArgTy(0).pointee().isInteger())
        return error(E->line(), "atomic needs an integer pointer");
      E->Ty = ArgTy(0).pointee();
      return true;
    }
    }
    return error(E->line(), "unhandled builtin");
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  bool checkStmt(Stmt *S) {
    switch (S->kind()) {
    case Stmt::Kind::Compound: {
      auto *CS = cast<CompoundStmt>(S);
      pushScope();
      for (auto &Child : CS->Body)
        if (!checkStmt(Child.get())) {
          popScope();
          return false;
        }
      popScope();
      return true;
    }
    case Stmt::Kind::Decl:
      return checkDecl(cast<DeclStmt>(S));
    case Stmt::Kind::Expr:
      return checkExpr(cast<ExprStmt>(S)->E.get());
    case Stmt::Kind::If: {
      auto *IS = cast<IfStmt>(S);
      if (!checkExpr(IS->Cond.get()))
        return false;
      if (!IS->Cond->Ty.isArithmetic() && !IS->Cond->Ty.Pointer)
        return error(S->line(), "if condition must be arithmetic");
      if (!checkStmt(IS->Then.get()))
        return false;
      if (IS->Else && !checkStmt(IS->Else.get()))
        return false;
      return true;
    }
    case Stmt::Kind::For: {
      auto *FS = cast<ForStmt>(S);
      pushScope();
      bool Ok = true;
      if (FS->Init)
        Ok = checkStmt(FS->Init.get());
      if (Ok && FS->Cond) {
        Ok = checkExpr(FS->Cond.get());
        if (Ok && !FS->Cond->Ty.isArithmetic())
          Ok = error(S->line(), "for condition must be arithmetic");
      }
      if (Ok && FS->Step)
        Ok = checkExpr(FS->Step.get());
      if (Ok)
        Ok = checkStmt(FS->Body.get());
      popScope();
      return Ok;
    }
    case Stmt::Kind::While: {
      auto *WS = cast<WhileStmt>(S);
      if (!checkExpr(WS->Cond.get()))
        return false;
      if (!WS->Cond->Ty.isArithmetic())
        return error(S->line(), "while condition must be arithmetic");
      return checkStmt(WS->Body.get());
    }
    case Stmt::Kind::Do: {
      auto *DS = cast<DoStmt>(S);
      if (!checkStmt(DS->Body.get()))
        return false;
      if (!checkExpr(DS->Cond.get()))
        return false;
      if (!DS->Cond->Ty.isArithmetic())
        return error(S->line(), "do-while condition must be arithmetic");
      return true;
    }
    case Stmt::Kind::Return: {
      auto *RS = cast<ReturnStmt>(S);
      assert(CurrentFunction && "return outside function");
      if (RS->Value) {
        if (!checkExpr(RS->Value.get()))
          return false;
        if (CurrentFunction->ReturnTy.isVoid())
          return error(S->line(), "void function returns a value");
        if (!RS->Value->Ty.isArithmetic())
          return error(S->line(), "unsupported return value type");
      } else if (!CurrentFunction->ReturnTy.isVoid()) {
        return error(S->line(), "non-void function returns nothing");
      }
      return true;
    }
    case Stmt::Kind::Break:
    case Stmt::Kind::Continue:
    case Stmt::Kind::Empty:
      return true;
    }
    return error(S->line(), "unknown statement kind");
  }

  bool checkDecl(DeclStmt *D) {
    QualType Ty = D->Ty;
    if (D->ArraySize > 0) {
      // Arrays decay to pointers of the declared address space.
      if (Ty.Pointer)
        return error(D->line(), "arrays of pointers are not supported");
      Ty.Pointer = true;
      if (Ty.AS == AddrSpace::Constant)
        return error(D->line(), "local __constant arrays are not supported");
    } else if (Ty.AS == AddrSpace::Local) {
      // A non-array __local scalar is legal OpenCL; model it as a
      // single-element array.
      if (!Ty.Pointer) {
        D->ArraySize = 1;
        Ty.Pointer = true;
      }
    }

    if (D->Init) {
      if (D->ArraySize > 0)
        return error(D->line(), "array declarations cannot have initialisers");
      if (!checkExpr(D->Init.get()))
        return false;
      if (Ty.Pointer) {
        if (!D->Init->Ty.Pointer)
          return error(D->line(), "initialising pointer from non-pointer");
      } else if (!D->Init->Ty.isArithmetic()) {
        return error(D->line(), "unsupported initialiser type");
      } else if (D->Init->Ty.VecWidth != Ty.VecWidth &&
                 D->Init->Ty.VecWidth != 1) {
        return error(D->line(), "vector width mismatch in initialiser");
      }
    }

    VarInfo Info;
    Info.Ty = Ty;
    Info.IsArray = D->ArraySize > 0;
    return declare(D->line(), D->Name, Info);
  }

  //===--------------------------------------------------------------------===//
  // Functions / program
  //===--------------------------------------------------------------------===//

  bool checkFunction(FunctionDecl *F) {
    CurrentFunction = F;
    pushScope();
    for (const ParamDecl &Param : F->Params) {
      if (Param.Name.empty()) {
        popScope();
        return error(F->Line, "unnamed parameter in '" + F->Name + "'");
      }
      if (F->IsKernel && Param.Ty.isVector() && Param.Ty.Pointer &&
          Param.Ty.VecWidth > 16) {
        popScope();
        return error(F->Line, "unsupported parameter type");
      }
      VarInfo Info;
      Info.Ty = Param.Ty;
      if (!declare(F->Line, Param.Name, Info)) {
        popScope();
        return false;
      }
    }
    bool Ok = checkStmt(F->Body.get());
    popScope();
    CurrentFunction = nullptr;
    return Ok;
  }

  /// DFS cycle check over the user-function call graph.
  bool hasRecursion() {
    enum class Mark { White, Grey, Black };
    std::unordered_map<std::string, Mark> Marks;
    for (auto &F : P.Functions)
      Marks[F->Name] = Mark::White;

    // Iterative DFS with an explicit stack.
    for (auto &F : P.Functions) {
      if (Marks[F->Name] != Mark::White)
        continue;
      std::vector<std::pair<std::string, bool>> Stack;
      Stack.push_back({F->Name, false});
      while (!Stack.empty()) {
        auto [Name, Done] = Stack.back();
        Stack.pop_back();
        if (Done) {
          Marks[Name] = Mark::Black;
          continue;
        }
        if (Marks[Name] == Mark::Grey)
          continue;
        Marks[Name] = Mark::Grey;
        Stack.push_back({Name, true});
        for (const std::string &Callee : CallGraph[Name]) {
          if (Marks[Callee] == Mark::Grey)
            return true;
          if (Marks[Callee] == Mark::White)
            Stack.push_back({Callee, false});
        }
      }
    }
    return false;
  }

public:
  Status runImpl() {
    // Register functions first so forward calls resolve.
    for (auto &F : P.Functions) {
      if (Functions.count(F->Name))
        return Status::error(formatString("line %d: redefinition of "
                                          "function '%s'",
                                          F->Line, F->Name.c_str()));
      Functions[F->Name] = F.get();
    }

    // File-scope constants live in the outermost scope.
    pushScope();
    for (auto &GC : P.Constants) {
      if (GC.Init && !checkExpr(GC.Init.get()))
        return Status::error(Diagnostic);
      VarInfo Info;
      Info.Ty = GC.Ty;
      if (!declare(0, GC.Name, Info))
        return Status::error(Diagnostic);
    }

    for (auto &F : P.Functions) {
      if (!checkFunction(F.get())) {
        popScope();
        return Status::error(Diagnostic);
      }
    }
    popScope();

    if (hasRecursion())
      return Status::error("recursive functions are not supported");
    return Status();
  }
};

} // namespace

Status Sema::run() { return runImpl(); }

Status ocl::analyze(Program &P) {
  Sema S(P);
  return S.run();
}

//===- examples/benchmark_runner.cpp - Host driver walk-through ---------------===//
//
// Exercises the section 5 host driver directly: payload generation, the
// four-execution dynamic checker, instrumented execution and per-device
// runtime estimation — including what happens to kernels that do NOT
// perform useful work.
//
// With --cache-dir DIR it instead runs the persistent-store pipeline:
// ClgenPipeline::trainOrLoad warm-starts the model from DIR, synthesis
// runs as usual (bit-identical either way), and driver measurements go
// through the content-addressed ResultCache — rerunning the command
// with a populated DIR skips training and every kernel execution.
//
//   ./example_benchmark_runner --cache-dir /tmp/clgen-cache [--kernels N]
//
// With --pipeline the synthesis→measurement phase barrier is replaced
// by the streaming engine (core::synthesizeAndMeasure): accepted
// kernels flow through a bounded channel into measurement workers while
// synthesis keeps sampling, and the report includes overlap timings
// (producer wall time vs the measurement drain tail). Output is
// bit-identical to the phased run. Combines with --cache-dir, in which
// case cache hits are resolved at enqueue time and never occupy a
// measurement slot — and the kernel set itself persists: a warm rerun
// loads the archived kernels instead of sampling (zero sample
// attempts), byte-identical to the cold run.
//
//   ./example_benchmark_runner --pipeline [--cache-dir DIR] [--kernels N]
//       [--measure-workers N] [--queue N]
//
// With --backend lstm the pipeline trains the paper's LSTM instead of
// the n-gram model, through the data-parallel training engine:
// --train-workers sets the thread count (bit-identical weights for any
// value) and --train-lanes the data-parallel batch width (a semantic
// knob — it changes the training trajectory and the artifact
// fingerprint). Run --help for the full flag reference.
//
//===----------------------------------------------------------------------===//

#include "clgen/Pipeline.h"
#include "githubsim/GithubSim.h"
#include "predict/Experiment.h"
#include "runtime/DynamicChecker.h"
#include "runtime/HostDriver.h"
#include "store/Archive.h"
#include "store/FailureLedger.h"
#include "store/ResultCache.h"
#include "support/FailPoint.h"
#include "support/Metrics.h"
#include "support/Trace.h"
#include "support/Trap.h"
#include "vm/Compiler.h"
#include "vm/Profile.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

using namespace clgen;

namespace {

/// Phase stopwatch: wall time in ms for the console report, mirrored
/// onto the metrics registry as a volatile gauge so --metrics-out
/// carries the same phase timings the console prints. One definition
/// replaces the per-phase steady_clock arithmetic the two pipeline
/// modes used to duplicate.
class PhaseTimer {
public:
  explicit PhaseTimer(const char *GaugeName)
      : Name(GaugeName), T0(support::telemetryNowNs()) {}

  /// Elapsed ms since construction; records the gauge (microseconds,
  /// integer) on each call.
  double stopMs() {
    uint64_t Us = (support::telemetryNowNs() - T0) / 1000;
    support::MetricsRegistry::gauge(Name).set(static_cast<int64_t>(Us));
    return static_cast<double>(Us) / 1e3;
  }

private:
  const char *Name;
  uint64_t T0;
};

/// Everything the flag parser collects; both pipeline modes consume it.
struct RunnerConfig {
  std::string CacheDir;
  size_t TargetKernels = 40;
  bool Pipeline = false;
  unsigned MeasureWorkers = 0; // Hardware concurrency.
  size_t QueueCapacity = 0;    // Auto.
  bool UseLstm = false;
  unsigned TrainWorkers = 0;   // Hardware concurrency.
  int TrainLanes = 8;          // LSTM data-parallel batch width.
  size_t FileCount = 400;      // githubsim corpus size.
  /// VM dispatch strategy. Pure speed knob: every mode produces
  /// bit-identical measurements, so it is excluded from cache keys.
  vm::DispatchMode Dispatch = vm::DispatchMode::Auto;
  // Fault tolerance.
  bool Refill = false;          // Excise failures + draw replacements.
  uint64_t WatchdogMs = 0;      // Per-launch wall-clock watchdog.
  unsigned Retries = 2;         // Transient-failure retry budget.
  double InjectProb = -1.0;     // Failpoint probability; <0 = disarmed.
  // Telemetry.
  std::string TraceOut;         // Chrome trace JSON destination.
  std::string MetricsOut;       // Metrics text exposition destination.
  bool ProfileVm = false;       // Print the opcode/pair profile report.
  /// Aggregation target for --profile-vm, owned by main and wired into
  /// both modes' DriverOptions.
  vm::SharedOpcodeProfile *Profile = nullptr;
  // Predictive-modeling experiment (--experiment).
  bool Experiment = false;
  size_t Folds = 0;            // 0 = golden default.
  unsigned PredictWorkers = 0; // Meaningful only when the flag was set.
  std::string ReportOut;       // Directory for the report artifacts.
  // Which flags the user actually passed, so flags that have no effect
  // in the selected mode are rejected instead of silently dropped.
  bool TrainFlagSet = false;
  bool StreamFlagSet = false;
  bool WorkloadFlagSet = false;
  bool DriverFlagSet = false;
  bool TelemetryFlagSet = false;
  bool PredictWorkersSet = false;
  bool ExperimentFlagSet = false; // --folds / --report-out / workers.
};

/// Per-trap-class failure tally for the end-of-run summary. A pipeline
/// run that delivers ZERO successful measurements exits nonzero (3) —
/// an all-failed batch must not look like success to scripts, and
/// neither may an EMPTY delivery (zero kernels, zero failures): a run
/// that produced nothing produced nothing useful.
struct FailureTally {
  size_t Counts[16] = {0};
  size_t Failed = 0, Ok = 0;

  void add(const Result<runtime::Measurement> &R) {
    if (R.ok())
      ++Ok;
    else
      addKind(R.trap());
  }
  void addKind(TrapKind K) {
    ++Failed;
    ++Counts[static_cast<uint8_t>(K) & 15];
  }
  void print() const {
    if (Failed == 0)
      return;
    std::printf("failures by class:\n");
    for (size_t K = 0; K < 16; ++K)
      if (Counts[K])
        std::printf("  %-24s %zu\n",
                    trapKindName(static_cast<TrapKind>(K)), Counts[K]);
  }
  int exitCode() const { return Ok == 0 ? 3 : 0; }
};

/// Model/corpus configuration shared by the cached and streaming modes.
core::PipelineOptions buildPipelineOptions(const RunnerConfig &Cfg) {
  core::PipelineOptions POpts;
  POpts.NGram.Order = 14;
  if (Cfg.UseLstm) {
    POpts.Backend = core::ModelBackend::Lstm;
    POpts.Lstm.BatchLanes = Cfg.TrainLanes;
    POpts.Train.Workers = Cfg.TrainWorkers;
  }
  return POpts;
}

void printModelConfig(const RunnerConfig &Cfg) {
  if (Cfg.UseLstm)
    std::printf("backend: lstm (%d lanes, %u train workers%s)\n",
                Cfg.TrainLanes, Cfg.TrainWorkers,
                Cfg.TrainWorkers == 0 ? " = hardware" : "");
}

/// The setup sequence both pipeline modes share: mine the simulated
/// corpus, then train the model — warm-starting from the store when a
/// cache directory is configured. Prints the model line; returns
/// nullopt (after printing the error) when the store is unusable.
std::optional<core::ClgenPipeline> prepareModel(const RunnerConfig &Cfg) {
  githubsim::GithubSimOptions GOpts;
  GOpts.FileCount = Cfg.FileCount;
  auto Files = githubsim::mineGithub(GOpts);

  core::PipelineOptions POpts = buildPipelineOptions(Cfg);
  printModelConfig(Cfg);

  PhaseTimer Train("clgen.runner.train_us");
  if (Cfg.CacheDir.empty()) {
    core::ClgenPipeline Pipeline = core::ClgenPipeline::train(Files, POpts);
    std::printf("model: trained in %.1f ms (sharded corpus ingest)\n",
                Train.stopMs());
    return Pipeline;
  }
  core::TrainOrLoadInfo Info;
  auto Loaded =
      core::ClgenPipeline::trainOrLoad(Cfg.CacheDir, Files, POpts, &Info);
  if (!Loaded.ok()) {
    std::fprintf(stderr, "trainOrLoad failed: %s\n",
                 Loaded.errorMessage().c_str());
    return std::nullopt;
  }
  std::printf("model: %s (fingerprint %s) in %.1f ms\n",
              Info.LoadedModel ? "warm start from store"
                               : "trained cold + persisted",
              store::hexDigest(Info.Fingerprint).c_str(), Train.stopMs());
  return Loaded.take();
}

/// The --cache-dir mode: the standard 40-kernel synthesis + measurement
/// configuration (the BENCH_perf.json end-to-end workload) on top of the
/// artifact store. Cold runs train + execute and populate DIR; warm
/// runs load the model and serve every measurement from cache.
int runCachedPipeline(const RunnerConfig &Cfg) {
  const std::string &CacheDir = Cfg.CacheDir;
  PhaseTimer Total("clgen.runner.total_us");

  std::optional<core::ClgenPipeline> Pipeline = prepareModel(Cfg);
  if (!Pipeline)
    return 1;

  core::SynthesisOptions SOpts;
  SOpts.TargetKernels = Cfg.TargetKernels;
  SOpts.Sampling.Temperature = 0.5;
  SOpts.Workers = 0;
  PhaseTimer Synthesis("clgen.runner.synthesis_us");
  bool SynthLoaded = false;
  auto Synth = Pipeline->synthesizeOrLoad(CacheDir, SOpts, &SynthLoaded);
  std::printf("synthesis: %zu kernels %s in %.1f ms (%zu attempts)\n",
              Synth.Kernels.size(),
              SynthLoaded ? "loaded from store" : "sampled + persisted",
              Synthesis.stopMs(), Synth.Stats.Attempts);

  std::vector<vm::CompiledKernel> Kernels;
  Kernels.reserve(Synth.Kernels.size());
  for (auto &K : Synth.Kernels)
    Kernels.push_back(std::move(K.Kernel));

  runtime::DriverOptions DOpts;
  DOpts.GlobalSize = 16384;
  DOpts.WatchdogMs = Cfg.WatchdogMs;
  DOpts.MaxRetries = Cfg.Retries;
  DOpts.Profile = Cfg.Profile;
  DOpts.Dispatch = Cfg.Dispatch;
  store::ResultCache Cache(CacheDir + "/results");
  store::FailureLedger Ledger(CacheDir + "/failures");
  runtime::BatchCacheStats CStats;
  PhaseTimer Measure("clgen.runner.measure_us");
  auto Results = runtime::runBenchmarkBatch(Kernels, runtime::amdPlatform(),
                                            DOpts, 0, Cache, &CStats,
                                            &Ledger);
  double MeasureMs = Measure.stopMs();

  size_t GpuBest = 0;
  FailureTally Tally;
  for (const auto &R : Results) {
    Tally.add(R);
    if (R.ok() && R.get().gpuIsBest())
      ++GpuBest;
  }
  std::printf("measurement: %zu kernels in %.1f ms — cache hits %zu, "
              "misses %zu, ledger hits %zu, failures recorded %zu\n",
              Results.size(), MeasureMs, CStats.Hits, CStats.Misses,
              CStats.LedgerHits, CStats.LedgerRecords);
  std::printf("mapping: %zu best on GPU, %zu on CPU, %zu failed\n", GpuBest,
              Tally.Ok - GpuBest, Tally.Failed);
  Tally.print();
  std::printf("pipeline total: %.1f ms\n", Total.stopMs());
  return Tally.exitCode();
}

/// The --pipeline mode: the same 40-kernel workload as --cache-dir, but
/// synthesis and measurement run as a bounded producer/consumer
/// pipeline instead of two phases. Prints the overlap evidence: how
/// long the producer ran, and how long measurement kept draining after
/// the last kernel was accepted.
int runStreamingPipeline(const RunnerConfig &Cfg) {
  const std::string &CacheDir = Cfg.CacheDir;
  PhaseTimer Total("clgen.runner.total_us");

  std::optional<core::ClgenPipeline> Prepared = prepareModel(Cfg);
  if (!Prepared)
    return 1;
  core::ClgenPipeline Pipeline = std::move(*Prepared);

  core::StreamingOptions SOpts;
  SOpts.Synthesis.TargetKernels = Cfg.TargetKernels;
  SOpts.Synthesis.Sampling.Temperature = 0.5;
  SOpts.Synthesis.Workers = 0;
  SOpts.Driver.GlobalSize = 16384;
  SOpts.Driver.WatchdogMs = Cfg.WatchdogMs;
  SOpts.Driver.MaxRetries = Cfg.Retries;
  SOpts.Driver.Profile = Cfg.Profile;
  SOpts.Driver.Dispatch = Cfg.Dispatch;
  SOpts.MeasureWorkers = Cfg.MeasureWorkers;
  SOpts.QueueCapacity = Cfg.QueueCapacity;
  SOpts.RefillFailures = Cfg.Refill;

  std::unique_ptr<store::ResultCache> Cache;
  std::unique_ptr<store::FailureLedger> Ledger;
  if (!CacheDir.empty()) {
    Cache = std::make_unique<store::ResultCache>(CacheDir + "/results");
    SOpts.Cache = Cache.get();
    Ledger = std::make_unique<store::FailureLedger>(CacheDir + "/failures");
    SOpts.Ledger = Ledger.get();
  }

  // With a cache directory the streaming run itself is warm-startable:
  // the persisted kernel-set artifact (shared with synthesizeOrLoad)
  // replaces the sampler as the channel producer, so a warm rerun
  // performs zero sampling while producing byte-identical results.
  core::StreamingResult Out;
  core::StreamingWarmInfo Warm;
  if (CacheDir.empty()) {
    Out = Pipeline.synthesizeAndMeasure(runtime::amdPlatform(), SOpts);
  } else {
    Out = Pipeline.synthesizeAndMeasureOrLoad(CacheDir, runtime::amdPlatform(),
                                              SOpts, &Warm);
    std::printf("stream: %s (key %s)\n",
                Warm.Warm ? "warm start — kernel set loaded, sampling "
                            "skipped"
                : Warm.Persisted
                    ? "cold — sampled + kernel set persisted"
                    : "cold — sampled (not persistable for this config)",
                store::hexDigest(Warm.KeyDigest).c_str());
  }

  size_t GpuBest = 0;
  FailureTally Tally;
  for (const auto &R : Out.Measurements) {
    Tally.add(R);
    if (R.ok() && R.get().gpuIsBest())
      ++GpuBest;
  }
  for (const core::ExcisedKernel &E : Out.Excised)
    Tally.addKind(E.Kind);
  std::printf("pipeline: %zu kernels (%zu attempts) in %.1f ms\n",
              Out.Kernels.size(), Out.Stats.Attempts, Out.TotalWallMs);
  std::printf("overlap: producer (synthesis) active %.1f ms (%.0f%% of "
              "the wall), measurement drain tail after last accept "
              "%.1f ms\n",
              Out.SynthesisWallMs,
              Out.TotalWallMs > 0.0
                  ? 100.0 * Out.SynthesisWallMs / Out.TotalWallMs
                  : 0.0,
              Out.DrainWallMs);
  if (SOpts.Cache)
    std::printf("cache: %zu hits resolved at enqueue time, %zu misses "
                "measured\n",
                Out.CacheStats.Hits, Out.CacheStats.Misses);
  if (SOpts.Ledger)
    std::printf("ledger: %zu known-bad kernels skipped, %zu failures "
                "recorded\n",
                Out.CacheStats.LedgerHits, Out.CacheStats.LedgerRecords);
  if (SOpts.RefillFailures)
    std::printf("refill: %zu kernels excised and replaced (%zu accepted "
                "total for %zu delivered)\n",
                Out.Excised.size(), Out.Stats.Accepted,
                Out.Kernels.size());
  std::printf("mapping: %zu best on GPU, %zu on CPU, %zu failed\n", GpuBest,
              Tally.Ok - GpuBest, Tally.Failed);
  Tally.print();
  std::printf("pipeline total (incl. train): %.1f ms\n", Total.stopMs());
  return Tally.exitCode();
}

/// The --experiment mode: the paper's closing loop (predict/Experiment.h)
/// on the pinned golden configuration — train CLgen, synthesize +
/// measure synthetic benchmarks, measure the real suites, cross-validate
/// the device-mapping model with and without the synthetic rows, and
/// render Table 1 / Figure 9. With --cache-dir the three experiment
/// archives warm-start the whole stage: a second run trains zero models
/// and measures zero kernels.
int runExperimentMode(const RunnerConfig &Cfg) {
  PhaseTimer Total("clgen.runner.experiment_us");
  predict::ExperimentOptions Opts = predict::goldenExperimentOptions();
  if (Cfg.Folds)
    Opts.KFold.Folds = Cfg.Folds;
  if (Cfg.PredictWorkersSet) {
    // Scheduling-only by contract: any value yields identical bytes.
    Opts.Workers = Cfg.PredictWorkers;
    Opts.KFold.Workers = Cfg.PredictWorkers;
  }
  Opts.Streaming.Driver.WatchdogMs = Cfg.WatchdogMs;
  Opts.Streaming.Driver.MaxRetries = Cfg.Retries;
  Opts.Streaming.Driver.Profile = Cfg.Profile;
  Opts.Streaming.Driver.Dispatch = Cfg.Dispatch;

  predict::ExperimentResult R;
  if (Cfg.CacheDir.empty()) {
    R = predict::runExperiment(Opts);
  } else {
    auto Loaded = predict::runOrLoadExperiment(Cfg.CacheDir, Opts);
    if (!Loaded.ok()) {
      std::fprintf(stderr, "experiment failed: %s\n",
                   Loaded.errorMessage().c_str());
      return 1;
    }
    R = Loaded.take();
  }

  std::printf("experiment: %s in %.1f ms — key %s\n",
              R.Provenance.Warm ? "warm start (all artifacts from store)"
                                : "computed cold",
              Total.stopMs(),
              store::hexDigest(predict::experimentKey(Opts)).c_str());
  std::printf("work: %zu models trained, %zu kernels measured\n",
              R.Provenance.TrainedModels, R.Provenance.MeasuredKernels);
  std::printf("observations: %zu real (%zu folds trained), %zu synthetic\n",
              R.Real.size(), R.Baseline.FoldsTrained, R.Synthetic.size());
  const predict::ExperimentMetrics &M = R.Metrics;
  std::printf("baseline : accuracy %.3f, vs oracle %.3f, speedup over "
              "static-%s %.3f\n",
              M.BaselineAccuracy, M.BaselineOracle,
              M.StaticLabel == 1 ? "GPU" : "CPU", M.BaselineSpeedup);
  std::printf("augmented: accuracy %.3f, vs oracle %.3f, speedup over "
              "static-%s %.3f\n",
              M.AugmentedAccuracy, M.AugmentedOracle,
              M.StaticLabel == 1 ? "GPU" : "CPU", M.AugmentedSpeedup);

  if (Cfg.ReportOut.empty()) {
    std::printf("\n%s\n%s", R.Table1.c_str(), R.Fig9.c_str());
    return 0;
  }
  std::error_code Ec;
  std::filesystem::create_directories(Cfg.ReportOut, Ec);
  if (Ec) {
    std::fprintf(stderr, "cannot create report directory %s: %s\n",
                 Cfg.ReportOut.c_str(), Ec.message().c_str());
    return 1;
  }
  for (const auto &[Name, Body] :
       {std::pair<std::string, const std::string &>("experiment_table1.txt",
                                                    R.Table1),
        std::pair<std::string, const std::string &>("experiment_fig9.txt",
                                                    R.Fig9)}) {
    std::string Path = Cfg.ReportOut + "/" + Name;
    std::ofstream F(Path, std::ios::binary | std::ios::trunc);
    F << Body;
    if (!F.flush()) {
      std::fprintf(stderr, "cannot write report file: %s\n", Path.c_str());
      return 1;
    }
    std::printf("report: wrote %s (%zu bytes)\n", Path.c_str(), Body.size());
  }
  return 0;
}

/// Writes --trace-out / --metrics-out and prints the --profile-vm
/// report. main runs this on EVERY pipeline exit path — including the
/// exit-3 zero-measurement failure, where the partial trace/metrics
/// are exactly the evidence you want. Returns false when a file write
/// failed (after reporting it).
bool flushTelemetry(const RunnerConfig &Cfg,
                    vm::SharedOpcodeProfile &Profile) {
  auto WriteFile = [](const std::string &Path, const std::string &Body) {
    std::FILE *F = std::fopen(Path.c_str(), "wb");
    if (!F)
      return false;
    size_t Written = std::fwrite(Body.data(), 1, Body.size(), F);
    bool Ok = Written == Body.size() && std::fflush(F) == 0;
    return std::fclose(F) == 0 && Ok;
  };
  bool Ok = true;
  if (!Cfg.TraceOut.empty()) {
    support::Trace::stop();
    if (!WriteFile(Cfg.TraceOut, support::Trace::renderJson())) {
      std::fprintf(stderr, "cannot write trace file: %s\n",
                   Cfg.TraceOut.c_str());
      Ok = false;
    } else {
      std::printf("trace: %zu events (%zu dropped) -> %s\n",
                  support::Trace::eventCount(),
                  support::Trace::droppedCount(), Cfg.TraceOut.c_str());
    }
  }
  if (!Cfg.MetricsOut.empty()) {
    if (!WriteFile(Cfg.MetricsOut,
                   support::MetricsRegistry::renderText({}))) {
      std::fprintf(stderr, "cannot write metrics file: %s\n",
                   Cfg.MetricsOut.c_str());
      Ok = false;
    } else {
      std::printf("metrics: wrote %s\n", Cfg.MetricsOut.c_str());
    }
  }
  if (Cfg.ProfileVm) {
    vm::OpcodeProfile P = Profile.snapshot();
    std::fputs(vm::formatOpcodeReport(P, 10).c_str(), stdout);
  }
  return Ok;
}

void tryKernel(const char *Label, const char *Source) {
  std::printf("=== %s ===\n", Label);
  auto Kernel = vm::compileFirstKernel(Source);
  if (!Kernel.ok()) {
    std::printf("rejected at compile time: %s\n\n",
                Kernel.errorMessage().c_str());
    return;
  }
  Rng R(42);
  runtime::CheckOptions COpts;
  auto CR = runtime::checkKernel(Kernel.get(), COpts, R);
  std::printf("dynamic checker: %s%s\n",
              runtime::checkOutcomeName(CR.Outcome),
              CR.Detail.empty() ? "" : (" - " + CR.Detail).c_str());
  if (!CR.useful()) {
    std::printf("\n");
    return;
  }
  runtime::DriverOptions DOpts;
  DOpts.GlobalSize = 65536;
  auto M = runtime::runBenchmark(Kernel.get(), runtime::amdPlatform(),
                                 DOpts);
  if (M.ok()) {
    const auto &C = M.get().Counters;
    std::printf("executed %llu instructions (%llu global loads, %llu "
                "stores, %.0f%% coalesced)\n",
                static_cast<unsigned long long>(C.Instructions),
                static_cast<unsigned long long>(C.GlobalLoads),
                static_cast<unsigned long long>(C.GlobalStores),
                C.globalAccesses()
                    ? 100.0 * C.CoalescedGlobal / C.globalAccesses()
                    : 0.0);
    std::printf("transfer: %llu bytes; CPU %.3f ms vs GPU %.3f ms\n",
                static_cast<unsigned long long>(M.get().Transfer.total()),
                M.get().CpuTime * 1e3, M.get().GpuTime * 1e3);
  }
  std::printf("\n");
}

} // namespace

void printUsage(const char *Prog, std::FILE *Out) {
  std::fprintf(
      Out,
      "usage: %s [options]\n"
      "\n"
      "With no options: walks single kernels through the section 5 host\n"
      "driver (payload generation, dynamic checking, instrumented\n"
      "execution), then a batched measurement demo.\n"
      "\n"
      "Pipeline modes:\n"
      "  --cache-dir DIR       run the 40-kernel pipeline on top of the\n"
      "                        persistent artifact store in DIR: cold runs\n"
      "                        train + execute and populate it, warm runs\n"
      "                        load the model and serve measurements from\n"
      "                        the result cache\n"
      "  --pipeline            stream synthesis straight into measurement\n"
      "                        (bounded producer/consumer channel) instead\n"
      "                        of two phases; combines with --cache-dir,\n"
      "                        where warm reruns load the persisted kernel\n"
      "                        set and perform zero sampling\n"
      "  --experiment          run the paper's closing loop on the pinned\n"
      "                        golden configuration: train CLgen, measure\n"
      "                        synthetic + real benchmarks, cross-validate\n"
      "                        the device-mapping model with and without\n"
      "                        the synthetic rows, print Table 1 and the\n"
      "                        Figure 9 feature-match report. With\n"
      "                        --cache-dir, warm re-runs load all three\n"
      "                        experiment archives and do zero training\n"
      "                        and zero measurement\n"
      "\n"
      "Experiment knobs (with --experiment):\n"
      "  --folds N             K-fold count (semantic: changes the fold\n"
      "                        split, the predictions and the store key;\n"
      "                        default 3, the golden configuration)\n"
      "  --predict-workers N   threads for feature extraction and fold\n"
      "                        training; 0 = hardware concurrency.\n"
      "                        Scheduling only: report bytes are identical\n"
      "                        for every value\n"
      "  --report-out DIR      write experiment_table1.txt and\n"
      "                        experiment_fig9.txt into DIR instead of\n"
      "                        printing the reports\n"
      "\n"
      "Workload:\n"
      "  --kernels N           synthesis target (default 40)\n"
      "  --files N             githubsim corpus size in content files\n"
      "                        (default 400)\n"
      "\n"
      "Model / training:\n"
      "  --backend NAME        language model backend: ngram (default) or\n"
      "                        lstm\n"
      "  --train-workers N     threads for the data-parallel LSTM training\n"
      "                        engine; 0 = hardware concurrency (default).\n"
      "                        Scheduling only: trained weights are\n"
      "                        bit-identical for every value\n"
      "  --train-lanes N       LSTM data-parallel batch width (default 8).\n"
      "                        Semantic: changes the training trajectory\n"
      "                        and the artifact fingerprint; 1 = the\n"
      "                        paper's chunk-sequential SGD\n"
      "\n"
      "Streaming knobs (with --pipeline; scheduling only, output is\n"
      "bit-identical for every value):\n"
      "  --measure-workers N   measurement consumer threads; 0 = hardware\n"
      "                        concurrency (default)\n"
      "  --queue N             kernel channel capacity; 0 = auto (default)\n"
      "\n"
      "Fault tolerance (pipeline modes):\n"
      "  --refill              excise kernels whose measurement failed and\n"
      "                        resume synthesis for replacements until the\n"
      "                        target count of measurements succeeds\n"
      "                        (--pipeline only); excisions are reported\n"
      "                        per trap class\n"
      "  --watchdog-ms N       per-launch wall-clock watchdog in ms; a\n"
      "                        stalled kernel fails as watchdog-timeout\n"
      "                        instead of wedging the batch (0 = off,\n"
      "                        default)\n"
      "  --retries N           retry budget for transient failure classes\n"
      "                        (injected faults, I/O); deterministic traps\n"
      "                        never retry (default 2)\n"
      "  --dispatch MODE       VM dispatch strategy: auto (default; fused\n"
      "                        where computed goto is available), switch\n"
      "                        (portable reference loop), threaded\n"
      "                        (computed-goto), fused (threaded +\n"
      "                        profile-guided superinstructions). Pure\n"
      "                        speed knob: measurements are bit-identical\n"
      "                        across modes and cache entries are shared\n"
      "  --inject P            arm every compiled-in failpoint site with\n"
      "                        trip probability P in (0,1]; requires a\n"
      "                        build with -DCLGS_FAILPOINTS=ON\n"
      "\n"
      "Telemetry (pipeline modes; observation only — output is\n"
      "bit-identical with or without these flags):\n"
      "  --trace-out FILE      write Chrome trace-event JSON of the run\n"
      "                        (a span per kernel lifecycle stage: sample,\n"
      "                        accept, enqueue, measure, cache/ledger\n"
      "                        writes; load in Perfetto); requires a build\n"
      "                        with -DCLGS_TELEMETRY=ON\n"
      "  --metrics-out FILE    write the metrics registry text exposition\n"
      "                        after the run; requires -DCLGS_TELEMETRY=ON\n"
      "  --profile-vm          aggregate per-opcode and opcode-pair\n"
      "                        execution counts over every VM launch and\n"
      "                        print the top-10 report (superinstruction\n"
      "                        candidates); available in every build\n"
      "\n"
      "A pipeline run that delivers zero successful measurements —\n"
      "whether every kernel failed or the delivery was empty — exits\n"
      "with status 3 and prints the per-class failure table; telemetry\n"
      "files are still written on that path.\n"
      "\n"
      "  --help                this text\n",
      Prog);
}

int main(int Argc, char **Argv) {
  RunnerConfig Cfg;
  // strtoul silently wraps negative input, so accept digits only.
  auto ParseDigits = [](const std::string &Text, unsigned long &Out) {
    bool Digits = !Text.empty() &&
                  Text.find_first_not_of("0123456789") == std::string::npos;
    Out = Digits ? std::strtoul(Text.c_str(), nullptr, 10) : 0;
    return Digits;
  };
  auto ParseCount = [&ParseDigits](const std::string &Text,
                                   unsigned long &Out) {
    return ParseDigits(Text, Out) && Out != 0;
  };
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    unsigned long N = 0;
    if (Arg == "--help" || Arg == "-h") {
      printUsage(Argv[0], stdout);
      return 0;
    } else if (Arg == "--cache-dir" && I + 1 < Argc) {
      Cfg.CacheDir = Argv[++I];
    } else if (Arg == "--pipeline") {
      Cfg.Pipeline = true;
    } else if (Arg == "--experiment") {
      Cfg.Experiment = true;
    } else if (Arg == "--folds" && I + 1 < Argc) {
      if (!ParseCount(Argv[++I], N) || N > 64) {
        std::fprintf(stderr, "--folds expects an integer in [1, 64]\n");
        return 2;
      }
      Cfg.Folds = N;
      Cfg.ExperimentFlagSet = true;
    } else if (Arg == "--predict-workers" && I + 1 < Argc) {
      if (!ParseDigits(Argv[++I], N) || N > (1ul << 10)) {
        std::fprintf(stderr,
                     "--predict-workers expects an integer in [0, %lu] "
                     "(0 = hardware concurrency)\n",
                     1ul << 10);
        return 2;
      }
      Cfg.PredictWorkers = static_cast<unsigned>(N);
      Cfg.PredictWorkersSet = true;
      Cfg.ExperimentFlagSet = true;
    } else if (Arg == "--report-out" && I + 1 < Argc) {
      Cfg.ReportOut = Argv[++I];
      Cfg.ExperimentFlagSet = true;
    } else if (Arg == "--backend" && I + 1 < Argc) {
      std::string Backend = Argv[++I];
      if (Backend == "lstm") {
        Cfg.UseLstm = true;
      } else if (Backend != "ngram") {
        std::fprintf(stderr, "--backend expects 'ngram' or 'lstm'\n");
        return 2;
      }
    } else if (Arg == "--kernels" && I + 1 < Argc) {
      if (!ParseCount(Argv[++I], N)) {
        std::fprintf(stderr, "--kernels expects a positive integer\n");
        return 2;
      }
      Cfg.TargetKernels = N;
      Cfg.WorkloadFlagSet = true;
    } else if (Arg == "--files" && I + 1 < Argc) {
      if (!ParseCount(Argv[++I], N)) {
        std::fprintf(stderr, "--files expects a positive integer\n");
        return 2;
      }
      Cfg.FileCount = N;
      Cfg.WorkloadFlagSet = true;
    } else if (Arg == "--train-workers" && I + 1 < Argc) {
      if (!ParseDigits(Argv[++I], N) || N > (1ul << 20)) {
        std::fprintf(stderr,
                     "--train-workers expects an integer in [0, %lu] "
                     "(0 = hardware concurrency)\n",
                     1ul << 20);
        return 2;
      }
      Cfg.TrainWorkers = static_cast<unsigned>(N);
      Cfg.TrainFlagSet = true;
    } else if (Arg == "--train-lanes" && I + 1 < Argc) {
      // Bounded by the model's own clamp range, so the value round-trips
      // through the int option and the serialized archive unchanged.
      if (!ParseCount(Argv[++I], N) ||
          N > static_cast<unsigned long>(model::LstmOptions::MaxBatchLanes)) {
        std::fprintf(stderr, "--train-lanes expects an integer in [1, %d]\n",
                     model::LstmOptions::MaxBatchLanes);
        return 2;
      }
      Cfg.TrainLanes = static_cast<int>(N);
      Cfg.TrainFlagSet = true;
    } else if (Arg == "--measure-workers" && I + 1 < Argc) {
      if (!ParseCount(Argv[++I], N)) {
        std::fprintf(stderr,
                     "--measure-workers expects a positive integer\n");
        return 2;
      }
      Cfg.MeasureWorkers = static_cast<unsigned>(N);
      Cfg.StreamFlagSet = true;
    } else if (Arg == "--queue" && I + 1 < Argc) {
      if (!ParseCount(Argv[++I], N)) {
        std::fprintf(stderr, "--queue expects a positive integer\n");
        return 2;
      }
      Cfg.QueueCapacity = N;
      Cfg.StreamFlagSet = true;
    } else if (Arg == "--refill") {
      Cfg.Refill = true;
    } else if (Arg == "--watchdog-ms" && I + 1 < Argc) {
      if (!ParseCount(Argv[++I], N)) {
        std::fprintf(stderr, "--watchdog-ms expects a positive integer\n");
        return 2;
      }
      Cfg.WatchdogMs = N;
      Cfg.DriverFlagSet = true;
    } else if (Arg == "--dispatch" && I + 1 < Argc) {
      auto Mode = vm::parseDispatchMode(Argv[++I]);
      if (!Mode) {
        std::fprintf(stderr, "--dispatch expects 'auto', 'switch', "
                             "'threaded' or 'fused'\n");
        return 2;
      }
      Cfg.Dispatch = *Mode;
      Cfg.DriverFlagSet = true;
    } else if (Arg == "--retries" && I + 1 < Argc) {
      if (!ParseDigits(Argv[++I], N) || N > 100) {
        std::fprintf(stderr, "--retries expects an integer in [0, 100]\n");
        return 2;
      }
      Cfg.Retries = static_cast<unsigned>(N);
      Cfg.DriverFlagSet = true;
    } else if (Arg == "--trace-out" && I + 1 < Argc) {
      Cfg.TraceOut = Argv[++I];
      Cfg.TelemetryFlagSet = true;
    } else if (Arg == "--metrics-out" && I + 1 < Argc) {
      Cfg.MetricsOut = Argv[++I];
      Cfg.TelemetryFlagSet = true;
    } else if (Arg == "--profile-vm") {
      Cfg.ProfileVm = true;
      Cfg.TelemetryFlagSet = true;
    } else if (Arg == "--inject" && I + 1 < Argc) {
      char *End = nullptr;
      double Prob = std::strtod(Argv[++I], &End);
      if (End == Argv[I] || *End != '\0' || !(Prob > 0.0) || Prob > 1.0) {
        std::fprintf(stderr, "--inject expects a probability in (0, 1]\n");
        return 2;
      }
      Cfg.InjectProb = Prob;
    } else {
      std::fprintf(stderr, "unknown or incomplete option: %s\n\n",
                   Arg.c_str());
      printUsage(Argv[0], stderr);
      return 2;
    }
  }
  // Reject flag combinations that would be silently ignored: every
  // option the user passes must affect the run it configures.
  if (Cfg.ExperimentFlagSet && !Cfg.Experiment) {
    std::fprintf(stderr, "--folds/--predict-workers/--report-out only "
                         "apply to --experiment\n");
    return 2;
  }
  if (Cfg.Experiment &&
      (Cfg.Pipeline || Cfg.UseLstm || Cfg.WorkloadFlagSet ||
       Cfg.StreamFlagSet || Cfg.Refill)) {
    std::fprintf(stderr,
                 "--experiment runs the pinned golden configuration; it "
                 "combines only with --cache-dir, the experiment knobs, "
                 "--dispatch/--watchdog-ms/--retries and telemetry "
                 "flags\n");
    return 2;
  }
  bool PipelineMode =
      Cfg.Pipeline || Cfg.Experiment || !Cfg.CacheDir.empty();
  if (Cfg.UseLstm && !PipelineMode) {
    std::fprintf(stderr, "--backend lstm requires a pipeline mode "
                         "(--cache-dir and/or --pipeline)\n");
    return 2;
  }
  if (Cfg.WorkloadFlagSet && !PipelineMode) {
    std::fprintf(stderr, "--kernels/--files require a pipeline mode "
                         "(--cache-dir and/or --pipeline)\n");
    return 2;
  }
  if (Cfg.TrainFlagSet && !Cfg.UseLstm) {
    std::fprintf(stderr, "--train-workers/--train-lanes only apply to "
                         "--backend lstm\n");
    return 2;
  }
  if (Cfg.StreamFlagSet && !Cfg.Pipeline) {
    std::fprintf(stderr,
                 "--measure-workers/--queue only apply to --pipeline\n");
    return 2;
  }
  if (Cfg.Refill && !Cfg.Pipeline) {
    std::fprintf(stderr, "--refill only applies to --pipeline\n");
    return 2;
  }
  if (Cfg.DriverFlagSet && !PipelineMode) {
    std::fprintf(stderr,
                 "--watchdog-ms/--retries/--dispatch require a pipeline "
                 "mode (--cache-dir and/or --pipeline)\n");
    return 2;
  }
  if (Cfg.TelemetryFlagSet && !PipelineMode) {
    std::fprintf(stderr,
                 "--trace-out/--metrics-out/--profile-vm require a "
                 "pipeline mode (--cache-dir and/or --pipeline)\n");
    return 2;
  }
  if ((!Cfg.TraceOut.empty() || !Cfg.MetricsOut.empty()) &&
      !support::telemetryCompiledIn()) {
    std::fprintf(stderr,
                 "--trace-out/--metrics-out require a build with "
                 "-DCLGS_TELEMETRY=ON (telemetry sites are compiled "
                 "out)\n");
    return 2;
  }
  if (Cfg.InjectProb > 0.0) {
    if (!support::FailPoints::sitesCompiledIn()) {
      std::fprintf(stderr,
                   "--inject requires a build with -DCLGS_FAILPOINTS=ON "
                   "(failpoint sites are compiled out)\n");
      return 2;
    }
    support::FailPlan Plan;
    Plan.Probability = Cfg.InjectProb;
    support::FailPoints::arm(Plan);
    std::printf("failpoints: armed every site at p=%.3f\n", Cfg.InjectProb);
  }
  vm::SharedOpcodeProfile VmProfile;
  if (Cfg.ProfileVm)
    Cfg.Profile = &VmProfile;
  if (!Cfg.TraceOut.empty())
    support::Trace::start();
  int Exit = -1;
  if (Cfg.Experiment)
    Exit = runExperimentMode(Cfg);
  else if (Cfg.Pipeline)
    Exit = runStreamingPipeline(Cfg);
  else if (!Cfg.CacheDir.empty())
    Exit = runCachedPipeline(Cfg);
  if (Exit >= 0) {
    if (!flushTelemetry(Cfg, VmProfile) && Exit == 0)
      Exit = 1;
    if (support::FailPoints::armed())
      std::printf("failpoints: %llu injected faults fired\n",
                  static_cast<unsigned long long>(
                      support::FailPoints::totalFires()));
    return Exit;
  }

  tryKernel("useful work: guarded vector scale",
            "__kernel void scale(__global float* a, const int n) {\n"
            "  int i = get_global_id(0);\n"
            "  if (i < n) { a[i] = a[i] * 2.0f + 1.0f; }\n"
            "}\n");

  tryKernel("no output: writes nothing",
            "__kernel void silent(__global float* a, const int n) {\n"
            "  int i = get_global_id(0);\n"
            "  float x = a[i % n] * 2.0f;\n"
            "  x = x + 1.0f;\n"
            "}\n");

  tryKernel("input insensitive: constant output",
            "__kernel void constant_out(__global float* a, const int n) {\n"
            "  int i = get_global_id(0);\n"
            "  if (i < n) { a[i] = 4.0f; }\n"
            "}\n");

  tryKernel("crash: out-of-bounds write",
            "__kernel void oob(__global float* a, const int n) {\n"
            "  a[get_global_id(0) + n] = 1.0f;\n"
            "}\n");

  tryKernel("timeout: runs forever",
            "__kernel void spin(__global float* a, const int n) {\n"
            "  while (1) { a[0] += 1.0f; }\n"
            "}\n");

  tryKernel("rejected: undeclared identifier (shim-class failure)",
            "__kernel void broken(__global float* a) {\n"
            "  a[get_global_id(0)] = MISSING_CONSTANT;\n"
            "}\n");

  // Batched measurement: the driver fans a kernel set across a worker
  // pool (results deterministic and index-aligned regardless of worker
  // count) — the consumer side of the parallel synthesis engine.
  std::printf("=== batched measurement (worker pool) ===\n");
  std::vector<vm::CompiledKernel> Batch;
  const char *Variants[] = {"a[i] = a[i] * 2.0f;", "a[i] = a[i] + 7.0f;",
                            "a[i] = a[i] * a[i];", "a[i] = -a[i];"};
  for (const char *Body : Variants) {
    std::string Src = "__kernel void v(__global float* a, const int n) {\n"
                      "  int i = get_global_id(0);\n"
                      "  if (i < n) { " +
                      std::string(Body) +
                      " }\n"
                      "}\n";
    Batch.push_back(vm::compileFirstKernel(Src).take());
  }
  runtime::DriverOptions BatchOpts;
  BatchOpts.GlobalSize = 16384;
  auto T0 = std::chrono::steady_clock::now();
  auto Results =
      runtime::runBenchmarkBatch(Batch, runtime::amdPlatform(), BatchOpts);
  auto T1 = std::chrono::steady_clock::now();
  for (size_t I = 0; I < Results.size(); ++I) {
    if (!Results[I].ok()) {
      std::printf("kernel %zu: %s\n", I, Results[I].errorMessage().c_str());
      continue;
    }
    std::printf("kernel %zu: CPU %.3f ms vs GPU %.3f ms -> %s\n", I,
                Results[I].get().CpuTime * 1e3,
                Results[I].get().GpuTime * 1e3,
                Results[I].get().gpuIsBest() ? "GPU" : "CPU");
  }
  std::printf("batch wall time: %.1f ms\n",
              std::chrono::duration<double, std::milli>(T1 - T0).count());
  return 0;
}

//===- support/Trace.h - Thread-aware span tracing ---------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded, thread-aware span tracing for the synthesis→measurement
/// pipeline, exported as Chrome trace-event JSON (load the file in
/// Perfetto / chrome://tracing). Design points:
///
///  - Per-thread bounded buffers: each recording thread appends to its
///    own pre-registered buffer, so the hot path takes no lock and
///    shares no cache lines — trivially race-free under TSan. When a
///    buffer fills, newer events are dropped and counted (never
///    blocking the pipeline).
///  - Session generations: `Trace::start()` bumps a generation; a
///    thread's cached buffer re-arms lazily on first record of the new
///    session, so start/stop cycles reuse buffers without handshakes.
///  - Names are string literals: events store `const char *` and never
///    copy, keeping a span record to a few stores.
///  - Export after quiescence: call `renderJson()` only after `stop()`
///    and after joining the threads that recorded — the exporter walks
///    the buffers unlocked.
///
/// Spans mark the kernel lifecycle stages (sample → accept → enqueue →
/// measure → cache/ledger write); instants mark pool/channel edge
/// events (steals, full/empty transitions). Sites use CLGS_TRACE_SPAN /
/// CLGS_TRACE_INSTANT below, compiled out with the rest of telemetry
/// under CLGS_TELEMETRY=OFF. The Trace runtime itself (start/stop/
/// render) is always compiled.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_SUPPORT_TRACE_H
#define CLGEN_SUPPORT_TRACE_H

#include "support/Metrics.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace clgen {
namespace support {

struct TraceOptions {
  /// Bound on events recorded per thread per session; overflow drops
  /// (and counts) rather than growing or blocking.
  size_t EventsPerThread = 1 << 16;
};

/// Process-wide trace session control. One session at a time:
/// start() → record via macros → stop() → renderJson().
class Trace {
public:
  /// Hot-path guard: false outside start()/stop(), in which case span
  /// construction is a single relaxed load.
  static bool active() { return Active.load(std::memory_order_relaxed); }

  /// Begins a new session, discarding events from prior sessions.
  static void start(const TraceOptions &Opts = {});

  /// Ends the session. Events stay readable until the next start().
  static void stop();

  /// Chrome trace-event JSON for the last session: a `traceEvents`
  /// array of "X" (complete span) and "i" (instant) events, ts/dur in
  /// microseconds, tid = buffer registration order. Deterministically
  /// ordered (sorted by timestamp, tid, name). Call after stop() with
  /// recording threads joined.
  static std::string renderJson();

  /// Events captured in the last session (post-stop, threads joined).
  static size_t eventCount();

  /// Events dropped to the per-thread bound in the last session.
  static size_t droppedCount();

  /// Records a completed span of [StartNs, StartNs + DurNs). \p Name
  /// must be a string literal. \p Index tags the event's `args.index`
  /// (kIndexNone = no tag). No-op when inactive.
  static void span(const char *Name, uint64_t StartNs, uint64_t DurNs,
                   uint64_t Index = kIndexNone);

  /// Records a zero-duration instant event. No-op when inactive.
  static void instant(const char *Name, uint64_t Index = kIndexNone);

  static constexpr uint64_t kIndexNone = ~uint64_t(0);

private:
  static std::atomic<bool> Active;
};

/// RAII span: samples the clock at construction and records on
/// destruction. Costs one relaxed load when tracing is inactive.
class ScopedTraceSpan {
public:
  explicit ScopedTraceSpan(const char *Name,
                           uint64_t Index = Trace::kIndexNone)
      : Name(Trace::active() ? Name : nullptr), Index(Index),
        StartNs(this->Name ? telemetryNowNs() : 0) {}

  ~ScopedTraceSpan() {
    if (Name)
      Trace::span(Name, StartNs, telemetryNowNs() - StartNs, Index);
  }

  ScopedTraceSpan(const ScopedTraceSpan &) = delete;
  ScopedTraceSpan &operator=(const ScopedTraceSpan &) = delete;

private:
  const char *Name;
  uint64_t Index;
  uint64_t StartNs;
};

} // namespace support
} // namespace clgen

#if defined(CLGS_TELEMETRY)

#define CLGS_TRACE_SPAN(NAME)                                                  \
  ::clgen::support::ScopedTraceSpan ClgsSpan_##__LINE__(NAME)
#define CLGS_TRACE_SPAN_IDX(NAME, INDEX)                                       \
  ::clgen::support::ScopedTraceSpan ClgsSpan_##__LINE__(                       \
      NAME, static_cast<uint64_t>(INDEX))
#define CLGS_TRACE_INSTANT(NAME) ::clgen::support::Trace::instant(NAME)
#define CLGS_TRACE_INSTANT_IDX(NAME, INDEX)                                    \
  ::clgen::support::Trace::instant(NAME, static_cast<uint64_t>(INDEX))

#else // !CLGS_TELEMETRY

#define CLGS_TRACE_SPAN(NAME)                                                  \
  do {                                                                         \
  } while (false)
#define CLGS_TRACE_SPAN_IDX(NAME, INDEX)                                       \
  do {                                                                         \
  } while (false)
#define CLGS_TRACE_INSTANT(NAME)                                               \
  do {                                                                         \
  } while (false)
#define CLGS_TRACE_INSTANT_IDX(NAME, INDEX)                                    \
  do {                                                                         \
  } while (false)

#endif // CLGS_TELEMETRY

#endif // CLGEN_SUPPORT_TRACE_H

//===- bench/Common.h - Shared experiment harness helpers --------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table / per-figure experiment binaries:
/// corpus + model construction, synthetic-benchmark measurement and
/// common printing. Every binary is deterministic end to end.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_BENCH_COMMON_H
#define CLGEN_BENCH_COMMON_H

#include "clgen/Pipeline.h"
#include "clsmith/ClSmith.h"
#include "githubsim/GithubSim.h"
#include "predict/Evaluation.h"
#include "runtime/HostDriver.h"
#include "suites/Runner.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "vm/Compiler.h"

#include <cstdio>
#include <string>
#include <vector>

namespace clgen {
namespace bench {

/// Builds the standard trained pipeline used by the experiments: mines
/// the synthetic GitHub snapshot and trains the n-gram backend (see
/// DESIGN.md for the LSTM-vs-ngram substitution note).
inline core::ClgenPipeline trainedPipeline(size_t FileCount = 1500,
                                           int Order = 16) {
  githubsim::GithubSimOptions GOpts;
  GOpts.FileCount = FileCount;
  auto Files = githubsim::mineGithub(GOpts);
  core::PipelineOptions POpts;
  POpts.NGram.Order = Order;
  return core::ClgenPipeline::train(Files, POpts);
}

/// Synthesizes kernels and measures each on \p P, producing training
/// observations (benchmark group "clgen-synthetic": never used as a test
/// group). Payload sizes are drawn from the benchmark-suite range
/// (section 7.1: "payloads between 128B-130MB").
inline std::vector<predict::Observation>
measureSynthetic(core::ClgenPipeline &Pipeline, size_t Count,
                 const runtime::Platform &P, uint64_t Seed = 0x5E17) {
  core::SynthesisOptions SOpts;
  SOpts.TargetKernels = Count;
  SOpts.MaxAttempts = Count * 400;
  SOpts.Sampling.Temperature = 0.55;
  SOpts.Seed = Seed;
  auto Synth = Pipeline.synthesize(SOpts);

  Rng R(Seed ^ 0xF00D);
  std::vector<predict::Observation> Out;
  // Each synthetic kernel is profiled across several payload sizes, like
  // the benchmark suites' dataset classes.
  const size_t Sizes[] = {1024, 4096, 16384, 65536, 262144};
  size_t Index = 0;
  for (const auto &SK : Synth.Kernels) {
    size_t FirstSize = R.bounded(std::size(Sizes));
    bool CheckedUseful = false;
    for (size_t S = 0; S < 3; ++S) {
      runtime::DriverOptions DOpts;
      DOpts.GlobalSize = Sizes[(FirstSize + S * 2) % std::size(Sizes)];
      DOpts.LocalSize = 64;
      DOpts.MaxSimulatedGroups = 16;
      // The dynamic checker (4 executions) runs once per kernel.
      DOpts.RunDynamicCheck = !CheckedUseful;
      DOpts.Seed = Seed + Index * 7 + S;
      auto M = runtime::runBenchmark(SK.Kernel, P, DOpts);
      if (!M.ok())
        break; // Dynamic checker rejected it: not useful work.
      CheckedUseful = true;
      predict::Observation O;
      O.Suite = "clgen";
      O.Benchmark = formatString("clgen-synthetic-%zu", Index);
      O.Kernel = SK.Kernel.Name;
      O.Dataset = formatString("%zu", DOpts.GlobalSize);
      O.Raw.Static = features::extractStaticFeatures(SK.Kernel);
      O.Raw.TransferBytes = static_cast<double>(M.get().Transfer.total());
      O.Raw.WgSize = static_cast<double>(M.get().GlobalSize);
      O.CpuTime = M.get().CpuTime;
      O.GpuTime = M.get().GpuTime;
      Out.push_back(std::move(O));
    }
    ++Index;
  }
  return Out;
}

/// Filters observations by suite.
inline std::vector<predict::Observation>
bySuite(const std::vector<predict::Observation> &Obs,
        const std::string &Suite) {
  std::vector<predict::Observation> Out;
  for (const auto &O : Obs)
    if (O.Suite == Suite)
      Out.push_back(O);
  return Out;
}

inline std::string formatPercent(double X) {
  return formatString("%.1f%%", X * 100.0);
}

} // namespace bench
} // namespace clgen

#endif // CLGEN_BENCH_COMMON_H

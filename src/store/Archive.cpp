//===- store/Archive.cpp - Versioned binary archive I/O ------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "store/Archive.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>

using namespace clgen;
using namespace clgen::store;

static constexpr uint32_t ArchiveMagic = 0x53474C43u; // 'CLGS' LE.

uint64_t store::fnv1a64(const void *Data, size_t Size, uint64_t Seed) {
  const auto *P = static_cast<const uint8_t *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I < Size; ++I) {
    H ^= P[I];
    H *= 0x100000001B3ull;
  }
  return H;
}

std::string store::hexDigest(uint64_t Digest) {
  static const char Hex[] = "0123456789abcdef";
  std::string S(16, '0');
  for (int I = 15; I >= 0; --I) {
    S[I] = Hex[Digest & 0xF];
    Digest >>= 4;
  }
  return S;
}

//===----------------------------------------------------------------------===//
// ArchiveWriter
//===----------------------------------------------------------------------===//

void ArchiveWriter::writeU32(uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Payload.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void ArchiveWriter::writeU64(uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Payload.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void ArchiveWriter::writeF32(float V) {
  uint32_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  writeU32(Bits);
}

void ArchiveWriter::writeF64(double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  writeU64(Bits);
}

void ArchiveWriter::writeString(std::string_view S) {
  writeU64(S.size());
  writeBytes(S.data(), S.size());
}

void ArchiveWriter::writeBytes(const void *Data, size_t Size) {
  const auto *P = static_cast<const uint8_t *>(Data);
  Payload.insert(Payload.end(), P, P + Size);
}

void ArchiveWriter::writeF32Vector(const std::vector<float> &V) {
  writeU64(V.size());
  for (float X : V)
    writeF32(X);
}

void ArchiveWriter::writeF64Vector(const std::vector<double> &V) {
  writeU64(V.size());
  for (double X : V)
    writeF64(X);
}

uint64_t ArchiveWriter::payloadDigest() const {
  return fnv1a64(Payload.data(), Payload.size());
}

std::vector<uint8_t> ArchiveWriter::finalize() const {
  ArchiveWriter Header(Kind);
  Header.writeU32(ArchiveMagic);
  Header.writeU32(FormatVersion);
  Header.writeU32(static_cast<uint32_t>(Kind));
  Header.writeU64(Payload.size());
  std::vector<uint8_t> Out = std::move(Header.Payload);
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  // The trailer digests header || payload (v3): every byte of the file
  // is under the checksum, so even kind-agnostic validation catches a
  // corrupted header field.
  uint64_t Checksum = fnv1a64(Out.data(), Out.size());
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<uint8_t>(Checksum >> (8 * I)));
  return Out;
}

Status ArchiveWriter::saveTo(const std::string &Path) const {
  std::vector<uint8_t> Bytes = finalize();

  // Unique temp name in the destination directory so the final rename is
  // within one filesystem and concurrent writers never collide.
  static std::atomic<uint64_t> TempCounter{0};
  uint64_t Unique =
      fnv1a64(Path.data(), Path.size(),
              0x9E3779B97F4A7C15ull + TempCounter.fetch_add(1));
  std::string TempPath = Path + ".tmp." + hexDigest(Unique);

  std::FILE *F = std::fopen(TempPath.c_str(), "wb");
  if (!F)
    return Status::error("cannot open temp file for writing: " + TempPath);
  size_t Written = Bytes.empty()
                       ? 0
                       : std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  bool WriteOk = Written == Bytes.size() && std::fflush(F) == 0;
  WriteOk = std::fclose(F) == 0 && WriteOk;
  if (!WriteOk) {
    std::remove(TempPath.c_str());
    return Status::error("short write to temp file: " + TempPath);
  }

  std::error_code Ec;
  std::filesystem::rename(TempPath, Path, Ec);
  if (Ec) {
    std::remove(TempPath.c_str());
    return Status::error("rename into place failed: " + Path + ": " +
                         Ec.message());
  }
  return Status();
}

//===----------------------------------------------------------------------===//
// ArchiveReader
//===----------------------------------------------------------------------===//

bool store::readFileBytes(const std::string &Path,
                          std::vector<uint8_t> &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  Out.clear();
  uint8_t Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.insert(Out.end(), Buf, Buf + N);
  bool Ok = std::ferror(F) == 0;
  std::fclose(F);
  return Ok;
}

static uint32_t peekU32(const uint8_t *P) {
  return static_cast<uint32_t>(P[0]) | static_cast<uint32_t>(P[1]) << 8 |
         static_cast<uint32_t>(P[2]) << 16 |
         static_cast<uint32_t>(P[3]) << 24;
}

static uint64_t peekU64(const uint8_t *P) {
  return static_cast<uint64_t>(peekU32(P)) |
         static_cast<uint64_t>(peekU32(P + 4)) << 32;
}

const char *store::archiveKindName(uint32_t Kind) {
  switch (static_cast<ArchiveKind>(Kind)) {
  case ArchiveKind::Model:
    return "model";
  case ArchiveKind::Corpus:
    return "corpus";
  case ArchiveKind::Measurement:
    return "measurement";
  case ArchiveKind::Synthesis:
    return "synthesis";
  case ArchiveKind::Manifest:
    return "manifest";
  case ArchiveKind::Failure:
    return "failure";
  case ArchiveKind::Features:
    return "features";
  case ArchiveKind::Predictor:
    return "predictor";
  case ArchiveKind::Report:
    return "report";
  }
  return "unknown";
}

Result<ArchiveInfo> store::inspectArchive(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  if (!readFileBytes(Path, Bytes))
    return Result<ArchiveInfo>::error("cannot read archive: " + Path);

  constexpr size_t HeaderSize = 20, TrailerSize = 8;
  ArchiveInfo Info;
  Info.FileSize = Bytes.size();
  if (Bytes.size() < HeaderSize + TrailerSize)
    return Result<ArchiveInfo>::error(
        "archive truncated: " + std::to_string(Bytes.size()) +
        " bytes is smaller than the fixed header");
  if (peekU32(Bytes.data()) != ArchiveMagic)
    return Result<ArchiveInfo>::error("bad magic: not a CLGS archive");
  Info.Version = peekU32(Bytes.data() + 4);
  Info.Kind = peekU32(Bytes.data() + 8);
  Info.PayloadSize = peekU64(Bytes.data() + 12);
  if (Info.Version != FormatVersion)
    return Result<ArchiveInfo>::error(
        "unsupported format version " + std::to_string(Info.Version) +
        " (expected " + std::to_string(FormatVersion) + ")");
  if (Info.PayloadSize != Bytes.size() - HeaderSize - TrailerSize)
    return Result<ArchiveInfo>::error(
        "archive truncated: header promises " +
        std::to_string(Info.PayloadSize) + " payload bytes, file carries " +
        std::to_string(Bytes.size() - HeaderSize - TrailerSize));
  Info.Checksum = peekU64(Bytes.data() + HeaderSize + Info.PayloadSize);
  uint64_t Actual = fnv1a64(Bytes.data(), HeaderSize + Info.PayloadSize);
  if (Info.Checksum != Actual)
    return Result<ArchiveInfo>::error(
        "checksum mismatch: archive is corrupted");
  return Info;
}

Result<ArchiveReader> ArchiveReader::open(const std::string &Path,
                                          ArchiveKind ExpectedKind) {
  std::vector<uint8_t> Bytes;
  if (!readFileBytes(Path, Bytes))
    return Result<ArchiveReader>::error("cannot read archive: " + Path);
  auto R = fromBytes(std::move(Bytes), ExpectedKind);
  if (!R.ok())
    return Result<ArchiveReader>::error(Path + ": " + R.errorMessage());
  return R;
}

Result<ArchiveReader> ArchiveReader::fromBytes(std::vector<uint8_t> Bytes,
                                               ArchiveKind ExpectedKind) {
  // Header (20) + checksum trailer (8) is the minimum well-formed size.
  constexpr size_t HeaderSize = 20, TrailerSize = 8;
  if (Bytes.size() < HeaderSize + TrailerSize)
    return Result<ArchiveReader>::error(
        "archive truncated: " + std::to_string(Bytes.size()) +
        " bytes is smaller than the fixed header");
  if (peekU32(Bytes.data()) != ArchiveMagic)
    return Result<ArchiveReader>::error("bad magic: not a CLGS archive");
  uint32_t Version = peekU32(Bytes.data() + 4);
  if (Version != FormatVersion)
    return Result<ArchiveReader>::error(
        "unsupported format version " + std::to_string(Version) +
        " (expected " + std::to_string(FormatVersion) + ")");
  uint32_t Kind = peekU32(Bytes.data() + 8);
  if (Kind != static_cast<uint32_t>(ExpectedKind))
    return Result<ArchiveReader>::error(
        "archive kind mismatch: found " + std::to_string(Kind) +
        ", expected " +
        std::to_string(static_cast<uint32_t>(ExpectedKind)));
  uint64_t PayloadSize = peekU64(Bytes.data() + 12);
  if (PayloadSize != Bytes.size() - HeaderSize - TrailerSize)
    return Result<ArchiveReader>::error(
        "archive truncated: header promises " +
        std::to_string(PayloadSize) + " payload bytes, file carries " +
        std::to_string(Bytes.size() - HeaderSize - TrailerSize));
  uint64_t Stored = peekU64(Bytes.data() + HeaderSize + PayloadSize);
  uint64_t Actual = fnv1a64(Bytes.data(), HeaderSize + PayloadSize);
  if (Stored != Actual)
    return Result<ArchiveReader>::error(
        "checksum mismatch: archive is corrupted");

  ArchiveReader R;
  R.Data.assign(Bytes.begin() + HeaderSize,
                Bytes.begin() + HeaderSize + PayloadSize);
  return R;
}

bool ArchiveReader::checkAvailable(size_t Bytes, const char *What) {
  if (!ok())
    return false;
  if (Data.size() - Pos < Bytes) {
    fail(std::string("archive underrun reading ") + What);
    return false;
  }
  return true;
}

void ArchiveReader::fail(std::string Message) {
  if (Error.empty())
    Error = std::move(Message);
  Pos = Data.size();
}

uint8_t ArchiveReader::readU8() {
  if (!checkAvailable(1, "u8"))
    return 0;
  return Data[Pos++];
}

uint32_t ArchiveReader::readU32() {
  if (!checkAvailable(4, "u32"))
    return 0;
  uint32_t V = peekU32(Data.data() + Pos);
  Pos += 4;
  return V;
}

uint64_t ArchiveReader::readU64() {
  if (!checkAvailable(8, "u64"))
    return 0;
  uint64_t V = peekU64(Data.data() + Pos);
  Pos += 8;
  return V;
}

float ArchiveReader::readF32() {
  uint32_t Bits = readU32();
  float V;
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

double ArchiveReader::readF64() {
  uint64_t Bits = readU64();
  double V;
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

std::string ArchiveReader::readString() {
  uint64_t Size = readU64();
  if (!checkAvailable(Size, "string"))
    return std::string();
  std::string S(reinterpret_cast<const char *>(Data.data() + Pos), Size);
  Pos += Size;
  return S;
}

std::vector<float> ArchiveReader::readF32Vector() {
  uint64_t Count = readU64();
  // Divide instead of multiply: a corrupt count must not overflow the
  // bounds check into a huge allocation.
  if (!ok() || Count > (Data.size() - Pos) / 4) {
    fail("archive underrun reading float vector");
    return {};
  }
  std::vector<float> V;
  V.reserve(Count);
  for (uint64_t I = 0; I < Count; ++I)
    V.push_back(readF32());
  return V;
}

std::vector<double> ArchiveReader::readF64Vector() {
  uint64_t Count = readU64();
  if (!ok() || Count > (Data.size() - Pos) / 8) {
    fail("archive underrun reading double vector");
    return {};
  }
  std::vector<double> V;
  V.reserve(Count);
  for (uint64_t I = 0; I < Count; ++I)
    V.push_back(readF64());
  return V;
}

Status ArchiveReader::finish() const {
  if (!ok())
    return Status::error(Error);
  if (Pos != Data.size())
    return Status::error("archive has " + std::to_string(Data.size() - Pos) +
                         " unconsumed payload bytes (schema mismatch)");
  return Status();
}

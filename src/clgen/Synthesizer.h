//===- clgen/Synthesizer.h - Benchmark synthesis loop ------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthesis loop of section 4.3: repeatedly sample the language
/// model, pass each candidate through the same rejection filter used for
/// corpus assembly, normalise and deduplicate survivors. The result is
/// an unbounded stream of compilable synthetic benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_CLGEN_SYNTHESIZER_H
#define CLGEN_CLGEN_SYNTHESIZER_H

#include "clgen/Sampler.h"
#include "corpus/RejectionFilter.h"
#include "vm/Bytecode.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace clgen {
namespace core {

struct SynthesisOptions {
  /// Stop after this many accepted, unique kernels.
  size_t TargetKernels = 100;
  /// Give up after this many raw samples (0 = 100x target).
  size_t MaxAttempts = 0;
  /// Argument specification; nullopt = free mode.
  std::optional<ArgSpec> Spec = ArgSpec::figure6();
  SampleOptions Sampling;
  uint64_t Seed = 0xC17E9;
  /// Worker threads sampling + filtering candidates (1 = serial in the
  /// calling thread, 0 = hardware concurrency). Results are bit-identical
  /// for every worker count: each candidate attempt draws from its own
  /// counter-keyed RNG stream (Rng::split of the attempt index) and the
  /// accept/dedupe stage consumes candidates in attempt order, so
  /// scheduling can never reorder outputs. Requires the model to support
  /// clone(); models that do not are sampled serially.
  unsigned Workers = 1;
  /// Candidate attempts dispatched per parallel wave (0 = auto). Larger
  /// waves amortise fan-out overhead but speculate further past the
  /// target; speculative surplus is discarded, never counted.
  size_t WaveSize = 0;
};

struct SynthesizedKernel {
  /// Normalised source text.
  std::string Source;
  vm::CompiledKernel Kernel;
};

struct SynthesisStats {
  size_t Attempts = 0;
  size_t IncompleteSamples = 0; // Length cap / premature end-of-text.
  size_t RejectedByFilter = 0;
  size_t Duplicates = 0;
  size_t Accepted = 0;

  double acceptanceRate() const {
    return Attempts == 0
               ? 0.0
               : static_cast<double>(Accepted) /
                     static_cast<double>(Attempts);
  }
};

struct SynthesisResult {
  std::vector<SynthesizedKernel> Kernels;
  SynthesisStats Stats;
};

/// Runs the sample -> filter -> normalise -> dedupe loop against
/// \p Model.
SynthesisResult synthesizeKernels(model::LanguageModel &Model,
                                  const SynthesisOptions &Opts);

/// Called once per accepted kernel, in accept order (kernel 0 first),
/// from the accept stage's thread. \p AcceptIndex is the kernel's
/// position in the final SynthesisResult::Kernels vector. The sink may
/// block (e.g. on a bounded channel); synthesis pauses with it, which
/// is exactly the back-pressure contract of the streaming pipeline.
using AcceptSink =
    std::function<void(size_t AcceptIndex, const SynthesizedKernel &)>;

/// Streaming variant: identical result (bit-identical kernels and stats
/// for any worker count / wave size), but every accepted kernel is also
/// handed to \p Sink the moment the in-order accept stage admits it, so
/// downstream stages can overlap with the remaining synthesis instead
/// of waiting behind a phase barrier.
SynthesisResult synthesizeKernels(model::LanguageModel &Model,
                                  const SynthesisOptions &Opts,
                                  const AcceptSink &Sink);

/// The synthesis loop as a resumable object: the sampling cursor, the
/// dedup set and the stats survive between calls, so a caller that
/// discovers too late that some accepted kernels were unusable (e.g.
/// they failed measurement) can ask for replacements — and gets exactly
/// the kernels a single larger run would have produced, because
/// candidate generation is a pure function of the attempt index and the
/// accept stage consumes attempts in order. synthesizeKernels() is a
/// thin wrapper over one extendTo() call; the refill loop in
/// core::synthesizeAndMeasure makes several.
///
/// Not thread-safe; one engine serves one synthesis stream.
class SynthesisEngine {
public:
  /// \p Model must outlive the engine. Opts.TargetKernels is ignored —
  /// targets are per extendTo() call; everything else (seed, sampling,
  /// workers, MaxAttempts) binds at construction.
  SynthesisEngine(model::LanguageModel &Model, const SynthesisOptions &Opts);
  ~SynthesisEngine();
  SynthesisEngine(const SynthesisEngine &) = delete;
  SynthesisEngine &operator=(const SynthesisEngine &) = delete;

  /// Grows the accepted-kernel set to \p CumTarget kernels (cumulative,
  /// not incremental — extendTo(N) is idempotent once N is reached),
  /// streaming each NEW accept through \p Sink in accept order. Returns
  /// the number of kernels accepted so far; less than \p CumTarget only
  /// when the attempt budget ran dry (exhausted()).
  size_t extendTo(size_t CumTarget, const AcceptSink &Sink = AcceptSink());

  /// True once the attempt budget (MaxAttempts) is spent; further
  /// extendTo() calls cannot make progress.
  bool exhausted() const;

  const SynthesisStats &stats() const;
  const std::vector<SynthesizedKernel> &kernels() const;
  /// Moves the accepted kernels out (the engine keeps its stats and
  /// cursor, but kernels() is empty afterwards — call last).
  std::vector<SynthesizedKernel> takeKernels();

private:
  struct Impl;
  std::unique_ptr<Impl> P;
};

} // namespace core
} // namespace clgen

#endif // CLGEN_CLGEN_SYNTHESIZER_H

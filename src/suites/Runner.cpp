//===- suites/Runner.cpp - Catalogue measurement harness ----------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "suites/Runner.h"

#include "features/Features.h"
#include "vm/Compiler.h"

#include <cstdio>

using namespace clgen;
using namespace clgen::suites;

std::vector<predict::Observation>
suites::measureCatalogue(const std::vector<BenchmarkKernel> &Catalogue,
                         const runtime::Platform &P,
                         const RunnerOptions &Opts) {
  std::vector<predict::Observation> Out;
  Out.reserve(Catalogue.size() * 2);

  for (const BenchmarkKernel &BK : Catalogue) {
    auto Compiled = vm::compileFirstKernel(BK.Source);
    if (!Compiled.ok()) {
      if (Opts.SkipFailures) {
        std::fprintf(stderr, "warning: %s/%s %s does not compile: %s\n",
                     BK.Suite.c_str(), BK.Benchmark.c_str(),
                     BK.KernelName.c_str(),
                     Compiled.errorMessage().c_str());
        continue;
      }
      continue;
    }
    const vm::CompiledKernel &Kernel = Compiled.get();
    features::StaticFeatures Static =
        features::extractStaticFeatures(Kernel);

    for (const DatasetSpec &DS : BK.Datasets) {
      runtime::DriverOptions DOpts;
      DOpts.GlobalSize = DS.GlobalSize;
      DOpts.LocalSize = DS.LocalSize;
      DOpts.MaxSimulatedGroups = Opts.MaxSimulatedGroups;
      DOpts.Seed = Opts.Seed ^ (Out.size() * 0x9E3779B9ull);
      auto M = runtime::runBenchmark(Kernel, P, DOpts);
      if (!M.ok()) {
        if (Opts.SkipFailures) {
          std::fprintf(stderr, "warning: %s/%s %s [%s] failed: %s\n",
                       BK.Suite.c_str(), BK.Benchmark.c_str(),
                       BK.KernelName.c_str(), DS.Name.c_str(),
                       M.errorMessage().c_str());
          continue;
        }
        continue;
      }
      predict::Observation O;
      O.Suite = BK.Suite;
      O.Benchmark = BK.Benchmark;
      O.Kernel = BK.KernelName;
      O.Dataset = DS.Name;
      O.Raw.Static = Static;
      O.Raw.TransferBytes =
          static_cast<double>(M.get().Transfer.total());
      O.Raw.WgSize = static_cast<double>(M.get().GlobalSize);
      O.CpuTime = M.get().CpuTime;
      O.GpuTime = M.get().GpuTime;
      Out.push_back(std::move(O));
    }
  }
  return Out;
}

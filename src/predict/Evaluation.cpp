//===- predict/Evaluation.cpp - Model training & evaluation -------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "predict/Evaluation.h"

#include "support/Stats.h"

#include <cassert>
#include <map>

using namespace clgen;
using namespace clgen::predict;

std::vector<double> predict::featureVector(const Observation &O,
                                           FeatureSetKind Kind) {
  switch (Kind) {
  case FeatureSetKind::Grewe:
    return features::greweFeatureVector(O.Raw);
  case FeatureSetKind::Extended:
    return features::extendedFeatureVector(O.Raw);
  }
  return {};
}

std::vector<int>
predict::trainAndPredict(const std::vector<Observation> &Train,
                         const std::vector<Observation> &Test,
                         FeatureSetKind Kind, TreeOptions Opts) {
  std::vector<std::vector<double>> X;
  std::vector<int> Y;
  X.reserve(Train.size());
  Y.reserve(Train.size());
  for (const Observation &O : Train) {
    X.push_back(featureVector(O, Kind));
    Y.push_back(O.label());
  }
  DecisionTree Tree(Opts);
  Tree.fit(X, Y);
  std::vector<int> Out;
  Out.reserve(Test.size());
  for (const Observation &O : Test)
    Out.push_back(Tree.predict(featureVector(O, Kind)));
  return Out;
}

int predict::staticBestDevice(const std::vector<Observation> &Obs) {
  double CpuTotal = 0.0, GpuTotal = 0.0;
  for (const Observation &O : Obs) {
    CpuTotal += O.CpuTime;
    GpuTotal += O.GpuTime;
  }
  return GpuTotal < CpuTotal ? 1 : 0;
}

double predict::performanceRelativeToOracle(
    const std::vector<Observation> &Obs,
    const std::vector<int> &Predictions) {
  assert(Obs.size() == Predictions.size());
  if (Obs.empty())
    return 0.0;
  std::vector<double> Ratios;
  Ratios.reserve(Obs.size());
  for (size_t I = 0; I < Obs.size(); ++I)
    Ratios.push_back(Obs[I].oracleTime() / Obs[I].timeFor(Predictions[I]));
  return geomean(Ratios);
}

std::vector<double>
predict::perObservationSpeedup(const std::vector<Observation> &Obs,
                               const std::vector<int> &Predictions,
                               int StaticLabel) {
  assert(Obs.size() == Predictions.size());
  std::vector<double> Speedups;
  Speedups.reserve(Obs.size());
  for (size_t I = 0; I < Obs.size(); ++I)
    Speedups.push_back(Obs[I].timeFor(StaticLabel) /
                       Obs[I].timeFor(Predictions[I]));
  return Speedups;
}

double predict::speedupOverStatic(const std::vector<Observation> &Obs,
                                  const std::vector<int> &Predictions,
                                  int StaticLabel) {
  if (Obs.empty())
    return 0.0;
  return geomean(perObservationSpeedup(Obs, Predictions, StaticLabel));
}

double predict::accuracy(const std::vector<Observation> &Obs,
                         const std::vector<int> &Predictions) {
  assert(Obs.size() == Predictions.size());
  if (Obs.empty())
    return 0.0;
  size_t Correct = 0;
  for (size_t I = 0; I < Obs.size(); ++I)
    Correct += Obs[I].label() == Predictions[I];
  return static_cast<double>(Correct) / static_cast<double>(Obs.size());
}

CrossValidationResult
predict::leaveOneBenchmarkOut(const std::vector<Observation> &Obs,
                              const std::vector<Observation> &ExtraTraining,
                              FeatureSetKind Kind, TreeOptions Opts) {
  CrossValidationResult Result;
  Result.Predictions.assign(Obs.size(), 0);

  // Group observation indices by benchmark.
  std::map<std::string, std::vector<size_t>> Groups;
  for (size_t I = 0; I < Obs.size(); ++I)
    Groups[Obs[I].Suite + "/" + Obs[I].Benchmark].push_back(I);

  for (const auto &[Group, TestIdx] : Groups) {
    std::vector<Observation> Train;
    Train.reserve(Obs.size() + ExtraTraining.size());
    for (size_t I = 0; I < Obs.size(); ++I) {
      const std::string Key = Obs[I].Suite + "/" + Obs[I].Benchmark;
      if (Key != Group)
        Train.push_back(Obs[I]);
    }
    Train.insert(Train.end(), ExtraTraining.begin(), ExtraTraining.end());

    std::vector<Observation> Test;
    Test.reserve(TestIdx.size());
    for (size_t I : TestIdx)
      Test.push_back(Obs[I]);

    std::vector<int> Preds = trainAndPredict(Train, Test, Kind, Opts);
    for (size_t K = 0; K < TestIdx.size(); ++K)
      Result.Predictions[TestIdx[K]] = Preds[K];
  }
  return Result;
}

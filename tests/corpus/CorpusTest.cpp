//===- tests/corpus/CorpusTest.cpp - shim / filter / corpus tests -------------===//

#include "corpus/Corpus.h"

#include "corpus/RejectionFilter.h"
#include "corpus/ShimHeader.h"
#include "githubsim/GithubSim.h"

#include <gtest/gtest.h>

using namespace clgen;
using namespace clgen::corpus;

//===----------------------------------------------------------------------===//
// Rejection filter (section 4.1)
//===----------------------------------------------------------------------===//

TEST(RejectionFilterTest, AcceptsValidKernel) {
  FilterResult R = filterContentFile(
      "__kernel void k(__global float* a, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { a[i] *= 2.0f; }\n"
      "}\n");
  EXPECT_TRUE(R.Accepted) << R.Detail;
  ASSERT_EQ(R.Kernels.size(), 1u);
  EXPECT_GE(R.Kernels[0].staticInstructionCount(), 3u);
}

TEST(RejectionFilterTest, RejectsSyntaxError) {
  FilterResult R = filterContentFile("__kernel void k(__global float* a");
  EXPECT_FALSE(R.Accepted);
  EXPECT_EQ(R.Reason, RejectionReason::Syntax);
}

TEST(RejectionFilterTest, RejectsUndeclaredIdentifier) {
  FilterResult R = filterContentFile(
      "__kernel void k(__global float* a) {\n"
      "  a[get_global_id(0)] = TOTALLY_UNKNOWN_NAME;\n"
      "}\n");
  EXPECT_FALSE(R.Accepted);
  EXPECT_EQ(R.Reason, RejectionReason::Semantic);
  EXPECT_NE(R.Detail.find("TOTALLY_UNKNOWN_NAME"), std::string::npos);
}

TEST(RejectionFilterTest, RejectsBelowInstructionFloor) {
  FilterResult R = filterContentFile("__kernel void k() {}");
  EXPECT_FALSE(R.Accepted);
  EXPECT_EQ(R.Reason, RejectionReason::TooFewInstructions);
}

TEST(RejectionFilterTest, RejectsFileWithoutKernel) {
  FilterResult R = filterContentFile(
      "float helper(float x) { return x * 2.0f; }\n");
  EXPECT_FALSE(R.Accepted);
  EXPECT_EQ(R.Reason, RejectionReason::NoKernel);
}

TEST(RejectionFilterTest, ShimRepairsKnownIdentifiers) {
  const char *Src =
      "__kernel void k(__global FLOAT_T* buf, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n && i < WG_SIZE) { buf[i] = buf[i] * ALPHA; }\n"
      "}\n";
  FilterOptions NoShim;
  NoShim.UseShim = false;
  EXPECT_FALSE(filterContentFile(Src, NoShim).Accepted);
  FilterOptions WithShim;
  EXPECT_TRUE(filterContentFile(Src, WithShim).Accepted);
}

TEST(RejectionFilterTest, ShimDoesNotBreakValidFiles) {
  const char *Src =
      "__kernel void k(__global float* a, const int count) {\n"
      "  int idx = get_global_id(0);\n"
      "  if (idx < count) { a[idx] += 1.0f; }\n"
      "}\n";
  EXPECT_TRUE(filterContentFile(Src, FilterOptions()).Accepted);
  FilterOptions NoShim;
  NoShim.UseShim = false;
  EXPECT_TRUE(filterContentFile(Src, NoShim).Accepted);
}

TEST(RejectionFilterTest, MultiKernelFileCompilesAllKernels) {
  FilterResult R = filterContentFile(
      "__kernel void a(__global float* x, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { x[i] += 1.0f; }\n"
      "}\n"
      "__kernel void b(__global float* x, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { x[i] *= 3.0f; }\n"
      "}\n");
  EXPECT_TRUE(R.Accepted);
  EXPECT_EQ(R.Kernels.size(), 2u);
}

TEST(ShimHeaderTest, ParsesStandalone) {
  // The shim itself must preprocess + parse cleanly.
  FilterResult R = filterContentFile(
      shimHeaderText() +
      "\n__kernel void k(__global FLOAT_T* a, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { a[i] = (FLOAT_T)(i) * EPSILON; }\n"
      "}\n");
  EXPECT_TRUE(R.Accepted) << R.Detail;
}

//===----------------------------------------------------------------------===//
// Corpus assembly
//===----------------------------------------------------------------------===//

TEST(CorpusTest, StatsAddUp) {
  githubsim::GithubSimOptions Opts;
  Opts.FileCount = 300;
  auto Files = githubsim::mineGithub(Opts);
  Corpus C = buildCorpus(Files);
  EXPECT_EQ(C.Stats.FilesIn, 300u);
  EXPECT_EQ(C.Stats.FilesAccepted + C.Stats.FilesRejected, 300u);
  size_t ByReason = 0;
  for (size_t N : C.Stats.RejectionsByReason)
    ByReason += N;
  EXPECT_EQ(ByReason, C.Stats.FilesRejected);
  EXPECT_GT(C.Stats.KernelCount, C.Stats.FilesAccepted / 2);
}

TEST(CorpusTest, ShimLowersDiscardRate) {
  githubsim::GithubSimOptions Opts;
  Opts.FileCount = 400;
  auto Files = githubsim::mineGithub(Opts);
  CorpusOptions NoShim;
  NoShim.Filter.UseShim = false;
  Corpus C0 = buildCorpus(Files, NoShim);
  Corpus C1 = buildCorpus(Files);
  // Paper: 40% -> 32%.
  EXPECT_GT(C0.Stats.discardRate(), C1.Stats.discardRate());
  EXPECT_NEAR(C0.Stats.discardRate(), 0.40, 0.06);
  EXPECT_NEAR(C1.Stats.discardRate(), 0.32, 0.06);
}

TEST(CorpusTest, RewritingShrinksVocabulary) {
  githubsim::GithubSimOptions Opts;
  Opts.FileCount = 300;
  auto Files = githubsim::mineGithub(Opts);
  Corpus C = buildCorpus(Files);
  // Paper: 84% identifier vocabulary reduction.
  EXPECT_GT(C.Stats.vocabularyReduction(), 0.5);
  EXPECT_LT(C.Stats.VocabularyAfter, C.Stats.VocabularyBefore);
}

TEST(CorpusTest, EntriesAreNormalisedAndCompilable) {
  githubsim::GithubSimOptions Opts;
  Opts.FileCount = 150;
  auto Files = githubsim::mineGithub(Opts);
  Corpus C = buildCorpus(Files);
  ASSERT_FALSE(C.Entries.empty());
  FilterOptions NoShim;
  NoShim.UseShim = false;
  for (const std::string &Entry : C.Entries) {
    // Normalised entries compile without the shim and contain no
    // comments or preprocessor directives.
    EXPECT_TRUE(filterContentFile(Entry, NoShim).Accepted) << Entry;
    EXPECT_EQ(Entry.find("/*"), std::string::npos);
    EXPECT_EQ(Entry.find("//"), std::string::npos);
    EXPECT_EQ(Entry.find('#'), std::string::npos);
  }
}

TEST(CorpusTest, EntriesAreDeduplicated) {
  githubsim::GithubSimOptions Opts;
  Opts.FileCount = 300;
  auto Files = githubsim::mineGithub(Opts);
  Corpus C = buildCorpus(Files);
  std::set<std::string> Unique(C.Entries.begin(), C.Entries.end());
  EXPECT_EQ(Unique.size(), C.Entries.size());
}

TEST(CorpusTest, DeterministicForSeed) {
  githubsim::GithubSimOptions Opts;
  Opts.FileCount = 100;
  auto A = buildCorpus(githubsim::mineGithub(Opts));
  auto B = buildCorpus(githubsim::mineGithub(Opts));
  EXPECT_EQ(A.Entries, B.Entries);
}

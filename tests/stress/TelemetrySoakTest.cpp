//===- tests/stress/TelemetrySoakTest.cpp - concurrent telemetry soak ---------===//
//
// Label "stress": hammers the metrics registry and the trace engine
// from many threads at once — registration races, sharded counter
// conservation, histogram merge conservation, and trace sessions
// cycling while recorders run. Built for TSan (see the build-tsan
// recipe in CMakeLists.txt): the telemetry hot paths must be provably
// race-free, since they run inside every pipeline worker.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

using namespace clgen;
using support::MetricsRegistry;
using support::Trace;
using support::TraceOptions;

TEST(TelemetrySoakTest, ConcurrentRegistrationAndCounting) {
  // All threads race to register the same names and count on them; the
  // registry must hand every thread the same handle and lose nothing.
  constexpr size_t Threads = 8, Names = 16, PerName = 5000;
  std::vector<std::thread> Ts;
  for (size_t T = 0; T < Threads; ++T)
    Ts.emplace_back([] {
      for (size_t N = 0; N < Names; ++N) {
        std::string Name = "soak.counter." + std::to_string(N);
        support::Counter &C = MetricsRegistry::counter(Name);
        for (size_t I = 0; I < PerName; ++I)
          C.inc();
      }
    });
  for (auto &T : Ts)
    T.join();
  for (size_t N = 0; N < Names; ++N) {
    const support::Counter *C = MetricsRegistry::findCounter(
        "soak.counter." + std::to_string(N));
    ASSERT_NE(C, nullptr);
    EXPECT_EQ(C->value(), Threads * PerName);
  }
}

TEST(TelemetrySoakTest, ConcurrentHistogramsAndGauges) {
  constexpr size_t Threads = 8, PerThread = 20000;
  support::Histogram &H = MetricsRegistry::histogram("soak.hist");
  support::Gauge &G = MetricsRegistry::gauge("soak.gauge");
  std::vector<std::thread> Ts;
  for (size_t T = 0; T < Threads; ++T)
    Ts.emplace_back([&H, &G, T] {
      for (size_t I = 0; I < PerThread; ++I) {
        H.record((T * PerThread + I) % 1024);
        G.add(1);
        G.add(-1);
      }
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(H.count(), Threads * PerThread);
  uint64_t BucketSum = 0;
  for (size_t B = 0; B < support::Histogram::NumBuckets; ++B)
    BucketSum += H.bucketCount(B);
  EXPECT_EQ(BucketSum, H.count()) << "bucket counts must conserve";
  EXPECT_EQ(G.value(), 0);
  EXPECT_GE(G.maxValue(), 1);
  // A racing renderText must not crash or tear lines (content checked
  // elsewhere; this is a shape check under contention).
  std::string Text = MetricsRegistry::renderText({});
  EXPECT_NE(Text.find("soak.hist"), std::string::npos);
}

TEST(TelemetrySoakTest, TraceRecordingUnderContention) {
  constexpr size_t Threads = 8, PerThread = 4000;
  Trace::start();
  std::vector<std::thread> Ts;
  for (size_t T = 0; T < Threads; ++T)
    Ts.emplace_back([] {
      for (size_t I = 0; I < PerThread; ++I) {
        uint64_t Now = support::telemetryNowNs();
        if (I % 3 == 0)
          Trace::instant("soak.instant", I);
        else
          Trace::span("soak.span", Now, 50, I);
      }
    });
  for (auto &T : Ts)
    T.join();
  Trace::stop();
  EXPECT_EQ(Trace::eventCount() + Trace::droppedCount(),
            Threads * PerThread)
      << "every record must be captured or counted as dropped";
  std::string Json = Trace::renderJson();
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
}

TEST(TelemetrySoakTest, SessionCyclingWhileRecording) {
  // start()/stop()/renderJson() race against recorders: events may land
  // or be dropped at session edges, but nothing may crash, deadlock, or
  // corrupt the export. The final quiescent session must be exact.
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Recorders;
  for (size_t T = 0; T < 4; ++T)
    Recorders.emplace_back([&Stop] {
      uint64_t I = 0;
      while (!Stop.load(std::memory_order_relaxed)) {
        Trace::span("cycle.span", support::telemetryNowNs(), 10, I++);
        Trace::instant("cycle.instant");
      }
    });
  TraceOptions Small;
  Small.EventsPerThread = 256;
  for (int Cycle = 0; Cycle < 50; ++Cycle) {
    Trace::start(Small);
    std::this_thread::yield();
    Trace::stop();
    Trace::renderJson();
    Trace::eventCount();
  }
  Stop.store(true, std::memory_order_relaxed);
  for (auto &T : Recorders)
    T.join();

  // Quiescent final session: exact accounting again.
  Trace::start();
  Trace::instant("cycle.final");
  Trace::stop();
  EXPECT_EQ(Trace::eventCount(), 1u);
  EXPECT_NE(Trace::renderJson().find("cycle.final"), std::string::npos);
}

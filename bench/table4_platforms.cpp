//===- bench/table4_platforms.cpp - Table 4: experimental platforms -----------===//
//
// Regenerates Table 4: the two CPU-GPU systems the paper evaluates on,
// as realised by the simulator's analytic device models.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

using namespace clgen;
using namespace clgen::runtime;

int main() {
  std::printf("%s",
              sectionBanner("Table 4: experimental platforms (simulated)")
                  .c_str());

  TextTable T;
  T.setHeader({"", "Intel CPU", "AMD GPU", "NVIDIA GPU"});
  DeviceModel Cpu = intelI7_3820();
  DeviceModel Amd = amdTahiti7970();
  DeviceModel Nv = nvidiaGtx970();

  auto Row = [&](const std::string &Name, auto Get) {
    T.addRow({Name, Get(Cpu), Get(Amd), Get(Nv)});
  };
  Row("Model", [](const DeviceModel &D) { return D.Name; });
  Row("Frequency", [](const DeviceModel &D) {
    return formatString("%.2f GHz", D.FrequencyGHz);
  });
  Row("#. Cores (parallel lanes)", [](const DeviceModel &D) {
    return formatString("%.0f", D.ParallelLanes);
  });
  Row("Coalesced access (cyc)", [](const DeviceModel &D) {
    return formatString("%.1f", D.CoalescedAccessCost);
  });
  Row("Uncoalesced access (cyc)", [](const DeviceModel &D) {
    return formatString("%.1f", D.UncoalescedAccessCost);
  });
  Row("Local access (cyc)", [](const DeviceModel &D) {
    return formatString("%.1f", D.LocalAccessCost);
  });
  Row("Divergence penalty", [](const DeviceModel &D) {
    return formatString("%.1fx", D.DivergencePenalty);
  });
  Row("PCIe transfer", [](const DeviceModel &D) {
    return D.TransferGBPerSec > 0
               ? formatString("%.0f GB/s", D.TransferGBPerSec)
               : std::string("zero-copy");
  });
  Row("Launch overhead", [](const DeviceModel &D) {
    return formatString("%.0f us", D.LaunchOverheadUs);
  });
  std::printf("%s", T.render().c_str());

  std::printf("\nPlatform A = {CPU, AMD Tahiti 7970} on OpenSUSE 12.3;\n"
              "Platform B = {CPU, NVIDIA GTX 970} on Ubuntu 16.04.\n"
              "Parameters are calibrated for first-order CPU/GPU tradeoffs\n"
              "(see src/runtime/Device.cpp), not absolute timings.\n");
  return 0;
}

//===- support/Stats.h - Summary statistics ---------------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Summary statistics used by the experiment harnesses: arithmetic and
/// geometric means, standard deviation, median and percentiles.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_SUPPORT_STATS_H
#define CLGEN_SUPPORT_STATS_H

#include <cstddef>
#include <vector>

namespace clgen {

/// Arithmetic mean. Returns 0 for an empty vector.
double mean(const std::vector<double> &Values);

/// Sample standard deviation (N-1 denominator). Returns 0 when fewer than
/// two values are given.
double stdev(const std::vector<double> &Values);

/// Geometric mean. All values must be positive. Returns 0 for an empty
/// vector.
double geomean(const std::vector<double> &Values);

/// Median (average of middle pair for even sizes). Returns 0 for an empty
/// vector.
double median(std::vector<double> Values);

/// Linear-interpolated percentile, \p P in [0, 100].
double percentile(std::vector<double> Values, double P);

/// Minimum / maximum. Both return 0 for an empty vector.
double minOf(const std::vector<double> &Values);
double maxOf(const std::vector<double> &Values);

} // namespace clgen

#endif // CLGEN_SUPPORT_STATS_H

//===- tests/runtime/PayloadCheckerTest.cpp - payloads + dynamic checker ------===//

#include "runtime/DynamicChecker.h"
#include "runtime/HostDriver.h"
#include "runtime/Payload.h"

#include "vm/Compiler.h"

#include <gtest/gtest.h>

using namespace clgen;
using namespace clgen::runtime;
using namespace clgen::vm;

namespace {

CompiledKernel compile(const std::string &Src) {
  auto R = compileFirstKernel(Src);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.errorMessage());
  return R.ok() ? R.take() : CompiledKernel();
}

const char *SaxpyKernel =
    "__kernel void saxpy(__global float* x, __global float* y,\n"
    "                    float alpha, const int n) {\n"
    "  int i = get_global_id(0);\n"
    "  if (i < n) { y[i] += alpha * x[i]; }\n"
    "}\n";

} // namespace

//===----------------------------------------------------------------------===//
// Payload generation (section 5.1 rules)
//===----------------------------------------------------------------------===//

TEST(PayloadTest, BuffersSizedToGlobalSize) {
  CompiledKernel K = compile(SaxpyKernel);
  Rng R(1);
  PayloadOptions Opts;
  Opts.GlobalSize = 512;
  Payload P = generatePayload(K, Opts, R);
  ASSERT_EQ(P.Buffers.size(), 2u);
  EXPECT_EQ(P.Buffers[0].elements(), 512u);
  EXPECT_EQ(P.Buffers[1].elements(), 512u);
}

TEST(PayloadTest, IntegralScalarGetsGlobalSize) {
  CompiledKernel K = compile(SaxpyKernel);
  Rng R(1);
  PayloadOptions Opts;
  Opts.GlobalSize = 2048;
  Payload P = generatePayload(K, Opts, R);
  // Arg order: buffer, buffer, float scalar (random), int scalar (= Sg).
  ASSERT_EQ(P.Args.size(), 4u);
  EXPECT_EQ(P.Args[3].K, KernelArg::Kind::Scalar);
  EXPECT_DOUBLE_EQ(P.Args[3].Scalar.x(), 2048.0);
  // The float scalar is random, not Sg.
  EXPECT_NE(P.Args[2].Scalar.x(), 2048.0);
}

TEST(PayloadTest, LocalPointerGetsDeviceOnlyBuffer) {
  CompiledKernel K = compile(
      "__kernel void k(__global float* a, __local float* tmp) {\n"
      "  int l = get_local_id(0);\n"
      "  tmp[l] = a[get_global_id(0)];\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  a[get_global_id(0)] = tmp[l];\n"
      "}\n");
  Rng R(1);
  PayloadOptions Opts;
  Opts.GlobalSize = 256;
  Opts.LocalSize = 64;
  Payload P = generatePayload(K, Opts, R);
  ASSERT_EQ(P.Args.size(), 2u);
  EXPECT_EQ(P.Args[1].K, KernelArg::Kind::LocalSize);
  // No host buffer allocated for the __local arg.
  EXPECT_EQ(P.Buffers.size(), 1u);
}

TEST(PayloadTest, TransferRulesReadWrite) {
  // x is read-only (in only), y is read-write (in and out).
  CompiledKernel K = compile(SaxpyKernel);
  Rng R(1);
  PayloadOptions Opts;
  Opts.GlobalSize = 1024;
  Payload P = generatePayload(K, Opts, R);
  // Both buffers in; only y comes back: 2 x 4KB in, 1 x 4KB out.
  EXPECT_EQ(P.Transfer.BytesIn, 2u * 1024 * 4);
  EXPECT_EQ(P.Transfer.BytesOut, 1u * 1024 * 4);
}

TEST(PayloadTest, WriteOnlyBufferNotTransferredIn) {
  CompiledKernel K = compile(
      "__kernel void k(__global float* in, __global float* out, "
      "const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { out[i] = in[i]; }\n"
      "}\n");
  Rng R(1);
  PayloadOptions Opts;
  Opts.GlobalSize = 1024;
  Payload P = generatePayload(K, Opts, R);
  EXPECT_EQ(P.Transfer.BytesIn, 1024u * 4);  // Only `in`.
  EXPECT_EQ(P.Transfer.BytesOut, 1024u * 4); // Only `out`.
}

TEST(PayloadTest, IntBuffersStayInBounds) {
  CompiledKernel K = compile(
      "__kernel void k(__global float* d, __global int* idx, const int n)"
      " {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { d[i] = d[idx[i]]; }\n"
      "}\n");
  Rng R(7);
  PayloadOptions Opts;
  Opts.GlobalSize = 128;
  Payload P = generatePayload(K, Opts, R);
  for (double V : P.Buffers[1].Data) {
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 128.0);
  }
}

TEST(PayloadTest, LocalSizePickedToDivideGlobal) {
  CompiledKernel K = compile(SaxpyKernel);
  Rng R(1);
  PayloadOptions Opts;
  Opts.GlobalSize = 100; // Not divisible by the default 64.
  Payload P = generatePayload(K, Opts, R);
  EXPECT_EQ(100 % P.LocalSize, 0u);
}

TEST(PayloadTest, AccessAnalysisClassifiesAtomics) {
  CompiledKernel K = compile(
      "__kernel void k(__global int* hist, __global int* d, const int n)"
      " {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { atomic_add(&hist[d[i] % n], 1); }\n"
      "}\n");
  auto Access = analyzeBufferAccess(K);
  ASSERT_EQ(Access.size(), 2u);
  EXPECT_TRUE(Access[0].Read);    // Atomic = read-modify-write.
  EXPECT_TRUE(Access[0].Written);
  EXPECT_TRUE(Access[1].Read);
  EXPECT_FALSE(Access[1].Written);
}

//===----------------------------------------------------------------------===//
// Dynamic checker (section 5.2)
//===----------------------------------------------------------------------===//

TEST(DynamicCheckerTest, AcceptsUsefulWork) {
  CompiledKernel K = compile(SaxpyKernel);
  Rng R(3);
  CheckResult CR = checkKernel(K, CheckOptions(), R);
  EXPECT_EQ(CR.Outcome, CheckOutcome::UsefulWork) << CR.Detail;
}

TEST(DynamicCheckerTest, RejectsNoOutput) {
  CompiledKernel K = compile(
      "__kernel void k(__global float* a, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  float x = a[i % n] * 2.0f;\n"
      "  x += 1.0f;\n"
      "}\n");
  Rng R(3);
  CheckResult CR = checkKernel(K, CheckOptions(), R);
  EXPECT_EQ(CR.Outcome, CheckOutcome::NoOutput);
  // Every rejection carries a diagnostic and a classified trap kind.
  EXPECT_FALSE(CR.Detail.empty());
  EXPECT_EQ(CR.Trap, TrapKind::CheckNoOutput);
}

TEST(DynamicCheckerTest, RejectsInputInsensitive) {
  CompiledKernel K = compile(
      "__kernel void k(__global float* a, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { a[i] = (float)i * 0.5f; }\n"
      "}\n");
  Rng R(3);
  CheckResult CR = checkKernel(K, CheckOptions(), R);
  EXPECT_EQ(CR.Outcome, CheckOutcome::InputInsensitive);
  EXPECT_FALSE(CR.Detail.empty());
  EXPECT_EQ(CR.Trap, TrapKind::CheckInputInsensitive);
}

TEST(DynamicCheckerTest, RejectsOutOfBounds) {
  CompiledKernel K = compile(
      "__kernel void k(__global float* a, const int n) {\n"
      "  a[get_global_id(0) + n] = 1.0f;\n"
      "}\n");
  Rng R(3);
  CheckResult CR = checkKernel(K, CheckOptions(), R);
  EXPECT_EQ(CR.Outcome, CheckOutcome::LaunchFailure);
  EXPECT_NE(CR.Detail.find("out-of-bounds"), std::string::npos);
  EXPECT_EQ(CR.Trap, TrapKind::OutOfBounds);
}

TEST(DynamicCheckerTest, RejectsTimeout) {
  CompiledKernel K = compile(
      "__kernel void k(__global float* a, const int n) {\n"
      "  while (1) { a[0] += 1.0f; }\n"
      "}\n");
  Rng R(3);
  CheckOptions Opts;
  Opts.MaxInstructions = 100000;
  CheckResult CR = checkKernel(K, Opts, R);
  EXPECT_EQ(CR.Outcome, CheckOutcome::LaunchFailure);
  EXPECT_NE(CR.Detail.find("timeout"), std::string::npos);
  EXPECT_EQ(CR.Trap, TrapKind::InstructionBudget);
}

TEST(DynamicCheckerTest, AcceptedKernelCarriesNoTrap) {
  CompiledKernel K = compile(SaxpyKernel);
  Rng R(3);
  CheckResult CR = checkKernel(K, CheckOptions(), R);
  ASSERT_EQ(CR.Outcome, CheckOutcome::UsefulWork) << CR.Detail;
  EXPECT_EQ(CR.Trap, TrapKind::None);
}

TEST(DynamicCheckerTest, FloatEpsilonToleratesRounding) {
  // Kernel output depends on input via a chain of math calls; re-running
  // on the identical payload must compare equal under epsilon.
  CompiledKernel K = compile(
      "__kernel void k(__global float* a, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { a[i] = sqrt(fabs(a[i])) * 3.14159f; }\n"
      "}\n");
  Rng R(9);
  EXPECT_EQ(checkKernel(K, CheckOptions(), R).Outcome,
            CheckOutcome::UsefulWork);
}

//===----------------------------------------------------------------------===//
// Host driver
//===----------------------------------------------------------------------===//

TEST(HostDriverTest, ProducesBothDeviceTimes) {
  DriverOptions Opts;
  Opts.GlobalSize = 4096;
  auto M = runBenchmark(SaxpyKernel, amdPlatform(), Opts);
  ASSERT_TRUE(M.ok()) << M.errorMessage();
  EXPECT_GT(M.get().CpuTime, 0.0);
  EXPECT_GT(M.get().GpuTime, 0.0);
  EXPECT_GT(M.get().Transfer.total(), 0u);
}

TEST(HostDriverTest, CompileFailureReported) {
  DriverOptions Opts;
  auto M = runBenchmark("__kernel void broken(__global float* a) { a[0] = "
                        "UNDEFINED_NAME; }",
                        amdPlatform(), Opts);
  ASSERT_FALSE(M.ok());
  EXPECT_NE(M.errorMessage().find("compile failed"), std::string::npos);
}

TEST(HostDriverTest, DynamicCheckGateWorks) {
  DriverOptions Opts;
  Opts.RunDynamicCheck = true;
  auto M = runBenchmark(
      "__kernel void constant_out(__global float* a, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { a[i] = 1.0f; }\n"
      "}\n",
      amdPlatform(), Opts);
  ASSERT_FALSE(M.ok());
  EXPECT_NE(M.errorMessage().find("input insensitive"), std::string::npos);
}

TEST(HostDriverTest, DeterministicAcrossRuns) {
  DriverOptions Opts;
  Opts.GlobalSize = 8192;
  auto M1 = runBenchmark(SaxpyKernel, nvidiaPlatform(), Opts);
  auto M2 = runBenchmark(SaxpyKernel, nvidiaPlatform(), Opts);
  ASSERT_TRUE(M1.ok());
  ASSERT_TRUE(M2.ok());
  EXPECT_DOUBLE_EQ(M1.get().CpuTime, M2.get().CpuTime);
  EXPECT_DOUBLE_EQ(M1.get().GpuTime, M2.get().GpuTime);
}

TEST(HostDriverTest, LargerPayloadTakesLonger) {
  DriverOptions Small, Large;
  Small.GlobalSize = 1024;
  Large.GlobalSize = 262144;
  auto MSmall = runBenchmark(SaxpyKernel, amdPlatform(), Small);
  auto MLarge = runBenchmark(SaxpyKernel, amdPlatform(), Large);
  ASSERT_TRUE(MSmall.ok());
  ASSERT_TRUE(MLarge.ok());
  EXPECT_GT(MLarge.get().CpuTime, MSmall.get().CpuTime);
  EXPECT_GT(MLarge.get().GpuTime, MSmall.get().GpuTime);
}

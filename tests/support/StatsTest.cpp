//===- tests/support/StatsTest.cpp - statistics tests -----------------------===//

#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace clgen;

TEST(StatsTest, MeanBasic) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(StatsTest, StdevKnownValue) {
  // Sample stdev of {2,4,4,4,5,5,7,9} is 2.138...
  EXPECT_NEAR(stdev({2, 4, 4, 4, 5, 5, 7, 9}), 2.13809, 1e-4);
  EXPECT_DOUBLE_EQ(stdev({5}), 0.0);
}

TEST(StatsTest, GeomeanKnownValue) {
  EXPECT_NEAR(geomean({1, 4}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2, 8}), 4.0, 1e-12);
}

TEST(StatsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
}

TEST(StatsTest, PercentileEndpoints) {
  std::vector<double> V = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(V, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(V, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(V, 50), 25.0);
}

TEST(StatsTest, MinMax) {
  EXPECT_DOUBLE_EQ(minOf({3, -1, 2}), -1.0);
  EXPECT_DOUBLE_EQ(maxOf({3, -1, 2}), 3.0);
}

//===- tests/stress/ChannelSoakTest.cpp - channel/pipeline soak tests ---------===//
//
// Long-running randomized soaks for the streaming pipeline's concurrency
// substrate. These build into their own binary (clgen_stress_tests)
// registered with ctest under the label "stress":
//
//   ctest -L stress                 # run only the soaks
//   ctest -LE stress                # tier-1 sweep without them
//
// They are also the intended TSan workload:
//
//   cmake -B build-tsan -S . -DCLGS_SANITIZE=thread
//   cmake --build build-tsan -j && (cd build-tsan && ctest -L stress)
//
//===----------------------------------------------------------------------===//

#include "support/Channel.h"

#include "clgen/Pipeline.h"
#include "githubsim/GithubSim.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

using namespace clgen;
using support::Channel;

TEST(ChannelSoakTest, RandomtopologySoakConservesEveryValue) {
  // Many rounds of randomized producer/consumer topologies over tiny
  // capacities (maximum contention on the full/empty edges), with
  // early close thrown in. Every round must conserve pushed values.
  Rng R(0x50AC0FFEE);
  for (size_t Round = 0; Round < 60; ++Round) {
    size_t Producers = 1 + R.bounded(6);
    size_t Consumers = 1 + R.bounded(6);
    size_t Capacity = 1 + R.bounded(4);
    size_t PerProducer = 200 + R.bounded(800);
    bool CloseEarly = R.chance(0.25);

    Channel<uint64_t> C(Capacity);
    std::atomic<uint64_t> PushedSum{0}, PoppedSum{0};
    std::atomic<size_t> PushedCount{0}, PoppedCount{0};

    std::vector<std::thread> ConsumerThreads;
    for (size_t T = 0; T < Consumers; ++T)
      ConsumerThreads.emplace_back([&] {
        while (auto V = C.pop()) {
          PoppedSum.fetch_add(*V);
          PoppedCount.fetch_add(1);
        }
      });
    std::vector<std::thread> ProducerThreads;
    for (size_t T = 0; T < Producers; ++T) {
      Rng Stream = R.split(Round * 64 + T);
      ProducerThreads.emplace_back([&, Stream]() mutable {
        for (size_t I = 0; I < PerProducer; ++I) {
          uint64_t V = 1 + Stream.bounded(1 << 16);
          if (Stream.chance(0.1)) {
            // Exercise the non-blocking edge too; divert to the
            // blocking path when full so the value is not lost.
            if (C.tryPush(V)) {
              PushedSum.fetch_add(V);
              PushedCount.fetch_add(1);
              continue;
            }
          }
          if (!C.push(V))
            return;
          PushedSum.fetch_add(V);
          PushedCount.fetch_add(1);
        }
      });
    }
    if (CloseEarly)
      C.close();
    for (auto &T : ProducerThreads)
      T.join();
    C.close();
    for (auto &T : ConsumerThreads)
      T.join();

    ASSERT_EQ(PushedCount.load(), PoppedCount.load()) << "round " << Round;
    ASSERT_EQ(PushedSum.load(), PoppedSum.load()) << "round " << Round;
  }
}

TEST(ChannelSoakTest, StreamingPipelineSoakStaysDeterministic) {
  // End-to-end soak of the actual streaming engine: one phased
  // reference, then repeated streaming runs under randomized scheduling
  // knobs (consumer counts, queue capacities, synthesis workers / wave
  // sizes). Every run must reproduce the reference byte for byte.
  githubsim::GithubSimOptions GOpts;
  GOpts.FileCount = 60;
  auto Files = githubsim::mineGithub(GOpts);
  core::PipelineOptions POpts;
  POpts.NGram.Order = 8;
  auto Pipeline = core::ClgenPipeline::train(Files, POpts);

  core::SynthesisOptions SOpts;
  SOpts.TargetKernels = 5;
  SOpts.MaxAttempts = 4000;
  runtime::DriverOptions DOpts;
  DOpts.GlobalSize = 2048;
  auto P = runtime::amdPlatform();

  auto Reference = Pipeline.synthesize(SOpts);
  std::vector<vm::CompiledKernel> Kernels;
  for (auto &K : Reference.Kernels)
    Kernels.push_back(K.Kernel);
  auto RefMeasurements = runtime::runBenchmarkBatch(Kernels, P, DOpts, 1);

  Rng R(0x57E55ED);
  for (size_t Round = 0; Round < 12; ++Round) {
    core::StreamingOptions Opts;
    Opts.Synthesis = SOpts;
    Opts.Synthesis.Workers = static_cast<unsigned>(1 + R.bounded(4));
    Opts.Synthesis.WaveSize = R.bounded(2) ? 4 + R.bounded(28) : 0;
    Opts.Driver = DOpts;
    Opts.MeasureWorkers = static_cast<unsigned>(1 + R.bounded(4));
    Opts.QueueCapacity = 1 + R.bounded(6);

    auto Out = Pipeline.synthesizeAndMeasure(P, Opts);
    ASSERT_EQ(Out.Kernels.size(), Reference.Kernels.size())
        << "round " << Round;
    for (size_t I = 0; I < Out.Kernels.size(); ++I)
      ASSERT_EQ(Out.Kernels[I].Source, Reference.Kernels[I].Source)
          << "round " << Round << " kernel " << I;
    ASSERT_EQ(Out.Measurements.size(), RefMeasurements.size());
    for (size_t I = 0; I < Out.Measurements.size(); ++I) {
      ASSERT_EQ(Out.Measurements[I].ok(), RefMeasurements[I].ok())
          << "round " << Round << " kernel " << I;
      if (!Out.Measurements[I].ok())
        continue;
      EXPECT_EQ(Out.Measurements[I].get().CpuTime,
                RefMeasurements[I].get().CpuTime);
      EXPECT_EQ(Out.Measurements[I].get().GpuTime,
                RefMeasurements[I].get().GpuTime);
      EXPECT_EQ(Out.Measurements[I].get().Counters.Instructions,
                RefMeasurements[I].get().Counters.Instructions);
    }
  }
}

//===- predict/DecisionTree.h - CART decision tree ---------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small CART-style decision-tree classifier (binary splits on feature
/// thresholds, Gini impurity). The Grewe et al. model is "a decision tree
/// constructed with supervised learning over a combination of static and
/// dynamic kernel features" (section 7.1); this is a faithful,
/// dependency-free stand-in for the C4.5 tree the original paper used.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_PREDICT_DECISIONTREE_H
#define CLGEN_PREDICT_DECISIONTREE_H

#include <cstddef>
#include <string>
#include <vector>

namespace clgen {
namespace store {
class ArchiveWriter;
class ArchiveReader;
} // namespace store
namespace predict {

struct TreeOptions {
  int MaxDepth = 10;
  size_t MinSamplesLeaf = 2;
  size_t MinSamplesSplit = 4;
};

/// Binary classifier over dense double feature vectors.
class DecisionTree {
public:
  explicit DecisionTree(TreeOptions Opts = TreeOptions()) : Opts(Opts) {}

  /// Fits the tree. \p X is row-major (one vector per example); \p Y
  /// holds 0/1 class labels. All rows must have equal width.
  void fit(const std::vector<std::vector<double>> &X,
           const std::vector<int> &Y);

  /// Predicts the class of one example. Must be trained first.
  int predict(const std::vector<double> &X) const;

  /// Fraction of class-1 training examples in the leaf \p X falls into.
  double predictProbability(const std::vector<double> &X) const;

  size_t nodeCount() const { return Nodes.size(); }
  bool trained() const { return !Nodes.empty(); }

  /// Text rendering of the tree (tests, debugging).
  std::string dump(const std::vector<std::string> &FeatureNames = {}) const;

  /// Appends the trained tree (options + node table) to an archive
  /// payload, field-by-field. Equal trees serialize to identical bytes,
  /// so the image doubles as the tree's content identity.
  void serialize(store::ArchiveWriter &W) const;

  /// Reads a tree written by serialize(). Malformed payloads — an
  /// implausible node count, a split child outside the table, a child
  /// index that does not point strictly forward (the build order's
  /// invariant, which is also what makes prediction walks terminate) —
  /// trip \p R's sticky error state and yield an untrained tree.
  static DecisionTree deserialize(store::ArchiveReader &R);

private:
  struct Node {
    bool Leaf = true;
    int Feature = -1;
    double Threshold = 0.0;
    int Left = -1;  // Feature < Threshold.
    int Right = -1; // Feature >= Threshold.
    int Label = 0;
    double Probability = 0.0; // P(label == 1) among training rows here.
  };

  TreeOptions Opts;
  std::vector<Node> Nodes;

  int build(const std::vector<std::vector<double>> &X,
            const std::vector<int> &Y, std::vector<size_t> &Rows,
            int Depth);
  const Node &leafFor(const std::vector<double> &X) const;
};

} // namespace predict
} // namespace clgen

#endif // CLGEN_PREDICT_DECISIONTREE_H

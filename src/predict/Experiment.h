//===- predict/Experiment.h - End-to-end predictive experiment ---*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's closing loop as one reusable stage: train CLgen on the
/// mined corpus, stream-synthesize + measure synthetic benchmarks
/// (core::synthesizeAndMeasure), measure the real benchmark suites,
/// cross-validate the device-mapping model with and without the
/// synthetic training rows (deterministic grouped K-fold), and render
/// the paper artifacts — the Table 1 cross-suite grid and the Figure 9
/// feature-match report.
///
/// Determinism contract: every parallel stage inside the experiment
/// (feature extraction, measurement fan-out, fold training) merges
/// order-preservingly or writes disjoint slots keyed by input index,
/// and the K-fold split is counter-keyed (predict/Evaluation.h), so an
/// ExperimentResult — including both report strings, byte for byte —
/// is a pure function of the SEMANTIC options only. Worker counts,
/// queue capacities and VM dispatch mode can never change a byte of
/// output. The golden tier (tests/golden/) pins this.
///
/// Warm starts: runOrLoadExperiment persists the observation set, the
/// trained model and the evaluation report as three store archives
/// (kinds 7/8/9, docs/STORE_FORMAT.md) under one experiment key, with
/// the standard lock-free-probe / lock-on-miss / re-probe protocol, so
/// a warm re-run performs zero training and zero measurement — the
/// provenance counters prove it.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_PREDICT_EXPERIMENT_H
#define CLGEN_PREDICT_EXPERIMENT_H

#include "clgen/Pipeline.h"
#include "predict/Evaluation.h"
#include "suites/Runner.h"
#include "support/Result.h"

#include <string>
#include <vector>

namespace clgen {
namespace predict {

/// Configuration of one end-to-end experiment. Fields marked SEMANTIC
/// are part of experimentKey(); the rest are scheduling-only and by
/// contract cannot change any output byte.
struct ExperimentOptions {
  /// SEMANTIC: size of the mined GitHub-sim snapshot the model trains
  /// on, and the n-gram order.
  size_t CorpusFiles = 100;
  int NGramOrder = 16;
  /// Synthesis + streaming measurement of the synthetic benchmarks.
  /// SEMANTIC: Synthesis.{TargetKernels, MaxAttempts, Spec, Sampling,
  /// Seed}, Driver.{GlobalSize, LocalSize, MaxSimulatedGroups,
  /// MaxInstructions, Seed, TrapDivZero, RunDynamicCheck} and
  /// RefillFailures. Scheduling-only: Synthesis.Workers/WaveSize,
  /// MeasureWorkers, QueueCapacity, Driver.{WatchdogMs, MaxRetries,
  /// RetryBackoffMs}.
  core::StreamingOptions Streaming;
  /// SEMANTIC: benchmark suites to measure (empty = all seven, in
  /// suites::suiteNames() order) and the catalogue runner knobs.
  std::vector<std::string> Suites;
  suites::RunnerOptions Runner;
  /// SEMANTIC: feature layout, tree hyper-parameters, fold count and
  /// fold-assignment seed. KFold.Workers is scheduling-only.
  FeatureSetKind Kind = FeatureSetKind::Grewe;
  TreeOptions Tree;
  KFoldOptions KFold;
  /// SEMANTIC: row cap of the Figure 9 report (overflow is summarised).
  size_t Fig9MaxRows = 32;
  /// Scheduling-only: feature-extraction threads (0 = hardware).
  unsigned Workers = 1;
};

/// Headline metrics of one experiment, baseline vs CLgen-augmented.
struct ExperimentMetrics {
  int StaticLabel = 0; // Best single-device mapping over the real obs.
  double BaselineAccuracy = 0.0;
  double BaselineOracle = 0.0;
  double BaselineSpeedup = 0.0;
  double AugmentedAccuracy = 0.0;
  double AugmentedOracle = 0.0;
  double AugmentedSpeedup = 0.0;
};

/// What this call actually did, for warm-start assertions: a warm
/// runOrLoadExperiment returns with both work counters at zero.
struct ExperimentProvenance {
  /// True when every artifact was served from the store.
  bool Warm = false;
  /// Decision trees fitted during this call (folds x 2 runs + the
  /// Table 1 grids + the final model).
  size_t TrainedModels = 0;
  /// Driver measurements executed during this call (real + synthetic).
  size_t MeasuredKernels = 0;
};

/// Everything one experiment produces.
struct ExperimentResult {
  /// Labelled observations: real benchmark suites and CLgen synthetic
  /// benchmarks (suite "clgen", never on any test side).
  std::vector<Observation> Real;
  std::vector<Observation> Synthetic;
  /// K-fold runs without / with the synthetic training rows.
  KFoldResult Baseline;
  KFoldResult Augmented;
  ExperimentMetrics Metrics;
  /// The paper artifacts (predict/Report.h renderers; byte-stable).
  std::string Table1;
  std::string Fig9;
  /// Final device-mapping model, trained on real + synthetic.
  DecisionTree Model;
  ExperimentProvenance Provenance;
};

/// The content key runOrLoadExperiment addresses its three archives by:
/// a digest of the training fingerprint (corpus content + model
/// options) and every SEMANTIC experiment option. Exposed for tests
/// and store tooling.
uint64_t experimentKey(const ExperimentOptions &Opts);

/// Runs the full experiment cold, with no store involvement.
ExperimentResult runExperiment(const ExperimentOptions &Opts);

/// Lock-free warm probe: loads the experiment from \p StoreDir if all
/// three archives (features, predictor, report) are present and intact
/// under experimentKey(Opts), else fails without doing any work. Never
/// takes a lock, never writes. This is the probe runOrLoadExperiment's
/// fast path uses, exposed for corruption tests.
Result<ExperimentResult> loadExperiment(const std::string &StoreDir,
                                        const ExperimentOptions &Opts);

/// Warm-start layer over runExperiment: probe (lock-free) -> on miss
/// acquire the advisory experiment lock, re-probe, compute, publish
/// the three archives atomically. Model training and synthetic
/// measurement inside a cold run additionally reuse the store's
/// model/corpus/result-cache/ledger layers under the same directory,
/// so even a half-warm store skips the expensive phases it can.
/// Concurrent cold runs of one configuration train exactly once; lock
/// timeouts degrade to duplicated byte-identical work, never an error.
/// Fails only when \p StoreDir cannot be created or written.
Result<ExperimentResult> runOrLoadExperiment(const std::string &StoreDir,
                                             const ExperimentOptions &Opts);

/// The pinned configuration of the golden regression tier: small
/// corpus, three suites, a handful of synthetic kernels — chosen so a
/// cold run completes in seconds while still exercising every stage.
/// Shared by tests/predict/ExperimentGoldenTest.cpp, the check_golden
/// fixture and the runner's --experiment default so they can never
/// drift apart.
ExperimentOptions goldenExperimentOptions();

} // namespace predict
} // namespace clgen

#endif // CLGEN_PREDICT_EXPERIMENT_H

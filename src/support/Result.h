//===- support/Result.h - Lightweight error handling ------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal Expected-style error handling without exceptions. A Result<T>
/// either carries a value or a diagnostic string; Status is the void
/// specialisation. This mirrors the role of llvm::Expected in a project
/// that forbids exceptions.
///
/// Failures additionally carry a TrapKind so callers can branch on the
/// failure class (retry transient faults, ledger deterministic ones)
/// without parsing the message. Errors created through the string-only
/// factory classify as TrapKind::Unknown.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_SUPPORT_RESULT_H
#define CLGEN_SUPPORT_RESULT_H

#include "support/Trap.h"

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace clgen {

/// A value-or-error carrier. Construct with a value for success or via
/// Result<T>::error for failure.
template <typename T> class Result {
public:
  /// Success constructor (implicit so that `return Value;` works).
  Result(T Value) : Value(std::move(Value)) {}

  /// Creates a failed result carrying \p Message, classified Unknown.
  static Result error(std::string Message) {
    return error(std::move(Message), TrapKind::Unknown);
  }

  /// Creates a failed result carrying \p Message classified as \p Kind.
  static Result error(std::string Message, TrapKind Kind) {
    Result R;
    R.Message = std::move(Message);
    R.Kind = Kind;
    return R;
  }

  /// Returns true when a value is present.
  bool ok() const { return Value.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Returns the carried value. Must only be called when ok().
  const T &get() const {
    assert(ok() && "accessing value of failed Result");
    return *Value;
  }
  T &get() {
    assert(ok() && "accessing value of failed Result");
    return *Value;
  }

  /// Moves the carried value out. Must only be called when ok().
  T take() {
    assert(ok() && "taking value of failed Result");
    return std::move(*Value);
  }

  /// Returns the diagnostic message. Must only be called when !ok().
  const std::string &errorMessage() const {
    assert(!ok() && "accessing error of successful Result");
    return Message;
  }

  /// Returns the failure class (TrapKind::None when ok()).
  TrapKind trap() const { return Kind; }

private:
  Result() = default;
  std::optional<T> Value;
  std::string Message;
  TrapKind Kind = TrapKind::None;
};

/// A success-or-error outcome for operations with no payload.
class Status {
public:
  /// Creates a success status.
  Status() = default;

  /// Creates a failed status carrying \p Message, classified Unknown.
  static Status error(std::string Message) {
    return error(std::move(Message), TrapKind::Unknown);
  }

  /// Creates a failed status carrying \p Message classified as \p Kind.
  static Status error(std::string Message, TrapKind Kind) {
    Status S;
    S.Failed = true;
    S.Message = std::move(Message);
    S.Kind = Kind;
    return S;
  }

  bool ok() const { return !Failed; }
  explicit operator bool() const { return ok(); }

  /// Returns the diagnostic message (empty on success).
  const std::string &errorMessage() const { return Message; }

  /// Returns the failure class (TrapKind::None when ok()).
  TrapKind trap() const { return Kind; }

private:
  bool Failed = false;
  std::string Message;
  TrapKind Kind = TrapKind::None;
};

} // namespace clgen

#endif // CLGEN_SUPPORT_RESULT_H

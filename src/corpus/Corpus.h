//===- corpus/Corpus.h - Language corpus assembly ----------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assembles the OpenCL language corpus of section 4.1: content files go
/// through the rejection filter (with or without the shim header) and
/// the accepted ones through the code rewriter, producing normalised
/// kernel texts plus the statistics the paper reports (line counts at
/// each stage, kernel count, discard rates, vocabulary reduction).
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_CORPUS_CORPUS_H
#define CLGEN_CORPUS_CORPUS_H

#include "corpus/RejectionFilter.h"

#include <string>
#include <vector>

namespace clgen {
namespace store {
class ArchiveWriter;
class ArchiveReader;
} // namespace store
namespace corpus {

/// One mined file, as fetched.
struct ContentFile {
  std::string Path;
  std::string Text;
};

struct CorpusOptions {
  FilterOptions Filter;
  /// Worker threads for content-file ingest (1 = serial in the calling
  /// thread, 0 = hardware concurrency). Purely a scheduling knob: the
  /// per-file stage (filter → rewrite → print) is a pure function of
  /// the file text, and the merge consumes shard results in file order,
  /// so the corpus is bit-identical for every worker count.
  unsigned Workers = 0;
  /// Content files per ingest shard (0 = auto). Exposed so the property
  /// tests can randomize shard boundaries; output is identical for any
  /// value by the same order-preserving-merge argument.
  size_t ShardSize = 0;
};

struct CorpusStats {
  size_t FilesIn = 0;
  size_t FilesAccepted = 0;
  size_t FilesRejected = 0;
  /// Rejections by reason, indexed by RejectionReason.
  size_t RejectionsByReason[7] = {0};
  size_t RawLines = 0;        // Over all input files.
  size_t CompilableLines = 0; // Over accepted files (post-preprocess).
  size_t FinalLines = 0;      // Over rewritten entries.
  size_t KernelCount = 0;
  size_t VocabularyBefore = 0; // Distinct identifiers pre-rewrite.
  size_t VocabularyAfter = 0;  // Distinct identifiers post-rewrite.

  double discardRate() const {
    return FilesIn == 0 ? 0.0
                        : static_cast<double>(FilesRejected) /
                              static_cast<double>(FilesIn);
  }
  double vocabularyReduction() const {
    return VocabularyBefore == 0
               ? 0.0
               : 1.0 - static_cast<double>(VocabularyAfter) /
                           static_cast<double>(VocabularyBefore);
  }
};

/// The assembled corpus: one normalised entry per accepted content file
/// (each entry may define several kernels).
struct Corpus {
  std::vector<std::string> Entries;
  CorpusStats Stats;

  /// Concatenation used for vocabulary building.
  std::string allText() const;

  /// Appends the snapshot (entries + statistics) to an archive payload.
  void serialize(store::ArchiveWriter &W) const;

  /// Rebuilds a snapshot from an archive; trips the reader's error
  /// state on schema violations.
  static Corpus deserialize(store::ArchiveReader &R);
};

/// Runs the full pipeline over \p Files.
Corpus buildCorpus(const std::vector<ContentFile> &Files,
                   const CorpusOptions &Opts = CorpusOptions());

} // namespace corpus
} // namespace clgen

#endif // CLGEN_CORPUS_CORPUS_H

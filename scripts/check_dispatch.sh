#!/usr/bin/env bash
#===- scripts/check_dispatch.sh - dispatch-parity proof at build level ---===//
#
# Configures and builds a nested tree with -DCLGS_FORCE_SWITCH_DISPATCH=ON
# (the portable switch VM loop every compiler gets, computed goto and
# threaded dispatch disabled) and runs the full test suite there.
# Passing proves the switch fallback carries the exact semantics the
# fast path is tested against everywhere else: the golden byte-identity
# tests, trap-classification suites and pipeline determinism tests must
# all pass with the reference loop doing the executing. Together with
# DispatchParityTest (which compares the strategies in-process) this
# pins both sides of the trap-parity contract. Registered as the ctest
# `check_dispatch` (label `dispatch`); run manually:
#
#   bash scripts/check_dispatch.sh <source-dir> <build-dir>
#
# The nested tree builds only the test binaries, and the nested ctest
# skips the stress label plus the failpoints/overhead/dispatch
# meta-fixtures so the nested-build recursion stays at one level.
#
# The switch-vs-threaded-vs-fused speed matrix is tracked in
# BENCH_perf.json (BM_InterpretKernel/dispatch:*).
#
#===----------------------------------------------------------------------===//

set -eu

SRC=${1:?usage: check_dispatch.sh <source-dir> <build-dir>}
BUILD=${2:?usage: check_dispatch.sh <source-dir> <build-dir>}

echo "check_dispatch: configuring $BUILD with -DCLGS_FORCE_SWITCH_DISPATCH=ON"
cmake -B "$BUILD" -S "$SRC" -DCLGS_FORCE_SWITCH_DISPATCH=ON \
      -DCLGS_NESTED_FIXTURE=ON >/dev/null

echo "check_dispatch: building test binaries"
cmake --build "$BUILD" -j --target clgen_tests clgen_stress_tests >/dev/null

echo "check_dispatch: running the suite on the portable switch loop"
# -LE must precede the bare -j: ctest's optional-value -j would
# otherwise swallow the -LE token and run the suite unfiltered.
(cd "$BUILD" && ctest --output-on-failure -LE 'stress|failpoints|overhead|dispatch' -j)

echo "check_dispatch: forced-switch build drifts by nothing"

//===- vm/Compiler.cpp - AST to bytecode lowering ------------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Compiler.h"

#include "ocl/Builtins.h"
#include "ocl/Casting.h"
#include "ocl/Parser.h"
#include "ocl/Sema.h"
#include "support/StringUtils.h"

#include <optional>
#include <unordered_map>

using namespace clgen;
using namespace clgen::ocl;
using namespace clgen::vm;

namespace {

/// Where a pointer-typed value lives: statically resolved provenance.
struct PointerInfo {
  MemSpace Space = MemSpace::Global;
  int Slot = 0;
  /// Register holding the element offset added to every index.
  uint16_t OffsetReg = 0;
};

/// What a name binds to during compilation.
struct Binding {
  bool IsPointer = false;
  QualType Ty;
  uint16_t Reg = 0;      // Scalar/vector value register.
  PointerInfo Ptr;       // Valid when IsPointer.
  /// Stride of this variable's value w.r.t. get_global_id(0); nullopt =
  /// unknown / nonlinear. Used for static coalescing classification.
  std::optional<int64_t> GidStride;
};

struct LoopContext {
  std::vector<size_t> BreakJumps;
  std::vector<size_t> ContinueJumps;
};

struct InlineContext {
  uint16_t ResultReg = 0;
  bool HasResult = false;
  std::vector<size_t> ReturnJumps;
};

class KernelCompiler {
public:
  KernelCompiler(const Program &P, const FunctionDecl &Kernel)
      : P(P), Kernel(Kernel) {}

  Result<CompiledKernel> run();

private:
  const Program &P;
  const FunctionDecl &Kernel;
  CompiledKernel K;
  bool Failed = false;
  std::string Diagnostic;
  std::vector<std::unordered_map<std::string, Binding>> Scopes;
  std::vector<LoopContext> Loops;
  std::vector<InlineContext> Inlines;
  int InlineDepth = 0;

  //===------------------------------------------------------------------===//
  // Infrastructure
  //===------------------------------------------------------------------===//

  uint16_t fail(int Line, const std::string &Message) {
    if (!Failed) {
      Failed = true;
      Diagnostic = formatString("line %d: %s", Line, Message.c_str());
    }
    return 0;
  }

  uint16_t newReg() {
    assert(K.RegisterCount < 0xFFFF && "register file exhausted");
    return K.RegisterCount++;
  }

  size_t emit(Instr I) {
    K.Code.push_back(I);
    return K.Code.size() - 1;
  }

  size_t emitJump(Opcode Op, uint16_t CondReg = 0) {
    Instr I;
    I.Op = Op;
    I.A = CondReg;
    I.Imm = -1; // Patched later.
    return emit(I);
  }

  void patchJump(size_t At, size_t Target) {
    K.Code[At].Imm = static_cast<int32_t>(Target);
  }

  size_t here() const { return K.Code.size(); }

  uint16_t emitConst(Value V) {
    K.Consts.push_back(V);
    uint16_t Dst = newReg();
    Instr I;
    I.Op = Opcode::LoadConst;
    I.Dst = Dst;
    I.Imm = static_cast<int32_t>(K.Consts.size() - 1);
    emit(I);
    return Dst;
  }

  uint16_t emitConstScalar(double X) { return emitConst(Value::scalar(X)); }

  int addMask(std::vector<uint8_t> Mask) {
    K.Masks.push_back(std::move(Mask));
    return static_cast<int>(K.Masks.size() - 1);
  }

  int addArgList(std::vector<uint16_t> Args) {
    K.ArgLists.push_back(std::move(Args));
    return static_cast<int>(K.ArgLists.size() - 1);
  }

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  Binding *lookup(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }

  void bind(const std::string &Name, Binding B) {
    assert(!Scopes.empty());
    Scopes.back()[Name] = std::move(B);
  }

  //===------------------------------------------------------------------===//
  // Coalescing analysis
  //===------------------------------------------------------------------===//

  /// Stride of \p E with respect to get_global_id(0). nullopt = nonlinear.
  std::optional<int64_t> gidStride(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::IntLiteral:
    case Expr::Kind::FloatLiteral:
      return 0;
    case Expr::Kind::VarRef: {
      Binding *B = lookup(cast<VarRefExpr>(E)->Name);
      if (!B)
        return 0;
      return B->GidStride;
    }
    case Expr::Kind::Call: {
      const auto *CE = cast<CallExpr>(E);
      if (CE->Callee == "get_global_id" && CE->Args.size() == 1) {
        if (const auto *IL = dyn_cast<IntLiteralExpr>(CE->Args[0].get()))
          return IL->Value == 0 ? std::optional<int64_t>(1)
                                : std::optional<int64_t>(0);
      }
      return std::nullopt;
    }
    case Expr::Kind::Cast:
      return gidStride(cast<CastExpr>(E)->Operand.get());
    case Expr::Kind::Unary: {
      const auto *UE = cast<UnaryExpr>(E);
      if (UE->Op == UnaryOp::Plus)
        return gidStride(UE->Operand.get());
      if (UE->Op == UnaryOp::Neg) {
        auto S = gidStride(UE->Operand.get());
        if (S)
          return -*S;
        return std::nullopt;
      }
      return std::nullopt;
    }
    case Expr::Kind::Binary: {
      const auto *BE = cast<BinaryExpr>(E);
      auto L = gidStride(BE->Lhs.get());
      auto R = gidStride(BE->Rhs.get());
      if (!L || !R)
        return std::nullopt;
      switch (BE->Op) {
      case BinaryOp::Add: return *L + *R;
      case BinaryOp::Sub: return *L - *R;
      case BinaryOp::Mul:
        // Linear only when one side is gid-invariant; we cannot know the
        // dynamic multiplier, so only 0 * x stays linear.
        if (*L == 0 && *R == 0)
          return 0;
        if (const auto *IL = dyn_cast<IntLiteralExpr>(BE->Lhs.get()))
          return IL->Value * *R;
        if (const auto *IR = dyn_cast<IntLiteralExpr>(BE->Rhs.get()))
          return *L * IR->Value;
        return std::nullopt;
      default:
        return *L == 0 && *R == 0 ? std::optional<int64_t>(0) : std::nullopt;
      }
    }
    default:
      return std::nullopt;
    }
  }

  bool isCoalescedIndex(const Expr *IndexE) {
    auto S = gidStride(IndexE);
    return S && (*S == 1 || *S == -1);
  }

  //===------------------------------------------------------------------===//
  // Pointer provenance
  //===------------------------------------------------------------------===//

  /// Resolves the provenance of a pointer-typed expression. Emits the
  /// offset-combination arithmetic as needed. Returns nullopt on failure.
  std::optional<PointerInfo> resolvePointer(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::VarRef: {
      Binding *B = lookup(cast<VarRefExpr>(E)->Name);
      if (!B || !B->IsPointer) {
        fail(E->line(), "cannot resolve pointer provenance");
        return std::nullopt;
      }
      return B->Ptr;
    }
    case Expr::Kind::Binary: {
      const auto *BE = cast<BinaryExpr>(E);
      // ptr + int / ptr - int / int + ptr.
      const Expr *PtrE = nullptr, *IntE = nullptr;
      bool Negate = false;
      if (BE->Op == BinaryOp::Add || BE->Op == BinaryOp::Sub) {
        if (BE->Lhs->Ty.Pointer) {
          PtrE = BE->Lhs.get();
          IntE = BE->Rhs.get();
          Negate = BE->Op == BinaryOp::Sub;
        } else if (BE->Rhs->Ty.Pointer && BE->Op == BinaryOp::Add) {
          PtrE = BE->Rhs.get();
          IntE = BE->Lhs.get();
        }
      }
      if (!PtrE) {
        fail(E->line(), "unsupported pointer expression");
        return std::nullopt;
      }
      auto Base = resolvePointer(PtrE);
      if (!Base)
        return std::nullopt;
      uint16_t Off = compileExpr(IntE);
      if (Failed)
        return std::nullopt;
      if (Negate) {
        uint16_t Neg = newReg();
        Instr I;
        I.Op = Opcode::UnOp;
        I.Aux = static_cast<uint8_t>(VmUnOp::Neg);
        I.Dst = Neg;
        I.A = Off;
        emit(I);
        Off = Neg;
      }
      uint16_t Sum = newReg();
      Instr I;
      I.Op = Opcode::BinOp;
      I.Aux = static_cast<uint8_t>(VmBinOp::Add);
      I.Dst = Sum;
      I.A = Base->OffsetReg;
      I.B = Off;
      emit(I);
      PointerInfo Out = *Base;
      Out.OffsetReg = Sum;
      return Out;
    }
    case Expr::Kind::Unary: {
      const auto *UE = cast<UnaryExpr>(E);
      if (UE->Op == UnaryOp::AddrOf) {
        // &lvalue where lvalue is buffer[index].
        if (const auto *IE = dyn_cast<IndexExpr>(UE->Operand.get())) {
          auto Base = resolvePointer(IE->Base.get());
          if (!Base)
            return std::nullopt;
          uint16_t Idx = compileExpr(IE->Index.get());
          if (Failed)
            return std::nullopt;
          uint16_t Sum = newReg();
          Instr I;
          I.Op = Opcode::BinOp;
          I.Aux = static_cast<uint8_t>(VmBinOp::Add);
          I.Dst = Sum;
          I.A = Base->OffsetReg;
          I.B = Idx;
          emit(I);
          PointerInfo Out = *Base;
          Out.OffsetReg = Sum;
          return Out;
        }
        fail(E->line(), "unsupported address-of target");
        return std::nullopt;
      }
      fail(E->line(), "unsupported pointer expression");
      return std::nullopt;
    }
    case Expr::Kind::Conditional:
      fail(E->line(), "pointer provenance must be static (no conditional "
                      "pointers)");
      return std::nullopt;
    default:
      fail(E->line(), "unsupported pointer expression");
      return std::nullopt;
    }
  }

  //===------------------------------------------------------------------===//
  // LValues
  //===------------------------------------------------------------------===//

  struct LValue {
    enum class Kind {
      VarReg,   // Whole variable register.
      MemElem,  // buffer[index].
      VarLanes, // Lanes of a variable register (swizzle target).
      MemLanes, // Lanes of a buffer element.
    };
    Kind K;
    Binding *Var = nullptr;    // VarReg / VarLanes.
    PointerInfo Ptr;           // MemElem / MemLanes.
    uint16_t IndexReg = 0;     // MemElem / MemLanes.
    bool CoalescedIdx = false; // MemElem / MemLanes.
    std::vector<uint8_t> Lanes; // VarLanes / MemLanes.
    QualType ValueTy;          // Type of the stored value.
  };

  std::optional<LValue> compileLValue(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::VarRef: {
      Binding *B = lookup(cast<VarRefExpr>(E)->Name);
      if (!B) {
        fail(E->line(), "unbound variable");
        return std::nullopt;
      }
      LValue LV;
      if (B->IsPointer && !B->Ty.Pointer) {
        fail(E->line(), "cannot assign to array variable");
        return std::nullopt;
      }
      LV.K = LValue::Kind::VarReg;
      LV.Var = B;
      LV.ValueTy = E->Ty;
      return LV;
    }
    case Expr::Kind::Index: {
      const auto *IE = cast<IndexExpr>(E);
      auto Ptr = resolvePointer(IE->Base.get());
      if (!Ptr)
        return std::nullopt;
      uint16_t Raw = compileExpr(IE->Index.get());
      if (Failed)
        return std::nullopt;
      LValue LV;
      LV.K = LValue::Kind::MemElem;
      LV.Ptr = *Ptr;
      LV.IndexReg = addOffset(Raw, Ptr->OffsetReg);
      LV.CoalescedIdx = isCoalescedIndex(IE->Index.get());
      LV.ValueTy = E->Ty;
      return LV;
    }
    case Expr::Kind::Member: {
      const auto *ME = cast<MemberExpr>(E);
      auto Base = compileLValue(ME->Base.get());
      if (!Base)
        return std::nullopt;
      if (Base->K == LValue::Kind::VarReg) {
        LValue LV = *Base;
        LV.K = LValue::Kind::VarLanes;
        LV.Lanes = ME->Lanes;
        LV.ValueTy = E->Ty;
        return LV;
      }
      if (Base->K == LValue::Kind::MemElem) {
        LValue LV = *Base;
        LV.K = LValue::Kind::MemLanes;
        LV.Lanes = ME->Lanes;
        LV.ValueTy = E->Ty;
        return LV;
      }
      fail(E->line(), "nested swizzle assignment is not supported");
      return std::nullopt;
    }
    case Expr::Kind::Unary: {
      const auto *UE = cast<UnaryExpr>(E);
      if (UE->Op == UnaryOp::Deref) {
        auto Ptr = resolvePointer(UE->Operand.get());
        if (!Ptr)
          return std::nullopt;
        LValue LV;
        LV.K = LValue::Kind::MemElem;
        LV.Ptr = *Ptr;
        LV.IndexReg = Ptr->OffsetReg;
        LV.CoalescedIdx = false;
        LV.ValueTy = E->Ty;
        return LV;
      }
      fail(E->line(), "invalid assignment target");
      return std::nullopt;
    }
    default:
      fail(E->line(), "invalid assignment target");
      return std::nullopt;
    }
  }

  /// Combines a base pointer offset register with an index register.
  /// Returns the index register unchanged when the offset register is the
  /// canonical zero register.
  uint16_t addOffset(uint16_t IndexReg, uint16_t OffsetReg) {
    if (OffsetReg == ZeroReg)
      return IndexReg;
    uint16_t Sum = newReg();
    Instr I;
    I.Op = Opcode::BinOp;
    I.Aux = static_cast<uint8_t>(VmBinOp::Add);
    I.Dst = Sum;
    I.A = IndexReg;
    I.B = OffsetReg;
    emit(I);
    return Sum;
  }

  uint16_t loadLValue(const LValue &LV) {
    switch (LV.K) {
    case LValue::Kind::VarReg:
      return LV.Var->Reg;
    case LValue::Kind::MemElem:
      return emitLoad(LV);
    case LValue::Kind::VarLanes: {
      uint16_t Dst = newReg();
      Instr I;
      I.Op = Opcode::Swizzle;
      I.Dst = Dst;
      I.A = LV.Var->Reg;
      I.Imm = addMask(LV.Lanes);
      emit(I);
      return Dst;
    }
    case LValue::Kind::MemLanes: {
      uint16_t Elem = emitLoad(LV);
      uint16_t Dst = newReg();
      Instr I;
      I.Op = Opcode::Swizzle;
      I.Dst = Dst;
      I.A = Elem;
      I.Imm = addMask(LV.Lanes);
      emit(I);
      return Dst;
    }
    }
    return 0;
  }

  uint16_t emitLoad(const LValue &LV) {
    uint16_t Dst = newReg();
    Instr I;
    I.Op = Opcode::LoadMem;
    I.Dst = Dst;
    I.A = LV.IndexReg;
    I.Imm = LV.Ptr.Slot;
    I.Space = LV.Ptr.Space;
    I.Coalesced = LV.CoalescedIdx;
    emit(I);
    K.AccessSites.push_back({LV.Ptr.Space, false, LV.CoalescedIdx});
    return Dst;
  }

  void storeLValue(const LValue &LV, uint16_t ValueReg) {
    switch (LV.K) {
    case LValue::Kind::VarReg: {
      Instr I;
      I.Op = Opcode::Mov;
      I.Dst = LV.Var->Reg;
      I.A = ValueReg;
      emit(I);
      LV.Var->GidStride = std::nullopt; // Conservatively invalidated.
      return;
    }
    case LValue::Kind::MemElem: {
      Instr I;
      I.Op = Opcode::StoreMem;
      I.A = LV.IndexReg;
      I.B = ValueReg;
      I.Imm = LV.Ptr.Slot;
      I.Space = LV.Ptr.Space;
      I.Coalesced = LV.CoalescedIdx;
      emit(I);
      K.AccessSites.push_back({LV.Ptr.Space, true, LV.CoalescedIdx});
      return;
    }
    case LValue::Kind::VarLanes: {
      Instr I;
      I.Op = Opcode::InsertLanes;
      I.Dst = LV.Var->Reg;
      I.B = ValueReg;
      I.Imm = addMask(LV.Lanes);
      emit(I);
      LV.Var->GidStride = std::nullopt;
      return;
    }
    case LValue::Kind::MemLanes: {
      // Read-modify-write of the buffer element.
      uint16_t Elem = emitLoad(LV);
      Instr Ins;
      Ins.Op = Opcode::InsertLanes;
      Ins.Dst = Elem;
      Ins.B = ValueReg;
      Ins.Imm = addMask(LV.Lanes);
      emit(Ins);
      Instr St;
      St.Op = Opcode::StoreMem;
      St.A = LV.IndexReg;
      St.B = Elem;
      St.Imm = LV.Ptr.Slot;
      St.Space = LV.Ptr.Space;
      St.Coalesced = LV.CoalescedIdx;
      emit(St);
      K.AccessSites.push_back({LV.Ptr.Space, true, LV.CoalescedIdx});
      return;
    }
    }
  }

  //===------------------------------------------------------------------===//
  // Width / type coercion
  //===------------------------------------------------------------------===//

  /// Broadcasts \p Reg (scalar) to \p Width lanes when needed.
  uint16_t coerceWidth(uint16_t Reg, uint8_t FromWidth, uint8_t ToWidth) {
    if (FromWidth == ToWidth || ToWidth == 1)
      return Reg;
    assert(FromWidth == 1 && "invalid width coercion");
    uint16_t Dst = newReg();
    Instr I;
    I.Op = Opcode::Broadcast;
    I.Dst = Dst;
    I.A = Reg;
    I.B = ToWidth;
    emit(I);
    return Dst;
  }

  /// Converts \p Reg from \p From to \p To (width broadcast + scalar-kind
  /// cast when integer semantics change).
  uint16_t coerce(uint16_t Reg, const QualType &From, const QualType &To) {
    uint16_t R = coerceWidth(Reg, From.VecWidth, To.VecWidth);
    // Float -> int needs truncation; int width changes need wrapping.
    bool NeedCast = (From.isFloating() && To.isInteger()) ||
                    (From.isInteger() && To.isInteger() && From.S != To.S);
    if (!NeedCast)
      return R;
    uint16_t Dst = newReg();
    Instr I;
    I.Op = Opcode::Cast;
    I.Dst = Dst;
    I.A = R;
    I.Aux = static_cast<uint8_t>(To.S);
    emit(I);
    return Dst;
  }

  //===------------------------------------------------------------------===//
  // Expressions
  //===------------------------------------------------------------------===//

  uint16_t compileExpr(const Expr *E) {
    if (Failed)
      return 0;
    switch (E->kind()) {
    case Expr::Kind::IntLiteral:
      return emitConstScalar(
          static_cast<double>(cast<IntLiteralExpr>(E)->Value));
    case Expr::Kind::FloatLiteral:
      return emitConstScalar(cast<FloatLiteralExpr>(E)->Value);
    case Expr::Kind::VarRef: {
      Binding *B = lookup(cast<VarRefExpr>(E)->Name);
      if (!B) {
        // Builtin constant.
        if (auto C = lookupBuiltinConstant(cast<VarRefExpr>(E)->Name))
          return emitConstScalar(C->Value);
        return fail(E->line(), "unbound variable '" +
                                   cast<VarRefExpr>(E)->Name + "'");
      }
      if (B->IsPointer)
        return fail(E->line(),
                    "pointer value used in non-pointer context");
      return B->Reg;
    }
    case Expr::Kind::Binary:
      return compileBinary(cast<BinaryExpr>(E));
    case Expr::Kind::Unary:
      return compileUnary(cast<UnaryExpr>(E));
    case Expr::Kind::Call:
      return compileCall(cast<CallExpr>(E));
    case Expr::Kind::Index: {
      const auto *IE = cast<IndexExpr>(E);
      auto LV = compileLValue(E);
      if (!LV)
        return 0;
      (void)IE;
      return loadLValue(*LV);
    }
    case Expr::Kind::Member: {
      const auto *ME = cast<MemberExpr>(E);
      uint16_t Base = compileExpr(ME->Base.get());
      if (Failed)
        return 0;
      uint16_t Dst = newReg();
      Instr I;
      I.Op = Opcode::Swizzle;
      I.Dst = Dst;
      I.A = Base;
      I.Imm = addMask(ME->Lanes);
      emit(I);
      return Dst;
    }
    case Expr::Kind::Cast: {
      const auto *CE = cast<CastExpr>(E);
      uint16_t Operand = compileExpr(CE->Operand.get());
      if (Failed)
        return 0;
      uint16_t Widened =
          coerceWidth(Operand, CE->Operand->Ty.VecWidth, CE->Target.VecWidth);
      uint16_t Dst = newReg();
      Instr I;
      I.Op = Opcode::Cast;
      I.Dst = Dst;
      I.A = Widened;
      I.Aux = static_cast<uint8_t>(CE->Target.S);
      emit(I);
      return Dst;
    }
    case Expr::Kind::VectorLiteral: {
      const auto *VL = cast<VectorLiteralExpr>(E);
      if (VL->Elements.size() == 1) {
        uint16_t Elem = compileExpr(VL->Elements[0].get());
        if (Failed)
          return 0;
        return coerceWidth(Elem, 1, VL->Target.VecWidth);
      }
      std::vector<uint16_t> Regs;
      Regs.reserve(VL->Elements.size());
      for (const auto &Elem : VL->Elements) {
        Regs.push_back(compileExpr(Elem.get()));
        if (Failed)
          return 0;
      }
      uint16_t Dst = newReg();
      Instr I;
      I.Op = Opcode::BuildVec;
      I.Dst = Dst;
      I.Imm = addArgList(std::move(Regs));
      emit(I);
      return Dst;
    }
    case Expr::Kind::Conditional: {
      const auto *CE = cast<ConditionalExpr>(E);
      uint16_t Cond = compileCondition(CE->Cond.get());
      if (Failed)
        return 0;
      uint16_t Dst = newReg();
      size_t ElseJump = emitJump(Opcode::Jz, Cond);
      uint16_t TrueR = compileExpr(CE->TrueExpr.get());
      if (Failed)
        return 0;
      TrueR = coerce(TrueR, CE->TrueExpr->Ty, E->Ty);
      emitMov(Dst, TrueR);
      size_t EndJump = emitJump(Opcode::Jmp);
      patchJump(ElseJump, here());
      uint16_t FalseR = compileExpr(CE->FalseExpr.get());
      if (Failed)
        return 0;
      FalseR = coerce(FalseR, CE->FalseExpr->Ty, E->Ty);
      emitMov(Dst, FalseR);
      patchJump(EndJump, here());
      K.BranchSites += 1;
      return Dst;
    }
    }
    return fail(E->line(), "unsupported expression");
  }

  void emitMov(uint16_t Dst, uint16_t Src) {
    if (Dst == Src)
      return;
    Instr I;
    I.Op = Opcode::Mov;
    I.Dst = Dst;
    I.A = Src;
    emit(I);
  }

  /// Compiles a branch condition to a scalar 0/1 register. Vector
  /// conditions reduce with "any lane nonzero".
  uint16_t compileCondition(const Expr *E) {
    uint16_t R = compileExpr(E);
    if (Failed)
      return 0;
    if (E->Ty.VecWidth > 1) {
      uint16_t Dst = newReg();
      Instr I;
      I.Op = Opcode::CallB;
      I.Aux = static_cast<uint8_t>(BuiltinOp::Any);
      I.Dst = Dst;
      I.Imm = addArgList({R});
      emit(I);
      return Dst;
    }
    return R;
  }

  static std::optional<VmBinOp> vmBinOpFor(BinaryOp Op, bool FloatTy) {
    switch (Op) {
    case BinaryOp::Add: return VmBinOp::Add;
    case BinaryOp::Sub: return VmBinOp::Sub;
    case BinaryOp::Mul: return VmBinOp::Mul;
    case BinaryOp::Div: return FloatTy ? VmBinOp::DivF : VmBinOp::DivI;
    case BinaryOp::Rem: return FloatTy ? VmBinOp::RemF : VmBinOp::RemI;
    case BinaryOp::Shl: return VmBinOp::Shl;
    case BinaryOp::Shr: return VmBinOp::Shr;
    case BinaryOp::BitAnd: return VmBinOp::And;
    case BinaryOp::BitOr: return VmBinOp::Or;
    case BinaryOp::BitXor: return VmBinOp::Xor;
    case BinaryOp::Lt: return VmBinOp::Lt;
    case BinaryOp::Le: return VmBinOp::Le;
    case BinaryOp::Gt: return VmBinOp::Gt;
    case BinaryOp::Ge: return VmBinOp::Ge;
    case BinaryOp::Eq: return VmBinOp::Eq;
    case BinaryOp::Ne: return VmBinOp::Ne;
    default: return std::nullopt;
    }
  }

  uint16_t compileBinary(const BinaryExpr *E) {
    if (isAssignmentOp(E->Op))
      return compileAssignment(E);

    // Short-circuit logical operators on scalars.
    if ((E->Op == BinaryOp::LAnd || E->Op == BinaryOp::LOr) &&
        E->Lhs->Ty.VecWidth == 1 && E->Rhs->Ty.VecWidth == 1) {
      uint16_t Dst = newReg();
      uint16_t L = compileCondition(E->Lhs.get());
      if (Failed)
        return 0;
      if (E->Op == BinaryOp::LAnd) {
        emitMov(Dst, emitConstScalar(0.0));
        size_t SkipJump = emitJump(Opcode::Jz, L);
        uint16_t R = compileCondition(E->Rhs.get());
        if (Failed)
          return 0;
        uint16_t Norm = normalizeBool(R);
        emitMov(Dst, Norm);
        patchJump(SkipJump, here());
      } else {
        emitMov(Dst, emitConstScalar(1.0));
        size_t SkipJump = emitJump(Opcode::Jnz, L);
        uint16_t R = compileCondition(E->Rhs.get());
        if (Failed)
          return 0;
        uint16_t Norm = normalizeBool(R);
        emitMov(Dst, Norm);
        patchJump(SkipJump, here());
      }
      K.BranchSites += 1;
      return Dst;
    }

    // Vector logical and/or: eager elementwise (no side-effect risk for
    // the kernels we accept; semantics match OpenCL's elementwise ops).
    if (E->Op == BinaryOp::LAnd || E->Op == BinaryOp::LOr) {
      uint16_t L = compileExpr(E->Lhs.get());
      uint16_t R = compileExpr(E->Rhs.get());
      if (Failed)
        return 0;
      uint16_t LN = normalizeBool(L);
      uint16_t RN = normalizeBool(R);
      uint16_t Dst = newReg();
      Instr I;
      I.Op = Opcode::BinOp;
      I.Aux = static_cast<uint8_t>(E->Op == BinaryOp::LAnd ? VmBinOp::MinI
                                                           : VmBinOp::MaxI);
      I.Dst = Dst;
      I.A = LN;
      I.B = RN;
      emit(I);
      return Dst;
    }

    uint16_t L = compileExpr(E->Lhs.get());
    uint16_t R = compileExpr(E->Rhs.get());
    if (Failed)
      return 0;

    // Pointer arithmetic reaches compileExpr only via resolvePointer;
    // pointer compares are unsupported at runtime for provenance reasons.
    if (E->Lhs->Ty.Pointer || E->Rhs->Ty.Pointer)
      return fail(E->line(), "pointer comparison is not supported");

    uint8_t Width = std::max(E->Lhs->Ty.VecWidth, E->Rhs->Ty.VecWidth);
    L = coerceWidth(L, E->Lhs->Ty.VecWidth, Width);
    R = coerceWidth(R, E->Rhs->Ty.VecWidth, Width);

    bool FloatTy = E->Lhs->Ty.isFloating() || E->Rhs->Ty.isFloating();
    auto Op = vmBinOpFor(E->Op, FloatTy);
    if (!Op)
      return fail(E->line(), "unsupported binary operator");
    uint16_t Dst = newReg();
    Instr I;
    I.Op = Opcode::BinOp;
    I.Aux = static_cast<uint8_t>(*Op);
    I.Dst = Dst;
    I.A = L;
    I.B = R;
    emit(I);
    return Dst;
  }

  /// Normalises a truthy value to exactly 0/1 per lane (x != 0).
  uint16_t normalizeBool(uint16_t Reg) {
    uint16_t Zero = emitConstScalar(0.0);
    uint16_t Dst = newReg();
    Instr I;
    I.Op = Opcode::BinOp;
    I.Aux = static_cast<uint8_t>(VmBinOp::Ne);
    I.Dst = Dst;
    I.A = Reg;
    I.B = Zero;
    emit(I);
    return Dst;
  }

  uint16_t compileAssignment(const BinaryExpr *E) {
    // Pointer assignment: rebinding a pointer variable's provenance.
    if (E->Lhs->Ty.Pointer) {
      if (E->Op != BinaryOp::Assign && E->Op != BinaryOp::AddAssign &&
          E->Op != BinaryOp::SubAssign)
        return fail(E->line(), "unsupported pointer assignment");
      const auto *VR = dyn_cast<VarRefExpr>(E->Lhs.get());
      if (!VR)
        return fail(E->line(), "unsupported pointer assignment target");
      Binding *B = lookup(VR->Name);
      if (!B || !B->IsPointer)
        return fail(E->line(), "unsupported pointer assignment target");
      if (E->Op == BinaryOp::Assign) {
        auto NewPtr = resolvePointer(E->Rhs.get());
        if (!NewPtr)
          return 0;
        // Provenance must stay on the same buffer once established unless
        // the variable was never read: we allow full rebinding here since
        // the binding carries provenance.
        B->Ptr = *NewPtr;
        return 0;
      }
      // p += n / p -= n.
      uint16_t Delta = compileExpr(E->Rhs.get());
      if (Failed)
        return 0;
      if (E->Op == BinaryOp::SubAssign) {
        uint16_t Neg = newReg();
        Instr NI;
        NI.Op = Opcode::UnOp;
        NI.Aux = static_cast<uint8_t>(VmUnOp::Neg);
        NI.Dst = Neg;
        NI.A = Delta;
        emit(NI);
        Delta = Neg;
      }
      uint16_t Sum = newReg();
      Instr I;
      I.Op = Opcode::BinOp;
      I.Aux = static_cast<uint8_t>(VmBinOp::Add);
      I.Dst = Sum;
      I.A = B->Ptr.OffsetReg;
      I.B = Delta;
      emit(I);
      B->Ptr.OffsetReg = Sum;
      return 0;
    }

    auto LV = compileLValue(E->Lhs.get());
    if (!LV)
      return 0;

    uint16_t Result;
    if (E->Op == BinaryOp::Assign) {
      uint16_t R = compileExpr(E->Rhs.get());
      if (Failed)
        return 0;
      Result = coerce(R, E->Rhs->Ty, LV->ValueTy);
    } else {
      uint16_t Old = loadLValue(*LV);
      uint16_t R = compileExpr(E->Rhs.get());
      if (Failed)
        return 0;
      uint8_t Width = LV->ValueTy.VecWidth;
      R = coerceWidth(R, E->Rhs->Ty.VecWidth, Width);
      bool FloatTy = LV->ValueTy.isFloating() || E->Rhs->Ty.isFloating();
      auto Op = vmBinOpFor(underlyingOp(E->Op), FloatTy);
      if (!Op)
        return fail(E->line(), "unsupported compound assignment");
      uint16_t Dst = newReg();
      Instr I;
      I.Op = Opcode::BinOp;
      I.Aux = static_cast<uint8_t>(*Op);
      I.Dst = Dst;
      I.A = Old;
      I.B = R;
      emit(I);
      Result = coerce(Dst, LV->ValueTy, LV->ValueTy);
    }
    storeLValue(*LV, Result);

    // Track gid-affinity for scalar variable assignments so coalescing
    // analysis can see through `int i = get_global_id(0); a[i] = ...`.
    if (LV->K == LValue::Kind::VarReg && E->Op == BinaryOp::Assign)
      LV->Var->GidStride = gidStride(E->Rhs.get());
    return Result;
  }

  uint16_t compileUnary(const UnaryExpr *E) {
    switch (E->Op) {
    case UnaryOp::Plus:
      return compileExpr(E->Operand.get());
    case UnaryOp::Neg:
    case UnaryOp::BitNot:
    case UnaryOp::LNot: {
      uint16_t A = compileExpr(E->Operand.get());
      if (Failed)
        return 0;
      uint16_t Dst = newReg();
      Instr I;
      I.Op = Opcode::UnOp;
      I.Aux = static_cast<uint8_t>(E->Op == UnaryOp::Neg ? VmUnOp::Neg
                                   : E->Op == UnaryOp::BitNot
                                       ? VmUnOp::BitNot
                                       : VmUnOp::LogicNot);
      I.Dst = Dst;
      I.A = A;
      emit(I);
      return Dst;
    }
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec: {
      // Pointer stepping: p++ advances the offset.
      if (E->Operand->Ty.Pointer) {
        const auto *VR = dyn_cast<VarRefExpr>(E->Operand.get());
        if (!VR)
          return fail(E->line(), "unsupported pointer increment");
        Binding *B = lookup(VR->Name);
        if (!B || !B->IsPointer)
          return fail(E->line(), "unsupported pointer increment");
        bool Inc = E->Op == UnaryOp::PreInc || E->Op == UnaryOp::PostInc;
        uint16_t One = emitConstScalar(Inc ? 1.0 : -1.0);
        uint16_t Sum = newReg();
        Instr I;
        I.Op = Opcode::BinOp;
        I.Aux = static_cast<uint8_t>(VmBinOp::Add);
        I.Dst = Sum;
        I.A = B->Ptr.OffsetReg;
        I.B = One;
        emit(I);
        B->Ptr.OffsetReg = Sum;
        return 0;
      }
      auto LV = compileLValue(E->Operand.get());
      if (!LV)
        return 0;
      uint16_t Old = loadLValue(*LV);
      bool Inc = E->Op == UnaryOp::PreInc || E->Op == UnaryOp::PostInc;
      bool Post = E->Op == UnaryOp::PostInc || E->Op == UnaryOp::PostDec;
      uint16_t OldCopy = Old;
      if (Post) {
        // Preserve the pre-increment value (Old may alias the variable's
        // own register).
        OldCopy = newReg();
        emitMov(OldCopy, Old);
      }
      uint16_t One = emitConstScalar(1.0);
      uint16_t NewVal = newReg();
      Instr I;
      I.Op = Opcode::BinOp;
      I.Aux = static_cast<uint8_t>(Inc ? VmBinOp::Add : VmBinOp::Sub);
      I.Dst = NewVal;
      I.A = Old;
      I.B = One;
      emit(I);
      storeLValue(*LV, NewVal);
      return Post ? OldCopy : NewVal;
    }
    case UnaryOp::Deref: {
      auto LV = compileLValue(E);
      if (!LV)
        return 0;
      return loadLValue(*LV);
    }
    case UnaryOp::AddrOf:
      return fail(E->line(), "address-of is only supported as an atomic "
                             "operand");
    }
    return fail(E->line(), "unsupported unary operator");
  }

  uint16_t compileCall(const CallExpr *E) {
    if (E->IsBuiltin)
      return compileBuiltinCall(E);

    // Inline the user function.
    FunctionDecl *Callee = P.findFunction(E->Callee);
    if (!Callee)
      return fail(E->line(), "call to unknown function");
    if (InlineDepth > 16)
      return fail(E->line(), "inline depth exceeded");

    pushScope();
    for (size_t I = 0; I < Callee->Params.size(); ++I) {
      const ParamDecl &Param = Callee->Params[I];
      const Expr *Arg = E->Args[I].get();
      if (Param.Ty.Pointer) {
        auto Ptr = resolvePointer(Arg);
        if (!Ptr) {
          popScope();
          return 0;
        }
        Binding B;
        B.IsPointer = true;
        B.Ty = Param.Ty;
        B.Ptr = *Ptr;
        bind(Param.Name, B);
      } else {
        uint16_t R = compileExpr(Arg);
        if (Failed) {
          popScope();
          return 0;
        }
        R = coerce(R, Arg->Ty, Param.Ty);
        // Copy into a fresh register: the callee may mutate its params.
        uint16_t Copy = newReg();
        emitMov(Copy, R);
        Binding B;
        B.Ty = Param.Ty;
        B.Reg = Copy;
        bind(Param.Name, B);
      }
    }

    InlineContext Ctx;
    Ctx.HasResult = !Callee->ReturnTy.isVoid();
    if (Ctx.HasResult)
      Ctx.ResultReg = newReg();
    Inlines.push_back(Ctx);
    ++InlineDepth;
    compileStmt(Callee->Body.get());
    --InlineDepth;
    InlineContext Done = Inlines.back();
    Inlines.pop_back();
    popScope();
    if (Failed)
      return 0;
    for (size_t Jump : Done.ReturnJumps)
      patchJump(Jump, here());
    return Done.HasResult ? Done.ResultReg : 0;
  }

  uint16_t compileBuiltinCall(const CallExpr *E) {
    auto Info = lookupBuiltin(E->Callee);
    assert(Info && "sema accepted an unknown builtin");

    switch (Info->Op) {
    case BuiltinOp::AtomicAdd: case BuiltinOp::AtomicSub:
    case BuiltinOp::AtomicInc: case BuiltinOp::AtomicDec:
    case BuiltinOp::AtomicMin: case BuiltinOp::AtomicMax:
    case BuiltinOp::AtomicXchg: {
      auto Ptr = resolvePointer(E->Args[0].get());
      if (!Ptr)
        return 0;
      uint16_t ValReg = 0;
      if (E->Args.size() > 1) {
        ValReg = compileExpr(E->Args[1].get());
        if (Failed)
          return 0;
      } else {
        ValReg = emitConstScalar(1.0);
      }
      uint16_t Dst = newReg();
      Instr I;
      I.Op = Opcode::Atomic;
      I.Aux = static_cast<uint8_t>(Info->Op);
      I.Dst = Dst;
      I.A = Ptr->OffsetReg;
      I.B = ValReg;
      I.Imm = Ptr->Slot;
      I.Space = Ptr->Space;
      emit(I);
      K.AccessSites.push_back({Ptr->Space, true, false});
      return Dst;
    }

    case BuiltinOp::VLoad: {
      uint16_t Off = compileExpr(E->Args[0].get());
      if (Failed)
        return 0;
      auto Ptr = resolvePointer(E->Args[1].get());
      if (!Ptr)
        return 0;
      // Element index = (ptrOffset + off * W).
      uint16_t WReg = emitConstScalar(Info->VectorWidth);
      uint16_t Scaled = newReg();
      Instr Mul;
      Mul.Op = Opcode::BinOp;
      Mul.Aux = static_cast<uint8_t>(VmBinOp::Mul);
      Mul.Dst = Scaled;
      Mul.A = Off;
      Mul.B = WReg;
      emit(Mul);
      uint16_t Index = addOffset(Scaled, Ptr->OffsetReg);
      uint16_t Dst = newReg();
      Instr I;
      I.Op = Opcode::VLoad;
      I.Dst = Dst;
      I.A = Index;
      I.Imm = Ptr->Slot;
      I.Space = Ptr->Space;
      I.WidthField = static_cast<uint8_t>(Info->VectorWidth);
      I.Coalesced = true; // Wide contiguous access.
      emit(I);
      K.AccessSites.push_back({Ptr->Space, false, true});
      return Dst;
    }
    case BuiltinOp::VStore: {
      uint16_t Val = compileExpr(E->Args[0].get());
      uint16_t Off = compileExpr(E->Args[1].get());
      if (Failed)
        return 0;
      auto Ptr = resolvePointer(E->Args[2].get());
      if (!Ptr)
        return 0;
      uint16_t WReg = emitConstScalar(Info->VectorWidth);
      uint16_t Scaled = newReg();
      Instr Mul;
      Mul.Op = Opcode::BinOp;
      Mul.Aux = static_cast<uint8_t>(VmBinOp::Mul);
      Mul.Dst = Scaled;
      Mul.A = Off;
      Mul.B = WReg;
      emit(Mul);
      uint16_t Index = addOffset(Scaled, Ptr->OffsetReg);
      Instr I;
      I.Op = Opcode::VStore;
      I.A = Index;
      I.B = Val;
      I.Imm = Ptr->Slot;
      I.Space = Ptr->Space;
      I.WidthField = static_cast<uint8_t>(Info->VectorWidth);
      I.Coalesced = true;
      emit(I);
      K.AccessSites.push_back({Ptr->Space, true, true});
      return 0;
    }

    case BuiltinOp::Barrier: {
      Instr I;
      I.Op = Opcode::Barrier;
      emit(I);
      K.HasBarrier = true;
      return 0;
    }
    case BuiltinOp::MemFence:
      return 0; // No-op under sequential interleaving.

    case BuiltinOp::Convert: {
      uint16_t A = compileExpr(E->Args[0].get());
      if (Failed)
        return 0;
      uint16_t Widened = coerceWidth(A, E->Args[0]->Ty.VecWidth,
                                     Info->ConvertTarget.VecWidth);
      uint16_t Dst = newReg();
      Instr I;
      I.Op = Opcode::Cast;
      I.Dst = Dst;
      I.A = Widened;
      I.Aux = static_cast<uint8_t>(Info->ConvertTarget.S);
      emit(I);
      return Dst;
    }

    default: {
      // Generic builtin: compile args, align widths, emit CallB.
      std::vector<uint16_t> Args;
      uint8_t Width = E->Ty.VecWidth;
      for (const auto &Arg : E->Args) {
        uint16_t R = compileExpr(Arg.get());
        if (Failed)
          return 0;
        if (Arg->Ty.VecWidth == 1 && Width > 1 &&
            widthSensitiveBuiltin(Info->Op))
          R = coerceWidth(R, 1, Width);
        Args.push_back(R);
      }
      uint16_t Dst = newReg();
      Instr I;
      I.Op = Opcode::CallB;
      I.Aux = static_cast<uint8_t>(Info->Op);
      I.Dst = Dst;
      I.Imm = addArgList(std::move(Args));
      emit(I);
      return Dst;
    }
    }
  }

  /// Builtins whose lanes must be pre-broadcast so all args share the
  /// result width (math ops); geometric reductions keep their own widths.
  static bool widthSensitiveBuiltin(BuiltinOp Op) {
    switch (Op) {
    case BuiltinOp::Dot:
    case BuiltinOp::Length:
    case BuiltinOp::Distance:
    case BuiltinOp::Any:
    case BuiltinOp::All:
      return false;
    default:
      return true;
    }
  }

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  void compileStmt(const Stmt *S) {
    if (Failed)
      return;
    switch (S->kind()) {
    case Stmt::Kind::Compound: {
      pushScope();
      for (const auto &Child : cast<CompoundStmt>(S)->Body)
        compileStmt(Child.get());
      popScope();
      return;
    }
    case Stmt::Kind::Decl:
      compileDecl(cast<DeclStmt>(S));
      return;
    case Stmt::Kind::Expr:
      compileExpr(cast<ExprStmt>(S)->E.get());
      return;
    case Stmt::Kind::If: {
      const auto *IS = cast<IfStmt>(S);
      uint16_t Cond = compileCondition(IS->Cond.get());
      if (Failed)
        return;
      K.BranchSites += 1;
      size_t ElseJump = emitJump(Opcode::Jz, Cond);
      compileStmt(IS->Then.get());
      if (IS->Else) {
        size_t EndJump = emitJump(Opcode::Jmp);
        patchJump(ElseJump, here());
        compileStmt(IS->Else.get());
        patchJump(EndJump, here());
      } else {
        patchJump(ElseJump, here());
      }
      return;
    }
    case Stmt::Kind::For: {
      const auto *FS = cast<ForStmt>(S);
      pushScope();
      if (FS->Init)
        compileStmt(FS->Init.get());
      size_t CondAt = here();
      size_t ExitJump = SIZE_MAX;
      if (FS->Cond) {
        uint16_t Cond = compileCondition(FS->Cond.get());
        if (Failed) {
          popScope();
          return;
        }
        K.BranchSites += 1;
        ExitJump = emitJump(Opcode::Jz, Cond);
      }
      Loops.emplace_back();
      compileStmt(FS->Body.get());
      size_t ContinueAt = here();
      if (FS->Step)
        compileExpr(FS->Step.get());
      Instr Back;
      Back.Op = Opcode::Jmp;
      Back.Imm = static_cast<int32_t>(CondAt);
      emit(Back);
      size_t EndAt = here();
      if (ExitJump != SIZE_MAX)
        patchJump(ExitJump, EndAt);
      for (size_t Jump : Loops.back().BreakJumps)
        patchJump(Jump, EndAt);
      for (size_t Jump : Loops.back().ContinueJumps)
        patchJump(Jump, ContinueAt);
      Loops.pop_back();
      popScope();
      return;
    }
    case Stmt::Kind::While: {
      const auto *WS = cast<WhileStmt>(S);
      size_t CondAt = here();
      uint16_t Cond = compileCondition(WS->Cond.get());
      if (Failed)
        return;
      K.BranchSites += 1;
      size_t ExitJump = emitJump(Opcode::Jz, Cond);
      Loops.emplace_back();
      compileStmt(WS->Body.get());
      Instr Back;
      Back.Op = Opcode::Jmp;
      Back.Imm = static_cast<int32_t>(CondAt);
      emit(Back);
      size_t EndAt = here();
      patchJump(ExitJump, EndAt);
      for (size_t Jump : Loops.back().BreakJumps)
        patchJump(Jump, EndAt);
      for (size_t Jump : Loops.back().ContinueJumps)
        patchJump(Jump, CondAt);
      Loops.pop_back();
      return;
    }
    case Stmt::Kind::Do: {
      const auto *DS = cast<DoStmt>(S);
      size_t BodyAt = here();
      Loops.emplace_back();
      compileStmt(DS->Body.get());
      size_t CondAt = here();
      uint16_t Cond = compileCondition(DS->Cond.get());
      if (Failed)
        return;
      K.BranchSites += 1;
      Instr Back;
      Back.Op = Opcode::Jnz;
      Back.A = Cond;
      Back.Imm = static_cast<int32_t>(BodyAt);
      emit(Back);
      size_t EndAt = here();
      for (size_t Jump : Loops.back().BreakJumps)
        patchJump(Jump, EndAt);
      for (size_t Jump : Loops.back().ContinueJumps)
        patchJump(Jump, CondAt);
      Loops.pop_back();
      return;
    }
    case Stmt::Kind::Return: {
      const auto *RS = cast<ReturnStmt>(S);
      if (!Inlines.empty()) {
        // Note: compiling the return value may inline further calls and
        // reallocate `Inlines`, so re-index the context afterwards.
        size_t CtxIndex = Inlines.size() - 1;
        if (RS->Value) {
          uint16_t R = compileExpr(RS->Value.get());
          if (Failed)
            return;
          emitMov(Inlines[CtxIndex].ResultReg, R);
        }
        Inlines[CtxIndex].ReturnJumps.push_back(emitJump(Opcode::Jmp));
        return;
      }
      // Kernel-level return: end this work-item.
      Instr I;
      I.Op = Opcode::Halt;
      emit(I);
      return;
    }
    case Stmt::Kind::Break: {
      if (Loops.empty()) {
        fail(S->line(), "break outside loop");
        return;
      }
      Loops.back().BreakJumps.push_back(emitJump(Opcode::Jmp));
      return;
    }
    case Stmt::Kind::Continue: {
      if (Loops.empty()) {
        fail(S->line(), "continue outside loop");
        return;
      }
      Loops.back().ContinueJumps.push_back(emitJump(Opcode::Jmp));
      return;
    }
    case Stmt::Kind::Empty:
      return;
    }
  }

  void compileDecl(const DeclStmt *D) {
    // Arrays become buffers.
    if (D->ArraySize > 0) {
      Binding B;
      B.IsPointer = true;
      B.Ty = D->Ty; // Element type info (Pointer flag unset for arrays).
      B.Ptr.OffsetReg = ZeroReg;
      if (D->Ty.AS == AddrSpace::Local) {
        B.Ptr.Space = MemSpace::Local;
        B.Ptr.Slot = static_cast<int>(K.LocalBuffers.size());
        K.LocalBuffers.push_back(
            {D->Ty.VecWidth, D->ArraySize});
      } else {
        B.Ptr.Space = MemSpace::Private;
        B.Ptr.Slot = static_cast<int>(K.PrivateBuffers.size());
        K.PrivateBuffers.push_back(
            {D->Ty.VecWidth, D->ArraySize});
      }
      bind(D->Name, B);
      return;
    }

    if (D->Ty.Pointer) {
      // Pointer variable: needs an initialiser with static provenance.
      Binding B;
      B.IsPointer = true;
      B.Ty = D->Ty;
      if (D->Init) {
        auto Ptr = resolvePointer(D->Init.get());
        if (!Ptr)
          return;
        B.Ptr = *Ptr;
      } else {
        fail(D->line(), "pointer variables must be initialised");
        return;
      }
      bind(D->Name, B);
      return;
    }

    Binding B;
    B.Ty = D->Ty;
    B.Reg = newReg();
    if (D->Init) {
      uint16_t R = compileExpr(D->Init.get());
      if (Failed)
        return;
      R = coerce(R, D->Init->Ty, D->Ty);
      emitMov(B.Reg, R);
      B.GidStride = gidStride(D->Init.get());
    } else {
      emitMov(B.Reg, emitConstScalar(0.0));
      B.GidStride = 0;
    }
    bind(D->Name, B);
  }

  //===------------------------------------------------------------------===//
  // Top level
  //===------------------------------------------------------------------===//

  uint16_t ZeroReg = 0;

public:
  Result<CompiledKernel> runImpl() {
    K.Name = Kernel.Name;
    pushScope();

    // Canonical zero register (offset base for direct buffer access).
    ZeroReg = emitConstScalar(0.0);

    // Parameters.
    int GlobalSlots = 0;
    for (const ParamDecl &Param : Kernel.Params) {
      ParamInfo PI;
      PI.Ty = Param.Ty;
      PI.Name = Param.Name;
      Binding B;
      B.Ty = Param.Ty;
      if (Param.Ty.Pointer) {
        B.IsPointer = true;
        B.Ptr.OffsetReg = ZeroReg;
        PI.IsBuffer = true;
        if (Param.Ty.AS == AddrSpace::Local) {
          B.Ptr.Space = MemSpace::Local;
          B.Ptr.Slot = static_cast<int>(K.LocalBuffers.size());
          K.LocalBuffers.push_back({Param.Ty.VecWidth, 0});
          PI.BufferSlot = B.Ptr.Slot;
        } else {
          // Global and __constant pointers both bind to global slots.
          B.Ptr.Space = MemSpace::Global;
          B.Ptr.Slot = GlobalSlots++;
          PI.BufferSlot = B.Ptr.Slot;
        }
      } else {
        B.Reg = newReg();
        PI.Reg = B.Reg;
        B.GidStride = 0;
      }
      K.Params.push_back(PI);
      bind(Param.Name, B);
    }

    // File-scope constants are evaluated in the prologue.
    for (const auto &GC : P.Constants) {
      Binding B;
      B.Ty = GC.Ty;
      B.Reg = newReg();
      B.GidStride = 0;
      if (GC.Init) {
        uint16_t R = compileExpr(GC.Init.get());
        if (Failed)
          return Result<CompiledKernel>::error(Diagnostic);
        emitMov(B.Reg, R);
      } else {
        emitMov(B.Reg, emitConstScalar(0.0));
      }
      bind(GC.Name, B);
    }

    compileStmt(Kernel.Body.get());
    if (Failed)
      return Result<CompiledKernel>::error(Diagnostic);

    Instr End;
    End.Op = Opcode::Halt;
    emit(End);
    popScope();

    std::string VerifyError = verifyKernel(K);
    if (!VerifyError.empty())
      return Result<CompiledKernel>::error("internal: " + VerifyError);
    return K;
  }
};

} // namespace

Result<CompiledKernel> KernelCompiler::run() { return runImpl(); }

Result<CompiledKernel> vm::compileKernel(const Program &P,
                                         const FunctionDecl &Kernel) {
  KernelCompiler C(P, Kernel);
  return C.run();
}

Result<CompiledKernel> vm::compileFirstKernel(const std::string &Source) {
  auto Parsed = parseProgram(Source);
  if (!Parsed.ok())
    return Result<CompiledKernel>::error(Parsed.errorMessage());
  auto Prog = Parsed.take();
  Status S = analyze(*Prog);
  if (!S.ok())
    return Result<CompiledKernel>::error(S.errorMessage());
  FunctionDecl *Kernel = Prog->firstKernel();
  if (!Kernel)
    return Result<CompiledKernel>::error("no kernel function found");
  return compileKernel(*Prog, *Kernel);
}

//===----------------------------------------------------------------------===//
// Launch-time lowering to the dispatch-resolved execution form
//===----------------------------------------------------------------------===//

namespace {

/// Decodes one bytecode instruction into its (unfused) extended opcode.
ExtOp decodeExtOp(const Instr &In) {
  switch (In.Op) {
  case Opcode::LoadConst: return ExtOp::LoadConst;
  case Opcode::Mov: return ExtOp::Mov;
  case Opcode::BinOp:
    // The Bin* block mirrors VmBinOp, so specialization is an offset.
    return static_cast<ExtOp>(static_cast<uint8_t>(ExtOp::BinAdd) + In.Aux);
  case Opcode::UnOp: return ExtOp::UnOp;
  case Opcode::Cast: return ExtOp::Cast;
  case Opcode::Broadcast: return ExtOp::Broadcast;
  case Opcode::Swizzle: return ExtOp::Swizzle;
  case Opcode::InsertLanes: return ExtOp::InsertLanes;
  case Opcode::BuildVec: return ExtOp::BuildVec;
  case Opcode::LoadMem: return ExtOp::LoadMem;
  case Opcode::StoreMem: return ExtOp::StoreMem;
  case Opcode::VLoad: return ExtOp::VLoad;
  case Opcode::VStore: return ExtOp::VStore;
  case Opcode::CallB: return ExtOp::CallB;
  case Opcode::Atomic: return ExtOp::Atomic;
  case Opcode::Jmp: return ExtOp::Jmp;
  case Opcode::Jz: return ExtOp::Jz;
  case Opcode::Jnz: return ExtOp::Jnz;
  case Opcode::Barrier: return ExtOp::Barrier;
  case Opcode::Halt: return ExtOp::Halt;
  }
  return ExtOp::Halt;
}

/// The specialization of fused-bin family \p AddBase for bin operation
/// \p Aux; each family's enum block mirrors VmBinOp order.
ExtOp binFam(ExtOp AddBase, uint8_t Aux) {
  return static_cast<ExtOp>(static_cast<uint8_t>(AddBase) + Aux);
}

/// The superinstruction an adjacent (A, B) pair fuses into, or nullopt.
/// The candidate set is the head of OpcodeProfile::topPairs on the real
/// synthesized workload (40-kernel corpus, 71.6M dynamic instructions):
/// ldc+bin 24.2%, bin+mov 12.5%, bin+ldc 10.9%, mov+ldc 7.4%, bin+bin
/// 7.2%, mov+bin 6.1%, cast+mov 4.3%, bin+jz 3.4%, mov+jmp 3.3%, plus
/// the memory pairs ld+bin, bin+ld and bin+st and the call/mov plumbing
/// pairs mov+mov and call+mov. A BinOp constituent selects the
/// per-operation specialization of its family (for bin+bin, of the
/// first operation); the operation switch is resolved here, at fusion
/// time, never in the dispatch loop.
std::optional<ExtOp> fusionFor(const Instr &A, const Instr &B) {
  switch (A.Op) {
  case Opcode::LoadConst:
    if (B.Op == Opcode::BinOp)
      return binFam(ExtOp::FuseLdcBin_Add, B.Aux);
    break;
  case Opcode::LoadMem:
    if (B.Op == Opcode::BinOp)
      return binFam(ExtOp::FuseLdBin_Add, B.Aux);
    break;
  case Opcode::BinOp:
    switch (B.Op) {
    case Opcode::LoadMem: return binFam(ExtOp::FuseBinLd_Add, A.Aux);
    case Opcode::StoreMem: return binFam(ExtOp::FuseBinSt_Add, A.Aux);
    case Opcode::Mov: return binFam(ExtOp::FuseBinMov_Add, A.Aux);
    case Opcode::Jz: return binFam(ExtOp::FuseBinJz_Add, A.Aux);
    case Opcode::Jnz: return binFam(ExtOp::FuseBinJnz_Add, A.Aux);
    case Opcode::LoadConst: return binFam(ExtOp::FuseBinLdc_Add, A.Aux);
    case Opcode::BinOp: return binFam(ExtOp::FuseBinBin_Add, A.Aux);
    default: break;
    }
    break;
  case Opcode::Mov:
    switch (B.Op) {
    case Opcode::LoadConst: return ExtOp::FuseMovLdc;
    case Opcode::Mov: return ExtOp::FuseMovMov;
    case Opcode::BinOp: return binFam(ExtOp::FuseMovBin_Add, B.Aux);
    case Opcode::Jmp: return ExtOp::FuseMovJmp;
    default: break;
    }
    break;
  case Opcode::Cast:
    if (B.Op == Opcode::Mov)
      return ExtOp::FuseCastMov;
    break;
  case Opcode::CallB:
    if (B.Op == Opcode::Mov)
      return ExtOp::FuseCallMov;
    break;
  default:
    break;
  }
  return std::nullopt;
}

} // namespace

void vm::prepareExecProgram(const CompiledKernel &K, bool Fuse,
                            ExecProgram &Out) {
  size_t N = K.Code.size();
  Out.Code.clear();
  Out.Code.resize(N + 1); // +1: sentinel Halt (jump target == N is legal).
  Out.FusedPairs = 0;
  Out.BranchSiteCount = 0;

  // Jump targets, for fusion legality and branch-site numbering. The
  // dense pc-order numbering of Jz/Jnz sites must match what the
  // reference switch loop resolves, so divergence stats are identical.
  std::vector<uint8_t> IsTarget(N + 1, 0);
  for (const Instr &In : K.Code)
    if (In.Op == Opcode::Jmp || In.Op == Opcode::Jz || In.Op == Opcode::Jnz)
      IsTarget[In.Imm] = 1;

  for (size_t I = 0; I < N; ++I) {
    ExecInstr &E = Out.Code[I];
    const Instr &In = K.Code[I];
    E.Ext = static_cast<uint8_t>(decodeExtOp(In));
    E.I1 = In;
    E.I2 = Instr();
    E.BranchSite = -1;
    if (In.Op == Opcode::Jz || In.Op == Opcode::Jnz)
      E.BranchSite = Out.BranchSiteCount++;
  }
  ExecInstr &Sentinel = Out.Code[N];
  Sentinel.Ext = static_cast<uint8_t>(ExtOp::Halt);
  Sentinel.BranchSite = -1;
  Sentinel.I1 = Instr();
  Sentinel.I1.Op = Opcode::Halt;
  Sentinel.I2 = Instr();

  if (!Fuse)
    return;

  // Greedy left-to-right peephole: rewrite slot I into the fused form
  // and skip past its shadowed partner. Never fuse across a jump
  // target — control can enter at I+1, where the original decoded slot
  // must still be live (slots map 1:1 to bytecode pcs).
  for (size_t I = 0; I + 1 < N; ++I) {
    if (IsTarget[I + 1])
      continue;
    const Instr &A = K.Code[I];
    const Instr &B = K.Code[I + 1];
    auto Fused = fusionFor(A, B);
    if (!Fused)
      continue;
    ExecInstr &E = Out.Code[I];
    E.Ext = static_cast<uint8_t>(*Fused);
    E.I2 = B;
    // Compare-branch fusions own the branch constituent's site index.
    E.BranchSite = Out.Code[I + 1].BranchSite;
    ++Out.FusedPairs;
    ++I; // The pair is consumed; its second slot is now unreachable.
  }
}

//===- serve/Client.cpp - clgen-serve blocking client ---------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace clgen;
using namespace clgen::serve;

Client::Client(Client &&Other) noexcept : Fd(Other.Fd) { Other.Fd = -1; }

Client &Client::operator=(Client &&Other) noexcept {
  if (this != &Other) {
    if (Fd >= 0)
      ::close(Fd);
    Fd = Other.Fd;
    Other.Fd = -1;
  }
  return *this;
}

Client::~Client() {
  if (Fd >= 0)
    ::close(Fd);
}

Result<Client> Client::connect(const std::string &SocketPath) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path))
    return Result<Client>::error("socket path too long: " + SocketPath);
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Result<Client>::error(std::string("cannot create socket: ") +
                                 std::strerror(errno));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    int E = errno;
    ::close(Fd);
    return Result<Client>::error("cannot connect to " + SocketPath + ": " +
                                 std::strerror(E));
  }
  return Client(Fd);
}

Result<Message> Client::roundTrip(const std::vector<uint8_t> &Frame,
                                  MessageType Expect) {
  if (Fd < 0)
    return Result<Message>::error("client not connected");
  Status Sent = writeFrame(Fd, Frame);
  if (!Sent.ok())
    return Result<Message>::error(Sent.errorMessage());
  Result<std::vector<uint8_t>> Raw = readFrame(Fd);
  if (!Raw.ok())
    return Result<Message>::error(Raw.errorMessage());
  Result<Message> Parsed = parseFrame(Raw.get());
  if (!Parsed.ok())
    return Parsed;
  if (Parsed.get().Type == MessageType::ErrorResponse)
    return Result<Message>::error("server error: " + Parsed.get().Text);
  if (Parsed.get().Type != Expect)
    return Result<Message>::error("unexpected response type");
  return Parsed;
}

Result<PingResponse> Client::ping() {
  Result<Message> M = roundTrip(encodePingRequest(),
                                MessageType::PingResponse);
  if (!M.ok())
    return Result<PingResponse>::error(M.errorMessage());
  return M.get().Ping;
}

Result<SynthesizeResponse>
Client::synthesize(const SynthesizeRequest &Req) {
  // Client-side validation catches usage errors (target 0) before any
  // traffic; the server re-validates for other clients.
  Status Valid = validateRequest(Req);
  if (!Valid.ok())
    return Result<SynthesizeResponse>::error(Valid.errorMessage());
  Result<Message> M = roundTrip(encodeSynthesizeRequest(Req),
                                MessageType::SynthesizeResponse);
  if (!M.ok())
    return Result<SynthesizeResponse>::error(M.errorMessage());
  return std::move(M.get().SynthResponse);
}

Result<std::string> Client::stats() {
  Result<Message> M = roundTrip(encodeStatsRequest(),
                                MessageType::StatsResponse);
  if (!M.ok())
    return Result<std::string>::error(M.errorMessage());
  return M.get().Text;
}

Status Client::shutdown() {
  Result<Message> M = roundTrip(encodeShutdownRequest(),
                                MessageType::ShutdownResponse);
  if (!M.ok())
    return Status::error(M.errorMessage());
  return Status();
}

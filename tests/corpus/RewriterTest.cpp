//===- tests/corpus/RewriterTest.cpp - rewriter + behaviour preservation ------===//

#include "corpus/Rewriter.h"

#include "ocl/Preprocessor.h"
#include "suites/KernelPatterns.h"
#include "vm/Compiler.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace clgen;
using namespace clgen::corpus;

namespace {

std::string rewriteOk(const std::string &Src) {
  auto Pre = ocl::preprocess(Src);
  EXPECT_TRUE(Pre.ok()) << Pre.errorMessage();
  auto R = rewriteSource(Pre.get());
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.errorMessage());
  return R.ok() ? R.get() : "";
}

} // namespace

TEST(RewriterTest, PaperFigure5EndToEnd) {
  // The exact content file of Figure 5a must rewrite to the shape of
  // Figure 5b.
  std::string Out = rewriteOk(
      "#define DTYPE float\n"
      "#define ALPHA(a) 3.5f * a\n"
      "inline DTYPE ax(DTYPE x) { return ALPHA(x); }\n"
      "\n"
      "__kernel void saxpy(/* SAXPY kernel */\n"
      "                    __global DTYPE* input1,\n"
      "                    __global DTYPE* input2,\n"
      "                    const int nelem) {\n"
      "  unsigned int idx = get_global_id(0);\n"
      "  // = ax + y\n"
      "  if (idx < nelem) {\n"
      "    input2[idx] += ax(input1[idx]); }}\n");
  EXPECT_NE(Out.find("inline float A(float a) {"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("__kernel void B(__global float* b, __global float* "
                     "c, const int d) {"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("c[e] += A(b[e]);"), std::string::npos) << Out;
  // Macros and comments are gone.
  EXPECT_EQ(Out.find("DTYPE"), std::string::npos);
  EXPECT_EQ(Out.find("SAXPY"), std::string::npos);
}

TEST(RewriterTest, BuiltinsSurviveRenaming) {
  std::string Out = rewriteOk(
      "__kernel void work(__global float* data, const int total) {\n"
      "  int tid = get_global_id(0);\n"
      "  if (tid < total) { data[tid] = sqrt(fabs(data[tid])); }\n"
      "  barrier(CLK_GLOBAL_MEM_FENCE);\n"
      "}\n");
  EXPECT_NE(Out.find("get_global_id(0)"), std::string::npos);
  EXPECT_NE(Out.find("sqrt("), std::string::npos);
  EXPECT_NE(Out.find("fabs("), std::string::npos);
  EXPECT_NE(Out.find("CLK_GLOBAL_MEM_FENCE"), std::string::npos);
  // User identifiers are renamed.
  EXPECT_EQ(Out.find("data"), std::string::npos);
  EXPECT_EQ(Out.find("tid"), std::string::npos);
}

TEST(RewriterTest, AppearanceOrderNaming) {
  std::string Out = rewriteOk(
      "__kernel void f(__global int* first, __global int* second) {\n"
      "  int third = get_global_id(0);\n"
      "  second[third] = first[third];\n"
      "}\n");
  EXPECT_NE(Out.find("__kernel void A(__global int* a, __global int* b)"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("int c = get_global_id(0);"), std::string::npos);
}

TEST(RewriterTest, ShadowedVariablesGetDistinctNames) {
  std::string Out = rewriteOk(
      "__kernel void f(__global int* buf, const int n) {\n"
      "  int x = 1;\n"
      "  if (n > 0) {\n"
      "    int x = 2;\n"
      "    buf[0] = x;\n"
      "  }\n"
      "  buf[1] = x;\n"
      "}\n");
  // Outer x -> c, inner x -> d (a, b are the params).
  EXPECT_NE(Out.find("int c = 1;"), std::string::npos) << Out;
  EXPECT_NE(Out.find("int d = 2;"), std::string::npos) << Out;
  EXPECT_NE(Out.find("a[0] = d;"), std::string::npos) << Out;
  EXPECT_NE(Out.find("a[1] = c;"), std::string::npos) << Out;
}

TEST(RewriterTest, RewriteIsIdempotent) {
  const char *Src = "__kernel void A(__global float* a, const int b) {\n"
                    "  int c = get_global_id(0);\n"
                    "  if (c < b) { a[c] *= 2.0f; }\n"
                    "}\n";
  std::string Once = rewriteOk(Src);
  std::string Twice = rewriteOk(Once);
  EXPECT_EQ(Once, Twice);
}

TEST(RewriterTest, VocabularyCount) {
  // "int" is a type name, lexed as an identifier token.
  EXPECT_EQ(identifierVocabularySize("int alpha = beta + alpha;"), 3u);
  EXPECT_EQ(identifierVocabularySize(""), 0u);
}

//===----------------------------------------------------------------------===//
// Property: rewriting preserves behaviour. "unlike prior work, our
// rewrite method preserves program behavior" (section 4.1). Every
// pattern kernel is executed on identical payloads before and after
// rewriting; outputs must match bit for bit.
//===----------------------------------------------------------------------===//

class RewritePreservation
    : public ::testing::TestWithParam<suites::PatternKind> {};

TEST_P(RewritePreservation, OutputsIdenticalAfterRewrite) {
  suites::PatternStyle Style;
  Style.ComputeIntensity = 2;
  Style.ExtraBranching = true;
  std::string Original =
      suites::renderPattern(GetParam(), Style, "prop_kernel");
  std::string Rewritten = rewriteOk(Original);
  ASSERT_FALSE(Rewritten.empty());

  auto KOrig = vm::compileFirstKernel(Original);
  auto KNew = vm::compileFirstKernel(Rewritten);
  ASSERT_TRUE(KOrig.ok()) << KOrig.errorMessage();
  ASSERT_TRUE(KNew.ok()) << KNew.errorMessage();

  // Identical payloads for both variants.
  const size_t N = 256;
  auto MakeBuffers = [&](const vm::CompiledKernel &K) {
    Rng R(777);
    std::vector<vm::BufferData> Bufs;
    std::vector<vm::KernelArg> Args;
    for (const auto &P : K.Params) {
      if (P.IsBuffer && P.Ty.AS == ocl::AddrSpace::Local) {
        Args.push_back(vm::KernelArg::localSize(64));
        continue;
      }
      if (P.IsBuffer) {
        vm::BufferData B = vm::BufferData::zeros(N, P.Ty.VecWidth);
        bool IsInt = P.Ty.pointee().isInteger();
        for (double &L : B.Data)
          L = IsInt ? static_cast<double>(R.bounded(N)) : R.uniform(-1, 1);
        Args.push_back(
            vm::KernelArg::buffer(static_cast<int>(Bufs.size())));
        Bufs.push_back(std::move(B));
        continue;
      }
      Args.push_back(P.Ty.isInteger()
                         ? vm::KernelArg::scalar(static_cast<double>(N))
                         : vm::KernelArg::scalar(0.5));
    }
    return std::make_pair(Bufs, Args);
  };

  auto [BufsA, ArgsA] = MakeBuffers(KOrig.get());
  auto [BufsB, ArgsB] = MakeBuffers(KNew.get());
  vm::LaunchConfig Config;
  Config.GlobalSize[0] = N;
  Config.LocalSize[0] = 64;
  auto RA = vm::launchKernel(KOrig.get(), ArgsA, BufsA, Config);
  auto RB = vm::launchKernel(KNew.get(), ArgsB, BufsB, Config);
  ASSERT_TRUE(RA.ok()) << RA.errorMessage();
  ASSERT_TRUE(RB.ok()) << RB.errorMessage();

  ASSERT_EQ(BufsA.size(), BufsB.size());
  for (size_t I = 0; I < BufsA.size(); ++I)
    EXPECT_EQ(BufsA[I].Data, BufsB[I].Data) << "buffer " << I;
  // Dynamic behaviour (instruction counts) is also preserved.
  EXPECT_EQ(RA.get().GlobalLoads, RB.get().GlobalLoads);
  EXPECT_EQ(RA.get().Branches, RB.get().Branches);
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, RewritePreservation,
    ::testing::ValuesIn(suites::allPatternKinds()),
    [](const ::testing::TestParamInfo<suites::PatternKind> &Info) {
      std::string Name = suites::patternName(Info.param);
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

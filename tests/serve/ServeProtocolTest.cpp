//===- tests/serve/ServeProtocolTest.cpp - wire protocol tests ------------===//
//
// Part of the CLgen reproduction. MIT license.
//
// The clgen-serve frame format (serve/Protocol.h): round-trips for
// every message type, then the adversarial surface — the checksum
// trailer must reject EVERY single-byte corruption of a valid frame,
// and truncation at every possible length must be a clean parse error
// (never a crash, never an over-read, never a bogus success).
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include "gtest/gtest.h"

#include <string>
#include <vector>

using namespace clgen;
using namespace clgen::serve;

namespace {

SynthesizeResponse sampleResponse() {
  SynthesizeResponse R;
  R.WarmKernels = true;
  R.TrainedModels = 1;
  R.SampleAttempts = 292;
  R.MeasuredKernels = 4;
  R.CacheHits = 7;
  R.LedgerHits = 2;
  R.KernelSetDigest = 0x9f8a850baaa521e5ull;
  R.Sources = {"__kernel void a() {}", "__kernel void b(int n) {}"};
  MeasurementRow Ok;
  Ok.Ok = true;
  Ok.CpuTime = 0.25;
  Ok.GpuTime = 0.125;
  MeasurementRow Bad;
  Bad.Ok = false;
  Bad.Error = "launch failed: out-of-bounds global access";
  R.Measurements = {Ok, Bad};
  return R;
}

} // namespace

TEST(ServeProtocolTest, SynthesizeRequestRoundTrips) {
  SynthesizeRequest Req;
  Req.TargetKernels = 40;
  Req.Seed = 0xDEADBEEFCAFEull;
  Req.Temperature = 0.75;
  auto Parsed = parseFrame(encodeSynthesizeRequest(Req));
  ASSERT_TRUE(Parsed.ok()) << Parsed.errorMessage();
  EXPECT_EQ(Parsed.get().Type, MessageType::SynthesizeRequest);
  EXPECT_EQ(Parsed.get().Synth.TargetKernels, Req.TargetKernels);
  EXPECT_EQ(Parsed.get().Synth.Seed, Req.Seed);
  EXPECT_EQ(Parsed.get().Synth.Temperature, Req.Temperature);
}

TEST(ServeProtocolTest, SynthesizeResponseRoundTrips) {
  SynthesizeResponse R = sampleResponse();
  auto Parsed = parseFrame(encodeSynthesizeResponse(R));
  ASSERT_TRUE(Parsed.ok()) << Parsed.errorMessage();
  const SynthesizeResponse &Out = Parsed.get().SynthResponse;
  EXPECT_EQ(Parsed.get().Type, MessageType::SynthesizeResponse);
  EXPECT_EQ(Out.WarmKernels, R.WarmKernels);
  EXPECT_EQ(Out.TrainedModels, R.TrainedModels);
  EXPECT_EQ(Out.SampleAttempts, R.SampleAttempts);
  EXPECT_EQ(Out.MeasuredKernels, R.MeasuredKernels);
  EXPECT_EQ(Out.CacheHits, R.CacheHits);
  EXPECT_EQ(Out.LedgerHits, R.LedgerHits);
  EXPECT_EQ(Out.KernelSetDigest, R.KernelSetDigest);
  EXPECT_EQ(Out.Sources, R.Sources);
  ASSERT_EQ(Out.Measurements.size(), R.Measurements.size());
  for (size_t I = 0; I < R.Measurements.size(); ++I) {
    EXPECT_EQ(Out.Measurements[I].Ok, R.Measurements[I].Ok);
    EXPECT_EQ(Out.Measurements[I].CpuTime, R.Measurements[I].CpuTime);
    EXPECT_EQ(Out.Measurements[I].GpuTime, R.Measurements[I].GpuTime);
    EXPECT_EQ(Out.Measurements[I].Error, R.Measurements[I].Error);
  }
}

TEST(ServeProtocolTest, SimpleMessagesRoundTrip) {
  auto Ping = parseFrame(encodePingRequest());
  ASSERT_TRUE(Ping.ok());
  EXPECT_EQ(Ping.get().Type, MessageType::PingRequest);

  PingResponse Id;
  Id.Pid = 12345;
  auto Pong = parseFrame(encodePingResponse(Id));
  ASSERT_TRUE(Pong.ok());
  EXPECT_EQ(Pong.get().Type, MessageType::PingResponse);
  EXPECT_EQ(Pong.get().Ping.Pid, 12345u);
  EXPECT_EQ(Pong.get().Ping.Version, ProtocolVersion);

  auto Stats = parseFrame(encodeStatsResponse("requests_served 3\n"));
  ASSERT_TRUE(Stats.ok());
  EXPECT_EQ(Stats.get().Type, MessageType::StatsResponse);
  EXPECT_EQ(Stats.get().Text, "requests_served 3\n");

  auto Err = parseFrame(encodeErrorResponse("bad request"));
  ASSERT_TRUE(Err.ok());
  EXPECT_EQ(Err.get().Type, MessageType::ErrorResponse);
  EXPECT_EQ(Err.get().Text, "bad request");

  EXPECT_TRUE(parseFrame(encodeStatsRequest()).ok());
  EXPECT_TRUE(parseFrame(encodeShutdownRequest()).ok());
  EXPECT_TRUE(parseFrame(encodeShutdownResponse()).ok());
}

TEST(ServeProtocolTest, EveryByteCorruptionIsRejected) {
  // The trailer checksum covers the payload and the header fields are
  // individually validated, so flipping ANY single byte of a valid
  // frame must fail the parse. Flip every bit of every byte.
  std::vector<uint8_t> Frame = encodeSynthesizeResponse(sampleResponse());
  for (size_t I = 0; I < Frame.size(); ++I) {
    for (uint8_t Bit = 0; Bit < 8; ++Bit) {
      std::vector<uint8_t> Mutant = Frame;
      Mutant[I] ^= static_cast<uint8_t>(1u << Bit);
      auto Parsed = parseFrame(Mutant);
      EXPECT_FALSE(Parsed.ok())
          << "byte " << I << " bit " << unsigned(Bit)
          << " corruption parsed successfully";
    }
  }
}

TEST(ServeProtocolTest, TruncationAtEveryLengthIsACleanError) {
  std::vector<uint8_t> Frame = encodeSynthesizeRequest(SynthesizeRequest{
      /*TargetKernels=*/8, /*Seed=*/1, /*Temperature=*/0.5});
  for (size_t Len = 0; Len < Frame.size(); ++Len) {
    std::vector<uint8_t> Prefix(Frame.begin(), Frame.begin() + Len);
    auto Parsed = parseFrame(Prefix);
    EXPECT_FALSE(Parsed.ok()) << "truncation to " << Len << " bytes parsed";
  }
  // And appending trailing garbage is rejected too — a frame is exact.
  std::vector<uint8_t> Oversize = Frame;
  Oversize.push_back(0);
  EXPECT_FALSE(parseFrame(Oversize).ok());
}

TEST(ServeProtocolTest, FrameSizeFromHeaderDrivesIncrementalReads) {
  std::vector<uint8_t> Frame = encodePingRequest();
  // Incomplete header: "keep reading" (size 0), not an error.
  for (size_t Len = 0; Len < 8; ++Len) {
    auto R = frameSizeFromHeader(Frame.data(), Len);
    ASSERT_TRUE(R.ok());
    EXPECT_EQ(R.get(), 0u);
  }
  auto Full = frameSizeFromHeader(Frame.data(), Frame.size());
  ASSERT_TRUE(Full.ok());
  EXPECT_EQ(Full.get(), Frame.size());

  // Bad magic fails fast — the reader drops the connection instead of
  // waiting forever on garbage.
  std::vector<uint8_t> BadMagic = Frame;
  BadMagic[0] ^= 0xFF;
  EXPECT_FALSE(frameSizeFromHeader(BadMagic.data(), BadMagic.size()).ok());

  // A hostile length field fails fast instead of provoking a giant
  // allocation: encode MaxFrameBytes + 1 into the length word.
  std::vector<uint8_t> Hostile = Frame;
  uint32_t Huge = MaxFrameBytes + 1;
  for (int B = 0; B < 4; ++B)
    Hostile[4 + B] = static_cast<uint8_t>(Huge >> (8 * B));
  EXPECT_FALSE(frameSizeFromHeader(Hostile.data(), Hostile.size()).ok());
}

TEST(ServeProtocolTest, ValidateRequestRejectsZeroTarget) {
  SynthesizeRequest Req;
  Req.TargetKernels = 0;
  Status S = validateRequest(Req);
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.errorMessage().find("usage error"), std::string::npos);

  Req.TargetKernels = 1;
  EXPECT_TRUE(validateRequest(Req).ok());

  // Non-positive temperature is equally unservable.
  Req.Temperature = 0.0;
  EXPECT_FALSE(validateRequest(Req).ok());
  Req.Temperature = -1.0;
  EXPECT_FALSE(validateRequest(Req).ok());
}

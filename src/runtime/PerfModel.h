//===- runtime/PerfModel.h - Counter-based runtime estimation ----*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts instrumented execution counters (vm::ExecCounters) plus the
/// data-transfer profile of a launch into an estimated wall-clock time on
/// a DeviceModel. This is the substitute for the paper's "execution time
/// includes both device compute time and the data transfer overheads"
/// measurements (section 7.2).
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_RUNTIME_PERFMODEL_H
#define CLGEN_RUNTIME_PERFMODEL_H

#include "runtime/Device.h"
#include "vm/Interpreter.h"

namespace clgen {
namespace runtime {

/// Data-movement profile of one kernel invocation.
struct TransferProfile {
  /// Bytes copied host -> device before the launch (non-write-only
  /// buffers, section 5.1).
  uint64_t BytesIn = 0;
  /// Bytes copied device -> host after the launch (non-read-only
  /// buffers).
  uint64_t BytesOut = 0;

  uint64_t total() const { return BytesIn + BytesOut; }
};

/// Estimated runtime of one kernel execution on \p Device, in seconds.
double estimateRuntime(const DeviceModel &Device,
                       const vm::ExecCounters &Counters,
                       const TransferProfile &Transfer);

/// The compute-only portion (no transfer, no launch overhead); exposed
/// for model inspection and tests.
double estimateComputeTime(const DeviceModel &Device,
                           const vm::ExecCounters &Counters);

} // namespace runtime
} // namespace clgen

#endif // CLGEN_RUNTIME_PERFMODEL_H

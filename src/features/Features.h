//===- features/Features.h - Grewe et al. feature extraction ----*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The feature set of the Grewe, Wang & O'Boyle CGO'13 predictive model,
/// as summarised in Table 2 of the paper:
///
///   raw static:  comp (compute ops), mem (global accesses), localmem
///                (local accesses), coalesced (coalesced accesses);
///   raw dynamic: transfer (bytes moved), wgsize (work-items);
///   combined:    F1 = transfer/(comp+mem)   communication-computation
///                F2 = coalesced/mem          % coalesced accesses
///                F3 = (localmem/mem)*wgsize  local-vs-global x items
///                F4 = comp/mem               computation-memory ratio
///
/// Section 8.2 extends the model with the raw feature values plus a
/// static branch count; both vector layouts are produced here.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_FEATURES_FEATURES_H
#define CLGEN_FEATURES_FEATURES_H

#include "vm/Bytecode.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace clgen {
namespace features {

/// Static code features (Table 2a) plus the branch count of section 8.2.
struct StaticFeatures {
  double Comp = 0;
  double Mem = 0;
  double LocalMem = 0;
  double Coalesced = 0;
  double Branches = 0;

  /// Integer tuple for exact feature-value matching (Figure 9).
  std::array<int64_t, 5> key() const {
    return {static_cast<int64_t>(Comp), static_cast<int64_t>(Mem),
            static_cast<int64_t>(LocalMem), static_cast<int64_t>(Coalesced),
            static_cast<int64_t>(Branches)};
  }
  /// Matching key without the branch feature (the Table 2a feature set).
  std::array<int64_t, 4> keyNoBranch() const {
    return {static_cast<int64_t>(Comp), static_cast<int64_t>(Mem),
            static_cast<int64_t>(LocalMem), static_cast<int64_t>(Coalesced)};
  }
};

/// Full feature record for one (kernel, dataset) observation.
struct RawFeatures {
  StaticFeatures Static;
  double TransferBytes = 0;
  double WgSize = 0;
};

/// Extracts the static features from compiled bytecode.
StaticFeatures extractStaticFeatures(const vm::CompiledKernel &Kernel);

/// Extracts static features for every kernel of \p Kernels on a thread
/// pool with an order-preserving merge: element i equals
/// extractStaticFeatures(Kernels[i]) exactly, for any worker count
/// (0 = hardware concurrency). Workers is scheduling-only.
std::vector<StaticFeatures>
extractStaticFeaturesParallel(const std::vector<vm::CompiledKernel> &Kernels,
                              unsigned Workers = 0);

/// Combined features F1..F4 (the original Grewe et al. model inputs).
std::vector<double> greweFeatureVector(const RawFeatures &F);

/// Extended model of section 8.2: F1..F4 + raw statics + transfer +
/// wgsize + branch count.
std::vector<double> extendedFeatureVector(const RawFeatures &F);

/// Column names for the two layouts (reports, debugging).
std::vector<std::string> greweFeatureNames();
std::vector<std::string> extendedFeatureNames();

} // namespace features
} // namespace clgen

#endif // CLGEN_FEATURES_FEATURES_H

//===- support/Rng.cpp - Deterministic random number generation ----------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include <cmath>

using namespace clgen;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9E3779B97F4A7C15ull;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

Rng::Rng(uint64_t Seed) {
  // Seed the full 256-bit state through SplitMix64 as recommended by the
  // xoshiro authors; this avoids the all-zero state for any seed.
  for (uint64_t &Word : State)
    Word = splitMix64(Seed);
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::bounded(uint64_t Bound) {
  assert(Bound != 0 && "bound must be nonzero");
  // Rejection sampling: discard the biased tail of the 64-bit range.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t Value = next();
    if (Value >= Threshold)
      return Value % Bound;
  }
}

int64_t Rng::range(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  return Lo + static_cast<int64_t>(
                  bounded(static_cast<uint64_t>(Hi - Lo) + 1));
}

double Rng::uniform() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double Lo, double Hi) { return Lo + (Hi - Lo) * uniform(); }

double Rng::gaussian() {
  if (HasSpareGaussian) {
    HasSpareGaussian = false;
    return SpareGaussian;
  }
  double U, V, S;
  do {
    U = uniform(-1.0, 1.0);
    V = uniform(-1.0, 1.0);
    S = U * U + V * V;
  } while (S >= 1.0 || S == 0.0);
  double Factor = std::sqrt(-2.0 * std::log(S) / S);
  SpareGaussian = V * Factor;
  HasSpareGaussian = true;
  return U * Factor;
}

double Rng::gaussian(double Mean, double Stddev) {
  return Mean + Stddev * gaussian();
}

bool Rng::chance(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return uniform() < P;
}

size_t Rng::weighted(const std::vector<double> &Weights) {
  assert(!Weights.empty() && "weighted pick needs at least one weight");
  double Total = 0.0;
  for (double W : Weights) {
    assert(W >= 0.0 && "weights must be nonnegative");
    Total += W;
  }
  assert(Total > 0.0 && "weights must not all be zero");
  double Target = uniform() * Total;
  double Running = 0.0;
  for (size_t I = 0; I < Weights.size(); ++I) {
    Running += Weights[I];
    if (Target < Running)
      return I;
  }
  return Weights.size() - 1;
}

Rng Rng::fork() { return Rng(next() ^ 0xD1B54A32D192ED03ull); }

Rng Rng::split(uint64_t StreamId) const {
  // Fold the full 256-bit state and the stream counter through SplitMix64.
  // Every word participates so children of distinct parents differ, and
  // the multiplicative spread of StreamId decorrelates adjacent ids.
  uint64_t X = StreamId * 0xA24BAED4963EE407ull + 0x9E3779B97F4A7C15ull;
  for (uint64_t Word : State) {
    X ^= Word;
    X = splitMix64(X);
  }
  return Rng(X);
}

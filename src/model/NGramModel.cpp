//===- model/NGramModel.cpp - Backoff n-gram language model -------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "model/NGramModel.h"

#include <cassert>

using namespace clgen;
using namespace clgen::model;

void NGramModel::train(const std::vector<std::string> &Entries) {
  std::string All;
  for (const std::string &E : Entries)
    All += E;
  Vocab = Vocabulary::fromText(All);
  ContextCounts Building;
  for (const std::string &E : Entries)
    addSequence(Building, E);
  Counts = std::make_shared<const ContextCounts>(std::move(Building));
  reset();
}

void NGramModel::addSequence(ContextCounts &Building,
                             const std::string &Entry) const {
  // Token stream: entry characters followed by the sentinel. Contexts are
  // built over raw characters; the sentinel uses '\0' which cannot occur
  // inside entries.
  std::string Stream = Entry;
  Stream.push_back('\0');

  int ContextLen = Opts.Order - 1;
  for (size_t I = 0; I < Stream.size(); ++I) {
    int NextId = Stream[I] == '\0' ? Vocabulary::EndOfText
                                   : Vocab.idOf(Stream[I]);
    // All context suffixes ending just before position I.
    for (int L = 0; L <= ContextLen; ++L) {
      if (static_cast<size_t>(L) > I)
        break;
      std::string Ctx = Stream.substr(I - L, L);
      Building[Ctx][NextId] += 1;
    }
  }
}

void NGramModel::reset() { Context.clear(); }

void NGramModel::observe(int TokenId) {
  Context.push_back(TokenId == Vocabulary::EndOfText
                        ? '\0'
                        : Vocab.charOf(TokenId));
  size_t MaxLen = static_cast<size_t>(Opts.Order - 1);
  if (Context.size() > MaxLen)
    Context.erase(0, Context.size() - MaxLen);
}

std::vector<double> NGramModel::nextDistribution() {
  std::vector<double> Dist;
  nextDistributionInto(Dist);
  return Dist;
}

void NGramModel::nextDistributionInto(std::vector<double> &Dist) {
  size_t V = Vocab.size();
  Dist.assign(V, 0.0);

  // Walk from the longest available context down to the unigram level,
  // taking the first context with any observations, discounted by
  // BackoffAlpha per skipped level. Lookups are string_views over the
  // rolling context buffer: the hot sampling loop never allocates.
  double Scale = 1.0;
  double ContextMass = 0.0; // Probability mass placed by the match.
  std::string_view Full(Context);
  for (size_t Skip = 0; Counts && Skip <= Full.size(); ++Skip) {
    auto It = Counts->find(Full.substr(Skip));
    if (It == Counts->end() || It->second.empty()) {
      Scale *= Opts.BackoffAlpha;
      continue;
    }
    double Total = 0.0;
    for (const auto &[Id, Count] : It->second)
      Total += Count;
    for (const auto &[Id, Count] : It->second)
      Dist[Id] += Scale * static_cast<double>(Count) / Total;
    ContextMass = Scale;
    break;
  }

  // Unigram smoothing floor so every token has nonzero probability. The
  // pre-normalisation sum is known analytically (matched backoff mass
  // plus total smoothing mass), so flooring and normalising fuse into
  // one pass.
  double Floor = Opts.UnigramSmoothing / static_cast<double>(V);
  double InvSum = 1.0 / (ContextMass + Opts.UnigramSmoothing);
  for (double &P : Dist)
    P = (P + Floor) * InvSum;
}

std::unique_ptr<LanguageModel> NGramModel::clone() const {
  return std::make_unique<NGramModel>(*this);
}

//===- support/Trace.cpp - Thread-aware span tracing ----------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

namespace clgen {
namespace support {

std::atomic<bool> Trace::Active{false};

namespace {

struct Event {
  const char *Name = nullptr;
  uint64_t StartNs = 0;
  uint64_t DurNs = 0;
  uint64_t Index = Trace::kIndexNone;
  bool IsSpan = false;
};

/// One recording thread's bounded event buffer. Events/Size are written
/// only by the owning thread; the exporter acquire-loads Size after
/// stop() (with recorders quiescent), so element writes are ordered by
/// the release store. The vector never reallocates while armed.
struct ThreadBuffer {
  std::vector<Event> Events;
  std::atomic<size_t> Size{0};
  std::atomic<size_t> Dropped{0};
  std::atomic<uint64_t> Gen{0};
  uint32_t Tid = 0;
};

struct TraceState {
  std::mutex M;
  std::vector<std::unique_ptr<ThreadBuffer>> Buffers;
  std::atomic<uint64_t> Generation{0};
  std::atomic<size_t> CapPerThread{1 << 16};
  std::atomic<uint64_t> SessionStartNs{0};
};

// Leaked: recording threads cache buffer pointers in thread_locals whose
// destruction order vs. this state is unsequenced at exit.
TraceState &state() {
  static TraceState *S = new TraceState();
  return *S;
}

ThreadBuffer *threadBuffer() {
  thread_local ThreadBuffer *Mine = nullptr;
  if (Mine == nullptr) {
    TraceState &S = state();
    std::lock_guard<std::mutex> Lock(S.M);
    S.Buffers.push_back(std::make_unique<ThreadBuffer>());
    Mine = S.Buffers.back().get();
    Mine->Tid = static_cast<uint32_t>(S.Buffers.size());
  }
  return Mine;
}

void recordEvent(const char *Name, uint64_t StartNs, uint64_t DurNs,
                 bool IsSpan, uint64_t Index) {
  if (!Trace::active())
    return;
  TraceState &S = state();
  uint64_t Gen = S.Generation.load(std::memory_order_acquire);
  ThreadBuffer *B = threadBuffer();
  if (B->Gen.load(std::memory_order_relaxed) != Gen) {
    // First record of this session on this thread: re-arm in place.
    size_t Cap = S.CapPerThread.load(std::memory_order_relaxed);
    if (B->Events.size() != Cap)
      B->Events.resize(Cap);
    B->Size.store(0, std::memory_order_relaxed);
    B->Dropped.store(0, std::memory_order_relaxed);
    // Release: the exporter acquire-loads Gen before touching Events,
    // so the resize above must be ordered behind this store.
    B->Gen.store(Gen, std::memory_order_release);
  }
  size_t I = B->Size.load(std::memory_order_relaxed);
  if (I >= B->Events.size()) {
    B->Dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  B->Events[I] = Event{Name, StartNs, DurNs, Index, IsSpan};
  B->Size.store(I + 1, std::memory_order_release);
}

void appendEscaped(std::string &Out, const char *Text) {
  for (const char *P = Text; *P; ++P) {
    if (*P == '"' || *P == '\\')
      Out += '\\';
    Out += *P;
  }
}

void appendMicros(std::string &Out, uint64_t Ns) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%llu.%03llu",
                static_cast<unsigned long long>(Ns / 1000),
                static_cast<unsigned long long>(Ns % 1000));
  Out += Buf;
}

} // namespace

void Trace::start(const TraceOptions &Opts) {
  TraceState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  Active.store(false, std::memory_order_release);
  S.CapPerThread.store(Opts.EventsPerThread == 0 ? 1 : Opts.EventsPerThread,
                       std::memory_order_relaxed);
  S.SessionStartNs.store(telemetryNowNs(), std::memory_order_relaxed);
  // Bumping the generation lazily invalidates every thread's buffer;
  // events of prior sessions are discarded on the owner's next record.
  S.Generation.fetch_add(1, std::memory_order_release);
  Active.store(true, std::memory_order_release);
}

void Trace::stop() { Active.store(false, std::memory_order_release); }

size_t Trace::eventCount() {
  TraceState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  uint64_t Gen = S.Generation.load(std::memory_order_acquire);
  size_t N = 0;
  for (const auto &B : S.Buffers)
    if (B->Gen.load(std::memory_order_acquire) == Gen)
      N += B->Size.load(std::memory_order_acquire);
  return N;
}

size_t Trace::droppedCount() {
  TraceState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  uint64_t Gen = S.Generation.load(std::memory_order_acquire);
  size_t N = 0;
  for (const auto &B : S.Buffers)
    if (B->Gen.load(std::memory_order_acquire) == Gen)
      N += B->Dropped.load(std::memory_order_acquire);
  return N;
}

void Trace::span(const char *Name, uint64_t StartNs, uint64_t DurNs,
                 uint64_t Index) {
  recordEvent(Name, StartNs, DurNs, /*IsSpan=*/true, Index);
}

void Trace::instant(const char *Name, uint64_t Index) {
  recordEvent(Name, telemetryNowNs(), 0, /*IsSpan=*/false, Index);
}

std::string Trace::renderJson() {
  TraceState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  uint64_t Gen = S.Generation.load(std::memory_order_acquire);
  uint64_t Epoch = S.SessionStartNs.load(std::memory_order_relaxed);

  struct Tagged {
    Event E;
    uint32_t Tid;
  };
  std::vector<Tagged> All;
  size_t Dropped = 0;
  for (const auto &B : S.Buffers) {
    if (B->Gen.load(std::memory_order_acquire) != Gen)
      continue;
    size_t N = B->Size.load(std::memory_order_acquire);
    Dropped += B->Dropped.load(std::memory_order_acquire);
    for (size_t I = 0; I < N; ++I)
      All.push_back(Tagged{B->Events[I], B->Tid});
  }

  // Deterministic ordering for a fixed event set, whatever the
  // registration interleaving was.
  std::sort(All.begin(), All.end(), [](const Tagged &A, const Tagged &B) {
    if (A.E.StartNs != B.E.StartNs)
      return A.E.StartNs < B.E.StartNs;
    if (A.Tid != B.Tid)
      return A.Tid < B.Tid;
    if (int C = std::strcmp(A.E.Name, B.E.Name))
      return C < 0;
    return A.E.DurNs < B.E.DurNs;
  });

  std::string Out = "{\"traceEvents\":[";
  bool First = true;
  for (const Tagged &T : All) {
    if (!First)
      Out += ',';
    First = false;
    Out += "\n{\"name\":\"";
    appendEscaped(Out, T.E.Name);
    Out += "\",\"cat\":\"clgen\",\"ph\":\"";
    Out += T.E.IsSpan ? "X" : "i";
    Out += '"';
    if (!T.E.IsSpan)
      Out += ",\"s\":\"t\"";
    Out += ",\"ts\":";
    appendMicros(Out, T.E.StartNs >= Epoch ? T.E.StartNs - Epoch : 0);
    if (T.E.IsSpan) {
      Out += ",\"dur\":";
      appendMicros(Out, T.E.DurNs);
    }
    Out += ",\"pid\":1,\"tid\":";
    Out += std::to_string(T.Tid);
    if (T.E.Index != kIndexNone) {
      Out += ",\"args\":{\"index\":";
      Out += std::to_string(T.E.Index);
      Out += '}';
    }
    Out += '}';
  }
  Out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":\"";
  Out += std::to_string(Dropped);
  Out += "\"}}\n";
  return Out;
}

} // namespace support
} // namespace clgen

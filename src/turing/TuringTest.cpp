//===- turing/TuringTest.cpp - Simulated human-or-machine panel ---------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "turing/TuringTest.h"

#include "support/Stats.h"

#include <algorithm>

using namespace clgen;
using namespace clgen::turing;

double turing::clsmithTellScore(const std::string &Source) {
  // The kernels shown to judges are style-normalised (identifiers are
  // renamed, comments stripped), so the detectable tells are structural
  // — exactly the ones the paper's participants reported.
  double Score = 0.0;

  // Tell 1 (the paper's example): the only input is a single ulong
  // pointer.
  if (Source.find("__global ulong*") != std::string::npos ||
      Source.find("__global ulong *") != std::string::npos)
    Score += 4.0;

  // Tell 2: deep parenthesis nesting from generated expression trees.
  int Depth = 0, MaxDepth = 0;
  for (char C : Source) {
    if (C == '(')
      MaxDepth = std::max(MaxDepth, ++Depth);
    if (C == ')')
      --Depth;
  }
  if (MaxDepth >= 7)
    Score += 2.5 + 0.5 * (MaxDepth - 7);

  // Tell 3: checksum folding — long runs of xor-assignments.
  size_t XorCount = 0;
  size_t Pos = 0;
  while ((Pos = Source.find(" ^ ", Pos)) != std::string::npos) {
    ++XorCount;
    Pos += 3;
  }
  if (XorCount >= 8)
    Score += 2.5;

  // Tell 4: density of large magic integer constants.
  size_t BigConstants = 0;
  for (size_t I = 0; I + 6 < Source.size(); ++I) {
    bool AllDigits = true;
    for (size_t J = 0; J < 7; ++J)
      AllDigits &= Source[I + J] >= '0' && Source[I + J] <= '9';
    if (AllDigits) {
      ++BigConstants;
      I += 7;
    }
  }
  if (BigConstants >= 4)
    Score += 2.0;
  return Score;
}

PanelResult turing::runPanel(const std::vector<std::string> &HumanPool,
                             const std::vector<std::string> &MachinePool,
                             model::LanguageModel &ReferenceModel,
                             const PanelOptions &Opts) {
  PanelResult Result;
  Rng R(Opts.Seed);

  // Baseline naturalness: calibrate the decision threshold on the human
  // pool's own distribution (judges know what OpenCL usually looks
  // like).
  std::vector<double> HumanBits;
  for (const std::string &K : HumanPool)
    HumanBits.push_back(ReferenceModel.bitsPerChar(K));
  double Threshold = mean(HumanBits) + 2.0 * stdev(HumanBits);

  for (int P = 0; P < Opts.Participants; ++P) {
    double JudgeBias = R.gaussian(0.0, Opts.JudgeNoise);
    int Correct = 0;
    for (int K = 0; K < Opts.KernelsPerParticipant; ++K) {
      bool IsMachine = R.chance(0.5);
      const std::string &Kernel =
          IsMachine ? MachinePool[R.bounded(MachinePool.size())]
                    : HumanPool[R.bounded(HumanPool.size())];
      double Bits = ReferenceModel.bitsPerChar(Kernel);
      double Tells = clsmithTellScore(Kernel);
      double PerKernelNoise = R.gaussian(0.0, Opts.JudgeNoise * 0.6);
      bool JudgedMachine =
          Bits + Tells + PerKernelNoise > Threshold + JudgeBias;
      if (JudgedMachine == IsMachine) {
        ++Correct;
      } else if (IsMachine) {
        ++Result.FalseNegatives;
      } else {
        ++Result.FalsePositives;
      }
    }
    Result.Accuracies.push_back(
        static_cast<double>(Correct) /
        static_cast<double>(Opts.KernelsPerParticipant));
  }
  Result.MeanAccuracy = mean(Result.Accuracies);
  Result.StdevAccuracy = stdev(Result.Accuracies);
  return Result;
}

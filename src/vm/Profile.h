//===- vm/Profile.h - VM opcode execution profiling --------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opt-in dynamic opcode profiling for vm::Interpreter: per-opcode and
/// opcode-pair execution counts over real launches. The top-N pair
/// report is the corpus-mining input the threaded-code/superinstruction
/// roadmap item needs — it names the dynamically hottest dispatch
/// sequences the synthesized kernels actually execute.
///
/// The hooks are pointer-gated, not build-gated: `LaunchConfig::Profile
/// == nullptr` (the default) costs one predictable branch per
/// instruction and the profile is pure observation — it never feeds
/// back into execution, measurement cache keys, or results, so
/// profiling cannot perturb determinism. Counts are raw executed
/// instructions of the simulated work-groups; unlike ExecCounters they
/// are NOT scaled up when `MaxWorkGroups` samples the NDRange.
///
/// Aggregation across launches and measurement worker threads goes
/// through `SharedOpcodeProfile` (one mutex-guarded merge per launch).
/// Since per-launch counts are deterministic and merging is commutative
/// addition, the aggregate is byte-identical for any worker count.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_VM_PROFILE_H
#define CLGEN_VM_PROFILE_H

#include "vm/Bytecode.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace clgen {
namespace vm {

/// Number of distinct opcodes (Halt is the last enumerator).
constexpr size_t NumOpcodes = static_cast<size_t>(Opcode::Halt) + 1;

/// Raw dynamic opcode counts for one or more launches.
struct OpcodeProfile {
  /// Executions per opcode.
  uint64_t Count[NumOpcodes] = {};
  /// Pair[A][B]: times opcode B executed immediately after opcode A
  /// within the same work-item (pairs never cross work-items or
  /// launches — exactly the fusion candidates a superinstruction can
  /// legally cover).
  uint64_t Pair[NumOpcodes][NumOpcodes] = {};
  /// Launches that contributed (merged-in profiles included).
  uint64_t Launches = 0;

  /// Total executed instructions (sum over Count).
  uint64_t instructionTotal() const;
  /// Total executed conditional branches (Jz + Jnz).
  uint64_t branchTotal() const;

  void merge(const OpcodeProfile &Other);
};

/// Thread-safe accumulator: measurement workers each profile their own
/// launches into a local OpcodeProfile and fold it in here once per
/// launch. Addition commutes, so the result is identical for any worker
/// count or completion order.
class SharedOpcodeProfile {
public:
  void add(const OpcodeProfile &P) {
    std::lock_guard<std::mutex> Lock(M);
    Total.merge(P);
  }

  OpcodeProfile snapshot() const {
    std::lock_guard<std::mutex> Lock(M);
    return Total;
  }

private:
  mutable std::mutex M;
  OpcodeProfile Total;
};

/// One ranked opcode pair.
struct OpcodePairCount {
  Opcode First = Opcode::Halt;
  Opcode Second = Opcode::Halt;
  uint64_t Count = 0;
};

/// The \p N most-executed opcode pairs, ordered by descending count
/// with (First, Second) enum order breaking ties — fully deterministic.
/// Zero-count pairs are never returned.
std::vector<OpcodePairCount> topPairs(const OpcodeProfile &P, size_t N);

/// Byte-stable human-readable report: instruction/branch totals, the
/// top-N opcodes and the top-N opcode pairs with percentages (integer
/// basis points, so no float formatting drift).
std::string formatOpcodeReport(const OpcodeProfile &P, size_t TopN);

} // namespace vm
} // namespace clgen

#endif // CLGEN_VM_PROFILE_H

//===- clsmith/ClSmith.cpp - CLSmith-style random generator -------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "clsmith/ClSmith.h"

#include "support/StringUtils.h"

using namespace clgen;
using namespace clgen::clsmith;

namespace {

/// Random integer expression over previously declared locals.
std::string randomExpr(Rng &R, const std::vector<std::string> &Locals,
                       int Depth) {
  if (Depth <= 0 || R.chance(0.3)) {
    if (!Locals.empty() && R.chance(0.6))
      return Locals[R.bounded(Locals.size())];
    // CLSmith-style magic constants.
    static const char *Constants[] = {
        "0x1A7B9E35", "0x4D2C11F0", "2147483647", "0x7FFF",
        "65521",      "0x0F0F0F0F", "1000000007", "0x55555555"};
    return Constants[R.bounded(std::size(Constants))];
  }
  static const char *Ops[] = {"+", "-", "*", "^", "|", "&", ">>", "<<"};
  std::string Op = Ops[R.bounded(std::size(Ops))];
  std::string Lhs = randomExpr(R, Locals, Depth - 1);
  std::string Rhs = randomExpr(R, Locals, Depth - 1);
  // Shift counts must stay small to be meaningful.
  if (Op == ">>" || Op == "<<")
    Rhs = std::to_string(1 + R.bounded(7));
  return "(" + Lhs + " " + Op + " " + Rhs + ")";
}

} // namespace

std::string clsmith::generateKernel(Rng &R, const ClSmithOptions &Opts) {
  std::string Src;
  Src += "int func_1(int p_2, int p_3) {\n"
         "  return (p_2 ^ (p_3 >> 3)) + p_2 * 11;\n"
         "}\n\n";
  Src += "__kernel void entry(__global ulong* result) {\n";
  Src += "  int linear_id = get_global_id(0);\n";

  std::vector<std::string> Locals = {"linear_id"};
  int NextLocal = 10 + static_cast<int>(R.bounded(40));
  for (int I = 0; I < Opts.StatementCount; ++I) {
    std::string Name = formatString(
        R.chance(0.5) ? "p_%d" : "l_%d", NextLocal);
    NextLocal += 1 + static_cast<int>(R.bounded(5));
    std::string Init = randomExpr(R, Locals, Opts.MaxDepth);
    if (R.chance(0.3))
      Init = formatString("func_1(%s, %s)", Init.c_str(),
                          randomExpr(R, Locals, 1).c_str());
    Src += formatString("  int %s = %s;\n", Name.c_str(), Init.c_str());
    Locals.push_back(Name);
    if (R.chance(0.35)) {
      std::string Loop = formatString(
          "  for (int i_%d = 0; i_%d < %d; i_%d++) {\n    %s = (%s %s %s);"
          "\n  }\n",
          I, I, 2 + static_cast<int>(R.bounded(6)), I, Name.c_str(),
          Name.c_str(), R.chance(0.5) ? "^" : "+",
          randomExpr(R, Locals, 2).c_str());
      Src += Loop;
    }
  }

  // Checksum fold into the single output buffer.
  Src += "  int checksum = 0;\n";
  for (const std::string &L : Locals)
    Src += formatString("  checksum = checksum ^ %s;\n", L.c_str());
  Src += "  result[linear_id] = (ulong)checksum;\n";
  Src += "}\n";
  return Src;
}

std::vector<std::string>
clsmith::generateKernels(size_t Count, const ClSmithOptions &Opts) {
  Rng R(Opts.Seed);
  std::vector<std::string> Out;
  Out.reserve(Count);
  for (size_t I = 0; I < Count; ++I)
    Out.push_back(generateKernel(R, Opts));
  return Out;
}

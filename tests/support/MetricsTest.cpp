//===- tests/support/MetricsTest.cpp - metrics registry tests -----------------===//
//
// Coverage for support/Metrics.h: histogram bucket boundaries and
// merge, sharded counter arithmetic, gauge last/max tracking, the
// stability taxonomy, and the golden byte-stable text exposition. The
// registry is process-global, so every test uses names under its own
// "test.metrics." prefix and asserts deltas, never absolute registry
// state shared with other tests.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace clgen;
using support::Counter;
using support::Gauge;
using support::Histogram;
using support::MetricsRegistry;
using support::MetricStability;
using support::RenderOptions;

//===----------------------------------------------------------------------===//
// Histogram buckets
//===----------------------------------------------------------------------===//

TEST(MetricsTest, HistogramBucketBoundaries) {
  // Bucket 0 holds exactly {0}; bucket B >= 1 covers [2^(B-1), 2^B - 1].
  EXPECT_EQ(Histogram::bucketFor(0), 0u);
  EXPECT_EQ(Histogram::bucketFor(1), 1u);
  EXPECT_EQ(Histogram::bucketFor(2), 2u);
  EXPECT_EQ(Histogram::bucketFor(3), 2u);
  EXPECT_EQ(Histogram::bucketFor(4), 3u);
  EXPECT_EQ(Histogram::bucketFor(7), 3u);
  EXPECT_EQ(Histogram::bucketFor(8), 4u);
  EXPECT_EQ(Histogram::bucketFor(UINT64_MAX), 64u);
  // Every bucket's lower bound maps back into that bucket, and the
  // value one below it does not — the boundaries are exact.
  for (size_t B = 0; B < Histogram::NumBuckets; ++B) {
    uint64_t Lo = Histogram::bucketLowerBound(B);
    EXPECT_EQ(Histogram::bucketFor(Lo), B) << "bucket " << B;
    if (B >= 2) {
      EXPECT_EQ(Histogram::bucketFor(Lo - 1), B - 1) << "bucket " << B;
    }
  }
}

TEST(MetricsTest, HistogramRecordAndStats) {
  Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u) << "empty histogram reports min 0, not UINT64_MAX";
  for (uint64_t V : {0ull, 1ull, 3ull, 100ull, 100ull})
    H.record(V);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sum(), 204u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 100u);
  EXPECT_EQ(H.bucketCount(0), 1u); // {0}
  EXPECT_EQ(H.bucketCount(1), 1u); // {1}
  EXPECT_EQ(H.bucketCount(2), 1u); // {3}
  EXPECT_EQ(H.bucketCount(7), 2u); // {100, 100} in [64, 127]
}

TEST(MetricsTest, HistogramMerge) {
  Histogram A, B;
  A.record(5);
  A.record(70);
  B.record(2);
  B.record(300);
  A.merge(B);
  EXPECT_EQ(A.count(), 4u);
  EXPECT_EQ(A.sum(), 377u);
  EXPECT_EQ(A.min(), 2u);
  EXPECT_EQ(A.max(), 300u);
  EXPECT_EQ(A.bucketCount(2), 1u);
  EXPECT_EQ(A.bucketCount(3), 1u);
  EXPECT_EQ(A.bucketCount(7), 1u);
  EXPECT_EQ(A.bucketCount(9), 1u);
  // Merging an empty histogram is the identity, including min().
  Histogram Empty;
  A.merge(Empty);
  EXPECT_EQ(A.count(), 4u);
  EXPECT_EQ(A.min(), 2u);
}

//===----------------------------------------------------------------------===//
// Counter / gauge
//===----------------------------------------------------------------------===//

TEST(MetricsTest, CounterSumsAcrossShardsAndThreads) {
  Counter C;
  constexpr int Threads = 8, PerThread = 10000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&C] {
      for (int I = 0; I < PerThread; ++I)
        C.inc();
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(C.value(), uint64_t(Threads) * PerThread);
  C.inc(5);
  EXPECT_EQ(C.value(), uint64_t(Threads) * PerThread + 5);
  C.reset();
  EXPECT_EQ(C.value(), 0u);
}

TEST(MetricsTest, GaugeTracksLastAndMax) {
  Gauge G;
  G.set(7);
  G.set(3);
  EXPECT_EQ(G.value(), 3);
  EXPECT_EQ(G.maxValue(), 7);
  EXPECT_EQ(G.add(10), 13);
  EXPECT_EQ(G.maxValue(), 13);
  EXPECT_EQ(G.add(-13), 0);
  EXPECT_EQ(G.maxValue(), 13) << "the max is a high-water mark";
}

//===----------------------------------------------------------------------===//
// Registry + exposition
//===----------------------------------------------------------------------===//

TEST(MetricsTest, RegistryReturnsStableHandles) {
  Counter &A = MetricsRegistry::counter("test.metrics.handle");
  Counter &B = MetricsRegistry::counter("test.metrics.handle");
  EXPECT_EQ(&A, &B) << "same name must yield the same metric";
  uint64_t Before = A.value();
  B.inc();
  EXPECT_EQ(A.value(), Before + 1);
}

TEST(MetricsTest, FindDoesNotRegister) {
  EXPECT_EQ(MetricsRegistry::findCounter("test.metrics.never-registered"),
            nullptr);
  MetricsRegistry::counter("test.metrics.findable");
  EXPECT_NE(MetricsRegistry::findCounter("test.metrics.findable"), nullptr);
}

TEST(MetricsTest, GoldenExposition) {
  // The exposition contract is byte-exact: sorted by name, one line per
  // metric, integers only. Exercise all three kinds plus both
  // stability classes through a shared unique prefix and compare the
  // matching lines verbatim.
  MetricsRegistry::counter("test.metrics.golden.a").inc(42);
  MetricsRegistry::counter("test.metrics.golden.vol",
                           MetricStability::Volatile)
      .inc(7);
  MetricsRegistry::gauge("test.metrics.golden.g").set(-3);
  Histogram &H = MetricsRegistry::histogram("test.metrics.golden.h");
  H.record(0);
  H.record(5);
  H.record(6);
  std::string Text = MetricsRegistry::renderText({});
  EXPECT_NE(Text.find("# clgen metrics v1\n"), std::string::npos);
  EXPECT_NE(Text.find("counter test.metrics.golden.a 42 stable\n"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("counter test.metrics.golden.vol 7 volatile\n"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("gauge test.metrics.golden.g last=-3 max=0 volatile\n"),
            std::string::npos)
      << Text;
  EXPECT_NE(
      Text.find("histogram test.metrics.golden.h count=3 sum=11 min=0 "
                "max=6 buckets=0:1,3:2 volatile\n"),
      std::string::npos)
      << Text;
  // Rendering twice with no metric activity in between is byte-stable.
  EXPECT_EQ(Text, MetricsRegistry::renderText({}));
}

TEST(MetricsTest, SkipVolatileDropsVolatileMetrics) {
  MetricsRegistry::counter("test.metrics.skip.stable").inc();
  MetricsRegistry::counter("test.metrics.skip.vol", MetricStability::Volatile)
      .inc();
  MetricsRegistry::gauge("test.metrics.skip.gauge").set(1);
  std::string Text = MetricsRegistry::renderText({.SkipVolatile = true});
  EXPECT_NE(Text.find("test.metrics.skip.stable"), std::string::npos);
  EXPECT_EQ(Text.find("test.metrics.skip.vol"), std::string::npos) << Text;
  EXPECT_EQ(Text.find("test.metrics.skip.gauge"), std::string::npos)
      << "gauges default to volatile";
}

TEST(MetricsTest, EmptyHistogramRendersDash) {
  MetricsRegistry::histogram("test.metrics.emptyhist");
  std::string Text = MetricsRegistry::renderText({});
  EXPECT_NE(Text.find("histogram test.metrics.emptyhist count=0 sum=0 "
                      "min=0 max=0 buckets=- volatile\n"),
            std::string::npos)
      << Text;
}

TEST(MetricsTest, FirstRegistrationStabilityWins) {
  MetricsRegistry::counter("test.metrics.firstwins",
                           MetricStability::Volatile);
  MetricsRegistry::counter("test.metrics.firstwins").inc();
  std::string Text = MetricsRegistry::renderText({.SkipVolatile = true});
  EXPECT_EQ(Text.find("test.metrics.firstwins"), std::string::npos);
}

TEST(MetricsTest, ResetZeroesButKeepsHandles) {
  Counter &C = MetricsRegistry::counter("test.metrics.reset");
  C.inc(9);
  MetricsRegistry::reset();
  EXPECT_EQ(C.value(), 0u);
  C.inc();
  EXPECT_EQ(C.value(), 1u) << "handles must survive reset()";
}

//===----------------------------------------------------------------------===//
// Macros
//===----------------------------------------------------------------------===//

TEST(MetricsTest, MacrosMatchCompiledInState) {
  // Under CLGS_TELEMETRY=OFF the macros expand to nothing, so the
  // metric is never registered; under ON it must count. Both builds run
  // this test (the overhead fixture runs the suite with telemetry
  // compiled out).
  for (int I = 0; I < 3; ++I)
    CLGS_COUNT("test.metrics.macro");
  const Counter *C = MetricsRegistry::findCounter("test.metrics.macro");
  if (support::telemetryCompiledIn()) {
    ASSERT_NE(C, nullptr);
    EXPECT_EQ(C->value(), 3u);
  } else {
    EXPECT_EQ(C, nullptr);
  }
}

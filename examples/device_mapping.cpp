//===- examples/device_mapping.cpp - CPU/GPU mapping prediction ---------------===//
//
// Trains the Grewe et al. predictive model on the benchmark catalogue and
// uses it to pick the device for a kernel it has never seen — the
// downstream task the paper's synthetic benchmarks improve.
//
//===----------------------------------------------------------------------===//

#include "features/Features.h"
#include "predict/Evaluation.h"
#include "runtime/HostDriver.h"
#include "suites/Runner.h"
#include "vm/Compiler.h"

#include <cstdio>

using namespace clgen;

int main() {
  // Measure the full catalogue on the NVIDIA platform: these are the
  // training observations.
  auto P = runtime::nvidiaPlatform();
  std::printf("measuring the benchmark catalogue (this takes a few "
              "seconds)...\n");
  auto Train = suites::measureCatalogue(suites::buildCatalogue(), P);
  std::printf("training observations: %zu\n", Train.size());

  // A user kernel the model has never seen: a fused multiply-add sweep.
  const char *UserKernel =
      "__kernel void fma_sweep(__global float* x, __global float* y,\n"
      "                        __global float* out, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i >= n) { return; }\n"
      "  float acc = 0.0f;\n"
      "  for (int k = 0; k < 96; k++) {\n"
      "    acc = mad(x[i], y[i], acc);\n"
      "    acc = acc * 0.999f + 0.001f;\n"
      "  }\n"
      "  out[i] = acc;\n"
      "}\n";
  auto Kernel = vm::compileFirstKernel(UserKernel);
  if (!Kernel.ok()) {
    std::printf("compile error: %s\n", Kernel.errorMessage().c_str());
    return 1;
  }

  // Evaluate the user kernel at several dataset sizes and compare the
  // model's choice against measured reality.
  std::printf("\n%-12s %-12s %-12s %-10s %-10s\n", "global size",
              "cpu (ms)", "gpu (ms)", "predicted", "actual");
  for (size_t Size : {1024u, 16384u, 262144u}) {
    runtime::DriverOptions DOpts;
    DOpts.GlobalSize = Size;
    auto M = runtime::runBenchmark(Kernel.get(), P, DOpts);
    if (!M.ok())
      continue;

    predict::Observation Query;
    Query.Raw.Static = features::extractStaticFeatures(Kernel.get());
    Query.Raw.TransferBytes = static_cast<double>(M.get().Transfer.total());
    Query.Raw.WgSize = static_cast<double>(Size);

    auto Preds = predict::trainAndPredict(Train, {Query},
                                          predict::FeatureSetKind::Extended);
    const char *Predicted = Preds[0] == 1 ? "GPU" : "CPU";
    const char *Actual = M.get().gpuIsBest() ? "GPU" : "CPU";
    std::printf("%-12zu %-12.3f %-12.3f %-10s %-10s%s\n", Size,
                M.get().CpuTime * 1e3, M.get().GpuTime * 1e3, Predicted,
                Actual,
                std::string(Predicted) == Actual ? "  (correct)" : "");
  }
  return 0;
}

//===- predict/Pca.h - Principal component analysis --------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PCA via Jacobi eigendecomposition of the (standardised) covariance
/// matrix. Used to reproduce Figure 3: "We used Principle Component
/// Analysis to reduce the multi-dimensional feature space to aid
/// visualization."
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_PREDICT_PCA_H
#define CLGEN_PREDICT_PCA_H

#include <cstddef>
#include <vector>

namespace clgen {
namespace predict {

struct PcaResult {
  /// Row-major component matrix: Components[k] is the k-th principal
  /// axis (unit length) in feature space, ordered by decreasing
  /// variance (ties broken by feature index) and oriented so each
  /// axis's first non-negligible coordinate is positive — equal inputs
  /// always yield identical components, never a sign flip.
  std::vector<std::vector<double>> Components;
  /// Eigenvalues (explained variance), same order.
  std::vector<double> ExplainedVariance;
  /// Column means and standard deviations of the training data (for
  /// projecting new points).
  std::vector<double> Mean;
  std::vector<double> Scale;

  /// Projects one example onto the first \p K components.
  std::vector<double> project(const std::vector<double> &X,
                              size_t K = 2) const;
};

/// Fits PCA to row-major data \p X (standardising each column first).
/// Requires at least 2 rows; constant columns get unit scale.
PcaResult fitPca(const std::vector<std::vector<double>> &X);

} // namespace predict
} // namespace clgen

#endif // CLGEN_PREDICT_PCA_H

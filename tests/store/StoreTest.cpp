//===- tests/store/StoreTest.cpp - persistent artifact store tests ------------===//
//
// Round-trip, corruption and integration coverage for src/store/: the
// archive container, model/corpus serialization, the content-addressed
// result cache and the pipeline warm-start path.
//
//===----------------------------------------------------------------------===//

#include "store/Archive.h"
#include "store/ResultCache.h"
#include "store/Serialization.h"

#include "clgen/Pipeline.h"
#include "githubsim/GithubSim.h"
#include "model/LstmModel.h"
#include "model/NGramModel.h"
#include "runtime/HostDriver.h"
#include "support/Rng.h"
#include "vm/Compiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

#ifndef _WIN32
#include <utime.h>
#endif

using namespace clgen;
using namespace clgen::store;

namespace {

/// Fresh per-test scratch directory, removed on destruction.
class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name)
      : Path(std::filesystem::temp_directory_path() /
             ("clgen_store_test_" + Name)) {
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string file(const std::string &Name) const {
    return (Path / Name).string();
  }
  std::string str() const { return Path.string(); }

private:
  std::filesystem::path Path;
};

std::vector<uint8_t> loadBytes(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  EXPECT_TRUE(readFileBytes(Path, Bytes));
  return Bytes;
}

void storeBytes(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
}

/// Random printable training text so round-trip tests cover fresh model
/// shapes on every seed.
std::string randomText(Rng &R, size_t Length) {
  static const char Alphabet[] =
      "abcdefghijklmnop {}();=*+-<>[]_\n0123456789";
  std::string S;
  S.reserve(Length);
  for (size_t I = 0; I < Length; ++I)
    S.push_back(Alphabet[R.bounded(sizeof(Alphabet) - 1)]);
  return S;
}

/// Drives both models over the same random observe sequence and demands
/// bit-identical next-token distributions at every step.
void expectIdenticalGeneration(model::LanguageModel &A,
                               model::LanguageModel &B, uint64_t Seed) {
  ASSERT_EQ(A.vocabulary().size(), B.vocabulary().size());
  Rng R(Seed);
  A.reset();
  B.reset();
  std::vector<double> DA, DB;
  for (int Step = 0; Step < 64; ++Step) {
    A.nextDistributionInto(DA);
    B.nextDistributionInto(DB);
    ASSERT_EQ(DA, DB) << "distributions diverged at step " << Step;
    int Next = static_cast<int>(R.bounded(A.vocabulary().size()));
    A.observe(Next);
    B.observe(Next);
  }
}

vm::CompiledKernel compileSample(const char *Body) {
  std::string Src = "__kernel void k(__global float* a, const int n) {\n"
                    "  int i = get_global_id(0);\n"
                    "  if (i < n) { " +
                    std::string(Body) +
                    " }\n"
                    "}\n";
  auto K = vm::compileFirstKernel(Src);
  EXPECT_TRUE(K.ok()) << K.errorMessage();
  return K.take();
}

} // namespace

//===----------------------------------------------------------------------===//
// Archive container
//===----------------------------------------------------------------------===//

TEST(ArchiveTest, PrimitiveRoundTrip) {
  ArchiveWriter W(ArchiveKind::Corpus);
  W.writeU8(0xAB);
  W.writeU32(0xDEADBEEF);
  W.writeU64(0x0123456789ABCDEFull);
  W.writeI32(-42);
  W.writeI64(-1234567890123ll);
  W.writeBool(true);
  W.writeF32(3.14159f);
  W.writeF64(-2.718281828459045);
  const std::string Embedded("hello \0 world", 13); // Embedded NUL.
  W.writeString(Embedded);
  W.writeF32Vector({1.0f, -0.0f, 1e-30f});
  W.writeF64Vector({});

  auto Opened = ArchiveReader::fromBytes(W.finalize(), ArchiveKind::Corpus);
  ASSERT_TRUE(Opened.ok()) << Opened.errorMessage();
  ArchiveReader R = Opened.take();
  EXPECT_EQ(R.readU8(), 0xAB);
  EXPECT_EQ(R.readU32(), 0xDEADBEEFu);
  EXPECT_EQ(R.readU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(R.readI32(), -42);
  EXPECT_EQ(R.readI64(), -1234567890123ll);
  EXPECT_TRUE(R.readBool());
  EXPECT_EQ(R.readF32(), 3.14159f);
  EXPECT_EQ(R.readF64(), -2.718281828459045);
  EXPECT_EQ(R.readString(), Embedded);
  EXPECT_EQ(R.readF32Vector(), (std::vector<float>{1.0f, -0.0f, 1e-30f}));
  EXPECT_TRUE(R.readF64Vector().empty());
  EXPECT_TRUE(R.finish().ok()) << R.finish().errorMessage();
}

TEST(ArchiveTest, WriterIsDeterministic) {
  auto Build = [] {
    ArchiveWriter W(ArchiveKind::Model);
    W.writeString("abc");
    W.writeF64(1.5);
    return W;
  };
  EXPECT_EQ(Build().finalize(), Build().finalize());
  EXPECT_EQ(Build().payloadDigest(), Build().payloadDigest());
}

TEST(ArchiveTest, RejectsWrongMagic) {
  ArchiveWriter W(ArchiveKind::Model);
  W.writeU32(7);
  auto Bytes = W.finalize();
  Bytes[0] ^= 0xFF;
  auto R = ArchiveReader::fromBytes(Bytes, ArchiveKind::Model);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.errorMessage().find("magic"), std::string::npos);
}

TEST(ArchiveTest, RejectsWrongVersion) {
  ArchiveWriter W(ArchiveKind::Model);
  W.writeU32(7);
  auto Bytes = W.finalize();
  Bytes[4] += 1; // Version field.
  auto R = ArchiveReader::fromBytes(Bytes, ArchiveKind::Model);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.errorMessage().find("version"), std::string::npos);
}

TEST(ArchiveTest, RejectsKindMismatch) {
  ArchiveWriter W(ArchiveKind::Model);
  W.writeU32(7);
  auto R = ArchiveReader::fromBytes(W.finalize(), ArchiveKind::Corpus);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.errorMessage().find("kind"), std::string::npos);
}

TEST(ArchiveTest, RejectsTruncation) {
  ArchiveWriter W(ArchiveKind::Model);
  W.writeString("some payload long enough to truncate");
  auto Bytes = W.finalize();
  // Every possible truncation point must be rejected cleanly.
  for (size_t Keep = 0; Keep < Bytes.size(); ++Keep) {
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + Keep);
    auto R = ArchiveReader::fromBytes(Cut, ArchiveKind::Model);
    EXPECT_FALSE(R.ok()) << "truncation to " << Keep << " bytes accepted";
  }
}

TEST(ArchiveTest, RejectsEveryCorruptedPayloadByte) {
  ArchiveWriter W(ArchiveKind::Model);
  W.writeString("checksummed payload");
  auto Bytes = W.finalize();
  for (size_t I = 20; I + 8 < Bytes.size(); ++I) { // Payload bytes only.
    auto Bad = Bytes;
    Bad[I] ^= 0x01;
    auto R = ArchiveReader::fromBytes(Bad, ArchiveKind::Model);
    EXPECT_FALSE(R.ok()) << "corruption at byte " << I << " accepted";
  }
}

TEST(ArchiveTest, ReaderUnderrunFailsLoudly) {
  ArchiveWriter W(ArchiveKind::Model);
  W.writeU32(1);
  auto Opened = ArchiveReader::fromBytes(W.finalize(), ArchiveKind::Model);
  ASSERT_TRUE(Opened.ok());
  ArchiveReader R = Opened.take();
  EXPECT_EQ(R.readU32(), 1u);
  EXPECT_EQ(R.readU64(), 0u); // Past the end: zero + sticky error.
  EXPECT_FALSE(R.ok());
  EXPECT_FALSE(R.finish().ok());
}

TEST(ArchiveTest, CorruptLengthFieldDoesNotAllocate) {
  ArchiveWriter W(ArchiveKind::Model);
  W.writeU64(0x7FFFFFFFFFFFFFFFull); // Absurd vector length, no data.
  auto Opened = ArchiveReader::fromBytes(W.finalize(), ArchiveKind::Model);
  ASSERT_TRUE(Opened.ok());
  ArchiveReader R = Opened.take();
  EXPECT_TRUE(R.readF32Vector().empty());
  EXPECT_FALSE(R.ok());
}

TEST(ArchiveTest, SaveToIsAtomicAndLeavesNoTempFiles) {
  ScratchDir Dir("archive_atomic");
  ArchiveWriter W(ArchiveKind::Corpus);
  W.writeString("payload");
  ASSERT_TRUE(W.saveTo(Dir.file("a.clgs")).ok());
  // Overwrite through the same path: must succeed and stay readable.
  ASSERT_TRUE(W.saveTo(Dir.file("a.clgs")).ok());
  size_t FileCount = 0;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir.str())) {
    (void)Entry;
    ++FileCount;
  }
  EXPECT_EQ(FileCount, 1u) << "temp files left behind";
  auto R = ArchiveReader::open(Dir.file("a.clgs"), ArchiveKind::Corpus);
  EXPECT_TRUE(R.ok()) << R.errorMessage();
}

TEST(ArchiveTest, OpenMissingFileFails) {
  auto R = ArchiveReader::open("/nonexistent/path/x.clgs",
                               ArchiveKind::Model);
  ASSERT_FALSE(R.ok());
}

//===----------------------------------------------------------------------===//
// Model serialization round-trips
//===----------------------------------------------------------------------===//

TEST(SerializationTest, NGramRandomizedRoundTripBitIdentical) {
  Rng Seeds(0xA5C3);
  for (int Round = 0; Round < 4; ++Round) {
    model::NGramOptions Opts;
    Opts.Order = 3 + static_cast<int>(Seeds.bounded(10));
    model::NGramModel M(Opts);
    Rng R(Seeds.next());
    M.train({randomText(R, 400), randomText(R, 200), randomText(R, 50)});

    ScratchDir Dir("ngram_rt_" + std::to_string(Round));
    ASSERT_TRUE(saveModel(Dir.file("m.clgs"), M).ok());
    auto Loaded = loadModel(Dir.file("m.clgs"));
    ASSERT_TRUE(Loaded.ok()) << Loaded.errorMessage();
    EXPECT_STREQ(Loaded.get()->backendName(), "ngram");
    expectIdenticalGeneration(M, *Loaded.get(), Seeds.next());
    EXPECT_EQ(static_cast<model::NGramModel &>(*Loaded.get()).contextCount(),
              M.contextCount());
  }
}

TEST(SerializationTest, LstmRandomizedRoundTripBitIdentical) {
  Rng Seeds(0xB7D1);
  for (int Round = 0; Round < 2; ++Round) {
    model::LstmOptions Opts;
    Opts.Layers = 1 + static_cast<int>(Seeds.bounded(2));
    Opts.HiddenSize = 8 + static_cast<int>(Seeds.bounded(9));
    Opts.Epochs = 1;
    Opts.Seed = Seeds.next();
    model::LstmModel M(Opts);
    Rng R(Seeds.next());
    M.train({randomText(R, 300)});

    ScratchDir Dir("lstm_rt_" + std::to_string(Round));
    ASSERT_TRUE(saveModel(Dir.file("m.clgs"), M).ok());
    auto Loaded = loadModel(Dir.file("m.clgs"));
    ASSERT_TRUE(Loaded.ok()) << Loaded.errorMessage();
    EXPECT_STREQ(Loaded.get()->backendName(), "lstm");
    EXPECT_EQ(static_cast<model::LstmModel &>(*Loaded.get()).parameterCount(),
              M.parameterCount());
    expectIdenticalGeneration(M, *Loaded.get(), Seeds.next());
  }
}

TEST(SerializationTest, EqualNGramModelsSerializeByteIdentically) {
  auto Train = [] {
    model::NGramModel M;
    M.train({"__kernel void f() { int x = 0; }", "float g;"});
    return M;
  };
  ArchiveWriter WA(ArchiveKind::Model), WB(ArchiveKind::Model);
  Train().serialize(WA);
  Train().serialize(WB);
  EXPECT_EQ(WA.finalize(), WB.finalize());
}

TEST(SerializationTest, ModelArchiveCorruptionFailsLoudly) {
  model::NGramModel M;
  M.train({"abcabcabc"});
  ScratchDir Dir("model_corrupt");
  ASSERT_TRUE(saveModel(Dir.file("m.clgs"), M).ok());

  auto Bytes = loadBytes(Dir.file("m.clgs"));
  // Truncate mid-payload.
  std::vector<uint8_t> Cut(Bytes.begin(),
                           Bytes.begin() + Bytes.size() / 2);
  storeBytes(Dir.file("cut.clgs"), Cut);
  EXPECT_FALSE(loadModel(Dir.file("cut.clgs")).ok());

  // Flip one payload byte (caught by the checksum).
  auto Bad = Bytes;
  Bad[24] ^= 0x40;
  storeBytes(Dir.file("bad.clgs"), Bad);
  EXPECT_FALSE(loadModel(Dir.file("bad.clgs")).ok());
}

TEST(SerializationTest, ModelArchiveRejectsUnknownBackendTag) {
  ArchiveWriter W(ArchiveKind::Model);
  W.writeString("transformer");
  ScratchDir Dir("model_tag");
  ASSERT_TRUE(W.saveTo(Dir.file("m.clgs")).ok());
  auto R = loadModel(Dir.file("m.clgs"));
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.errorMessage().find("backend"), std::string::npos);
}

TEST(SerializationTest, CorpusSnapshotRoundTrip) {
  githubsim::GithubSimOptions GOpts;
  GOpts.FileCount = 30;
  corpus::Corpus C = corpus::buildCorpus(githubsim::mineGithub(GOpts));
  ASSERT_FALSE(C.Entries.empty());

  ScratchDir Dir("corpus_rt");
  ASSERT_TRUE(saveCorpus(Dir.file("c.clgs"), C).ok());
  auto Loaded = loadCorpus(Dir.file("c.clgs"));
  ASSERT_TRUE(Loaded.ok()) << Loaded.errorMessage();
  EXPECT_EQ(Loaded.get().Entries, C.Entries);
  EXPECT_EQ(Loaded.get().Stats.FilesIn, C.Stats.FilesIn);
  EXPECT_EQ(Loaded.get().Stats.KernelCount, C.Stats.KernelCount);
  EXPECT_EQ(Loaded.get().Stats.VocabularyAfter, C.Stats.VocabularyAfter);
  EXPECT_EQ(Loaded.get().allText(), C.allText());
}

TEST(SerializationTest, CompiledKernelRoundTripIsExact) {
  // A kernel exercising vectors, local memory, branches and barriers so
  // every serialized table is non-trivial.
  const char *Src =
      "__kernel void rt(__global float4* a, __local float* tmp,\n"
      "                 const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  int l = get_local_id(0);\n"
      "  tmp[l] = a[i].x + a[i].w;\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  if (i < n) { a[i] = a[i] * (float4)(tmp[l], 1.0f, 2.0f, 3.0f); }\n"
      "}\n";
  auto Compiled = vm::compileFirstKernel(Src);
  ASSERT_TRUE(Compiled.ok()) << Compiled.errorMessage();
  const vm::CompiledKernel &K = Compiled.get();

  ArchiveWriter W(ArchiveKind::Synthesis);
  serializeCompiledKernel(W, K);
  auto Opened = ArchiveReader::fromBytes(W.finalize(),
                                         ArchiveKind::Synthesis);
  ASSERT_TRUE(Opened.ok());
  ArchiveReader R = Opened.take();
  vm::CompiledKernel Back = deserializeCompiledKernel(R);
  ASSERT_TRUE(R.finish().ok()) << R.finish().errorMessage();

  EXPECT_TRUE(vm::verifyKernel(Back).empty()) << vm::verifyKernel(Back);
  // Disassembly covers code/consts/params/tables; compare the rest
  // field-wise.
  EXPECT_EQ(vm::disassemble(Back), vm::disassemble(K));
  EXPECT_EQ(Back.RegisterCount, K.RegisterCount);
  EXPECT_EQ(Back.BranchSites, K.BranchSites);
  EXPECT_EQ(Back.HasBarrier, K.HasBarrier);
  EXPECT_EQ(Back.AccessSites.size(), K.AccessSites.size());
  EXPECT_EQ(Back.LocalBuffers.size(), K.LocalBuffers.size());

  // And the round-tripped kernel must measure identically.
  runtime::DriverOptions Opts;
  Opts.GlobalSize = 256;
  auto P = runtime::amdPlatform();
  auto MA = runtime::runBenchmark(K, P, Opts);
  auto MB = runtime::runBenchmark(Back, P, Opts);
  ASSERT_TRUE(MA.ok()) << MA.errorMessage();
  ASSERT_TRUE(MB.ok()) << MB.errorMessage();
  EXPECT_EQ(MA.get().Counters.Instructions, MB.get().Counters.Instructions);
  EXPECT_EQ(MA.get().CpuTime, MB.get().CpuTime);
  EXPECT_EQ(store::measurementKey(K, Opts, P),
            store::measurementKey(Back, Opts, P));
}

TEST(SynthesizeOrLoadTest, WarmSynthesisIsBitIdentical) {
  githubsim::GithubSimOptions GOpts;
  GOpts.FileCount = 40;
  auto Files = githubsim::mineGithub(GOpts);
  core::PipelineOptions POpts;
  POpts.NGram.Order = 8;
  auto Pipeline = core::ClgenPipeline::train(Files, POpts);

  core::SynthesisOptions SOpts;
  SOpts.TargetKernels = 4;
  SOpts.MaxAttempts = 2000;

  ScratchDir Dir("synth_cache");
  bool ColdLoaded = true, WarmLoaded = false;
  auto Cold = Pipeline.synthesizeOrLoad(Dir.str(), SOpts, &ColdLoaded);
  EXPECT_FALSE(ColdLoaded);
  auto Warm = Pipeline.synthesizeOrLoad(Dir.str(), SOpts, &WarmLoaded);
  EXPECT_TRUE(WarmLoaded);
  auto Plain = Pipeline.synthesize(SOpts);

  ASSERT_EQ(Warm.Kernels.size(), Plain.Kernels.size());
  ASSERT_EQ(Cold.Kernels.size(), Plain.Kernels.size());
  EXPECT_EQ(Warm.Stats.Attempts, Plain.Stats.Attempts);
  EXPECT_EQ(Warm.Stats.Accepted, Plain.Stats.Accepted);
  for (size_t I = 0; I < Plain.Kernels.size(); ++I) {
    EXPECT_EQ(Warm.Kernels[I].Source, Plain.Kernels[I].Source);
    EXPECT_EQ(vm::disassemble(Warm.Kernels[I].Kernel),
              vm::disassemble(Plain.Kernels[I].Kernel));
  }

  // A different seed must key separately (no false hit).
  core::SynthesisOptions Other = SOpts;
  Other.Seed += 1;
  bool OtherLoaded = true;
  (void)Pipeline.synthesizeOrLoad(Dir.str(), Other, &OtherLoaded);
  EXPECT_FALSE(OtherLoaded);

  // Worker count is not part of the key: the engine's bit-identical
  // contract makes a serial run and a 4-worker run the same artifact.
  core::SynthesisOptions Parallel = SOpts;
  Parallel.Workers = 4;
  bool ParallelLoaded = false;
  (void)Pipeline.synthesizeOrLoad(Dir.str(), Parallel, &ParallelLoaded);
  EXPECT_TRUE(ParallelLoaded);
}

//===----------------------------------------------------------------------===//
// ResultCache
//===----------------------------------------------------------------------===//

TEST(ResultCacheTest, KeySensitivity) {
  auto K1 = compileSample("a[i] = a[i] * 2.0f;");
  auto K2 = compileSample("a[i] = a[i] + 2.0f;");
  runtime::DriverOptions Opts;
  auto P = runtime::amdPlatform();

  uint64_t Base = measurementKey(K1, Opts, P);
  EXPECT_EQ(Base, measurementKey(K1, Opts, P)) << "key not deterministic";
  EXPECT_NE(Base, measurementKey(K2, Opts, P)) << "kernel not in key";

  runtime::DriverOptions Opts2 = Opts;
  Opts2.GlobalSize *= 2;
  EXPECT_NE(Base, measurementKey(K1, Opts2, P)) << "payload size not in key";
  runtime::DriverOptions Opts3 = Opts;
  Opts3.Seed += 1;
  EXPECT_NE(Base, measurementKey(K1, Opts3, P)) << "seed not in key";
  EXPECT_NE(Base, measurementKey(K1, Opts, runtime::nvidiaPlatform()))
      << "device config not in key";

  // Source-keyed and bytecode-keyed spaces never collide structurally.
  EXPECT_NE(measurementKey(std::string("src"), Opts, P),
            measurementKey(compileSample("a[i] = 1.0f;"), Opts, P));
}

TEST(ResultCacheTest, StoreLookupRoundTripAcrossInstances) {
  ScratchDir Dir("cache_rt");
  auto K = compileSample("a[i] = a[i] * 3.0f;");
  runtime::DriverOptions Opts;
  Opts.GlobalSize = 512;
  auto P = runtime::amdPlatform();
  auto Fresh = runtime::runBenchmark(K, P, Opts);
  ASSERT_TRUE(Fresh.ok());
  uint64_t Key = measurementKey(K, Opts, P);

  {
    ResultCache Cache(Dir.str());
    EXPECT_FALSE(Cache.lookup(Key).has_value());
    ASSERT_TRUE(Cache.store(Key, Fresh.get()).ok());
    auto Hit = Cache.lookup(Key);
    ASSERT_TRUE(Hit.has_value());
    EXPECT_EQ(Hit->CpuTime, Fresh.get().CpuTime);
    auto S = Cache.stats();
    EXPECT_EQ(S.Hits, 1u);
    EXPECT_EQ(S.Misses, 1u);
    EXPECT_EQ(S.Writes, 1u);
  }

  // A new instance over the same directory reads the persisted entry:
  // the cache is durable, not just process-local.
  ResultCache Reopened(Dir.str());
  auto Hit = Reopened.lookup(Key);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->CpuTime, Fresh.get().CpuTime);
  EXPECT_EQ(Hit->GpuTime, Fresh.get().GpuTime);
  EXPECT_EQ(Hit->Counters.Instructions, Fresh.get().Counters.Instructions);
  EXPECT_EQ(Hit->Transfer.BytesIn, Fresh.get().Transfer.BytesIn);
  EXPECT_EQ(Reopened.stats().MemoryHits, 0u);
}

TEST(ResultCacheTest, CorruptEntryIsAMissNotACrash) {
  ScratchDir Dir("cache_corrupt");
  ResultCache Cache(Dir.str());
  auto K = compileSample("a[i] = -a[i];");
  runtime::DriverOptions Opts;
  auto P = runtime::amdPlatform();
  auto Fresh = runtime::runBenchmark(K, P, Opts);
  ASSERT_TRUE(Fresh.ok());
  uint64_t Key = measurementKey(K, Opts, P);
  ASSERT_TRUE(Cache.store(Key, Fresh.get()).ok());

  // Corrupt the entry on disk; a fresh instance must treat it as a miss.
  std::string Entry = Dir.str() + "/" + hexDigest(Key) + ".clgs";
  auto Bytes = loadBytes(Entry);
  Bytes[Bytes.size() / 2] ^= 0xFF;
  storeBytes(Entry, Bytes);
  ResultCache Reopened(Dir.str());
  EXPECT_FALSE(Reopened.lookup(Key).has_value());
  EXPECT_EQ(Reopened.stats().BadEntries, 1u);
}

#ifndef _WIN32
TEST(ResultCacheTest, CoarseMtimeRewriteIsCaughtByTrailerChecksum) {
  // Regression: on a filesystem with 1 s mtime granularity, a same-size
  // rewrite of an entry within the same second is invisible to the
  // (mtime, size) revalidation probe, and a long-lived process would
  // serve the pre-rewrite measurement forever. The fix records the
  // archive's trailer checksum whenever the backing mtime is
  // whole-second and re-reads those 8 bytes on every memory hit.
  ScratchDir Dir("cache_coarse");
  const uint64_t Key = 0xC0A53E;
  runtime::Measurement M1;
  M1.CpuTime = 1.5;
  M1.GpuTime = 0.5;
  runtime::Measurement M2 = M1;
  M2.CpuTime = 99.0; // Different bytes, identical serialized size
                     // (the measurement payload is fixed-width).

  std::string Entry;
  {
    ResultCache Writer(Dir.str());
    ASSERT_TRUE(Writer.store(Key, M1).ok());
    Entry = Dir.str() + "/" + hexDigest(Key) + ".clgs";
  }
  // Pin a whole-second mtime — exactly what a coarse filesystem
  // produces — so the victim's resident entry takes the hardened path.
  struct utimbuf Stamp;
  Stamp.actime = Stamp.modtime = 1700000000;
  ASSERT_EQ(::utime(Entry.c_str(), &Stamp), 0);

  ResultCache Victim(Dir.str());
  auto First = Victim.lookup(Key); // Disk probe installs the resident.
  ASSERT_TRUE(First.has_value());
  EXPECT_EQ(First->CpuTime, M1.CpuTime);
  auto Second = Victim.lookup(Key); // Memory hit, checksum verified.
  ASSERT_TRUE(Second.has_value());
  EXPECT_EQ(Victim.stats().MemoryHits, 1u);
  EXPECT_EQ(Victim.stats().StaleMemoryEntries, 0u);

  // The hostile rewrite: another process replaces the entry with a
  // different measurement of the SAME size, and the mtime lands on the
  // SAME second. (The stat probe alone cannot see this.)
  {
    ResultCache Rewriter(Dir.str());
    ASSERT_TRUE(Rewriter.store(Key, M2).ok());
  }
  uint64_t SizeAfter = std::filesystem::file_size(Entry);
  ASSERT_EQ(::utime(Entry.c_str(), &Stamp), 0);

  auto Third = Victim.lookup(Key);
  ASSERT_TRUE(Third.has_value());
  EXPECT_EQ(Third->CpuTime, M2.CpuTime)
      << "stale pre-rewrite measurement served (size "
      << SizeAfter << ")";
  EXPECT_EQ(Victim.stats().StaleMemoryEntries, 1u)
      << "the rewrite was not detected as staleness";

  // And the freshly installed resident serves memory hits again.
  auto Fourth = Victim.lookup(Key);
  ASSERT_TRUE(Fourth.has_value());
  EXPECT_EQ(Fourth->CpuTime, M2.CpuTime);
}
#endif // !_WIN32

TEST(ResultCacheTest, ConcurrentHitsAreConsistentAndAllCounted) {
  // The in-process map is probed concurrently by pool workers (cached
  // runBenchmarkBatch) and by the streaming pipeline's enqueue-time
  // probe; under the shared_mutex guard every concurrent hit must see a
  // complete entry and every lookup must be tallied. Run against a
  // fresh instance too, so first-touch disk loads (map inserts) race
  // with resident-entry reads.
  ScratchDir Dir("cache_concurrent");
  constexpr size_t KeyCount = 16;
  constexpr size_t ThreadCount = 8;
  constexpr size_t Rounds = 50;

  std::vector<uint64_t> Keys(KeyCount);
  {
    ResultCache Writer(Dir.str());
    for (size_t I = 0; I < KeyCount; ++I) {
      runtime::Measurement M;
      // Distinctive payload per key: a torn or mixed-up entry cannot
      // pass the checks below.
      M.CpuTime = 1.0 + static_cast<double>(I);
      M.GpuTime = 100.0 + static_cast<double>(I);
      M.Counters.Instructions = 1000 + I;
      Keys[I] = 0x1234560000ull + I;
      ASSERT_TRUE(Writer.store(Keys[I], M).ok());
    }
  }

  ResultCache Cache(Dir.str()); // Cold map: loads race with hits.
  std::atomic<size_t> Mismatches{0};
  std::vector<std::thread> Threads;
  for (size_t T = 0; T < ThreadCount; ++T)
    Threads.emplace_back([&, T] {
      for (size_t Round = 0; Round < Rounds; ++Round)
        for (size_t I = 0; I < KeyCount; ++I) {
          size_t K = (I + T) % KeyCount; // Spread first touches around.
          auto M = Cache.lookup(Keys[K]);
          if (!M || M->CpuTime != 1.0 + static_cast<double>(K) ||
              M->Counters.Instructions != 1000 + K)
            Mismatches.fetch_add(1);
        }
    });
  for (auto &T : Threads)
    T.join();

  EXPECT_EQ(Mismatches.load(), 0u);
  auto Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits, ThreadCount * Rounds * KeyCount)
      << "every concurrent lookup must be counted as a hit";
  EXPECT_EQ(Stats.Misses, 0u);
  EXPECT_GE(Stats.MemoryHits, Stats.Hits - ThreadCount * KeyCount)
      << "after first touch, hits must be served from memory";
}

TEST(ResultCacheTest, MeasurementPayloadRoundTripsBitExactly) {
  runtime::Measurement M;
  M.CpuTime = 1.25e-3;
  M.GpuTime = 7.5e-4;
  M.Counters.Instructions = 123456789;
  M.Counters.Divergence = 0.375;
  M.Transfer.BytesIn = 4096;
  M.Transfer.BytesOut = 64;
  M.GlobalSize = 65536;
  M.LocalSize = 64;
  ArchiveWriter W(ArchiveKind::Measurement);
  serializeMeasurement(W, M);
  auto Opened = ArchiveReader::fromBytes(W.finalize(),
                                         ArchiveKind::Measurement);
  ASSERT_TRUE(Opened.ok());
  ArchiveReader R = Opened.take();
  runtime::Measurement Back = deserializeMeasurement(R);
  ASSERT_TRUE(R.finish().ok());
  EXPECT_EQ(Back.CpuTime, M.CpuTime);
  EXPECT_EQ(Back.GpuTime, M.GpuTime);
  EXPECT_EQ(Back.Counters.Instructions, M.Counters.Instructions);
  EXPECT_EQ(Back.Counters.Divergence, M.Counters.Divergence);
  EXPECT_EQ(Back.Transfer.BytesIn, M.Transfer.BytesIn);
  EXPECT_EQ(Back.GlobalSize, M.GlobalSize);
  EXPECT_EQ(Back.LocalSize, M.LocalSize);
}

//===----------------------------------------------------------------------===//
// Pipeline warm start
//===----------------------------------------------------------------------===//

TEST(TrainOrLoadTest, WarmStartIsBitIdenticalToColdTraining) {
  githubsim::GithubSimOptions GOpts;
  GOpts.FileCount = 40;
  auto Files = githubsim::mineGithub(GOpts);
  core::PipelineOptions POpts;
  POpts.NGram.Order = 8;

  ScratchDir Dir("warm_start");
  core::TrainOrLoadInfo Cold, Warm;
  auto First = core::ClgenPipeline::trainOrLoad(Dir.str(), Files, POpts,
                                                &Cold);
  ASSERT_TRUE(First.ok()) << First.errorMessage();
  EXPECT_FALSE(Cold.LoadedModel);
  auto Second = core::ClgenPipeline::trainOrLoad(Dir.str(), Files, POpts,
                                                 &Warm);
  ASSERT_TRUE(Second.ok()) << Second.errorMessage();
  EXPECT_TRUE(Warm.LoadedModel);
  EXPECT_TRUE(Warm.LoadedCorpus);
  EXPECT_EQ(Warm.Fingerprint, Cold.Fingerprint);

  EXPECT_EQ(Second.get().corpus().Entries, First.get().corpus().Entries);

  core::SynthesisOptions SOpts;
  SOpts.TargetKernels = 4;
  SOpts.MaxAttempts = 2000;
  auto FromCold = First.get().synthesize(SOpts);
  auto FromWarm = Second.get().synthesize(SOpts);
  ASSERT_EQ(FromCold.Kernels.size(), FromWarm.Kernels.size());
  for (size_t I = 0; I < FromCold.Kernels.size(); ++I)
    EXPECT_EQ(FromCold.Kernels[I].Source, FromWarm.Kernels[I].Source);
  EXPECT_EQ(FromCold.Stats.Attempts, FromWarm.Stats.Attempts);
}

TEST(TrainOrLoadTest, FingerprintSeparatesConfigurations) {
  githubsim::GithubSimOptions GOpts;
  GOpts.FileCount = 10;
  auto Files = githubsim::mineGithub(GOpts);
  core::PipelineOptions A, B, C;
  B.NGram.Order = A.NGram.Order + 1;
  C.Backend = core::ModelBackend::Lstm;
  EXPECT_NE(core::ClgenPipeline::fingerprint(Files, A),
            core::ClgenPipeline::fingerprint(Files, B));
  EXPECT_NE(core::ClgenPipeline::fingerprint(Files, A),
            core::ClgenPipeline::fingerprint(Files, C));
  auto Fewer = Files;
  Fewer.pop_back();
  EXPECT_NE(core::ClgenPipeline::fingerprint(Files, A),
            core::ClgenPipeline::fingerprint(Fewer, A));
}

TEST(TrainOrLoadTest, CorruptStoredModelRetrainsInsteadOfFailing) {
  githubsim::GithubSimOptions GOpts;
  GOpts.FileCount = 15;
  auto Files = githubsim::mineGithub(GOpts);
  core::PipelineOptions POpts;

  ScratchDir Dir("warm_corrupt");
  core::TrainOrLoadInfo Info;
  ASSERT_TRUE(core::ClgenPipeline::trainOrLoad(Dir.str(), Files, POpts,
                                               &Info)
                  .ok());
  auto Bytes = loadBytes(Info.ModelPath);
  Bytes.back() ^= 0xFF;
  storeBytes(Info.ModelPath, Bytes);

  auto Again = core::ClgenPipeline::trainOrLoad(Dir.str(), Files, POpts,
                                                &Info);
  ASSERT_TRUE(Again.ok()) << Again.errorMessage();
  EXPECT_FALSE(Info.LoadedModel) << "corrupt artifact was trusted";
  // The retrain must have healed the stored artifact.
  core::TrainOrLoadInfo Healed;
  ASSERT_TRUE(core::ClgenPipeline::trainOrLoad(Dir.str(), Files, POpts,
                                               &Healed)
                  .ok());
  EXPECT_TRUE(Healed.LoadedModel);
}

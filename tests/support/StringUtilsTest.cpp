//===- tests/support/StringUtilsTest.cpp - string helper tests --------------===//

#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace clgen;

TEST(StringUtilsTest, SplitBasic) {
  auto Parts = splitString("a,b,c", ',');
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "c");
}

TEST(StringUtilsTest, SplitKeepsEmptyFields) {
  auto Parts = splitString("a,,c,", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[1], "");
  EXPECT_EQ(Parts[3], "");
}

TEST(StringUtilsTest, SplitLinesDropsTrailingNewlineField) {
  auto Lines = splitLines("x\ny\n");
  ASSERT_EQ(Lines.size(), 2u);
  EXPECT_EQ(Lines[1], "y");
}

TEST(StringUtilsTest, TrimBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtilsTest, JoinRoundTripsSplit) {
  std::vector<std::string> Parts = {"x", "y", "z"};
  EXPECT_EQ(joinStrings(Parts, "::"), "x::y::z");
}

TEST(StringUtilsTest, StartsEndsWith) {
  EXPECT_TRUE(startsWith("__kernel void", "__kernel"));
  EXPECT_FALSE(startsWith("ker", "kernel"));
  EXPECT_TRUE(endsWith("file.cl", ".cl"));
  EXPECT_FALSE(endsWith("cl", "file.cl"));
}

TEST(StringUtilsTest, ReplaceAllNonOverlapping) {
  EXPECT_EQ(replaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replaceAll("x+y+z", "+", " + "), "x + y + z");
}

TEST(StringUtilsTest, CountNonBlankLines) {
  EXPECT_EQ(countNonBlankLines("a\n\n  \nb\n"), 2u);
  EXPECT_EQ(countNonBlankLines(""), 0u);
}

TEST(StringUtilsTest, SequentialNamesMatchPaperSeries) {
  // The paper's identifier series: a, b, ..., z, aa, ab, ...
  EXPECT_EQ(sequentialName(0, false), "a");
  EXPECT_EQ(sequentialName(25, false), "z");
  EXPECT_EQ(sequentialName(26, false), "aa");
  EXPECT_EQ(sequentialName(27, false), "ab");
  EXPECT_EQ(sequentialName(26 + 26 * 26, false), "aaa");
  EXPECT_EQ(sequentialName(0, true), "A");
  EXPECT_EQ(sequentialName(28, true), "AC");
}

TEST(StringUtilsTest, FormatString) {
  EXPECT_EQ(formatString("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(formatString("%.2f", 1.005), "1.00");
}

//===- ocl/Lexer.h - OpenCL C lexer ------------------------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-written lexer for the OpenCL C subset used throughout the
/// project. Operates on preprocessed text (no directives, no comments).
/// Unterminated literals and stray characters are reported as Unknown
/// tokens so that the rejection filter can produce a diagnostic rather
/// than crashing on malformed GitHub content files.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_OCL_LEXER_H
#define CLGEN_OCL_LEXER_H

#include "ocl/Token.h"

#include <string_view>
#include <vector>

namespace clgen {
namespace ocl {

/// Lexes \p Source into a token vector terminated by an Eof token.
/// Comments are tolerated (skipped) so the lexer can also be used on raw,
/// un-preprocessed text, e.g. by the corpus statistics pass.
std::vector<Token> lex(std::string_view Source);

/// Returns true if \p Name is a reserved declaration / control keyword of
/// the subset ("if", "for", "return", "const", "__kernel", ...). Type names
/// are not keywords; the parser resolves those contextually.
bool isReservedKeyword(std::string_view Name);

} // namespace ocl
} // namespace clgen

#endif // CLGEN_OCL_LEXER_H

//===- ocl/Ast.cpp - OpenCL C abstract syntax tree --------------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ocl/Ast.h"

using namespace clgen;
using namespace clgen::ocl;

// Out-of-line virtual destructors anchor the vtables to this file.
Expr::~Expr() = default;
Stmt::~Stmt() = default;

bool ocl::isAssignmentOp(BinaryOp Op) {
  return Op >= BinaryOp::Assign && Op <= BinaryOp::XorAssign;
}

BinaryOp ocl::underlyingOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::AddAssign: return BinaryOp::Add;
  case BinaryOp::SubAssign: return BinaryOp::Sub;
  case BinaryOp::MulAssign: return BinaryOp::Mul;
  case BinaryOp::DivAssign: return BinaryOp::Div;
  case BinaryOp::RemAssign: return BinaryOp::Rem;
  case BinaryOp::ShlAssign: return BinaryOp::Shl;
  case BinaryOp::ShrAssign: return BinaryOp::Shr;
  case BinaryOp::AndAssign: return BinaryOp::BitAnd;
  case BinaryOp::OrAssign: return BinaryOp::BitOr;
  case BinaryOp::XorAssign: return BinaryOp::BitXor;
  default:
    assert(false && "not a compound assignment");
    return BinaryOp::Add;
  }
}

bool ocl::isComparisonOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Lt:
  case BinaryOp::Gt:
  case BinaryOp::Le:
  case BinaryOp::Ge:
  case BinaryOp::Eq:
  case BinaryOp::Ne:
    return true;
  default:
    return false;
  }
}

const char *ocl::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add: return "+";
  case BinaryOp::Sub: return "-";
  case BinaryOp::Mul: return "*";
  case BinaryOp::Div: return "/";
  case BinaryOp::Rem: return "%";
  case BinaryOp::Shl: return "<<";
  case BinaryOp::Shr: return ">>";
  case BinaryOp::BitAnd: return "&";
  case BinaryOp::BitOr: return "|";
  case BinaryOp::BitXor: return "^";
  case BinaryOp::LAnd: return "&&";
  case BinaryOp::LOr: return "||";
  case BinaryOp::Lt: return "<";
  case BinaryOp::Gt: return ">";
  case BinaryOp::Le: return "<=";
  case BinaryOp::Ge: return ">=";
  case BinaryOp::Eq: return "==";
  case BinaryOp::Ne: return "!=";
  case BinaryOp::Assign: return "=";
  case BinaryOp::AddAssign: return "+=";
  case BinaryOp::SubAssign: return "-=";
  case BinaryOp::MulAssign: return "*=";
  case BinaryOp::DivAssign: return "/=";
  case BinaryOp::RemAssign: return "%=";
  case BinaryOp::ShlAssign: return "<<=";
  case BinaryOp::ShrAssign: return ">>=";
  case BinaryOp::AndAssign: return "&=";
  case BinaryOp::OrAssign: return "|=";
  case BinaryOp::XorAssign: return "^=";
  }
  return "?";
}

const char *ocl::unaryOpSpelling(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Plus: return "+";
  case UnaryOp::Neg: return "-";
  case UnaryOp::BitNot: return "~";
  case UnaryOp::LNot: return "!";
  case UnaryOp::PreInc:
  case UnaryOp::PostInc: return "++";
  case UnaryOp::PreDec:
  case UnaryOp::PostDec: return "--";
  case UnaryOp::Deref: return "*";
  case UnaryOp::AddrOf: return "&";
  }
  return "?";
}

FunctionDecl *Program::firstKernel() const {
  for (const auto &F : Functions)
    if (F->IsKernel)
      return F.get();
  return nullptr;
}

FunctionDecl *Program::findFunction(std::string_view Name) const {
  for (const auto &F : Functions)
    if (F->Name == Name)
      return F.get();
  return nullptr;
}

size_t Program::kernelCount() const {
  size_t N = 0;
  for (const auto &F : Functions)
    if (F->IsKernel)
      ++N;
  return N;
}

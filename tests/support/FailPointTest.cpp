//===- tests/support/FailPointTest.cpp - fault-injection framework tests ------===//
//
// The deterministic failpoint registry (support/FailPoint.h): trip
// decisions must be a pure function of (plan seed, site, key,
// evaluation count) — independent of thread scheduling and of which
// other sites fire — and the arm/disarm lifecycle must reset cleanly.
// These tests exercise the always-compiled runtime API directly, so
// they run identically whether or not the build compiled sites in.
//
//===----------------------------------------------------------------------===//

#include "support/FailPoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

using namespace clgen;
using support::FailPlan;
using support::FailPoints;

namespace {

/// RAII disarm so a failing test cannot leak an armed plan into the
/// rest of the suite.
struct ArmedPlan {
  explicit ArmedPlan(const FailPlan &Plan) { FailPoints::arm(Plan); }
  ~ArmedPlan() { FailPoints::disarm(); }
};

/// Evaluates (site, key) N times and returns the decision bitmap.
std::vector<bool> decisions(const char *Site, uint64_t Key, size_t N) {
  std::vector<bool> Out;
  Out.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Out.push_back(FailPoints::trip(Site, Key));
  return Out;
}

TEST(FailPointTest, DisarmedNeverTrips) {
  FailPoints::disarm();
  for (int I = 0; I < 100; ++I)
    EXPECT_FALSE(FailPoints::trip("store.write", I));
  EXPECT_FALSE(FailPoints::armed());
  EXPECT_EQ(FailPoints::totalFires(), 0u);
  // Disarmed evaluations do not even record hits.
  EXPECT_TRUE(FailPoints::stats().empty());
}

TEST(FailPointTest, ProbabilityOneAlwaysTrips) {
  FailPlan Plan;
  Plan.Seed = 7;
  Plan.Probability = 1.0;
  ArmedPlan Armed(Plan);
  for (int I = 0; I < 20; ++I)
    EXPECT_TRUE(FailPoints::trip("vm.launch", I));
  EXPECT_EQ(FailPoints::totalFires(), 20u);
}

TEST(FailPointTest, ProbabilityZeroNeverTrips) {
  FailPlan Plan;
  Plan.Seed = 7;
  Plan.Probability = 0.0;
  ArmedPlan Armed(Plan);
  for (int I = 0; I < 20; ++I)
    EXPECT_FALSE(FailPoints::trip("vm.launch", I));
  EXPECT_EQ(FailPoints::totalFires(), 0u);
  // But hits ARE recorded: the site was evaluated 20 times.
  auto Stats = FailPoints::stats();
  ASSERT_EQ(Stats.size(), 1u);
  EXPECT_EQ(Stats[0].Site, "vm.launch");
  EXPECT_EQ(Stats[0].Hits, 20u);
  EXPECT_EQ(Stats[0].Fires, 0u);
}

TEST(FailPointTest, DecisionsAreReproducibleAcrossRearms) {
  FailPlan Plan;
  Plan.Seed = 0xABCDEF;
  Plan.Probability = 0.35;
  std::vector<bool> First, Second;
  {
    ArmedPlan Armed(Plan);
    First = decisions("pipeline.enqueue", 42, 200);
  }
  {
    ArmedPlan Armed(Plan);
    Second = decisions("pipeline.enqueue", 42, 200);
  }
  EXPECT_EQ(First, Second);
  // And the stream is not degenerate at p=0.35 over 200 draws.
  size_t Fires = 0;
  for (bool B : First)
    Fires += B;
  EXPECT_GT(Fires, 0u);
  EXPECT_LT(Fires, First.size());
}

TEST(FailPointTest, StreamsAreIndependentPerSiteAndKey) {
  FailPlan Plan;
  Plan.Seed = 99;
  Plan.Probability = 0.5;
  ArmedPlan Armed(Plan);
  std::vector<bool> SiteA = decisions("store.read", 1, 64);
  std::vector<bool> SiteB = decisions("store.write", 1, 64);
  std::vector<bool> KeyOther = decisions("store.read", 2, 64);
  // Distinct sites and distinct keys draw from distinct split streams;
  // at p=0.5 over 64 draws, collision of the whole bitmap is 2^-64.
  EXPECT_NE(SiteA, SiteB);
  EXPECT_NE(SiteA, KeyOther);
}

TEST(FailPointTest, InterleavingDoesNotPerturbPerKeyStreams) {
  FailPlan Plan;
  Plan.Seed = 1234;
  Plan.Probability = 0.4;
  // Reference: each key evaluated alone.
  std::map<uint64_t, std::vector<bool>> Solo;
  {
    ArmedPlan Armed(Plan);
    for (uint64_t Key = 0; Key < 4; ++Key)
      Solo[Key] = decisions("runtime.payload", Key, 50);
  }
  // Interleaved round-robin over the same keys: every per-key stream
  // must be unchanged, because the decision counter is per (site, key).
  std::map<uint64_t, std::vector<bool>> Mixed;
  {
    ArmedPlan Armed(Plan);
    for (size_t Round = 0; Round < 50; ++Round)
      for (uint64_t Key = 0; Key < 4; ++Key)
        Mixed[Key].push_back(FailPoints::trip("runtime.payload", Key));
  }
  EXPECT_EQ(Solo, Mixed);
}

TEST(FailPointTest, SiteFilterRestrictsInjection) {
  FailPlan Plan;
  Plan.Seed = 5;
  Plan.Probability = 1.0;
  Plan.Sites = {"store.lock"};
  ArmedPlan Armed(Plan);
  EXPECT_TRUE(FailPoints::trip("store.lock", 0));
  EXPECT_FALSE(FailPoints::trip("store.write", 0));
  EXPECT_FALSE(FailPoints::trip("vm.launch", 0));
}

TEST(FailPointTest, MaxFiresPerSiteCapsInjection) {
  FailPlan Plan;
  Plan.Seed = 5;
  Plan.Probability = 1.0;
  Plan.MaxFiresPerSite = 3;
  ArmedPlan Armed(Plan);
  size_t Fires = 0;
  for (int I = 0; I < 10; ++I)
    Fires += FailPoints::trip("ledger.write", I);
  EXPECT_EQ(Fires, 3u);
  auto Stats = FailPoints::stats();
  ASSERT_EQ(Stats.size(), 1u);
  EXPECT_EQ(Stats[0].Hits, 10u);
  EXPECT_EQ(Stats[0].Fires, 3u);
}

TEST(FailPointTest, ArmResetsCounters) {
  FailPlan Plan;
  Plan.Seed = 5;
  Plan.Probability = 1.0;
  FailPoints::arm(Plan);
  (void)FailPoints::trip("vm.launch", 0);
  EXPECT_EQ(FailPoints::totalFires(), 1u);
  FailPoints::arm(Plan); // Re-arm: counters restart.
  EXPECT_EQ(FailPoints::totalFires(), 0u);
  EXPECT_TRUE(FailPoints::stats().empty());
  FailPoints::disarm();
  EXPECT_FALSE(FailPoints::armed());
}

TEST(FailPointTest, ConcurrentTripsAreSafeAndCounted) {
  FailPlan Plan;
  Plan.Seed = 77;
  Plan.Probability = 0.5;
  ArmedPlan Armed(Plan);
  constexpr size_t ThreadCount = 8, PerThread = 500;
  std::atomic<size_t> Fires{0};
  std::vector<std::thread> Threads;
  for (size_t T = 0; T < ThreadCount; ++T)
    Threads.emplace_back([T, &Fires] {
      for (size_t I = 0; I < PerThread; ++I)
        Fires += FailPoints::trip("concurrent.site", T);
    });
  for (std::thread &T : Threads)
    T.join();
  auto Stats = FailPoints::stats();
  ASSERT_EQ(Stats.size(), 1u);
  EXPECT_EQ(Stats[0].Hits, ThreadCount * PerThread);
  EXPECT_EQ(Stats[0].Fires, Fires.load());
  EXPECT_EQ(FailPoints::totalFires(), Fires.load());
}

TEST(FailPointTest, StallReportsWhetherItStalled) {
  FailPlan Plan;
  Plan.Seed = 3;
  Plan.Probability = 1.0;
  Plan.StallMs = 1; // Keep the test fast.
  ArmedPlan Armed(Plan);
  EXPECT_TRUE(FailPoints::stall("vm.stall", 0));
  FailPoints::disarm();
  EXPECT_FALSE(FailPoints::stall("vm.stall", 0));
}

} // namespace

//===- tests/support/ChannelTest.cpp - bounded MPMC channel tests -------------===//
//
// Property and stress coverage for support::Channel: FIFO + bounding on
// one thread, close semantics against blocked producers and consumers,
// multi-producer/multi-consumer conservation, and a seeded randomized
// soak. The heavier long-running soak lives in tests/stress/ (ctest
// label "stress"); the one here is sized to stay in the tier-1 budget.
//
//===----------------------------------------------------------------------===//

#include "support/Channel.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

using namespace clgen;
using support::Channel;

TEST(ChannelTest, ZeroCapacityIsRejected) {
  // A zero-capacity channel could never move a value through push/pop;
  // constructing one is a caller bug, reported eagerly.
  EXPECT_THROW(Channel<int>(0), std::invalid_argument);
}

TEST(ChannelTest, FifoWithinCapacity) {
  Channel<int> C(4);
  EXPECT_EQ(C.capacity(), 4u);
  for (int V : {1, 2, 3, 4})
    EXPECT_TRUE(C.push(V));
  EXPECT_EQ(C.size(), 4u);
  for (int V : {1, 2, 3, 4}) {
    auto Got = C.pop();
    ASSERT_TRUE(Got.has_value());
    EXPECT_EQ(*Got, V);
  }
  EXPECT_EQ(C.size(), 0u);
}

TEST(ChannelTest, TryPushRespectsBoundAndTryPopDoesNotBlock) {
  Channel<int> C(2);
  int A = 10, B = 20, D = 30;
  EXPECT_TRUE(C.tryPush(A));
  EXPECT_TRUE(C.tryPush(B));
  EXPECT_FALSE(C.tryPush(D)) << "push past capacity must not succeed";
  EXPECT_EQ(D, 30) << "a failed tryPush must leave the value intact";
  EXPECT_EQ(C.tryPop().value(), 10);
  EXPECT_TRUE(C.tryPush(D));
  EXPECT_EQ(C.tryPop().value(), 20);
  EXPECT_EQ(C.tryPop().value(), 30);
  EXPECT_FALSE(C.tryPop().has_value());
}

TEST(ChannelTest, PushBlocksUntilSpaceFreesUp) {
  Channel<int> C(1);
  ASSERT_TRUE(C.push(1));
  std::atomic<bool> SecondPushDone{false};
  std::thread Producer([&] {
    EXPECT_TRUE(C.push(2)); // Blocks: channel is full.
    SecondPushDone = true;
  });
  // The producer cannot complete until we pop. (A sleep cannot prove
  // blocking, but it makes a broken non-blocking push fail reliably.)
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(SecondPushDone.load());
  EXPECT_EQ(C.pop().value(), 1);
  Producer.join();
  EXPECT_TRUE(SecondPushDone.load());
  EXPECT_EQ(C.pop().value(), 2);
}

TEST(ChannelTest, CloseWakesBlockedProducerWhichFails) {
  Channel<int> C(1);
  ASSERT_TRUE(C.push(1));
  std::atomic<int> PushResult{-1};
  std::thread Producer([&] { PushResult = C.push(2) ? 1 : 0; });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(PushResult.load(), -1) << "producer should still be blocked";
  C.close();
  Producer.join();
  EXPECT_EQ(PushResult.load(), 0) << "close must fail the blocked push";
  // The value buffered before close survives and drains.
  EXPECT_EQ(C.pop().value(), 1);
  EXPECT_FALSE(C.pop().has_value());
}

TEST(ChannelTest, CloseWakesBlockedConsumerWithNullopt) {
  Channel<int> C(4);
  std::atomic<bool> GotNullopt{false};
  std::thread Consumer([&] { GotNullopt = !C.pop().has_value(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(GotNullopt.load());
  C.close();
  Consumer.join();
  EXPECT_TRUE(GotNullopt.load());
}

TEST(ChannelTest, PushAfterCloseFailsAndBufferedValuesDrain) {
  Channel<int> C(4);
  EXPECT_TRUE(C.push(1));
  EXPECT_TRUE(C.push(2));
  C.close();
  C.close(); // Idempotent.
  EXPECT_TRUE(C.closed());
  EXPECT_FALSE(C.push(3));
  int V = 4;
  EXPECT_FALSE(C.tryPush(V));
  EXPECT_EQ(C.pop().value(), 1);
  EXPECT_EQ(C.pop().value(), 2);
  EXPECT_FALSE(C.pop().has_value());
  EXPECT_FALSE(C.pop().has_value()); // Stays drained.
}

/// Runs \p Producers threads pushing disjoint value ranges against
/// \p Consumers threads popping until closed-and-drained; checks that
/// every pushed value is popped exactly once (conservation).
static void runMpmcRound(size_t Producers, size_t Consumers,
                         size_t Capacity, size_t PerProducer) {
  Channel<size_t> C(Capacity);
  std::vector<std::vector<size_t>> Collected(Consumers);

  std::vector<std::thread> Consumer;
  for (size_t T = 0; T < Consumers; ++T)
    Consumer.emplace_back([&, T] {
      while (auto V = C.pop())
        Collected[T].push_back(*V);
    });

  std::vector<std::thread> Producer;
  for (size_t T = 0; T < Producers; ++T)
    Producer.emplace_back([&, T] {
      for (size_t I = 0; I < PerProducer; ++I)
        ASSERT_TRUE(C.push(T * PerProducer + I));
    });
  for (auto &T : Producer)
    T.join();
  C.close();
  for (auto &T : Consumer)
    T.join();

  std::vector<size_t> All;
  for (const auto &Part : Collected)
    All.insert(All.end(), Part.begin(), Part.end());
  ASSERT_EQ(All.size(), Producers * PerProducer);
  std::sort(All.begin(), All.end());
  for (size_t I = 0; I < All.size(); ++I)
    EXPECT_EQ(All[I], I) << "value lost or duplicated in transit";
}

TEST(ChannelTest, MultiProducerMultiConsumerConservesValues) {
  runMpmcRound(/*Producers=*/3, /*Consumers=*/3, /*Capacity=*/2,
               /*PerProducer=*/200);
}

TEST(ChannelTest, SingleProducerManyConsumers) {
  runMpmcRound(1, 4, 1, 300);
}

TEST(ChannelTest, ManyProducersSingleConsumer) {
  runMpmcRound(4, 1, 3, 150);
}

TEST(ChannelTest, SeededRandomizedSoak) {
  // Short seeded soak: random topology and capacity per round, with
  // consumers closing mid-stream on some rounds so the close path gets
  // exercised under contention. Totals are conserved on every round.
  Rng R(0xC4A77E1);
  for (size_t Round = 0; Round < 8; ++Round) {
    size_t Producers = 1 + R.bounded(3);
    size_t Consumers = 1 + R.bounded(3);
    size_t Capacity = 1 + R.bounded(8);
    size_t PerProducer = 20 + R.bounded(120);
    bool CloseEarly = R.chance(0.3);

    Channel<uint64_t> C(Capacity);
    std::atomic<uint64_t> PushedSum{0}, PoppedSum{0};
    std::atomic<size_t> PushedCount{0}, PoppedCount{0};

    std::vector<std::thread> Threads;
    for (size_t T = 0; T < Consumers; ++T)
      Threads.emplace_back([&] {
        while (auto V = C.pop()) {
          PoppedSum.fetch_add(*V);
          PoppedCount.fetch_add(1);
        }
      });
    for (size_t T = 0; T < Producers; ++T) {
      // Per-producer deterministic value stream (counter-keyed split so
      // the round is reproducible from the seed).
      Rng Stream = R.split(Round * 16 + T);
      Threads.emplace_back([&, Stream]() mutable {
        for (size_t I = 0; I < PerProducer; ++I) {
          uint64_t V = Stream.bounded(1 << 20);
          if (!C.push(V))
            return; // Channel closed early: stop producing.
          PushedSum.fetch_add(V);
          PushedCount.fetch_add(1);
        }
      });
    }
    if (CloseEarly)
      C.close();
    // Join producers (indices Consumers..end) before closing normally.
    for (size_t T = Consumers; T < Threads.size(); ++T)
      Threads[T].join();
    C.close();
    for (size_t T = 0; T < Consumers; ++T)
      Threads[T].join();

    // Conservation: every successfully pushed value was popped exactly
    // once — by sum as well as by count.
    EXPECT_EQ(PushedCount.load(), PoppedCount.load())
        << "round " << Round;
    EXPECT_EQ(PushedSum.load(), PoppedSum.load()) << "round " << Round;
    if (!CloseEarly) {
      EXPECT_EQ(PushedCount.load(), Producers * PerProducer)
          << "round " << Round;
    }
  }
}

//===- support/Metrics.cpp - Process-wide metrics registry ----------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace clgen {
namespace support {

bool telemetryCompiledIn() {
#if defined(CLGS_TELEMETRY)
  return true;
#else
  return false;
#endif
}

uint64_t telemetryNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

template <typename T> struct NamedMetric {
  std::unique_ptr<T> Metric;
  MetricStability Stability;
};

struct RegistryImpl {
  std::mutex M;
  // std::map keeps names sorted so renderText never re-sorts.
  std::map<std::string, NamedMetric<Counter>, std::less<>> Counters;
  std::map<std::string, NamedMetric<Gauge>, std::less<>> Gauges;
  std::map<std::string, NamedMetric<Histogram>, std::less<>> Histograms;
};

// Leaked on purpose: instrumentation sites hold references from
// function-local statics whose destruction order vs. this registry is
// otherwise unsequenced at process exit.
RegistryImpl &impl() {
  static RegistryImpl *R = new RegistryImpl();
  return *R;
}

template <typename T>
T &getOrRegister(std::map<std::string, NamedMetric<T>, std::less<>> &Map,
                 std::string_view Name, MetricStability S) {
  RegistryImpl &R = impl();
  std::lock_guard<std::mutex> Lock(R.M);
  auto It = Map.find(Name);
  if (It == Map.end())
    It = Map.emplace(std::string(Name),
                     NamedMetric<T>{std::make_unique<T>(), S})
             .first;
  return *It->second.Metric;
}

template <typename T>
const T *find(const std::map<std::string, NamedMetric<T>, std::less<>> &Map,
              std::string_view Name) {
  RegistryImpl &R = impl();
  std::lock_guard<std::mutex> Lock(R.M);
  auto It = Map.find(Name);
  return It == Map.end() ? nullptr : It->second.Metric.get();
}

const char *stabilityName(MetricStability S) {
  return S == MetricStability::Stable ? "stable" : "volatile";
}

void appendU64(std::string &Out, uint64_t V) { Out += std::to_string(V); }
void appendI64(std::string &Out, int64_t V) { Out += std::to_string(V); }

} // namespace

Counter &MetricsRegistry::counter(std::string_view Name, MetricStability S) {
  return getOrRegister(impl().Counters, Name, S);
}

Gauge &MetricsRegistry::gauge(std::string_view Name, MetricStability S) {
  return getOrRegister(impl().Gauges, Name, S);
}

Histogram &MetricsRegistry::histogram(std::string_view Name,
                                      MetricStability S) {
  return getOrRegister(impl().Histograms, Name, S);
}

const Counter *MetricsRegistry::findCounter(std::string_view Name) {
  return find(impl().Counters, Name);
}

const Gauge *MetricsRegistry::findGauge(std::string_view Name) {
  return find(impl().Gauges, Name);
}

const Histogram *MetricsRegistry::findHistogram(std::string_view Name) {
  return find(impl().Histograms, Name);
}

std::string MetricsRegistry::renderText(const RenderOptions &Opts) {
  RegistryImpl &R = impl();
  std::lock_guard<std::mutex> Lock(R.M);

  // One (name, line) pair per metric, then a global sort by name so the
  // exposition interleaves kinds deterministically.
  std::vector<std::pair<std::string_view, std::string>> Lines;
  Lines.reserve(R.Counters.size() + R.Gauges.size() + R.Histograms.size());

  for (const auto &[Name, NM] : R.Counters) {
    if (Opts.SkipVolatile && NM.Stability == MetricStability::Volatile)
      continue;
    std::string L = "counter ";
    L += Name;
    L += ' ';
    appendU64(L, NM.Metric->value());
    L += ' ';
    L += stabilityName(NM.Stability);
    Lines.emplace_back(Name, std::move(L));
  }
  for (const auto &[Name, NM] : R.Gauges) {
    if (Opts.SkipVolatile && NM.Stability == MetricStability::Volatile)
      continue;
    std::string L = "gauge ";
    L += Name;
    L += " last=";
    appendI64(L, NM.Metric->value());
    L += " max=";
    appendI64(L, NM.Metric->maxValue());
    L += ' ';
    L += stabilityName(NM.Stability);
    Lines.emplace_back(Name, std::move(L));
  }
  for (const auto &[Name, NM] : R.Histograms) {
    if (Opts.SkipVolatile && NM.Stability == MetricStability::Volatile)
      continue;
    const Histogram &H = *NM.Metric;
    std::string L = "histogram ";
    L += Name;
    L += " count=";
    appendU64(L, H.count());
    L += " sum=";
    appendU64(L, H.sum());
    L += " min=";
    appendU64(L, H.min());
    L += " max=";
    appendU64(L, H.max());
    L += " buckets=";
    bool Any = false;
    for (size_t B = 0; B < Histogram::NumBuckets; ++B) {
      uint64_t N = H.bucketCount(B);
      if (N == 0)
        continue;
      if (Any)
        L += ',';
      appendU64(L, B);
      L += ':';
      appendU64(L, N);
      Any = true;
    }
    if (!Any)
      L += '-';
    L += ' ';
    L += stabilityName(NM.Stability);
    Lines.emplace_back(Name, std::move(L));
  }

  std::sort(Lines.begin(), Lines.end());

  std::string Out = "# clgen metrics v1\n";
  for (auto &[Name, Line] : Lines) {
    Out += Line;
    Out += '\n';
  }
  return Out;
}

void MetricsRegistry::reset() {
  RegistryImpl &R = impl();
  std::lock_guard<std::mutex> Lock(R.M);
  for (auto &[Name, NM] : R.Counters)
    NM.Metric->reset();
  for (auto &[Name, NM] : R.Gauges)
    NM.Metric->reset();
  for (auto &[Name, NM] : R.Histograms)
    NM.Metric->reset();
}

} // namespace support
} // namespace clgen

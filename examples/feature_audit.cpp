//===- examples/feature_audit.cpp - Auditing feature designs ------------------===//
//
// Uses CLgen's dense feature-space coverage to audit a feature set, the
// secondary use-case of section 8.2: find groups of kernels with
// identical feature values but different optimal mappings. Such
// collisions mean the features cannot discriminate programs that behave
// differently, and the feature designer should extend them — the paper
// adds a static branch count.
//
//===----------------------------------------------------------------------===//

#include "clgen/Pipeline.h"
#include "features/Features.h"
#include "githubsim/GithubSim.h"
#include "runtime/HostDriver.h"

#include <cstdio>
#include <map>

using namespace clgen;

int main() {
  std::printf("training CLgen...\n");
  githubsim::GithubSimOptions MineOpts;
  MineOpts.FileCount = 800;
  auto Pipeline =
      core::ClgenPipeline::train(githubsim::mineGithub(MineOpts));

  std::printf("synthesizing kernels to probe the feature space...\n");
  core::SynthesisOptions SOpts;
  SOpts.TargetKernels = 150;
  SOpts.Sampling.Temperature = 0.6;
  auto Synth = Pipeline.synthesize(SOpts);
  std::printf("probing with %zu kernels\n\n", Synth.Kernels.size());

  // Bucket kernels by Table-2a static feature tuple and record the
  // optimal device of each member.
  auto P = runtime::amdPlatform();
  std::map<std::array<int64_t, 4>,
           std::vector<std::pair<std::string, bool>>>
      Buckets;
  for (const auto &SK : Synth.Kernels) {
    runtime::DriverOptions DOpts;
    DOpts.GlobalSize = 65536;
    auto M = runtime::runBenchmark(SK.Kernel, P, DOpts);
    if (!M.ok())
      continue;
    auto Key = features::extractStaticFeatures(SK.Kernel).keyNoBranch();
    Buckets[Key].push_back({SK.Source, M.get().gpuIsBest()});
  }

  int Collisions = 0;
  for (const auto &[Key, Members] : Buckets) {
    bool AnyGpu = false, AnyCpu = false;
    for (const auto &[Src, Gpu] : Members) {
      AnyGpu |= Gpu;
      AnyCpu |= !Gpu;
    }
    if (!(AnyGpu && AnyCpu))
      continue;
    ++Collisions;
    if (Collisions == 1) {
      std::printf("feature collision at (comp=%lld mem=%lld localmem=%lld "
                  "coalesced=%lld):\n",
                  static_cast<long long>(Key[0]),
                  static_cast<long long>(Key[1]),
                  static_cast<long long>(Key[2]),
                  static_cast<long long>(Key[3]));
      for (size_t I = 0; I < Members.size() && I < 2; ++I)
        std::printf("\n--- member (best on %s) ---\n%s",
                    Members[I].second ? "GPU" : "CPU",
                    Members[I].first.c_str());
      std::printf("\n");
    }
  }
  std::printf("feature tuples with conflicting optimal mappings: %d of "
              "%zu\n",
              Collisions, Buckets.size());
  std::printf("\nEach collision is a pair the Grewe et al. features "
              "cannot separate;\nsection 8.2 extends the feature vector "
              "(e.g. branch counts) to fix this.\n");
  return 0;
}

//===- vm/Bytecode.h - Register bytecode for OpenCL kernels ------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The register bytecode that kernels are lowered to. This plays the role
/// of NVIDIA PTX in the paper's pipeline: the rejection filter's "compiles
/// and has a static instruction count of at least three" check (section
/// 4.1) is evaluated against this representation, and the execution engine
/// interprets it with full instrumentation.
///
/// Design notes:
///  - unlimited virtual registers, each holding a scalar or vector value
///    (up to 16 lanes);
///  - memory is addressed as (address space, buffer slot, element index);
///    pointer provenance is resolved statically by the compiler, so no
///    runtime pointer values exist;
///  - user functions are inlined during lowering (Sema rejects recursion),
///    so there is no call stack.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_VM_BYTECODE_H
#define CLGEN_VM_BYTECODE_H

#include "ocl/Type.h"

#include <cstdint>
#include <string>
#include <vector>

namespace clgen {
namespace vm {

/// Runtime value: up to 16 double lanes. Integers are represented exactly
/// in doubles (all workloads stay far below 2^53); bitwise operations go
/// through int64 conversion.
struct Value {
  double Lanes[16] = {0};
  uint8_t Width = 1;

  static Value scalar(double X) {
    Value V;
    V.Lanes[0] = X;
    return V;
  }
  static Value splat(double X, uint8_t Width) {
    Value V;
    V.Width = Width;
    for (int I = 0; I < Width; ++I)
      V.Lanes[I] = X;
    return V;
  }
  double x() const { return Lanes[0]; }
};

/// Address spaces a memory instruction can target.
enum class MemSpace : uint8_t { Global, Local, Private };

/// VM-level binary operations (Aux field of BinOp).
enum class VmBinOp : uint8_t {
  Add, Sub, Mul, DivF, DivI, RemI, RemF,
  Shl, Shr, And, Or, Xor,
  Lt, Le, Gt, Ge, Eq, Ne,
  MinI, MaxI, // used by builtin lowering
};

/// VM-level unary operations.
enum class VmUnOp : uint8_t { Neg, BitNot, LogicNot };

enum class Opcode : uint8_t {
  LoadConst, // Dst = Consts[Imm]
  Mov,       // Dst = R[A]
  BinOp,     // Dst = R[A] <Aux:VmBinOp> R[B]
  UnOp,      // Dst = <Aux:VmUnOp> R[A]
  Cast,      // Dst = convert R[A] to scalar kind Aux (element-wise)
  Broadcast, // Dst = splat(R[A].x, width=B)
  Swizzle,   // Dst = R[A] lanes selected by Masks[Imm]
  InsertLanes, // R[Dst] lanes Masks[Imm] = lanes of R[B] (in place)
  BuildVec,  // Dst = vector assembled from registers in ArgLists[Imm]
  LoadMem,   // Dst = buffer<Aux:MemSpace, slot Imm>[R[A]]
  StoreMem,  // buffer<Aux:MemSpace, slot Imm>[R[A]] = R[B]
  VLoad,     // Dst = W consecutive scalars at R[A]*W (W = Flags width)
  VStore,    // store R[B] (width W) at R[A]*W
  CallB,     // Dst = builtin Aux(BuiltinOp) with args ArgLists[Imm]
  Atomic,    // Dst = old; buffer[R[A]] = op(old, R[B]); Aux = BuiltinOp
  Jmp,       // pc = Imm
  Jz,        // if R[A] == 0: pc = Imm
  Jnz,       // if R[A] != 0: pc = Imm
  Barrier,   // work-group barrier
  Halt,      // end of kernel for this work-item
};

/// One bytecode instruction. Field use depends on Opcode (see above).
struct Instr {
  Opcode Op;
  uint8_t Aux = 0;   // VmBinOp / VmUnOp / Scalar / MemSpace / BuiltinOp.
  uint16_t Dst = 0;
  uint16_t A = 0;
  uint16_t B = 0;
  int32_t Imm = 0;
  /// For memory ops: static coalescing classification of the access site.
  bool Coalesced = false;
  /// For VLoad/VStore: vector width. For Cast: target width.
  uint8_t WidthField = 0;
  /// For memory ops and Atomic: the address space.
  MemSpace Space = MemSpace::Global;
};

/// Kernel parameter descriptor: either a scalar bound at launch, or a
/// buffer bound to a slot.
struct ParamInfo {
  ocl::QualType Ty;
  std::string Name;
  bool IsBuffer = false;
  /// For buffers: slot index (position among buffer params).
  int BufferSlot = -1;
  /// For scalars: the register the engine preloads.
  uint16_t Reg = 0;
};

/// Local (work-group shared) buffer requirement: from __local arrays or
/// __local pointer parameters.
struct LocalBufferInfo {
  /// Element lane width.
  uint8_t ElemWidth = 1;
  /// Static element count; 0 means "sized by the driver" (pointer param).
  int64_t Elements = 0;
};

/// Private (per work-item) array.
struct PrivateBufferInfo {
  uint8_t ElemWidth = 1;
  int64_t Elements = 0;
};

/// Static classification of one memory access site (used both by the
/// paper's static features and by diagnostics).
struct AccessSite {
  MemSpace Space;
  bool IsStore;
  bool Coalesced;
};

/// A fully lowered kernel ready for execution.
struct CompiledKernel {
  std::string Name;
  std::vector<Instr> Code;
  std::vector<Value> Consts;
  std::vector<std::vector<uint8_t>> Masks;
  std::vector<std::vector<uint16_t>> ArgLists;
  std::vector<ParamInfo> Params;
  std::vector<LocalBufferInfo> LocalBuffers;
  std::vector<PrivateBufferInfo> PrivateBuffers;
  std::vector<AccessSite> AccessSites;
  uint16_t RegisterCount = 0;
  /// Number of conditional-branch sites (for divergence bookkeeping).
  int BranchSites = 0;
  /// True when the kernel contains at least one barrier instruction.
  bool HasBarrier = false;

  /// Number of buffer parameters (== number of global buffer slots).
  size_t bufferParamCount() const {
    size_t N = 0;
    for (const ParamInfo &P : Params)
      N += P.IsBuffer && P.Ty.AS == ocl::AddrSpace::Global;
    return N;
  }

  /// The paper's static instruction count (rejection filter threshold).
  size_t staticInstructionCount() const { return Code.size(); }
};

/// Short mnemonic for \p Op ("ldc", "bin", "jz", ...), as used by the
/// disassembler and the opcode-profile reports.
const char *opcodeName(Opcode Op);

/// Validates internal consistency of \p K (register bounds, jump targets,
/// table indices). Returns an empty string when valid, else a diagnostic.
std::string verifyKernel(const CompiledKernel &K);

/// Renders a human-readable disassembly (used in tests and debugging).
std::string disassemble(const CompiledKernel &K);

} // namespace vm
} // namespace clgen

#endif // CLGEN_VM_BYTECODE_H

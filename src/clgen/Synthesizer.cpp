//===- clgen/Synthesizer.cpp - Benchmark synthesis loop -----------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Parallel batched synthesis. Candidate generation (model sampling +
// rejection filter + normalisation) is a pure function of the candidate's
// attempt index: attempt i samples from the counter-keyed RNG stream
// split(i) on a per-worker model clone, so any number of workers computes
// the same candidate set. The accept stage then walks candidates in
// attempt order, which pins deduplication and the stop point; output is
// bit-identical across worker counts, including the serial path.
//
//===----------------------------------------------------------------------===//

#include "clgen/Synthesizer.h"

#include "corpus/Rewriter.h"
#include "ocl/AstPrinter.h"
#include "support/ThreadPool.h"

#include <unordered_set>

using namespace clgen;
using namespace clgen::core;

namespace {

/// Outcome of one candidate attempt, produced on a worker.
struct Candidate {
  enum class Status { Incomplete, Rejected, Complete };
  Status S = Status::Incomplete;
  std::string Normalised;
  vm::CompiledKernel Kernel;
};

/// The per-attempt pipeline stage: sample -> filter -> normalise. Pure
/// given (model parameters, seed text, options, RNG stream); runs
/// concurrently on per-worker model clones.
Candidate produceCandidate(model::LanguageModel &Model,
                           const std::string &Seed,
                           const SampleOptions &Sampling,
                           const corpus::FilterOptions &FilterOpts, Rng R) {
  Candidate C;
  std::optional<std::string> Sample = sampleKernel(Model, Seed, Sampling, R);
  if (!Sample)
    return C;
  corpus::FilterResult FR = corpus::filterContentFile(*Sample, FilterOpts);
  if (!FR.Accepted) {
    C.S = Candidate::Status::Rejected;
    return C;
  }
  // Normalise (the sample is near-normal already, but renaming +
  // canonical printing makes deduplication exact) and keep the first
  // kernel.
  corpus::renameIdentifiers(*FR.Prog);
  C.Normalised = ocl::printProgram(*FR.Prog);
  C.Kernel = std::move(FR.Kernels.front());
  C.S = Candidate::Status::Complete;
  return C;
}

} // namespace

SynthesisResult core::synthesizeKernels(model::LanguageModel &Model,
                                        const SynthesisOptions &Opts) {
  return synthesizeKernels(Model, Opts, AcceptSink());
}

SynthesisResult core::synthesizeKernels(model::LanguageModel &Model,
                                        const SynthesisOptions &Opts,
                                        const AcceptSink &Sink) {
  SynthesisResult Result;
  SynthesisStats &Stats = Result.Stats;
  Rng Base(Opts.Seed);

  std::string Seed =
      Opts.Spec ? Opts.Spec->seedText() : freeModeSeed();
  size_t MaxAttempts =
      Opts.MaxAttempts > 0 ? Opts.MaxAttempts : Opts.TargetKernels * 100;

  corpus::FilterOptions FilterOpts;
  // Samples are drawn from the normalised corpus distribution; the shim
  // is unnecessary (and injecting it would not hurt, only slow).
  FilterOpts.UseShim = false;

  std::unordered_set<std::string> Dedup;

  // In-order accept stage; returns false once the target is reached.
  auto Consume = [&](Candidate &C) {
    ++Stats.Attempts;
    switch (C.S) {
    case Candidate::Status::Incomplete:
      ++Stats.IncompleteSamples;
      return true;
    case Candidate::Status::Rejected:
      ++Stats.RejectedByFilter;
      return true;
    case Candidate::Status::Complete:
      break;
    }
    if (!Dedup.insert(C.Normalised).second) {
      ++Stats.Duplicates;
      return true;
    }
    SynthesizedKernel SK;
    SK.Source = std::move(C.Normalised);
    SK.Kernel = std::move(C.Kernel);
    Result.Kernels.push_back(std::move(SK));
    ++Stats.Accepted;
    // Stream the accepted kernel out before sampling continues: the
    // sink runs on this (accept-order) thread and may block, pausing
    // synthesis until downstream consumers catch up.
    if (Sink)
      Sink(Result.Kernels.size() - 1, Result.Kernels.back());
    return Result.Kernels.size() < Opts.TargetKernels;
  };

  size_t Workers = ThreadPool::resolveWorkerCount(Opts.Workers);

  // Per-worker model clones keep stateful generation thread-private.
  std::vector<std::unique_ptr<model::LanguageModel>> Clones;
  if (Workers > 1) {
    for (size_t W = 0; W < Workers; ++W) {
      std::unique_ptr<model::LanguageModel> C = Model.clone();
      if (!C) {
        Clones.clear();
        Workers = 1; // Model not cloneable: fall back to serial.
        break;
      }
      Clones.push_back(std::move(C));
    }
  }

  if (Workers == 1) {
    for (size_t Attempt = 0;
         Result.Kernels.size() < Opts.TargetKernels &&
         Attempt < MaxAttempts;
         ++Attempt) {
      Candidate C = produceCandidate(Model, Seed, Opts.Sampling, FilterOpts,
                                     Base.split(Attempt));
      if (!Consume(C))
        break;
    }
    return Result;
  }

  ThreadPool Pool(Workers);
  size_t WaveSize =
      Opts.WaveSize > 0 ? Opts.WaveSize : std::max<size_t>(Workers * 4, 16);
  std::vector<Candidate> Wave;

  size_t NextAttempt = 0;
  bool Done = Result.Kernels.size() >= Opts.TargetKernels;
  while (!Done && NextAttempt < MaxAttempts) {
    size_t Count = std::min(WaveSize, MaxAttempts - NextAttempt);
    Wave.clear();
    Wave.resize(Count);
    Pool.parallelFor(0, Count, [&](size_t Worker, size_t I) {
      Wave[I] = produceCandidate(*Clones[Worker], Seed, Opts.Sampling,
                                 FilterOpts, Base.split(NextAttempt + I));
    });
    // Candidates past the stop point are speculative surplus: dropped
    // without touching the stats, exactly as if they were never sampled.
    for (size_t I = 0; I < Count && !Done; ++I)
      Done = !Consume(Wave[I]);
    NextAttempt += Count;
  }
  return Result;
}

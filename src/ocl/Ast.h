//===- ocl/Ast.h - OpenCL C abstract syntax tree -----------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node definitions for the OpenCL C subset. Nodes use LLVM-style
/// kind discriminators with classof() so they work with the isa<> /
/// cast<> / dyn_cast<> templates in ocl/Casting.h (the project builds
/// without RTTI-style dynamic_cast).
///
/// Ownership: children are held by std::unique_ptr; a Program owns its
/// top-level declarations.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_OCL_AST_H
#define CLGEN_OCL_AST_H

#include "ocl/Type.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace clgen {
namespace ocl {

class Expr;
class Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class BinaryOp : uint8_t {
  Add, Sub, Mul, Div, Rem,
  Shl, Shr, BitAnd, BitOr, BitXor,
  LAnd, LOr,
  Lt, Gt, Le, Ge, Eq, Ne,
  Assign, AddAssign, SubAssign, MulAssign, DivAssign, RemAssign,
  ShlAssign, ShrAssign, AndAssign, OrAssign, XorAssign,
};

enum class UnaryOp : uint8_t {
  Plus, Neg, BitNot, LNot,
  PreInc, PreDec, PostInc, PostDec,
  Deref, AddrOf,
};

/// Returns true for the assignment family (including compound assignment).
bool isAssignmentOp(BinaryOp Op);
/// Returns the arithmetic op underlying a compound assignment
/// (AddAssign -> Add); plain Assign has no underlying op and asserts.
BinaryOp underlyingOp(BinaryOp Op);
/// Returns true for comparison operators (result type int).
bool isComparisonOp(BinaryOp Op);
/// Source spelling of an operator ("+=", "&&", ...).
const char *binaryOpSpelling(BinaryOp Op);
const char *unaryOpSpelling(UnaryOp Op);

/// Base class of all expressions. Carries the type computed by Sema.
class Expr {
public:
  enum class Kind : uint8_t {
    IntLiteral,
    FloatLiteral,
    VarRef,
    Binary,
    Unary,
    Call,
    Index,
    Member,
    Cast,
    VectorLiteral,
    Conditional,
  };

  virtual ~Expr();

  Kind kind() const { return K; }
  int line() const { return Line; }

  /// The expression's type; Void until Sema has run.
  QualType Ty;

protected:
  Expr(Kind K, int Line) : K(K), Line(Line) {}

private:
  Kind K;
  int Line;
};

/// Integer literal (decimal, hex or character constant).
class IntLiteralExpr : public Expr {
public:
  IntLiteralExpr(int64_t Value, bool IsUnsigned, int Line)
      : Expr(Kind::IntLiteral, Line), Value(Value), IsUnsigned(IsUnsigned) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::IntLiteral; }

  int64_t Value;
  bool IsUnsigned;
};

/// Floating-point literal.
class FloatLiteralExpr : public Expr {
public:
  FloatLiteralExpr(double Value, bool IsDoublePrecision, int Line)
      : Expr(Kind::FloatLiteral, Line), Value(Value),
        IsDoublePrecision(IsDoublePrecision) {}
  static bool classof(const Expr *E) {
    return E->kind() == Kind::FloatLiteral;
  }

  double Value;
  bool IsDoublePrecision;
};

/// Reference to a named variable or parameter.
class VarRefExpr : public Expr {
public:
  VarRefExpr(std::string Name, int Line)
      : Expr(Kind::VarRef, Line), Name(std::move(Name)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::VarRef; }

  std::string Name;
};

/// Binary operator, including assignments.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, ExprPtr Lhs, ExprPtr Rhs, int Line)
      : Expr(Kind::Binary, Line), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

  BinaryOp Op;
  ExprPtr Lhs, Rhs;
};

/// Unary operator, including ++/-- and pointer deref/address-of.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, ExprPtr Operand, int Line)
      : Expr(Kind::Unary, Line), Op(Op), Operand(std::move(Operand)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

  UnaryOp Op;
  ExprPtr Operand;
};

/// Function call; Callee is a plain name resolved by Sema to either a
/// builtin or a user-defined function in the same translation unit.
class CallExpr : public Expr {
public:
  CallExpr(std::string Callee, std::vector<ExprPtr> Args, int Line)
      : Expr(Kind::Call, Line), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Call; }

  std::string Callee;
  std::vector<ExprPtr> Args;
  /// Set by Sema: true when Callee is an OpenCL builtin.
  bool IsBuiltin = false;
};

/// Array subscript Base[Index].
class IndexExpr : public Expr {
public:
  IndexExpr(ExprPtr Base, ExprPtr Index, int Line)
      : Expr(Kind::Index, Line), Base(std::move(Base)),
        Index(std::move(Index)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Index; }

  ExprPtr Base;
  ExprPtr Index;
};

/// Vector component / swizzle access, e.g. v.x, v.s0, v.xyz.
class MemberExpr : public Expr {
public:
  MemberExpr(ExprPtr Base, std::string Component, int Line)
      : Expr(Kind::Member, Line), Base(std::move(Base)),
        Component(std::move(Component)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Member; }

  ExprPtr Base;
  std::string Component;
  /// Lane indices resolved by Sema (one per swizzle element).
  std::vector<uint8_t> Lanes;
};

/// C-style scalar cast, e.g. (int)x or (float)x.
class CastExpr : public Expr {
public:
  CastExpr(QualType Target, ExprPtr Operand, int Line)
      : Expr(Kind::Cast, Line), Target(Target), Operand(std::move(Operand)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Cast; }

  QualType Target;
  ExprPtr Operand;
};

/// OpenCL vector literal, e.g. (float4)(0.0f) or (int2)(a, b). A single
/// element broadcasts; otherwise element count must match the width.
class VectorLiteralExpr : public Expr {
public:
  VectorLiteralExpr(QualType Target, std::vector<ExprPtr> Elements, int Line)
      : Expr(Kind::VectorLiteral, Line), Target(Target),
        Elements(std::move(Elements)) {}
  static bool classof(const Expr *E) {
    return E->kind() == Kind::VectorLiteral;
  }

  QualType Target;
  std::vector<ExprPtr> Elements;
};

/// Ternary conditional Cond ? TrueExpr : FalseExpr.
class ConditionalExpr : public Expr {
public:
  ConditionalExpr(ExprPtr Cond, ExprPtr TrueExpr, ExprPtr FalseExpr, int Line)
      : Expr(Kind::Conditional, Line), Cond(std::move(Cond)),
        TrueExpr(std::move(TrueExpr)), FalseExpr(std::move(FalseExpr)) {}
  static bool classof(const Expr *E) {
    return E->kind() == Kind::Conditional;
  }

  ExprPtr Cond, TrueExpr, FalseExpr;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt {
public:
  enum class Kind : uint8_t {
    Compound,
    Decl,
    Expr,
    If,
    For,
    While,
    Do,
    Return,
    Break,
    Continue,
    Empty,
  };

  virtual ~Stmt();

  Kind kind() const { return K; }
  int line() const { return Line; }

protected:
  Stmt(Kind K, int Line) : K(K), Line(Line) {}

private:
  Kind K;
  int Line;
};

/// { ... } block.
class CompoundStmt : public Stmt {
public:
  explicit CompoundStmt(int Line) : Stmt(Kind::Compound, Line) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Compound; }

  std::vector<StmtPtr> Body;
};

/// A local variable declaration, possibly an array and possibly __local.
class DeclStmt : public Stmt {
public:
  DeclStmt(QualType Ty, std::string Name, ExprPtr Init, int Line)
      : Stmt(Kind::Decl, Line), Ty(Ty), Name(std::move(Name)),
        Init(std::move(Init)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Decl; }

  QualType Ty;
  std::string Name;
  ExprPtr Init; // May be null.
  /// For array declarations: the constant element count, else 0.
  int64_t ArraySize = 0;
};

/// Expression statement.
class ExprStmt : public Stmt {
public:
  ExprStmt(ExprPtr E, int Line) : Stmt(Kind::Expr, Line), E(std::move(E)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Expr; }

  ExprPtr E;
};

class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else, int Line)
      : Stmt(Kind::If, Line), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; // May be null.
};

class ForStmt : public Stmt {
public:
  ForStmt(StmtPtr Init, ExprPtr Cond, ExprPtr Step, StmtPtr Body, int Line)
      : Stmt(Kind::For, Line), Init(std::move(Init)), Cond(std::move(Cond)),
        Step(std::move(Step)), Body(std::move(Body)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::For; }

  StmtPtr Init; // DeclStmt, ExprStmt or null.
  ExprPtr Cond; // May be null (infinite loop).
  ExprPtr Step; // May be null.
  StmtPtr Body;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtPtr Body, int Line)
      : Stmt(Kind::While, Line), Cond(std::move(Cond)), Body(std::move(Body)) {
  }
  static bool classof(const Stmt *S) { return S->kind() == Kind::While; }

  ExprPtr Cond;
  StmtPtr Body;
};

class DoStmt : public Stmt {
public:
  DoStmt(StmtPtr Body, ExprPtr Cond, int Line)
      : Stmt(Kind::Do, Line), Body(std::move(Body)), Cond(std::move(Cond)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Do; }

  StmtPtr Body;
  ExprPtr Cond;
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(ExprPtr Value, int Line)
      : Stmt(Kind::Return, Line), Value(std::move(Value)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Return; }

  ExprPtr Value; // May be null.
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(int Line) : Stmt(Kind::Break, Line) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Break; }
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(int Line) : Stmt(Kind::Continue, Line) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Continue; }
};

class EmptyStmt : public Stmt {
public:
  explicit EmptyStmt(int Line) : Stmt(Kind::Empty, Line) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Empty; }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// A function parameter.
struct ParamDecl {
  QualType Ty;
  std::string Name;
};

/// A function definition (kernels and helper functions).
class FunctionDecl {
public:
  QualType ReturnTy;
  std::string Name;
  std::vector<ParamDecl> Params;
  std::unique_ptr<CompoundStmt> Body;
  bool IsKernel = false;
  bool IsInline = false;
  int Line = 0;
};

/// A whole translation unit: functions plus file-scope __constant
/// variables.
class Program {
public:
  /// File-scope constant declaration, e.g. __constant float Pi = 3.14f;
  struct GlobalConst {
    QualType Ty;
    std::string Name;
    ExprPtr Init;
  };

  std::vector<std::unique_ptr<FunctionDecl>> Functions;
  std::vector<GlobalConst> Constants;

  /// Returns the first kernel function, or nullptr when none exists.
  FunctionDecl *firstKernel() const;
  /// Returns the function named \p Name, or nullptr.
  FunctionDecl *findFunction(std::string_view Name) const;
  /// Number of kernel-qualified functions.
  size_t kernelCount() const;
};

} // namespace ocl
} // namespace clgen

#endif // CLGEN_OCL_AST_H

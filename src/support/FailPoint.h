//===- support/FailPoint.h - Deterministic fault injection -------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic failpoint framework. Named injection sites are scattered
/// through the pipeline (interpreter traps, payload generation, channel
/// producer/consumer, store I/O, lock acquisition) behind the
/// CLGS_FAILPOINT macros, which compile to a branch only when the library
/// is built with -DCLGS_FAILPOINTS=ON and to the constant `false`
/// otherwise — release builds carry zero overhead.
///
/// Injection is *bit-reproducible*: whether the n-th evaluation of a
/// (site, key) pair trips is a pure function of (plan seed, site name,
/// key, n), derived through Rng::split chains. Thread scheduling cannot
/// change any stream's decisions, and because the per-pair hit counter
/// advances on every evaluation, a retry of a tripped operation sees a
/// fresh decision and can clear — exactly the behavior the retry layer
/// needs to converge.
///
/// The runtime API (arm/disarm/trip/stats) is always compiled so tests
/// can exercise the decision logic in any build; only the *sites* are
/// conditionally compiled. FailPoints::sitesCompiledIn() reports whether
/// this library build contains live sites.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_SUPPORT_FAILPOINT_H
#define CLGEN_SUPPORT_FAILPOINT_H

#include <cstdint>
#include <string>
#include <vector>

namespace clgen {
namespace support {

/// One armed injection schedule. Deterministic: two runs armed with the
/// same plan make identical trip decisions for identical (site, key,
/// evaluation-count) triples.
struct FailPlan {
  /// Root of the Rng::split chain that keys every decision.
  uint64_t Seed = 0;
  /// Probability in [0, 1] that any single evaluation trips.
  double Probability = 0.0;
  /// Upper bound on total fires per site; ~0ull means unbounded.
  uint64_t MaxFiresPerSite = ~0ull;
  /// How long a tripped stall site sleeps, bounded so that runs without
  /// a watchdog still terminate.
  uint32_t StallMs = 10;
  /// Restrict injection to these exact site names; empty = all sites.
  std::vector<std::string> Sites;
};

/// Global failpoint registry. All members are thread-safe.
class FailPoints {
public:
  /// True when this build of the library compiled the injection sites in
  /// (-DCLGS_FAILPOINTS=ON).
  static bool sitesCompiledIn();

  /// Installs \p Plan and resets all per-site counters.
  static void arm(const FailPlan &Plan);

  /// Removes any armed plan and resets all per-site counters.
  static void disarm();

  /// True when a plan is armed.
  static bool armed();

  /// The decision procedure behind the CLGS_FAILPOINT macros: records a
  /// hit for (\p Site, \p Key) and returns true when this evaluation
  /// trips under the armed plan. Always false when disarmed.
  static bool trip(const char *Site, uint64_t Key = 0);

  /// Trips like trip(), and on a trip sleeps for the plan's StallMs
  /// before returning — models a hung worker for the watchdog to catch.
  /// Returns whether it stalled.
  static bool stall(const char *Site, uint64_t Key = 0);

  /// Hit/fire counts for one site since the last arm()/disarm().
  struct SiteStats {
    std::string Site;
    uint64_t Hits = 0;
    uint64_t Fires = 0;
  };

  /// Per-site counters, sorted by site name.
  static std::vector<SiteStats> stats();

  /// Total fires across all sites since the last arm()/disarm().
  static uint64_t totalFires();
};

} // namespace support
} // namespace clgen

/// Site macros. Use as `if (CLGS_FAILPOINT("store.write")) { <fail> }`.
/// CLGS_FAILPOINT_KEYED threads a stable identity (accept index, cache
/// key) into the decision so per-item streams are scheduling-independent.
#if defined(CLGS_FAILPOINTS)
#define CLGS_FAILPOINT(SITE) (::clgen::support::FailPoints::trip(SITE))
#define CLGS_FAILPOINT_KEYED(SITE, KEY)                                        \
  (::clgen::support::FailPoints::trip(SITE, (KEY)))
#define CLGS_FAILPOINT_STALL(SITE, KEY)                                        \
  (::clgen::support::FailPoints::stall(SITE, (KEY)))
#else
#define CLGS_FAILPOINT(SITE) (false)
#define CLGS_FAILPOINT_KEYED(SITE, KEY) (false)
#define CLGS_FAILPOINT_STALL(SITE, KEY) (false)
#endif

#endif // CLGEN_SUPPORT_FAILPOINT_H

//===- store/FailureLedger.cpp - Persistent failure ledger ----------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "store/FailureLedger.h"

#include "support/FailPoint.h"
#include "support/Metrics.h"
#include "support/StringUtils.h"
#include "support/Trace.h"

#include <algorithm>
#include <filesystem>

using namespace clgen;
using namespace clgen::store;

//===----------------------------------------------------------------------===//
// Record payload
//===----------------------------------------------------------------------===//

void store::serializeFailureRecord(ArchiveWriter &W, uint64_t Key,
                                   const FailureRecord &Record) {
  // Layout (docs/STORE_FORMAT.md): the key is echoed into the payload so
  // a record is self-describing even when renamed, then the classified
  // cause, the attempt count and the verbatim diagnostic.
  W.writeU64(Key);
  W.writeU8(static_cast<uint8_t>(Record.Kind));
  W.writeU32(Record.Attempts);
  W.writeString(Record.Detail);
}

Result<std::pair<uint64_t, FailureRecord>>
store::deserializeFailureRecord(ArchiveReader &R) {
  uint64_t Key = R.readU64();
  FailureRecord Record;
  Record.Kind = trapKindFromTag(R.readU8());
  Record.Attempts = R.readU32();
  Record.Detail = R.readString();
  Status S = R.finish();
  if (!S.ok())
    return Result<std::pair<uint64_t, FailureRecord>>::error(
        S.errorMessage(), TrapKind::IoError);
  return std::make_pair(Key, std::move(Record));
}

//===----------------------------------------------------------------------===//
// FailureLedger
//===----------------------------------------------------------------------===//

FailureLedger::FailureLedger(std::string Directory)
    : Dir(std::move(Directory)) {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  DirOk = !Ec && std::filesystem::is_directory(Dir, Ec);
}

std::string FailureLedger::entryPath(uint64_t Key) const {
  return Dir + "/" + hexDigest(Key) + ".clgs";
}

std::optional<FailureRecord> FailureLedger::lookup(uint64_t Key) {
  Counters.Lookups.fetch_add(1, std::memory_order_relaxed);
  CLGS_COUNT("clgen.ledger.lookups");
  // Injected read fault: an honest miss — the kernel is re-measured and
  // (still failing deterministically) re-recorded.
  if (CLGS_FAILPOINT_KEYED("ledger.read", Key))
    return std::nullopt;
  auto Opened = ArchiveReader::open(entryPath(Key), ArchiveKind::Failure);
  if (!Opened.ok()) {
    std::error_code Ec;
    if (DirOk && std::filesystem::exists(entryPath(Key), Ec)) {
      Counters.BadEntries.fetch_add(1, std::memory_order_relaxed);
      CLGS_COUNT("clgen.ledger.bad_entries");
    }
    return std::nullopt;
  }
  ArchiveReader R = Opened.take();
  auto Decoded = deserializeFailureRecord(R);
  if (!Decoded.ok()) {
    Counters.BadEntries.fetch_add(1, std::memory_order_relaxed);
    CLGS_COUNT("clgen.ledger.bad_entries");
    return std::nullopt;
  }
  Counters.NegativeHits.fetch_add(1, std::memory_order_relaxed);
  CLGS_COUNT("clgen.ledger.negative_hits");
  return Decoded.take().second;
}

Status FailureLedger::record(uint64_t Key, const FailureRecord &Record) {
  CLGS_TRACE_SPAN("ledger.write");
  if (!isDeterministicTrap(Record.Kind)) {
    // Policy refusal, not an error: transient and environment-dependent
    // failures must never poison future runs.
    Counters.Rejected.fetch_add(1, std::memory_order_relaxed);
    CLGS_COUNT_V("clgen.ledger.rejected");
    return Status();
  }
  Counters.Records.fetch_add(1, std::memory_order_relaxed);
  CLGS_COUNT("clgen.ledger.records");
  if (!DirOk) {
    Counters.WriteFailures.fetch_add(1, std::memory_order_relaxed);
    CLGS_COUNT_V("clgen.ledger.write_failures");
    return Status::error("ledger directory unavailable: " + Dir,
                         TrapKind::IoError);
  }
  if (CLGS_FAILPOINT_KEYED("ledger.write", Key)) {
    // Injected write fault: the failure stays unrecorded this run and is
    // rediscovered (and re-recorded) by the next one.
    Counters.WriteFailures.fetch_add(1, std::memory_order_relaxed);
    CLGS_COUNT_V("clgen.ledger.write_failures");
    return Status::error("injected fault at ledger.write",
                         TrapKind::Injected);
  }
  ArchiveWriter W(ArchiveKind::Failure);
  serializeFailureRecord(W, Key, Record);
  Status S = W.saveTo(entryPath(Key));
  if (!S.ok()) {
    Counters.WriteFailures.fetch_add(1, std::memory_order_relaxed);
    CLGS_COUNT_V("clgen.ledger.write_failures");
  }
  return S;
}

FailureLedger::Stats FailureLedger::stats() const {
  Stats Out;
  Out.Lookups = Counters.Lookups.load(std::memory_order_relaxed);
  Out.NegativeHits = Counters.NegativeHits.load(std::memory_order_relaxed);
  Out.BadEntries = Counters.BadEntries.load(std::memory_order_relaxed);
  Out.Records = Counters.Records.load(std::memory_order_relaxed);
  Out.Rejected = Counters.Rejected.load(std::memory_order_relaxed);
  Out.WriteFailures =
      Counters.WriteFailures.load(std::memory_order_relaxed);
  return Out;
}

//===----------------------------------------------------------------------===//
// Inspection
//===----------------------------------------------------------------------===//

std::vector<std::pair<uint64_t, FailureRecord>>
store::listFailures(const std::string &Directory) {
  std::vector<std::pair<uint64_t, FailureRecord>> Out;
  std::error_code Ec;
  std::filesystem::directory_iterator It(Directory, Ec), End;
  for (; !Ec && It != End; It.increment(Ec)) {
    if (!It->is_regular_file(Ec) || It->path().extension() != ".clgs")
      continue;
    auto Opened =
        ArchiveReader::open(It->path().string(), ArchiveKind::Failure);
    if (!Opened.ok())
      continue;
    ArchiveReader R = Opened.take();
    auto Decoded = deserializeFailureRecord(R);
    if (Decoded.ok())
      Out.push_back(Decoded.take());
  }
  std::sort(Out.begin(), Out.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  return Out;
}

std::string store::formatFailures(
    const std::vector<std::pair<uint64_t, FailureRecord>> &Records) {
  std::string Out;
  for (const auto &[Key, Record] : Records)
    Out += formatString("%s %-24s %2u  %s\n", hexDigest(Key).c_str(),
                        trapKindName(Record.Kind), Record.Attempts,
                        Record.Detail.c_str());
  return Out;
}

//===- ocl/Token.h - Token definitions for OpenCL C -------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds produced by the OpenCL C lexer. The lexer runs after the
/// preprocessor, so tokens never contain preprocessor directives.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_OCL_TOKEN_H
#define CLGEN_OCL_TOKEN_H

#include <string>

namespace clgen {
namespace ocl {

enum class TokenKind {
  Eof,
  Identifier,
  Keyword,    // Control-flow / declaration keywords (if, for, return, ...).
  IntLiteral, // Includes hex and character literals (value resolved).
  FloatLiteral,
  StringLiteral,
  // Punctuation and operators.
  LParen,     // (
  RParen,     // )
  LBrace,     // {
  RBrace,     // }
  LBracket,   // [
  RBracket,   // ]
  Semi,       // ;
  Comma,      // ,
  Dot,        // .
  Arrow,      // ->
  Plus,       // +
  Minus,      // -
  Star,       // *
  Slash,      // /
  Percent,    // %
  Amp,        // &
  Pipe,       // |
  Caret,      // ^
  Tilde,      // ~
  Exclaim,    // !
  Question,   // ?
  Colon,      // :
  Less,       // <
  Greater,    // >
  LessEqual,  // <=
  GreaterEqual, // >=
  EqualEqual, // ==
  ExclaimEqual, // !=
  AmpAmp,     // &&
  PipePipe,   // ||
  LessLess,   // <<
  GreaterGreater, // >>
  Equal,      // =
  PlusEqual,  // +=
  MinusEqual, // -=
  StarEqual,  // *=
  SlashEqual, // /=
  PercentEqual, // %=
  AmpEqual,   // &=
  PipeEqual,  // |=
  CaretEqual, // ^=
  LessLessEqual,       // <<=
  GreaterGreaterEqual, // >>=
  PlusPlus,   // ++
  MinusMinus, // --
  Unknown,
};

/// A single lexed token. \p Text always holds the exact source spelling;
/// literal values are parsed on demand by the parser.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;
  /// 1-based line of the token start, for diagnostics.
  int Line = 0;
  /// 1-based column of the token start, for diagnostics.
  int Column = 0;

  bool is(TokenKind K) const { return Kind == K; }
  bool isKeyword(const char *KW) const {
    return Kind == TokenKind::Keyword && Text == KW;
  }
};

/// Returns a human-readable spelling for diagnostics ("'<='", "identifier").
std::string tokenKindName(TokenKind Kind);

} // namespace ocl
} // namespace clgen

#endif // CLGEN_OCL_TOKEN_H

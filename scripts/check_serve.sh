#!/usr/bin/env bash
#===- scripts/check_serve.sh - clgen-serve daemon end-to-end check -------===//
#
# Drives the shipped clgen-serve binary through its whole lifecycle
# against a throwaway store and socket:
#
#   1. daemon start + ping-wait (readiness over the real socket);
#   2. cold synthesis (trains, samples, persists the kernel set);
#   3. warm synthesis of the same configuration — must report ZERO
#      models trained / samples drawn / kernels measured and an
#      identical kernel-set digest (the streaming-warm-start fix at
#      the CLI surface);
#   4. four concurrent clients on a fresh configuration — the daemon's
#      in-flight dedup plus the store must hold cold computations to
#      exactly one per configuration (stats: cold_computes 2 total);
#   5. a target of 0 kernels is a usage error (exit 2, request never
#      reaches a worker);
#   6. SIGTERM drains gracefully: the daemon answers in-flight work,
#      prints its stats ledger, unlinks the socket and exits 0.
#
# Registered as the ctest `check_serve` (label `serve`); run manually:
#
#   bash scripts/check_serve.sh <clgen-serve-binary>
#
#===----------------------------------------------------------------------===//

set -eu

SERVE=${1:?usage: check_serve.sh <clgen-serve-binary>}

WORK=$(mktemp -d "${TMPDIR:-/tmp}/clgen_check_serve.XXXXXX")
DAEMON=
cleanup() {
  [ -n "$DAEMON" ] && kill "$DAEMON" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

SOCK="$WORK/serve.sock"

# 1. Daemon up, readiness via ping.
"$SERVE" daemon --socket "$SOCK" --store-dir "$WORK/store" --files 120 \
    > "$WORK/daemon.log" 2>&1 &
DAEMON=$!
for _ in $(seq 1 100); do
  "$SERVE" ping --socket "$SOCK" > /dev/null 2>&1 && break
  kill -0 "$DAEMON" 2>/dev/null \
    || { echo "check_serve: daemon died during startup:" >&2;
         cat "$WORK/daemon.log" >&2; exit 1; }
  sleep 0.1
done
"$SERVE" ping --socket "$SOCK" > /dev/null \
  || { echo "check_serve: daemon never became pingable" >&2; exit 1; }

# 2. Cold synthesis.
"$SERVE" synth --socket "$SOCK" --kernels 6 --seed 1 > "$WORK/cold.log"
grep -q "synth: cold (sampled + persisted)" "$WORK/cold.log" \
  || { echo "check_serve: first request did not compute cold" >&2;
       cat "$WORK/cold.log" >&2; exit 1; }

# 3. Warm synthesis: zero work, identical kernel set.
"$SERVE" synth --socket "$SOCK" --kernels 6 --seed 1 > "$WORK/warm.log"
grep -q "synth: warm (kernel set loaded, zero sampling)" "$WORK/warm.log" \
  || { echo "check_serve: repeat request did not warm-start" >&2;
       cat "$WORK/warm.log" >&2; exit 1; }
grep -q "trained 0 models, 0 sample attempts, 0 kernels measured" \
    "$WORK/warm.log" \
  || { echo "check_serve: warm request reported nonzero work" >&2;
       cat "$WORK/warm.log" >&2; exit 1; }
COLD_SET=$(grep '^kernel set:' "$WORK/cold.log")
WARM_SET=$(grep '^kernel set:' "$WORK/warm.log")
[ "$COLD_SET" = "$WARM_SET" ] \
  || { echo "check_serve: warm kernel set differs from cold:" >&2;
       echo "  cold: $COLD_SET" >&2; echo "  warm: $WARM_SET" >&2; exit 1; }

# 4. Concurrent clients, fresh configuration: exactly one cold compute.
PIDS=
for I in 1 2 3 4; do
  "$SERVE" synth --socket "$SOCK" --kernels 6 --seed 2 \
      > "$WORK/conc$I.log" &
  PIDS="$PIDS $!"
done
for P in $PIDS; do
  wait "$P" || { echo "check_serve: concurrent client failed" >&2; exit 1; }
done
"$SERVE" stats --socket "$SOCK" > "$WORK/stats.log"
grep -q "^cold_computes 2$" "$WORK/stats.log" \
  || { echo "check_serve: expected exactly 2 cold computes (1 per" \
            "configuration); stats:" >&2; cat "$WORK/stats.log" >&2; exit 1; }
grep -q "^synth_requests 6$" "$WORK/stats.log" \
  || { echo "check_serve: lost synth requests; stats:" >&2;
       cat "$WORK/stats.log" >&2; exit 1; }

# 5. Target 0 is a usage error, exit 2.
RC=0
"$SERVE" synth --socket "$SOCK" --kernels 0 > /dev/null 2>&1 || RC=$?
[ "$RC" -eq 2 ] \
  || { echo "check_serve: --kernels 0 exited $RC, want usage error 2" >&2;
       exit 1; }

# 6. Graceful SIGTERM drain.
kill -TERM "$DAEMON"
RC=0
wait "$DAEMON" || RC=$?
DAEMON=
[ "$RC" -eq 0 ] \
  || { echo "check_serve: daemon exited $RC on SIGTERM" >&2;
       cat "$WORK/daemon.log" >&2; exit 1; }
grep -q "clgen-serve: drained" "$WORK/daemon.log" \
  || { echo "check_serve: daemon never reported draining" >&2;
       cat "$WORK/daemon.log" >&2; exit 1; }
[ ! -S "$SOCK" ] \
  || { echo "check_serve: socket file survived the drain" >&2; exit 1; }

echo "check_serve: all daemon lifecycle checks passed"

//===- runtime/HostDriver.cpp - Benchmark execution driver -------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/HostDriver.h"

#include "support/ThreadPool.h"
#include "vm/Compiler.h"

#include <algorithm>

using namespace clgen;
using namespace clgen::runtime;
using namespace clgen::vm;

Result<Measurement> runtime::runBenchmark(const CompiledKernel &Kernel,
                                          const Platform &P,
                                          const DriverOptions &Opts) {
  Rng R(Opts.Seed);

  if (Opts.RunDynamicCheck) {
    CheckOptions COpts;
    Rng CheckRng = R.fork();
    CheckResult CR = checkKernel(Kernel, COpts, CheckRng);
    if (!CR.useful())
      return Result<Measurement>::error(
          std::string("dynamic check failed: ") +
          checkOutcomeName(CR.Outcome) +
          (CR.Detail.empty() ? "" : " (" + CR.Detail + ")"));
  }

  PayloadOptions POpts;
  POpts.GlobalSize = Opts.GlobalSize;
  POpts.LocalSize = Opts.LocalSize;
  Payload Pl = generatePayload(Kernel, POpts, R);

  LaunchConfig Config;
  Config.GlobalSize[0] = Pl.GlobalSize;
  Config.LocalSize[0] = Pl.LocalSize;
  Config.MaxInstructions = Opts.MaxInstructions;
  Config.MaxWorkGroups = Opts.MaxSimulatedGroups;

  auto Run = launchKernel(Kernel, Pl.Args, Pl.Buffers, Config);
  if (!Run.ok())
    return Result<Measurement>::error("launch failed: " +
                                      Run.errorMessage());

  Measurement M;
  M.Counters = Run.get();
  M.Transfer = Pl.Transfer;
  M.GlobalSize = Pl.GlobalSize;
  M.LocalSize = Pl.LocalSize;
  M.CpuTime = estimateRuntime(P.Cpu, M.Counters, M.Transfer);
  M.GpuTime = estimateRuntime(P.Gpu, M.Counters, M.Transfer);
  return M;
}

Result<Measurement> runtime::runBenchmark(const std::string &Source,
                                          const Platform &P,
                                          const DriverOptions &Opts) {
  auto Kernel = compileFirstKernel(Source);
  if (!Kernel.ok())
    return Result<Measurement>::error("compile failed: " +
                                      Kernel.errorMessage());
  return runBenchmark(Kernel.get(), P, Opts);
}

std::vector<Result<Measurement>>
runtime::runBenchmarkBatch(const std::vector<CompiledKernel> &Kernels,
                           const Platform &P, const DriverOptions &Opts,
                           unsigned Workers) {
  std::vector<Result<Measurement>> Out(
      Kernels.size(), Result<Measurement>::error("not measured"));
  Rng Base(Opts.Seed);
  auto MeasureOne = [&](size_t I) {
    DriverOptions KernelOpts = Opts;
    KernelOpts.Seed = Base.split(I).next();
    Out[I] = runBenchmark(Kernels[I], P, KernelOpts);
  };
  size_t N =
      std::min(ThreadPool::resolveWorkerCount(Workers), Kernels.size());
  if (N <= 1 || Kernels.size() <= 1) {
    for (size_t I = 0; I < Kernels.size(); ++I)
      MeasureOne(I);
    return Out;
  }
  ThreadPool Pool(N);
  Pool.parallelFor(0, Kernels.size(),
                   [&](size_t, size_t I) { MeasureOne(I); });
  return Out;
}

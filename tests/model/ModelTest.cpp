//===- tests/model/ModelTest.cpp - vocabulary / n-gram / LSTM tests -----------===//

#include "model/LstmModel.h"
#include "model/NGramModel.h"
#include "model/Vocabulary.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace clgen;
using namespace clgen::model;

//===----------------------------------------------------------------------===//
// Vocabulary
//===----------------------------------------------------------------------===//

TEST(VocabularyTest, RoundTrip) {
  Vocabulary V = Vocabulary::fromText("abc{}");
  EXPECT_EQ(V.size(), 6u); // Sentinel + 5 chars.
  std::string Text = "cab{}";
  EXPECT_EQ(V.decode(V.encode(Text)), Text);
}

TEST(VocabularyTest, SentinelIsZeroAndTerminatesDecode) {
  Vocabulary V = Vocabulary::fromText("xy");
  std::vector<int> Ids = {V.idOf('x'), Vocabulary::EndOfText, V.idOf('y')};
  EXPECT_EQ(V.decode(Ids), "x");
}

TEST(VocabularyTest, UnseenCharsMapToSentinel) {
  Vocabulary V = Vocabulary::fromText("ab");
  EXPECT_EQ(V.idOf('z'), Vocabulary::EndOfText);
}

//===----------------------------------------------------------------------===//
// NGramModel
//===----------------------------------------------------------------------===//

TEST(NGramModelTest, DistributionSumsToOne) {
  NGramModel M;
  M.train({"abcabcabc"});
  M.reset();
  double Sum = 0.0;
  for (double P : M.nextDistribution())
    Sum += P;
  EXPECT_NEAR(Sum, 1.0, 1e-9);
}

TEST(NGramModelTest, LearnsDeterministicSequence) {
  NGramModel M;
  M.train({"abababababababab"});
  M.reset();
  M.observeText("ab");
  auto Dist = M.nextDistribution();
  // After "ab", 'a' must dominate.
  int IdA = M.vocabulary().idOf('a');
  int IdB = M.vocabulary().idOf('b');
  EXPECT_GT(Dist[IdA], 0.8);
  EXPECT_GT(Dist[IdA], 10.0 * Dist[IdB]);
}

TEST(NGramModelTest, BacksOffForUnseenContext) {
  NGramOptions Opts;
  Opts.Order = 5;
  NGramModel M(Opts);
  M.train({"aaab"});
  M.reset();
  M.observeText("zzzz"); // Unseen context: falls back to unigram-ish.
  auto Dist = M.nextDistribution();
  int IdA = M.vocabulary().idOf('a');
  EXPECT_GT(Dist[IdA], 0.1); // 'a' dominates the unigram counts.
}

TEST(NGramModelTest, ContextWindowIsBounded) {
  NGramOptions Opts;
  Opts.Order = 3;
  NGramModel M(Opts);
  M.train({"xyxyxy"});
  M.reset();
  // Feeding a long prefix must not grow the rolling context unboundedly
  // (would throw off lookups); behaviourally: prediction after a long
  // prefix equals prediction after just the last Order-1 chars.
  M.observeText("xyxyxyxyxyxyxyxyxy");
  auto DistLong = M.nextDistribution();
  M.reset();
  M.observeText("xy");
  auto DistShort = M.nextDistribution();
  for (size_t I = 0; I < DistLong.size(); ++I)
    EXPECT_NEAR(DistLong[I], DistShort[I], 1e-12);
}

TEST(NGramModelTest, EndOfTextLearnedAtKernelBoundaries) {
  NGramModel M;
  std::vector<std::string> Entries(8, "k{}");
  M.train(Entries);
  M.reset();
  M.observeText("k{}");
  auto Dist = M.nextDistribution();
  EXPECT_GT(Dist[Vocabulary::EndOfText], 0.5);
}

TEST(NGramModelTest, CloneIsIndependentAndEquivalent) {
  NGramModel M;
  M.train({"abcabcabcabc"});
  auto C = M.clone();
  ASSERT_NE(C, nullptr);
  // Same predictions from the same state...
  M.reset();
  C->reset();
  M.observeText("ab");
  C->observeText("ab");
  EXPECT_EQ(M.nextDistribution(), C->nextDistribution());
  // ...and advancing the clone leaves the original untouched.
  auto Before = M.nextDistribution();
  C->observeText("cabcab");
  EXPECT_EQ(M.nextDistribution(), Before);
}

TEST(NGramModelTest, NextDistributionIntoMatchesNextDistribution) {
  NGramModel M;
  M.train({"xyzzyxyzzy"});
  M.reset();
  M.observeText("xy");
  std::vector<double> Into;
  M.nextDistributionInto(Into);
  EXPECT_EQ(Into, M.nextDistribution());
}

TEST(NGramModelTest, BitsPerCharLowerForInDistributionText) {
  NGramModel M;
  M.train({"__kernel void A(__global float* a) {\n  a[0] = 1.0f;\n}\n"});
  double InDist =
      M.bitsPerChar("__kernel void A(__global float* a) {\n");
  double OffDist = M.bitsPerChar("qqqq zzzz wwww!!!");
  EXPECT_LT(InDist, OffDist);
}

//===----------------------------------------------------------------------===//
// LstmModel
//===----------------------------------------------------------------------===//

TEST(LstmModelTest, ParameterCountMatchesArchitecture) {
  LstmOptions Opts;
  Opts.Layers = 2;
  Opts.HiddenSize = 16;
  Opts.Epochs = 0;
  LstmModel M(Opts);
  M.train({"abc"});
  size_t V = M.vocabulary().size();
  size_t H = 16;
  size_t Expected = (4 * H * (V + H) + 4 * H) + // Layer 0.
                    (4 * H * (H + H) + 4 * H) + // Layer 1.
                    (V * H + V);                // Output.
  EXPECT_EQ(M.parameterCount(), Expected);
}

TEST(LstmModelTest, DistributionSumsToOne) {
  LstmOptions Opts;
  Opts.Epochs = 1;
  Opts.HiddenSize = 16;
  LstmModel M(Opts);
  M.train({"abcabc"});
  M.reset();
  M.observe(1);
  double Sum = 0.0;
  for (double P : M.nextDistribution())
    Sum += P;
  EXPECT_NEAR(Sum, 1.0, 1e-5);
}

TEST(LstmModelTest, TrainingReducesLoss) {
  LstmOptions Opts;
  Opts.Layers = 1;
  Opts.HiddenSize = 24;
  Opts.Epochs = 12;
  Opts.SequenceLength = 16;
  Opts.LearningRate = 0.1f;
  LstmModel M(Opts);
  std::vector<double> Losses;
  M.train({"abababababababababababababababab"},
          [&](int, double Loss) { Losses.push_back(Loss); });
  ASSERT_GE(Losses.size(), 2u);
  EXPECT_LT(Losses.back(), Losses.front() * 0.8);
}

TEST(LstmModelTest, LearnsAlternatingSequence) {
  LstmOptions Opts;
  Opts.Layers = 1;
  Opts.HiddenSize = 24;
  Opts.Epochs = 80;
  Opts.SequenceLength = 16;
  Opts.LearningRate = 0.1f;
  Opts.DecayEveryEpochs = 50;
  LstmModel M(Opts);
  std::string Text;
  for (int I = 0; I < 64; ++I)
    Text += "ab";
  M.train({Text});
  M.reset();
  M.observeText("abab");
  auto Dist = M.nextDistribution();
  int IdA = M.vocabulary().idOf('a');
  EXPECT_GT(Dist[IdA], 0.8);
}

TEST(LstmModelTest, GradientsMatchFiniteDifferences) {
  LstmOptions Opts;
  Opts.Layers = 2;
  Opts.HiddenSize = 6;
  Opts.Epochs = 0;
  Opts.SequenceLength = 8;
  LstmModel M(Opts);
  M.train({"abcbacbbca"});
  std::vector<int> Seq;
  for (char C : std::string("abcba"))
    Seq.push_back(M.vocabulary().idOf(C));
  double MaxRelError = M.gradientCheck(Seq, 32);
  EXPECT_LT(MaxRelError, 0.05) << "BPTT gradient mismatch";
}

TEST(LstmModelTest, CloneMatchesOriginal) {
  LstmOptions Opts;
  Opts.Epochs = 1;
  Opts.HiddenSize = 12;
  LstmModel M(Opts);
  M.train({"abcabcabc"});
  auto C = M.clone();
  ASSERT_NE(C, nullptr);
  M.reset();
  C->reset();
  M.observeText("ab");
  C->observeText("ab");
  EXPECT_EQ(M.nextDistribution(), C->nextDistribution());
}

TEST(LstmModelTest, StatefulGenerationIsDeterministic) {
  LstmOptions Opts;
  Opts.Epochs = 2;
  Opts.HiddenSize = 16;
  LstmModel M(Opts);
  M.train({"xyzxyzxyz"});
  M.reset();
  M.observeText("xy");
  auto D1 = M.nextDistribution();
  M.reset();
  M.observeText("xy");
  auto D2 = M.nextDistribution();
  EXPECT_EQ(D1, D2);
}

//===- bench/fig6_samples.cpp - Figure 6: synthesized kernels ------------------===//
//
// Regenerates Figure 6: "Compute kernels synthesized with CLgen", all
// from the same argument specification — three single-precision
// floating-point arrays and a read-only signed integer.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "runtime/DynamicChecker.h"

using namespace clgen;
using namespace clgen::bench;

int main() {
  std::printf("%s", sectionBanner("Figure 6: kernels synthesized from one "
                                  "argument specification")
                        .c_str());

  auto Pipeline = trainedPipeline();
  std::printf("argument specification: three '__global float*' arrays and "
              "one 'const int'\nseed text: \"%s\"\n",
              core::ArgSpec::figure6().seedText().c_str());

  core::SynthesisOptions SOpts;
  SOpts.TargetKernels = 12;
  SOpts.Sampling.Temperature = 0.6;
  SOpts.Seed = 0xF16B6;
  auto Synth = Pipeline.synthesize(SOpts);
  std::printf("sampled %zu candidates to accept %zu kernels (%.1f%% "
              "acceptance)\n",
              Synth.Stats.Attempts, Synth.Stats.Accepted,
              Synth.Stats.acceptanceRate() * 100.0);

  // Print the three most interesting accepted kernels (prefer longer
  // bodies with control flow, as in the paper's picks).
  std::vector<size_t> Order(Synth.Kernels.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Synth.Kernels[A].Source.size() > Synth.Kernels[B].Source.size();
  });

  Rng R(0xD15C);
  int Printed = 0;
  for (size_t Idx : Order) {
    if (Printed >= 3)
      break;
    const auto &SK = Synth.Kernels[Idx];
    std::printf("\n--- kernel (%c) — %zu bytecode instructions ---\n%s",
                static_cast<char>('a' + Printed),
                SK.Kernel.staticInstructionCount(), SK.Source.c_str());
    runtime::CheckOptions COpts;
    runtime::CheckResult CR = runtime::checkKernel(SK.Kernel, COpts, R);
    std::printf("dynamic checker: %s\n",
                runtime::checkOutcomeName(CR.Outcome));
    ++Printed;
  }
  return Printed > 0 ? 0 : 1;
}

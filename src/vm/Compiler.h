//===- vm/Compiler.h - AST to bytecode lowering ------------------*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a type-checked kernel (plus the helper functions it calls) to
/// CompiledKernel bytecode. User function calls are inlined; pointer
/// provenance is resolved statically; each memory access site is
/// classified as coalesced (index affine in get_global_id(0) with unit
/// stride) or not, which feeds both the performance model and the
/// Grewe et al. "coalesced" static feature.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_VM_COMPILER_H
#define CLGEN_VM_COMPILER_H

#include "ocl/Ast.h"
#include "support/Result.h"
#include "vm/Bytecode.h"

namespace clgen {
namespace vm {

/// Compiles kernel \p Kernel of program \p P (which must have passed
/// ocl::analyze). On failure returns a diagnostic; constructs the paper's
/// "does not compile to PTX" rejection condition together with the parser
/// and Sema.
Result<CompiledKernel> compileKernel(const ocl::Program &P,
                                     const ocl::FunctionDecl &Kernel);

/// Convenience: parse + analyze + compile the first kernel in \p Source.
Result<CompiledKernel> compileFirstKernel(const std::string &Source);

} // namespace vm
} // namespace clgen

#endif // CLGEN_VM_COMPILER_H

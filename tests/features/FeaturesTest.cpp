//===- tests/features/FeaturesTest.cpp - feature extraction tests -------------===//

#include "features/Features.h"

#include "vm/Compiler.h"

#include <gtest/gtest.h>

using namespace clgen;
using namespace clgen::features;

namespace {

StaticFeatures featuresOf(const std::string &Src) {
  auto R = vm::compileFirstKernel(Src);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.errorMessage());
  return extractStaticFeatures(R.get());
}

} // namespace

TEST(FeaturesTest, CountsGlobalAccesses) {
  StaticFeatures F = featuresOf(
      "__kernel void k(__global float* a, __global float* b, const int n)"
      " {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { b[i] = a[i] + a[i + 1]; }\n"
      "}\n");
  EXPECT_EQ(F.Mem, 3);       // Two loads + one store.
  EXPECT_EQ(F.Coalesced, 3); // All gid-affine stride 1.
  EXPECT_EQ(F.LocalMem, 0);
  EXPECT_EQ(F.Branches, 1);
}

TEST(FeaturesTest, CountsLocalAccesses) {
  StaticFeatures F = featuresOf(
      "__kernel void k(__global float* a) {\n"
      "  __local float t[64];\n"
      "  int l = get_local_id(0) & 63;\n"
      "  t[l] = a[get_global_id(0)];\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  a[get_global_id(0)] = t[63 - l];\n"
      "}\n");
  EXPECT_EQ(F.LocalMem, 2);
  EXPECT_EQ(F.Mem, 2);
}

TEST(FeaturesTest, BranchCountMatchesControlFlow) {
  StaticFeatures F = featuresOf(
      "__kernel void k(__global float* a, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i >= n) { return; }\n"
      "  for (int j = 0; j < 4; j++) {\n"
      "    if (a[i] > 0.5f) { a[i] -= 0.1f; }\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(F.Branches, 3); // Guard, loop condition, inner if.
}

TEST(FeaturesTest, UncoalescedStrided) {
  StaticFeatures F = featuresOf(
      "__kernel void k(__global float* a, __global float* b, const int n)"
      " {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { b[i] = a[(i * 64) % n]; }\n"
      "}\n");
  EXPECT_EQ(F.Mem, 2);
  EXPECT_EQ(F.Coalesced, 1); // Only the store.
}

TEST(FeaturesTest, GreweCombinedFeatures) {
  RawFeatures Raw;
  Raw.Static.Comp = 10;
  Raw.Static.Mem = 5;
  Raw.Static.LocalMem = 2;
  Raw.Static.Coalesced = 4;
  Raw.TransferBytes = 300;
  Raw.WgSize = 100;
  auto V = greweFeatureVector(Raw);
  ASSERT_EQ(V.size(), 4u);
  EXPECT_DOUBLE_EQ(V[0], 300.0 / 15.0); // F1 transfer/(comp+mem).
  EXPECT_DOUBLE_EQ(V[1], 4.0 / 5.0);    // F2 coalesced/mem.
  EXPECT_DOUBLE_EQ(V[2], (2.0 / 5.0) * 100.0); // F3.
  EXPECT_DOUBLE_EQ(V[3], 10.0 / 5.0);   // F4 comp/mem.
}

TEST(FeaturesTest, CombinedFeaturesGuardDivisionByZero) {
  RawFeatures Raw; // All zeros.
  auto V = greweFeatureVector(Raw);
  for (double X : V)
    EXPECT_DOUBLE_EQ(X, 0.0);
}

TEST(FeaturesTest, ExtendedVectorLayout) {
  RawFeatures Raw;
  Raw.Static.Comp = 7;
  Raw.Static.Branches = 3;
  Raw.TransferBytes = 64;
  Raw.WgSize = 32;
  auto V = extendedFeatureVector(Raw);
  ASSERT_EQ(V.size(), 11u);
  EXPECT_DOUBLE_EQ(V[4], 7.0);   // Raw comp.
  EXPECT_DOUBLE_EQ(V[8], 64.0);  // Transfer.
  EXPECT_DOUBLE_EQ(V[9], 32.0);  // WgSize.
  EXPECT_DOUBLE_EQ(V[10], 3.0);  // Branches.
  EXPECT_EQ(extendedFeatureNames().size(), 11u);
  EXPECT_EQ(greweFeatureNames().size(), 4u);
}

TEST(FeaturesTest, FeatureKeyEquality) {
  // The paper's Listing 2: two structurally different kernels, identical
  // Table-2a features, separated only by the branch count.
  StaticFeatures A = featuresOf(
      "__kernel void a(__global float* a, __global float* b,\n"
      "                __global float* c, const int d) {\n"
      "  int e = get_global_id(0);\n"
      "  if (e < 4 && e < d) {\n"
      "    c[e] = a[e] + b[e];\n"
      "    a[e] = b[e] + 1.0f;\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(A.key()[0], A.Comp);
  EXPECT_EQ(A.keyNoBranch().size(), 4u);
  EXPECT_EQ(A.key().size(), 5u);
  // keyNoBranch ignores branches; key includes them.
  StaticFeatures B = A;
  B.Branches += 2;
  EXPECT_EQ(A.keyNoBranch(), B.keyNoBranch());
  EXPECT_NE(A.key(), B.key());
}

TEST(FeaturesTest, MathBuiltinsCountAsCompute) {
  StaticFeatures WithMath = featuresOf(
      "__kernel void k(__global float* a, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { a[i] = sqrt(a[i]) + sin(a[i]); }\n"
      "}\n");
  StaticFeatures NoMath = featuresOf(
      "__kernel void k(__global float* a, const int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { a[i] = a[i]; }\n"
      "}\n");
  EXPECT_GT(WithMath.Comp, NoMath.Comp);
}

//===- tests/predict/ExperimentGoldenTest.cpp - Golden-artifact tier ----------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The golden regression tier: the pinned experiment configuration
// (predict::goldenExperimentOptions) must produce Table 1 and Figure 9
// report bytes IDENTICAL to the files checked in under tests/golden/,
// for every scheduling configuration — worker counts {1, 2, hardware},
// VM dispatch {switch, fused}, cold compute and warm store load. Any
// semantic drift in synthesis, measurement, feature extraction, fold
// assignment, tree training or report rendering shows up here as a
// byte diff.
//
// Regenerating after an INTENTIONAL semantic change:
//   CLGS_REGEN_GOLDEN=1 ./clgen_tests --gtest_filter='ExperimentGolden*'
// then review the diff and commit the new files.
//
// Also here: the every-byte corruption fuzz over the three new archive
// kinds (features/predictor/report) — every single-byte flip must turn
// the warm probe into an honest miss, never into served garbage.
//
//===----------------------------------------------------------------------===//

#include "predict/Experiment.h"
#include "store/Archive.h"

#include "gtest/gtest.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace clgen;
using namespace clgen::predict;

namespace {

std::string goldenDir() {
  return std::string(CLGS_SOURCE_DIR) + "/tests/golden";
}

std::string readFileOrEmpty(const std::string &Path) {
  std::ifstream F(Path, std::ios::binary);
  if (!F)
    return {};
  std::ostringstream Out;
  Out << F.rdbuf();
  return Out.str();
}

/// Fresh per-test scratch directory, removed on destruction.
class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name)
      : Path(std::filesystem::temp_directory_path() /
             ("clgen_golden_test_" + Name)) {
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }

private:
  std::filesystem::path Path;
};

/// One scheduling configuration of the golden matrix. Every entry must
/// yield the same bytes — these knobs are scheduling-only by contract.
struct MatrixEntry {
  const char *Name;
  unsigned Workers;
  vm::DispatchMode Dispatch;
};

const MatrixEntry Matrix[] = {
    {"w1-switch", 1, vm::DispatchMode::Switch},
    {"w2-switch", 2, vm::DispatchMode::Switch},
    {"whw-switch", 0, vm::DispatchMode::Switch},
    {"w1-fused", 1, vm::DispatchMode::ThreadedFused},
    {"w2-fused", 2, vm::DispatchMode::ThreadedFused},
    {"whw-fused", 0, vm::DispatchMode::ThreadedFused},
};

ExperimentOptions matrixOptions(const MatrixEntry &E) {
  ExperimentOptions Opts = goldenExperimentOptions();
  Opts.Workers = E.Workers;
  Opts.KFold.Workers = E.Workers;
  Opts.Streaming.Synthesis.Workers = E.Workers;
  Opts.Streaming.MeasureWorkers = E.Workers;
  Opts.Streaming.Driver.Dispatch = E.Dispatch;
  return Opts;
}

TEST(ExperimentGoldenTest, ReportBytesMatchGoldensAcrossScheduleMatrix) {
  const std::string Table1Path = goldenDir() + "/experiment_table1.txt";
  const std::string Fig9Path = goldenDir() + "/experiment_fig9.txt";

  if (std::getenv("CLGS_REGEN_GOLDEN")) {
    ExperimentResult R = runExperiment(goldenExperimentOptions());
    std::filesystem::create_directories(goldenDir());
    std::ofstream(Table1Path, std::ios::binary) << R.Table1;
    std::ofstream(Fig9Path, std::ios::binary) << R.Fig9;
    GTEST_SKIP() << "goldens regenerated; review and commit the diff";
  }

  const std::string GoldenTable1 = readFileOrEmpty(Table1Path);
  const std::string GoldenFig9 = readFileOrEmpty(Fig9Path);
  ASSERT_FALSE(GoldenTable1.empty()) << "missing golden: " << Table1Path;
  ASSERT_FALSE(GoldenFig9.empty()) << "missing golden: " << Fig9Path;

  // Cold computes: every scheduling configuration, byte-for-byte.
  for (const MatrixEntry &E : Matrix) {
    SCOPED_TRACE(E.Name);
    ExperimentResult R = runExperiment(matrixOptions(E));
    EXPECT_EQ(R.Table1, GoldenTable1);
    EXPECT_EQ(R.Fig9, GoldenFig9);
  }

  // Warm loads: prime a store once (scheduling knobs are excluded from
  // the key, so one store serves every matrix entry), then every
  // configuration must load the same bytes with zero work done.
  ScratchDir Store("matrix_store");
  auto Cold = runOrLoadExperiment(Store.str(), matrixOptions(Matrix[0]));
  ASSERT_TRUE(Cold.ok()) << Cold.errorMessage();
  for (const MatrixEntry &E : Matrix) {
    SCOPED_TRACE(E.Name);
    auto Warm = runOrLoadExperiment(Store.str(), matrixOptions(E));
    ASSERT_TRUE(Warm.ok()) << Warm.errorMessage();
    EXPECT_TRUE(Warm.get().Provenance.Warm);
    EXPECT_EQ(Warm.get().Provenance.TrainedModels, 0u);
    EXPECT_EQ(Warm.get().Provenance.MeasuredKernels, 0u);
    EXPECT_EQ(Warm.get().Table1, GoldenTable1);
    EXPECT_EQ(Warm.get().Fig9, GoldenFig9);
  }
}

TEST(ExperimentGoldenTest, EveryByteFlipDegradesToHonestColdMiss) {
  if (std::getenv("CLGS_REGEN_GOLDEN"))
    GTEST_SKIP() << "regeneration run";

  ScratchDir Store("fuzz_store");
  ExperimentOptions Opts = goldenExperimentOptions();
  auto Cold = runOrLoadExperiment(Store.str(), Opts);
  ASSERT_TRUE(Cold.ok()) << Cold.errorMessage();
  ASSERT_TRUE(loadExperiment(Store.str(), Opts).ok());

  uint64_t Key = experimentKey(Opts);
  for (const char *What : {"features", "predictor", "report"}) {
    std::string Path = Store.str() + "/" + What + "-" +
                       store::hexDigest(Key) + ".clgs";
    std::string Bytes = readFileOrEmpty(Path);
    ASSERT_FALSE(Bytes.empty()) << Path;
    SCOPED_TRACE(What);
    size_t Survived = 0;
    for (size_t I = 0; I < Bytes.size(); ++I) {
      std::string Corrupt = Bytes;
      Corrupt[I] ^= 0x01;
      {
        std::ofstream F(Path, std::ios::binary | std::ios::trunc);
        F << Corrupt;
      }
      if (loadExperiment(Store.str(), Opts).ok())
        ++Survived;
    }
    // The checksum spans header and payload, so no single-byte flip
    // may ever produce a loadable archive.
    EXPECT_EQ(Survived, 0u);
    std::ofstream(Path, std::ios::binary | std::ios::trunc) << Bytes;
  }

  // Intact again: the warm probe recovers without recomputation.
  auto Warm = loadExperiment(Store.str(), Opts);
  ASSERT_TRUE(Warm.ok()) << Warm.errorMessage();
  EXPECT_EQ(Warm.get().Table1, Cold.get().Table1);
  EXPECT_EQ(Warm.get().Fig9, Cold.get().Fig9);
}

} // namespace

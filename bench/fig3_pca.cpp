//===- bench/fig3_pca.cpp - Figure 3: feature-space sparsity ------------------===//
//
// Regenerates Figure 3: a two-dimensional PCA projection of the Grewe
// et al. feature space over Parboil on the NVIDIA platform. Outlier
// benchmarks with no nearby training observations are mispredicted (a);
// adding neighbouring observations corrects them (b). The paper
// hand-selected neighbours; we use CLgen synthetic kernels, which is
// exactly the mechanism the paper automates.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "predict/Pca.h"

#include <cmath>
#include <map>

using namespace clgen;
using namespace clgen::bench;

namespace {

/// Renders a crude ASCII scatter of (x, y, marker) points.
void scatter(const std::vector<std::array<double, 2>> &Points,
             const std::vector<char> &Markers) {
  const int W = 64, H = 20;
  double MinX = 1e30, MaxX = -1e30, MinY = 1e30, MaxY = -1e30;
  for (const auto &P : Points) {
    MinX = std::min(MinX, P[0]);
    MaxX = std::max(MaxX, P[0]);
    MinY = std::min(MinY, P[1]);
    MaxY = std::max(MaxY, P[1]);
  }
  double SpanX = MaxX - MinX > 1e-12 ? MaxX - MinX : 1.0;
  double SpanY = MaxY - MinY > 1e-12 ? MaxY - MinY : 1.0;
  std::vector<std::string> Grid(H, std::string(W, ' '));
  for (size_t I = 0; I < Points.size(); ++I) {
    int X = static_cast<int>((Points[I][0] - MinX) / SpanX * (W - 1));
    int Y = static_cast<int>((Points[I][1] - MinY) / SpanY * (H - 1));
    Grid[H - 1 - Y][X] = Markers[I];
  }
  for (const std::string &RowText : Grid)
    std::printf("|%s|\n", RowText.c_str());
  std::printf(" x: principal component 1, y: principal component 2\n");
}

} // namespace

int main() {
  std::printf("%s", sectionBanner("Figure 3: PCA of the Grewe et al. "
                                  "feature space over Parboil (NVIDIA)")
                        .c_str());

  auto P = runtime::nvidiaPlatform();
  auto All = suites::measureCatalogue(suites::buildCatalogue(), P);
  auto Parboil = bySuite(All, "Parboil");
  // The section 2 model is trained on a few dozen benchmarks, not the
  // full catalogue: subsample the other suites to the paper's training
  // density so the sparsity effect is visible.
  std::vector<predict::Observation> OtherSuites;
  {
    size_t Index = 0;
    for (const auto &O : All)
      if (O.Suite != "Parboil" && Index++ % 12 == 0)
        OtherSuites.push_back(O);
  }
  std::printf("Parboil observations: %zu; sparse training pool: %zu\n",
              Parboil.size(), OtherSuites.size());

  // PCA on the Grewe feature vectors.
  std::vector<std::vector<double>> X;
  for (const auto &O : Parboil)
    X.push_back(predict::featureVector(O, predict::FeatureSetKind::Grewe));
  auto Pca = predict::fitPca(X);
  std::printf("explained variance (first two components): %.2f, %.2f\n\n",
              Pca.ExplainedVariance[0], Pca.ExplainedVariance[1]);

  // (a) leave-one-benchmark-out over Parboil, trained with the other
  // suites (the section 2 methodology).
  auto Base = predict::leaveOneBenchmarkOut(Parboil, OtherSuites,
                                            predict::FeatureSetKind::Grewe);

  std::vector<std::array<double, 2>> Points;
  std::vector<char> MarkersA;
  for (size_t I = 0; I < Parboil.size(); ++I) {
    auto Proj = Pca.project(X[I], 2);
    Points.push_back({Proj[0], Proj[1]});
    MarkersA.push_back(Base.Predictions[I] == Parboil[I].label() ? 'o'
                                                                 : 'X');
  }
  std::printf("(a) without neighbouring observations  "
              "(o = correct, X = incorrect)\n");
  scatter(Points, MarkersA);
  int WrongA = 0;
  for (char M : MarkersA)
    WrongA += M == 'X';
  std::printf("incorrectly predicted: %d of %zu\n\n", WrongA,
              Parboil.size());

  // (b) add synthetic neighbouring observations and retrain.
  std::printf("synthesizing CLgen kernels as neighbouring observations...\n");
  auto Pipeline = trainedPipeline(1200);
  auto Synthetic = measureSynthetic(Pipeline, 250, P);
  std::printf("added %zu synthetic observations\n\n", Synthetic.size());

  std::vector<predict::Observation> Extra = OtherSuites;
  Extra.insert(Extra.end(), Synthetic.begin(), Synthetic.end());
  auto With = predict::leaveOneBenchmarkOut(Parboil, Extra,
                                            predict::FeatureSetKind::Grewe);
  std::vector<char> MarkersB;
  std::vector<std::array<double, 2>> PointsB = Points;
  for (size_t I = 0; I < Parboil.size(); ++I)
    MarkersB.push_back(With.Predictions[I] == Parboil[I].label() ? 'o'
                                                                 : 'X');
  // Overlay a subsample of the added observations.
  for (size_t I = 0; I < Synthetic.size(); I += 9) {
    auto Proj = Pca.project(
        predict::featureVector(Synthetic[I],
                               predict::FeatureSetKind::Grewe),
        2);
    PointsB.push_back({Proj[0], Proj[1]});
    MarkersB.push_back('+');
  }
  std::printf("(b) with neighbouring observations  "
              "(+ = added synthetic benchmark)\n");
  scatter(PointsB, MarkersB);
  int WrongB = 0;
  for (size_t I = 0; I < Parboil.size(); ++I)
    WrongB += MarkersB[I] == 'X';
  std::printf("incorrectly predicted: %d of %zu (was %d)\n", WrongB,
              Parboil.size(), WrongA);
  std::printf("\nPaper: two outliers in (a) are corrected in (b) by "
              "observations\nneighbouring them in the feature space.\n");
  return 0;
}

//===- model/LstmModel.cpp - LSTM language model -------------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Matrix kernels. Weights are stored input-major (see LstmModel.h), so
// all four primitive operations used by the forward AND backward pass
// walk contiguous memory in their inner loop:
//
//   forward gates   : gemvTAcc  (A[4H]  += sum_i x[i] * WT[i][4H])
//   forward logits  : gemvAcc   (y[r]   += dot(W[r][C], x))
//   backward dH     : gemvAcc   (dH[i]  += dot(WT[i][4H], dA))
//   weight gradients: outerAccRows (G[i][4H] += x[i] * dA[4H])
//
// Rows are blocked 2-4 at a time so loads of the shared operand are
// reused from registers, and every pointer is __restrict-qualified so
// the compiler can vectorize without aliasing checks.
//
// Training engine (see train() at the bottom): per optimizer step, one
// BPTT chunk per lane is evaluated by chunkBackward against a frozen
// weight snapshot — the weights are only ever written by applyUpdate on
// the calling thread, between steps — and the per-lane gradients are
// reduced by reduceGrads in lane-index order. Because each lane
// gradient is a deterministic function of (weights, tokens, lane state)
// and the reduction order is fixed, the trained weights are
// bit-identical for every TrainOptions::Workers value, including the
// inline serial path.
//
//===----------------------------------------------------------------------===//

#include "model/LstmModel.h"

#include "store/Archive.h"
#include "support/ThreadPool.h"

#include <cassert>
#include <cmath>

using namespace clgen;
using namespace clgen::model;

namespace {

float sigmoidf(float X) { return 1.0f / (1.0f + std::exp(-X)); }

/// y[0..N) += a * x[0..N).
inline void axpy(float A, const float *__restrict X, float *__restrict Y,
                 int N) {
  for (int I = 0; I < N; ++I)
    Y[I] += A * X[I];
}

/// dot(a, b) over N contiguous floats.
inline float dotRow(const float *__restrict A, const float *__restrict B,
                    int N) {
  float Sum = 0.0f;
  for (int I = 0; I < N; ++I)
    Sum += A[I] * B[I];
  return Sum;
}

/// y[r] += dot(W row r, x) for W[Rows x Cols]; rows blocked in pairs so
/// each load of x serves two accumulators.
void gemvAcc(const float *__restrict W, const float *__restrict X, int Rows,
             int Cols, float *__restrict Y) {
  int R = 0;
  for (; R + 2 <= Rows; R += 2) {
    const float *__restrict W0 = W + static_cast<size_t>(R) * Cols;
    const float *__restrict W1 = W0 + Cols;
    float S0 = 0.0f, S1 = 0.0f;
    for (int C = 0; C < Cols; ++C) {
      S0 += W0[C] * X[C];
      S1 += W1[C] * X[C];
    }
    Y[R] += S0;
    Y[R + 1] += S1;
  }
  if (R < Rows)
    Y[R] += dotRow(W + static_cast<size_t>(R) * Cols, X, Cols);
}

/// y[0..Cols) += sum_r x[r] * W[r][0..Cols) for W[Rows x Cols]; rows
/// blocked in fours so y stays in registers/cache across the fused
/// updates, with a skip for all-zero coefficient quads.
void gemvTAcc(const float *__restrict W, const float *__restrict X, int Rows,
              int Cols, float *__restrict Y) {
  int R = 0;
  for (; R + 4 <= Rows; R += 4) {
    float X0 = X[R], X1 = X[R + 1], X2 = X[R + 2], X3 = X[R + 3];
    if (X0 == 0.0f && X1 == 0.0f && X2 == 0.0f && X3 == 0.0f)
      continue;
    const float *__restrict W0 = W + static_cast<size_t>(R) * Cols;
    const float *__restrict W1 = W0 + Cols;
    const float *__restrict W2 = W1 + Cols;
    const float *__restrict W3 = W2 + Cols;
    for (int C = 0; C < Cols; ++C)
      Y[C] += X0 * W0[C] + X1 * W1[C] + X2 * W2[C] + X3 * W3[C];
  }
  for (; R < Rows; ++R)
    if (X[R] != 0.0f)
      axpy(X[R], W + static_cast<size_t>(R) * Cols, Y, Cols);
}

/// G[r][0..Cols) += x[r] * d[0..Cols) for G[Rows x Cols].
void outerAccRows(float *__restrict G, const float *__restrict X,
                  const float *__restrict D, int Rows, int Cols) {
  for (int R = 0; R < Rows; ++R)
    if (X[R] != 0.0f)
      axpy(X[R], D, G + static_cast<size_t>(R) * Cols, Cols);
}

void softmaxInPlace(std::vector<float> &Logits) {
  if (Logits.empty())
    return;
  float Max = Logits[0];
  for (float L : Logits)
    Max = std::max(Max, L);
  float Sum = 0.0f;
  for (float &L : Logits) {
    L = std::exp(L - Max);
    Sum += L;
  }
  for (float &L : Logits)
    L /= Sum;
}

/// acc[0..N) = ((acc + a) + b) elementwise, or acc += a when b is null.
/// Per-element addition order equals sequential "acc += a; acc += b"
/// passes, so fusing two lanes per sweep changes cache behaviour only,
/// never the bits.
void mergeLanePair(float *__restrict Acc, const float *__restrict A,
                   const float *__restrict B, size_t N) {
  if (B) {
    for (size_t I = 0; I < N; ++I)
      Acc[I] = (Acc[I] + A[I]) + B[I];
  } else {
    for (size_t I = 0; I < N; ++I)
      Acc[I] += A[I];
  }
}

} // namespace

/// Per-lane BPTT scratch: the forward tape for one chunk plus the
/// backward-pass accumulators. One workspace per lane, reused across
/// steps and epochs (the tape is resized to the chunk length and every
/// cell is overwritten before the backward pass reads it).
struct LstmModel::ChunkWorkspace {
  // Tape, indexed [t][layer]. Layer inputs are not stored separately:
  // the input of layer L at step t IS H[t][L-1].
  std::vector<std::vector<std::vector<float>>> Gates; // 4H post-nonlinearity
                                                      // gate activations:
                                                      // [i f g o].
  std::vector<std::vector<std::vector<float>>> C;     // Cell states.
  std::vector<std::vector<std::vector<float>>> H;     // Hidden states.
  std::vector<std::vector<float>> Probs;              // Softmax outputs.
  std::vector<int> Inputs;                            // Token ids per step.
  // Backward accumulators.
  std::vector<std::vector<float>> DH, DC;
  std::vector<float> A, DA, DHPrev;
};

void LstmModel::initParameters() {
  Rng R(Opts.Seed);
  int H = Opts.HiddenSize;
  Layers.clear();
  Layers.resize(Opts.Layers);
  for (int L = 0; L < Opts.Layers; ++L) {
    int In = L == 0 ? V : H;
    Layers[L].In = In;
    float ScaleX = 1.0f / std::sqrt(static_cast<float>(In));
    float ScaleH = 1.0f / std::sqrt(static_cast<float>(H));
    Layers[L].WxT.assign(static_cast<size_t>(In) * 4 * H, 0.0f);
    Layers[L].WhT.assign(static_cast<size_t>(H) * 4 * H, 0.0f);
    Layers[L].B.assign(4 * H, 0.0f);
    // Draw in gate-major order (the logical W[4H x In] layout) so a given
    // seed produces the same model as before the transposed storage.
    for (int G = 0; G < 4 * H; ++G)
      for (int I = 0; I < In; ++I)
        Layers[L].WxT[static_cast<size_t>(I) * 4 * H + G] =
            static_cast<float>(R.gaussian(0.0, ScaleX));
    for (int G = 0; G < 4 * H; ++G)
      for (int I = 0; I < H; ++I)
        Layers[L].WhT[static_cast<size_t>(I) * 4 * H + G] =
            static_cast<float>(R.gaussian(0.0, ScaleH));
    // Forget-gate bias starts positive (standard trick for gradient
    // flow).
    for (int I = H; I < 2 * H; ++I)
      Layers[L].B[I] = 1.0f;
  }
  float ScaleY = 1.0f / std::sqrt(static_cast<float>(H));
  Wy.assign(static_cast<size_t>(V) * H, 0.0f);
  By.assign(V, 0.0f);
  for (float &W : Wy)
    W = static_cast<float>(R.gaussian(0.0, ScaleY));
}

void LstmModel::allocGradBuf(GradBuf &G) const {
  G.Layers.resize(Layers.size());
  for (size_t L = 0; L < Layers.size(); ++L) {
    G.Layers[L].In = Layers[L].In;
    G.Layers[L].WxT.assign(Layers[L].WxT.size(), 0.0f);
    G.Layers[L].WhT.assign(Layers[L].WhT.size(), 0.0f);
    G.Layers[L].B.assign(Layers[L].B.size(), 0.0f);
  }
  G.GWy.assign(Wy.size(), 0.0f);
  G.GBy.assign(By.size(), 0.0f);
}

size_t LstmModel::parameterCount() const {
  size_t N = Wy.size() + By.size();
  for (const Layer &L : Layers)
    N += L.WxT.size() + L.WhT.size() + L.B.size();
  return N;
}

std::unique_ptr<LanguageModel> LstmModel::clone() const {
  return std::make_unique<LstmModel>(*this);
}

void LstmModel::serialize(store::ArchiveWriter &W) const {
  W.writeI32(Opts.Layers);
  W.writeI32(Opts.HiddenSize);
  W.writeI32(Opts.Epochs);
  W.writeI32(Opts.SequenceLength);
  W.writeF32(Opts.LearningRate);
  W.writeF32(Opts.LearningRateDecay);
  W.writeI32(Opts.DecayEveryEpochs);
  W.writeF32(Opts.GradClip);
  W.writeU64(Opts.Seed);
  W.writeI32(Opts.BatchLanes);
  Vocab.serialize(W);
  W.writeI32(V);
  W.writeU32(static_cast<uint32_t>(Layers.size()));
  for (const Layer &L : Layers) {
    W.writeI32(L.In);
    W.writeF32Vector(L.WxT);
    W.writeF32Vector(L.WhT);
    W.writeF32Vector(L.B);
  }
  W.writeF32Vector(Wy);
  W.writeF32Vector(By);
}

LstmModel LstmModel::deserialize(store::ArchiveReader &R) {
  LstmOptions Opts;
  Opts.Layers = R.readI32();
  Opts.HiddenSize = R.readI32();
  Opts.Epochs = R.readI32();
  Opts.SequenceLength = R.readI32();
  Opts.LearningRate = R.readF32();
  Opts.LearningRateDecay = R.readF32();
  Opts.DecayEveryEpochs = R.readI32();
  Opts.GradClip = R.readF32();
  Opts.Seed = R.readU64();
  Opts.BatchLanes = R.readI32();
  if (R.ok() && (Opts.Layers < 1 || Opts.Layers > 64 ||
                 Opts.HiddenSize < 1 || Opts.HiddenSize > (1 << 16) ||
                 Opts.BatchLanes < 1 ||
                 Opts.BatchLanes > LstmOptions::MaxBatchLanes))
    R.fail("LSTM architecture out of range");

  LstmModel M(Opts);
  M.Vocab = Vocabulary::deserialize(R);
  M.V = R.readI32();
  if (R.ok() && M.V != static_cast<int>(M.Vocab.size()))
    R.fail("LSTM vocabulary size disagrees with stored vocabulary");

  uint32_t LayerCount = R.readU32();
  if (R.ok() && LayerCount != static_cast<uint32_t>(Opts.Layers))
    R.fail("LSTM layer count disagrees with stored options");
  if (!R.ok())
    return LstmModel();

  int H = Opts.HiddenSize;
  M.Layers.resize(Opts.Layers);
  for (int L = 0; L < Opts.Layers && R.ok(); ++L) {
    Layer &Lay = M.Layers[L];
    Lay.In = R.readI32();
    Lay.WxT = R.readF32Vector();
    Lay.WhT = R.readF32Vector();
    Lay.B = R.readF32Vector();
    int ExpectedIn = L == 0 ? M.V : H;
    if (R.ok() &&
        (Lay.In != ExpectedIn ||
         Lay.WxT.size() != static_cast<size_t>(Lay.In) * 4 * H ||
         Lay.WhT.size() != static_cast<size_t>(H) * 4 * H ||
         Lay.B.size() != static_cast<size_t>(4) * H))
      R.fail("LSTM layer weight blob does not match the architecture");
  }
  M.Wy = R.readF32Vector();
  M.By = R.readF32Vector();
  if (R.ok() && (M.Wy.size() != static_cast<size_t>(M.V) * H ||
                 M.By.size() != static_cast<size_t>(M.V)))
    R.fail("LSTM output projection does not match the architecture");
  if (!R.ok())
    return LstmModel();
  M.reset();
  return M;
}

void LstmModel::reset() {
  int H = Opts.HiddenSize;
  StateH.assign(Opts.Layers, std::vector<float>(H, 0.0f));
  StateC.assign(Opts.Layers, std::vector<float>(H, 0.0f));
}

void LstmModel::stepState(int TokenId,
                          std::vector<std::vector<float>> &HState,
                          std::vector<std::vector<float>> &CState,
                          std::vector<float> *LogitsOut) {
  int H = Opts.HiddenSize;
  std::vector<float> &A = ScratchA;
  for (int L = 0; L < Opts.Layers; ++L) {
    Layer &Lay = Layers[L];
    A.assign(Lay.B.begin(), Lay.B.end());
    if (L == 0) {
      // One-hot input: the embedding row of WxT, contiguous.
      axpy(1.0f, Lay.WxT.data() + static_cast<size_t>(TokenId) * 4 * H,
           A.data(), 4 * H);
    } else {
      gemvTAcc(Lay.WxT.data(), HState[L - 1].data(), Lay.In, 4 * H,
               A.data());
    }
    gemvTAcc(Lay.WhT.data(), HState[L].data(), H, 4 * H, A.data());
    // In-place state update: each element of C/H depends only on its own
    // previous value, which is read before being overwritten.
    float *__restrict CL = CState[L].data();
    float *__restrict HL = HState[L].data();
    const float *__restrict AP = A.data();
    for (int I = 0; I < H; ++I) {
      float Gi = sigmoidf(AP[I]);
      float Gf = sigmoidf(AP[H + I]);
      float Gg = std::tanh(AP[2 * H + I]);
      float Go = sigmoidf(AP[3 * H + I]);
      CL[I] = Gi * Gg + Gf * CL[I];
      HL[I] = Go * std::tanh(CL[I]);
    }
  }
  if (LogitsOut) {
    LogitsOut->assign(By.begin(), By.end());
    gemvAcc(Wy.data(), HState[Opts.Layers - 1].data(), V, H,
            LogitsOut->data());
  }
}

void LstmModel::observe(int TokenId) {
  if (StateH.empty())
    reset();
  stepState(TokenId, StateH, StateC, nullptr);
}

std::vector<double> LstmModel::nextDistribution() {
  std::vector<double> Dist;
  nextDistributionInto(Dist);
  return Dist;
}

void LstmModel::nextDistributionInto(std::vector<double> &Dist) {
  if (StateH.empty())
    reset();
  int H = Opts.HiddenSize;
  std::vector<float> &Logits = ScratchLogits;
  Logits.assign(By.begin(), By.end());
  gemvAcc(Wy.data(), StateH[Opts.Layers - 1].data(), V, H, Logits.data());
  softmaxInPlace(Logits);
  Dist.resize(V);
  for (int I = 0; I < V; ++I)
    Dist[I] = Logits[I];
}

double LstmModel::chunkBackward(const std::vector<int> &Tokens, size_t Begin,
                                size_t End,
                                std::vector<std::vector<float>> &HState,
                                std::vector<std::vector<float>> &CState,
                                GradBuf &Grads, ChunkWorkspace &Ws,
                                int &StepsOut) const {
  int H = Opts.HiddenSize;
  int T = static_cast<int>(End - Begin - 1); // Steps (predict next token).
  StepsOut = T > 0 ? T : 0;
  if (T <= 0)
    return 0.0;

  Ws.Gates.resize(T);
  Ws.C.resize(T);
  Ws.H.resize(T);
  Ws.Probs.resize(T);
  Ws.Inputs.resize(T);

  std::vector<std::vector<float>> HPrev = HState, CPrev = CState;
  double LossBits = 0.0;
  Ws.A.assign(4 * H, 0.0f);
  std::vector<float> &A = Ws.A;

  // ---- Forward ----
  for (int Step = 0; Step < T; ++Step) {
    int TokenId = Tokens[Begin + Step];
    int Target = Tokens[Begin + Step + 1];
    Ws.Inputs[Step] = TokenId;
    Ws.Gates[Step].resize(Opts.Layers);
    Ws.C[Step].resize(Opts.Layers);
    Ws.H[Step].resize(Opts.Layers);

    for (int L = 0; L < Opts.Layers; ++L) {
      const Layer &Lay = Layers[L];
      A.assign(Lay.B.begin(), Lay.B.end());
      if (L == 0) {
        axpy(1.0f, Lay.WxT.data() + static_cast<size_t>(TokenId) * 4 * H,
             A.data(), 4 * H);
      } else {
        gemvTAcc(Lay.WxT.data(), Ws.H[Step][L - 1].data(), Lay.In, 4 * H,
                 A.data());
      }
      const std::vector<float> &HIn =
          Step == 0 ? HPrev[L] : Ws.H[Step - 1][L];
      const std::vector<float> &CIn =
          Step == 0 ? CPrev[L] : Ws.C[Step - 1][L];
      gemvTAcc(Lay.WhT.data(), HIn.data(), H, 4 * H, A.data());
      std::vector<float> Gate(4 * H), NewC(H), NewH(H);
      const float *__restrict AP = A.data();
      const float *__restrict CP = CIn.data();
      for (int I = 0; I < H; ++I) {
        float Gi = sigmoidf(AP[I]);
        float Gf = sigmoidf(AP[H + I]);
        float Gg = std::tanh(AP[2 * H + I]);
        float Go = sigmoidf(AP[3 * H + I]);
        Gate[I] = Gi;
        Gate[H + I] = Gf;
        Gate[2 * H + I] = Gg;
        Gate[3 * H + I] = Go;
        NewC[I] = Gi * Gg + Gf * CP[I];
        NewH[I] = Go * std::tanh(NewC[I]);
      }
      Ws.Gates[Step][L] = std::move(Gate);
      Ws.C[Step][L] = std::move(NewC);
      Ws.H[Step][L] = std::move(NewH);
    }

    std::vector<float> Logits(By);
    gemvAcc(Wy.data(), Ws.H[Step][Opts.Layers - 1].data(), V, H,
            Logits.data());
    softmaxInPlace(Logits);
    LossBits += -std::log2(std::max(Logits[Target], 1e-12f));
    Ws.Probs[Step] = std::move(Logits);
  }

  // ---- Backward ----
  // dH/dC accumulators per layer (flowing backwards in time).
  Ws.DH.assign(Opts.Layers, std::vector<float>(H, 0.0f));
  Ws.DC.assign(Opts.Layers, std::vector<float>(H, 0.0f));
  Ws.DA.assign(4 * H, 0.0f);
  Ws.DHPrev.assign(H, 0.0f);
  std::vector<std::vector<float>> &DH = Ws.DH;
  std::vector<std::vector<float>> &DC = Ws.DC;
  std::vector<float> &DA = Ws.DA;
  std::vector<float> &DHPrev = Ws.DHPrev;

  for (int Step = T - 1; Step >= 0; --Step) {
    int Target = Tokens[Begin + Step + 1];
    // Softmax cross-entropy gradient (natural log scale; the bits/char
    // reporting is cosmetic).
    std::vector<float> DY = Ws.Probs[Step];
    DY[Target] -= 1.0f;

    outerAccRows(Grads.GWy.data(), DY.data(),
                 Ws.H[Step][Opts.Layers - 1].data(), V, H);
    for (int I = 0; I < V; ++I)
      Grads.GBy[I] += DY[I];
    // dH_last += Wy^T * dy: fused column accumulation over Wy's rows.
    gemvTAcc(Wy.data(), DY.data(), V, H, DH[Opts.Layers - 1].data());

    for (int L = Opts.Layers - 1; L >= 0; --L) {
      const std::vector<float> &Gate = Ws.Gates[Step][L];
      const std::vector<float> &CNow = Ws.C[Step][L];
      const std::vector<float> &CIn =
          Step == 0 ? CPrev[L] : Ws.C[Step - 1][L];
      const std::vector<float> &HIn =
          Step == 0 ? HPrev[L] : Ws.H[Step - 1][L];

      for (int I = 0; I < H; ++I) {
        float Gi = Gate[I], Gf = Gate[H + I], Gg = Gate[2 * H + I],
              Go = Gate[3 * H + I];
        float TanhC = std::tanh(CNow[I]);
        float DHI = DH[L][I];
        float DCI = DC[L][I] + DHI * Go * (1.0f - TanhC * TanhC);
        float DGo = DHI * TanhC;
        float DGi = DCI * Gg;
        float DGg = DCI * Gi;
        float DGf = DCI * CIn[I];
        DA[I] = DGi * Gi * (1.0f - Gi);
        DA[H + I] = DGf * Gf * (1.0f - Gf);
        DA[2 * H + I] = DGg * (1.0f - Gg * Gg);
        DA[3 * H + I] = DGo * Go * (1.0f - Go);
        DC[L][I] = DCI * Gf; // To t-1.
      }

      // Parameter gradients (all contiguous row updates).
      if (L == 0) {
        int TokenId = Ws.Inputs[Step];
        axpy(1.0f, DA.data(),
             Grads.Layers[L].WxT.data() +
                 static_cast<size_t>(TokenId) * 4 * H,
             4 * H);
      } else {
        outerAccRows(Grads.Layers[L].WxT.data(), Ws.H[Step][L - 1].data(),
                     DA.data(), Layers[L].In, 4 * H);
      }
      outerAccRows(Grads.Layers[L].WhT.data(), HIn.data(), DA.data(), H,
                   4 * H);
      for (int I = 0; I < 4 * H; ++I)
        Grads.Layers[L].B[I] += DA[I];

      // Propagate to h at t-1 (same layer) and to the layer below; with
      // the input-major layout both are contiguous row dot products.
      std::fill(DHPrev.begin(), DHPrev.end(), 0.0f);
      gemvAcc(Layers[L].WhT.data(), DA.data(), H, 4 * H, DHPrev.data());
      DH[L] = DHPrev;
      if (L > 0)
        gemvAcc(Layers[L].WxT.data(), DA.data(), Layers[L].In, 4 * H,
                DH[L - 1].data());
    }
  }

  // Carry state across chunks (truncated BPTT within the lane).
  HState = Ws.H[T - 1];
  CState = Ws.C[T - 1];
  return LossBits;
}

void LstmModel::applyUpdate(GradBuf &Grads, float Lr, int TotalSteps) {
  // ---- Clip and apply (the accumulated update) ----
  double Norm2 = 0.0;
  auto AccumNorm = [&Norm2](const std::vector<float> &G) {
    for (float X : G)
      Norm2 += static_cast<double>(X) * X;
  };
  for (const Layer &G : Grads.Layers) {
    AccumNorm(G.WxT);
    AccumNorm(G.WhT);
    AccumNorm(G.B);
  }
  AccumNorm(Grads.GWy);
  AccumNorm(Grads.GBy);
  double Norm = std::sqrt(Norm2);
  float Scale = Norm > Opts.GradClip
                    ? static_cast<float>(Opts.GradClip / Norm)
                    : 1.0f;
  float Step = Lr * Scale / static_cast<float>(TotalSteps);

  // The gradient lives in its own buffers (never aliasing the live
  // weights), so each tensor update is one contiguous vectorizable pass.
  auto Apply = [Step](std::vector<float> &W, const std::vector<float> &G) {
    float *__restrict WP = W.data();
    const float *__restrict GP = G.data();
    size_t N = W.size();
    for (size_t I = 0; I < N; ++I)
      WP[I] -= Step * GP[I];
  };
  for (int L = 0; L < Opts.Layers; ++L) {
    Apply(Layers[L].WxT, Grads.Layers[L].WxT);
    Apply(Layers[L].WhT, Grads.Layers[L].WhT);
    Apply(Layers[L].B, Grads.Layers[L].B);
  }
  Apply(Wy, Grads.GWy);
  Apply(By, Grads.GBy);
}

std::vector<uint8_t> LstmModel::capturedGradientImage() const {
  store::ArchiveWriter W(store::ArchiveKind::Model);
  for (const Layer &L : CapturedGrads.Layers) {
    W.writeF32Vector(L.WxT);
    W.writeF32Vector(L.WhT);
    W.writeF32Vector(L.B);
  }
  W.writeF32Vector(CapturedGrads.GWy);
  W.writeF32Vector(CapturedGrads.GBy);
  return W.finalize();
}

void LstmModel::train(const std::vector<std::string> &Entries,
                      const std::function<void(int, double)> &Progress) {
  TrainOptions TOpts;
  TOpts.Progress = Progress;
  train(Entries, TOpts);
}

void LstmModel::train(const std::vector<std::string> &Entries,
                      const TrainOptions &TOpts) {
  std::string All;
  for (const std::string &E : Entries)
    All += E;
  Vocab = Vocabulary::fromText(All);
  V = static_cast<int>(Vocab.size());
  initParameters();

  // Token stream with sentinels between entries.
  std::vector<int> Stream;
  Stream.reserve(All.size() + Entries.size());
  for (const std::string &E : Entries) {
    for (char C : E)
      Stream.push_back(Vocab.idOf(C));
    Stream.push_back(Vocabulary::EndOfText);
  }
  if (Stream.size() < 2)
    return;

  // The epoch's BPTT chunk sequence, in stream order. Consecutive
  // chunks share one token: the last target of chunk k is the first
  // input of chunk k+1.
  struct Chunk {
    size_t Begin, End;
  };
  std::vector<Chunk> Chunks;
  size_t StepLen = static_cast<size_t>(Opts.SequenceLength);
  for (size_t Begin = 0; Begin + 1 < Stream.size(); Begin += StepLen)
    Chunks.push_back({Begin, std::min(Begin + StepLen + 1, Stream.size())});

  // Lane partition: Lanes contiguous runs of chunks, balanced to within
  // one chunk (the first Rem lanes take the extra one). The partition
  // depends only on (chunk count, BatchLanes) — never on workers — so
  // the reduction below sees the same lane gradients in the same order
  // for every scheduling choice.
  size_t Lanes = static_cast<size_t>(std::max(Opts.BatchLanes, 1));
  Lanes = std::min(Lanes, Chunks.size());
  size_t Per = Chunks.size() / Lanes;
  size_t Rem = Chunks.size() % Lanes;
  std::vector<size_t> LaneBegin(Lanes + 1, 0);
  for (size_t B = 0; B < Lanes; ++B)
    LaneBegin[B + 1] = LaneBegin[B] + Per + (B < Rem ? 1 : 0);
  size_t MaxRun = Per + (Rem > 0 ? 1 : 0);

  // Per-lane gradient buffers, BPTT workspaces and hidden states. Lane
  // state threads across the lane's own chunk run within an epoch
  // (truncated BPTT); with one lane this is exactly the classic
  // whole-stream state threading.
  std::vector<GradBuf> LaneGrads(Lanes);
  for (GradBuf &G : LaneGrads)
    allocGradBuf(G);
  std::vector<ChunkWorkspace> LaneWs(Lanes);
  std::vector<double> LaneLoss(Lanes, 0.0);
  std::vector<int> LaneSteps(Lanes, 0);

  size_t Workers = ThreadPool::resolveWorkerCount(TOpts.Workers);
  Workers = std::min(Workers, Lanes);
  std::unique_ptr<ThreadPool> Pool;
  if (Workers > 1)
    Pool = std::make_unique<ThreadPool>(Workers);

  float Lr = Opts.LearningRate;
  for (int Epoch = 0; Epoch < Opts.Epochs; ++Epoch) {
    if (Epoch > 0 && Opts.DecayEveryEpochs > 0 &&
        Epoch % Opts.DecayEveryEpochs == 0)
      Lr *= Opts.LearningRateDecay;

    std::vector<std::vector<std::vector<float>>> LaneH(
        Lanes, std::vector<std::vector<float>>(
                   Opts.Layers,
                   std::vector<float>(Opts.HiddenSize, 0.0f)));
    auto LaneC = LaneH;

    double LossSum = 0.0;
    size_t ChunkCount = 0;
    for (size_t S = 0; S < MaxRun; ++S) {
      // Active lanes are a prefix: the first Rem lanes own the extra
      // chunk, so on the final ragged step only they participate.
      size_t Active = S < Per ? Lanes : Rem;

      // Per-lane gradients against the frozen weight snapshot. The body
      // only writes lane-indexed state, so any worker may run any lane.
      auto LaneGradient = [&](size_t, size_t LaneIdx) {
        GradBuf &G = LaneGrads[LaneIdx];
        for (Layer &L : G.Layers) {
          std::fill(L.WxT.begin(), L.WxT.end(), 0.0f);
          std::fill(L.WhT.begin(), L.WhT.end(), 0.0f);
          std::fill(L.B.begin(), L.B.end(), 0.0f);
        }
        std::fill(G.GWy.begin(), G.GWy.end(), 0.0f);
        std::fill(G.GBy.begin(), G.GBy.end(), 0.0f);
        const Chunk &Ch = Chunks[LaneBegin[LaneIdx] + S];
        LaneLoss[LaneIdx] =
            chunkBackward(Stream, Ch.Begin, Ch.End, LaneH[LaneIdx],
                          LaneC[LaneIdx], G, LaneWs[LaneIdx],
                          LaneSteps[LaneIdx]);
      };
      if (Pool)
        Pool->parallelFor(0, Active, LaneGradient);
      else
        for (size_t L = 0; L < Active; ++L)
          LaneGradient(0, L);

      // Deterministic reduction: merge lanes into lane 0's buffer in
      // lane-index order, two lanes fused per sweep (bit-identical to
      // one-at-a-time merging — see mergeLanePair).
      GradBuf &Acc = LaneGrads[0];
      for (size_t L = 1; L < Active; L += 2) {
        const GradBuf &G1 = LaneGrads[L];
        const GradBuf *G2 = L + 1 < Active ? &LaneGrads[L + 1] : nullptr;
        for (size_t Ly = 0; Ly < Acc.Layers.size(); ++Ly) {
          mergeLanePair(Acc.Layers[Ly].WxT.data(), G1.Layers[Ly].WxT.data(),
                        G2 ? G2->Layers[Ly].WxT.data() : nullptr,
                        Acc.Layers[Ly].WxT.size());
          mergeLanePair(Acc.Layers[Ly].WhT.data(), G1.Layers[Ly].WhT.data(),
                        G2 ? G2->Layers[Ly].WhT.data() : nullptr,
                        Acc.Layers[Ly].WhT.size());
          mergeLanePair(Acc.Layers[Ly].B.data(), G1.Layers[Ly].B.data(),
                        G2 ? G2->Layers[Ly].B.data() : nullptr,
                        Acc.Layers[Ly].B.size());
        }
        mergeLanePair(Acc.GWy.data(), G1.GWy.data(),
                      G2 ? G2->GWy.data() : nullptr, Acc.GWy.size());
        mergeLanePair(Acc.GBy.data(), G1.GBy.data(),
                      G2 ? G2->GBy.data() : nullptr, Acc.GBy.size());
      }

      if (CaptureGrads)
        CapturedGrads = Acc;

      int TotalSteps = 0;
      for (size_t L = 0; L < Active; ++L)
        TotalSteps += LaneSteps[L];
      if (TotalSteps > 0)
        applyUpdate(Acc, Lr, TotalSteps);

      for (size_t L = 0; L < Active; ++L)
        if (LaneSteps[L] > 0) {
          LossSum += LaneLoss[L] / LaneSteps[L];
          ++ChunkCount;
        }
    }
    if (TOpts.Progress)
      TOpts.Progress(Epoch, ChunkCount > 0 ? LossSum / ChunkCount : 0.0);
  }
  reset();
}

double LstmModel::sequenceLoss(const std::vector<int> &Tokens) {
  if (Tokens.size() < 2)
    return 0.0;
  std::vector<std::vector<float>> HState(
      Opts.Layers, std::vector<float>(Opts.HiddenSize, 0.0f));
  std::vector<std::vector<float>> CState = HState;
  double Bits = 0.0;
  std::vector<float> Logits;
  for (size_t Step = 0; Step + 1 < Tokens.size(); ++Step) {
    stepState(Tokens[Step], HState, CState, &Logits);
    softmaxInPlace(Logits);
    Bits += -std::log2(std::max(Logits[Tokens[Step + 1]], 1e-12f));
  }
  return Bits / static_cast<double>(Tokens.size() - 1);
}

double LstmModel::gradientCheck(const std::vector<int> &Tokens,
                                int SampleCount) {
  assert(V > 0 && "train or init before gradientCheck");
  // Compute raw analytic gradients with a pure backward pass (no
  // parameter mutation), then compare against central differences of
  // sequenceLoss on a random parameter sample.
  double MaxRelError = 0.0;
  Rng R(123);
  const float Eps = 1e-2f;

  GradBuf Grads;
  allocGradBuf(Grads);
  ChunkWorkspace Ws;
  std::vector<std::vector<float>> HState(
      Opts.Layers, std::vector<float>(Opts.HiddenSize, 0.0f));
  std::vector<std::vector<float>> CState = HState;
  int T = static_cast<int>(Tokens.size()) - 1;
  int Steps = 0;
  chunkBackward(Tokens, 0, Tokens.size(), HState, CState, Grads, Ws, Steps);

  struct Sample {
    int Kind; // 0 WxT, 1 WhT, 2 B, 3 Wy, 4 By.
    int LayerIdx;
    size_t Offset;
    double Analytic;
  };
  std::vector<Sample> Samples;
  for (int I = 0; I < SampleCount; ++I) {
    Sample S;
    S.Kind = static_cast<int>(R.bounded(5));
    S.LayerIdx = static_cast<int>(R.bounded(Layers.size()));
    auto Pick = [&](const std::vector<float> &Grad) {
      S.Offset = R.bounded(Grad.size());
      S.Analytic = Grad[S.Offset];
    };
    switch (S.Kind) {
    case 0: Pick(Grads.Layers[S.LayerIdx].WxT); break;
    case 1: Pick(Grads.Layers[S.LayerIdx].WhT); break;
    case 2: Pick(Grads.Layers[S.LayerIdx].B); break;
    case 3: Pick(Grads.GWy); break;
    case 4: Pick(Grads.GBy); break;
    }
    Samples.push_back(S);
  }

  // Evaluate central differences (loss reported in bits; convert the
  // analytic nat-scale gradient to bits).
  const double Ln2 = 0.6931471805599453;

  for (const Sample &S : Samples) {
    auto Ref = [&]() -> float & {
      switch (S.Kind) {
      case 0: return Layers[S.LayerIdx].WxT[S.Offset];
      case 1: return Layers[S.LayerIdx].WhT[S.Offset];
      case 2: return Layers[S.LayerIdx].B[S.Offset];
      case 3: return Wy[S.Offset];
      default: return By[S.Offset];
      }
    };
    float Saved = Ref();
    Ref() = Saved + Eps;
    double LossPlus = sequenceLoss(Tokens) * T; // Total bits.
    Ref() = Saved - Eps;
    double LossMinus = sequenceLoss(Tokens) * T;
    Ref() = Saved;
    double Numeric = (LossPlus - LossMinus) / (2.0 * Eps) * Ln2;
    // The float32 forward pass quantizes the loss at ~1e-6, so the
    // central difference carries ~1e-5 of absolute noise; the floor
    // keeps noise-level gradients from dominating the relative error.
    double Denom = std::max(1e-3, std::fabs(Numeric) + std::fabs(S.Analytic));
    double RelError = std::fabs(Numeric - S.Analytic) / Denom;
    MaxRelError = std::max(MaxRelError, RelError);
  }
  return MaxRelError;
}

//===- tests/clgen/PipelineFaultTest.cpp - refill + ledger pipeline tests -----===//
//
// The fault-tolerant side of core::synthesizeAndMeasure: the refill
// contract (failed kernels excised, replacements drawn by resuming the
// deterministic sampling cursor, surviving pairs byte-identical to a
// fault-free run at the same accept indices), the exactly-once
// accounting invariant, worker-count invariance under refill, the
// streaming failure-ledger round trip, and — in CLGS_FAILPOINTS builds
// only — the full acceptance scenario with every site class armed.
//
//===----------------------------------------------------------------------===//

#include "clgen/Pipeline.h"

#include "githubsim/GithubSim.h"
#include "store/FailureLedger.h"
#include "store/ResultCache.h"
#include "store/Serialization.h"
#include "support/FailPoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

using namespace clgen;
using namespace clgen::core;

namespace {

/// Fresh per-test scratch directory, removed on destruction.
class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name)
      : Path(std::filesystem::temp_directory_path() /
             ("clgen_fault_test_" + Name)) {
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }

private:
  std::filesystem::path Path;
};

std::vector<uint8_t> measurementBytes(const Result<runtime::Measurement> &M) {
  store::ArchiveWriter W(store::ArchiveKind::Measurement);
  W.writeBool(M.ok());
  if (M.ok())
    store::serializeMeasurement(W, M.get());
  else
    W.writeString(M.errorMessage());
  return W.finalize();
}

struct FaultWorkload {
  std::unique_ptr<ClgenPipeline> Pipeline;
  StreamingOptions Opts;
  runtime::Platform P = runtime::amdPlatform();
};

/// Shared workload for the refill tests. Roughly a quarter of the
/// kernels this model synthesizes trap with a deterministic
/// out-of-bounds access at measurement time (the first at accept index
/// 5), which is what gives the refill pass real work without any
/// injection — so targets here are kept >= 6.
FaultWorkload makeFaultWorkload(size_t TargetKernels) {
  FaultWorkload W;
  githubsim::GithubSimOptions GOpts;
  GOpts.FileCount = 60;
  auto Files = githubsim::mineGithub(GOpts);
  PipelineOptions POpts;
  POpts.NGram.Order = 8;
  W.Pipeline =
      std::make_unique<ClgenPipeline>(ClgenPipeline::train(Files, POpts));
  W.Opts.Synthesis.TargetKernels = TargetKernels;
  W.Opts.Synthesis.MaxAttempts = 20000;
  W.Opts.Driver.GlobalSize = 2048;
  W.Opts.MeasureWorkers = 2;
  return W;
}

/// Reconstructs the accept indices of the surviving kernels: accept
/// order minus the excised indices.
std::vector<size_t> survivorIndices(const StreamingResult &Out) {
  std::set<size_t> Excised;
  for (const ExcisedKernel &E : Out.Excised)
    Excised.insert(E.AcceptIndex);
  std::vector<size_t> Indices;
  for (size_t I = 0; I < Out.Stats.Accepted; ++I)
    if (!Excised.count(I))
      Indices.push_back(I);
  return Indices;
}

/// The exactly-once refill contract: every accepted kernel either
/// survives with a successful measurement or appears in Excised with a
/// classified cause — never both, never neither.
void expectRefillInvariants(const StreamingResult &Out) {
  EXPECT_EQ(Out.Kernels.size(), Out.Measurements.size());
  EXPECT_EQ(Out.Stats.Accepted, Out.Kernels.size() + Out.Excised.size());
  for (const auto &M : Out.Measurements)
    EXPECT_TRUE(M.ok()) << "refill must excise every failed measurement: "
                        << M.errorMessage();
  std::set<size_t> Seen;
  for (const ExcisedKernel &E : Out.Excised) {
    EXPECT_TRUE(Seen.insert(E.AcceptIndex).second)
        << "accept index excised twice: " << E.AcceptIndex;
    EXPECT_LT(E.AcceptIndex, Out.Stats.Accepted);
    EXPECT_NE(E.Kind, TrapKind::None);
    EXPECT_FALSE(E.Error.empty());
    EXPECT_FALSE(E.Source.empty());
  }
}

} // namespace

TEST(PipelineFaultTest, RefillExcisesFailuresAndMatchesFaultFreeRun) {
  FaultWorkload W = makeFaultWorkload(/*TargetKernels=*/6);

  StreamingOptions Refill = W.Opts;
  Refill.RefillFailures = true;
  StreamingResult Out = W.Pipeline->synthesizeAndMeasure(W.P, Refill);
  expectRefillInvariants(Out);
  ASSERT_GT(Out.Excised.size(), 0u)
      << "workload produced no failures; the refill test is vacuous — "
         "lower the acceptance rate";
  ASSERT_EQ(Out.Kernels.size(), 6u)
      << "refill must reach the full target while attempts remain";

  // Reference: a fault-free classic run over the same accept-index
  // range. Every surviving (kernel, measurement) pair must be
  // byte-identical at its accept index — the refill pass may excise and
  // extend, but never perturb.
  StreamingOptions Ref = W.Opts;
  Ref.Synthesis.TargetKernels = Out.Stats.Accepted;
  StreamingResult RefOut = W.Pipeline->synthesizeAndMeasure(W.P, Ref);
  ASSERT_EQ(RefOut.Kernels.size(), Out.Stats.Accepted);

  std::vector<size_t> Indices = survivorIndices(Out);
  ASSERT_EQ(Indices.size(), Out.Kernels.size());
  for (size_t J = 0; J < Indices.size(); ++J) {
    size_t I = Indices[J];
    EXPECT_EQ(Out.Kernels[J].Source, RefOut.Kernels[I].Source)
        << "survivor " << J << " is not the accept-order kernel " << I;
    EXPECT_EQ(measurementBytes(Out.Measurements[J]),
              measurementBytes(RefOut.Measurements[I]))
        << "measurement for accept index " << I << " diverged";
  }
  // And the excised kernels are exactly the reference's failures.
  for (const ExcisedKernel &E : Out.Excised) {
    ASSERT_LT(E.AcceptIndex, RefOut.Measurements.size());
    EXPECT_FALSE(RefOut.Measurements[E.AcceptIndex].ok());
    EXPECT_EQ(E.Error,
              RefOut.Measurements[E.AcceptIndex].errorMessage());
    EXPECT_EQ(E.Kind, RefOut.Measurements[E.AcceptIndex].trap());
  }
}

TEST(PipelineFaultTest, RefillIsWorkerCountInvariant) {
  FaultWorkload W = makeFaultWorkload(/*TargetKernels=*/8);
  StreamingOptions Opts = W.Opts;
  Opts.RefillFailures = true;

  auto Canonical = [](const StreamingResult &Out) {
    store::ArchiveWriter A(store::ArchiveKind::Synthesis);
    A.writeU64(Out.Stats.Accepted);
    A.writeU64(Out.Kernels.size());
    for (const auto &K : Out.Kernels)
      A.writeString(K.Source);
    for (const auto &M : Out.Measurements) {
      A.writeBool(M.ok());
      if (M.ok())
        store::serializeMeasurement(A, M.get());
    }
    A.writeU64(Out.Excised.size());
    for (const ExcisedKernel &E : Out.Excised) {
      A.writeU64(E.AcceptIndex);
      A.writeString(E.Source);
      A.writeU8(static_cast<uint8_t>(E.Kind));
      A.writeString(E.Error);
    }
    return A.finalize();
  };

  Opts.MeasureWorkers = 1;
  Opts.Synthesis.Workers = 1;
  std::vector<uint8_t> RefBytes =
      Canonical(W.Pipeline->synthesizeAndMeasure(W.P, Opts));
  for (unsigned MeasureWorkers : {2u, 4u}) {
    for (unsigned SynthWorkers : {1u, 2u}) {
      Opts.MeasureWorkers = MeasureWorkers;
      Opts.Synthesis.Workers = SynthWorkers;
      Opts.QueueCapacity = 1 + MeasureWorkers;
      StreamingResult Out = W.Pipeline->synthesizeAndMeasure(W.P, Opts);
      expectRefillInvariants(Out);
      EXPECT_EQ(Canonical(Out), RefBytes)
          << "refill diverged at measure=" << MeasureWorkers
          << " synth=" << SynthWorkers;
    }
  }
}

TEST(PipelineFaultTest, StreamingLedgerRecordsAndReplays) {
  FaultWorkload W = makeFaultWorkload(/*TargetKernels=*/6);
  ScratchDir Dir("stream_ledger");

  // Run 1: cold cache + cold ledger. Deterministic failures (the
  // natural out-of-bounds traps) are recorded.
  store::ResultCache Cache1(Dir.str() + "/results");
  store::FailureLedger Ledger1(Dir.str() + "/failures");
  StreamingOptions Opts = W.Opts;
  Opts.Cache = &Cache1;
  Opts.Ledger = &Ledger1;
  StreamingResult Run1 = W.Pipeline->synthesizeAndMeasure(W.P, Opts);
  size_t Failures = 0;
  for (const auto &M : Run1.Measurements)
    Failures += M.ok() ? 0 : 1;
  ASSERT_GT(Failures, 0u)
      << "workload produced no failures; the ledger test is vacuous";
  EXPECT_EQ(Run1.CacheStats.Hits, 0u);
  EXPECT_EQ(Run1.CacheStats.LedgerHits, 0u);
  EXPECT_EQ(Run1.CacheStats.LedgerRecords, Failures)
      << "every out-of-bounds trap is deterministic, so every failure "
         "must be recorded";

  // Run 2: fresh store objects over the same directories. Successes are
  // cache hits, failures are ledger negative hits, nothing is measured,
  // and the output — including replayed diagnostics — is byte-identical.
  store::ResultCache Cache2(Dir.str() + "/results");
  store::FailureLedger Ledger2(Dir.str() + "/failures");
  Opts.Cache = &Cache2;
  Opts.Ledger = &Ledger2;
  StreamingResult Run2 = W.Pipeline->synthesizeAndMeasure(W.P, Opts);
  EXPECT_EQ(Run2.CacheStats.Hits, Run1.Measurements.size() - Failures);
  EXPECT_EQ(Run2.CacheStats.LedgerHits, Failures);
  EXPECT_EQ(Run2.CacheStats.Misses, 0u);
  EXPECT_EQ(Run2.CacheStats.LedgerRecords, 0u);
  ASSERT_EQ(Run2.Measurements.size(), Run1.Measurements.size());
  for (size_t I = 0; I < Run1.Measurements.size(); ++I)
    EXPECT_EQ(measurementBytes(Run2.Measurements[I]),
              measurementBytes(Run1.Measurements[I]))
        << "replay diverged at accept index " << I;

  // Refill + warm ledger: known-bad kernels are excised without ever
  // being measured (FromLedger), and the target is still met.
  store::ResultCache Cache3(Dir.str() + "/results");
  store::FailureLedger Ledger3(Dir.str() + "/failures");
  Opts.Cache = &Cache3;
  Opts.Ledger = &Ledger3;
  Opts.RefillFailures = true;
  StreamingResult Run3 = W.Pipeline->synthesizeAndMeasure(W.P, Opts);
  expectRefillInvariants(Run3);
  EXPECT_EQ(Run3.Kernels.size(), W.Opts.Synthesis.TargetKernels);
  size_t FromLedger = 0;
  for (const ExcisedKernel &E : Run3.Excised)
    FromLedger += E.FromLedger ? 1 : 0;
  EXPECT_EQ(FromLedger, Failures)
      << "every previously-recorded failure must be excised as a "
         "ledger negative hit, not re-measured";
}

//===----------------------------------------------------------------------===//
// Failpoint acceptance scenario (CLGS_FAILPOINTS builds only)
//===----------------------------------------------------------------------===//

TEST(PipelineFaultTest, RefillSurvivesFaultsAtEverySiteClass) {
  if (!support::FailPoints::sitesCompiledIn())
    GTEST_SKIP() << "failpoint sites compiled out (-DCLGS_FAILPOINTS=OFF)";

  FaultWorkload W = makeFaultWorkload(/*TargetKernels=*/40);
  // The accept rate at this model configuration is ~0.06%, and the
  // armed run below excises both the natural deterministic traps and up
  // to 25 watchdog-killed stalls, so the budget must cover well past 90
  // accepts for refill to reach the full target under every schedule.
  W.Opts.Synthesis.MaxAttempts = 250000;
  ScratchDir Dir("acceptance");

  // Fault-free refill reference first (also warms nothing: no stores).
  StreamingOptions Clean = W.Opts;
  Clean.RefillFailures = true;
  StreamingResult Ref = W.Pipeline->synthesizeAndMeasure(W.P, Clean);
  ASSERT_EQ(Ref.Kernels.size(), 40u);

  // Armed run: every site class can fire — launch faults, stalls under
  // a watchdog, payload faults, producer/consumer pipeline faults,
  // store/ledger I/O faults and lock losses. The per-site fire cap
  // guarantees the schedule eventually dries up, so refill MUST reach
  // the full target.
  support::FailPlan Plan;
  Plan.Seed = 0xFA17;
  Plan.Probability = 0.10;
  Plan.MaxFiresPerSite = 25;
  Plan.StallMs = 30;
  support::FailPoints::arm(Plan);

  store::ResultCache Cache(Dir.str() + "/results");
  store::FailureLedger Ledger(Dir.str() + "/failures");
  StreamingOptions Armed = W.Opts;
  Armed.RefillFailures = true;
  Armed.Cache = &Cache;
  Armed.Ledger = &Ledger;
  Armed.Driver.WatchdogMs = 10; // Stalled launches die as timeouts.
  Armed.Driver.MaxRetries = 3;
  Armed.MeasureWorkers = 4;
  StreamingResult Out = W.Pipeline->synthesizeAndMeasure(W.P, Armed);
  support::FailPoints::disarm();

  expectRefillInvariants(Out);
  EXPECT_EQ(Out.Kernels.size(), 40u)
      << "the bounded fault schedule must not stop refill short";

  // Surviving pairs are byte-identical to the fault-free run at the
  // same accept indices — injection may excise, never perturb.
  std::vector<size_t> Indices = survivorIndices(Out);
  ASSERT_EQ(Indices.size(), Out.Kernels.size());
  StreamingOptions Wide = W.Opts;
  Wide.Synthesis.TargetKernels = Out.Stats.Accepted;
  StreamingResult WideRef = W.Pipeline->synthesizeAndMeasure(W.P, Wide);
  ASSERT_GE(WideRef.Kernels.size(), Out.Stats.Accepted);
  for (size_t J = 0; J < Indices.size(); ++J) {
    size_t I = Indices[J];
    EXPECT_EQ(Out.Kernels[J].Source, WideRef.Kernels[I].Source);
    EXPECT_EQ(measurementBytes(Out.Measurements[J]),
              measurementBytes(WideRef.Measurements[I]))
        << "accept index " << I << " diverged under injection";
  }

  // Excisions are classified, and every deterministic one that was
  // actually measured this run is in the ledger — minus the records the
  // armed ledger.write site deliberately dropped (ledger writes are
  // best-effort by design; a lost record only costs a re-measurement).
  EXPECT_GT(Out.Excised.size(), 0u) << "no faults landed; raise p";
  size_t Deterministic = 0, Missing = 0;
  for (const ExcisedKernel &E : Out.Excised) {
    EXPECT_NE(E.Kind, TrapKind::None);
    if (isDeterministicTrap(E.Kind) && !E.FromLedger) {
      ++Deterministic;
      if (!Ledger.lookup(E.Key).has_value())
        ++Missing;
    }
  }
  EXPECT_GT(Deterministic, 0u) << "no deterministic traps under injection";
  EXPECT_LE(Missing, Ledger.stats().WriteFailures)
      << "ledger entries missing beyond the injected write failures";
  EXPECT_GT(Deterministic - Missing, 0u)
      << "no classified record survived to the ledger";
}

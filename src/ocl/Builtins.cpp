//===- ocl/Builtins.cpp - OpenCL builtin function registry ------------------===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ocl/Builtins.h"

#include <cmath>
#include <unordered_map>

using namespace clgen;
using namespace clgen::ocl;

namespace {

struct RegistryEntry {
  BuiltinOp Op;
  int MinArity;
  int MaxArity;
};

const std::unordered_map<std::string_view, RegistryEntry> &registry() {
  static const std::unordered_map<std::string_view, RegistryEntry> Table = {
      {"get_global_id", {BuiltinOp::GetGlobalId, 1, 1}},
      {"get_local_id", {BuiltinOp::GetLocalId, 1, 1}},
      {"get_group_id", {BuiltinOp::GetGroupId, 1, 1}},
      {"get_global_size", {BuiltinOp::GetGlobalSize, 1, 1}},
      {"get_local_size", {BuiltinOp::GetLocalSize, 1, 1}},
      {"get_num_groups", {BuiltinOp::GetNumGroups, 1, 1}},
      {"get_work_dim", {BuiltinOp::GetWorkDim, 0, 0}},
      {"barrier", {BuiltinOp::Barrier, 1, 1}},
      {"mem_fence", {BuiltinOp::MemFence, 1, 1}},
      {"read_mem_fence", {BuiltinOp::MemFence, 1, 1}},
      {"write_mem_fence", {BuiltinOp::MemFence, 1, 1}},

      {"sin", {BuiltinOp::Sin, 1, 1}},
      {"native_sin", {BuiltinOp::Sin, 1, 1}},
      {"half_sin", {BuiltinOp::Sin, 1, 1}},
      {"cos", {BuiltinOp::Cos, 1, 1}},
      {"native_cos", {BuiltinOp::Cos, 1, 1}},
      {"half_cos", {BuiltinOp::Cos, 1, 1}},
      {"tan", {BuiltinOp::Tan, 1, 1}},
      {"asin", {BuiltinOp::Asin, 1, 1}},
      {"acos", {BuiltinOp::Acos, 1, 1}},
      {"atan", {BuiltinOp::Atan, 1, 1}},
      {"sinh", {BuiltinOp::Sinh, 1, 1}},
      {"cosh", {BuiltinOp::Cosh, 1, 1}},
      {"tanh", {BuiltinOp::Tanh, 1, 1}},
      {"exp", {BuiltinOp::Exp, 1, 1}},
      {"native_exp", {BuiltinOp::Exp, 1, 1}},
      {"exp2", {BuiltinOp::Exp2, 1, 1}},
      {"log", {BuiltinOp::Log, 1, 1}},
      {"native_log", {BuiltinOp::Log, 1, 1}},
      {"log2", {BuiltinOp::Log2, 1, 1}},
      {"log10", {BuiltinOp::Log10, 1, 1}},
      {"sqrt", {BuiltinOp::Sqrt, 1, 1}},
      {"native_sqrt", {BuiltinOp::Sqrt, 1, 1}},
      {"half_sqrt", {BuiltinOp::Sqrt, 1, 1}},
      {"rsqrt", {BuiltinOp::Rsqrt, 1, 1}},
      {"native_rsqrt", {BuiltinOp::Rsqrt, 1, 1}},
      {"cbrt", {BuiltinOp::Cbrt, 1, 1}},
      {"fabs", {BuiltinOp::Fabs, 1, 1}},
      {"floor", {BuiltinOp::Floor, 1, 1}},
      {"ceil", {BuiltinOp::Ceil, 1, 1}},
      {"round", {BuiltinOp::Round, 1, 1}},
      {"trunc", {BuiltinOp::Trunc, 1, 1}},
      {"sign", {BuiltinOp::Sign, 1, 1}},

      {"pow", {BuiltinOp::Pow, 2, 2}},
      {"native_powr", {BuiltinOp::Pow, 2, 2}},
      {"powr", {BuiltinOp::Pow, 2, 2}},
      {"fmod", {BuiltinOp::Fmod, 2, 2}},
      {"atan2", {BuiltinOp::Atan2, 2, 2}},
      {"fmin", {BuiltinOp::Fmin, 2, 2}},
      {"fmax", {BuiltinOp::Fmax, 2, 2}},
      {"hypot", {BuiltinOp::Hypot, 2, 2}},
      {"step", {BuiltinOp::Step, 2, 2}},
      {"fdim", {BuiltinOp::Fdim, 2, 2}},

      {"clamp", {BuiltinOp::Clamp, 3, 3}},
      {"mix", {BuiltinOp::Mix, 3, 3}},
      {"fma", {BuiltinOp::Fma, 3, 3}},
      {"mad", {BuiltinOp::Mad, 3, 3}},
      {"smoothstep", {BuiltinOp::Smoothstep, 3, 3}},

      {"abs", {BuiltinOp::Abs, 1, 1}},
      {"min", {BuiltinOp::Min, 2, 2}},
      {"max", {BuiltinOp::Max, 2, 2}},
      {"mul24", {BuiltinOp::Mul24, 2, 2}},
      {"mad24", {BuiltinOp::Mad24, 3, 3}},
      {"rotate", {BuiltinOp::Rotate, 2, 2}},

      {"dot", {BuiltinOp::Dot, 2, 2}},
      {"length", {BuiltinOp::Length, 1, 1}},
      {"fast_length", {BuiltinOp::Length, 1, 1}},
      {"distance", {BuiltinOp::Distance, 2, 2}},
      {"fast_distance", {BuiltinOp::Distance, 2, 2}},
      {"normalize", {BuiltinOp::Normalize, 1, 1}},
      {"fast_normalize", {BuiltinOp::Normalize, 1, 1}},
      {"cross", {BuiltinOp::Cross, 2, 2}},

      {"select", {BuiltinOp::Select, 3, 3}},
      {"isnan", {BuiltinOp::IsNan, 1, 1}},
      {"isinf", {BuiltinOp::IsInf, 1, 1}},
      {"any", {BuiltinOp::Any, 1, 1}},
      {"all", {BuiltinOp::All, 1, 1}},

      {"atomic_add", {BuiltinOp::AtomicAdd, 2, 2}},
      {"atom_add", {BuiltinOp::AtomicAdd, 2, 2}},
      {"atomic_sub", {BuiltinOp::AtomicSub, 2, 2}},
      {"atomic_inc", {BuiltinOp::AtomicInc, 1, 1}},
      {"atom_inc", {BuiltinOp::AtomicInc, 1, 1}},
      {"atomic_dec", {BuiltinOp::AtomicDec, 1, 1}},
      {"atomic_min", {BuiltinOp::AtomicMin, 2, 2}},
      {"atomic_max", {BuiltinOp::AtomicMax, 2, 2}},
      {"atomic_xchg", {BuiltinOp::AtomicXchg, 2, 2}},
  };
  return Table;
}

} // namespace

std::optional<BuiltinInfo> ocl::lookupBuiltin(std::string_view Name) {
  auto It = registry().find(Name);
  if (It != registry().end()) {
    BuiltinInfo Info;
    Info.Op = It->second.Op;
    Info.MinArity = It->second.MinArity;
    Info.MaxArity = It->second.MaxArity;
    return Info;
  }

  // convert_<type>[_sat][_rte...] family.
  if (Name.substr(0, 8) == "convert_") {
    std::string_view Rest = Name.substr(8);
    // Strip rounding / saturation suffixes.
    for (std::string_view Suffix :
         {"_sat_rte", "_sat_rtz", "_sat", "_rte", "_rtz", "_rtp", "_rtn"}) {
      if (Rest.size() > Suffix.size() &&
          Rest.substr(Rest.size() - Suffix.size()) == Suffix) {
        Rest = Rest.substr(0, Rest.size() - Suffix.size());
        break;
      }
    }
    if (auto Ty = builtinTypeByName(Rest)) {
      BuiltinInfo Info;
      Info.Op = BuiltinOp::Convert;
      Info.MinArity = 1;
      Info.MaxArity = 1;
      Info.ConvertTarget = *Ty;
      return Info;
    }
    return std::nullopt;
  }

  // vloadN / vstoreN family.
  auto ParseWidth = [](std::string_view Digits) -> int {
    if (Digits == "2") return 2;
    if (Digits == "3") return 3;
    if (Digits == "4") return 4;
    if (Digits == "8") return 8;
    if (Digits == "16") return 16;
    return 0;
  };
  if (Name.substr(0, 5) == "vload") {
    int W = ParseWidth(Name.substr(5));
    if (W != 0) {
      BuiltinInfo Info;
      Info.Op = BuiltinOp::VLoad;
      Info.MinArity = 2;
      Info.MaxArity = 2;
      Info.VectorWidth = W;
      return Info;
    }
  }
  if (Name.substr(0, 6) == "vstore") {
    int W = ParseWidth(Name.substr(6));
    if (W != 0) {
      BuiltinInfo Info;
      Info.Op = BuiltinOp::VStore;
      Info.MinArity = 3;
      Info.MaxArity = 3;
      Info.VectorWidth = W;
      return Info;
    }
  }
  return std::nullopt;
}

bool ocl::isBuiltinFunction(std::string_view Name) {
  return lookupBuiltin(Name).has_value();
}

std::optional<BuiltinConstant>
ocl::lookupBuiltinConstant(std::string_view Name) {
  static const std::unordered_map<std::string_view, BuiltinConstant> Table = {
      {"CLK_LOCAL_MEM_FENCE", {QualType(Scalar::UInt), 1.0}},
      {"CLK_GLOBAL_MEM_FENCE", {QualType(Scalar::UInt), 2.0}},
      {"M_PI", {QualType(Scalar::Double), 3.14159265358979323846}},
      {"M_PI_F", {QualType(Scalar::Float), 3.14159265358979323846}},
      {"M_E", {QualType(Scalar::Double), 2.71828182845904523536}},
      {"M_E_F", {QualType(Scalar::Float), 2.71828182845904523536}},
      {"M_SQRT2", {QualType(Scalar::Double), 1.41421356237309504880}},
      {"FLT_MAX", {QualType(Scalar::Float), 3.402823466e38}},
      {"FLT_MIN", {QualType(Scalar::Float), 1.175494351e-38}},
      {"FLT_EPSILON", {QualType(Scalar::Float), 1.192092896e-07}},
      {"DBL_MAX", {QualType(Scalar::Double), 1.7976931348623158e308}},
      {"INT_MAX", {QualType(Scalar::Int), 2147483647.0}},
      {"INT_MIN", {QualType(Scalar::Int), -2147483648.0}},
      {"UINT_MAX", {QualType(Scalar::UInt), 4294967295.0}},
      {"INFINITY", {QualType(Scalar::Float), HUGE_VAL}},
      {"MAXFLOAT", {QualType(Scalar::Float), 3.402823466e38}},
      {"NAN", {QualType(Scalar::Float), NAN}},
      {"true", {QualType(Scalar::Int), 1.0}},
      {"false", {QualType(Scalar::Int), 0.0}},
  };
  auto It = Table.find(Name);
  if (It == Table.end())
    return std::nullopt;
  return It->second;
}

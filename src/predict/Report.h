//===- predict/Report.h - Byte-stable paper-artifact reports -----*- C++ -*-===//
//
// Part of the CLgen reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared renderers for the paper's predictive-modeling artifacts: the
/// Table 1 cross-suite generalisation grid and the Figure 9
/// nearest-neighbour feature-match report. One implementation serves
/// the experiment engine (predict/Experiment.h), the bench binaries and
/// the golden regression tier, so every consumer prints the same bytes.
///
/// Byte-stability contract: both renderers are pure functions of their
/// observation inputs — iteration orders are sorted, ties broken
/// deterministically, floats printed through fixed formats — so equal
/// inputs produce identical report bytes on every platform, worker
/// count and dispatch mode. The golden tier (tests/golden/) pins this.
///
//===----------------------------------------------------------------------===//

#ifndef CLGEN_PREDICT_REPORT_H
#define CLGEN_PREDICT_REPORT_H

#include "predict/Evaluation.h"

#include <array>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace clgen {
namespace predict {

/// Integer static-feature tuple used for exact matching (Figure 9).
using FeatureKey = std::array<int64_t, 5>;

/// Distinct static-feature keys of the unique (Suite, Benchmark,
/// Kernel) triples in \p Obs, i.e. the benchmark side of Figure 9.
std::set<FeatureKey> benchmarkFeatureKeys(const std::vector<Observation> &Obs);

/// Cumulative count of \p Kernels[0..checkpoint) whose key is in
/// \p Keys, evaluated at each checkpoint (the Figure 9 match curve).
std::vector<size_t> cumulativeMatchCurve(const std::vector<FeatureKey> &Kernels,
                                         const std::set<FeatureKey> &Keys,
                                         const std::vector<size_t> &Checkpoints);

/// Counters renderTable1 reports back for callers that assert on the
/// amount of work behind the report.
struct Table1Stats {
  size_t TreesTrained = 0;
  /// Best off-diagonal training suite of the baseline grid (index into
  /// the suite-name vector) and the grid's worst pair.
  size_t BestTrainSuite = 0;
  double WorstPerformance = 1.0;
  std::string WorstPair;
};

/// Renders the Table 1 cross-suite grid: performance relative to the
/// oracle when training on one suite (columns) and testing on another
/// (rows), followed by per-training-suite averages and the worst pair.
/// When \p Synthetic is non-empty a second grid is rendered with the
/// synthetic observations added to every training set (the paper's
/// CLgen-augmentation claim). Suites appear in \p SuiteNames order;
/// suites with no observations render "-" cells.
std::string renderTable1(const std::vector<Observation> &Obs,
                         const std::vector<Observation> &Synthetic,
                         const std::vector<std::string> &SuiteNames,
                         FeatureSetKind Kind, TreeOptions Opts = TreeOptions(),
                         Table1Stats *Stats = nullptr);

/// Counters renderFig9 reports back.
struct Fig9Stats {
  size_t Candidates = 0;
  size_t ExactMatches = 0;
};

/// Renders the Figure 9 feature-match report: each distinct synthetic
/// kernel (one row per Benchmark group, sorted by name) is matched
/// against the benchmark feature keys — exactly when its integer tuple
/// collides, else by nearest neighbour under L1 distance (ties broken
/// by the lexicographically smallest benchmark key). Rows beyond
/// \p MaxRows are summarised, never silently dropped.
std::string renderFig9(const std::vector<Observation> &Obs,
                       const std::vector<Observation> &Synthetic,
                       size_t MaxRows = 32, Fig9Stats *Stats = nullptr);

} // namespace predict
} // namespace clgen

#endif // CLGEN_PREDICT_REPORT_H
